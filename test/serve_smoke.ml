(* Process-level serving smoke, run as `serve_smoke.exe <imtp-cli>`:
   boots a real daemon process, drives it with the typed client and
   the `imtp client` subcommand, SIGKILLs it mid-tune, and checks the
   resumed search in a fresh daemon reproduces the uninterrupted run's
   history digest.  Everything in here is fixed-seed. *)

module C = Imtp.Serve_client
module P = Imtp.Protocol
module Json = Imtp.Obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let ok what = function
  | Ok v -> v
  | Error e -> fail "%s: %s" what (C.error_to_string e)

let jstr body field =
  match Json.member field body with
  | Some (Json.Str s) -> s
  | _ -> fail "missing string field %S in %s" field (Json.to_string body)

let wait_for ?(timeout = 30.) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then fail "timed out: %s" what
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let () =
  let cli =
    match Sys.argv with
    | [| _; cli |] -> cli
    | _ -> fail "usage: serve_smoke <path-to-imtp-cli>"
  in
  let dir = Filename.temp_file "imtp_serve_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "d.sock" in
  let ckpt_dir = Filename.concat dir "ckpt" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let spawn_daemon () =
    let pid =
      Unix.create_process cli
        [|
          cli; "serve"; "--socket"; socket; "--checkpoint-dir"; ckpt_dir;
          "--max-sessions"; "2"; "--jobs"; "1";
        |]
        devnull devnull devnull
    in
    wait_for "daemon socket" (fun () ->
        match C.connect ~socket with
        | Ok c ->
            C.close c;
            true
        | Error _ -> false);
    pid
  in
  let tune ?(trials = 24) ?(seed = 11) ~session () =
    C.with_connection ~socket (fun c ->
        C.tune c
          {
            P.op = "mtv";
            sizes = [ 128; 256 ];
            trials;
            seed;
            measure_ratio = None;
          islands = None;
            session = Some session;
          })
  in

  (* 1. boot, and run two concurrent client tunes *)
  let pid = spawn_daemon () in
  let r1 = ref (Error (C.Transport "unset"))
  and r2 = ref (Error (C.Transport "unset")) in
  let t1 = Thread.create (fun () -> r1 := tune ~session:"smoke-a" ()) ()
  and t2 = Thread.create (fun () -> r2 := tune ~session:"smoke-b" ()) () in
  Thread.join t1;
  Thread.join t2;
  ignore (ok "concurrent tune a" !r1);
  ignore (ok "concurrent tune b" !r2);
  print_endline "two concurrent tunes: ok";

  (* 2. uninterrupted reference digest for the kill/resume spec *)
  let trials = 6000 in
  let reference =
    jstr (ok "reference tune" (tune ~trials ~session:"ref" ())) "history_digest"
  in
  Printf.printf "reference digest: %s\n%!" reference;

  (* 3. same spec under session "kill"; SIGKILL the daemon mid-search *)
  let victim = ref (Error (C.Transport "unset")) in
  let tv = Thread.create (fun () -> victim := tune ~trials ~session:"kill" ()) () in
  let ckpt_path = Filename.concat ckpt_dir "kill.ckpt" in
  wait_for "kill session's first checkpoint" (fun () ->
      Sys.file_exists ckpt_path);
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Thread.join tv;
  (match !victim with
  | Error (C.Transport _) -> ()
  | Error (C.Server (c, m)) ->
      fail "expected a transport error after SIGKILL, got %s: %s"
        (P.error_code_to_string c) m
  | Ok _ -> fail "tune reported success though its daemon was SIGKILLed");
  if not (Sys.file_exists ckpt_path) then
    fail "checkpoint did not survive the SIGKILL";
  print_endline "SIGKILL mid-tune: checkpoint survived";

  (* 4. fresh daemon (reclaims the stale socket), resume the session *)
  let pid = spawn_daemon () in
  let rbody = ok "resumed tune" (tune ~trials ~session:"kill" ()) in
  (match Json.member "resumed_from" rbody with
  | Some (Json.Num n) when n > 0. ->
      Printf.printf "resumed from trial %.0f\n%!" n
  | _ -> fail "resumed tune did not report resumed_from");
  let rd = jstr rbody "history_digest" in
  if rd <> reference then
    fail "resumed digest %s differs from reference %s" rd reference;
  if Sys.file_exists ckpt_path then
    fail "checkpoint not cleaned up after resumed completion";
  print_endline "resume: digest matches uninterrupted run";

  (* 5. `imtp client stats` as a subprocess prints a JSON object *)
  let stats_out = Filename.concat dir "stats.json" in
  let out_fd =
    Unix.openfile stats_out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let spid =
    Unix.create_process cli
      [| cli; "client"; "stats"; "--socket"; socket |]
      devnull out_fd devnull
  in
  Unix.close out_fd;
  (match Unix.waitpid [] spid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> fail "imtp client stats exited non-zero");
  let stats_text =
    let ic = open_in stats_out in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (match Json.of_string (String.trim stats_text) with
  | Ok body when Json.member "sessions" body <> None -> ()
  | Ok body -> fail "stats output lacks sessions: %s" (Json.to_string body)
  | Error m -> fail "stats output is not JSON: %s" m);
  print_endline "client stats subprocess: ok";

  (* 6. graceful shutdown *)
  (match C.with_connection ~socket C.shutdown with
  | Ok () -> ()
  | Error e -> fail "shutdown: %s" (C.error_to_string e));
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> fail "daemon exited non-zero after shutdown");
  if Sys.file_exists socket then fail "socket not removed on shutdown";
  Unix.close devnull;
  Array.iter
    (fun f ->
      let p = Filename.concat ckpt_dir f in
      if Sys.file_exists p then Sys.remove p)
    (if Sys.file_exists ckpt_dir then Sys.readdir ckpt_dir else [||]);
  if Sys.file_exists ckpt_dir then Unix.rmdir ckpt_dir;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  print_endline "serve smoke: OK"
