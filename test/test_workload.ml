(* Tests for operator definitions: construction, validation, shape
   queries, and agreement between the generic Op.reference evaluator
   and the hand-written Reference implementations. *)

module Op = Imtp_workload.Op
module Ops = Imtp_workload.Ops
module Gptj = Imtp_workload.Gptj
module T = Imtp_tensor

let test_va_structure () =
  let op = Ops.va 100 in
  Alcotest.(check int) "one axis" 1 (List.length op.Op.axes);
  Alcotest.(check bool) "no reduction" false (Op.has_reduction op);
  Alcotest.(check (list int)) "out shape" [ 100 ] (Op.output_shape op);
  Alcotest.(check int) "out elems" 100 (Op.output_elems op)

let test_red_structure () =
  let op = Ops.red 64 in
  Alcotest.(check bool) "reduction" true (Op.has_reduction op);
  Alcotest.(check (list int)) "scalar out" [] (Op.output_shape op);
  Alcotest.(check int) "out elems" 1 (Op.output_elems op)

let test_mmtv_structure () =
  let op = Ops.mmtv 4 8 16 in
  Alcotest.(check int) "axes" 3 (List.length op.Op.axes);
  Alcotest.(check (list int)) "A shape" [ 4; 8; 16 ] (Op.input_shape op "A");
  Alcotest.(check (list int)) "B shape" [ 4; 16 ] (Op.input_shape op "B");
  Alcotest.(check (list int)) "out" [ 4; 8 ] (Op.output_shape op);
  Alcotest.(check int) "spatial" 2 (List.length (Op.spatial_axes op))

let test_create_validation () =
  let bad_axis () =
    ignore
      (Op.create ~name:"x" ~dtype:T.Dtype.I32
         ~axes:[ { Op.aname = "i"; extent = 4; kind = Op.Spatial } ]
         ~inputs:[ ("A", [ "nope" ]) ]
         ~output:("C", [ "i" ])
         ~body:(Op.Ref "A"))
  in
  (match bad_axis () with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown axis accepted");
  let bad_out () =
    ignore
      (Op.create ~name:"x" ~dtype:T.Dtype.I32
         ~axes:[ { Op.aname = "i"; extent = 4; kind = Op.Reduction } ]
         ~inputs:[ ("A", [ "i" ]) ]
         ~output:("C", [ "i" ])
         ~body:(Op.Ref "A"))
  in
  match bad_out () with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "reduction output axis accepted"

let test_by_name () =
  List.iter
    (fun name ->
      let sizes =
        match name with
        | "va" | "geva" | "red" | "relu" | "scale" -> [ 32 ]
        | "mtv" | "gemv" | "rowsum" | "rowdiv" -> [ 8; 16 ]
        | _ -> [ 2; 4; 8 ]
      in
      let op = Ops.by_name name ~sizes in
      Alcotest.(check string) name name op.Op.opname)
    Ops.all_names;
  match Ops.by_name "nonsense" ~sizes:[ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown op accepted"

(* Generic reference agrees with the hand-written reference for every op. *)
let check_against_handwritten name op hand =
  let inputs = Ops.random_inputs op in
  let got = Op.reference op inputs in
  let want = hand inputs in
  Alcotest.(check bool) (name ^ " agrees") true (T.Tensor.equal got want)

let test_generic_vs_handwritten () =
  let find n inputs = List.assoc n inputs in
  check_against_handwritten "va" (Ops.va 37) (fun ins ->
      T.Reference.va (find "A" ins) (find "B" ins));
  check_against_handwritten "geva" (Ops.geva ~c:3 ~d:2 37) (fun ins ->
      T.Reference.geva (T.Value.Int 3) (T.Value.Int 2) (find "A" ins) (find "B" ins));
  check_against_handwritten "red" (Ops.red 41) (fun ins ->
      T.Tensor.scalar (T.Reference.red (find "A" ins)));
  check_against_handwritten "mtv" (Ops.mtv 7 13) (fun ins ->
      T.Reference.mtv (find "A" ins) (find "B" ins));
  check_against_handwritten "gemv" (Ops.gemv ~c:3 7 13) (fun ins ->
      T.Reference.gemv (T.Value.Int 3) (find "A" ins) (find "B" ins));
  check_against_handwritten "ttv" (Ops.ttv 3 5 7) (fun ins ->
      T.Reference.ttv (find "A" ins) (find "B" ins));
  check_against_handwritten "mmtv" (Ops.mmtv 3 5 7) (fun ins ->
      T.Reference.mmtv (find "A" ins) (find "B" ins))

let test_gptj_shapes () =
  Alcotest.(check (pair int int)) "6B qkv_gen" (12288, 4096)
    (Gptj.fc_shape Gptj.Gptj_6b Gptj.Qkv_gen);
  Alcotest.(check (pair int int)) "6B fc_proj" (4096, 16384)
    (Gptj.fc_shape Gptj.Gptj_6b Gptj.Fc_proj);
  Alcotest.(check (pair int int)) "30B fc" (28672, 7168)
    (Gptj.fc_shape Gptj.Gptj_30b Gptj.Fc);
  let op = Gptj.mmtv_op Gptj.Gptj_6b ~batch:4 ~tokens:128 in
  Alcotest.(check (list int)) "mmtv A" [ 64; 128; 256 ] (Op.input_shape op "A")

let test_total_flops () =
  let op = Ops.mtv 8 16 in
  Alcotest.(check (float 0.)) "flops" 128. (Op.total_flops op)

let prop_reference_va_matches =
  QCheck2.Test.make ~name:"generic reference = handwritten (va, any size)"
    QCheck2.Gen.(int_range 1 100)
    (fun n ->
      let op = Imtp_workload.Ops.va n in
      let ins = Imtp_workload.Ops.random_inputs ~seed:n op in
      T.Tensor.equal
        (Op.reference op ins)
        (T.Reference.va (List.assoc "A" ins) (List.assoc "B" ins)))

let prop_reference_mmtv_matches =
  QCheck2.Test.make ~name:"generic reference = handwritten (mmtv, any size)"
    QCheck2.Gen.(triple (int_range 1 5) (int_range 1 8) (int_range 1 9))
    (fun (b, n, k) ->
      let op = Imtp_workload.Ops.mmtv b n k in
      let ins = Imtp_workload.Ops.random_inputs ~seed:(b + n + k) op in
      T.Tensor.equal
        (Op.reference op ins)
        (T.Reference.mmtv (List.assoc "A" ins) (List.assoc "B" ins)))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "structure",
        [
          Alcotest.test_case "va" `Quick test_va_structure;
          Alcotest.test_case "red" `Quick test_red_structure;
          Alcotest.test_case "mmtv" `Quick test_mmtv_structure;
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "by_name" `Quick test_by_name;
          Alcotest.test_case "flops" `Quick test_total_flops;
        ] );
      ( "reference",
        [ Alcotest.test_case "generic vs handwritten" `Quick test_generic_vs_handwritten ]
      );
      ("gptj", [ Alcotest.test_case "shapes" `Quick test_gptj_shapes ]);
      ("properties", q [ prop_reference_va_matches; prop_reference_mmtv_matches ]);
    ]
