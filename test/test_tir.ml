(* Tests for the TIR core: expressions, simplifier, analysis,
   substitution, statements, programs and the interpreter on
   hand-written programs. *)

module E = Imtp_tir.Expr
module St = Imtp_tir.Stmt
module B = Imtp_tir.Buffer
module V = Imtp_tir.Var
module P = Imtp_tir.Program
module Simp = Imtp_tir.Simplify
module An = Imtp_tir.Analysis
module T = Imtp_tensor

let v name = V.fresh name
let ei = E.int

let test_var_identity () =
  let a = v "i" and b = v "i" in
  Alcotest.(check bool) "distinct ids" false (V.equal a b);
  Alcotest.(check bool) "self equal" true (V.equal a a)

let test_expr_equal () =
  let x = v "x" in
  let e1 = E.(var x + int 1) and e2 = E.(var x + int 1) in
  Alcotest.(check bool) "structural" true (E.equal e1 e2);
  Alcotest.(check bool) "different" false (E.equal e1 E.(var x + int 2))

let test_expr_free_vars () =
  let x = v "x" and y = v "y" in
  let e = E.(var x * (var y + int 1)) in
  Alcotest.(check int) "two free" 2 (V.Set.cardinal (E.free_vars e))

let test_expr_pp () =
  let x = v "x" in
  Alcotest.(check string) "print" "(x + 3)" (E.to_string E.(var x + int 3));
  Alcotest.(check string) "load" "A[x]" (E.to_string (E.load "A" (E.var x)))

let test_simplify_identities () =
  let x = v "x" in
  let s e = Simp.expr e in
  Alcotest.(check bool) "x+0" true (E.equal (s E.(var x + int 0)) (E.var x));
  Alcotest.(check bool) "x*1" true (E.equal (s E.(var x * int 1)) (E.var x));
  Alcotest.(check bool) "x*0" true (E.equal (s E.(var x * int 0)) (ei 0));
  Alcotest.(check bool) "const fold" true (E.equal (s E.(int 3 * int 4)) (ei 12));
  Alcotest.(check bool) "reassoc" true
    (E.equal (s E.(var x + int 2 + int 3)) (s E.(var x + int 5)))

let test_simplify_floor_div () =
  Alcotest.(check (option int)) "7//2" (Some 3) (Simp.const_int E.(int 7 / int 2));
  Alcotest.(check (option int)) "-7//2 floors" (Some (-4))
    (Simp.const_int E.(int (-7) / int 2));
  Alcotest.(check (option int)) "-7 mod 2 positive" (Some 1)
    (Simp.const_int E.(int (-7) % int 2))

let test_simplify_bool () =
  let x = v "x" in
  let s = Simp.expr in
  Alcotest.(check bool) "and false" true
    (E.equal (s (E.and_ (ei 0) E.(var x < int 3))) (ei 0));
  Alcotest.(check bool) "or true" true
    (E.equal (s (E.or_ (ei 1) E.(var x < int 3))) (ei 1));
  Alcotest.(check bool) "not not" true
    (E.equal (s (E.not_ (E.not_ E.(var x < int 3)))) (s E.(var x < int 3)))

let test_eval_int_env () =
  let x = v "x" in
  let env = V.Map.singleton x 5 in
  Alcotest.(check (option int)) "env" (Some 11) (Simp.eval_int env E.(var x * int 2 + int 1));
  Alcotest.(check (option int)) "unbound" None (Simp.eval_int V.Map.empty (E.var x));
  Alcotest.(check (option int)) "cmp" (Some 1) (Simp.eval_int env E.(var x < int 6))

let test_simplify_stmt_prunes () =
  let x = v "x" in
  let s =
    St.seq
      [
        St.If { cond = ei 0; then_ = St.store "A" (ei 0) (ei 1); else_ = None };
        St.For { var = x; extent = ei 0; kind = St.Serial; body = St.store "A" (ei 0) (ei 1) };
      ]
  in
  Alcotest.(check bool) "pruned to nop" true (Simp.stmt s = St.Nop)

let test_simplify_stmt_unit_loop () =
  let x = v "x" in
  let s =
    St.For
      { var = x; extent = ei 1; kind = St.Serial; body = St.store "A" (E.var x) (E.var x) }
  in
  match Simp.stmt s with
  | St.Store { index; value; _ } ->
      Alcotest.(check bool) "index folded" true (E.equal index (ei 0));
      Alcotest.(check bool) "value folded" true (E.equal value (ei 0))
  | _ -> Alcotest.fail "expected bare store"

let test_subst () =
  let x = v "x" and y = v "y" in
  let e = E.(var x + var y) in
  let e' = Imtp_tir.Subst.expr x (ei 7) e in
  Alcotest.(check (option int)) "subst" (Some 10)
    (Simp.eval_int (V.Map.singleton y 3) e')

let test_analysis_linear () =
  let x = v "x" and y = v "y" in
  let e = E.((var x * int 4) + var y + int 2) in
  (match An.linear_in x e with
  | Some (c, rest) ->
      Alcotest.(check int) "coeff" 4 c;
      Alcotest.(check bool) "rest free" true (An.is_free_of x rest)
  | None -> Alcotest.fail "linear expected");
  Alcotest.(check (option int)) "stride y" (Some 1) (An.stride_in y e);
  Alcotest.(check (option int)) "not linear" None
    (An.stride_in x E.(var x * var x))

let test_analysis_upper_bound () =
  let k = v "k" and r = v "r" in
  (* k*4 + r < 40  ⟺  k < (40 - r + 3)/4 *)
  let cond = E.((var k * int 4) + var r < int 40) in
  match An.upper_bound_from_cond k cond with
  | None -> Alcotest.fail "bound expected"
  | Some b ->
      let check rv expect =
        Alcotest.(check (option int))
          (Printf.sprintf "r=%d" rv)
          (Some expect)
          (Simp.eval_int (V.Map.singleton r rv) b)
      in
      (* r=0: k < 10; r=1: k < 10 (ceil(39/4)=10); r=37: k < 1 *)
      check 0 10;
      check 1 10;
      check 37 1

let test_analysis_upper_bound_le () =
  let k = v "k" in
  (* k <= 5 ⟺ k < 6 *)
  match An.upper_bound_from_cond k E.(var k <= int 5) with
  | Some b -> Alcotest.(check (option int)) "le" (Some 6) (Simp.const_int b)
  | None -> Alcotest.fail "bound expected"

let test_analysis_lower_bound_rejected () =
  let k = v "k" in
  Alcotest.(check bool) "lower bound none" true
    (An.upper_bound_from_cond k E.(var k > int 5) = None);
  Alcotest.(check bool) "eq none" true
    (An.upper_bound_from_cond k E.(var k = int 5) = None)

let test_conjuncts () =
  let x = v "x" in
  let a = E.(var x < int 1) and b = E.(var x < int 2) and c = E.(var x < int 3) in
  let cs = An.conjuncts (E.and_ (E.and_ a b) c) in
  Alcotest.(check int) "three" 3 (List.length cs);
  Alcotest.(check bool) "rebuild" true
    (List.length (An.conjuncts (An.conjoin cs)) = 3)

let test_stmt_seq_flatten () =
  let s = St.seq [ St.Nop; St.seq [ St.Barrier; St.Nop ]; St.Barrier ] in
  match s with
  | St.Seq [ St.Barrier; St.Barrier ] -> ()
  | _ -> Alcotest.fail "expected flat two-barrier seq"

let test_stmt_free_vars () =
  let x = v "x" and y = v "y" in
  let s =
    St.For
      {
        var = x;
        extent = ei 4;
        kind = St.Serial;
        body = St.store "A" (E.var x) (E.var y);
      }
  in
  let fv = St.free_vars s in
  Alcotest.(check bool) "y free" true (V.Set.mem y fv);
  Alcotest.(check bool) "x bound" false (V.Set.mem x fv)

let test_loop_extents () =
  let x = v "x" and y = v "y" in
  let s =
    St.For
      {
        var = x;
        extent = ei 4;
        kind = St.Serial;
        body = St.For { var = y; extent = ei 2; kind = St.Unrolled; body = St.Nop };
      }
  in
  Alcotest.(check int) "two loops" 2 (List.length (St.loop_extents s))

(* A tiny hand-written program: per-DPU vector doubling with 2 DPUs. *)
let hand_program n_per_dpu dpus =
  let n = n_per_dpu * dpus in
  let a = B.create "A" T.Dtype.I32 ~elems:n B.Host in
  let c = B.create "C" T.Dtype.I32 ~elems:n B.Host in
  let am = B.create "A_m" T.Dtype.I32 ~elems:n_per_dpu B.Mram in
  let cm = B.create "C_m" T.Dtype.I32 ~elems:n_per_dpu B.Mram in
  let blk = v "blk" and thr = v "thr" and i = v "i" in
  let wa = B.create "A_w" T.Dtype.I32 ~elems:n_per_dpu B.Wram in
  let kernel_body =
    St.For
      {
        var = blk;
        extent = ei dpus;
        kind = St.Bound St.Block_x;
        body =
          St.For
            {
              var = thr;
              extent = ei 1;
              kind = St.Bound St.Thread_x;
              body =
                St.Alloc
                  {
                    buffer = wa;
                    body =
                      St.seq
                        [
                          St.Dma
                            {
                              dir = St.Mram_to_wram;
                              wram = "A_w";
                              wram_off = ei 0;
                              mram = "A_m";
                              mram_off = ei 0;
                              elems = ei n_per_dpu;
                            };
                          St.For
                            {
                              var = i;
                              extent = ei n_per_dpu;
                              kind = St.Serial;
                              body =
                                St.store "A_w" (E.var i)
                                  E.(load "A_w" (var i) * int 2);
                            };
                          St.Dma
                            {
                              dir = St.Wram_to_mram;
                              wram = "A_w";
                              wram_off = ei 0;
                              mram = "C_m";
                              mram_off = ei 0;
                              elems = ei n_per_dpu;
                            };
                        ];
                  };
            };
      }
  in
  let d = v "d" in
  let host =
    St.seq
      [
        St.For
          {
            var = d;
            extent = ei dpus;
            kind = St.Serial;
            body =
              St.Xfer
                {
                  dir = St.To_dpu;
                  mode = St.Push;
                  host = "A";
                  host_off = E.(var d * int n_per_dpu);
                  dpu = E.var d;
                  mram = "A_m";
                  mram_off = ei 0;
                  elems = ei n_per_dpu;
                  group_dpus = dpus;
                };
          };
        St.Launch "k";
        (let d2 = v "d2" in
         St.For
           {
             var = d2;
             extent = ei dpus;
             kind = St.Serial;
             body =
               St.Xfer
                 {
                   dir = St.From_dpu;
                   mode = St.Push;
                   host = "C";
                   host_off = E.(var d2 * int n_per_dpu);
                   dpu = E.var d2;
                   mram = "C_m";
                   mram_off = ei 0;
                   elems = ei n_per_dpu;
                   group_dpus = dpus;
                 };
           });
      ]
  in
  {
    P.name = "double";
    host_buffers = [ a; c ];
    mram_buffers = [ am; cm ];
    kernels = [ { P.kname = "k"; body = kernel_body } ];
    host;
  }

let test_program_grid () =
  let p = hand_program 8 2 in
  let k = List.hd p.P.kernels in
  Alcotest.(check (pair int int)) "grid" (2, 1) (P.grid k);
  Alcotest.(check int) "dpus" 2 (P.dpus_used p)

let test_program_validate () =
  let p = hand_program 8 2 in
  (match P.validate p with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let bad = { p with host = St.Barrier } in
  match P.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "barrier in host should be invalid"

let test_eval_hand_program () =
  let p = hand_program 8 2 in
  let a =
    T.Tensor.init T.Dtype.I32 (T.Shape.create [ 16 ]) (fun i -> T.Value.Int i.(0))
  in
  let outs = Imtp_tir.Eval.run p ~inputs:[ ("A", a) ] in
  let c = List.assoc "C" outs in
  for i = 0 to 15 do
    Alcotest.(check bool)
      (Printf.sprintf "c[%d]" i)
      true
      (T.Value.equal (T.Tensor.get_flat c i) (T.Value.Int (2 * i)))
  done

let test_eval_rejects_scope_violation () =
  let p = hand_program 8 2 in
  let k = List.hd p.P.kernels in
  (* Kernel writing a host buffer must fail. *)
  let bad_kernel =
    { k with P.body = St.store "A" (ei 0) (ei 1) }
  in
  let bad = { p with P.kernels = [ bad_kernel ] } in
  match Imtp_tir.Eval.run bad ~inputs:[] with
  | exception Imtp_tir.Eval.Error _ -> ()
  | _ -> Alcotest.fail "expected scope violation"

let test_eval_out_of_bounds () =
  let p = hand_program 8 2 in
  let k = List.hd p.P.kernels in
  let bad_kernel = { k with P.body = St.store "C_m" (ei 99) (ei 1) } in
  let bad = { p with P.kernels = [ bad_kernel ] } in
  match Imtp_tir.Eval.run bad ~inputs:[] with
  | exception Imtp_tir.Eval.Error _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds error"

(* --- compiled executor vs interpreter --------------------------------- *)

module Exec = Imtp_tir.Exec

(* Division_by_zero escapes both executors untranslated, like Eval. *)
let run_eval p ~inputs =
  match Imtp_tir.Eval.run_counted p ~inputs with
  | r -> Ok r
  | exception Imtp_tir.Eval.Error m -> Error ("Eval.Error: " ^ m)
  | exception Division_by_zero -> Error "Division_by_zero"

let run_exec p ~inputs =
  match Exec.run_compiled (Exec.compile p) ~inputs with
  | r -> Ok r
  | exception Imtp_tir.Eval.Error m -> Error ("Eval.Error: " ^ m)
  | exception Division_by_zero -> Error "Division_by_zero"

let check_same_outcome name p ~inputs =
  match (run_exec p ~inputs, run_eval p ~inputs) with
  | Error a, Error b -> Alcotest.(check string) (name ^ ": error") b a
  | Ok (outs_c, c_c), Ok (outs_i, c_i) ->
      Alcotest.(check int)
        (name ^ ": buffer count")
        (List.length outs_i) (List.length outs_c);
      List.iter2
        (fun (n1, t1) (n2, t2) ->
          Alcotest.(check string) (name ^ ": buffer order") n1 n2;
          Alcotest.(check bool)
            (Printf.sprintf "%s: buffer %s equal" name n1)
            true (T.Tensor.equal t1 t2))
        outs_i outs_c;
      Alcotest.(check bool) (name ^ ": counters") true (c_i = c_c)
  | Ok _, Error m ->
      Alcotest.fail
        (Printf.sprintf "%s: compiled succeeded, interpreter raised %S" name m)
  | Error m, Ok _ ->
      Alcotest.fail
        (Printf.sprintf "%s: compiled raised %S, interpreter succeeded" name m)

let test_exec_matches_eval () =
  let p = hand_program 8 2 in
  let a =
    T.Tensor.init T.Dtype.I32 (T.Shape.create [ 16 ]) (fun i -> T.Value.Int i.(0))
  in
  check_same_outcome "hand program" p ~inputs:[ ("A", a) ];
  (* and the outputs are actually right, not just mutually wrong. *)
  let outs = Exec.run p ~inputs:[ ("A", a) ] in
  let c = List.assoc "C" outs in
  for i = 0 to 15 do
    Alcotest.(check bool)
      (Printf.sprintf "c[%d]" i)
      true
      (T.Value.equal (T.Tensor.get_flat c i) (T.Value.Int (2 * i)))
  done

let test_exec_error_parity () =
  let p = hand_program 8 2 in
  let k = List.hd p.P.kernels in
  let rebody body = { p with P.kernels = [ { k with P.body } ] } in
  (* Scope violation, out-of-bounds store and out-of-bounds DMA must
     raise the interpreter's exact message from the compiled path. *)
  List.iter
    (fun (name, bad) -> check_same_outcome name bad ~inputs:[])
    [
      ("kernel writes host buffer", rebody (St.store "A" (ei 0) (ei 1)));
      ("kernel reads host buffer", rebody (St.store "C_m" (ei 0) (E.load "A" (ei 0))));
      ("mram store out of bounds", rebody (St.store "C_m" (ei 99) (ei 1)));
      ("unknown buffer", rebody (St.store "nope" (ei 0) (ei 1)));
      ( "dma out of bounds",
        rebody
          (St.Dma
             {
               dir = St.Mram_to_wram;
               wram = "A_m";
               wram_off = ei 0;
               mram = "C_m";
               mram_off = ei 4;
               elems = ei 8;
             }) );
      ( "host reads mram",
        { p with P.host = St.store "C" (ei 0) (E.load "A_m" (ei 0)) } );
      ( "float index",
        { p with P.host = St.store "C" (E.Cast (T.Dtype.F32, ei 0)) (ei 1) } );
      ( "division by zero",
        { p with P.host = St.store "C" (ei 0) E.(int 1 / int 0) } );
    ]

let test_exec_cast_pinned () =
  (* The pinned float->int conversion: NaN to 0, truncation toward
     zero, saturation at the i32 range, I8 wrapping the i32 result. *)
  let o = B.create "O" T.Dtype.I32 ~elems:6 B.Host in
  let cast dt f = E.Cast (dt, E.float f) in
  let host =
    St.seq
      [
        St.store "O" (ei 0) (cast T.Dtype.I32 Float.nan);
        St.store "O" (ei 1) (cast T.Dtype.I32 1e12);
        St.store "O" (ei 2) (cast T.Dtype.I32 (-1e12));
        St.store "O" (ei 3) (cast T.Dtype.I32 3.7);
        St.store "O" (ei 4) (cast T.Dtype.I32 (-3.7));
        St.store "O" (ei 5) (cast T.Dtype.I8 3000.);
      ]
  in
  let p =
    { P.name = "casts"; host_buffers = [ o ]; mram_buffers = []; kernels = []; host }
  in
  check_same_outcome "casts" p ~inputs:[];
  let expect = [ 0; 2147483647; -2147483648; 3; -3; -72 ] in
  let out = List.assoc "O" (Exec.run p ~inputs:[]) in
  List.iteri
    (fun i want ->
      Alcotest.(check bool)
        (Printf.sprintf "O[%d] = %d" i want)
        true
        (T.Value.equal (T.Tensor.get_flat out i) (T.Value.Int want)))
    expect

(* --- cost-model regressions ------------------------------------------- *)

(* [iters] grouped Push transfers with [group] DPUs per call, over a
   kernel spanning [iters] DPUs. *)
let push_cost_program ?(mode = St.Push) iters group =
  let a = B.create "A" T.Dtype.I32 ~elems:(8 * iters) B.Host in
  let am = B.create "A_m" T.Dtype.I32 ~elems:8 B.Mram in
  let blk = v "blk" in
  let kbody =
    St.For { var = blk; extent = ei iters; kind = St.Bound St.Block_x; body = St.Nop }
  in
  let d = v "d" in
  let host =
    St.For
      {
        var = d;
        extent = ei iters;
        kind = St.Serial;
        body =
          St.Xfer
            {
              dir = St.To_dpu;
              mode;
              host = "A";
              host_off = E.(var d * int 8);
              dpu = E.var d;
              mram = "A_m";
              mram_off = ei 0;
              elems = ei 8;
              group_dpus = group;
            };
      }
  in
  {
    P.name = "push_cost";
    host_buffers = [ a ];
    mram_buffers = [ am ];
    kernels = [ { P.kname = "k"; body = kbody } ];
    host;
  }

let h2d_of ?mode iters group =
  (Imtp_tir.Cost.measure Imtp_upmem.Config.default
     (push_cost_program ?mode iters group))
    .Imtp_upmem.Stats.h2d_s

let test_cost_push_partial_group_rounds_up () =
  (* 5 pushes in groups of 4 take two bulk calls: a partial trailing
     group still pays a full per-call overhead.  The broken model
     charged a fractional 1.25 calls. *)
  let t4 = h2d_of 4 4 and t5 = h2d_of 5 4 in
  Alcotest.(check bool)
    (Printf.sprintf "push: t5=%g vs 2*t4=%g" t5 (2. *. t4))
    true
    (t5 >= 1.95 *. t4)

let test_cost_broadcast_partial_group_rounds_up () =
  let t2 = h2d_of ~mode:St.Broadcast_x 2 2
  and t3 = h2d_of ~mode:St.Broadcast_x 3 2 in
  Alcotest.(check bool)
    (Printf.sprintf "broadcast: t3=%g vs 2*t2=%g" t3 (2. *. t2))
    true
    (t3 >= 1.95 *. t2)

let test_cost_if_else_branch_charged () =
  (* An If whose transfer work sits in [else_] must cost the same as
     the mirror-image If carrying it in [then_]; the broken walk
     silently dropped else branches. *)
  let p = hand_program 8 2 in
  let push_loop =
    match p.P.host with
    | St.Seq (x :: _) -> x
    | _ -> Alcotest.fail "unexpected hand_program host shape"
  in
  let h2d host =
    (Imtp_tir.Cost.measure Imtp_upmem.Config.default { p with P.host })
      .Imtp_upmem.Stats.h2d_s
  in
  let in_then =
    h2d (St.If { cond = ei 1; then_ = push_loop; else_ = Some St.Nop })
  in
  let in_else =
    h2d (St.If { cond = ei 0; then_ = St.Nop; else_ = Some push_loop })
  in
  Alcotest.(check bool) "else branch costed" true (in_else > 0.);
  Alcotest.(check bool)
    (Printf.sprintf "symmetric: then=%g else=%g" in_then in_else)
    true
    (Float.abs (in_then -. in_else) <= 1e-12 *. Float.max in_then 1.)

let test_cost_host_parallel_if_else_charged () =
  (* Same regression for the boundary-cost walk used under
     Host_parallel loops. *)
  let p = hand_program 8 2 in
  let i = v "i" in
  let stores =
    St.For
      {
        var = v "j";
        extent = ei 32;
        kind = St.Serial;
        body = St.store "A" (ei 0) (ei 1);
      }
  in
  let host_s body =
    let host =
      St.For { var = i; extent = ei 64; kind = St.Host_parallel 4; body }
    in
    (Imtp_tir.Cost.measure Imtp_upmem.Config.default { p with P.host })
      .Imtp_upmem.Stats.host_s
  in
  let in_then = host_s (St.If { cond = ei 1; then_ = stores; else_ = Some St.Nop }) in
  let in_else = host_s (St.If { cond = ei 0; then_ = St.Nop; else_ = Some stores }) in
  let empty = host_s (St.If { cond = ei 0; then_ = St.Nop; else_ = None }) in
  Alcotest.(check bool)
    (Printf.sprintf "else-heavy %g > empty %g" in_else empty)
    true (in_else > empty);
  Alcotest.(check bool)
    (Printf.sprintf "symmetric: then=%g else=%g" in_then in_else)
    true
    (Float.abs (in_then -. in_else) <= 1e-12 *. Float.max in_then 1.)

let test_cost_measures_phases () =
  let p = hand_program 1024 64 in
  let stats = Imtp_tir.Cost.measure Imtp_upmem.Config.default p in
  let open Imtp_upmem.Stats in
  Alcotest.(check bool) "h2d > 0" true (stats.h2d_s > 0.);
  Alcotest.(check bool) "kernel > 0" true (stats.kernel_s > 0.);
  Alcotest.(check bool) "d2h > 0" true (stats.d2h_s > 0.);
  Alcotest.(check bool) "launch > 0" true (stats.launch_s > 0.);
  Alcotest.(check int) "dpus" 64 stats.dpus_used

let test_cost_more_work_costs_more () =
  let small = Imtp_tir.Cost.measure Imtp_upmem.Config.default (hand_program 512 8) in
  let large = Imtp_tir.Cost.measure Imtp_upmem.Config.default (hand_program 4096 8) in
  Alcotest.(check bool) "monotone" true
    Imtp_upmem.Stats.(total_s large > total_s small)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_printer_smoke () =
  let p = hand_program 8 2 in
  let s = Imtp_tir.Printer.program_to_string p in
  Alcotest.(check bool) "mentions kernel" true (contains s "kernel_k");
  Alcotest.(check bool) "mentions dma" true (contains s "dma_mram_to_wram");
  Alcotest.(check bool) "mentions launch" true (contains s "launch(k)")

let prop_upper_bound_solver_exact =
  (* For random linear conditions c*k + r < n, the solver's bound b
     satisfies: forall v in [0, extent), cond(v) <-> v < b. *)
  QCheck2.Test.make ~name:"upper-bound solver agrees with brute force" ~count:200
    QCheck2.Gen.(
      quad (int_range 1 8) (int_range (-50) 50) (int_range 1 100) (int_range 1 40))
    (fun (c, r, n, extent) ->
      let k = v "k" in
      let cond = E.((var k * int c) + int r < int n) in
      match An.upper_bound_from_cond k cond with
      | None -> false
      | Some b -> (
          match Simp.const_int b with
          | None -> false
          | Some bound ->
              let ok = ref true in
              for vv = 0 to extent - 1 do
                let truth = (c * vv) + r < n in
                if truth <> (vv < bound) then ok := false
              done;
              !ok))

let prop_kernel_profile_chunks =
  (* The cost walker's chunk count equals tasklets x per-tasklet chunk
     iterations for the canonical cached kernel. *)
  QCheck2.Test.make ~name:"kernel profile chunk count" ~count:50
    QCheck2.Gen.(pair (int_range 1 8) (int_range 1 32))
    (fun (dpus, chunks) ->
      let p = hand_program 8 dpus in
      ignore chunks;
      let k = List.hd p.P.kernels in
      let prof = Imtp_tir.Cost.kernel_profile Imtp_upmem.Config.default p k in
      (* hand program: 1 tasklet, 1 chunk (one DMA in + compute + out) *)
      prof.Imtp_upmem.Dpu_model.tasklets = 1
      && prof.Imtp_upmem.Dpu_model.chunks = 1)

(* Random small expressions over two variables.  Division and modulo
   appear only with nonzero constant divisors — [Simplify.expr] raises
   on a constant-0 divisor by design, which is not what these
   properties are about. *)
let gen_expr =
  let open QCheck2.Gen in
  sized (fun n ->
      fix
        (fun self (n, vars) ->
          if n <= 0 then
            oneof
              [
                map E.int (int_range (-20) 20);
                map (fun i -> E.var (List.nth vars (i mod List.length vars))) (int_range 0 10);
              ]
          else
            oneof
              [
                map E.int (int_range (-20) 20);
                map (fun i -> E.var (List.nth vars (i mod List.length vars))) (int_range 0 10);
                map3
                  (fun op a b -> E.Binop (op, a, b))
                  (oneofl [ E.Add; E.Sub; E.Mul; E.Min; E.Max ])
                  (self (n / 2, vars))
                  (self (n / 2, vars));
                map3
                  (fun op a b -> E.Binop (op, a, E.int b))
                  (oneofl [ E.Div; E.Mod ])
                  (self (n / 2, vars))
                  (oneofl [ -3; -2; 2; 3; 5; 7 ]);
                map3
                  (fun op a b -> E.Cmp (op, a, b))
                  (oneofl [ E.Lt; E.Le; E.Gt; E.Ge; E.Eq; E.Ne ])
                  (self (n / 2, vars))
                  (self (n / 2, vars));
              ])
        (min n 8, [ v "p"; v "q" ]))

let full_env e =
  let vars = V.Set.elements (E.free_vars e) in
  List.fold_left (fun m (i, x) -> V.Map.add x (i * 3 mod 7) m) V.Map.empty
    (List.mapi (fun i x -> (i, x)) vars)

let prop_simplify_sound =
  (* Simplification preserves value under random environments. *)
  QCheck2.Test.make ~name:"simplify preserves semantics" ~count:300 gen_expr
    (fun e ->
      let env = full_env e in
      match Simp.eval_int env e with
      | None -> true
      | Some expected -> Simp.eval_int env (Simp.expr e) = Some expected)

let prop_simplify_idempotent =
  (* A second pass over already-simplified output must be the identity:
     rewrites that keep firing indicate a non-confluent rule set. *)
  QCheck2.Test.make ~name:"simplify is idempotent" ~count:300 gen_expr (fun e ->
      let once = Simp.expr e in
      E.equal (Simp.expr once) once)

let prop_simplify_identities =
  (* Algebraic identities hold on random subexpressions, not just on
     the hand-picked cases above: e+0, e*1, e*0, min/max self. *)
  QCheck2.Test.make ~name:"simplify algebraic identities" ~count:300 gen_expr
    (fun e ->
      let env = full_env e in
      let same a b =
        match (Simp.eval_int env a, Simp.eval_int env b) with
        | Some x, Some y -> x = y
        | None, _ | _, None -> true
      in
      same (Simp.expr E.(e + int 0)) (Simp.expr e)
      && same (Simp.expr E.(e * int 1)) (Simp.expr e)
      && Simp.eval_int env (Simp.expr E.(e * int 0)) = Some 0
      && same (Simp.expr (E.Binop (E.Min, e, e))) (Simp.expr e)
      && same (Simp.expr (E.Binop (E.Max, e, e))) (Simp.expr e))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "tir"
    [
      ( "expr",
        [
          Alcotest.test_case "var identity" `Quick test_var_identity;
          Alcotest.test_case "equal" `Quick test_expr_equal;
          Alcotest.test_case "free vars" `Quick test_expr_free_vars;
          Alcotest.test_case "pp" `Quick test_expr_pp;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "identities" `Quick test_simplify_identities;
          Alcotest.test_case "floor div" `Quick test_simplify_floor_div;
          Alcotest.test_case "bool" `Quick test_simplify_bool;
          Alcotest.test_case "eval env" `Quick test_eval_int_env;
          Alcotest.test_case "stmt prune" `Quick test_simplify_stmt_prunes;
          Alcotest.test_case "unit loop" `Quick test_simplify_stmt_unit_loop;
          Alcotest.test_case "subst" `Quick test_subst;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "linear" `Quick test_analysis_linear;
          Alcotest.test_case "upper bound lt" `Quick test_analysis_upper_bound;
          Alcotest.test_case "upper bound le" `Quick test_analysis_upper_bound_le;
          Alcotest.test_case "lower bound rejected" `Quick
            test_analysis_lower_bound_rejected;
          Alcotest.test_case "conjuncts" `Quick test_conjuncts;
        ] );
      ( "stmt",
        [
          Alcotest.test_case "seq flatten" `Quick test_stmt_seq_flatten;
          Alcotest.test_case "free vars" `Quick test_stmt_free_vars;
          Alcotest.test_case "loop extents" `Quick test_loop_extents;
        ] );
      ( "program+eval+cost",
        [
          Alcotest.test_case "grid" `Quick test_program_grid;
          Alcotest.test_case "validate" `Quick test_program_validate;
          Alcotest.test_case "eval" `Quick test_eval_hand_program;
          Alcotest.test_case "scope violation" `Quick
            test_eval_rejects_scope_violation;
          Alcotest.test_case "out of bounds" `Quick test_eval_out_of_bounds;
          Alcotest.test_case "cost phases" `Quick test_cost_measures_phases;
          Alcotest.test_case "cost monotone" `Quick test_cost_more_work_costs_more;
          Alcotest.test_case "printer" `Quick test_printer_smoke;
        ] );
      ( "exec",
        [
          Alcotest.test_case "matches interpreter" `Quick test_exec_matches_eval;
          Alcotest.test_case "error parity" `Quick test_exec_error_parity;
          Alcotest.test_case "cast pinned" `Quick test_exec_cast_pinned;
        ] );
      ( "cost-regressions",
        [
          Alcotest.test_case "push partial group" `Quick
            test_cost_push_partial_group_rounds_up;
          Alcotest.test_case "broadcast partial group" `Quick
            test_cost_broadcast_partial_group_rounds_up;
          Alcotest.test_case "if else charged" `Quick
            test_cost_if_else_branch_charged;
          Alcotest.test_case "host-parallel if else charged" `Quick
            test_cost_host_parallel_if_else_charged;
        ] );
      ( "properties",
        q
          [
            prop_simplify_sound;
            prop_simplify_idempotent;
            prop_simplify_identities;
            prop_upper_bound_solver_exact;
            prop_kernel_profile_chunks;
          ] );
    ]
