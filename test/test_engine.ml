(* Engine tests: canonical structural hashing, the content-addressed
   memo table, batched measurement, and the typed error taxonomy. *)

module E = Imtp_engine.Engine
module Sk = Imtp_engine.Sketch
module V = Imtp_engine.Verifier
module Rng = Imtp_engine.Rng
module Pl = Imtp_passes.Pipeline
module Ops = Imtp_workload.Ops
module U = Imtp_upmem

let cfg = U.Config.default

let small_params =
  { Sk.default_params with Sk.spatial_dpus = 16; tasklets = 4; cache_elems = 16 }

(* --- canonical structural hashing --------------------------------- *)

let test_fingerprint_stable () =
  let op = Ops.mtv 64 128 in
  let a = E.fingerprint op small_params in
  let b = E.fingerprint op small_params in
  Alcotest.(check string) "same inputs, same key" a b;
  (* a structurally-equal but separately-constructed op hashes the same *)
  let c = E.fingerprint (Ops.mtv 64 128) small_params in
  Alcotest.(check string) "fresh op value, same key" a c;
  (* the key does not depend on which engine instance computes builds *)
  let e1 = E.create cfg and e2 = E.create cfg in
  match (E.build e1 op small_params, E.build e2 op small_params) with
  | Ok x, Ok y ->
      Alcotest.(check string) "same key across engines" x.E.key y.E.key;
      Alcotest.(check string) "build key is the fingerprint" a x.E.key
  | _ -> Alcotest.fail "build failed"

let test_fingerprint_distinguishes () =
  let op = Ops.mtv 64 128 in
  let base = E.fingerprint op small_params in
  let check_distinct label key =
    Alcotest.(check bool) label true (key <> base)
  in
  check_distinct "pass config in key" (E.fingerprint ~passes:Pl.all_off op small_params);
  check_distinct "dma-only config in key"
    (E.fingerprint ~passes:{ Pl.all_off with Pl.dma_elim = true } op small_params);
  check_distinct "skip_inputs in key" (E.fingerprint ~skip_inputs:[ "A" ] op small_params);
  check_distinct "verify toggle in key" (E.fingerprint ~verify:false op small_params);
  check_distinct "params in key"
    (E.fingerprint op { small_params with Sk.tasklets = 8 });
  check_distinct "op shape in key" (E.fingerprint (Ops.mtv 64 256) small_params);
  (* skip_inputs are order-canonicalized, so permutations share a key *)
  Alcotest.(check string) "skip_inputs order irrelevant"
    (E.fingerprint ~skip_inputs:[ "A"; "B" ] op small_params)
    (E.fingerprint ~skip_inputs:[ "B"; "A" ] op small_params)

(* --- the memo table ------------------------------------------------ *)

let test_cache_hit_identical_stats () =
  let op = Ops.mtv 64 128 in
  let e = E.create cfg in
  let m1 = Result.get_ok (E.measure e op small_params) in
  let m2 = Result.get_ok (E.measure e op small_params) in
  Alcotest.(check bool) "first build is a miss" false m1.E.from_cache;
  Alcotest.(check bool) "second build is a hit" true m2.E.from_cache;
  (* bit-identical artifact: the cache returns the same value, it does
     not recompute. *)
  Alcotest.(check bool) "stats bit-identical" true
    (m1.E.artifact.E.stats = m2.E.artifact.E.stats);
  Alcotest.(check bool) "program identical" true
    (m1.E.artifact.E.program = m2.E.artifact.E.program);
  let c = E.counters e in
  Alcotest.(check int) "one hit" 1 c.E.hits;
  Alcotest.(check int) "one artifact built" 1 c.E.built

let test_errors_cached () =
  (* 512-element caches x 3 buffers x 24 tasklets = 144 KB > 64 KB WRAM. *)
  let p =
    { Sk.default_params with Sk.spatial_dpus = 4; tasklets = 24; cache_elems = 512 }
  in
  let op = Ops.va 1_000_000 in
  let e = E.create cfg in
  (match E.build e op p with
  | Error (E.Verifier_rejected r) ->
      Alcotest.(check string) "typed wram rejection" "wram" r.V.constraint_name
  | Error err -> Alcotest.failf "wrong error: %s" (E.error_to_string err)
  | Ok _ -> Alcotest.fail "WRAM overflow accepted");
  (* the rejection is cached: re-proposing costs a lookup, not a build *)
  let before = E.counters e in
  (match E.build e op p with
  | Error (E.Verifier_rejected _) -> ()
  | _ -> Alcotest.fail "cached outcome differs");
  let after = E.counters e in
  Alcotest.(check int) "second probe hits" (before.E.hits + 1) after.E.hits;
  Alcotest.(check int) "no new failure built" before.E.failed after.E.failed

let test_find_is_pure () =
  let op = Ops.mtv 64 128 in
  let e = E.create cfg in
  Alcotest.(check bool) "empty cache" true (E.find e op small_params = None);
  let c0 = E.counters e in
  Alcotest.(check int) "find counts no lookups" 0 c0.E.lookups;
  ignore (E.build e op small_params);
  match E.find e op small_params with
  | Some (Ok a) ->
      Alcotest.(check string) "found under fingerprint"
        (E.fingerprint op small_params) a.E.key
  | _ -> Alcotest.fail "built artifact not findable"

let test_error_to_string_prefixes () =
  Alcotest.(check string) "lower" "lower: boom" (E.error_to_string (E.Lower_failed "boom"));
  Alcotest.(check string) "cost" "cost: boom" (E.error_to_string (E.Cost_failed "boom"));
  Alcotest.(check string) "sketch" "sketch: boom"
    (E.error_to_string (E.Sketch_invalid "boom"));
  Alcotest.(check bool) "verifier prefix" true
    (String.length
       (E.error_to_string
          (E.Verifier_rejected { V.reason = "r"; constraint_name = "wram" }))
    > 0)

(* --- batched measurement ------------------------------------------- *)

(* Run one batch on a fresh engine; return the results, the final
   counters, and the next value the caller's rng would produce (to
   check the rng advanced identically at any job count). *)
let run_batch ~jobs ~noise_seed op candidates =
  let e = E.create cfg in
  let rng = Rng.create ~seed:noise_seed in
  let results = E.batch e ~jobs ~rng op candidates in
  (results, E.counters e, Rng.bits rng)

let same_measurement a b =
  match (a, b) with
  | Ok m, Ok m' ->
      Int64.equal
        (Int64.bits_of_float m.E.latency_s)
        (Int64.bits_of_float m'.E.latency_s)
      && m.E.from_cache = m'.E.from_cache
      && m.E.artifact.E.stats = m'.E.artifact.E.stats
  | Error e, Error e' -> e = e'
  | (Ok _ | Error _), _ -> false

let same_int_counters a b =
  a.E.lookups = b.E.lookups && a.E.hits = b.E.hits && a.E.misses = b.E.misses
  && a.E.evictions = b.E.evictions
  && a.E.built = b.E.built && a.E.failed = b.E.failed

let check_jobs_equivalent ~noise_seed op candidates =
  let r1, c1, next1 = run_batch ~jobs:1 ~noise_seed op candidates in
  let r4, c4, next4 = run_batch ~jobs:4 ~noise_seed op candidates in
  List.length r1 = List.length r4
  && List.for_all2
       (fun (p, a) (p', b) -> p = p' && same_measurement a b)
       r1 r4
  && same_int_counters c1 c4 && next1 = next4

(* jobs:1 (inline, no domains) and jobs:4 (a domain pool) are one
   contract: same results in candidate order, bit-identical noisy
   latencies, same from_cache flags, same integer counters, and the
   caller's rng advanced by exactly one draw either way. *)
let test_batch_matches_sequential () =
  let op = Ops.mtv 64 128 in
  let candidates =
    [
      small_params;
      { small_params with Sk.tasklets = 8 };
      small_params (* duplicate: must be a cache hit, same stats *);
      { small_params with Sk.cache_elems = 32 };
    ]
  in
  let r1, c1, next1 = run_batch ~jobs:1 ~noise_seed:7 op candidates in
  let r4, c4, next4 = run_batch ~jobs:4 ~noise_seed:7 op candidates in
  Alcotest.(check int) "same length" (List.length r1) (List.length r4);
  List.iter2
    (fun (p1, a) (p4, b) ->
      Alcotest.(check bool) "same params order" true (p1 = p4);
      match (a, b) with
      | Ok s, Ok m ->
          Alcotest.(check (float 0.)) "same noisy latency" s.E.latency_s
            m.E.latency_s;
          Alcotest.(check bool) "same from_cache" s.E.from_cache m.E.from_cache;
          Alcotest.(check bool) "same stats" true
            (s.E.artifact.E.stats = m.E.artifact.E.stats)
      | Error a, Error b ->
          Alcotest.(check string) "same error" (E.error_to_string a)
            (E.error_to_string b)
      | _ -> Alcotest.fail "jobs:1 and jobs:4 outcomes disagree")
    r1 r4;
  (* the duplicate candidate was served from cache at both job counts *)
  Alcotest.(check int) "jobs:1 cache hit" 1 c1.E.hits;
  Alcotest.(check int) "jobs:4 cache hit" 1 c4.E.hits;
  Alcotest.(check int) "same lookups" c1.E.lookups c4.E.lookups;
  Alcotest.(check int) "same built" c1.E.built c4.E.built;
  Alcotest.(check bool) "rng advanced identically" true (next1 = next4)

(* A batch on a warm shared engine is served entirely from cache, even
   when the warm-up itself ran across domains. *)
let test_parallel_warmup_serves_hits () =
  let op = Ops.mtv 64 128 in
  let e = E.create cfg in
  let candidates =
    List.init 8 (fun i -> { small_params with Sk.cache_elems = 8 * (i + 1) })
  in
  let first = E.batch e ~jobs:4 op candidates in
  let built = (E.counters e).E.built and failed = (E.counters e).E.failed in
  let second = E.batch e ~jobs:4 op candidates in
  Alcotest.(check int) "no new builds" built (E.counters e).E.built;
  Alcotest.(check int) "no new failures" failed (E.counters e).E.failed;
  List.iter2
    (fun (_, a) (_, b) ->
      match (a, b) with
      | Ok m, Ok m' ->
          Alcotest.(check bool) "warm re-batch hits" true m'.E.from_cache;
          Alcotest.(check bool) "identical stats" true
            (m.E.artifact.E.stats = m'.E.artifact.E.stats)
      | Error a, Error b ->
          Alcotest.(check string) "same cached error" (E.error_to_string a)
            (E.error_to_string b)
      | _ -> Alcotest.fail "warm re-batch changed an outcome")
    first second

(* Property: for random operators, candidate lists (with forced
   duplicates) and seeds, a parallel batch is indistinguishable from a
   sequential one. *)
let prop_batch_jobs_equivalent =
  QCheck2.Test.make ~name:"batch ~jobs:4 equals ~jobs:1" ~count:25
    QCheck2.Gen.(
      tup4 (int_range 0 2) (int_range 0 10_000) (int_range 0 10_000)
        (int_range 1 10))
    (fun (which_op, cand_seed, noise_seed, n) ->
      let op =
        match which_op with
        | 0 -> Ops.mtv 64 128
        | 1 -> Ops.va 4096
        | _ -> Ops.gemm 16 16 16
      in
      let rng = Rng.create ~seed:cand_seed in
      let base = List.init n (fun _ -> Sk.random rng cfg op) in
      (* append a prefix of itself so every list has duplicate keys *)
      let candidates = base @ List.filteri (fun i _ -> i < (n + 1) / 2) base in
      check_jobs_equivalent ~noise_seed op candidates)

let test_measure_noise_fresh_on_hits () =
  let op = Ops.mtv 64 128 in
  let e = E.create cfg in
  let rng = Rng.create ~seed:11 in
  let m1 = Result.get_ok (E.measure e ~rng op small_params) in
  let m2 = Result.get_ok (E.measure e ~rng op small_params) in
  Alcotest.(check bool) "second from cache" true m2.E.from_cache;
  (* noise is drawn per measurement even on hits, stats stay identical *)
  Alcotest.(check bool) "stats identical" true
    (m1.E.artifact.E.stats = m2.E.artifact.E.stats);
  let base = U.Stats.total_s m1.E.artifact.E.stats in
  List.iter
    (fun l ->
      Alcotest.(check bool) "noise bounded" true
        (Float.abs (l -. base) /. base <= E.noise_amplitude +. 1e-9))
    [ m1.E.latency_s; m2.E.latency_s ]

(* --- integration with search and tuner ----------------------------- *)

let test_search_reports_cache_hits () =
  let module Se = Imtp_autotune.Search in
  let op = Ops.mtv 128 256 in
  let o = Se.run ~seed:9 cfg op ~trials:32 in
  (* evolutionary mutation re-proposes candidates; the engine dedups
     them and the outcome reports it. *)
  Alcotest.(check bool) "nonzero cache hits" true (o.Se.cache_hits > 0);
  Alcotest.(check bool) "hits bounded by trials" true (o.Se.cache_hits < 32)

let test_shared_engine_across_tunes () =
  let module Tu = Imtp_autotune.Tuner in
  let op = Ops.mtv 128 256 in
  let engine = E.create cfg in
  let r1 = Result.get_ok (Tu.tune ~seed:21 ~trials:16 ~engine cfg op) in
  let built_once = (E.counters engine).E.built in
  let r2 = Result.get_ok (Tu.tune ~seed:21 ~trials:16 ~engine cfg op) in
  (* identical seed on a warm shared engine: every candidate is served
     from cache, nothing new is built, and the result is unchanged. *)
  Alcotest.(check int) "no new builds" built_once (E.counters engine).E.built;
  Alcotest.(check bool) "nonzero hit rate" true
    (E.hit_rate (E.counters engine) > 0.);
  Alcotest.(check bool) "same winner" true (r1.Tu.params = r2.Tu.params);
  Alcotest.(check bool) "same stats" true (r1.Tu.stats = r2.Tu.stats)

let test_tuner_winner_not_rebuilt () =
  let module Tu = Imtp_autotune.Tuner in
  let op = Ops.va 50_000 in
  let engine = E.create cfg in
  let r = Result.get_ok (Tu.tune ~seed:5 ~trials:16 ~engine cfg op) in
  (* the winner's artifact must already be in cache from the search;
     re-measuring it now is a pure hit with the exact stats returned. *)
  match E.find engine op r.Tu.params with
  | Some (Ok a) ->
      Alcotest.(check bool) "tuner returned the cached artifact" true
        (a.E.stats = r.Tu.stats && a.E.program = r.Tu.program)
  | _ -> Alcotest.fail "winner missing from engine cache"

let test_eviction_resets_table () =
  let op = Ops.mtv 64 128 in
  let e = E.create ~max_entries:2 cfg in
  let p i = { small_params with Sk.cache_elems = 8 * (i + 1) } in
  List.iter (fun i -> ignore (E.build e op (p i))) [ 0; 1; 2; 3 ];
  let c = E.counters e in
  Alcotest.(check bool) "evicted at least once" true (c.E.evictions >= 1);
  (* still correct after eviction: rebuilt artifact equals a fresh one *)
  let a = Result.get_ok (E.build e op (p 0)) in
  let fresh = Result.get_ok (E.build (E.create cfg) op (p 0)) in
  Alcotest.(check bool) "rebuild identical" true (a.E.stats = fresh.E.stats)

let () =
  Alcotest.run "engine"
    [
      ( "hashing",
        [
          Alcotest.test_case "stable" `Quick test_fingerprint_stable;
          Alcotest.test_case "distinguishes" `Quick test_fingerprint_distinguishes;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit returns identical stats" `Quick
            test_cache_hit_identical_stats;
          Alcotest.test_case "errors cached" `Quick test_errors_cached;
          Alcotest.test_case "find is pure" `Quick test_find_is_pure;
          Alcotest.test_case "error rendering" `Quick test_error_to_string_prefixes;
          Alcotest.test_case "eviction" `Quick test_eviction_resets_table;
        ] );
      ( "batch",
        [
          Alcotest.test_case "matches sequential" `Quick test_batch_matches_sequential;
          Alcotest.test_case "fresh noise on hits" `Quick
            test_measure_noise_fresh_on_hits;
          Alcotest.test_case "parallel warm-up serves hits" `Quick
            test_parallel_warmup_serves_hits;
          QCheck_alcotest.to_alcotest prop_batch_jobs_equivalent;
        ] );
      ( "integration",
        [
          Alcotest.test_case "search reports hits" `Quick test_search_reports_cache_hits;
          Alcotest.test_case "shared engine across tunes" `Quick
            test_shared_engine_across_tunes;
          Alcotest.test_case "winner not rebuilt" `Quick test_tuner_winner_not_rebuilt;
        ] );
    ]
