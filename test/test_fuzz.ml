(* Differential fuzzing subsystem tests: a fixed-seed campaign that
   must come back clean with every schedule primitive exercised, the
   counters-vs-analytic-cost cross-check on the example workloads, an
   injected-fault canary proving the oracle actually detects broken
   programs, and unit tests for the greedy shrinker and reproducer
   output. *)

module Fz = Imtp_fuzz.Driver
module Oracle = Imtp_fuzz.Oracle
module Shrink = Imtp_fuzz.Shrink
module Gw = Imtp_fuzz.Gen_workload
module Gs = Imtp_fuzz.Gen_sched
module Gp = Imtp_fuzz.Gen_passes
module Sk = Imtp_autotune.Sketch
module L = Imtp_lower.Lowering
module Pl = Imtp_passes.Pipeline
module Op = Imtp_workload.Op
module Ops = Imtp_workload.Ops
module P = Imtp_tir.Program
module St = Imtp_tir.Stmt
module Eval = Imtp_tir.Eval
module Exec = Imtp_tir.Exec
module Cost = Imtp_tir.Cost
module T = Imtp_tensor
module U = Imtp_upmem

let cfg = U.Config.default

(* --- the fixed-seed campaign ------------------------------------------ *)

let campaign_seed = 1
let campaign_cases = 200

let campaign = lazy (Fz.run ~seed:campaign_seed ~cases:campaign_cases ())

let test_campaign_clean () =
  let o = Lazy.force campaign in
  List.iter
    (fun (index, case, failure) ->
      print_string (Fz.report_failure index case failure))
    o.Fz.failures;
  Alcotest.(check int) "no failures" 0 (List.length o.Fz.failures);
  Alcotest.(check int) "all cases ran" campaign_cases o.Fz.cases

let test_campaign_config_coverage () =
  let o = Lazy.force campaign in
  (* every checked case is compared under at least the four Fig. 12
     ablations (plus usually one extra config). *)
  Alcotest.(check bool)
    (Printf.sprintf "configs_checked %d >= 4 per case" o.Fz.configs_checked)
    true
    (o.Fz.configs_checked >= 4 * campaign_cases)

let test_campaign_primitive_coverage () =
  let c = (Lazy.force campaign).Fz.coverage in
  let assert_cov name n =
    Alcotest.(check bool) (Printf.sprintf "%s exercised (%d)" name n) true (n > 0)
  in
  assert_cov "split" c.Fz.split;
  assert_cov "reorder" c.Fz.reorder;
  assert_cov "bind" c.Fz.bind;
  assert_cov "rfactor" c.Fz.rfactor;
  assert_cov "unroll" c.Fz.unroll;
  assert_cov "parallel" c.Fz.parallel;
  assert_cov "cache_read+compute_at" c.Fz.cache_read;
  assert_cov "cache_write+reverse_compute_at" c.Fz.cache_write

let test_case_of_seed_deterministic () =
  match
    (Fz.case_of_seed ~seed:campaign_seed ~index:3,
     Fz.case_of_seed ~seed:campaign_seed ~index:3)
  with
  | Some a, Some b ->
      Alcotest.(check bool) "same workload" true (a.Oracle.workload = b.Oracle.workload);
      Alcotest.(check bool) "same steps" true (a.Oracle.steps = b.Oracle.steps);
      Alcotest.(check int) "same input seed" a.Oracle.input_seed b.Oracle.input_seed
  | _ -> Alcotest.fail "case 3 of the campaign seed should lower"

(* --- oracle rejection path -------------------------------------------- *)

let test_oracle_rejects_invalid () =
  (* A DPU-bound reduction segment without rfactor is structurally
     invalid: the oracle must classify it as a rejected draw, not a
     failure. *)
  let case =
    {
      Oracle.workload = { Gw.kind = Gw.Red; dims = [ 64 ] };
      steps = [ Gs.Split ("i", [ 8 ]); Gs.Bind ("io", Imtp_schedule.Sched.Block_x) ];
      options = L.default_options;
      extra_config = None;
      input_seed = 7;
    }
  in
  match Oracle.check case with
  | Oracle.Rejected _ -> ()
  | Oracle.Passed _ -> Alcotest.fail "invalid schedule accepted"
  | Oracle.Failed f -> Alcotest.fail (Oracle.failure_to_string f)

(* --- counters vs analytic cost on the example workloads --------------- *)

let params ?(sd = 4) ?(rd = 1) ?(t = 4) ?(c = 8) ?(rows = 2) () =
  {
    Sk.default_params with
    Sk.spatial_dpus = sd;
    reduction_dpus = rd;
    tasklets = t;
    cache_elems = c;
    rows_per_tasklet = rows;
  }

let check_counters name op p =
  let raw = L.lower ~options:(Sk.lower_options p) (Sk.instantiate op p) in
  let inputs = Ops.random_inputs op in
  List.iter
    (fun (aname, config) ->
      let prog = Pl.run ~config cfg raw in
      let _, counters = Eval.run_counted prog ~inputs in
      let analytic = Cost.dma_counts prog in
      Alcotest.(check int)
        (Printf.sprintf "%s/%s dma_ops" name aname)
        counters.Eval.dma_ops analytic.Cost.dma_ops;
      Alcotest.(check int)
        (Printf.sprintf "%s/%s dma_elems" name aname)
        counters.Eval.dma_elems analytic.Cost.dma_elems)
    Pl.ablations

let test_counters_va () = check_counters "va" (Ops.va 1000) (params ())
let test_counters_red () = check_counters "red" (Ops.red 999) (params ~rd:4 ())
let test_counters_mtv () = check_counters "mtv" (Ops.mtv 31 61) (params ())
let test_counters_mmtv () = check_counters "mmtv" (Ops.mmtv 3 15 31) (params ())

let test_counters_gemm () =
  check_counters "gemm" (Ops.gemm 17 13 21) (params ~c:4 ())

(* --- injected fault: the oracle must notice ---------------------------- *)

(* Strip every boundary guard from the kernels.  On a misaligned shape
   the computation then reads poisoned MRAM padding, so the output must
   diverge from the reference semantics — if it doesn't, the oracle's
   comparison (or the interpreter's poisoning) has gone soft. *)
let strip_guards (p : P.t) =
  let rec strip (s : St.t) =
    match s with
    | St.If { cond = _; then_; else_ = _ } -> strip then_
    | St.Seq ss -> St.Seq (List.map strip ss)
    | St.For { var; extent; kind; body } ->
        St.For { var; extent; kind; body = strip body }
    | St.Alloc { buffer; body } -> St.Alloc { buffer; body = strip body }
    | St.Nop | St.Barrier | St.Store _ | St.Dma _ | St.Xfer _ | St.Launch _ -> s
  in
  {
    p with
    P.kernels =
      List.map (fun (k : P.kernel) -> { k with P.body = strip k.P.body }) p.kernels;
  }

let test_injected_fault_detected () =
  let op = Ops.mtv 5 13 in
  let p = params ~sd:2 ~t:2 ~c:4 () in
  let raw = L.lower ~options:(Sk.lower_options p) (Sk.instantiate op p) in
  let inputs = Ops.random_inputs ~seed:11 op in
  let want = T.Tensor.to_value_list (Op.reference op inputs) in
  let broken = strip_guards raw in
  let got =
    match Eval.run broken ~inputs with
    | outs -> Some (T.Tensor.to_value_list (List.assoc (fst op.Op.output) outs))
    | exception Eval.Error _ -> None
  in
  Alcotest.(check bool) "guard-stripped program must not match reference" false
    (got = Some want)

(* --- compiled executor vs interpreter ---------------------------------- *)

(* The executor-equivalence property: for fuzz-drawn workload x
   schedule x pass-config triples, Exec.run_compiled and
   Eval.run_counted agree on every host buffer, all six counters, and
   raised Eval.Error messages.  This is the same oracle the campaign
   applies, but driven directly so it also runs under [IMTP_EXEC=interp]
   (where the campaign would skip the differential). *)
let same_outcome prog ~inputs =
  let reify run =
    match run prog ~inputs with
    | r -> Ok r
    | exception Eval.Error m -> Error m
  in
  let compiled = reify (fun p -> Exec.run_compiled (Exec.compile p)) in
  let interpreted = reify Eval.run_counted in
  match (compiled, interpreted) with
  | Error a, Error b -> String.equal a b
  | Ok (o1, c1), Ok (o2, c2) ->
      c1 = c2
      && List.length o1 = List.length o2
      && List.for_all2
           (fun (n1, t1) (n2, t2) ->
             String.equal n1 n2 && T.Tensor.equal t1 t2)
           o1 o2
  | Ok _, Error _ | Error _, Ok _ -> false

let prop_exec_equiv_eval =
  QCheck2.Test.make ~name:"compiled executor bit-matches interpreter" ~count:40
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 40))
    (fun (seed, index) ->
      match Fz.case_of_seed ~seed ~index with
      | None -> true
      | Some case -> (
          match Oracle.lower case with
          | Error _ -> true
          | Ok raw ->
              let op = Gw.op case.Oracle.workload in
              let inputs = Ops.random_inputs ~seed:case.Oracle.input_seed op in
              List.for_all
                (fun (_, config) ->
                  same_outcome (Pl.run ~config cfg raw) ~inputs)
                (Oracle.configs case)))

(* --- shrinker ---------------------------------------------------------- *)

let test_shrinker_minimizes () =
  (* Synthetic failure predicate: a case "fails" iff its steps still
     contain a Split.  The shrinker must drop every other step and
     drive all dims to 1 while keeping the predicate true. *)
  let case =
    {
      Oracle.workload = { Gw.kind = Gw.Mtv; dims = [ 24; 36 ] };
      steps =
        [
          Gs.Split ("i", [ 4 ]);
          Gs.Unroll ("i0");
          Gs.Parallel ("j", 2);
          Gs.Split ("j", [ 6 ]);
        ];
      options = L.default_options;
      extra_config = None;
      input_seed = 3;
    }
  in
  let still_fails (c : Oracle.case) =
    List.exists (function Gs.Split _ -> true | _ -> false) c.Oracle.steps
  in
  Alcotest.(check bool) "precondition" true (still_fails case);
  let min = Shrink.minimize_with ~still_fails case in
  Alcotest.(check bool) "still fails after shrinking" true (still_fails min);
  Alcotest.(check int) "only one step left" 1 (List.length min.Oracle.steps);
  Alcotest.(check (list int)) "dims at minimum" [ 1; 1 ] (Gw.dims min.Oracle.workload)

let test_shrinker_preserves_real_failure () =
  (* On a case that actually passes, minimize_with must never be handed
     a passing candidate as an improvement: with a predicate that is
     the real oracle, shrinking a passing case is a no-op contractually
     (still_fails is false immediately, nothing shrinks below it). *)
  match Fz.case_of_seed ~seed:campaign_seed ~index:0 with
  | None -> Alcotest.fail "case 0 should lower"
  | Some case ->
      let calls = ref 0 in
      let still_fails _ =
        incr calls;
        false
      in
      let min = Shrink.minimize_with ~still_fails case in
      (* nothing shrank: every candidate was refused. *)
      Alcotest.(check bool) "unchanged workload" true
        (Gw.dims min.Oracle.workload = Gw.dims case.Oracle.workload);
      Alcotest.(check int) "unchanged steps" (List.length case.Oracle.steps)
        (List.length min.Oracle.steps)

(* --- reproducer text --------------------------------------------------- *)

let test_reproducer_text () =
  match Fz.case_of_seed ~seed:campaign_seed ~index:0 with
  | None -> Alcotest.fail "case 0 should lower"
  | Some case ->
      let failure =
        Oracle.Output_mismatch
          { config = "dma+lt"; index = 5; got = "9"; want = "4" }
      in
      let text = Fz.report_failure 0 case failure in
      let contains needle =
        let n = String.length needle and h = String.length text in
        let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the workload" true
        (contains (Gw.describe case.Oracle.workload));
      Alcotest.(check bool) "shows the failure" true (contains "dma+lt");
      Alcotest.(check bool) "shows the schedule trace" true (contains "sch.");
      Alcotest.(check bool) "dumps the program" true (contains "def host")

let () =
  Alcotest.run "fuzz"
    [
      ( "campaign",
        [
          Alcotest.test_case "200 cases clean" `Quick test_campaign_clean;
          Alcotest.test_case "config coverage" `Quick test_campaign_config_coverage;
          Alcotest.test_case "primitive coverage" `Quick
            test_campaign_primitive_coverage;
          Alcotest.test_case "deterministic" `Quick test_case_of_seed_deterministic;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "rejects invalid" `Quick test_oracle_rejects_invalid;
          Alcotest.test_case "injected fault detected" `Quick
            test_injected_fault_detected;
        ] );
      ( "counters-vs-cost",
        [
          Alcotest.test_case "va" `Quick test_counters_va;
          Alcotest.test_case "red" `Quick test_counters_red;
          Alcotest.test_case "mtv" `Quick test_counters_mtv;
          Alcotest.test_case "mmtv" `Quick test_counters_mmtv;
          Alcotest.test_case "gemm" `Quick test_counters_gemm;
        ] );
      ( "executor",
        [ QCheck_alcotest.to_alcotest prop_exec_equiv_eval ] );
      ( "shrinker",
        [
          Alcotest.test_case "minimizes" `Quick test_shrinker_minimizes;
          Alcotest.test_case "refuses passing candidates" `Quick
            test_shrinker_preserves_real_failure;
        ] );
      ( "reproducer",
        [ Alcotest.test_case "self-contained text" `Quick test_reproducer_text ] );
    ]
