(* Observability tests: span nesting and ordering, histogram bucket
   boundaries, JSONL round-trips, the folded-stack report, and the
   property that instrumenting the engine leaves its results
   bit-identical. *)

module Obs = Imtp_obs.Obs
module E = Imtp_engine.Engine
module Sk = Imtp_engine.Sketch
module Ops = Imtp_workload.Ops

let cfg = Imtp_upmem.Config.default

let spans_of events =
  List.filter_map (function Obs.Span s -> Some s | _ -> None) events

(* --- spans --------------------------------------------------------- *)

let test_span_nesting () =
  Obs.reset ();
  let r =
    Obs.span ~name:"outer" @@ fun () ->
    Obs.span ~name:"inner" (fun () -> 6) * 7
  in
  Alcotest.(check int) "span returns f ()" 42 r;
  match spans_of (Obs.snapshot ()) with
  | [ inner; outer ] ->
      (* children finish (and are recorded) before their parent *)
      Alcotest.(check string) "child recorded first" "inner" inner.Obs.name;
      Alcotest.(check string) "parent recorded second" "outer" outer.Obs.name;
      Alcotest.(check (option int))
        "child parented to outer" (Some outer.Obs.id) inner.Obs.parent;
      Alcotest.(check (option int)) "outer is a root" None outer.Obs.parent;
      Alcotest.(check bool) "ids in start order" true
        (outer.Obs.id < inner.Obs.id);
      Alcotest.(check bool) "child starts after parent" true
        (inner.Obs.start_s >= outer.Obs.start_s);
      Alcotest.(check bool) "child fits inside parent" true
        (inner.Obs.dur_s <= outer.Obs.dur_s)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_records_on_raise () =
  Obs.reset ();
  (try
     Obs.span ~name:"doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  match spans_of (Obs.snapshot ()) with
  | [ s ] -> Alcotest.(check string) "span survives the raise" "doomed" s.Obs.name
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_attrs () =
  Obs.reset ();
  Obs.add_attr "ignored" (Obs.Int 1);
  (* no-op outside a span *)
  Obs.span ~attrs:[ ("op", Obs.Str "mtv") ] ~name:"s" (fun () ->
      Obs.add_attr "hit" (Obs.Bool true));
  match spans_of (Obs.snapshot ()) with
  | [ s ] ->
      Alcotest.(check int) "two attrs" 2 (List.length s.Obs.attrs);
      Alcotest.(check bool) "static attr present" true
        (List.mem_assoc "op" s.Obs.attrs);
      Alcotest.(check bool) "mid-flight attr present" true
        (List.mem_assoc "hit" s.Obs.attrs)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_ring_bounded () =
  Obs.reset ();
  Obs.set_ring_capacity 4;
  for i = 0 to 9 do
    Obs.span ~name:(Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let names = List.map (fun s -> s.Obs.name) (spans_of (Obs.snapshot ())) in
  Alcotest.(check (list string))
    "ring keeps the newest spans, oldest first"
    [ "s6"; "s7"; "s8"; "s9" ] names;
  Obs.set_ring_capacity 8192

(* --- metrics ------------------------------------------------------- *)

let test_counters_and_gauges () =
  Obs.reset ();
  Alcotest.(check int) "unknown counter reads 0" 0 (Obs.counter_value "c");
  Obs.incr "c";
  Obs.incr ~by:41 "c";
  Alcotest.(check int) "counter accumulates" 42 (Obs.counter_value "c");
  Alcotest.(check (option (float 0.))) "unknown gauge" None (Obs.gauge_value "g");
  Obs.set_gauge "g" 1.5;
  Obs.set_gauge "g" 2.5;
  Alcotest.(check (option (float 0.))) "gauge last-value-wins" (Some 2.5)
    (Obs.gauge_value "g")

let test_bucket_boundaries () =
  Alcotest.(check int) "bucket count" 61 Obs.bucket_count;
  (* upper bounds are strictly increasing and end at infinity *)
  for i = 1 to Obs.bucket_count - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "bound %d > bound %d" i (i - 1))
      true
      (Obs.bucket_upper_bound i > Obs.bucket_upper_bound (i - 1))
  done;
  Alcotest.(check bool) "overflow bucket is infinite" true
    (Obs.bucket_upper_bound (Obs.bucket_count - 1) = infinity);
  (* an exact upper bound lands in its own bucket (inclusive), and a
     value just above it lands in the next one *)
  for i = 0 to Obs.bucket_count - 2 do
    let ub = Obs.bucket_upper_bound i in
    Alcotest.(check int)
      (Printf.sprintf "ub of bucket %d is inclusive" i)
      i (Obs.bucket_index ub);
    Alcotest.(check int)
      (Printf.sprintf "just above ub of bucket %d" i)
      (i + 1)
      (Obs.bucket_index (ub *. (1. +. 1e-12)))
  done;
  Alcotest.(check int) "zero goes to bucket 0" 0 (Obs.bucket_index 0.);
  Alcotest.(check int) "negative goes to bucket 0" 0 (Obs.bucket_index (-5.));
  Alcotest.(check int) "huge goes to overflow" (Obs.bucket_count - 1)
    (Obs.bucket_index 1e9)

let test_histogram () =
  Obs.reset ();
  List.iter (Obs.observe "h") [ 0.001; 0.002; 0.004; 0.1; 2.0 ];
  match
    List.filter_map
      (function Obs.Histogram ("h", h) -> Some h | _ -> None)
      (Obs.snapshot ())
  with
  | [ h ] ->
      Alcotest.(check int) "count" 5 h.Obs.count;
      Alcotest.(check (float 1e-9)) "sum" 2.107 h.Obs.sum;
      Alcotest.(check (float 0.)) "vmin" 0.001 h.Obs.vmin;
      Alcotest.(check (float 0.)) "vmax" 2.0 h.Obs.vmax;
      Alcotest.(check int) "bucket counts total the count" 5
        (List.fold_left (fun a (_, c) -> a + c) 0 h.Obs.buckets);
      let q50 = Obs.hist_quantile h 0.5 in
      Alcotest.(check bool) "p50 within data range" true
        (q50 >= h.Obs.vmin && q50 <= h.Obs.vmax);
      Alcotest.(check (float 0.)) "p100 clamps to vmax" 2.0
        (Obs.hist_quantile h 1.0)
  | l -> Alcotest.failf "expected 1 histogram, got %d" (List.length l)

(* --- JSON / JSONL round-trips -------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Obs.Json.Obj
      [
        ("s", Obs.Json.Str "a\"b\\c\nd\tñ");
        ("n", Obs.Json.Num 0.1);
        ("big", Obs.Json.Num 1e300);
        ("l", Obs.Json.List [ Obs.Json.Null; Obs.Json.Bool true ]);
      ]
  in
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | Ok j' ->
      Alcotest.(check bool) "value round-trips" true (j = j');
      Alcotest.(check (option string)) "member lookup" None
        (Option.map Obs.Json.to_string (Obs.Json.member "missing" j'))
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "{} trailing" ]

let test_jsonl_roundtrip () =
  Obs.reset ();
  Obs.span ~attrs:[ ("op", Obs.Str "va"); ("ok", Obs.Bool true) ] ~name:"a"
    (fun () -> Obs.span ~name:"b" (fun () -> ()));
  Obs.incr ~by:7 "trips";
  Obs.set_gauge "best" 0.25;
  Obs.observe "lat" 0.003;
  let events = Obs.snapshot () in
  let file = Filename.temp_file "imtp_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc (Obs.to_jsonl events);
      close_out oc;
      match Obs.load_jsonl file with
      | Ok events' ->
          Alcotest.(check bool) "events round-trip through JSONL" true
            (events = events')
      | Error m -> Alcotest.failf "load_jsonl failed: %s" m)

let test_sink_stream () =
  let file = Filename.temp_file "imtp_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Obs.reset ();
      Obs.with_sink (Some file) (fun () ->
          Obs.span ~name:"streamed" (fun () -> Obs.incr "n"));
      match Obs.load_jsonl file with
      | Ok events ->
          Alcotest.(check bool) "sink streamed the span" true
            (List.exists
               (function
                 | Obs.Span s -> s.Obs.name = "streamed" | _ -> false)
               events);
          Alcotest.(check bool) "sink appended final metrics" true
            (List.exists
               (function Obs.Counter ("n", 1) -> true | _ -> false)
               events)
      | Error m -> Alcotest.failf "load_jsonl failed: %s" m)

(* --- folded stacks ------------------------------------------------- *)

let test_folded () =
  Obs.reset ();
  Obs.span ~name:"root" (fun () ->
      Obs.span ~name:"leaf" (fun () -> Unix.sleepf 0.002);
      Obs.span ~name:"leaf" (fun () -> Unix.sleepf 0.002));
  let f = Obs.folded (Obs.snapshot ()) in
  Alcotest.(check bool) "leaf path present under root" true
    (List.mem_assoc "root;leaf" f);
  Alcotest.(check bool) "both leaf occurrences summed" true
    (List.assoc "root;leaf" f >= 3000);
  (* root's self time excludes its children *)
  (match List.assoc_opt "root" f with
  | Some self ->
      Alcotest.(check bool) "root self < children total" true
        (self < List.assoc "root;leaf" f)
  | None -> ());
  Alcotest.(check bool) "paths sorted" true
    (List.sort compare f = f)

(* --- instrumentation does not change results ----------------------- *)

let prop_engine_bit_identical =
  (* variable identifiers are freshly generated on every lowering, so
     two builds of the same candidate are compared through the printed
     program (which is stable) plus the key and the full stats record. *)
  let print_program p =
    Format.asprintf "%a" Imtp_tir.Printer.pp_program p
  in
  QCheck.Test.make ~count:15 ~name:"traced Engine.build is bit-identical"
    QCheck.(triple (int_range 0 1_000_000) (int_range 8 96) (int_range 8 96))
    (fun (seed, m, n) ->
      (* QCheck shrinks ints toward 0, below int_range's low bound *)
      let m = max 8 m and n = max 8 n in
      let op = Ops.mtv m n in
      let rng = Imtp_engine.Rng.create ~seed in
      let params = Sk.random rng cfg op in
      let build () = E.build (E.create cfg) op params in
      (* plain build, observability reset *)
      Obs.reset ();
      let plain = build () in
      (* instrumented build: active sink, live metrics *)
      let file = Filename.temp_file "imtp_obs" ".jsonl" in
      let traced =
        Fun.protect
          ~finally:(fun () -> Sys.remove file)
          (fun () -> Obs.with_sink (Some file) build)
      in
      Obs.reset ();
      match (plain, traced) with
      | Ok a, Ok b ->
          a.E.key = b.E.key && a.E.sched = b.E.sched
          && print_program a.E.lowered = print_program b.E.lowered
          && print_program a.E.program = print_program b.E.program
          && a.E.stats = b.E.stats
      | Error a, Error b -> a = b
      | _ -> false)

(* --- suite --------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "recorded on raise" `Quick
            test_span_records_on_raise;
          Alcotest.test_case "attributes" `Quick test_attrs;
          Alcotest.test_case "ring buffer bounded" `Quick test_ring_bounded;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_counters_and_gauges;
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "histogram snapshot" `Quick test_histogram;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "json rejects garbage" `Quick
            test_json_rejects_garbage;
          Alcotest.test_case "events round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "sink streams spans" `Quick test_sink_stream;
        ] );
      ( "report",
        [ Alcotest.test_case "folded stacks" `Quick test_folded ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_engine_bit_identical ] );
    ]
