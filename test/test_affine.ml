(* Affine bound-analysis layer tests: the Fourier–Motzkin core
   (negative coefficients, Eq/Ne conjuncts, clamped extents), the
   guard-eliminating lowering on ragged shapes, the affine pass stack
   under rfactor, and the verifier's variable-size DMA bounds. *)

module Aff = Imtp_tir.Affine
module E = Imtp_tir.Expr
module St = Imtp_tir.Stmt
module B = Imtp_tir.Buffer
module V = Imtp_tir.Var
module P = Imtp_tir.Program
module Simp = Imtp_tir.Simplify
module Sk = Imtp_autotune.Sketch
module L = Imtp_lower.Lowering
module Pl = Imtp_passes.Pipeline
module M = Imtp_passes.Metrics
module Op = Imtp_workload.Op
module Ops = Imtp_workload.Ops
module T = Imtp_tensor
module U = Imtp_upmem

let cfg = U.Config.default
let ei = E.int
let ( +: ) a b = E.Binop (E.Add, a, b)
let ( -: ) a b = E.Binop (E.Sub, a, b)
let ( *: ) a b = E.Binop (E.Mul, a, b)
let lt a b = E.Cmp (E.Lt, a, b)

(* --- core: entailment ------------------------------------------------- *)

let test_negative_coefficients () =
  let i = V.fresh "i" in
  let ctx = Aff.assume_loop Aff.empty i (ei 10) in
  (* 10 - i > 0 follows from i <= 9. *)
  Alcotest.(check bool)
    "10 - i > 0" true
    (Aff.prove ctx (E.Cmp (E.Gt, ei 10 -: E.var i, ei 0)));
  Alcotest.(check bool)
    "i - 10 < 0" true
    (Aff.prove ctx (lt (E.var i -: ei 10) (ei 0)));
  (* -2i >= -18 (negative coefficient on both sides). *)
  Alcotest.(check bool)
    "-2i >= -18" true
    (Aff.prove ctx (E.Cmp (E.Ge, ei 0 -: (ei 2 *: E.var i), ei 0 -: ei 18)));
  Alcotest.(check bool)
    "i < 5 unknown" false
    (Aff.prove ctx (lt (E.var i) (ei 5)));
  (match Aff.implies ctx (E.Cmp (E.Ge, E.var i, ei 10)) with
  | Aff.False -> ()
  | Aff.True | Aff.Unknown -> Alcotest.fail "i >= 10 should be refuted")

let test_eq_ne_conjuncts () =
  let i = V.fresh "i" and j = V.fresh "j" in
  let ctx =
    Aff.assume Aff.empty
      (E.And (E.Cmp (E.Eq, E.var i, ei 3), lt (E.var j) (E.var i)))
  in
  (* i = 3 and j < i entail j < 3 and i < 4. *)
  Alcotest.(check bool)
    "j < 3" true
    (Aff.prove ctx (lt (E.var j) (ei 3)));
  Alcotest.(check bool)
    "i < 4" true
    (Aff.prove ctx (lt (E.var i) (ei 4)));
  (* Ne conjuncts are soundly ignored: the context gets weaker, not
     wrong. *)
  let ctx' =
    Aff.assume
      (Aff.assume_loop Aff.empty i (ei 8))
      (E.Cmp (E.Ne, E.var i, ei 3))
  in
  Alcotest.(check bool)
    "range survives Ne" true
    (Aff.prove ctx' (lt (E.var i) (ei 8)));
  Alcotest.(check bool)
    "Ne not used as a fact" false
    (Aff.prove ctx' (E.Cmp (E.Ne, E.var i, ei 3)) = false
    && Aff.infeasible ctx')

let test_clamped_extent_proves_containment () =
  (* The exact theorem behind the affine lowering: with b a block index
     and i a copy-loop index clamped to [min (64, 500 - 64 b)], the
     boundary guard [64 b + i < 500] is provable. *)
  let b = V.fresh "b" and i = V.fresh "i" in
  let ctx = Aff.assume_loop Aff.empty b (ei 8) in
  let clamp = E.min_e (ei 64) (ei 500 -: (E.var b *: ei 64)) in
  let ctx = Aff.assume_loop ctx i clamp in
  let guard = lt ((E.var b *: ei 64) +: E.var i) (ei 500) in
  Alcotest.(check bool) "guard provable" true (Aff.prove ctx guard);
  (match Aff.bound_range ctx ((E.var b *: ei 64) +: E.var i) with
  | Some (lo, hi) ->
      Alcotest.(check int) "lo" 0 lo;
      Alcotest.(check bool) "hi <= 499" true (hi <= 499)
  | None -> Alcotest.fail "bound_range should resolve");
  (* Without the clamp the guard is not provable (i may reach 63 while
     b = 7 -> 448 + 63 = 511 >= 500). *)
  let ctx' =
    Aff.assume_loop (Aff.assume_loop Aff.empty b (ei 8)) i (ei 64)
  in
  Alcotest.(check bool) "unclamped unknown" false (Aff.prove ctx' guard)

let test_cond_upper_bound () =
  let i = V.fresh "i" in
  (* Negative coefficient form: 10 - i > 0 <=> i < 10, exact. *)
  (match Aff.cond_upper_bound i (E.Cmp (E.Gt, ei 10 -: E.var i, ei 0)) with
  | Some (b, exact) ->
      Alcotest.(check (option int))
        "bound 10" (Some 10)
        (Simp.const_int (Simp.expr b));
      Alcotest.(check bool) "exact" true exact
  | None -> Alcotest.fail "negated coefficient bound missed");
  (* Eq conjunct: i = 5 implies i < 6 but is not equivalent to it. *)
  match Aff.cond_upper_bound i (E.Cmp (E.Eq, E.var i, ei 5)) with
  | Some (b, exact) ->
      Alcotest.(check (option int))
        "bound 6" (Some 6)
        (Simp.const_int (Simp.expr b));
      Alcotest.(check bool) "inexact" false exact
  | None -> Alcotest.fail "Eq bound missed"

(* --- lowering: guard elimination on ragged shapes --------------------- *)

let params ?(sd = 4) ?(rd = 1) ?(t = 4) ?(c = 64) ?(rows = 2) () =
  {
    Sk.default_params with
    Sk.spatial_dpus = sd;
    reduction_dpus = rd;
    tasklets = t;
    cache_elems = c;
    rows_per_tasklet = rows;
  }

let lower_with ~affine op p =
  let options =
    { (Sk.lower_options p) with L.affine_guards = affine }
  in
  L.lower ~options (Sk.instantiate op p)

let outputs prog op =
  let inputs = Ops.random_inputs op in
  let outs = Imtp_tir.Eval.run prog ~inputs in
  T.Tensor.to_value_list (List.assoc (fst op.Op.output) outs)

let rec has_dma = function
  | St.Dma _ -> true
  | St.Seq ss -> List.exists has_dma ss
  | St.For { body; _ } | St.Alloc { body; _ } -> has_dma body
  | St.If { then_; else_; _ } ->
      has_dma then_ || Option.fold ~none:false ~some:has_dma else_
  | St.Store _ | St.Xfer _ | St.Launch _ | St.Barrier | St.Nop -> false

(* If nodes with a DMA somewhere below: the boundary checks the affine
   lowering is supposed to prove away. *)
let rec guarded_dmas = function
  | St.If { then_; else_; _ } as s ->
      (if has_dma s then 1 else 0)
      + guarded_dmas then_
      + Option.fold ~none:0 ~some:guarded_dmas else_
  | St.Seq ss -> List.fold_left (fun acc s -> acc + guarded_dmas s) 0 ss
  | St.For { body; _ } | St.Alloc { body; _ } -> guarded_dmas body
  | St.Store _ | St.Dma _ | St.Xfer _ | St.Launch _ | St.Barrier | St.Nop -> 0

let kernel_body (prog : P.t) = (List.hd prog.P.kernels).P.body

let check_ragged name op p =
  let legacy = lower_with ~affine:false op p in
  let affine = lower_with ~affine:true op p in
  (* semantics identical on the raw programs... *)
  Alcotest.(check bool)
    (name ^ ": outputs equal") true
    (outputs affine op = outputs legacy op);
  (* ...and after each stack's own passes. *)
  let legacy' = Pl.run ~config:Pl.legacy cfg legacy in
  let affine' = Pl.run ~config:Pl.affine_on cfg affine in
  Alcotest.(check bool)
    (name ^ ": optimized outputs equal") true
    (outputs affine' op = outputs legacy' op);
  (* the ragged tile really carries guards in the legacy lowering and
     none of the DMA guards survive containment proofs in the affine
     one. *)
  Alcotest.(check bool)
    (name ^ ": legacy raw kernel has guarded DMAs") true
    (guarded_dmas (kernel_body legacy) > 0);
  Alcotest.(check int)
    (name ^ ": affine raw kernel has zero guarded DMAs") 0
    (guarded_dmas (kernel_body affine));
  let mb prog = (M.of_kernel (List.hd prog.P.kernels)).M.static_branches in
  Alcotest.(check bool)
    (name ^ ": affine kernel has fewer branches") true
    (mb affine < mb legacy)

let test_ragged_gemv () = check_ragged "gemv 500x500" (Ops.gemv ~c:3 500 500) (params ())

let test_ragged_mmtv () =
  check_ragged "mmtv 8x60x60" (Ops.mmtv 8 60 60) (params ~c:16 ())

let test_ragged_rfactor () =
  (* bounds under rfactor: hierarchical reduction with a ragged
     reduction axis — partial gather, host final reduction. *)
  let op = Ops.gemv ~c:3 500 500 in
  let p = params ~rd:4 () in
  let legacy = lower_with ~affine:false op p in
  let affine = lower_with ~affine:true op p in
  Alcotest.(check bool)
    "rfactor outputs equal" true
    (outputs affine op = outputs legacy op);
  let legacy' = Pl.run ~config:Pl.legacy cfg legacy in
  let affine' = Pl.run ~config:Pl.affine_on cfg affine in
  Alcotest.(check bool)
    "rfactor optimized outputs equal" true
    (outputs affine' op = outputs legacy' op);
  Alcotest.(check int)
    "rfactor affine kernel has zero guarded DMAs" 0
    (guarded_dmas (kernel_body affine))

let test_divisible_zero_guards () =
  (* Fully divisible tiling must lower without a single If, affine or
     not: containment is structural there. *)
  let op = Ops.mtv 32 64 in
  let p = params ~c:8 () in
  List.iter
    (fun affine ->
      let prog = lower_with ~affine op p in
      Alcotest.(check int)
        (Printf.sprintf "zero guards (affine=%b)" affine)
        0
        ((M.of_kernel (List.hd prog.P.kernels)).M.static_branches))
    [ false; true ]

(* cross-stack soundness, the fuzz oracle's contract in miniature: an
   affine-lowered program stays correct under the legacy passes and
   vice versa. *)
let test_cross_stack () =
  let op = Ops.gemv ~c:3 500 500 in
  let p = params () in
  let legacy = lower_with ~affine:false op p in
  let affine = lower_with ~affine:true op p in
  let want = outputs legacy op in
  List.iter
    (fun (cname, config) ->
      List.iter
        (fun (pname, prog) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s lowering under %s" pname cname)
            true
            (outputs (Pl.run ~config cfg prog) op = want))
        [ ("legacy", legacy); ("affine", affine) ])
    [ ("legacy passes", Pl.legacy); ("affine passes", Pl.affine_on) ]

(* --- verifier: variable-size DMA bounds -------------------------------- *)

let synthetic_program extent_cap =
  let v = V.fresh "i" in
  let wbuf = B.create "w" T.Dtype.I32 ~elems:8192 B.Wram in
  let body =
    St.Alloc
      {
        buffer = wbuf;
        body =
          St.For
            {
              var = v;
              extent = E.min_e (ei extent_cap) (ei (extent_cap - 1));
              kind = St.Serial;
              body =
                St.Dma
                  {
                    dir = St.Mram_to_wram;
                    wram = "w";
                    wram_off = ei 0;
                    mram = "m";
                    mram_off = ei 0;
                    elems = E.var v;
                  };
            };
      }
  in
  {
    P.name = "synthetic";
    host_buffers = [];
    mram_buffers = [];
    kernels = [ { P.kname = "k"; body } ];
    host = St.Launch "k";
  }

let test_verifier_variable_dma () =
  let esize = 4 in
  let cap_ok = cfg.U.Config.dma_max_bytes / esize in
  (* elems <= cap_ok - 2: within the DMA limit, must be accepted. *)
  (match Imtp_engine.Verifier.check cfg (synthetic_program cap_ok) with
  | Ok () -> ()
  | Error r ->
      Alcotest.failf "bounded variable DMA rejected: %s"
        r.Imtp_engine.Verifier.reason);
  (* 4x the limit: the affine upper bound must catch it, under the
     "dma" constraint name the search tallies. *)
  match Imtp_engine.Verifier.check cfg (synthetic_program (4 * cap_ok)) with
  | Ok () -> Alcotest.fail "oversized variable DMA accepted"
  | Error r ->
      Alcotest.(check string)
        "constraint name" "dma" r.Imtp_engine.Verifier.constraint_name

(* --- search: rejection tally ------------------------------------------ *)

let test_search_rejections () =
  (* A machine with almost no WRAM makes most sketches violate the
     footprint bound, so the tally has something to group. *)
  let tiny = { U.Config.default with U.Config.wram_bytes = 512 } in
  let op = Ops.mtv 128 256 in
  let o = Imtp_autotune.Search.run ~seed:11 ~jobs:1 tiny op ~trials:32 in
  let total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 o.Imtp_autotune.Search.rejections
  in
  Alcotest.(check int)
    "tally sums to invalid_candidates" o.Imtp_autotune.Search.invalid_candidates
    total;
  Alcotest.(check bool)
    "rejections present" true
    (o.Imtp_autotune.Search.invalid_candidates = 0
    || o.Imtp_autotune.Search.rejections <> [])

let () =
  Alcotest.run "affine"
    [
      ( "core",
        [
          Alcotest.test_case "negative coefficients" `Quick
            test_negative_coefficients;
          Alcotest.test_case "eq/ne conjuncts" `Quick test_eq_ne_conjuncts;
          Alcotest.test_case "clamped extents" `Quick
            test_clamped_extent_proves_containment;
          Alcotest.test_case "cond_upper_bound" `Quick test_cond_upper_bound;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "ragged gemv guard-free" `Quick test_ragged_gemv;
          Alcotest.test_case "ragged mmtv guard-free" `Quick test_ragged_mmtv;
          Alcotest.test_case "ragged rfactor" `Quick test_ragged_rfactor;
          Alcotest.test_case "divisible zero guards" `Quick
            test_divisible_zero_guards;
          Alcotest.test_case "cross-stack soundness" `Quick test_cross_stack;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "variable dma bounds" `Quick
            test_verifier_variable_dma;
        ] );
      ( "search",
        [
          Alcotest.test_case "rejection tally" `Quick test_search_rejections;
        ] );
    ]
