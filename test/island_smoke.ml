(* CI smoke for the island-model search, part of `dune build @check`:
   a 2-island tune must produce the same history digest at -j 1 and
   -j 2 (jobs never change the trajectory at a fixed island count),
   and a run killed at a mid-run migration-boundary checkpoint then
   resumed must land on the uninterrupted run's digest bit-for-bit. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let cfg = Imtp.default_config in
  let op = Imtp.Ops.mtv 128 256 in
  let trials = 128 and seed = 23 in
  let run ?jobs ?resume ?on_checkpoint ?stop () =
    Imtp.Search.run ~seed ?jobs ~islands:2 ~migrate_every:1 ?resume
      ?on_checkpoint ?stop cfg op ~trials
  in
  let full_j1 = run ~jobs:1 () in
  let full_j2 = run ~jobs:2 () in
  let digest = Imtp.Protocol.history_digest in
  if digest full_j1 <> digest full_j2 then
    fail "island smoke: -j1 and -j2 digests differ at islands=2";
  let n_ck = ref 0 and last = ref None in
  let killed =
    run ~jobs:2
      ~on_checkpoint:(fun ck ->
        incr n_ck;
        last := Some ck)
      ~stop:(fun () -> !n_ck > 1)
      ()
  in
  if not killed.Imtp.Search.interrupted then
    fail "island smoke: stop callback did not interrupt the run";
  let ck =
    match !last with Some ck -> ck | None -> fail "island smoke: no checkpoint"
  in
  let at = Imtp.Search.checkpoint_trial ck in
  if at <= 0 || at >= trials then
    fail "island smoke: checkpoint at trial %d is not mid-run" at;
  if Imtp.Search.checkpoint_islands ck <> 2 then
    fail "island smoke: checkpoint lost the island count";
  let resumed = run ~jobs:2 ~resume:ck () in
  if resumed.Imtp.Search.interrupted then
    fail "island smoke: resumed run did not complete";
  if digest resumed <> digest full_j2 then
    fail "island smoke: resumed digest differs from the uninterrupted run";
  Printf.printf
    "island smoke ok: islands=2, %d trials, killed at trial %d, resumed \
     digest %s\n"
    trials at (digest resumed)
