(* Autotuner tests: sketches, verifier, cost model, measurement and the
   balanced evolutionary search. *)

module Sk = Imtp_autotune.Sketch
module V = Imtp_autotune.Verifier
module Ms = Imtp_autotune.Measure
module Cm = Imtp_autotune.Cost_model
module Se = Imtp_autotune.Search
module Tu = Imtp_autotune.Tuner
module Rng = Imtp_autotune.Rng
module Ops = Imtp_workload.Ops
module Op = Imtp_workload.Op
module U = Imtp_upmem
module T = Imtp_tensor

let cfg = U.Config.default

let test_family_detection () =
  Alcotest.(check bool) "va" true (Sk.family_of (Ops.va 8) = Sk.Elementwise);
  Alcotest.(check bool) "red" true (Sk.family_of (Ops.red 8) = Sk.Tasklet_reduce);
  Alcotest.(check bool) "mtv" true (Sk.family_of (Ops.mtv 4 4) = Sk.Mat_vec);
  Alcotest.(check bool) "mmtv" true (Sk.family_of (Ops.mmtv 2 4 4) = Sk.Batched);
  Alcotest.(check bool) "gemm" true (Sk.family_of (Ops.gemm 4 4 4) = Sk.Mat_mat)

let test_sketch_instantiates_all_families () =
  let check op p =
    let s = Sk.instantiate op p in
    let prog = Imtp_lower.Lowering.lower ~options:(Sk.lower_options p) s in
    match Imtp_tir.Program.validate prog with
    | Ok () -> ()
    | Error m -> Alcotest.fail m
  in
  let p = { Sk.default_params with Sk.spatial_dpus = 8; tasklets = 4; cache_elems = 8 } in
  check (Ops.va 500) p;
  check (Ops.red 500) { p with Sk.reduction_dpus = 4 };
  check (Ops.mtv 30 40) p;
  check (Ops.mtv 30 40) { p with Sk.reduction_dpus = 2 };
  check (Ops.mmtv 3 10 20) { p with Sk.rows_per_tasklet = 2 };
  check (Ops.ttv 3 10 20) { p with Sk.reduction_dpus = 2; rows_per_tasklet = 2 };
  check (Ops.gemm 10 12 14) p;
  check (Ops.gemm 10 12 14) { p with Sk.reduction_dpus = 2 }

let test_sketch_correctness_random_params () =
  let rng = Rng.create ~seed:11 in
  List.iter
    (fun op ->
      for _ = 1 to 5 do
        let p = Sk.random rng cfg op in
        match Ms.build cfg op p with
        | Error _ -> () (* verifier may reject; that's fine *)
        | Ok prog ->
            let inputs = Ops.random_inputs op in
            let outs = Imtp_tir.Eval.run prog ~inputs in
            let got = T.Tensor.to_value_list (List.assoc (fst op.Op.output) outs) in
            let want = T.Tensor.to_value_list (Op.reference op inputs) in
            if got <> want then
              Alcotest.failf "wrong result for %s under %s" op.Op.opname
                (Sk.describe p)
      done)
    [
      Ops.va 333;
      Ops.geva ~c:3 ~d:2 333;
      Ops.red 257;
      Ops.mtv 19 37;
      Ops.gemv ~c:5 19 37;
      Ops.ttv 3 9 17;
      Ops.mmtv 3 9 17;
      Ops.gemm 13 11 9;
    ]

let test_verifier_rejects_too_many_tasklets () =
  let s =
    Sk.instantiate (Ops.va 100000)
      { Sk.default_params with Sk.tasklets = 24; spatial_dpus = 16 }
  in
  (match V.check_sched cfg s with Ok () -> () | Error _ -> Alcotest.fail "24 ok");
  (* 25 tasklets cannot even be expressed through the sketch choices;
     check the verifier directly on a hand schedule. *)
  let op = Ops.va 100000 in
  let sch = Imtp_schedule.Sched.create op in
  let i = List.hd (Imtp_schedule.Sched.order sch) in
  (match Imtp_schedule.Sched.split sch i ~factors:[ 25; 4 ] with
  | [ _o; th; _inner ] -> Imtp_schedule.Sched.bind sch th Imtp_schedule.Sched.Thread_x
  | _ -> assert false);
  match V.check_sched cfg sch with
  | Error r -> Alcotest.(check string) "constraint" "tasklets" r.V.constraint_name
  | Ok () -> Alcotest.fail "25 tasklets accepted"

let test_verifier_rejects_wram_overflow () =
  (* 512-element caches x 3 buffers x 24 tasklets = 144 KB > 64 KB. *)
  let p =
    {
      Sk.default_params with
      Sk.spatial_dpus = 4;
      tasklets = 24;
      cache_elems = 512;
    }
  in
  match Ms.build cfg (Ops.va 1000000) p with
  | Error m ->
      Alcotest.(check bool) "mentions wram" true
        (String.length m > 0
        &&
        let rec find i =
          i + 4 <= String.length m && (String.sub m i 4 = "WRAM" || find (i + 1))
        in
        find 0)
  | Ok _ -> Alcotest.fail "WRAM overflow accepted"

let test_verifier_rejects_grid_overflow () =
  let small = U.Config.with_dpus cfg 64 in
  let p = { Sk.default_params with Sk.spatial_dpus = 2048; tasklets = 2; cache_elems = 4 } in
  match Ms.build small (Ops.va (1 lsl 20)) p with
  | Error _ -> ()
  | Ok prog ->
      Alcotest.(check bool) "grid within machine" true
        (Imtp_tir.Program.dpus_used prog <= 64)

let test_wram_accounting () =
  (* VA with 4 tasklets and 16-element caches: 3 buffers x 64 B x 4
     tasklets = 768 B of WRAM. *)
  let p = { Sk.default_params with Sk.spatial_dpus = 4; tasklets = 4; cache_elems = 16 } in
  let prog = Ms.build cfg (Ops.va 4096) p |> Result.get_ok in
  let k = List.hd prog.Imtp_tir.Program.kernels in
  Alcotest.(check int) "wram bytes" (3 * 64 * 4) (V.kernel_wram_bytes k)

let test_measure_deterministic_without_rng () =
  let op = Ops.mtv 64 128 in
  let p = { Sk.default_params with Sk.spatial_dpus = 16; tasklets = 4; cache_elems = 16 } in
  match (Ms.measure cfg op p, Ms.measure cfg op p) with
  | Ok a, Ok b ->
      Alcotest.(check (float 0.)) "deterministic" a.Ms.latency_s b.Ms.latency_s
  | _ -> Alcotest.fail "measurement failed"

let test_measure_noise_bounded () =
  let op = Ops.mtv 64 128 in
  let p = { Sk.default_params with Sk.spatial_dpus = 16; tasklets = 4; cache_elems = 16 } in
  let base = match Ms.measure cfg op p with Ok r -> r.Ms.latency_s | Error m -> failwith m in
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 20 do
    match Ms.measure ~rng cfg op p with
    | Ok r ->
        let rel = Float.abs (r.Ms.latency_s -. base) /. base in
        Alcotest.(check bool) "within 2%" true (rel <= Ms.noise_amplitude +. 1e-9)
    | Error m -> Alcotest.fail m
  done

let test_cost_model_learns_ranking () =
  let model = Cm.create () in
  let op = Ops.mtv 256 512 in
  let rng = Rng.create ~seed:5 in
  let samples = ref [] in
  (* train on random candidates *)
  let tries = ref 0 in
  while List.length !samples < 30 && !tries < 300 do
    incr tries;
    let p = Sk.random rng cfg op in
    match Ms.measure cfg op p with
    | Ok r ->
        samples := (p, r.Ms.latency_s) :: !samples;
        Cm.observe model (Cm.features op p) r.Ms.latency_s
    | Error _ -> ()
  done;
  Alcotest.(check bool) "trained" true (Cm.trained model);
  (* rank correlation on held-out pairs: the model should order most
     clearly-separated pairs correctly. *)
  let eval = ref [] in
  let tries = ref 0 in
  while List.length !eval < 20 && !tries < 300 do
    incr tries;
    let p = Sk.random rng cfg op in
    match Ms.measure cfg op p with
    | Ok r -> eval := (Cm.predict model (Cm.features op p), r.Ms.latency_s) :: !eval
    | Error _ -> ()
  done;
  let correct = ref 0 and total = ref 0 in
  List.iteri
    (fun i (pi, yi) ->
      List.iteri
        (fun j (pj, yj) ->
          if i < j && Float.abs (log yi -. log yj) > 0.7 then begin
            incr total;
            if (pi < pj) = (yi < yj) then incr correct
          end)
        !eval)
    !eval;
  if !total > 0 then
    Alcotest.(check bool)
      (Printf.sprintf "ranking accuracy %d/%d" !correct !total)
      true
      (float_of_int !correct /. float_of_int !total > 0.6)

let test_search_finds_improvement () =
  let op = Ops.mtv 512 1024 in
  let o = Se.run ~seed:7 cfg op ~trials:48 in
  Alcotest.(check bool) "measured something" true (o.Se.measured > 10);
  match (o.Se.history, o.Se.best) with
  | first :: _, Some best ->
      Alcotest.(check bool) "improved over first trial" true
        (best.Ms.latency_s <= first.Se.latency_s)
  | _ -> Alcotest.fail "no history"

let test_search_deterministic_per_seed () =
  let op = Ops.mtv 128 256 in
  let a = Se.run ~seed:9 cfg op ~trials:24 in
  let b = Se.run ~seed:9 cfg op ~trials:24 in
  let latencies o = List.map (fun r -> r.Se.latency_s) o.Se.history in
  Alcotest.(check bool) "same trace" true (latencies a = latencies b)

let test_search_history_monotone_best () =
  let op = Ops.mtv 128 256 in
  (* best_so_far is island-local, so the global monotonicity check only
     holds for a single population. *)
  let o = Se.run ~seed:13 ~islands:1 cfg op ~trials:32 in
  let rec check prev = function
    | [] -> ()
    | r :: rest ->
        Alcotest.(check bool) "best never regresses" true
          (r.Se.best_so_far <= prev +. 1e-12);
        check r.Se.best_so_far rest
  in
  check infinity o.Se.history

let test_epsilon_schedule () =
  (* indirect: adaptive search explores more distinct rfactor states
     early on than the default. Direct check of the schedule itself. *)
  let strategies = [ Se.tvm_default; Se.imtp_default ] in
  List.iter
    (fun s ->
      let op = Ops.mtv 64 128 in
      let o = Se.run ~strategy:s ~seed:3 cfg op ~trials:16 in
      Alcotest.(check bool) "ran" true (o.Se.measured > 0))
    strategies

let test_tuner_end_to_end () =
  let op = Ops.va 100_000 in
  match Tu.tune ~seed:21 ~trials:32 cfg op with
  | Error m -> Alcotest.fail m
  | Ok r ->
      (* the tuned program computes the right answer *)
      let inputs = Ops.random_inputs op in
      let outs = Imtp_tir.Eval.run r.Tu.program ~inputs in
      let got = T.Tensor.to_value_list (List.assoc "C" outs) in
      let want = T.Tensor.to_value_list (Op.reference op inputs) in
      Alcotest.(check bool) "correct" true (got = want);
      Alcotest.(check bool) "describe non-empty" true
        (String.length (Tu.describe r) > 0)

let test_tuning_log_roundtrip () =
  let module Tl = Imtp_autotune.Tuning_log in
  let op = Ops.mtv 128 256 in
  let o = Se.run ~seed:41 cfg op ~trials:16 in
  let path = Filename.temp_file "imtp_log" ".txt" in
  Tl.save path ~op_name:"mtv" o;
  (match Tl.load path with
  | Error m -> Alcotest.fail m
  | Ok (hdr, entries) ->
      Alcotest.(check string) "op name" "mtv" hdr.Tl.op_name;
      Alcotest.(check bool) "duration recorded" true
        (match hdr.Tl.duration_s with Some d -> d >= 0. | None -> false);
      Alcotest.(check int) "entry count" (List.length o.Se.history)
        (List.length entries);
      (match (Tl.best entries, o.Se.best) with
      | Some e, Some b ->
          Alcotest.(check (float 1e-12)) "best latency preserved"
            b.Ms.latency_s e.Tl.latency_s;
          Alcotest.(check bool) "best params preserved" true
            (e.Tl.params = b.Ms.params)
      | _ -> Alcotest.fail "missing best"));
  Sys.remove path

let test_tuning_log_params_roundtrip () =
  let module Tl = Imtp_autotune.Tuning_log in
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 50 do
    let p = Sk.random rng cfg (Ops.mtv 64 64) in
    match Tl.params_of_string (Tl.params_to_string p) with
    | Ok p' -> Alcotest.(check bool) "roundtrip" true (p = p')
    | Error m -> Alcotest.fail m
  done;
  match Tl.params_of_string "sd=1 rd=2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "partial params accepted"

(* --- measurement gating ----------------------------------------------- *)

(* The committed pre-gating search trace: two fixed-seed ungated runs,
   dumped before the measurement gate existed.  [measure_ratio = None]
   must reproduce it bit-for-bit — latencies to all 17 digits — proving
   the gate left the default path untouched. *)
let dump_outcome buf name ~seed ~trials (o : Se.outcome) =
  Buffer.add_string buf
    (Printf.sprintf "%s seed=%d trials=%d measured=%d invalid=%d\n" name seed
       trials o.Se.measured o.Se.invalid_candidates);
  List.iter
    (fun (r : Se.record) ->
      Buffer.add_string buf
        (Printf.sprintf "  trial=%d latency=%.17g params=%s\n" r.Se.trial
           r.Se.latency_s
           (Imtp_autotune.Tuning_log.params_to_string r.Se.params)))
    o.Se.history

let golden_trace () =
  (* cwd is test/ under `dune runtest`, the project root under
     `dune exec test/...`. *)
  let path =
    if Sys.file_exists "golden_search_trace.txt" then
      "golden_search_trace.txt"
    else Filename.concat "test" "golden_search_trace.txt"
  in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_ungated_trace_matches_golden () =
  let buf = Buffer.create 4096 in
  let dump name op ~seed ~trials =
    (* ~islands:1 is the historical single-population path; the trace
       predates the island model and must survive it untouched. *)
    dump_outcome buf name ~seed ~trials (Se.run ~seed ~islands:1 cfg op ~trials)
  in
  dump "gemv" (Ops.gemv ~c:3 512 512) ~seed:77 ~trials:48;
  dump "mmtv" (Ops.mmtv 8 64 64) ~seed:77 ~trials:48;
  let got = Buffer.contents buf in
  let want = golden_trace () in
  if got <> want then begin
    let gl = String.split_on_char '\n' got
    and wl = String.split_on_char '\n' want in
    let rec first_diff i = function
      | g :: gs, w :: ws ->
          if g = w then first_diff (i + 1) (gs, ws)
          else Alcotest.failf "line %d differs:\n  got:  %s\n  want: %s" i g w
      | _ -> Alcotest.failf "trace length differs (%d vs %d lines)"
               (List.length gl) (List.length wl)
    in
    first_diff 1 (gl, wl)
  end

let noise_free op params =
  let engine = Imtp_engine.Engine.create cfg in
  match Imtp_engine.Engine.measure engine op params with
  | Ok m -> m.Imtp_engine.Engine.latency_s
  | Error e -> Alcotest.fail (Imtp_engine.Engine.error_to_string e)

(* The statistical acceptance harness: on both paper workloads, at a
   fixed seed, the gated search must find a schedule at least as good
   as the full-measurement baseline (compared noise-free, so the
   baseline's 5x-larger pool of noisy draws cannot hide a worse
   schedule behind a lucky sample) while paying for at least 5x fewer
   simulator executions. *)
let check_gate_acceptance name op =
  let seed = 13 and trials = 200 and ratio = 0.05 in
  let full = Se.run ~seed ~islands:1 cfg op ~trials in
  let gated = Se.run ~seed ~islands:1 ~measure_ratio:ratio cfg op ~trials in
  let best o =
    match o.Se.best with
    | Some b -> noise_free op b.Ms.params
    | None -> Alcotest.failf "%s: no best" name
  in
  let bf = best full and bg = best gated in
  Alcotest.(check bool)
    (Printf.sprintf "%s: gated best %.6e <= full best %.6e" name bg bf)
    true (bg <= bf);
  Alcotest.(check bool)
    (Printf.sprintf "%s: >=5x fewer simulator executions (%d vs %d)" name
       full.Se.measured_trials gated.Se.measured_trials)
    true
    (full.Se.measured_trials >= 5 * gated.Se.measured_trials);
  Alcotest.(check bool) "gate actually skipped candidates" true
    (gated.Se.skipped > 0);
  Alcotest.(check bool) "ungated run skipped none" true (full.Se.skipped = 0)

let test_gate_acceptance_gemv () =
  check_gate_acceptance "gemv 512x512" (Ops.gemv ~c:3 512 512)

let test_gate_acceptance_mmtv () =
  check_gate_acceptance "mmtv 8x64x64" (Ops.mmtv 8 64 64)

let history_key (o : Se.outcome) =
  List.map
    (fun (r : Se.record) ->
      ( r.Se.trial,
        r.Se.island,
        r.Se.params,
        r.Se.latency_s,
        r.Se.measured,
        r.Se.predicted_s ))
    o.Se.history

let test_gated_jobs_equivalence () =
  let op = Ops.mtv 128 256 in
  (* islands must be pinned: it defaults to [jobs], and a different
     island count is a different (equally deterministic) search. *)
  let run jobs =
    Se.run ~seed:9 ~jobs ~islands:1 ~measure_ratio:0.2 cfg op ~trials:48
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check bool) "history identical at any job count" true
    (history_key a = history_key b);
  Alcotest.(check int) "same simulator ledger" a.Se.measured_trials
    b.Se.measured_trials;
  Alcotest.(check int) "same skips" a.Se.skipped b.Se.skipped

(* Replaying a gated log re-ranks identically: within every generation
   block, each measured entry's recorded prediction is no worse than
   every prediction the gate skipped on — the ranking that picked the
   simulator set is recoverable from the log alone. *)
let test_gated_log_reranks_identically () =
  let module Tl = Imtp_autotune.Tuning_log in
  let trials = 96 in
  let o =
    Se.run ~seed:5 ~islands:1 ~measure_ratio:0.2 cfg (Ops.mmtv 8 64 64) ~trials
  in
  let path = Filename.temp_file "imtp_gated_log" ".txt" in
  Tl.save path ~op_name:"mmtv" o;
  (match Tl.load path with
  | Error m -> Alcotest.fail m
  | Ok (_, entries) ->
      let block e = e.Tl.trial / 16 in
      let blocks =
        List.sort_uniq compare
          (List.filter_map
             (fun e ->
               if e.Tl.trial >= 16 && e.Tl.trial < trials then Some (block e)
               else None)
             entries)
      in
      let checked = ref 0 in
      List.iter
        (fun b ->
          let in_block =
            List.filter
              (fun e ->
                block e = b && e.Tl.trial >= 16 && e.Tl.trial < trials)
              entries
          in
          let measured_preds =
            List.filter_map
              (fun e -> if e.Tl.measured then e.Tl.predicted_s else None)
              in_block
          and skipped_preds =
            List.filter_map
              (fun e -> if e.Tl.measured then None else e.Tl.predicted_s)
              in_block
          in
          match (measured_preds, skipped_preds) with
          | _ :: _, _ :: _ ->
              incr checked;
              let worst_measured =
                List.fold_left Float.max neg_infinity measured_preds
              and best_skipped =
                List.fold_left Float.min infinity skipped_preds
              in
              Alcotest.(check bool)
                (Printf.sprintf
                   "block %d: measured set is the ranking's top (%.3e <= %.3e)"
                   b worst_measured best_skipped)
                true
                (worst_measured <= best_skipped)
          | _ -> ())
        blocks;
      Alcotest.(check bool) "some blocks had both kinds" true (!checked > 0));
  Sys.remove path

let test_gated_tuning_log_roundtrip () =
  let module Tl = Imtp_autotune.Tuning_log in
  let o = Se.run ~seed:41 ~measure_ratio:0.2 cfg (Ops.mtv 128 256) ~trials:48 in
  let path = Filename.temp_file "imtp_gated_log" ".txt" in
  Tl.save path ~op_name:"mtv" o;
  (match Tl.load path with
  | Error m -> Alcotest.fail m
  | Ok (_, entries) ->
      Alcotest.(check int) "entry count" (List.length o.Se.history)
        (List.length entries);
      List.iter2
        (fun (r : Se.record) e ->
          Alcotest.(check bool) "measured flag survives" r.Se.measured
            e.Tl.measured;
          Alcotest.(check bool) "prediction survives" true
            (Option.is_some r.Se.predicted_s = Option.is_some e.Tl.predicted_s))
        o.Se.history entries;
      Alcotest.(check bool) "log contains skipped entries" true
        (List.exists (fun e -> not e.Tl.measured) entries);
      (match (Tl.best entries, o.Se.best) with
      | Some e, Some b ->
          Alcotest.(check bool) "best is a measured entry" true e.Tl.measured;
          Alcotest.(check (float 1e-12)) "best latency preserved"
            b.Ms.latency_s e.Tl.latency_s
      | _ -> Alcotest.fail "missing best"));
  Sys.remove path

let test_pregating_log_lines_still_parse () =
  let module Tl = Imtp_autotune.Tuning_log in
  match
    Tl.entry_of_string
      "trial=3 latency=1.500000000e-03 sd=64 rd=8 t=16 c=32 rows=1 unroll=0 ht=4"
  with
  | Error m -> Alcotest.fail m
  | Ok e ->
      Alcotest.(check bool) "defaults to measured" true e.Tl.measured;
      Alcotest.(check bool) "no prediction" true (e.Tl.predicted_s = None)

(* --- Checkpoint / resume --------------------------------------------- *)

module Ck = Imtp_autotune.Checkpoint

(* Everything the bit-identity contract covers.  [measured_trials] and
   [cache_hits] are deliberately excluded: a resumed run on a cold
   engine re-pays builds the killed run had cached, so its simulator
   and cache ledgers legitimately differ from an uninterrupted run's. *)
let outcome_key (o : Se.outcome) =
  ( List.map
      (fun (r : Se.record) ->
        (r.Se.trial, r.Se.params, r.Se.latency_s, r.Se.best_so_far,
         r.Se.measured, r.Se.predicted_s))
      o.Se.history,
    (match o.Se.best with
    | None -> None
    | Some b -> Some (b.Ms.params, b.Ms.latency_s)),
    o.Se.invalid_candidates,
    o.Se.measured,
    o.Se.skipped )

(* Run uninterrupted; then run again stopped after [k] generations and
   resume from the emitted checkpoint; the stitched run must be
   bit-identical.  The init snapshot is checkpoint #1 and generation g
   emits #(1+g), so stopping once [!n_ck > k] interrupts right after
   generation [k]'s boundary snapshot. *)
let check_kill_resume ?measure_ratio ?(islands = 1) ?migrate_every ~k op
    ~trials =
  let seed = 23 in
  let full = Se.run ~seed ?measure_ratio ~islands ?migrate_every cfg op ~trials in
  let n_ck = ref 0 and last = ref None in
  let killed =
    Se.run ~seed ?measure_ratio ~islands ?migrate_every cfg op ~trials
      ~on_checkpoint:(fun ck ->
        incr n_ck;
        last := Some ck)
      ~stop:(fun () -> !n_ck > k)
  in
  Alcotest.(check bool) "killed run reports interrupted" true
    killed.Se.interrupted;
  Alcotest.(check bool) "full run not interrupted" false full.Se.interrupted;
  let ck = match !last with Some ck -> ck | None -> Alcotest.fail "no checkpoint" in
  Alcotest.(check bool) "checkpoint mid-run" true
    (Se.checkpoint_trial ck > 0 && Se.checkpoint_trial ck < trials);
  Alcotest.(check int) "checkpoint keeps the budget" trials
    (Se.checkpoint_trials ck);
  Alcotest.(check int) "checkpoint keeps the seed" seed (Se.checkpoint_seed ck);
  Alcotest.(check bool) "checkpoint keeps the gate" true
    (Se.checkpoint_measure_ratio ck = measure_ratio);
  Alcotest.(check int) "checkpoint keeps the island count" islands
    (Se.checkpoint_islands ck);
  let resumed = Se.run ~resume:ck cfg op ~trials in
  Alcotest.(check bool) "resumed run completed" false resumed.Se.interrupted;
  Alcotest.(check bool) "resumed_from records the snapshot" true
    (resumed.Se.resumed_from = Some (Se.checkpoint_trial ck));
  Alcotest.(check bool) "full run never resumed" true
    (full.Se.resumed_from = None);
  if outcome_key resumed <> outcome_key full then
    Alcotest.fail "resumed outcome differs from uninterrupted run"

let test_kill_resume_ungated () =
  check_kill_resume ~k:1 (Ops.mtv 128 256) ~trials:48

let test_kill_resume_gated () =
  check_kill_resume ~measure_ratio:0.2 ~k:2 (Ops.mmtv 8 64 64) ~trials:64

let test_kill_resume_islands () =
  (* kill a 2-island run right after a migration boundary's checkpoint
     and resume it: the stitched run must be bit-identical to the
     uninterrupted one, migrations included. *)
  check_kill_resume ~islands:2 ~migrate_every:1 ~k:1 (Ops.mtv 128 256)
    ~trials:128

let test_kill_resume_islands_gated () =
  check_kill_resume ~islands:2 ~migrate_every:1 ~measure_ratio:0.2 ~k:2
    (Ops.mmtv 8 64 64) ~trials:160

(* The committed acceptance criterion: a killed-then-resumed run on the
   golden workloads reproduces the golden trace byte-for-byte — same
   tuning-log lines, same counts — as if the kill never happened. *)
let test_resumed_trace_matches_golden () =
  let buf = Buffer.create 4096 in
  let dump name op ~seed ~trials =
    let n_ck = ref 0 and last = ref None in
    let killed =
      Se.run ~seed cfg op ~trials
        ~on_checkpoint:(fun ck ->
          incr n_ck;
          last := Some ck)
        ~stop:(fun () -> !n_ck > 1)
    in
    Alcotest.(check bool) (name ^ ": interrupted") true killed.Se.interrupted;
    let ck = match !last with Some ck -> ck | None -> Alcotest.fail "no ckpt" in
    dump_outcome buf name ~seed ~trials (Se.run ~resume:ck cfg op ~trials)
  in
  dump "gemv" (Ops.gemv ~c:3 512 512) ~seed:77 ~trials:48;
  dump "mmtv" (Ops.mmtv 8 64 64) ~seed:77 ~trials:48;
  Alcotest.(check bool) "resumed trace is byte-identical to the golden file"
    true
    (Buffer.contents buf = golden_trace ())

let test_checkpoint_disk_roundtrip () =
  let dir = Filename.temp_file "imtp_ckpt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let op = Ops.mtv 128 256 and trials = 48 in
      let path = Filename.concat dir "mtv.ckpt" in
      let n_ck = ref 0 and last = ref None in
      let _killed =
        Se.run ~seed:23 cfg op ~trials
          ~on_checkpoint:(fun ck ->
            incr n_ck;
            last := Some ck;
            Ck.save path ck)
          ~stop:(fun () -> !n_ck > 1)
      in
      let mem = match !last with Some ck -> ck | None -> Alcotest.fail "no ckpt" in
      let loaded =
        match Ck.load path with
        | Ok ck -> ck
        | Error m -> Alcotest.fail m
      in
      Alcotest.(check int) "loaded snapshot at the same trial"
        (Se.checkpoint_trial mem) (Se.checkpoint_trial loaded);
      let from_mem = Se.run ~resume:mem cfg op ~trials in
      let from_disk = Se.run ~resume:loaded cfg op ~trials in
      Alcotest.(check bool) "disk roundtrip resumes identically" true
        (outcome_key from_mem = outcome_key from_disk);
      (* a checkpoint is reusable: resuming twice gives the same run *)
      let again = Se.run ~resume:loaded cfg op ~trials in
      Alcotest.(check bool) "resuming the same snapshot twice is stable" true
        (outcome_key from_disk = outcome_key again);
      (* error paths: missing file, wrong magic, truncated payload *)
      (match Ck.load (Filename.concat dir "absent.ckpt") with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "loaded a missing file");
      let bad = Filename.concat dir "bad.ckpt" in
      let oc = open_out_bin bad in
      output_string oc "not a checkpoint\n";
      close_out oc;
      (match Ck.load bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "loaded a wrong-magic file");
      let trunc = Filename.concat dir "trunc.ckpt" in
      let whole =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let oc = open_out_bin trunc in
      output_string oc (String.sub whole 0 40);
      close_out oc;
      match Ck.load trunc with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "loaded a truncated file")

let test_resume_wrong_op_rejected () =
  let n_ck = ref 0 and last = ref None in
  let _ =
    Se.run ~seed:23 cfg (Ops.mtv 128 256) ~trials:48
      ~on_checkpoint:(fun ck ->
        incr n_ck;
        last := Some ck)
      ~stop:(fun () -> !n_ck > 1)
  in
  let ck = match !last with Some ck -> ck | None -> Alcotest.fail "no ckpt" in
  match Se.run ~resume:ck cfg (Ops.mmtv 8 64 64) ~trials:48 with
  | _ -> Alcotest.fail "resume accepted a different operator"
  | exception Invalid_argument _ -> ()

(* --- Island model ----------------------------------------------------- *)

let test_islands_jobs_equivalence () =
  let op = Ops.mtv 128 256 in
  let run ~jobs ?measure_ratio () =
    Se.run ~seed:9 ~jobs ~islands:4 ?measure_ratio cfg op ~trials:96
  in
  let a = run ~jobs:1 () and b = run ~jobs:4 () in
  Alcotest.(check int) "4 islands in effect" 4 a.Se.islands;
  Alcotest.(check bool) "ungated: islands:4 jobs:4 = islands:4 jobs:1" true
    (history_key a = history_key b);
  let c = run ~jobs:1 ~measure_ratio:0.25 ()
  and d = run ~jobs:4 ~measure_ratio:0.25 () in
  Alcotest.(check bool) "gated: islands:4 jobs:4 = islands:4 jobs:1" true
    (history_key c = history_key d);
  Alcotest.(check int) "gated: same simulator ledger" c.Se.measured_trials
    d.Se.measured_trials

let prop_islands_jobs_equivalence =
  QCheck2.Test.make
    ~name:"islands:2 search is identical at jobs:1 and jobs:3 for any seed"
    ~count:4
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let op = Ops.mtv 128 256 in
      let run jobs =
        Se.run ~seed ~jobs ~islands:2 ~measure_ratio:0.25 cfg op ~trials:64
      in
      history_key (run 1) = history_key (run 3))

let test_migration_determinism () =
  (* migration happens at fixed generation boundaries, so two runs of
     the same seed produce identical histories, migration traffic
     included — and the ring actually moves elites. *)
  let op = Ops.mtv 128 256 in
  let run () = Se.run ~seed:17 ~islands:3 ~migrate_every:1 cfg op ~trials:96 in
  let a = run () and b = run () in
  Alcotest.(check bool) "two same-seed island runs identical" true
    (history_key a = history_key b);
  Alcotest.(check int) "three islands reported" 3 (List.length a.Se.per_island);
  let migrations =
    List.fold_left (fun n s -> n + s.Se.island_migrations) 0 a.Se.per_island
  in
  Alcotest.(check bool) "ring migration moved elites" true (migrations > 0);
  Alcotest.(check bool) "same migration traffic" true
    (List.map (fun s -> s.Se.island_migrations) a.Se.per_island
    = List.map (fun s -> s.Se.island_migrations) b.Se.per_island)

let test_island_outcome_shape () =
  let op = Ops.mtv 128 256 in
  let o = Se.run ~seed:29 ~islands:3 cfg op ~trials:96 in
  Alcotest.(check int) "per-island entries" 3 (List.length o.Se.per_island);
  let sum f = List.fold_left (fun n s -> n + f s) 0 o.Se.per_island in
  Alcotest.(check int) "measured sums across islands" o.Se.measured
    (sum (fun s -> s.Se.island_measured));
  Alcotest.(check int) "invalid sums across islands" o.Se.invalid_candidates
    (sum (fun s -> s.Se.island_invalid));
  (* history: chronological within each island, islands in index order *)
  let rec well_ordered prev = function
    | [] -> true
    | (r : Se.record) :: rest ->
        (match prev with
        | Some (pi, pt) ->
            (r.Se.island = pi && r.Se.trial >= pt) || r.Se.island > pi
        | None -> true)
        && well_ordered (Some (r.Se.island, r.Se.trial)) rest
  in
  Alcotest.(check bool) "history grouped by island, chronological within" true
    (well_ordered None o.Se.history);
  let island_best =
    List.filter_map (fun s -> s.Se.island_best_s) o.Se.per_island
    |> List.fold_left Float.min infinity
  in
  match o.Se.best with
  | Some b ->
      Alcotest.(check (float 1e-15)) "best is the min across islands"
        island_best b.Ms.latency_s
  | None -> Alcotest.fail "no best"

let test_island_defaults () =
  let op = Ops.mtv 128 256 in
  (* explicit wins *)
  let o = Se.run ~seed:3 ~jobs:1 ~islands:2 cfg op ~trials:64 in
  Alcotest.(check int) "explicit islands" 2 o.Se.islands;
  (* defaults to the effective job count *)
  let o = Se.run ~seed:3 ~jobs:2 cfg op ~trials:64 in
  Alcotest.(check int) "defaults to jobs" 2 o.Se.islands;
  (* IMTP_ISLANDS fills in when no explicit count is given *)
  Unix.putenv "IMTP_ISLANDS" "3";
  let o = Se.run ~seed:3 ~jobs:1 cfg op ~trials:64 in
  Unix.putenv "IMTP_ISLANDS" "";
  Alcotest.(check int) "IMTP_ISLANDS respected" 3 o.Se.islands;
  (* tiny budgets shed islands so each can seed a population *)
  let o = Se.run ~seed:3 ~islands:8 cfg op ~trials:32 in
  Alcotest.(check int) "auto-shrunk to trials/16" 2 o.Se.islands;
  let o = Se.run ~seed:3 ~islands:8 cfg op ~trials:8 in
  Alcotest.(check int) "never below one island" 1 o.Se.islands

let test_rng_reproducible () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:1 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let prop_verified_candidates_run =
  QCheck2.Test.make ~name:"verifier-accepted candidates execute without error"
    ~count:15
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 0 10000))
    (fun (n, seed) ->
      let op = Imtp_workload.Ops.va n in
      let rng = Rng.create ~seed in
      let p = Sk.random rng cfg op in
      match Ms.build cfg op p with
      | Error _ -> true
      | Ok prog -> (
          match Imtp_tir.Eval.run prog ~inputs:(Ops.random_inputs op) with
          | _ -> true
          | exception Imtp_tir.Eval.Error _ -> false))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "autotune"
    [
      ( "sketch",
        [
          Alcotest.test_case "families" `Quick test_family_detection;
          Alcotest.test_case "instantiate" `Quick test_sketch_instantiates_all_families;
          Alcotest.test_case "random params correct" `Quick
            test_sketch_correctness_random_params;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "tasklets" `Quick test_verifier_rejects_too_many_tasklets;
          Alcotest.test_case "wram" `Quick test_verifier_rejects_wram_overflow;
          Alcotest.test_case "grid" `Quick test_verifier_rejects_grid_overflow;
          Alcotest.test_case "wram accounting" `Quick test_wram_accounting;
        ] );
      ( "measure",
        [
          Alcotest.test_case "deterministic" `Quick
            test_measure_deterministic_without_rng;
          Alcotest.test_case "noise bounded" `Quick test_measure_noise_bounded;
        ] );
      ( "cost model",
        [ Alcotest.test_case "learns ranking" `Slow test_cost_model_learns_ranking ] );
      ( "search",
        [
          Alcotest.test_case "improves" `Quick test_search_finds_improvement;
          Alcotest.test_case "deterministic" `Quick test_search_deterministic_per_seed;
          Alcotest.test_case "monotone best" `Quick test_search_history_monotone_best;
          Alcotest.test_case "strategies run" `Quick test_epsilon_schedule;
          Alcotest.test_case "tuner end-to-end" `Quick test_tuner_end_to_end;
          Alcotest.test_case "rng" `Quick test_rng_reproducible;
          Alcotest.test_case "tuning log roundtrip" `Quick test_tuning_log_roundtrip;
          Alcotest.test_case "params roundtrip" `Quick
            test_tuning_log_params_roundtrip;
        ] );
      ( "measurement gate",
        [
          Alcotest.test_case "ungated trace matches pre-gating golden" `Quick
            test_ungated_trace_matches_golden;
          Alcotest.test_case "gemv: same-or-better best, >=5x fewer sims"
            `Slow test_gate_acceptance_gemv;
          Alcotest.test_case "mmtv: same-or-better best, >=5x fewer sims"
            `Slow test_gate_acceptance_mmtv;
          Alcotest.test_case "gated jobs:4 = jobs:1" `Quick
            test_gated_jobs_equivalence;
          Alcotest.test_case "gated log re-ranks identically" `Quick
            test_gated_log_reranks_identically;
          Alcotest.test_case "gated log roundtrip" `Quick
            test_gated_tuning_log_roundtrip;
          Alcotest.test_case "pre-gating log lines parse" `Quick
            test_pregating_log_lines_still_parse;
        ] );
      ( "checkpoints",
        [
          Alcotest.test_case "kill+resume = uninterrupted (ungated)" `Quick
            test_kill_resume_ungated;
          Alcotest.test_case "kill+resume = uninterrupted (gated)" `Quick
            test_kill_resume_gated;
          Alcotest.test_case "kill+resume = uninterrupted (2 islands)" `Quick
            test_kill_resume_islands;
          Alcotest.test_case "kill+resume = uninterrupted (2 islands, gated)"
            `Quick test_kill_resume_islands_gated;
          Alcotest.test_case "resumed trace matches golden" `Quick
            test_resumed_trace_matches_golden;
          Alcotest.test_case "disk roundtrip + corrupt files" `Quick
            test_checkpoint_disk_roundtrip;
          Alcotest.test_case "wrong operator rejected" `Quick
            test_resume_wrong_op_rejected;
        ] );
      ( "islands",
        [
          Alcotest.test_case "islands:4 identical at jobs:1 and jobs:4" `Quick
            test_islands_jobs_equivalence;
          Alcotest.test_case "migration boundaries deterministic" `Quick
            test_migration_determinism;
          Alcotest.test_case "outcome shape" `Quick test_island_outcome_shape;
          Alcotest.test_case "defaults and clamps" `Quick test_island_defaults;
        ] );
      ( "properties",
        q [ prop_verified_candidates_run; prop_islands_jobs_equivalence ] );
    ]
