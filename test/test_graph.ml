(* Graph-compilation layer tests: epilogue fusion lowering (kernel,
   thread-combine and rfactor-host variants), the Grid_map sketch
   family, MRAM-residency program linking, the rewritten Graph API
   (reserved names, O(N) construction, structural dedup), and the
   graph-vs-direct-op differential oracle. *)

module T = Imtp_tensor
module U = Imtp_upmem
module S = Imtp_schedule.Sched
module Op = Imtp_workload.Op
module Ops = Imtp_workload.Ops
module Nets = Imtp_workload.Nets
module L = Imtp_lower.Lowering
module P = Imtp_tir.Program
module Sk = Imtp_engine.Sketch
module Engine = Imtp_engine.Engine
module G = Imtp_graph.Graph

let cfg = U.Config.default

let check_tensors name want got =
  let fw = T.Tensor.to_value_list want and fg = T.Tensor.to_value_list got in
  Alcotest.(check int) (name ^ " length") (List.length fw) (List.length fg);
  List.iteri
    (fun i (w, g) ->
      if not (T.Value.equal w g) then
        Alcotest.failf "%s: [%d] = %s, expected %s" name i (T.Value.to_string g)
          (T.Value.to_string w))
    (List.combine fw fg)

let eval_op ?options op params =
  let sched = Sk.instantiate op params in
  let prog = L.lower ?options sched in
  (match P.validate prog with Ok () -> () | Error m -> Alcotest.fail m);
  let inputs = Ops.random_inputs op in
  let outs = Imtp_tir.Eval.run prog ~inputs in
  let got = List.assoc (fst op.Op.output) outs in
  check_tensors op.Op.opname (Op.reference op inputs) got

(* --- epilogue lowering ------------------------------------------------- *)

(* mtv with a fused bias-add + ReLU epilogue, as graph fusion builds it. *)
let biased_mtv n k =
  let sp name extent = { Op.aname = name; extent; kind = Op.Spatial } in
  let rd name extent = { Op.aname = name; extent; kind = Op.Reduction } in
  let op =
    Op.create ~name:"mtv_bias_relu" ~dtype:T.Dtype.I32
      ~axes:[ sp "i" n; rd "j" k ]
      ~inputs:[ ("A", [ "i"; "j" ]); ("B", [ "j" ]); ("D", [ "i" ]) ]
      ~output:("C", [ "i" ])
      ~body:(Op.Bin (Op.Mul, Op.Ref "A", Op.Ref "B"))
  in
  Op.with_epilogue op
    (Op.Bin (Op.Max, Op.Bin (Op.Add, Op.Acc, Op.Ref "D"), Op.Const (T.Value.Int 0)))

let test_epilogue_kernel () =
  (* non-rfactor: the epilogue runs in the kernel at the write-cache
     flush; ragged sizes exercise the guards. *)
  List.iter
    (fun (n, k) ->
      let op = biased_mtv n k in
      let p = { Sk.default_params with Sk.spatial_dpus = 8; tasklets = 4; cache_elems = 16 } in
      eval_op op p;
      eval_op ~options:{ L.default_options with L.affine_guards = true } op p)
    [ (32, 64); (37, 43); (5, 999) ]

let test_epilogue_rfactor () =
  (* reduction_dpus > 1: partials reach the host, which applies the
     epilogue after the final reduction. *)
  List.iter
    (fun (n, k) ->
      let op = biased_mtv n k in
      let p =
        {
          Sk.default_params with
          Sk.spatial_dpus = 4;
          reduction_dpus = 4;
          tasklets = 4;
          cache_elems = 16;
        }
      in
      eval_op op p;
      eval_op ~options:{ L.default_options with L.affine_guards = true } op p)
    [ (32, 64); (37, 43) ]

let test_epilogue_scalar () =
  (* scalar reduction, non-hierarchical: tasklet 0 applies the epilogue
     in the combine step. *)
  let op = Op.with_epilogue (Ops.red 999) (Op.Bin (Op.Mul, Op.Acc, Op.Const (T.Value.Int 3))) in
  let s = S.create op in
  let i = List.hd (S.order s) in
  (match S.split s i ~factors:[ 16; 8 ] with
  | [ i_th; i_chunk; _i_in ] ->
      S.bind s i_th S.Thread_x;
      let ca = S.cache_read s "A" in
      S.compute_at s ca i_chunk;
      let cw = S.cache_write s "C" in
      S.reverse_compute_at s cw i_th
  | _ -> assert false);
  let prog = L.lower s in
  let inputs = Ops.random_inputs op in
  let outs = Imtp_tir.Eval.run prog ~inputs in
  check_tensors "red_epilogue" (Op.reference op inputs)
    (List.assoc "C" outs);
  (* and the hierarchical variant: host applies it after the rf sum. *)
  let p = { Sk.default_params with Sk.spatial_dpus = 1; reduction_dpus = 8 } in
  eval_op op p

let test_epilogue_keys_distinct () =
  let base = Ops.mtv 32 64 in
  let fused =
    Op.with_epilogue base (Op.Bin (Op.Add, Op.Acc, Op.Const (T.Value.Int 1)))
  in
  if String.equal (Engine.op_key base) (Engine.op_key fused) then
    Alcotest.fail "epilogue must change the structural key";
  (* pre-epilogue keys keep their historical shape (golden traces). *)
  let k = Engine.op_key base in
  if String.length k = 0 || String.contains k '@' then
    Alcotest.fail "base op key must not mention epilogue constructs"

(* --- new ops and the Grid_map family ----------------------------------- *)

let test_new_ops_families () =
  Alcotest.(check bool) "rowsum is Mat_vec" true (Sk.family_of (Ops.rowsum 16 64) = Sk.Mat_vec);
  Alcotest.(check bool) "rowdiv is Grid_map" true (Sk.family_of (Ops.rowdiv 16 64) = Sk.Grid_map);
  Alcotest.(check bool) "relu is Elementwise" true (Sk.family_of (Ops.relu 64) = Sk.Elementwise);
  List.iter
    (fun op ->
      let p = { Sk.default_params with Sk.spatial_dpus = 32; tasklets = 4; cache_elems = 8 } in
      eval_op op p;
      eval_op ~options:{ L.default_options with L.affine_guards = true } op p)
    [
      Ops.relu 999;
      Ops.scale ~c:5 127;
      Ops.rowsum 7 65;
      Ops.rowdiv 7 65;
      Ops.rowdiv 16 64;
      Nets.scale2d ~c:3 5 37;
    ]

let test_skip_output_transfer () =
  let op = Ops.mtv 64 64 in
  let p = { Sk.default_params with Sk.spatial_dpus = 8; tasklets = 4 } in
  let sched = Sk.instantiate op p in
  let prog =
    L.lower ~options:{ L.default_options with L.skip_output_transfer = true } sched
  in
  let stats = Imtp_tir.Cost.measure cfg prog in
  Alcotest.(check int) "no d2h bytes" 0 stats.U.Stats.bytes_d2h;
  let base = L.lower sched in
  let bstats = Imtp_tir.Cost.measure cfg base in
  Alcotest.(check bool) "baseline has d2h bytes" true (bstats.U.Stats.bytes_d2h > 0)

(* --- graph API: reserved names, O(1) construction ---------------------- *)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let test_reserved_names () =
  let g = G.create "r" in
  ignore (G.input g ~name:"x" ~shape:[ 4 ]);
  (* the node-output namespace is off limits: an input named node0 used
     to shadow node 0's output in the run environment. *)
  expect_invalid "node0" (fun () -> G.input g ~name:"node0" ~shape:[ 4 ]);
  expect_invalid "node12" (fun () -> G.input g ~name:"node12" ~shape:[ 4 ]);
  expect_invalid "dup" (fun () -> G.input g ~name:"x" ~shape:[ 4 ]);
  expect_invalid "empty" (fun () -> G.input g ~name:"" ~shape:[ 4 ]);
  (* non-numeric suffixes are fine *)
  ignore (G.input g ~name:"node_embedding" ~shape:[ 4 ]);
  ignore (G.input g ~name:"nodes" ~shape:[ 4 ])

let test_large_graph () =
  (* 1k-node chain: construction used to be quadratic (List.nth over a
     reversed list per add). *)
  let g = G.create "chain" in
  let x = G.input g ~name:"x" ~shape:[ 8 ] in
  let tid = ref x in
  for _ = 1 to 1000 do
    tid := G.add g (Ops.relu 8) ~args:[ ("A", !tid) ]
  done;
  Alcotest.(check int) "node count" 1000 (G.node_count g);
  Alcotest.(check (list int)) "tail shape" [ 8 ] (G.shape_of g !tid)

(* --- compiled graphs ---------------------------------------------------- *)

let compile_ok ?fuse ?resident ?engine ~trials g =
  match
    G.Compiled.compile ~trials ~seed:11 ~jobs:2 ?fuse ?resident ?engine cfg g
  with
  | Ok c -> c
  | Error m -> Alcotest.fail m

let run_net ?fuse ?resident ?engine ~trials spec =
  let g, ids = G.of_spec spec in
  let c = compile_ok ?fuse ?resident ?engine ~trials g in
  let inputs = Nets.random_inputs spec in
  let outs = G.Compiled.run c ~inputs in
  let refs = Nets.reference spec ~inputs in
  (c, ids, inputs, outs, refs)

let check_net_output ids outs refs id =
  let want = List.assoc id refs in
  match List.assoc_opt (G.tid_name (List.assoc id ids)) outs with
  | Some got -> check_tensors id want got
  | None -> Alcotest.failf "output %s not materialized" id

let test_mlp_fused () =
  let spec = Nets.mlp ~d_in:32 ~d_hidden:32 ~d_out:16 () in
  let c, ids, _, outs, refs = run_net ~trials:32 spec in
  (* h1b/a1 fold into h1, out folds into h2: 5 nodes -> 2 kernels *)
  Alcotest.(check int) "fused away" 3 (G.Compiled.fused_count c);
  check_net_output ids outs refs "out"

let test_attention_fused_resident () =
  let spec = Nets.attention ~heads:4 ~tokens:16 ~dim:8 () in
  let c, ids, _, outs, refs = run_net ~trials:32 spec in
  Alcotest.(check int) "scale folds into mmtv" 1 (G.Compiled.fused_count c);
  check_net_output ids outs refs "out"

let test_unfused_differential () =
  (* satellite oracle: the unfused, non-resident combined program is
     bit-identical to running every op standalone (the reference
     chain), on both executors. *)
  List.iter
    (fun spec ->
      let c, _, inputs, outs, refs =
        run_net ~fuse:false ~resident:false ~trials:24 spec
      in
      List.iteri
        (fun i (id, want) ->
          match List.assoc_opt (Printf.sprintf "node%d" i) outs with
          | Some got -> check_tensors (spec.Nets.sname ^ ":" ^ id) want got
          | None -> Alcotest.failf "node%d (%s) not materialized" i id)
        refs;
      (* interpreter vs compiled executor on the combined program *)
      let prog = G.Compiled.program c in
      let eouts = Imtp_tir.Eval.run prog ~inputs in
      let couts, _ = Imtp_tir.Exec.run_counted prog ~inputs in
      List.iter
        (fun (name, ev) ->
          match List.assoc_opt name couts with
          | Some cv -> check_tensors ("exec:" ^ name) ev cv
          | None -> Alcotest.failf "exec lost buffer %s" name)
        eouts)
    [
      Nets.mlp ~d_in:24 ~d_hidden:16 ~d_out:8 ();
      Nets.attention ~heads:2 ~tokens:8 ~dim:4 ();
    ]

let test_fused_matches_unfused () =
  let spec = Nets.mlp ~d_in:24 ~d_hidden:16 ~d_out:8 () in
  let _, ids_f, _, outs_f, refs = run_net ~trials:24 spec in
  check_net_output ids_f outs_f refs "out";
  let _, ids_u, _, outs_u, refs_u =
    run_net ~fuse:false ~resident:false ~trials:24 spec
  in
  List.iter (fun (id, _) -> check_net_output ids_u outs_u refs_u id) refs;
  (* same final tensor both ways *)
  let f = List.assoc (G.tid_name (List.assoc "out" ids_f)) outs_f in
  let u = List.assoc (G.tid_name (List.assoc "out" ids_u)) outs_u in
  check_tensors "fused = unfused" u f

let test_engine_dedup () =
  (* two nodes with the same op share one canonical key: one tuning
     search serves both, and a second compile on the same engine is
     pure cache hits (no new builds in the ledger). *)
  let mk () =
    let g = G.create "two_mtv" in
    let a = G.input g ~name:"a" ~shape:[ 48; 32 ] in
    let v = G.input g ~name:"v" ~shape:[ 32 ] in
    let w = G.input g ~name:"w" ~shape:[ 32 ] in
    ignore (G.add g (Ops.mtv 48 32) ~args:[ ("A", a); ("B", v) ]);
    ignore (G.add g (Ops.mtv 48 32) ~args:[ ("A", a); ("B", w) ]);
    g
  in
  let e = Engine.create cfg in
  let c1 = compile_ok ~engine:e ~resident:false ~trials:24 (mk ()) in
  (match G.Compiled.node_stats c1 with
  | [ (_, s0); (_, s1) ] -> Alcotest.(check bool) "same stats" true (s0 = s1)
  | l -> Alcotest.failf "expected 2 nodes, got %d" (List.length l));
  let built1 = (Engine.counters e).Engine.built in
  let hits1 = (Engine.counters e).Engine.hits in
  let _c2 = compile_ok ~engine:e ~resident:false ~trials:24 (mk ()) in
  let built2 = (Engine.counters e).Engine.built in
  let hits2 = (Engine.counters e).Engine.hits in
  Alcotest.(check int) "no rebuilds across compiles" built1 built2;
  Alcotest.(check bool) "cache hits grew" true (hits2 > hits1)

let () =
  Alcotest.run "graph"
    [
      ( "epilogue",
        [
          Alcotest.test_case "kernel-site epilogue" `Quick test_epilogue_kernel;
          Alcotest.test_case "rfactor host epilogue" `Quick test_epilogue_rfactor;
          Alcotest.test_case "scalar combine epilogue" `Quick test_epilogue_scalar;
          Alcotest.test_case "structural keys distinct" `Quick test_epilogue_keys_distinct;
        ] );
      ( "ops",
        [
          Alcotest.test_case "new ops + Grid_map family" `Quick test_new_ops_families;
          Alcotest.test_case "skip_output_transfer" `Quick test_skip_output_transfer;
        ] );
      ( "api",
        [
          Alcotest.test_case "reserved input names" `Quick test_reserved_names;
          Alcotest.test_case "1k-node construction" `Quick test_large_graph;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "mlp fused end-to-end" `Quick test_mlp_fused;
          Alcotest.test_case "attention fused+resident" `Quick
            test_attention_fused_resident;
          Alcotest.test_case "unfused differential oracle" `Quick
            test_unfused_differential;
          Alcotest.test_case "fused matches unfused" `Quick
            test_fused_matches_unfused;
          Alcotest.test_case "structural dedup across nodes" `Quick
            test_engine_dedup;
        ] );
    ]
