(* Learned TIR cost model tests: exact ridge recovery on a synthetic
   linear cost, bit-identical feature extraction across cache states,
   gate arithmetic, and feature finiteness over fuzz-generated
   workloads. *)

module Cl = Imtp_autotune.Cost_learn
module Sk = Imtp_autotune.Sketch
module Rng = Imtp_autotune.Rng
module Engine = Imtp_engine.Engine
module Ops = Imtp_workload.Ops
module Cost = Imtp_tir.Cost
module U = Imtp_upmem

let cfg = U.Config.default

(* A deterministic pseudo-random feature vector: bias 1, then values in
   [0, 4).  No measurement involved — this exercises the regressor
   alone. *)
let synth_x rng =
  Array.init Cl.dim (fun i -> if i = 0 then 1. else Rng.float rng 4.)

let test_ridge_recovers_linear_cost () =
  (* y = exp(w . x) exactly; with negligible regularization and more
     well-spread samples than dimensions, the normal equations recover
     w and every prediction matches to floating-point accuracy. *)
  let rng = Rng.create ~seed:31 in
  let w = Array.init Cl.dim (fun i -> 0.05 *. float_of_int (i mod 7) -. 0.1) in
  let dot x = Array.fold_left ( +. ) 0. (Array.mapi (fun i v -> v *. w.(i)) x) in
  let model = Cl.create ~lambda:1e-9 () in
  let train = List.init 120 (fun _ -> synth_x rng) in
  List.iter (fun x -> Cl.observe model x (exp (dot x))) train;
  Alcotest.(check bool) "trained" true (Cl.trained model);
  Alcotest.(check int) "sample count" 120 (Cl.sample_count model);
  let holdout = List.init 20 (fun _ -> synth_x rng) in
  List.iter
    (fun x ->
      let got = Cl.predict_log model x and want = dot x in
      if Float.abs (got -. want) > 1e-6 then
        Alcotest.failf "prediction off: got %.12g want %.12g" got want)
    holdout;
  (* and the residuals tracked for these 20 observes are tiny too: the
     running mean covers every post-training observe (including the
     early, under-determined ones), so recover just the holdout
     contribution from the before/after means and counts. *)
  let n_before = float_of_int (120 - 8) in
  let e_before = Option.get (Cl.mean_abs_log_err model) in
  List.iter (fun x -> Cl.observe model x (exp (dot x))) holdout;
  let e_after = Option.get (Cl.mean_abs_log_err model) in
  let holdout_mean =
    (((n_before +. 20.) *. e_after) -. (n_before *. e_before)) /. 20.
  in
  Alcotest.(check bool) "holdout mean log err ~ 0" true (holdout_mean < 1e-6)

let test_untrained_predicts_infinity () =
  let model = Cl.create () in
  let rng = Rng.create ~seed:1 in
  let x = synth_x rng in
  Alcotest.(check bool) "untrained -> +inf" true
    (Cl.predict_log model x = infinity);
  for _ = 1 to 7 do
    Cl.observe model (synth_x rng) 1e-3
  done;
  Alcotest.(check bool) "7 < min_samples" false (Cl.trained model);
  Cl.observe model (synth_x rng) 1e-3;
  Alcotest.(check bool) "8 = min_samples" true (Cl.trained model)

let test_features_shape_and_finiteness () =
  let op = Ops.mtv 64 128 in
  let p = { Sk.default_params with Sk.spatial_dpus = 16; tasklets = 4; cache_elems = 16 } in
  let engine = Engine.create cfg in
  match Engine.prepare engine op p with
  | Error e -> Alcotest.fail (Engine.error_to_string e)
  | Ok prep ->
      let x = Cl.features prep.Engine.pprogram in
      Alcotest.(check int) "dim" Cl.dim (Array.length x);
      Alcotest.(check int) "names" Cl.dim (Array.length Cl.feature_names);
      Array.iteri
        (fun i v ->
          if not (Float.is_finite v) then
            Alcotest.failf "feature %s not finite" Cl.feature_names.(i))
        x;
      Alcotest.(check (float 0.)) "bias" 1. x.(0)

let test_features_bit_identical_cache_hit_vs_fresh () =
  let op = Ops.mmtv 4 32 32 in
  let rng = Rng.create ~seed:17 in
  for _ = 1 to 10 do
    let p = Sk.random rng cfg op in
    let fresh_engine = Engine.create cfg in
    match Engine.prepare fresh_engine op p with
    | Error _ -> () (* verifier may reject; that's fine *)
    | Ok prep_fresh ->
        let x_fresh = Cl.features prep_fresh.Engine.pprogram in
        (* complete the pipeline so the artifact table now owns the key,
           then re-prepare: this is served from the artifact cache. *)
        (match Engine.simulate fresh_engine prep_fresh with
        | Error e -> Alcotest.fail (Engine.error_to_string e)
        | Ok _ -> ());
        (match Engine.prepare fresh_engine op p with
        | Error e -> Alcotest.fail (Engine.error_to_string e)
        | Ok prep_hit ->
            let x_hit = Cl.features prep_hit.Engine.pprogram in
            Alcotest.(check bool) "cache-hit features bit-identical" true
              (x_fresh = x_hit));
        (* and an independent engine building from scratch agrees *)
        let other = Engine.create cfg in
        (match Engine.prepare other op p with
        | Error e -> Alcotest.fail (Engine.error_to_string e)
        | Ok prep2 ->
            Alcotest.(check bool) "fresh-engine features bit-identical" true
              (x_fresh = Cl.features prep2.Engine.pprogram))
  done

let test_dma_estimate_sanity () =
  (* Evenly divided tiling: no guard branches, so the analytic estimate
     must dominate the exact per-iteration enumeration and both must be
     positive. *)
  let op = Ops.mtv 64 128 in
  let p = { Sk.default_params with Sk.spatial_dpus = 16; tasklets = 4; cache_elems = 16 } in
  let engine = Engine.create cfg in
  match Engine.prepare engine op p with
  | Error e -> Alcotest.fail (Engine.error_to_string e)
  | Ok prep ->
      let est = Cost.dma_estimate prep.Engine.pprogram in
      let exact = Cost.dma_counts prep.Engine.pprogram in
      Alcotest.(check bool) "ops > 0" true (est.Cost.dma_ops > 0);
      Alcotest.(check bool) "elems > 0" true (est.Cost.dma_elems > 0);
      Alcotest.(check bool) "ops >= exact" true
        (est.Cost.dma_ops >= exact.Cost.dma_ops);
      Alcotest.(check bool) "elems >= exact" true
        (est.Cost.dma_elems >= exact.Cost.dma_elems)

let test_select_count () =
  Alcotest.(check int) "empty" 0 (Cl.select_count ~ratio:0.2 0);
  Alcotest.(check int) "at least one" 1 (Cl.select_count ~ratio:0.01 10);
  Alcotest.(check int) "ceil" 4 (Cl.select_count ~ratio:0.2 16);
  Alcotest.(check int) "all" 16 (Cl.select_count ~ratio:1.0 16)

let test_rank_stable () =
  let model = Cl.create () in
  let rng = Rng.create ~seed:3 in
  let xs = List.init 10 (fun _ -> synth_x rng) in
  (* untrained: uniform +inf predictions must keep proposal order *)
  Alcotest.(check (list int)) "untrained keeps order"
    (List.init 10 Fun.id) (Cl.rank model xs);
  (* trained: ranking sorts by predicted cost, deterministically *)
  List.iter (fun x -> Cl.observe model x (exp x.(1))) xs;
  let a = Cl.rank model xs and b = Cl.rank model xs in
  Alcotest.(check (list int)) "deterministic" a b;
  Alcotest.(check int) "permutation" 10
    (List.length (List.sort_uniq compare a))

(* Fuzz-generated workload x random schedule: every prepared candidate
   yields an all-finite feature vector. *)
let prop_features_finite =
  QCheck2.Test.make ~name:"features finite on fuzz-generated candidates"
    ~count:40
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let w = Imtp_fuzz.Gen_workload.random rng in
      let op = Imtp_fuzz.Gen_workload.op w in
      let p = Sk.random rng cfg op in
      let engine = Engine.create cfg in
      match Engine.prepare engine op p with
      | Error _ -> true (* rejection is not a feature-extraction failure *)
      | Ok prep ->
          let x = Cl.features prep.Engine.pprogram in
          Array.length x = Cl.dim && Array.for_all Float.is_finite x)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "cost_learn"
    [
      ( "ridge",
        [
          Alcotest.test_case "recovers linear cost" `Quick
            test_ridge_recovers_linear_cost;
          Alcotest.test_case "untrained predicts +inf" `Quick
            test_untrained_predicts_infinity;
        ] );
      ( "features",
        [
          Alcotest.test_case "shape and finiteness" `Quick
            test_features_shape_and_finiteness;
          Alcotest.test_case "cache-hit vs fresh bit-identical" `Quick
            test_features_bit_identical_cache_hit_vs_fresh;
          Alcotest.test_case "dma estimate sanity" `Quick
            test_dma_estimate_sanity;
        ] );
      ( "gate",
        [
          Alcotest.test_case "select count" `Quick test_select_count;
          Alcotest.test_case "rank stable" `Quick test_rank_stable;
        ] );
      ("properties", q [ prop_features_finite ]);
    ]
