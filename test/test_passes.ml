(* PIM-aware optimization pass tests (§5.3): each pass and every
   ablation combination must preserve program semantics on misaligned
   shapes, and must reduce the static/dynamic metrics it targets. *)

module Sk = Imtp_autotune.Sketch
module L = Imtp_lower.Lowering
module Pl = Imtp_passes.Pipeline
module M = Imtp_passes.Metrics
module Op = Imtp_workload.Op
module Ops = Imtp_workload.Ops
module P = Imtp_tir.Program
module St = Imtp_tir.Stmt
module T = Imtp_tensor
module U = Imtp_upmem

let cfg = U.Config.default

let lower_raw op params =
  L.lower ~options:(Sk.lower_options params) (Sk.instantiate op params)

let params ?(sd = 4) ?(rd = 1) ?(t = 4) ?(c = 8) ?(rows = 2) () =
  {
    Sk.default_params with
    Sk.spatial_dpus = sd;
    reduction_dpus = rd;
    tasklets = t;
    cache_elems = c;
    rows_per_tasklet = rows;
  }

let outputs prog op =
  let inputs = Ops.random_inputs op in
  let outs = Imtp_tir.Eval.run prog ~inputs in
  T.Tensor.to_value_list (List.assoc (fst op.Op.output) outs)

let check_semantics_all_ablations name op p =
  let raw = lower_raw op p in
  let want = outputs raw op in
  List.iter
    (fun (aname, config) ->
      let prog = Pl.run ~config cfg raw in
      let got = outputs prog op in
      Alcotest.(check bool)
        (Printf.sprintf "%s under %s" name aname)
        true (got = want))
    Pl.ablations

(* Misaligned on purpose: 1000 is not a multiple of 4*4*8. *)
let test_semantics_va () =
  check_semantics_all_ablations "va" (Ops.va 1000) (params ())

let test_semantics_red () =
  check_semantics_all_ablations "red" (Ops.red 999) (params ~rd:4 ())

let test_semantics_mtv_misaligned_cols () =
  check_semantics_all_ablations "mtv cols" (Ops.mtv 32 61) (params ~c:8 ())

let test_semantics_mtv_misaligned_rows () =
  check_semantics_all_ablations "mtv rows" (Ops.mtv 31 64) (params ~c:8 ())

let test_semantics_mtv_rfactor () =
  check_semantics_all_ablations "mtv rfactor" (Ops.mtv 31 61) (params ~rd:2 ())

let test_semantics_mmtv () =
  check_semantics_all_ablations "mmtv" (Ops.mmtv 3 15 31) (params ())

let test_semantics_gemv_fig8 () =
  (* The Fig. 8 running example: 7x40 GEMV, 2x16 tiling, one tasklet. *)
  let op = Ops.gemv ~c:1 7 40 in
  check_semantics_all_ablations "gemv 7x40"
    op
    (params ~sd:4 ~t:1 ~c:16 ())

let test_semantics_gemm () =
  (* Odd extents on all three axes: boundary guards in both spatial
     tiles and the reduction tail. *)
  check_semantics_all_ablations "gemm" (Ops.gemm 17 13 21) (params ~c:4 ())

let test_semantics_mlp_chain () =
  (* A two-layer MLP as a chain of separately compiled stages
     (mtv -> mtv -> va, odd dims): every ablation must produce the
     same final activations, with each stage's output feeding the
     next stage's inputs. *)
  let d = 23 and h = 19 and o = 7 in
  let l1 = Ops.mtv h d and l2 = Ops.mtv o h in
  let bias = Ops.va o in
  let w1 = T.Tensor.random ~seed:41 ~bound:9 T.Dtype.I32 (T.Shape.create [ h; d ]) in
  let x = T.Tensor.random ~seed:42 ~bound:9 T.Dtype.I32 (T.Shape.create [ d ]) in
  let w2 = T.Tensor.random ~seed:43 ~bound:9 T.Dtype.I32 (T.Shape.create [ o; h ]) in
  let b = T.Tensor.random ~seed:44 ~bound:9 T.Dtype.I32 (T.Shape.create [ o ]) in
  let p = params ~sd:2 ~t:2 ~c:4 () in
  let run_chain config =
    let stage op inputs =
      let prog = Pl.run ~config cfg (lower_raw op p) in
      List.assoc (fst op.Op.output) (Imtp_tir.Eval.run prog ~inputs)
    in
    let y1 = stage l1 [ ("A", w1); ("B", x) ] in
    let y2 = stage l2 [ ("A", w2); ("B", y1) ] in
    T.Tensor.to_value_list (stage bias [ ("A", y2); ("B", b) ])
  in
  let reference =
    let y1 = Op.reference l1 [ ("A", w1); ("B", x) ] in
    let y2 = Op.reference l2 [ ("A", w2); ("B", y1) ] in
    T.Tensor.to_value_list (Op.reference bias [ ("A", y2); ("B", b) ])
  in
  List.iter
    (fun (aname, config) ->
      Alcotest.(check bool)
        (Printf.sprintf "mlp chain under %s" aname)
        true
        (run_chain config = reference))
    Pl.ablations

let kernel prog = List.hd prog.P.kernels

let test_dma_vectorizes () =
  let op = Ops.va 1024 in
  let raw = lower_raw op (params ()) in
  let opt = Imtp_passes.Dma_elim.run cfg raw in
  let has_wide_static_dma k =
    St.exists
      (function
        | St.Dma { elems = Imtp_tir.Expr.Int_const n; _ } -> n > 1
        | _ -> false)
      (kernel k).P.body
  in
  Alcotest.(check bool) "raw has only unit DMA" false (has_wide_static_dma raw);
  Alcotest.(check bool) "optimized has wide static DMA" true
    (has_wide_static_dma opt)

let test_dma_respects_max_size () =
  (* 1024-element tiles at 4 B = 4 KB > the 2 KB DMA limit: the pass
     must strip-vectorize rather than emit an illegal DMA. *)
  let op = Ops.va 8192 in
  let raw = lower_raw op (params ~sd:2 ~t:2 ~c:1024 ()) in
  let opt = Imtp_passes.Dma_elim.run cfg raw in
  let ok = ref true in
  St.iter
    (function
      | St.Dma { elems = Imtp_tir.Expr.Int_const n; _ } ->
          if n * 4 > cfg.U.Config.dma_max_bytes then ok := false
      | _ -> ())
    (kernel opt).P.body;
  Alcotest.(check bool) "all DMAs legal" true !ok;
  (* and semantics still hold *)
  Alcotest.(check bool) "semantics" true (outputs opt op = outputs raw op)

let test_dma_reduces_branches () =
  let op = Ops.mtv 31 61 in
  let raw = lower_raw op (params ()) in
  let opt = Imtp_passes.Dma_elim.run cfg raw in
  let m_raw = M.of_kernel (kernel raw) and m_opt = M.of_kernel (kernel opt) in
  Alcotest.(check bool) "fewer dynamic branches" true
    (m_opt.M.dynamic_branches < m_raw.M.dynamic_branches);
  Alcotest.(check bool) "fewer dynamic DMAs" true
    (m_opt.M.dynamic_dmas < m_raw.M.dynamic_dmas)

let test_loop_tighten_cuts_iterations () =
  (* Misaligned columns: the innermost reduction loop has dead
     iterations that tightening removes (Fig. 8(c): 96 -> 80). *)
  let op = Ops.mtv 32 61 in
  let p = params ~c:8 () in
  let raw = Pl.run ~config:{ Pl.all_off with Pl.dma_elim = true } cfg (lower_raw op p) in
  let lt = Imtp_passes.Loop_tighten.run raw in
  let m_raw = M.of_kernel (kernel raw) and m_lt = M.of_kernel (kernel lt) in
  Alcotest.(check bool)
    (Printf.sprintf "fewer innermost iters (%.0f -> %.0f)" m_raw.M.innermost_iters
       m_lt.M.innermost_iters)
    true
    (m_lt.M.innermost_iters < m_raw.M.innermost_iters);
  Alcotest.(check bool) "semantics" true (outputs lt op = outputs raw op)

let test_branch_hoist_reduces_dynamic_branches () =
  (* Misaligned rows: the row-boundary check is invariant in the
     reduction loop and hoists out (Fig. 8(d)). *)
  let op = Ops.mtv 31 64 in
  let p = params ~c:8 () in
  let pre =
    Pl.run
      ~config:{ Pl.all_off with Pl.dma_elim = true; Pl.loop_tighten = true }
      cfg (lower_raw op p)
  in
  let bh = Imtp_passes.Branch_hoist.run pre in
  let m_pre = M.of_kernel (kernel pre) and m_bh = M.of_kernel (kernel bh) in
  Alcotest.(check bool)
    (Printf.sprintf "dynamic branches %.0f -> %.0f" m_pre.M.dynamic_branches
       m_bh.M.dynamic_branches)
    true
    (m_bh.M.dynamic_branches < m_pre.M.dynamic_branches);
  Alcotest.(check bool) "semantics" true (outputs bh op = outputs pre op)

let total op p config =
  let prog = Pl.run ~config cfg (lower_raw op p) in
  U.Stats.total_s (Imtp_tir.Cost.measure cfg prog)

let test_passes_improve_cost_monotonically () =
  let op = Ops.mtv 62 123 in
  let p = params ~c:8 () in
  let costs = List.map (fun (n, c) -> (n, total op p c)) Pl.ablations in
  match costs with
  | [ (_, none); (_, dma); (_, dma_lt); (_, all) ] ->
      Alcotest.(check bool) "dma helps" true (dma < none);
      Alcotest.(check bool) "lt no worse" true (dma_lt <= dma *. 1.001);
      Alcotest.(check bool) "bh no worse" true (all <= dma_lt *. 1.001)
  | _ -> Alcotest.fail "expected four ablations"

let test_aligned_shapes_unaffected_semantically () =
  (* On perfectly aligned shapes LT and BH are no-ops; DMA still
     vectorizes. Everything stays correct. *)
  let op = Ops.mtv 32 64 in
  let p = params ~c:8 () in
  check_semantics_all_ablations "aligned mtv" op p;
  let raw = lower_raw op p in
  let dma_only = Pl.run ~config:{ Pl.all_off with Pl.dma_elim = true } cfg raw in
  let all = Pl.run ~config:Pl.all_on cfg raw in
  let m1 = M.of_kernel (kernel dma_only) and m2 = M.of_kernel (kernel all) in
  Alcotest.(check (float 0.)) "same innermost iters"
    m1.M.innermost_iters m2.M.innermost_iters

let test_metrics_sanity () =
  let op = Ops.mtv 31 61 in
  let raw = lower_raw op (params ~c:8 ()) in
  let m = M.of_kernel (kernel raw) in
  Alcotest.(check bool) "has branches" true (m.M.static_branches > 0);
  Alcotest.(check bool) "has dmas" true (m.M.static_dmas > 0);
  Alcotest.(check bool) "dyn >= static" true
    (m.M.dynamic_branches >= float_of_int m.M.static_branches)

let prop_passes_preserve_semantics =
  QCheck2.Test.make ~name:"all ablations preserve semantics (random mtv)"
    ~count:20
    QCheck2.Gen.(
      quad (int_range 2 40) (int_range 2 40) (int_range 1 3) (int_range 2 8))
    (fun (n, k, t, c) ->
      let op = Imtp_workload.Ops.mtv n k in
      let p = params ~sd:4 ~t ~c () in
      let raw = lower_raw op p in
      let want = outputs raw op in
      List.for_all
        (fun (_, config) -> outputs (Pl.run ~config cfg raw) op = want)
        Pl.ablations)

let prop_dma_elim_never_slower =
  QCheck2.Test.make ~name:"dma elimination never slows a kernel" ~count:20
    QCheck2.Gen.(pair (int_range 8 200) (int_range 2 16))
    (fun (n, c) ->
      let op = Imtp_workload.Ops.va n in
      let p = params ~sd:2 ~t:2 ~c () in
      let raw = lower_raw op p in
      let opt = Imtp_passes.Dma_elim.run cfg raw in
      let t_raw = Imtp_tir.Cost.kernel_cycles cfg raw (kernel raw) in
      let t_opt = Imtp_tir.Cost.kernel_cycles cfg opt (kernel opt) in
      t_opt <= t_raw *. 1.001)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "passes"
    [
      ( "semantics",
        [
          Alcotest.test_case "va" `Quick test_semantics_va;
          Alcotest.test_case "red" `Quick test_semantics_red;
          Alcotest.test_case "mtv cols" `Quick test_semantics_mtv_misaligned_cols;
          Alcotest.test_case "mtv rows" `Quick test_semantics_mtv_misaligned_rows;
          Alcotest.test_case "mtv rfactor" `Quick test_semantics_mtv_rfactor;
          Alcotest.test_case "mmtv" `Quick test_semantics_mmtv;
          Alcotest.test_case "gemv fig8" `Quick test_semantics_gemv_fig8;
          Alcotest.test_case "gemm" `Quick test_semantics_gemm;
          Alcotest.test_case "mlp chain" `Quick test_semantics_mlp_chain;
          Alcotest.test_case "aligned" `Quick
            test_aligned_shapes_unaffected_semantically;
        ] );
      ( "dma_elim",
        [
          Alcotest.test_case "vectorizes" `Quick test_dma_vectorizes;
          Alcotest.test_case "max size" `Quick test_dma_respects_max_size;
          Alcotest.test_case "fewer branches" `Quick test_dma_reduces_branches;
        ] );
      ( "loop_tighten+branch_hoist",
        [
          Alcotest.test_case "tighten cuts iterations" `Quick
            test_loop_tighten_cuts_iterations;
          Alcotest.test_case "hoist cuts branches" `Quick
            test_branch_hoist_reduces_dynamic_branches;
          Alcotest.test_case "cost monotone" `Quick
            test_passes_improve_cost_monotonically;
          Alcotest.test_case "metrics sanity" `Quick test_metrics_sanity;
        ] );
      ("properties", q [ prop_passes_preserve_semantics; prop_dma_elim_never_slower ]);
    ]
