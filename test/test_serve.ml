(* Serving tests: protocol framing and codecs over socketpairs, then a
   live in-process daemon driven through the typed client — including
   deliberately malformed traffic (the fuzz harness), concurrent
   sessions sharing one engine, admission backpressure, and
   interrupt-then-resume across two daemon lifetimes. *)

module P = Imtp_serve.Protocol
module Serve = Imtp_serve.Serve
module Client = Imtp_serve.Client
module Json = Imtp_obs.Obs.Json

let fail_client e = Alcotest.fail (Client.error_to_string e)

let ok = function Ok v -> v | Error e -> fail_client e

let jstr body field =
  match Json.member field body with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "missing string field %S in %s" field (Json.to_string body)

let jnum body field =
  match Json.member field body with
  | Some (Json.Num n) -> n
  | _ -> Alcotest.failf "missing number field %S in %s" field (Json.to_string body)

let jobj body field =
  match Json.member field body with
  | Some (Json.Obj _ as o) -> o
  | _ -> Alcotest.failf "missing object field %S in %s" field (Json.to_string body)

(* --- Framing over a socketpair --------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payloads =
        [ "x"; "{\"kind\":\"stats\"}"; String.make 60000 'q' ]
      in
      List.iter
        (fun p ->
          P.write_frame a p;
          match P.read_frame b with
          | Ok (Some got) -> Alcotest.(check string) "payload" p got
          | Ok None -> Alcotest.fail "unexpected EOF"
          | Error (_, m) -> Alcotest.fail m)
        payloads;
      Unix.close a;
      match P.read_frame b with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "phantom frame after close"
      | Error (_, m) -> Alcotest.failf "clean close misread as error: %s" m)

let test_frame_errors () =
  (* truncated length prefix *)
  with_socketpair (fun a b ->
      let n = Unix.write_substring a "\x00\x00" 0 2 in
      Alcotest.(check int) "wrote prefix fragment" 2 n;
      Unix.close a;
      match P.read_frame b with
      | Error (P.Bad_frame, _) -> ()
      | Error (c, m) ->
          Alcotest.failf "wrong code %s: %s" (P.error_code_to_string c) m
      | Ok _ -> Alcotest.fail "truncated prefix accepted");
  (* oversized length prefix *)
  with_socketpair (fun a b ->
      let n = Unix.write_substring a "\xff\xff\xff\xff" 0 4 in
      Alcotest.(check int) "wrote prefix" 4 n;
      match P.read_frame b with
      | Error (P.Too_large, _) -> ()
      | Error (c, m) ->
          Alcotest.failf "wrong code %s: %s" (P.error_code_to_string c) m
      | Ok _ -> Alcotest.fail "oversized frame accepted");
  (* zero-length frame *)
  with_socketpair (fun a b ->
      let n = Unix.write_substring a "\x00\x00\x00\x00" 0 4 in
      Alcotest.(check int) "wrote prefix" 4 n;
      match P.read_frame b with
      | Error (P.Bad_frame, _) -> ()
      | Error (c, m) ->
          Alcotest.failf "wrong code %s: %s" (P.error_code_to_string c) m
      | Ok _ -> Alcotest.fail "empty frame accepted");
  (* truncated payload *)
  with_socketpair (fun a b ->
      let n = Unix.write_substring a "\x00\x00\x00\x0ahello" 0 9 in
      Alcotest.(check int) "wrote fragment" 9 n;
      Unix.close a;
      match P.read_frame b with
      | Error (P.Bad_frame, _) -> ()
      | Error (c, m) ->
          Alcotest.failf "wrong code %s: %s" (P.error_code_to_string c) m
      | Ok _ -> Alcotest.fail "truncated payload accepted");
  (* empty payload refused at the writer too *)
  with_socketpair (fun a _ ->
      match P.write_frame a "" with
      | () -> Alcotest.fail "empty payload written"
      | exception Invalid_argument _ -> ())

let test_request_json_roundtrip () =
  let specs =
    [
      P.Hello 1;
      P.Run { op = "va"; sizes = [ 1000 ] };
      P.Tune
        {
          op = "gemv";
          sizes = [ 64; 256 ];
          trials = 24;
          seed = 7;
          measure_ratio = Some 0.2;
          islands = Some 4;
          session = Some "sess-a";
        };
      P.Tune
        {
          op = "mtv";
          sizes = [ 128; 256 ];
          trials = 48;
          seed = 11;
          measure_ratio = None;
          islands = None;
          session = None;
        };
      P.Replay { log = "/tmp/x.log"; sizes = [ 8; 64; 64 ] };
      P.Stats;
      P.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      let s = Json.to_string (P.request_to_json req) in
      match P.request_of_string s with
      | Ok got ->
          if got <> req then Alcotest.failf "request did not roundtrip: %s" s
      | Error (_, m) -> Alcotest.failf "%s: %s" s m)
    specs

let test_response_json_roundtrip () =
  let resps =
    [
      P.Resp_ok (Json.Obj [ ("x", Json.Num 1.5); ("s", Json.Str "y") ]);
      P.Resp_error { code = P.Busy; message = "queue full" };
    ]
  in
  List.iter
    (fun r ->
      let s = Json.to_string (P.response_to_json r) in
      match P.response_of_string s with
      | Ok got ->
          if got <> r then Alcotest.failf "response did not roundtrip: %s" s
      | Error (_, m) -> Alcotest.failf "%s: %s" s m)
    resps

let test_error_code_table () =
  let all =
    [
      P.Bad_frame; P.Bad_version; P.Bad_request; P.Unknown_op; P.Engine_error;
      P.Busy; P.Shutting_down; P.Not_found; P.Too_large; P.Internal;
    ]
  in
  List.iter
    (fun c ->
      let s = P.error_code_to_string c in
      match P.error_code_of_string s with
      | Some got ->
          if got <> c then Alcotest.failf "%s did not roundtrip" s
      | None -> Alcotest.failf "%s unknown to its own table" s)
    all;
  Alcotest.(check bool) "unknown code rejected" true
    (P.error_code_of_string "no_such_code" = None)

let test_malformed_requests_typed () =
  let cases =
    [
      ("not json at all", P.Bad_request);
      ("{\"kind\":\"frobnicate\"}", P.Bad_request);
      ("{\"kind\":\"run\",\"op\":\"va\",\"sizes\":[0]}", P.Bad_request);
      ("{\"kind\":\"run\",\"op\":\"va\",\"sizes\":[1.5]}", P.Bad_request);
      ("{\"kind\":\"tune\",\"op\":\"va\",\"sizes\":[8],\"trials\":0,\"seed\":1}",
       P.Bad_request);
      ("[1,2,3]", P.Bad_request);
    ]
  in
  List.iter
    (fun (s, want) ->
      match P.request_of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed request %s" s
      | Error (code, _) ->
          if code <> want then
            Alcotest.failf "%s: got %s" s (P.error_code_to_string code))
    cases

(* --- Live daemon harness --------------------------------------------- *)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let wait_for ?(timeout = 10.) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

(* Start an in-process daemon, run [f] against its socket, always shut
   it down and join the daemon thread. *)
let with_daemon ?(config = fun c -> c) f =
  let dir = temp_dir "imtp_serve" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "d.sock" in
      let cfg =
        config
          {
            (Serve.default_config ~socket) with
            Serve.checkpoint_dir = Filename.concat dir "ckpt";
          }
      in
      let daemon_result = ref (Ok ()) in
      let th = Thread.create (fun () -> daemon_result := Serve.run cfg) () in
      wait_for "daemon socket"
        (fun () ->
          match Client.connect ~socket with
          | Ok c ->
              Client.close c;
              true
          | Error _ -> false);
      Fun.protect
        ~finally:(fun () ->
          (match Client.with_connection ~socket Client.shutdown with
          | Ok () | Error _ -> ());
          Thread.join th;
          match !daemon_result with
          | Ok () -> ()
          | Error m -> Alcotest.failf "daemon exited with: %s" m)
        (fun () -> f cfg socket))

let quick_tune ?(trials = 24) ?measure_ratio ~session c =
  Client.tune c
    {
      P.op = "mtv";
      sizes = [ 64; 128 ];
      trials;
      seed = 5;
      measure_ratio;
      islands = None;
      session = Some session;
    }

let test_daemon_run_and_stats () =
  with_daemon (fun _cfg socket ->
      let c = ok (Client.connect ~socket) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let body = ok (Client.run c ~op:"va" ~sizes:[ 1000 ]) in
          Alcotest.(check bool) "run validates" true
            (Json.member "valid" body = Some (Json.Bool true));
          (* semantic errors keep the connection usable *)
          (match Client.run c ~op:"no_such_op" ~sizes:[ 8 ] with
          | Error (Client.Server (P.Unknown_op, _)) -> ()
          | Error e -> fail_client e
          | Ok _ -> Alcotest.fail "unknown op accepted");
          (match Client.run c ~op:"va" ~sizes:[ 1; 2; 3; 4 ] with
          | Error (Client.Server (P.Bad_request, _)) -> ()
          | Error e -> fail_client e
          | Ok _ -> Alcotest.fail "bad arity accepted");
          (match Client.replay c ~log:"/nonexistent.log" ~sizes:[ 8 ] with
          | Error (Client.Server (P.Not_found, _)) -> ()
          | Error e -> fail_client e
          | Ok _ -> Alcotest.fail "missing log accepted");
          let stats = ok (Client.stats c) in
          ignore (jobj stats "engine");
          let pool = jobj stats "pool" in
          (match Json.member "peak_busy" pool with
          | Some (Json.Num n) ->
              Alcotest.(check bool) "peak_busy is a sane gauge" true (n >= 0.)
          | _ -> Alcotest.fail "pool stats missing peak_busy");
          ignore (jobj stats "sessions");
          ignore (jobj stats "metrics")))

(* Malformed traffic must produce typed errors, never kill the daemon.
   After every abuse below, a well-behaved client still gets stats. *)
let test_daemon_survives_malformed_traffic () =
  with_daemon (fun _cfg socket ->
      let raw () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket);
        fd
      in
      let expect_error fd want =
        match P.read_frame fd with
        | Ok (Some payload) -> (
            match P.response_of_string payload with
            | Ok (P.Resp_error { code; _ }) when code = want -> ()
            | Ok r ->
                Alcotest.failf "wanted %s, got %s"
                  (P.error_code_to_string want)
                  (Json.to_string (P.response_to_json r))
            | Error (_, m) -> Alcotest.fail m)
        | Ok None -> Alcotest.failf "connection closed before %s"
                       (P.error_code_to_string want)
        | Error (_, m) -> Alcotest.fail m
      in
      let close fd = try Unix.close fd with Unix.Unix_error _ -> () in
      (* bad JSON in the first frame *)
      let fd = raw () in
      P.write_frame fd "this is not json";
      expect_error fd P.Bad_request;
      close fd;
      (* well-formed request that is not hello *)
      let fd = raw () in
      P.send_request fd P.Stats;
      expect_error fd P.Bad_request;
      close fd;
      (* wrong hello version *)
      let fd = raw () in
      P.send_request fd (P.Hello 999);
      expect_error fd P.Bad_version;
      close fd;
      (* partial length prefix then close *)
      let fd = raw () in
      ignore (Unix.write_substring fd "\x00\x00" 0 2);
      close fd;
      (* oversized frame after a valid hello *)
      let fd = raw () in
      P.send_request fd (P.Hello P.version);
      (match P.read_frame fd with
      | Ok (Some _) -> ()
      | _ -> Alcotest.fail "no hello ack");
      ignore (Unix.write_substring fd "\x7f\xff\xff\xff" 0 4);
      expect_error fd P.Too_large;
      close fd;
      (* seeded random garbage, assorted lengths *)
      let rng = Random.State.make [| 0xC0FFEE |] in
      for _ = 1 to 20 do
        let fd = raw () in
        let n = 1 + Random.State.int rng 64 in
        let junk =
          String.init n (fun _ -> Char.chr (Random.State.int rng 256))
        in
        (try ignore (Unix.write_substring fd junk 0 n)
         with Unix.Unix_error _ -> ());
        (* whatever the daemon answers (typed error or close) is fine —
           it just must not die *)
        (match P.read_frame fd with Ok _ | Error _ -> ());
        close fd
      done;
      (* the daemon is still standing *)
      let c = ok (Client.connect ~socket) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () -> ignore (ok (Client.stats c))))

(* Four clients tune the same spec under distinct session names with
   max_sessions = 2: all must complete (no starvation), their history
   digests must agree (determinism regardless of cache state), and the
   shared engine must serve later sessions from cache. *)
let test_concurrent_clients_share_cache () =
  with_daemon
    ~config:(fun c -> { c with Serve.max_sessions = 2; queue_limit = 16 })
    (fun _cfg socket ->
      let results = Array.make 4 (Error (Client.Transport "unset")) in
      let threads =
        Array.init 4 (fun i ->
            Thread.create
              (fun () ->
                results.(i) <-
                  Client.with_connection ~socket (fun c ->
                      quick_tune ~session:(Printf.sprintf "sess%d" i) c))
              ())
      in
      Array.iter Thread.join threads;
      let digests =
        Array.to_list results
        |> List.map (fun r ->
               let body = ok r in
               Alcotest.(check bool) "session completed" false
                 (Json.member "interrupted" body = Some (Json.Bool true));
               jstr body "history_digest")
      in
      (match digests with
      | d :: rest ->
          List.iteri
            (fun i d' ->
              Alcotest.(check string)
                (Printf.sprintf "digest %d matches" (i + 1))
                d d')
            rest
      | [] -> assert false);
      let stats = ok (Client.with_connection ~socket Client.stats) in
      let engine = jobj stats "engine" and sessions = jobj stats "sessions" in
      Alcotest.(check (float 0.)) "all four sessions completed" 4.
        (jnum sessions "completed");
      let hits = jnum engine "hits" and built = jnum engine "built" in
      Alcotest.(check bool)
        (Printf.sprintf "shared cache: hits %.0f > built %.0f" hits built)
        true
        (hits > built))

(* max_sessions = 1 and queue_limit = 1: with a slot holder and one
   queued waiter, a third tune must bounce with [Busy]; so must a
   duplicate of a running session name. *)
let test_admission_backpressure () =
  with_daemon
    ~config:(fun c -> { c with Serve.max_sessions = 1; queue_limit = 1 })
    (fun _cfg socket ->
      let stats_field obj field =
        let s = ok (Client.with_connection ~socket Client.stats) in
        jnum (jobj s obj) field
      in
      let slow = ref (Error (Client.Transport "unset")) in
      let t1 =
        Thread.create
          (fun () ->
            slow :=
              Client.with_connection ~socket
                (quick_tune ~trials:4000 ~session:"holder"))
          ()
      in
      wait_for "holder to take the slot" (fun () ->
          stats_field "sessions" "active" = 1.);
      (* duplicate of a running session: immediate Busy, not queued *)
      (match
         Client.with_connection ~socket (quick_tune ~trials:4 ~session:"holder")
       with
      | Error (Client.Server (P.Busy, _)) -> ()
      | Error e -> fail_client e
      | Ok _ -> Alcotest.fail "duplicate session admitted");
      let waiter = ref (Error (Client.Transport "unset")) in
      let t2 =
        Thread.create
          (fun () ->
            waiter :=
              Client.with_connection ~socket
                (quick_tune ~trials:4 ~session:"waiter"))
          ()
      in
      wait_for "waiter to queue" (fun () ->
          stats_field "sessions" "queued" = 1.);
      (* queue is now full: third client is refused *)
      (match
         Client.with_connection ~socket (quick_tune ~trials:4 ~session:"extra")
       with
      | Error (Client.Server (P.Busy, _)) -> ()
      | Error e -> fail_client e
      | Ok _ -> Alcotest.fail "over-limit tune admitted");
      Thread.join t1;
      Thread.join t2;
      ignore (ok !slow);
      ignore (ok !waiter);
      Alcotest.(check bool) "busy rejections counted" true
        (stats_field "sessions" "rejected_busy" >= 2.))

(* Interrupt-then-resume across daemon lifetimes, sharing one
   checkpoint dir: a shutdown mid-tune answers the client with
   [interrupted = true] and leaves the checkpoint behind; a second
   daemon resuming that session must report [resumed_from] and land on
   the reference digest. *)
let test_daemon_resume_after_interrupt () =
  let dir = temp_dir "imtp_resume" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf (Filename.concat dir "ckpt");
      rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "d.sock" in
      let ckpt_dir = Filename.concat dir "ckpt" in
      let cfg =
        {
          (Serve.default_config ~socket) with
          Serve.checkpoint_dir = ckpt_dir;
        }
      in
      let trials = 4000 and session = "kill-me" in
      let spec =
        {
          P.op = "mtv";
          sizes = [ 64; 128 ];
          trials;
          seed = 5;
          measure_ratio = None;
          islands = None;
          session = Some session;
        }
      in
      let boot () =
        let result = ref (Ok ()) in
        let th = Thread.create (fun () -> result := Serve.run cfg) () in
        wait_for "daemon socket"
          (fun () ->
            match Client.connect ~socket with
            | Ok c ->
                Client.close c;
                true
            | Error _ -> false);
        (th, result)
      in
      let join (th, result) =
        Thread.join th;
        match !result with
        | Ok () -> ()
        | Error m -> Alcotest.failf "daemon exited with: %s" m
      in
      (* daemon #1: record the uninterrupted reference, then interrupt
         the same spec under another session via shutdown *)
      let d1 = boot () in
      let reference =
        jstr
          (ok
             (Client.with_connection ~socket (fun c ->
                  Client.tune c { spec with P.session = Some "reference" })))
          "history_digest"
      in
      let ckpt_path = Filename.concat ckpt_dir (session ^ ".ckpt") in
      let victim = ref (Error (Client.Transport "unset")) in
      let tv =
        Thread.create
          (fun () ->
            victim := Client.with_connection ~socket (fun c -> Client.tune c spec))
          ()
      in
      wait_for "first checkpoint on disk" (fun () -> Sys.file_exists ckpt_path);
      (match Client.with_connection ~socket Client.shutdown with
      | Ok () -> ()
      | Error e -> fail_client e);
      Thread.join tv;
      join d1;
      let vbody = ok !victim in
      Alcotest.(check bool) "victim answered as interrupted" true
        (Json.member "interrupted" vbody = Some (Json.Bool true));
      Alcotest.(check bool) "checkpoint survives the shutdown" true
        (Sys.file_exists ckpt_path);
      (* daemon #2: resuming the session must finish on the reference
         digest and clean up its checkpoint *)
      let d2 = boot () in
      let rbody =
        ok (Client.with_connection ~socket (fun c -> Client.tune c spec))
      in
      (match Client.with_connection ~socket Client.shutdown with
      | Ok () -> ()
      | Error e -> fail_client e);
      join d2;
      (match Json.member "resumed_from" rbody with
      | Some (Json.Num n) when n > 0. -> ()
      | v ->
          Alcotest.failf "resumed_from missing or null: %s"
            (match v with Some j -> Json.to_string j | None -> "absent"))
      ;
      Alcotest.(check string) "resumed digest matches uninterrupted run"
        reference
        (jstr rbody "history_digest");
      Alcotest.(check bool) "checkpoint removed after completion" false
        (Sys.file_exists ckpt_path))

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "frame errors are typed" `Quick test_frame_errors;
          Alcotest.test_case "request json roundtrip" `Quick
            test_request_json_roundtrip;
          Alcotest.test_case "response json roundtrip" `Quick
            test_response_json_roundtrip;
          Alcotest.test_case "error-code table" `Quick test_error_code_table;
          Alcotest.test_case "malformed requests typed" `Quick
            test_malformed_requests_typed;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "run, errors, stats" `Quick
            test_daemon_run_and_stats;
          Alcotest.test_case "survives malformed traffic" `Quick
            test_daemon_survives_malformed_traffic;
          Alcotest.test_case "4 clients share one cache" `Quick
            test_concurrent_clients_share_cache;
          Alcotest.test_case "admission backpressure" `Quick
            test_admission_backpressure;
          Alcotest.test_case "interrupt + resume across daemons" `Quick
            test_daemon_resume_after_interrupt;
        ] );
    ]
