(* One experiment per table/figure of the paper's evaluation.  Each
   function prints the rows the paper reports; EXPERIMENTS.md records
   paper-vs-measured for every entry. *)

open Util

let sk ?(sd = 512) ?(rd = 1) ?(t = 16) ?(c = 64) ?(rows = 1) ?(ht = 1) () =
  {
    Imtp.Sketch.default_params with
    Imtp.Sketch.spatial_dpus = sd;
    reduction_dpus = rd;
    tasklets = t;
    cache_elems = c;
    rows_per_tasklet = rows;
    host_threads = ht;
  }

(* One shared engine for every experiment: repeated (op, params, passes)
   triples across figures are served from its cache.  [~verify:false]
   because several sweeps (Fig. 4 tile sizes, Fig. 12 ablations)
   deliberately step outside the verifier's hardware envelope. *)
let engine = Imtp.Engine.create cfg

let build_with passes op params =
  match Imtp.Engine.build engine ~passes ~verify:false op params with
  | Ok a -> a.Imtp.Engine.program
  | Error e -> failwith (Imtp.Engine.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Fig. 3 — boundary checks' impact on GEMV kernel execution time.     *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  heading "Fig. 3 — boundary checks' impact on GEMV kernel execution time";
  Printf.printf
    "(kernel-only time; 'checked' keeps the redundant boundary checks,\n\
     'optimized' eliminates them with the PIM-aware passes; paper: up to\n\
     23.7%% kernel speedup)\n\n";
  let pr = row_format [ 18; 14; 14; 10 ] in
  pr [ "GEMV shape"; "checked(ms)"; "optimized(ms)"; "speedup" ];
  let dma_only =
    { Imtp.Passes.all_off with Imtp.Passes.dma_elim = true }
  in
  List.iter
    (fun (n, k) ->
      let op = Imtp.Ops.gemv ~c:3 n k in
      let params = sk ~sd:256 ~t:12 ~c:16 () in
      let checked = build_with dma_only op params in
      let optimized = build_with Imtp.Passes.all_on op params in
      let tc = kernel_ms checked and topt = kernel_ms optimized in
      pr
        [
          Printf.sprintf "%dx%d" n k;
          Printf.sprintf "%.3f" tc;
          Printf.sprintf "%.3f" topt;
          x (tc /. topt);
        ])
    [ (1000, 999); (2000, 1999); (4000, 3999); (8000, 7999); (8192, 8191) ]

(* ------------------------------------------------------------------ *)
(* Fig. 4 — caching tile sizes, tiling schemes, number of DPUs.        *)
(* ------------------------------------------------------------------ *)

let fig4_shapes = [ (512, 512); (8192, 8192) ]

let fig4 () =
  heading "Fig. 4 — tile sizes, tiling schemes and DPU counts (GEMV)";

  subheading "(a) caching tile size vs kernel time (512 DPUs, 16 tasklets)";
  let pr = row_format [ 14; 12; 12 ] in
  pr [ "tile(bytes)"; "512x512"; "8192x8192" ];
  List.iter
    (fun c ->
      let cells =
        List.map
          (fun (n, k) ->
            let op = Imtp.Ops.gemv ~c:3 n k in
            let prog = build_with Imtp.Passes.all_on op (sk ~sd:512 ~t:16 ~c ()) in
            Printf.sprintf "%.3f" (kernel_ms prog))
          fig4_shapes
      in
      pr (Printf.sprintf "%d" (c * 4) :: cells))
    [ 8; 16; 32; 64; 128; 256; 512 ];

  subheading
    "(a') caching tile size vs kernel time, VA 2^18 on 2048 DPUs (the \
     paper's small-tile effect: PrIM's 1,024 B guide value under-fills \
     tasklets on small per-DPU slices)";
  let pr = row_format [ 14; 12; 16 ] in
  pr [ "tile(bytes)"; "kernel(ms)"; "tasklets busy" ];
  List.iter
    (fun c ->
      let op = Imtp.Ops.va (1 lsl 18) in
      let prog = build_with Imtp.Passes.all_on op (sk ~sd:2048 ~t:16 ~c ()) in
      pr
        [
          Printf.sprintf "%d" (c * 4);
          Printf.sprintf "%.4f" (kernel_ms prog);
          string_of_int (Imtp.Program.tasklets_used prog);
        ])
    [ 4; 8; 16; 32; 64; 128; 256 ];

  subheading "(b) inter-DPU tiling scheme vs phase times (8192x8192)";
  let pr = row_format [ 22; 12; 12; 12; 12 ] in
  pr [ "scheme"; "h2d(ms)"; "kernel(ms)"; "d2h(ms)"; "host(ms)" ];
  List.iter
    (fun (label, params) ->
      let op = Imtp.Ops.gemv ~c:3 8192 8192 in
      let prog = build_with Imtp.Passes.all_on op params in
      let s = Imtp.estimate prog in
      pr
        [
          label;
          ms s.Imtp.Stats.h2d_s;
          ms s.Imtp.Stats.kernel_s;
          ms s.Imtp.Stats.d2h_s;
          ms (s.Imtp.Stats.host_s +. s.Imtp.Stats.launch_s);
        ])
    [
      ("1D (512,1)", sk ~sd:512 ~rd:1 ~t:16 ~c:64 ());
      ("2D (512,4)", sk ~sd:512 ~rd:4 ~t:16 ~c:64 ~ht:16 ());
      ("2D (256,8)", sk ~sd:256 ~rd:8 ~t:16 ~c:64 ~ht:16 ());
      ("2D (128,16)", sk ~sd:128 ~rd:16 ~t:16 ~c:64 ~ht:16 ());
      ("2D (64,32)", sk ~sd:64 ~rd:32 ~t:16 ~c:64 ~ht:16 ());
    ];

  subheading "(c) number of DPUs vs total time (PrIM-style 1D tiling)";
  let pr = row_format [ 10; 12; 12 ] in
  pr [ "#DPUs"; "512x512"; "8192x8192" ];
  List.iter
    (fun ndpus ->
      let cells =
        List.map
          (fun (n, k) ->
            let op = Imtp.Ops.gemv ~c:3 n k in
            match Imtp.Prim.measure cfg op { Imtp.Prim.default with Imtp.Prim.ndpus } with
            | Ok s -> ms (total s)
            | Error _ -> "n/a")
          fig4_shapes
      in
      pr (string_of_int ndpus :: cells))
    [ 64; 128; 256; 512; 1024; 2048 ]

(* ------------------------------------------------------------------ *)
(* Fig. 9 / §7.1 — autotuned tensor programs vs baselines.             *)
(* ------------------------------------------------------------------ *)

type fig9_row = {
  label : string;
  op : Imtp.Op.t;
  spim_applicable : bool;
}

let fig9_cases () =
  [
    { label = "VA(a) 2^18"; op = Imtp.Ops.va (1 lsl 18); spim_applicable = true };
    { label = "VA(b) 2^24"; op = Imtp.Ops.va (1 lsl 24); spim_applicable = true };
    { label = "RED(a) 2^18"; op = Imtp.Ops.red (1 lsl 18); spim_applicable = true };
    { label = "RED(b) 2^24"; op = Imtp.Ops.red (1 lsl 24); spim_applicable = true };
    { label = "MTV(a) 512x512"; op = Imtp.Ops.mtv 512 512; spim_applicable = false };
    { label = "MTV(b) 8192x8192"; op = Imtp.Ops.mtv 8192 8192; spim_applicable = false };
    { label = "TTV(a) 32x64x128"; op = Imtp.Ops.ttv 32 64 128; spim_applicable = false };
    {
      label = "TTV(b) 128x256x512";
      op = Imtp.Ops.ttv 128 256 512;
      spim_applicable = false;
    };
    {
      label = "MMTV(a) 16x64x256";
      op = Imtp.Ops.mmtv 16 64 256;
      spim_applicable = false;
    };
    {
      label = "MMTV(b) 64x512x256";
      op = Imtp.Ops.mmtv 64 512 256;
      spim_applicable = false;
    };
    {
      label = "GEVA(a) 2^20";
      op = Imtp.Ops.geva ~c:3 ~d:2 (1 lsl 18);
      spim_applicable = true;
    };
    {
      label = "GEVA(b) 2^25";
      op = Imtp.Ops.geva ~c:3 ~d:2 (1 lsl 24);
      spim_applicable = true;
    };
    { label = "GEMV(a) 512x512"; op = Imtp.Ops.gemv ~c:3 512 512; spim_applicable = false };
    {
      label = "GEMV(b) 8192x8192";
      op = Imtp.Ops.gemv ~c:3 8192 8192;
      spim_applicable = false;
    };
  ]

let fig9 () =
  heading "Fig. 9 / §7.1 — autotuned tensor programs vs baselines (total ms)";
  let pr = row_format [ 20; 10; 10; 10; 11; 10; 26 ] in
  pr [ "workload"; "PrIM"; "PrIM(E)"; "PrIM+s"; "SimplePIM"; "IMTP"; "speedup P/E/S" ];
  let sp_prim = ref [] and sp_prime = ref [] and sp_search = ref [] in
  let sp_spim = ref [] in
  List.iter
    (fun c ->
      let p0 = prim c.op in
      let _, pe = prim_e c.op in
      let _, ps = prim_search c.op in
      let spim = if c.spim_applicable then Result.to_option (simplepim c.op) else None in
      let tuned = tune c.op in
      let it = total tuned.Imtp.Tuner.stats in
      sp_prim := (total p0 /. it) :: !sp_prim;
      sp_prime := (total pe /. it) :: !sp_prime;
      sp_search := (total ps /. it) :: !sp_search;
      (match spim with
      | Some s -> sp_spim := (total s /. it) :: !sp_spim
      | None -> ());
      pr
        [
          c.label;
          ms (total p0);
          ms (total pe);
          ms (total ps);
          (match spim with Some s -> ms (total s) | None -> "-");
          ms it;
          Printf.sprintf "  %s %s %s"
            (x (total p0 /. it))
            (x (total pe /. it))
            (x (total ps /. it));
        ])
    (fig9_cases ());
  Printf.printf
    "\nsummary (geomean IMTP speedup): vs PrIM %s (paper avg 3.05x), vs \
     PrIM(E) %s (1.48x), vs PrIM+search %s (1.67x), vs SimplePIM %s (3.3x)\n"
    (x (geomean !sp_prim))
    (x (geomean !sp_prime))
    (x (geomean !sp_search))
    (x (geomean !sp_spim))

(* ------------------------------------------------------------------ *)
(* Table 3 — default vs searched parameters.                           *)
(* ------------------------------------------------------------------ *)

let table3 () =
  heading "Table 3 — default and searched parameters";
  let pr = row_format [ 20; 26; 34 ] in
  pr [ "workload"; "PrIM+search (d,t,cB)"; "IMTP (sd,rd,t,cache,rows,ht)" ];
  List.iter
    (fun c ->
      let ps, _ = prim_search c.op in
      let tuned = tune c.op in
      let p = tuned.Imtp.Tuner.params in
      pr
        [
          c.label;
          Printf.sprintf "(%d,%d,%dB)" ps.Imtp.Prim.ndpus ps.Imtp.Prim.tasklets
            ps.Imtp.Prim.cache_bytes;
          Printf.sprintf "(%d,%d,%d,%dB,%d,%d)" p.Imtp.Sketch.spatial_dpus
            p.Imtp.Sketch.reduction_dpus p.Imtp.Sketch.tasklets
            (p.Imtp.Sketch.cache_elems * 4)
            p.Imtp.Sketch.rows_per_tasklet p.Imtp.Sketch.host_threads;
        ])
    (fig9_cases ())

(* ------------------------------------------------------------------ *)
(* Fig. 10 — GPT-J FC (MTV) and MMTV layers, normalized to PrIM.       *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  heading "Fig. 10 — GPT-J MHA layers (latency normalized to PrIM)";

  subheading "(a) FC (MTV) kernels (weight matrix resident in MRAM, §5.4)";
  let pr = row_format [ 28; 10; 13; 12; 10 ] in
  pr [ "kernel"; "PrIM(ms)"; "PrIM+s/PrIM"; "IMTP/PrIM"; "speedup" ];
  let best = ref 0. in
  List.iter
    (fun model ->
      List.iter
        (fun kind ->
          let op = Imtp.Gptj.fc_op model kind in
          let rows, cols = Imtp.Gptj.fc_shape model kind in
          let resident = [ "A" ] in
          let p0 =
            total
              (Result.get_ok
                 (Imtp.Prim.measure ~skip_inputs:resident cfg op
                    (Imtp.Prim.default_for op)))
          in
          let ps =
            (* grid search with resident weights *)
            let best = ref infinity in
            List.iter
              (fun ndpus ->
                List.iter
                  (fun t ->
                    List.iter
                      (fun cb ->
                        match
                          Imtp.Prim.measure ~skip_inputs:resident cfg op
                            { Imtp.Prim.default with Imtp.Prim.ndpus; tasklets = t; cache_bytes = cb }
                        with
                        | Ok s -> if total s < !best then best := total s
                        | Error _ -> ())
                      [ 64; 256; 1024 ])
                  [ 8; 16; 24 ])
              [ 256; 512; 1024; 2048 ];
            !best
          in
          let tuned =
            match Imtp.autotune ~trials:128 ~seed:2025 ~skip_inputs:resident op with
            | Ok r -> r
            | Error m -> failwith m
          in
          let it = total tuned.Imtp.Tuner.stats in
          if p0 /. it > !best then best := p0 /. it;
          pr
            [
              Printf.sprintf "%s %s %dx%d" (Imtp.Gptj.model_name model)
                (Imtp.Gptj.fc_kind_name kind) rows cols;
              ms p0;
              Printf.sprintf "%.3f" (ps /. p0);
              Printf.sprintf "%.3f" (it /. p0);
              x (p0 /. it);
            ])
        Imtp.Gptj.fc_kinds)
    [ Imtp.Gptj.Gptj_6b; Imtp.Gptj.Gptj_30b ];
  Printf.printf "\nmax MTV speedup vs PrIM: %s (paper: up to 8.21x)\n" (x !best);

  subheading "(b) MMTV kernels (batch x heads, tokens, 256)";
  let pr = row_format [ 28; 10; 13; 12; 10 ] in
  pr [ "kernel"; "PrIM(ms)"; "PrIM+s/PrIM"; "IMTP/PrIM"; "speedup" ];
  let gains = ref [] in
  List.iter
    (fun model ->
      List.iter
        (fun batch ->
          List.iter
            (fun tokens ->
              let op = Imtp.Gptj.mmtv_op model ~batch ~tokens in
              let p0 = total (prim op) in
              let _, ps = prim_search op in
              let tuned = tune ~trials:256 op in
              let it = total tuned.Imtp.Tuner.stats in
              gains := ((total ps /. it) -. 1.) :: !gains;
              pr
                [
                  Printf.sprintf "%s b=%d T=%d" (Imtp.Gptj.model_name model)
                    batch tokens;
                  ms p0;
                  Printf.sprintf "%.3f" (total ps /. p0);
                  Printf.sprintf "%.3f" (it /. p0);
                  x (p0 /. it);
                ])
            Imtp.Gptj.token_sizes)
        Imtp.Gptj.batches)
    [ Imtp.Gptj.Gptj_6b; Imtp.Gptj.Gptj_30b ];
  let mn = List.fold_left Float.min infinity !gains in
  let mx = List.fold_left Float.max neg_infinity !gains in
  Printf.printf
    "\nMMTV gain over PrIM+search: %s .. %s (paper: 7.24%% .. 69.1%%)\n"
    (pct mn) (pct mx)

(* ------------------------------------------------------------------ *)
(* Fig. 11 — MMTV speedup vs spatial-dimension size.                   *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  heading "Fig. 11 — IMTP speedup for MMTV vs spatial-dimension size";
  Printf.printf
    "(reduction dim fixed at 256; paper: large speedups below ~10,000,\n\
     plateau above)\n\n";
  let pr = row_format [ 14; 12; 12; 10 ] in
  pr [ "spatial size"; "PrIM+s(ms)"; "IMTP(ms)"; "speedup" ];
  List.iter
    (fun (b, n) ->
      let op = Imtp.Ops.mmtv b n 256 in
      let _, ps = prim_search op in
      let tuned = tune ~trials:256 op in
      let it = total tuned.Imtp.Tuner.stats in
      pr
        [
          string_of_int (b * n);
          ms (total ps);
          ms it;
          x (total ps /. it);
        ])
    [
      (8, 64); (16, 64); (16, 128); (16, 256); (32, 256); (64, 256);
      (64, 512); (128, 512); (256, 512);
    ]

(* ------------------------------------------------------------------ *)
(* Fig. 12 — PIM-aware optimization ablation.                          *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  heading "Fig. 12 — PIM-aware optimizations (kernel time, normalized to PrIM)";
  Printf.printf
    "(paper: DMA gives the largest gain; all three reach up to 14.7%% on\n\
     MTV and 20.5%% on VA over hand-tuned PrIM)\n\n";
  let pr = row_format [ 24; 10; 10; 10; 10; 12 ] in
  pr [ "workload"; "none"; "dma"; "dma+lt"; "dma+lt+bh"; "vs PrIM" ];
  let cases =
    [
      ("(a) MTV 2048x1000 cols", `Mtv (2048, 1000), sk ~sd:512 ~t:16 ~c:256 ());
      ("(b) MTV 2001x1024 rows", `Mtv (2001, 1024), sk ~sd:512 ~t:16 ~c:256 ());
      ("(c) MTV 1999x1999 both", `Mtv (1999, 1999), sk ~sd:512 ~t:16 ~c:256 ());
      ("(d) VA 2^22+3", `Va ((1 lsl 22) + 3), sk ~sd:2048 ~t:16 ~c:256 ());
    ]
  in
  List.iter
    (fun (label, shape, params) ->
      let op =
        match shape with
        | `Mtv (n, k) -> Imtp.Ops.mtv n k
        | `Va n -> Imtp.Ops.va n
      in
      let prim_kernel =
        match Imtp.Prim.build cfg op (Imtp.Prim.default_for op) with
        | Ok prog -> kernel_ms prog
        | Error m -> failwith m
      in
      let times =
        List.map
          (fun (_, config) -> kernel_ms (build_with config op params))
          Imtp.Passes.ablations
      in
      match times with
      | [ none; dma; lt; bh ] ->
          pr
            [
              label;
              Printf.sprintf "%.2f" (none /. prim_kernel);
              Printf.sprintf "%.2f" (dma /. prim_kernel);
              Printf.sprintf "%.2f" (lt /. prim_kernel);
              Printf.sprintf "%.2f" (bh /. prim_kernel);
              pct ((prim_kernel /. bh) -. 1.);
            ]
      | _ -> ())
    cases

(* ------------------------------------------------------------------ *)
(* Fig. 13 — balanced evolutionary search convergence.                 *)
(* ------------------------------------------------------------------ *)

let fig13_strategies =
  [
    ("tvm-default", Imtp.Search.tvm_default);
    ("balanced-only", { Imtp.Search.tvm_default with Imtp.Search.balanced_sampling = true });
    ("epsilon-only", { Imtp.Search.tvm_default with Imtp.Search.adaptive_epsilon = true });
    ("imtp (both)", Imtp.Search.imtp_default);
  ]

let fig13 ?(trials = 400) ?(op = Imtp.Ops.mmtv 112 512 256) () =
  heading "Fig. 13 — balanced sampling + adaptive epsilon-greedy convergence";
  Printf.printf
    "(best latency found so far, sampled across %d trials; paper: the\n\
     combination converges to a ~21%% better result; in this reproduction\n\
     the smaller parameter space compresses the final gap, but the\n\
     convergence-speed ordering is preserved)\n\n"
    trials;
  let checkpoints = [ 5; 10; 20; 40; 70; 100 ] in
  let pr = row_format [ 16; 10; 10; 10; 10; 10; 10; 12 ] in
  pr
    ("strategy"
    :: List.map (fun p -> Printf.sprintf "@%d%%" p) checkpoints
    @ [ "final(ms)" ]);
  let seeds = [ 3; 17; 29 ] in
  let finals = ref [] in
  List.iter
    (fun (name, strategy) ->
      (* average best-so-far over seeds at each checkpoint *)
      let runs =
        List.map (fun seed -> Imtp.Search.run ~strategy ~seed cfg op ~trials) seeds
      in
      let best_at frac =
        let cut = int_of_float (frac *. float_of_int trials) in
        geomean
          (List.filter_map
             (fun o ->
               let rec last acc = function
                 | [] -> acc
                 | r :: rest ->
                     if r.Imtp.Search.trial <= cut then
                       last (Some r.Imtp.Search.best_so_far) rest
                     else acc
               in
               last None o.Imtp.Search.history)
             runs)
      in
      let final = best_at 1.0 in
      finals := (name, final) :: !finals;
      pr
        (name
        :: List.map
             (fun p -> ms (best_at (float_of_int p /. 100.)))
             checkpoints
        @ [ ms final ]))
    fig13_strategies;
  match (List.assoc_opt "tvm-default" !finals, List.assoc_opt "imtp (both)" !finals) with
  | Some tvm, Some imtp ->
      Printf.printf "\nimtp (both) vs tvm-default at convergence: %s better\n"
        (pct ((tvm /. imtp) -. 1.))
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* §8 — autotuning overheads.                                          *)
(* ------------------------------------------------------------------ *)

let overhead () =
  heading "§8 — autotuning overhead per trial";
  Printf.printf
    "(wall-clock per measured trial; 'UPMEM' includes host transfer and\n\
     DPU allocation modeling, 'kernel-only' mimics CPU-style tuning where\n\
     only the compute kernel is timed.  Paper: +20%% for MTV, +5%% for\n\
     MMTV.)\n\n";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let pr = row_format [ 10; 16; 18; 10 ] in
  pr [ "op"; "UPMEM(ms/trial)"; "kernel-only(ms)"; "overhead" ];
  List.iter
    (fun (name, op) ->
      let trials = 60 in
      let o, t_full =
        time (fun () -> Imtp.Search.run ~seed:5 cfg op ~trials)
      in
      (* kernel-only: same search but timing just candidate build +
         kernel cost, via a machine without transfer modeling. *)
      let rng = Imtp.Rng.create ~seed:5 in
      let _, t_kernel =
        time (fun () ->
            for _ = 1 to o.Imtp.Search.measured do
              let p = Imtp.Sketch.random rng cfg op in
              match Imtp.Measure.build cfg op p with
              | Ok prog -> ignore (kernel_cycles prog)
              | Error _ -> ()
            done)
      in
      let per_full = t_full /. float_of_int (max 1 o.Imtp.Search.measured) in
      let per_kernel = t_kernel /. float_of_int (max 1 o.Imtp.Search.measured) in
      pr
        [
          name;
          Printf.sprintf "%.2f" (per_full *. 1e3);
          Printf.sprintf "%.2f" (per_kernel *. 1e3);
          pct ((per_full /. per_kernel) -. 1.);
        ])
    [ ("MTV", Imtp.Ops.mtv 2048 2048); ("MMTV", Imtp.Ops.mmtv 32 256 256) ]

(* ------------------------------------------------------------------ *)
(* Table 1 — feature matrix (qualitative).                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  heading "Table 1 — features supported by UPMEM software stacks";
  let pr = row_format [ 34; 8; 11; 7; 7 ] in
  pr [ "feature"; "PrIM"; "SimplePIM"; "CINM"; "IMTP" ];
  List.iter
    (fun r -> pr r)
    [
      [ "Programming at abstract level"; "low"; "high"; "high"; "high" ];
      [ "High-dimensional support"; "x"; "x"; "o"; "o" ];
      [ "Inter-DPU optimization"; "x"; "x"; "o"; "o" ];
      [ "Intra-DPU optimization"; "o"; "x"; "o"; "o" ];
      [ "PIM-aware optimization"; "o"; "o"; "-"; "o" ];
      [ "Autotuning support"; "x"; "x"; "x"; "o" ];
    ];
  Printf.printf
    "\n(this repository implements the PrIM and SimplePIM rows as baselines\n\
     and the IMTP column as the core system)\n"

(* ------------------------------------------------------------------ *)
(* Extra ablation: joint host+kernel space vs kernel-only tuning.      *)
(* ------------------------------------------------------------------ *)

let joint () =
  heading "Ablation — joint host+kernel search space vs kernel-only tuning";
  Printf.printf
    "(kernel-only freezes the host-side distribution at the PrIM default\n\
     and tunes only intra-DPU parameters; the joint space is §5.2.3's\n\
     motivation)\n\n";
  let pr = row_format [ 20; 14; 14; 10 ] in
  pr [ "workload"; "kernel-only(ms)"; "joint(ms)"; "gain" ];
  List.iter
    (fun (label, op) ->
      (* kernel-only: grid over tasklets x cache at fixed distribution *)
      let best_kernel_only = ref infinity in
      List.iter
        (fun t ->
          List.iter
            (fun c ->
              let p = sk ~sd:2048 ~rd:1 ~t ~c () in
              match Imtp.Measure.measure cfg op p with
              | Ok r ->
                  if r.Imtp.Measure.latency_s < !best_kernel_only then
                    best_kernel_only := r.Imtp.Measure.latency_s
              | Error _ -> ())
            [ 8; 16; 32; 64; 128; 256 ])
        [ 4; 8; 16; 24 ];
      let tuned = tune op in
      let it = total tuned.Imtp.Tuner.stats in
      pr
        [
          label;
          ms !best_kernel_only;
          ms it;
          x (!best_kernel_only /. it);
        ])
    [
      ("MTV 8192x8192", Imtp.Ops.mtv 8192 8192);
      ("GEMV 512x512", Imtp.Ops.gemv ~c:3 512 512);
      ("MMTV 16x64x256", Imtp.Ops.mmtv 16 64 256);
    ]

(* ------------------------------------------------------------------ *)
(* Extension — datatype sweep (the PrIM suite evaluates INT8/INT32/    *)
(* FLOAT; DPUs have no FPU, so float32 is software-emulated).          *)
(* ------------------------------------------------------------------ *)

let dtypes () =
  heading "Extension — datatype sweep (int8 / int32 / float32)";
  Printf.printf
    "(int8 moves 4x fewer bytes and multiplies natively on the 8x8\n\
     multiplier; float32 is software-emulated on the FPU-less DPU)\n\n";
  let pr = row_format [ 20; 12; 12; 12 ] in
  pr [ "workload"; "int8(ms)"; "int32(ms)"; "float32(ms)" ];
  List.iter
    (fun (label, mk) ->
      let t dt =
        let op = mk dt in
        let prog = build_with Imtp.Passes.all_on op (sk ~sd:512 ~t:16 ~c:64 ()) in
        total (Imtp.estimate prog)
      in
      pr
        [
          label;
          ms (t Imtp.Dtype.I8);
          ms (t Imtp.Dtype.I32);
          ms (t Imtp.Dtype.F32);
        ])
    [
      ("VA 2^22", fun dt -> Imtp.Ops.va ~dtype:dt (1 lsl 22));
      ("MTV 2048x2048", fun dt -> Imtp.Ops.mtv ~dtype:dt 2048 2048);
      ("GEMV 4096x4096", fun dt -> Imtp.Ops.gemv ~dtype:dt ~c:3 4096 4096);
    ]

(* ------------------------------------------------------------------ *)
(* Ablation — cost-model guidance of the evolutionary search.          *)
(* ------------------------------------------------------------------ *)

let costmodel () =
  heading "Ablation — cost-model guidance of the evolutionary search";
  Printf.printf
    "(Fig. 5's search is guided by a learned cost model that ranks\n\
     mutations before measuring; this ablation disables it.  Geomean\n\
     best over 3 seeds.)\n\n";
  let pr = row_format [ 20; 12; 14; 14 ] in
  pr [ "workload"; "trials"; "guided(ms)"; "unguided(ms)" ];
  List.iter
    (fun (label, op, trials) ->
      let best use_cost_model seed =
        let o = Imtp.Search.run ~seed ~use_cost_model cfg op ~trials in
        match o.Imtp.Search.best with
        | Some b -> b.Imtp.Measure.latency_s
        | None -> nan
      in
      let gm f = geomean (List.map f [ 3; 17; 29 ]) in
      pr
        [
          label;
          string_of_int trials;
          ms (gm (best true));
          ms (gm (best false));
        ])
    [
      ("MTV 2048x8192", Imtp.Ops.mtv 2048 8192, 96);
      ("MMTV 64x256x256", Imtp.Ops.mmtv 64 256 256, 96);
      ("GEMV 512x512", Imtp.Ops.gemv ~c:3 512 512, 96);
    ]

(* ------------------------------------------------------------------ *)
(* Fig. 7 ablation — data-transfer code generation.                    *)
(* ------------------------------------------------------------------ *)

let transfer () =
  heading "Fig. 7 ablation — data-transfer code generation";
  Printf.printf
    "(the three generation strategies of Fig. 7: per-element transfers,\n\
     bulk-coalesced transfers, and bank-parallel push transfers; total\n\
     latency per strategy)\n\n";
  let pr = row_format [ 20; 14; 14; 14 ] in
  pr [ "workload"; "naive(ms)"; "+bulk(ms)"; "+bank-parallel" ];
  let build op params (options : Imtp.Lowering.options) =
    let sched = Imtp.Sketch.instantiate op params in
    let prog = Imtp.compile ~config:cfg ~options sched in
    total (Imtp.estimate ~config:cfg prog)
  in
  List.iter
    (fun (label, op, params) ->
      let base = Imtp.Sketch.lower_options params in
      let naive =
        build op params
          { base with Imtp.Lowering.bulk_transfer = false; parallel_transfer = false }
      in
      let bulk =
        build op params
          { base with Imtp.Lowering.bulk_transfer = true; parallel_transfer = false }
      in
      let parallel =
        build op params
          { base with Imtp.Lowering.bulk_transfer = true; parallel_transfer = true }
      in
      pr [ label; ms naive; ms bulk; ms parallel ])
    [
      ("VA 2^20", Imtp.Ops.va (1 lsl 20), sk ~sd:2048 ~t:16 ~c:64 ());
      ("MTV 2048x2048", Imtp.Ops.mtv 2048 2048, sk ~sd:512 ~t:16 ~c:64 ());
      ( "GEMV 2048x2048 2D",
        Imtp.Ops.gemv ~c:3 2048 2048,
        sk ~sd:256 ~rd:8 ~t:16 ~c:64 ~ht:16 () );
    ]

(* ------------------------------------------------------------------ *)
(* §8 prototype — HBM-PIM backend.                                     *)
(* ------------------------------------------------------------------ *)

let hbm () =
  heading "§8 prototype — HBM-PIM backend (code generation + validation)";
  Printf.printf
    "(the paper validated a prototype IMTP extension for HBM-PIM on the\n\
     vendor simulator; here: command-stream codegen, functional\n\
     validation against the reference, and command-level timing vs the\n\
     UPMEM backend)\n\n";
  let hcfg = Imtp.Hbm_pim.default_config in
  let pr = row_format [ 20; 34; 12; 12 ] in
  pr [ "workload"; "command stream"; "HBM-PIM(ms)"; "UPMEM(ms)" ];
  List.iter
    (fun (label, op) ->
      match Imtp.Hbm_pim.compile hcfg op with
      | Error m -> Printf.printf "%-20s unsupported: %s\n" label m
      | Ok prog ->
          let upmem = total (tune ~trials:64 op).Imtp.Tuner.stats in
          pr
            [
              label;
              Printf.sprintf "%d units x %d cmds"
                (Imtp.Hbm_pim.units_used prog)
                (Imtp.Hbm_pim.commands_per_unit prog);
              ms (Imtp.Hbm_pim.estimate_seconds prog);
              ms upmem;
            ])
    [
      ("VA 2^20", Imtp.Ops.va (1 lsl 20));
      ("GEVA 2^20", Imtp.Ops.geva ~c:3 ~d:2 (1 lsl 20));
      ("MTV 4096x4096", Imtp.Ops.mtv 4096 4096);
      ("GEMV 8192x8192", Imtp.Ops.gemv ~c:3 8192 8192);
    ];
  (* functional validation on small shapes *)
  let validate op =
    match Imtp.Hbm_pim.compile hcfg op with
    | Error m -> failwith m
    | Ok prog ->
        let inputs = Imtp.Ops.random_inputs op in
        let got = Imtp.Hbm_pim.execute prog inputs in
        let want = Imtp.Op.reference op inputs in
        Imtp.Tensor.to_value_list got = Imtp.Tensor.to_value_list want
  in
  Printf.printf "\nfunctional validation (VA 1000, GEMV 123x77): %s\n"
    (if validate (Imtp.Ops.va 1000) && validate (Imtp.Ops.gemv ~c:3 123 77)
     then "OK" else "MISMATCH")

let all () =
  table1 ();
  fig3 ();
  fig4 ();
  fig9 ();
  table3 ();
  fig10 ();
  fig11 ();
  fig12 ();
  fig13 ();
  overhead ();
  joint ();
  transfer ();
  costmodel ();
  dtypes ();
  hbm ()
