(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe                 # run every experiment
     dune exec bench/main.exe -- fig9 fig13   # run selected experiments
     dune exec bench/main.exe -- --bechamel   # Bechamel micro-benchmarks
     dune exec bench/main.exe -- --batch-scaling [--out FILE]
                                              # Engine.batch at -j 1/2/4
     dune exec bench/main.exe -- --exec-throughput [--out FILE]
                                              # interpreter vs compiled executor
     dune exec bench/main.exe -- --model-gating [--out FILE]
                                              # full vs model-gated search
     dune exec bench/main.exe -- --affine-bounds [--out FILE]
                                              # guarded vs proven ragged kernels
     dune exec bench/main.exe -- --serve-throughput [--out FILE]
                                              # daemon: N clients vs N sequential
     dune exec bench/main.exe -- --island-scaling [--out FILE]
                                              # sharded search: -j4/-k4 vs -j1/-k1
     dune exec bench/main.exe -- --graph [--out FILE]
                                              # whole-model graphs: fused +
                                              # MRAM-resident vs per-op

   Each experiment regenerates one table or figure of the paper's
   evaluation (see DESIGN.md's experiment index); the Bechamel suite
   times one representative computation per table/figure. *)

let experiments =
  [
    ("table1", Experiments.table1);
    ("fig3", Experiments.fig3);
    ("fig4", Experiments.fig4);
    ("fig9", Experiments.fig9);
    ("table3", Experiments.table3);
    ("fig10", Experiments.fig10);
    ("fig11", Experiments.fig11);
    ("fig12", Experiments.fig12);
    ("fig13", fun () -> Experiments.fig13 ());
    ("overhead", Experiments.overhead);
    ("joint", Experiments.joint);
    ("transfer", Experiments.transfer);
    ("costmodel", Experiments.costmodel);
    ("dtypes", Experiments.dtypes);
    ("hbm", Experiments.hbm);
  ]

(* --- Bechamel micro-benchmarks: one Test.make per table/figure ------ *)

let bechamel_tests () =
  let open Bechamel in
  let cfg = Util.cfg in
  let gemv = Imtp.Ops.gemv ~c:3 1000 999 in
  let params =
    {
      Imtp.Sketch.default_params with
      Imtp.Sketch.spatial_dpus = 256;
      tasklets = 12;
      cache_elems = 16;
    }
  in
  let lowered =
    Imtp.Lowering.lower
      ~options:(Imtp.Sketch.lower_options params)
      (Imtp.Sketch.instantiate gemv params)
  in
  let optimized = Imtp.Passes.run cfg lowered in
  let mtv = Imtp.Ops.mtv 2048 2048 in
  let rng = Imtp.Rng.create ~seed:1 in
  [
    (* Fig. 3: kernel-cost evaluation of a boundary-checked GEMV. *)
    Test.make ~name:"fig3/kernel-cost"
      (Staged.stage (fun () -> Util.kernel_cycles optimized));
    (* Fig. 4: end-to-end latency estimation of one candidate. *)
    Test.make ~name:"fig4/estimate"
      (Staged.stage (fun () -> Imtp.estimate optimized));
    (* Fig. 9 / Table 3: one full measurement (sketch->lower->passes->cost). *)
    Test.make ~name:"fig9/measure-candidate"
      (Staged.stage (fun () ->
           Imtp.Measure.measure cfg mtv (Imtp.Sketch.random rng cfg mtv)));
    (* Fig. 10: GPT-J MMTV sketch instantiation + lowering. *)
    Test.make ~name:"fig10/lower-gptj-mmtv"
      (Staged.stage
         (let op = Imtp.Gptj.mmtv_op Imtp.Gptj.Gptj_6b ~batch:1 ~tokens:128 in
          fun () ->
            Imtp.Lowering.lower
              ~options:(Imtp.Sketch.lower_options params)
              (Imtp.Sketch.instantiate op params)));
    (* Fig. 11: PrIM baseline measurement. *)
    Test.make ~name:"fig11/prim-measure"
      (Staged.stage (fun () -> Imtp.Prim.measure cfg mtv Imtp.Prim.default));
    (* Fig. 12: the PIM-aware pass pipeline itself. *)
    Test.make ~name:"fig12/pim-passes"
      (Staged.stage (fun () -> Imtp.Passes.run cfg lowered));
    (* Fig. 13: one evolutionary-search trial step. *)
    Test.make ~name:"fig13/search-8-trials"
      (Staged.stage (fun () -> Imtp.Search.run ~seed:3 cfg mtv ~trials:8));
  ]

let run_bechamel () =
  let open Bechamel in
  Printf.printf "Bechamel micro-benchmarks (ns per run, OLS estimate)\n%!";
  let tests = bechamel_tests () in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
    in
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
    let ols =
      Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name ols ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> Printf.printf "  %-28s %12.0f ns/run\n%!" name est
        | Some [] | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
      results
  in
  List.iter benchmark tests

(* --- Batch-scaling benchmark: Engine.batch at -j 1/2/4 -------------- *)

(* Cold-engine throughput of one generation-sized batch over distinct
   GEMM candidates, at increasing job counts, plus a warm re-batch for
   the cache-hit path.  Also asserts the determinism contract on real
   data: every parallel run must match the -j 1 run result for result
   (params order, latencies, stats, from_cache, errors).  Writes a
   BENCH_<date>.json report when [--out] is given. *)
let batch_scaling ~out () =
  let cfg = Util.cfg in
  let op = Imtp.Ops.gemm 64 64 64 in
  let wanted = 200 in
  (* Distinct, build-valid candidates: probe with a scratch engine so
     the timed engines below all start cold. *)
  let scratch = Imtp.Engine.create cfg in
  let rng = Imtp.Rng.create ~seed:42 in
  let seen = Hashtbl.create 256 in
  let candidates = ref [] in
  let attempts = ref 0 in
  while List.length !candidates < wanted && !attempts < wanted * 100 do
    incr attempts;
    let p = Imtp.Sketch.random rng cfg op in
    let key = Imtp.Engine.fingerprint op p in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      match Imtp.Engine.build scratch op p with
      | Ok _ -> candidates := p :: !candidates
      | Error _ -> ()
    end
  done;
  let candidates = List.rev !candidates in
  let n = List.length candidates in
  let noise_seed = 7 in
  let time_batch jobs =
    let engine = Imtp.Engine.create cfg in
    let rng = Imtp.Rng.create ~seed:noise_seed in
    let t0 = Unix.gettimeofday () in
    let results = Imtp.Engine.batch engine ~jobs ~rng op candidates in
    let cold_s = Unix.gettimeofday () -. t0 in
    let rng = Imtp.Rng.create ~seed:noise_seed in
    let t0 = Unix.gettimeofday () in
    let (_ : (Imtp.Sketch.params * _) list) =
      Imtp.Engine.batch engine ~jobs ~rng op candidates
    in
    let warm_s = Unix.gettimeofday () -. t0 in
    (results, cold_s, warm_s, Imtp.Engine.counters engine)
  in
  let same_results a b =
    List.for_all2
      (fun (p, r) (p', r') ->
        p = p'
        &&
        match (r, r') with
        | Ok m, Ok m' ->
            m.Imtp.Engine.latency_s = m'.Imtp.Engine.latency_s
            && m.Imtp.Engine.from_cache = m'.Imtp.Engine.from_cache
            && m.Imtp.Engine.artifact.Imtp.Engine.stats
               = m'.Imtp.Engine.artifact.Imtp.Engine.stats
        | Error e, Error e' -> e = e'
        | _ -> false)
      a b
  in
  Util.heading
    (Printf.sprintf
       "Engine.batch scaling: %d distinct gemm candidates, cold engine per -j"
       n);
  Printf.printf "host: %d recommended domains, IMTP_JOBS default %d\n"
    (Domain.recommended_domain_count ())
    (Imtp.Pool.default_jobs ());
  let baseline, base_cold, _, _ = time_batch 1 in
  let rows =
    List.map
      (fun jobs ->
        let results, cold_s, warm_s, c = time_batch jobs in
        let identical = same_results baseline results in
        Printf.printf
          "  -j %d: cold %.3f s (%.1f cand/s, %.2fx vs -j1), warm %.4f s, \
           hit rate %.1f%%, identical=%b\n"
          jobs cold_s
          (float_of_int n /. cold_s)
          (base_cold /. cold_s) warm_s
          (100. *. Imtp.Engine.hit_rate c)
          identical;
        (jobs, cold_s, warm_s, c, identical))
      [ 1; 2; 4 ]
  in
  match out with
  | None -> ()
  | Some path ->
      let domains = Domain.recommended_domain_count () in
      (* The expectation depends on the recording host, so compute the
         caveat instead of hard-coding the single-core reading. *)
      let note =
        if domains = 1 then
          "recorded on a 1-domain host: candidate evaluation is \
           CPU-bound, so parallel runs only add coordination overhead \
           and speedups at or below 1x are expected here; see the \
           island-scaling report for throughput under emulated device \
           latency, where parallelism pays even on this host"
        else
          Printf.sprintf
            "recorded on a %d-domain host: cold speedup_vs_j1 should \
             approach min(jobs, %d) as the batch is CPU-bound"
            domains domains
      in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      Printf.ksprintf (Buffer.add_string buf)
        "  \"benchmark\": \"engine.batch scaling\",\n\
        \  \"date\": %.0f,\n\
        \  \"host_recommended_domains\": %d,\n\
        \  \"note\": %S,\n\
        \  \"op\": \"gemm 64x64x64\",\n\
        \  \"distinct_candidates\": %d,\n\
        \  \"runs\": [\n"
        (Unix.time ()) domains note n;
      List.iteri
        (fun i (jobs, cold_s, warm_s, c, identical) ->
          Printf.ksprintf (Buffer.add_string buf)
            "    { \"jobs\": %d, \"cold_s\": %.6f, \"cold_cand_per_s\": \
             %.1f, \"speedup_vs_j1\": %.3f, \"warm_s\": %.6f, \
             \"cache_hit_rate\": %.4f, \"identical_to_j1\": %b }%s\n"
            jobs cold_s
            (float_of_int n /. cold_s)
            (base_cold /. cold_s) warm_s (Imtp.Engine.hit_rate c) identical
            (if i = List.length rows - 1 then "" else ",")
        )
        rows;
      Buffer.add_string buf "  ]\n}\n";
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "wrote %s\n" path

(* --- Executor throughput: interpreter vs compiled closures ---------- *)

(* Functional-execution throughput of the hot measurement path, on the
   paper's GEMV/MMTV shapes: elements/sec through the tree-walking
   interpreter vs the closure-compiled executor (compiled once, run
   repeatedly, as Engine.execute consumers do).  Also re-checks the
   determinism contract on the benchmark shapes before timing.
   Appends a JSON report to [--out] when given. *)
let exec_throughput ~out () =
  let cfg = Util.cfg in
  let params =
    {
      Imtp.Sketch.default_params with
      Imtp.Sketch.spatial_dpus = 256;
      tasklets = 12;
      cache_elems = 16;
    }
  in
  let build op =
    let lowered =
      Imtp.Lowering.lower
        ~options:(Imtp.Sketch.lower_options params)
        (Imtp.Sketch.instantiate op params)
    in
    Imtp.Passes.run cfg lowered
  in
  (* Warm up once, then count runs over a fixed wall-clock budget. *)
  let time_runs f =
    f ();
    let t0 = Unix.gettimeofday () in
    let runs = ref 0 in
    while Unix.gettimeofday () -. t0 < 0.3 do
      f ();
      incr runs
    done;
    (!runs, Unix.gettimeofday () -. t0)
  in
  Util.heading "Executor throughput: interpreter vs compiled closures";
  let rows =
    List.map
      (fun (name, op) ->
        let prog = build op in
        let inputs = Imtp.Ops.random_inputs ~seed:5 op in
        let outs_i, counters_i = Imtp.Eval.run_counted prog ~inputs in
        let compiled = Imtp.Exec.compile prog in
        let outs_c, counters_c = Imtp.Exec.run_compiled compiled ~inputs in
        assert (counters_i = counters_c);
        List.iter2
          (fun (n1, t1) (n2, t2) ->
            assert (n1 = n2 && Imtp.Tensor.equal t1 t2))
          outs_i outs_c;
        let elems =
          Imtp.Tensor.size (List.assoc (fst op.Imtp.Op.output) outs_i)
        in
        let t0 = Unix.gettimeofday () in
        let (_ : Imtp.Exec.compiled) = Imtp.Exec.compile prog in
        let compile_s = Unix.gettimeofday () -. t0 in
        let iruns, i_s =
          time_runs (fun () -> ignore (Imtp.Eval.run_counted prog ~inputs))
        in
        let cruns, c_s =
          time_runs (fun () -> ignore (Imtp.Exec.run_compiled compiled ~inputs))
        in
        let i_eps = float_of_int (iruns * elems) /. i_s in
        let c_eps = float_of_int (cruns * elems) /. c_s in
        Printf.printf
          "  %-14s %7d out elems: interp %11.0f elems/s, compiled %11.0f \
           elems/s (%.1fx, compile %.1f ms)\n\
           %!"
          name elems i_eps c_eps (c_eps /. i_eps) (compile_s *. 1e3);
        (name, elems, iruns, i_s, i_eps, cruns, c_s, c_eps, compile_s))
      [
        ("gemv 512x512", Imtp.Ops.gemv ~c:3 512 512);
        ("mmtv 8x64x64", Imtp.Ops.mmtv 8 64 64);
      ]
  in
  match out with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      Printf.ksprintf (Buffer.add_string buf)
        "  \"benchmark\": \"executor throughput\",\n\
        \  \"date\": %.0f,\n\
        \  \"backend_default\": %S,\n\
        \  \"workloads\": [\n"
        (Unix.time ())
        (Imtp.Exec.backend_name ());
      List.iteri
        (fun i (name, elems, iruns, i_s, i_eps, cruns, c_s, c_eps, compile_s) ->
          Printf.ksprintf (Buffer.add_string buf)
            "    { \"op\": %S, \"output_elems\": %d, \"interp_runs\": %d, \
             \"interp_s\": %.4f, \"interp_elems_per_s\": %.0f, \
             \"compiled_runs\": %d, \"compiled_s\": %.4f, \
             \"compiled_elems_per_s\": %.0f, \"compile_once_s\": %.6f, \
             \"speedup\": %.2f }%s\n"
            name elems iruns i_s i_eps cruns c_s c_eps compile_s
            (c_eps /. i_eps)
            (if i = List.length rows - 1 then "" else ",")
        )
        rows;
      Buffer.add_string buf "  ]\n}\n";
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "appended to %s\n" path

(* --- Model-gated search: simulator executions vs best latency ------- *)

(* The learned-cost-model acceptance numbers, on the same fixed seeds
   the committed test pins: a full-measurement search vs a gated one
   ([measure_ratio]) on the paper's GEMV/MMTV shapes.  Best latencies
   are compared noise-free (the winning schedule re-measured without
   an rng), and the simulator ledger is the engine's [costed] counter.
   Appends a JSON report to [--out] when given. *)
let model_gating ~out () =
  let cfg = Util.cfg in
  let seed = 13 and trials = 200 and ratio = 0.05 in
  let noise_free op params =
    let engine = Imtp.Engine.create cfg in
    match Imtp.Engine.measure engine op params with
    | Ok m -> m.Imtp.Engine.latency_s
    | Error _ -> infinity
  in
  Util.heading
    (Printf.sprintf
       "Model-gated search: seed %d, %d trials, measure-ratio %.2f" seed
       trials ratio);
  let rows =
    List.map
      (fun (name, op) ->
        let t0 = Unix.gettimeofday () in
        let full = Imtp.Search.run ~seed cfg op ~trials in
        let full_s = Unix.gettimeofday () -. t0 in
        let t0 = Unix.gettimeofday () in
        let gated =
          Imtp.Search.run ~seed ~measure_ratio:ratio cfg op ~trials
        in
        let gated_s = Unix.gettimeofday () -. t0 in
        let best o =
          match o.Imtp.Search.best with
          | Some b -> noise_free op b.Imtp.Measure.params
          | None -> infinity
        in
        let bf = best full and bg = best gated in
        let reduction =
          float_of_int full.Imtp.Search.measured_trials
          /. float_of_int (max 1 gated.Imtp.Search.measured_trials)
        in
        Printf.printf
          "  %-14s full: best %.4e s, %3d sims, %.2f s | gated: best \
           %.4e, %3d sims, %d skipped, %.2f s | %.1fx fewer sims, best \
           %.2f%% %s\n\
           %!"
          name bf full.Imtp.Search.measured_trials full_s bg
          gated.Imtp.Search.measured_trials gated.Imtp.Search.skipped gated_s
          reduction
          (100. *. Float.abs (1. -. (bg /. bf)))
          (if bg <= bf then "better" else "worse");
        (name, bf, full, full_s, bg, gated, gated_s, reduction))
      [
        ("gemv 512x512", Imtp.Ops.gemv ~c:3 512 512);
        ("mmtv 8x64x64", Imtp.Ops.mmtv 8 64 64);
      ]
  in
  match out with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      Printf.ksprintf (Buffer.add_string buf)
        "  \"benchmark\": \"model-gated search\",\n\
        \  \"date\": %.0f,\n\
        \  \"seed\": %d,\n\
        \  \"trials\": %d,\n\
        \  \"measure_ratio\": %.3f,\n\
        \  \"workloads\": [\n"
        (Unix.time ()) seed trials ratio;
      List.iteri
        (fun i (name, bf, full, full_s, bg, gated, gated_s, reduction) ->
          Printf.ksprintf (Buffer.add_string buf)
            "    { \"op\": %S, \"full_best_s\": %.6e, \"full_sims\": %d, \
             \"full_wall_s\": %.4f, \"gated_best_s\": %.6e, \"gated_sims\": \
             %d, \"gated_skipped\": %d, \"gated_wall_s\": %.4f, \
             \"sim_reduction\": %.2f, \"gated_best_ratio\": %.4f }%s\n"
            name bf full.Imtp.Search.measured_trials full_s bg
            gated.Imtp.Search.measured_trials gated.Imtp.Search.skipped
            gated_s reduction (bg /. bf)
            (if i = List.length rows - 1 then "" else ",")
        )
        rows;
      Buffer.add_string buf "  ]\n}\n";
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "appended to %s\n" path

(* --- Affine bounds: guarded vs proven kernels on ragged shapes ------ *)

(* The affine bound-analysis acceptance numbers, on the ragged shapes
   the committed tests pin: for each workload, the same schedule is
   lowered with boundary guards (legacy) and with affine containment
   proofs (guards dropped at emission, extents clamped), comparing the
   raw kernels' static/dynamic branch counts and modeled kernel cost —
   before either pass stack gets a chance to clean up — then a
   fixed-seed search runs under each full pass stack, comparing
   verified-candidate counts and the verifier's per-constraint
   rejection tally.  Appends a JSON report to [--out] when given. *)
let affine_bounds ~out () =
  let cfg = Util.cfg in
  let seed = 13 and trials = 120 in
  let build ~affine op params =
    let options =
      {
        (Imtp.Sketch.lower_options params) with
        Imtp.Lowering.affine_guards = affine;
      }
    in
    Imtp.Lowering.lower ~options (Imtp.Sketch.instantiate op params)
  in
  let metrics prog =
    let m = Imtp.Pass_metrics.of_kernel (List.hd prog.Imtp.Program.kernels) in
    (m.Imtp.Pass_metrics.static_branches, m.Imtp.Pass_metrics.dynamic_branches)
  in
  Util.heading
    (Printf.sprintf
       "Affine bounds: guarded vs proven ragged kernels, search seed %d, %d \
        trials"
       seed trials);
  let rows =
    List.map
      (fun (name, op, params) ->
        let legacy = build ~affine:false op params in
        let affine = build ~affine:true op params in
        let lsb, ldb = metrics legacy and asb, adb = metrics affine in
        let lcyc = Util.kernel_cycles legacy
        and acyc = Util.kernel_cycles affine in
        let search passes =
          Imtp.Search.run ~seed ~passes cfg op ~trials
        in
        let sl = search Imtp.Passes.legacy
        and sa = search Imtp.Passes.affine_on in
        Printf.printf
          "  %-14s kernel: %d->%d static branches, %.0f->%.0f dynamic, \
           %.3e->%.3e cycles (%.2fx) | search: %d/%d verified legacy, \
           %d/%d affine\n\
           %!"
          name lsb asb ldb adb lcyc acyc (lcyc /. acyc)
          sl.Imtp.Search.measured trials sa.Imtp.Search.measured trials;
        List.iter
          (fun (tag, (s : Imtp.Search.outcome)) ->
            if s.Imtp.Search.rejections <> [] then
              Printf.printf "    %s rejections: %s\n%!" tag
                (String.concat ", "
                   (List.map
                      (fun (c, n) -> Printf.sprintf "%s=%d" c n)
                      s.Imtp.Search.rejections)))
          [ ("legacy", sl); ("affine", sa) ];
        (name, (lsb, ldb, lcyc), (asb, adb, acyc), sl, sa))
      [
        ( "gemv 500x500",
          Imtp.Ops.gemv ~c:3 500 500,
          {
            Imtp.Sketch.default_params with
            Imtp.Sketch.spatial_dpus = 4;
            tasklets = 4;
            cache_elems = 64;
            rows_per_tasklet = 2;
          } );
        ( "mmtv 8x60x60",
          Imtp.Ops.mmtv 8 60 60,
          {
            Imtp.Sketch.default_params with
            Imtp.Sketch.spatial_dpus = 4;
            tasklets = 4;
            cache_elems = 16;
            rows_per_tasklet = 2;
          } );
      ]
  in
  match out with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      Printf.ksprintf (Buffer.add_string buf)
        "  \"benchmark\": \"affine bounds\",\n\
        \  \"date\": %.0f,\n\
        \  \"seed\": %d,\n\
        \  \"trials\": %d,\n\
        \  \"workloads\": [\n"
        (Unix.time ()) seed trials;
      let rejections_json (s : Imtp.Search.outcome) =
        String.concat ", "
          (List.map
             (fun (c, n) -> Printf.sprintf "{ \"constraint\": %S, \"count\": %d }" c n)
             s.Imtp.Search.rejections)
      in
      List.iteri
        (fun i (name, (lsb, ldb, lcyc), (asb, adb, acyc), sl, sa) ->
          Printf.ksprintf (Buffer.add_string buf)
            "    { \"op\": %S, \"guarded\": { \"static_branches\": %d, \
             \"dynamic_branches\": %.0f, \"kernel_cycles\": %.1f }, \
             \"proven\": { \"static_branches\": %d, \"dynamic_branches\": \
             %.0f, \"kernel_cycles\": %.1f }, \"cycle_speedup\": %.4f, \
             \"search_legacy\": { \"verified\": %d, \"invalid\": %d, \
             \"rejections\": [%s] }, \"search_affine\": { \"verified\": %d, \
             \"invalid\": %d, \"rejections\": [%s] } }%s\n"
            name lsb ldb lcyc asb adb acyc (lcyc /. acyc)
            sl.Imtp.Search.measured sl.Imtp.Search.invalid_candidates
            (rejections_json sl) sa.Imtp.Search.measured
            sa.Imtp.Search.invalid_candidates (rejections_json sa)
            (if i = List.length rows - 1 then "" else ",")
        )
        rows;
      Buffer.add_string buf "  ]\n}\n";
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "appended to %s\n" path

(* --- Serve throughput: N concurrent clients vs N sequential --------- *)

(* Aggregate tuning throughput of the daemon under client concurrency:
   the same N fixed-seed sessions are run once back-to-back through a
   single connection and once as N simultaneous clients, each mode
   against a fresh daemon (cold shared engine), comparing aggregate
   trials/sec and the shared-cache ledger.  Tuning is CPU-bound in the
   daemon's domain pool, so the concurrent mode can only win when the
   host has cores to spare — the report records the core count so a
   sub-1x ratio on a small host reads as expected, not as a
   regression.  Appends a JSON report to [--out] when given. *)
let serve_throughput ~out () =
  let n = 4 and trials = 400 in
  let specs =
    List.init n (fun i ->
        {
          Imtp.Protocol.op = "mtv";
          sizes = [ 128; 256 ];
          trials;
          seed = 100 + i;
          measure_ratio = None;
          islands = None;
          session = Some (Printf.sprintf "bench-%d" i);
        })
  in
  let with_daemon f =
    let dir = Filename.temp_file "imtp_bench_serve" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let socket = Filename.concat dir "d.sock" in
    let cfg =
      {
        (Imtp.Serve.default_config ~socket) with
        Imtp.Serve.checkpoint_dir = Filename.concat dir "ckpt";
        max_sessions = n;
      }
    in
    let th = Thread.create (fun () -> ignore (Imtp.Serve.run cfg)) () in
    let rec wait tries =
      match Imtp.Serve_client.connect ~socket with
      | Ok c -> Imtp.Serve_client.close c
      | Error _ when tries > 0 ->
          Thread.delay 0.05;
          wait (tries - 1)
      | Error e -> failwith (Imtp.Serve_client.error_to_string e)
    in
    wait 100;
    let result = f socket in
    (* engine ledger before shutdown, then tear everything down *)
    let stats =
      match Imtp.Serve_client.with_connection ~socket Imtp.Serve_client.stats with
      | Ok s -> s
      | Error e -> failwith (Imtp.Serve_client.error_to_string e)
    in
    ignore (Imtp.Serve_client.with_connection ~socket Imtp.Serve_client.shutdown);
    Thread.join th;
    let rec rm d =
      Array.iter
        (fun f ->
          let p = Filename.concat d f in
          if Sys.is_directory p then rm p else Sys.remove p)
        (Sys.readdir d);
      Unix.rmdir d
    in
    rm dir;
    (result, stats)
  in
  let tune_ok socket spec =
    match
      Imtp.Serve_client.with_connection ~socket (fun c ->
          Imtp.Serve_client.tune c spec)
    with
    | Ok _ -> ()
    | Error e -> failwith (Imtp.Serve_client.error_to_string e)
  in
  let engine_counter stats field =
    match Imtp.Obs.Json.member "engine" stats with
    | Some engine -> (
        match Imtp.Obs.Json.member field engine with
        | Some (Imtp.Obs.Json.Num v) -> int_of_float v
        | _ -> 0)
    | None -> 0
  in
  Util.heading
    (Printf.sprintf
       "Serve throughput: %d sessions x %d trials, sequential vs concurrent \
        (host has %d core%s)"
       n trials (Domain.recommended_domain_count ())
       (if Domain.recommended_domain_count () = 1 then "" else "s"));
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let seq_elapsed, seq_stats =
    with_daemon (fun socket ->
        time (fun () -> List.iter (tune_ok socket) specs))
  in
  let conc_elapsed, conc_stats =
    with_daemon (fun socket ->
        time (fun () ->
            let threads =
              List.map
                (fun spec -> Thread.create (fun () -> tune_ok socket spec) ())
                specs
            in
            List.iter Thread.join threads))
  in
  let total = float_of_int (n * trials) in
  let seq_tps = total /. seq_elapsed and conc_tps = total /. conc_elapsed in
  let report tag elapsed tps stats =
    Printf.printf
      "  %-10s %.2fs, %.0f trials/s aggregate, engine hits=%d built=%d\n%!"
      tag elapsed tps
      (engine_counter stats "hits")
      (engine_counter stats "built")
  in
  report "sequential" seq_elapsed seq_tps seq_stats;
  report "concurrent" conc_elapsed conc_tps conc_stats;
  Printf.printf "  concurrent/sequential: %.2fx\n%!" (conc_tps /. seq_tps);
  match out with
  | None -> ()
  | Some path ->
      let mode_json stats tps elapsed =
        Printf.sprintf
          "{ \"elapsed_s\": %.4f, \"trials_per_s\": %.1f, \"engine_hits\": \
           %d, \"engine_built\": %d }"
          elapsed tps
          (engine_counter stats "hits")
          (engine_counter stats "built")
      in
      let domains = Domain.recommended_domain_count () in
      let note =
        if domains = 1 then
          "tuning is CPU-bound in the daemon's shared domain pool and \
           this host has a single core, so ~1x or below from client \
           concurrency is the expected reading, not a regression"
        else
          Printf.sprintf
            "tuning is CPU-bound in the daemon's shared domain pool; \
             aggregate speedup from client concurrency is bounded by \
             the %d host cores"
            domains
      in
      let buf = Buffer.create 1024 in
      Printf.ksprintf (Buffer.add_string buf)
        "{\n\
        \  \"benchmark\": \"serve throughput\",\n\
        \  \"date\": %.0f,\n\
        \  \"host_cores\": %d,\n\
        \  \"clients\": %d,\n\
        \  \"trials_per_session\": %d,\n\
        \  \"sequential\": %s,\n\
        \  \"concurrent\": %s,\n\
        \  \"concurrent_speedup\": %.4f,\n\
        \  \"note\": %S\n\
         }\n"
        (Unix.time ()) domains n trials
        (mode_json seq_stats seq_tps seq_elapsed)
        (mode_json conc_stats conc_tps conc_elapsed)
        (conc_tps /. seq_tps)
        note;
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "appended to %s\n" path

(* --- Island scaling: sharded search at -j4/-k4 vs -j1/-k1 ----------- *)

(* Aggregate search throughput of the island-model tuner at equal trial
   budgets: the paper's GEMV/MMTV shapes tuned once single-population
   single-job and once sharded four ways across a four-job pool.  Two
   regimes per workload: pure CPU (honest host numbers — on a one-core
   host the sharded run can only add overhead), and with
   IMTP_SIM_LATENCY_US emulating the per-measurement device round-trip
   that dominates tuning on real PIM hardware, where stalls overlap
   across pool workers and the sharded run wins even on one core.  Best
   latencies are re-measured noise-free (stall off) so the equal-budget
   quality comparison is exact.  An Engine.batch leg under the same
   stall records the raw batch-path overlap.  Appends a JSON report to
   [--out] when given. *)
let island_scaling ~out () =
  let cfg = Util.cfg in
  let trials = 96 and seed = 13 in
  let stall_us = 200_000. in
  let domains = Domain.recommended_domain_count () in
  let set_stall us =
    Unix.putenv "IMTP_SIM_LATENCY_US"
      (if us > 0. then Printf.sprintf "%.0f" us else "")
  in
  let noise_free op params =
    set_stall 0.;
    let engine = Imtp.Engine.create cfg in
    match Imtp.Engine.measure engine op params with
    | Ok m -> m.Imtp.Engine.latency_s
    | Error _ -> infinity
  in
  let search ~stall ~jobs ~islands op =
    set_stall stall;
    let t0 = Unix.gettimeofday () in
    let o = Imtp.Search.run ~seed ~jobs ~islands cfg op ~trials in
    let elapsed = Unix.gettimeofday () -. t0 in
    set_stall 0.;
    let best_s =
      match o.Imtp.Search.best with
      | Some b -> noise_free op b.Imtp.Measure.params
      | None -> infinity
    in
    (o, elapsed, best_s)
  in
  let migrations (o : Imtp.Search.outcome) =
    List.fold_left
      (fun acc s -> acc + s.Imtp.Search.island_migrations)
      0 o.Imtp.Search.per_island
  in
  Util.heading
    (Printf.sprintf
       "Island scaling: %d trials, -j4/-k4 vs -j1/-k1 (host has %d core%s; \
        emulated stall %.0f us/measurement)"
       trials domains
       (if domains = 1 then "" else "s")
       stall_us);
  let run_regime tag stall op =
    let base, base_s, base_best = search ~stall ~jobs:1 ~islands:1 op in
    let shard, shard_s, shard_best = search ~stall ~jobs:4 ~islands:4 op in
    let tps s = float_of_int trials /. s in
    Printf.printf
      "  %-10s -j1/-k1: %6.2f s (%5.1f trials/s), best %.4e | -j4/-k4: \
       %6.2f s (%5.1f trials/s), best %.4e, %d migrations | %.2fx\n\
       %!"
      tag base_s (tps base_s) base_best shard_s (tps shard_s) shard_best
      (migrations shard)
      (base_s /. shard_s);
    let leg ~jobs (o : Imtp.Search.outcome) elapsed best =
      Printf.sprintf
        "{ \"jobs\": %d, \"islands\": %d, \"elapsed_s\": %.4f, \
         \"trials_per_s\": %.2f, \"measured_trials\": %d, \
         \"migrations\": %d, \"best_s\": %.6e }"
        jobs o.Imtp.Search.islands elapsed (tps elapsed)
        o.Imtp.Search.measured_trials (migrations o) best
    in
    ( Printf.sprintf
        "{ \"baseline\": %s, \"sharded\": %s, \"speedup\": %.4f, \
         \"best_ratio\": %.4f }"
        (leg ~jobs:1 base base_s base_best)
        (leg ~jobs:4 shard shard_s shard_best)
        (base_s /. shard_s)
        (shard_best /. base_best),
      base_s /. shard_s )
  in
  let rows =
    List.map
      (fun (name, op) ->
        Printf.printf "  %s\n%!" name;
        let cpu_json, _ = run_regime "pure-cpu" 0. op in
        let emu_json, emu_speedup = run_regime "emulated" stall_us op in
        (name, cpu_json, emu_json, emu_speedup))
      [
        ("gemv 512x512", Imtp.Ops.gemv ~c:3 512 512);
        ("mmtv 8x64x64", Imtp.Ops.mmtv 8 64 64);
      ]
  in
  (* Raw Engine.batch leg under the same stall: distinct MTV candidates
     evaluated cold at -j1 and -j4. *)
  let batch_leg () =
    let op = Imtp.Ops.mtv 128 256 in
    let wanted = 48 in
    let scratch = Imtp.Engine.create cfg in
    let rng = Imtp.Rng.create ~seed:42 in
    let seen = Hashtbl.create 64 in
    let candidates = ref [] in
    let attempts = ref 0 in
    while List.length !candidates < wanted && !attempts < wanted * 100 do
      incr attempts;
      let p = Imtp.Sketch.random rng cfg op in
      let key = Imtp.Engine.fingerprint op p in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        match Imtp.Engine.build scratch op p with
        | Ok _ -> candidates := p :: !candidates
        | Error _ -> ()
      end
    done;
    let candidates = List.rev !candidates in
    let n = List.length candidates in
    let time jobs =
      set_stall stall_us;
      let engine = Imtp.Engine.create cfg in
      let rng = Imtp.Rng.create ~seed:7 in
      let t0 = Unix.gettimeofday () in
      let (_ : (Imtp.Sketch.params * _) list) =
        Imtp.Engine.batch engine ~jobs ~rng op candidates
      in
      let s = Unix.gettimeofday () -. t0 in
      set_stall 0.;
      s
    in
    let j1 = time 1 and j4 = time 4 in
    Printf.printf
      "  batch      %d candidates under stall: -j1 %.2f s, -j4 %.2f s \
       (%.2fx)\n\
       %!"
      n j1 j4 (j1 /. j4);
    (n, j1, j4)
  in
  let bn, b1, b4 = batch_leg () in
  (match out with
  | None -> ()
  | Some path ->
      let note =
        if domains = 1 then
          "pure_cpu on this 1-core host records parallel overhead \
           honestly (at or below 1x); the emulated regime is the \
           acceptance number — with a per-measurement device stall, \
           island sharding overlaps measurements across the pool and \
           the speedup holds on any host"
        else
          Printf.sprintf
            "recorded on a %d-core host; both regimes should scale \
             toward min(4, %d)"
            domains domains
      in
      let buf = Buffer.create 2048 in
      Printf.ksprintf (Buffer.add_string buf)
        "{\n\
        \  \"benchmark\": \"island scaling\",\n\
        \  \"date\": %.0f,\n\
        \  \"host_cores\": %d,\n\
        \  \"trials\": %d,\n\
        \  \"seed\": %d,\n\
        \  \"stall_us\": %.0f,\n\
        \  \"note\": %S,\n\
        \  \"batch_emulated\": { \"op\": \"mtv 128x256\", \
         \"distinct_candidates\": %d, \"j1_s\": %.4f, \"j4_s\": %.4f, \
         \"speedup\": %.4f },\n\
        \  \"workloads\": [\n"
        (Unix.time ()) domains trials seed stall_us note bn b1 b4 (b1 /. b4);
      List.iteri
        (fun i (name, cpu_json, emu_json, _) ->
          Printf.ksprintf (Buffer.add_string buf)
            "    { \"op\": %S, \"pure_cpu\": %s, \"emulated\": %s }%s\n"
            name cpu_json emu_json
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Buffer.add_string buf "  ]\n}\n";
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "appended to %s\n" path);
  List.iter
    (fun (name, _, _, s) ->
      if s < 3. then
        Printf.printf
          "  note: %s emulated speedup %.2fx below the 3x target\n%!" name s)
    rows

(* --- Graph pipeline: fused + MRAM-resident vs per-op ---------------- *)

(* The whole-model scenarios (MLP forward pass, transformer attention
   block) through the graph compiler, fused + resident vs the per-op
   baseline (no fusion, no residency, every intermediate round-tripped
   through the host).  Both variants share one engine, run on the same
   inputs, and are validated against the per-op reference chain; the
   report records modeled latency/bytes (cost model over the linked
   program) and executed transfer volumes (the functional executor's
   dynamic counters).  Trial budgets are sized so the joint search
   converges: the MLP's two mtv+epilogue kernels need a deeper search
   than the attention block's four smaller ones.  Appends a JSON
   report to [--out] when given. *)
let graph_pipeline ~out () =
  let cfg = Util.cfg in
  (* Island count pinned: searches are bit-identical at any -j for a
     fixed island count, so these rows reproduce on any host. *)
  let islands = 2 in
  let nets =
    [
      (Imtp.Nets.mlp (), 160, 11);
      (Imtp.Nets.attention (), 64, 11);
    ]
  in
  Util.heading
    "Graph pipeline: epilogue fusion + MRAM residency vs per-op execution";
  let rows =
    List.map
      (fun ((spec : Imtp.Nets.t), trials, seed) ->
        let g, ids = Imtp.Graph.of_spec spec in
        let engine = Imtp.Engine.create cfg in
        let compile ~fuse ~resident =
          match
            Imtp.Graph.Compiled.compile ~trials ~seed ~islands ~fuse ~resident
              ~engine cfg g
          with
          | Ok c -> c
          | Error m ->
              Printf.eprintf "graph compile failed for %s: %s\n"
                spec.Imtp.Nets.sname m;
              exit 1
        in
        let fused = compile ~fuse:true ~resident:true in
        let base = compile ~fuse:false ~resident:false in
        let inputs = Imtp.Nets.random_inputs spec in
        let refs = Imtp.Nets.reference spec ~inputs in
        let check c =
          let outs, counters = Imtp.Graph.Compiled.run_counted c ~inputs in
          List.iter
            (fun (id, want) ->
              match
                List.assoc_opt (Imtp.Graph.tid_name (List.assoc id ids)) outs
              with
              | None -> ()
              | Some got -> assert (Imtp.Tensor.equal got want))
            refs;
          counters
        in
        let fc = check fused and bc = check base in
        let fs = Imtp.Graph.Compiled.estimate fused in
        let bs = Imtp.Graph.Compiled.estimate base in
        let fbytes = fs.Imtp.Stats.bytes_h2d + fs.Imtp.Stats.bytes_d2h in
        let bbytes = bs.Imtp.Stats.bytes_h2d + bs.Imtp.Stats.bytes_d2h in
        let speedup = Imtp.Stats.speedup ~baseline:bs fs in
        Printf.printf
          "  %-22s fused: %d kernels (%d fused away, %d resident edges)\n"
          spec.Imtp.Nets.sname
          (Imtp.Graph.node_count g - Imtp.Graph.Compiled.fused_count fused)
          (Imtp.Graph.Compiled.fused_count fused)
          (Imtp.Graph.Compiled.resident_count fused);
        Printf.printf
          "    modeled:  fused %.3f ms / %d B transferred, per-op %.3f ms \
           / %d B (%.2fx)\n"
          (1e3 *. Imtp.Stats.total_s fs)
          fbytes
          (1e3 *. Imtp.Stats.total_s bs)
          bbytes speedup;
        Printf.printf
          "    executed: fused %d h2d + %d d2h elems, per-op %d h2d + %d \
           d2h elems\n%!"
          fc.Imtp.Eval.xfer_elems_h2d fc.Imtp.Eval.xfer_elems_d2h
          bc.Imtp.Eval.xfer_elems_h2d bc.Imtp.Eval.xfer_elems_d2h;
        (* The acceptance bar: fusion + residency must win on modeled
           latency AND on host-transfer volume. *)
        assert (Imtp.Stats.total_s fs < Imtp.Stats.total_s bs);
        assert (fbytes < bbytes);
        assert (
          fc.Imtp.Eval.xfer_elems_h2d + fc.Imtp.Eval.xfer_elems_d2h
          < bc.Imtp.Eval.xfer_elems_h2d + bc.Imtp.Eval.xfer_elems_d2h);
        (spec.Imtp.Nets.sname, trials, seed, fused, fs, fc, bs, bc, speedup))
      nets
  in
  match out with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\n";
      Printf.ksprintf (Buffer.add_string buf)
        "  \"benchmark\": \"graph pipeline\",\n\
        \  \"date\": %.0f,\n\
        \  \"nets\": [\n"
        (Unix.time ());
      let variant_json (s : Imtp.Stats.t) (c : Imtp.Eval.counters) =
        Printf.sprintf
          "{ \"modeled_total_s\": %.6f, \"modeled_bytes_h2d\": %d, \
           \"modeled_bytes_d2h\": %d, \"xfer_elems_h2d\": %d, \
           \"xfer_elems_d2h\": %d }"
          (Imtp.Stats.total_s s) s.Imtp.Stats.bytes_h2d
          s.Imtp.Stats.bytes_d2h c.Imtp.Eval.xfer_elems_h2d
          c.Imtp.Eval.xfer_elems_d2h
      in
      List.iteri
        (fun i (name, trials, seed, fused, fs, fc, bs, bc, speedup) ->
          Printf.ksprintf (Buffer.add_string buf)
            "    { \"net\": %S, \"trials\": %d, \"seed\": %d, \
             \"fused_away\": %d, \"resident_edges\": %d,\n\
            \      \"fused\": %s,\n\
            \      \"per_op\": %s,\n\
            \      \"modeled_speedup\": %.2f, \"valid\": true }%s\n"
            name trials seed
            (Imtp.Graph.Compiled.fused_count fused)
            (Imtp.Graph.Compiled.resident_count fused)
            (variant_json fs fc) (variant_json bs bc) speedup
            (if i = List.length rows - 1 then "" else ",")
        )
        rows;
      Buffer.add_string buf "  ]\n}\n";
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "appended to %s\n" path

(* Each experiment runs under a [bench.<name>] observability span; with
   IMTP_TRACE=FILE set, the spans (and the engine/search metrics they
   enclose) stream to a JSONL trace readable by `imtp report`. *)
let run_experiment name f =
  Imtp.Obs.span ~name:("bench." ^ name) f

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let trace = Sys.getenv_opt "IMTP_TRACE" in
  Imtp.Obs.with_sink trace @@ fun () ->
  match args with
  | [] ->
      Printf.printf
        "IMTP benchmark harness: reproducing every table and figure of the \
         paper's evaluation.\n";
      List.iter (fun (name, f) -> run_experiment name f) experiments;
      run_bechamel ()
  | [ "--bechamel" ] -> run_bechamel ()
  | [ "--batch-scaling" ] -> batch_scaling ~out:None ()
  | [ "--batch-scaling"; "--out"; path ] -> batch_scaling ~out:(Some path) ()
  | [ "--exec-throughput" ] -> exec_throughput ~out:None ()
  | [ "--exec-throughput"; "--out"; path ] -> exec_throughput ~out:(Some path) ()
  | [ "--model-gating" ] -> model_gating ~out:None ()
  | [ "--model-gating"; "--out"; path ] -> model_gating ~out:(Some path) ()
  | [ "--affine-bounds" ] -> affine_bounds ~out:None ()
  | [ "--affine-bounds"; "--out"; path ] -> affine_bounds ~out:(Some path) ()
  | [ "--serve-throughput" ] -> serve_throughput ~out:None ()
  | [ "--serve-throughput"; "--out"; path ] ->
      serve_throughput ~out:(Some path) ()
  | [ "--island-scaling" ] -> island_scaling ~out:None ()
  | [ "--island-scaling"; "--out"; path ] ->
      island_scaling ~out:(Some path) ()
  | [ "--graph" ] -> graph_pipeline ~out:None ()
  | [ "--graph"; "--out"; path ] -> graph_pipeline ~out:(Some path) ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> run_experiment name f
          | None ->
              Printf.eprintf
                "unknown experiment %s (available: %s, --bechamel)\n" name
                (String.concat ", " (List.map fst experiments));
              exit 1)
        names
