(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe                 # run every experiment
     dune exec bench/main.exe -- fig9 fig13   # run selected experiments
     dune exec bench/main.exe -- --bechamel   # Bechamel micro-benchmarks

   Each experiment regenerates one table or figure of the paper's
   evaluation (see DESIGN.md's experiment index); the Bechamel suite
   times one representative computation per table/figure. *)

let experiments =
  [
    ("table1", Experiments.table1);
    ("fig3", Experiments.fig3);
    ("fig4", Experiments.fig4);
    ("fig9", Experiments.fig9);
    ("table3", Experiments.table3);
    ("fig10", Experiments.fig10);
    ("fig11", Experiments.fig11);
    ("fig12", Experiments.fig12);
    ("fig13", fun () -> Experiments.fig13 ());
    ("overhead", Experiments.overhead);
    ("joint", Experiments.joint);
    ("transfer", Experiments.transfer);
    ("costmodel", Experiments.costmodel);
    ("dtypes", Experiments.dtypes);
    ("hbm", Experiments.hbm);
  ]

(* --- Bechamel micro-benchmarks: one Test.make per table/figure ------ *)

let bechamel_tests () =
  let open Bechamel in
  let cfg = Util.cfg in
  let gemv = Imtp.Ops.gemv ~c:3 1000 999 in
  let params =
    {
      Imtp.Sketch.default_params with
      Imtp.Sketch.spatial_dpus = 256;
      tasklets = 12;
      cache_elems = 16;
    }
  in
  let lowered =
    Imtp.Lowering.lower
      ~options:(Imtp.Sketch.lower_options params)
      (Imtp.Sketch.instantiate gemv params)
  in
  let optimized = Imtp.Passes.run cfg lowered in
  let mtv = Imtp.Ops.mtv 2048 2048 in
  let rng = Imtp.Rng.create ~seed:1 in
  [
    (* Fig. 3: kernel-cost evaluation of a boundary-checked GEMV. *)
    Test.make ~name:"fig3/kernel-cost"
      (Staged.stage (fun () -> Util.kernel_cycles optimized));
    (* Fig. 4: end-to-end latency estimation of one candidate. *)
    Test.make ~name:"fig4/estimate"
      (Staged.stage (fun () -> Imtp.estimate optimized));
    (* Fig. 9 / Table 3: one full measurement (sketch->lower->passes->cost). *)
    Test.make ~name:"fig9/measure-candidate"
      (Staged.stage (fun () ->
           Imtp.Measure.measure cfg mtv (Imtp.Sketch.random rng cfg mtv)));
    (* Fig. 10: GPT-J MMTV sketch instantiation + lowering. *)
    Test.make ~name:"fig10/lower-gptj-mmtv"
      (Staged.stage
         (let op = Imtp.Gptj.mmtv_op Imtp.Gptj.Gptj_6b ~batch:1 ~tokens:128 in
          fun () ->
            Imtp.Lowering.lower
              ~options:(Imtp.Sketch.lower_options params)
              (Imtp.Sketch.instantiate op params)));
    (* Fig. 11: PrIM baseline measurement. *)
    Test.make ~name:"fig11/prim-measure"
      (Staged.stage (fun () -> Imtp.Prim.measure cfg mtv Imtp.Prim.default));
    (* Fig. 12: the PIM-aware pass pipeline itself. *)
    Test.make ~name:"fig12/pim-passes"
      (Staged.stage (fun () -> Imtp.Passes.run cfg lowered));
    (* Fig. 13: one evolutionary-search trial step. *)
    Test.make ~name:"fig13/search-8-trials"
      (Staged.stage (fun () -> Imtp.Search.run ~seed:3 cfg mtv ~trials:8));
  ]

let run_bechamel () =
  let open Bechamel in
  Printf.printf "Bechamel micro-benchmarks (ns per run, OLS estimate)\n%!";
  let tests = bechamel_tests () in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
    in
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
    let ols =
      Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name ols ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> Printf.printf "  %-28s %12.0f ns/run\n%!" name est
        | Some [] | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
      results
  in
  List.iter benchmark tests

(* Each experiment runs under a [bench.<name>] observability span; with
   IMTP_TRACE=FILE set, the spans (and the engine/search metrics they
   enclose) stream to a JSONL trace readable by `imtp report`. *)
let run_experiment name f =
  Imtp.Obs.span ~name:("bench." ^ name) f

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let trace = Sys.getenv_opt "IMTP_TRACE" in
  Imtp.Obs.with_sink trace @@ fun () ->
  match args with
  | [] ->
      Printf.printf
        "IMTP benchmark harness: reproducing every table and figure of the \
         paper's evaluation.\n";
      List.iter (fun (name, f) -> run_experiment name f) experiments;
      run_bechamel ()
  | [ "--bechamel" ] -> run_bechamel ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> run_experiment name f
          | None ->
              Printf.eprintf
                "unknown experiment %s (available: %s, --bechamel)\n" name
                (String.concat ", " (List.map fst experiments));
              exit 1)
        names
