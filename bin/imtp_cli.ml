(* imtp — command-line interface to the IMTP compiler and simulator.

   Subcommands:
     info                     describe the simulated machine and ops
     lower   <op> <sizes..>   print the lowered host+kernel TIR
     run     <op> <sizes..>   compile, execute, validate, and time
     tune    <op> <sizes..>   autotune and report the best schedule
     graph   <net> <sizes..>  fuse/tune/link a whole-model graph, execute
                              and validate it (--baseline for the per-op
                              comparison)
     baseline <op> <sizes..>  measure PrIM / PrIM(E) / PrIM+search / SimplePIM
     report  <trace>          summarize an observability trace (--trace)
     serve   --socket PATH    tuning-as-a-service daemon (docs/PROTOCOL.md)
     client  <cmd> ...        talk to a running daemon (run/tune/replay/
                              stats/shutdown)

   run/tune/replay/fuzz accept --trace FILE to stream tracing spans and
   a final metrics snapshot as JSONL; `imtp report FILE` renders it. *)

open Cmdliner

let cfg = Imtp.default_config

let op_conv =
  let parse s =
    if List.mem s Imtp.Ops.all_names then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown op %s (expected one of: %s)" s
             (String.concat ", " Imtp.Ops.all_names)))
  in
  Arg.conv (parse, Format.pp_print_string)

let op_arg =
  Arg.(
    required
    & pos 0 (some op_conv) None
    & info [] ~docv:"OP" ~doc:"Operation name (va, geva, red, mtv, gemv, ttv, mmtv).")

let sizes_arg =
  Arg.(
    non_empty
    & pos_right 0 int []
    & info [] ~docv:"SIZES" ~doc:"Dimension extents, e.g. 'mtv 512 2048'.")

let trials_arg =
  Arg.(value & opt int 128 & info [ "trials" ] ~doc:"Autotuning trial budget.")

let seed_arg =
  Arg.(value & opt int 2025 & info [ "seed" ] ~doc:"Random seed for the search.")

let dpus_arg =
  Arg.(
    value
    & opt int (Imtp.Config.nr_dpus cfg)
    & info [ "dpus" ] ~doc:"Limit the simulated machine to N DPUs.")

let no_passes_arg =
  Arg.(
    value & flag
    & info [ "no-passes" ] ~doc:"Disable the PIM-aware optimization passes.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Enable debug logging (search telemetry).")

let setup_logging verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel candidate evaluation.  Defaults to \
           $(b,IMTP_JOBS) from the environment, else the machine's \
           recommended domain count; $(docv)=1 disables parallelism \
           entirely (no domains are spun up).  Results are bit-identical \
           at any value — only wall-clock time changes.")

(* The CLI resolves -j once into the process-wide default, so every
   layer below (tuner batches, fuzz cases) picks it up without
   threading a parameter through each call. *)
let apply_jobs jobs = Option.iter Imtp.Pool.set_default_jobs jobs

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write an observability trace to $(docv): one JSONL line per \
           tracing span, plus a final metrics snapshot (counters, gauges, \
           histograms).  Inspect it with 'imtp report $(docv)'.")

let with_trace trace f = Imtp.Obs.with_sink trace f

let machine dpus = Imtp.Config.with_dpus cfg dpus

let build_op name sizes = Imtp.Ops.by_name name ~sizes

let default_params config op =
  let dpus = min 256 (Imtp.Config.nr_dpus config) in
  let p = { Imtp.Sketch.default_params with Imtp.Sketch.spatial_dpus = dpus; tasklets = 8; cache_elems = 32 } in
  match Imtp.Sketch.family_of op with
  | Imtp.Sketch.Tasklet_reduce -> { p with Imtp.Sketch.reduction_dpus = dpus }
  | _ -> p

(* --- info ------------------------------------------------------------ *)

let info_cmd =
  let doc = "Describe the simulated UPMEM machine and available operations." in
  let run () =
    Format.printf "machine: %a@." Imtp.Config.pp cfg;
    Format.printf "operations:@.";
    List.iter
      (fun name ->
        let arity =
          match name with
          | "va" | "geva" | "red" -> "<n>"
          | "mtv" | "gemv" -> "<rows> <cols>"
          | "gemm" -> "<rows> <cols> <inner>"
          | _ -> "<batch> <rows> <cols>"
        in
        Format.printf "  %-6s %s@." name arity)
      Imtp.Ops.all_names
  in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run $ const ())

(* --- lower ----------------------------------------------------------- *)

let lower_cmd =
  let doc = "Lower an operation with a default schedule and print the TIR." in
  let run name sizes no_passes dpus =
    let op = build_op name sizes in
    let config = machine dpus in
    let sched = Imtp.Sketch.instantiate op (default_params config op) in
    let prog =
      if no_passes then Imtp.Lowering.lower sched
      else Imtp.compile ~config sched
    in
    print_string (Imtp.Printer.program_to_string prog)
  in
  Cmd.v
    (Cmd.info "lower" ~doc)
    Term.(const run $ op_arg $ sizes_arg $ no_passes_arg $ dpus_arg)

(* --- codegen --------------------------------------------------------- *)

let codegen_cmd =
  let doc = "Emit UPMEM-SDK-style C for an operation's compiled program." in
  let run name sizes dpus =
    let op = build_op name sizes in
    let config = machine dpus in
    let prog =
      Imtp.compile ~config (Imtp.Sketch.instantiate op (default_params config op))
    in
    print_string (Imtp.Codegen_c.program_to_c prog)
  in
  Cmd.v (Cmd.info "codegen" ~doc) Term.(const run $ op_arg $ sizes_arg $ dpus_arg)

(* --- run ------------------------------------------------------------- *)

let run_cmd =
  let doc = "Compile with a default schedule, execute on the functional \
             simulator, validate against the reference, and report timing." in
  let run name sizes dpus jobs trace =
    apply_jobs jobs;
    with_trace trace @@ fun () ->
    let op = build_op name sizes in
    let config = machine dpus in
    let engine = Imtp.Engine.create config in
    match Imtp.Engine.build engine op (default_params config op) with
    | Error e ->
        Format.eprintf "error: %s@." (Imtp.Engine.error_to_string e);
        exit 1
    | Ok art ->
        let prog = art.Imtp.Engine.program in
        let inputs = Imtp.Ops.random_inputs op in
        let outs =
          Imtp.Obs.span ~name:"cli.execute" (fun () ->
              Imtp.execute ~inputs prog op)
        in
        let got = List.assoc (fst op.Imtp.Op.output) outs in
        let want = Imtp.Op.reference op inputs in
        let ok =
          Imtp.Tensor.to_value_list got = Imtp.Tensor.to_value_list want
        in
        Format.printf "result: %s@." (if ok then "VALID" else "MISMATCH");
        Format.printf "timing: %a@." Imtp.Stats.pp art.Imtp.Engine.stats;
        if not ok then exit 1
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ op_arg $ sizes_arg $ dpus_arg $ jobs_arg $ trace_arg)

(* --- tune ------------------------------------------------------------ *)

let log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE" ~doc:"Write the tuning history to a log file.")

let measure_ratio_arg =
  Arg.(
    value
    & opt float 0.2
    & info [ "measure-ratio" ] ~docv:"R"
        ~doc:
          "Fraction of each search generation the learned cost model \
           forwards to the simulator (in (0,1]). Ignored under \
           $(b,--no-cost-model).")

let islands_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "islands" ] ~docv:"K"
        ~doc:
          "Shard the evolutionary search into $(docv) independent island \
           populations with ring migration of elites (see DESIGN.md).  \
           Defaults to $(b,IMTP_ISLANDS) from the environment, else the \
           effective job count.  Results are bit-identical at any \
           $(b,--jobs) value for a fixed $(docv); different island counts \
           are different (equally deterministic) searches, so pin \
           $(docv) for cross-machine reproducibility.")

let no_cost_model_arg =
  Arg.(
    value & flag
    & info [ "no-cost-model" ]
        ~doc:
          "Disable the learned TIR cost model and measure every candidate \
           (the pre-gating search, bit-identical trajectories).")

let tune_cmd =
  let doc = "Autotune an operation and report the winning schedule." in
  let run name sizes trials seed dpus jobs islands measure_ratio no_cost_model
      log verbose trace =
    setup_logging verbose;
    apply_jobs jobs;
    with_trace trace @@ fun () ->
    let op = build_op name sizes in
    let config = machine dpus in
    let measure_ratio = if no_cost_model then None else Some measure_ratio in
    match Imtp.Tuner.tune ~trials ~seed ?islands ?measure_ratio config op with
    | Error m ->
        Format.eprintf "error: %s@." m;
        exit 1
    | Ok r ->
        Format.printf "best:   %s@." (Imtp.Tuner.describe r);
        Format.printf "timing: %a@." Imtp.Stats.pp r.Imtp.Tuner.stats;
        let s = r.Imtp.Tuner.search in
        Format.printf "search: %d measured, %d invalid candidates filtered@."
          s.Imtp.Search.measured s.Imtp.Search.invalid_candidates;
        if s.Imtp.Search.islands > 1 then
          Format.printf "search: %d islands (%s migrated elites)@."
            s.Imtp.Search.islands
            (String.concat "+"
               (List.map
                  (fun (i : Imtp.Search.island_stats) ->
                    string_of_int i.Imtp.Search.island_migrations)
                  s.Imtp.Search.per_island));
        if s.Imtp.Search.rejections <> [] then
          Format.printf "search: rejected by constraint: %s@."
            (String.concat ", "
               (List.map
                  (fun (name, n) -> Printf.sprintf "%s=%d" name n)
                  s.Imtp.Search.rejections));
        Format.printf
          "search: %d simulator executions, %d candidates gated out \
           (predicted only)@."
          s.Imtp.Search.measured_trials s.Imtp.Search.skipped;
        Format.printf "search: %.2f s wall clock (%.0f trials/s)@."
          s.Imtp.Search.elapsed_s
          (float_of_int trials /. Float.max 1e-9 s.Imtp.Search.elapsed_s);
        let c = r.Imtp.Tuner.cache in
        Format.printf
          "engine: %d/%d lookups served from cache (%.0f%% hit rate), %d \
           search candidates deduplicated@."
          c.Imtp.Engine.hits c.Imtp.Engine.lookups
          (100. *. Imtp.Engine.hit_rate c)
          s.Imtp.Search.cache_hits;
        Format.printf "schedule primitives:@.";
        List.iter
          (fun line -> Format.printf "  %s@." line)
          (Imtp.Sched.trace (Imtp.Sketch.instantiate op r.Imtp.Tuner.params));
        Option.iter
          (fun path ->
            Imtp.Tuning_log.save path ~op_name:name r.Imtp.Tuner.search;
            Format.printf "tuning log written to %s@." path)
          log
  in
  Cmd.v
    (Cmd.info "tune" ~doc)
    Term.(
      const run $ op_arg $ sizes_arg $ trials_arg $ seed_arg $ dpus_arg
      $ jobs_arg $ islands_arg $ measure_ratio_arg $ no_cost_model_arg
      $ log_arg $ verbose_arg $ trace_arg)

(* --- graph ----------------------------------------------------------- *)

let graph_cmd =
  let doc =
    "Compile a whole-model graph: fuse elementwise epilogues into their \
     producers, tune the distinct fused ops jointly under one shared \
     engine, keep compatible intermediates resident in MRAM, link one \
     combined program, execute it and validate every materialized \
     output against the reference chain."
  in
  let net_conv =
    let parse s =
      if List.mem s Imtp.Nets.all_names then Ok s
      else
        Error
          (`Msg
            (Printf.sprintf "unknown net %s (expected one of: %s)" s
               (String.concat ", " Imtp.Nets.all_names)))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let net_arg =
    Arg.(
      required
      & pos 0 (some net_conv) None
      & info [] ~docv:"NET"
          ~doc:"Model name: mlp (sizes d_in d_hidden d_out) or attention \
                (sizes heads tokens dim).")
  in
  let net_sizes_arg =
    Arg.(
      value
      & pos_right 0 int []
      & info [] ~docv:"SIZES"
          ~doc:"Optional dimension overrides, e.g. 'mlp 256 256 128'.")
  in
  let graph_trials_arg =
    Arg.(
      value & opt int 96
      & info [ "trials" ]
          ~doc:
            "Joint tuning budget, split across the graph's distinct \
             (structurally deduplicated) fused ops.")
  in
  let no_fuse_arg =
    Arg.(
      value & flag
      & info [ "no-fuse" ] ~doc:"Disable epilogue fusion (one kernel per node).")
  in
  let no_resident_arg =
    Arg.(
      value & flag
      & info [ "no-resident" ]
          ~doc:"Disable MRAM residency planning (host round-trip between \
                every pair of nodes).")
  in
  let graph_baseline_arg =
    Arg.(
      value & flag
      & info [ "baseline" ]
          ~doc:
            "Also compile the per-op baseline (no fusion, no residency) \
             on the same engine and report the modeled-latency and \
             host-transfer comparison.")
  in
  let graph_cmd_run name sizes trials seed dpus jobs islands measure_ratio
      no_cost_model no_fuse no_resident baseline verbose trace =
    setup_logging verbose;
    apply_jobs jobs;
    with_trace trace @@ fun () ->
    let sizes = match sizes with [] -> None | s -> Some s in
    let spec = Imtp.Nets.by_name ?sizes name in
    let g, ids = Imtp.Graph.of_spec spec in
    let config = machine dpus in
    let measure_ratio = if no_cost_model then None else Some measure_ratio in
    let engine = Imtp.Engine.create config in
    let compile ~fuse ~resident =
      Imtp.Graph.Compiled.compile ~trials ~seed ?jobs ?islands ?measure_ratio
        ~fuse ~resident ~engine config g
    in
    let transfers outs_counters =
      let _, (c : Imtp.Eval.counters) = outs_counters in
      (c.Imtp.Eval.xfer_elems_h2d, c.Imtp.Eval.xfer_elems_d2h)
    in
    match compile ~fuse:(not no_fuse) ~resident:(not no_resident) with
    | Error m ->
        Format.eprintf "error: %s@." m;
        exit 1
    | Ok c ->
        Format.printf "net:    %s (%d nodes, %d fused away, %d resident \
                       edges)@."
          spec.Imtp.Nets.sname (Imtp.Graph.node_count g)
          (Imtp.Graph.Compiled.fused_count c)
          (Imtp.Graph.Compiled.resident_count c);
        List.iter
          (fun line -> Format.printf "  %s@." line)
          (Imtp.Graph.Compiled.describe c);
        Format.printf "per-node estimates:@.";
        List.iter
          (fun (key, stats) ->
            Format.printf "  %-24s %a@." key Imtp.Stats.pp stats)
          (Imtp.Graph.Compiled.node_stats c);
        let total = Imtp.Graph.Compiled.estimate c in
        Format.printf "combined: %a@." Imtp.Stats.pp total;
        let inputs = Imtp.Nets.random_inputs spec in
        let outs, counters = Imtp.Graph.Compiled.run_counted c ~inputs in
        let refs = Imtp.Nets.reference spec ~inputs in
        let checked = ref 0 and bad = ref 0 in
        List.iter
          (fun (id, want) ->
            let gname = Imtp.Graph.tid_name (List.assoc id ids) in
            match List.assoc_opt gname outs with
            | None -> ()
            | Some got ->
                incr checked;
                if Imtp.Tensor.to_value_list got
                   <> Imtp.Tensor.to_value_list want
                then begin
                  incr bad;
                  Format.eprintf "MISMATCH at %s (%s)@." id gname
                end)
          refs;
        Format.printf "result: %s (%d materialized outputs checked)@."
          (if !bad = 0 then "VALID" else "MISMATCH")
          !checked;
        Format.printf
          "executed transfers: %d elems host->DPU, %d elems DPU->host@."
          counters.Imtp.Eval.xfer_elems_h2d counters.Imtp.Eval.xfer_elems_d2h;
        let cache = Imtp.Engine.counters engine in
        Format.printf "engine: %d programs built, %d cache hits@."
          cache.Imtp.Engine.built cache.Imtp.Engine.hits;
        if !bad > 0 then exit 1;
        if baseline then begin
          match compile ~fuse:false ~resident:false with
          | Error m ->
              Format.eprintf "error compiling baseline: %s@." m;
              exit 1
          | Ok b ->
              let btotal = Imtp.Graph.Compiled.estimate b in
              let bh2d, bd2h =
                transfers (Imtp.Graph.Compiled.run_counted b ~inputs)
              in
              Format.printf "baseline (per-op): %a@." Imtp.Stats.pp btotal;
              Format.printf
                "baseline transfers: %d elems host->DPU, %d elems DPU->host@."
                bh2d bd2h;
              Format.printf
                "graph vs per-op: %.2fx modeled latency, %+d h2d elems, \
                 %+d d2h elems@."
                (Imtp.Stats.speedup ~baseline:btotal total)
                (counters.Imtp.Eval.xfer_elems_h2d - bh2d)
                (counters.Imtp.Eval.xfer_elems_d2h - bd2h)
        end
  in
  Cmd.v
    (Cmd.info "graph" ~doc)
    Term.(
      const graph_cmd_run $ net_arg $ net_sizes_arg $ graph_trials_arg
      $ seed_arg $ dpus_arg $ jobs_arg $ islands_arg $ measure_ratio_arg
      $ no_cost_model_arg $ no_fuse_arg $ no_resident_arg
      $ graph_baseline_arg $ verbose_arg $ trace_arg)

(* --- replay ---------------------------------------------------------- *)

let replay_cmd =
  let doc = "Reload a tuning log and re-measure its best schedule." in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LOG" ~doc:"Tuning log written by 'tune --log'.")
  in
  let szs =
    Arg.(
      non_empty & pos_right 0 int []
      & info [] ~docv:"SIZES" ~doc:"Dimension extents of the logged operation.")
  in
  let run file sizes trace =
    with_trace trace @@ fun () ->
    match Imtp.Tuning_log.load file with
    | Error m ->
        Format.eprintf "error: %s@." m;
        exit 1
    | Ok (hdr, entries) -> (
        let op_name = hdr.Imtp.Tuning_log.op_name in
        Format.printf "log: op=%s, %d entries@." op_name (List.length entries);
        (match hdr.Imtp.Tuning_log.duration_s with
        | Some d when d > 0. ->
            Format.printf "tuned in: %.2f s (%.0f trials/s)@." d
              (float_of_int (List.length entries) /. d)
        | Some _ | None -> ());
        match Imtp.Tuning_log.best entries with
        | None ->
            Format.eprintf "error: empty log@.";
            exit 1
        | Some e -> (
            let op = build_op op_name sizes in
            Format.printf "best logged: trial %d, %.3f ms, %s@."
              e.Imtp.Tuning_log.trial
              (e.Imtp.Tuning_log.latency_s *. 1e3)
              (Imtp.Sketch.describe e.Imtp.Tuning_log.params);
            let engine = Imtp.Engine.create cfg in
            match Imtp.Engine.measure engine op e.Imtp.Tuning_log.params with
            | Error err ->
                Format.eprintf "error: %s@." (Imtp.Engine.error_to_string err);
                exit 1
            | Ok m ->
                Format.printf "re-measured:  %.3f ms@."
                  (m.Imtp.Engine.latency_s *. 1e3)))
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ file_arg $ szs $ trace_arg)

(* --- fuzz ------------------------------------------------------------ *)

let fuzz_cmd =
  let doc =
    "Run a differential-testing campaign: random workloads and schedules, \
     checked bit-exactly against reference semantics under every pass \
     configuration."
  in
  let cases_arg =
    Arg.(
      value & opt int 500
      & info [ "cases" ] ~doc:"Number of checked cases in the campaign.")
  in
  let fuzz_seed_arg =
    Arg.(
      value & opt int 2025
      & info [ "seed" ] ~doc:"Campaign seed; failures reproduce from it.")
  in
  let case_arg =
    Arg.(
      value & opt (some int) None
      & info [ "case" ]
          ~doc:
            "Re-check only the case at this index (reproduce a reported \
             failure without re-running the whole campaign).")
  in
  let no_shrink_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report failures without minimizing them.")
  in
  let fuzz_graph_arg =
    Arg.(
      value & flag
      & info [ "graph" ]
          ~doc:
            "Graph mode: random small dataflow graphs through the graph \
             compiler (fused + resident and per-op), checked bit-exactly \
             against the per-op reference chain and across both \
             executors.  Budget with a smaller $(b,--cases) — each case \
             compiles and tunes a whole graph twice.")
  in
  let run seed cases case no_shrink graph jobs verbose trace =
    setup_logging verbose;
    apply_jobs jobs;
    with_trace trace @@ fun () ->
    if graph then begin
      Format.printf "graph fuzzing: seed=%d cases=%d@." seed cases;
      let progress i =
        if (i + 1) mod 10 = 0 then
          Format.printf "  ... %d/%d cases@.%!" (i + 1) cases
      in
      let outcome = Imtp.Fuzz_graph.run ~progress ~seed ~cases () in
      print_string (Imtp.Fuzz_graph.summary ~seed outcome);
      if outcome.Imtp.Fuzz_graph.failures <> [] then exit 1
    end
    else
    match case with
    | Some index -> (
        match Imtp.Fuzz.case_of_seed ~seed ~index with
        | None ->
            Format.eprintf "error: case %d of seed %d never lowers@." index seed;
            exit 1
        | Some c -> (
            match Imtp.Fuzz_oracle.check c with
            | Imtp.Fuzz_oracle.Passed { configs_checked } ->
                Format.printf "case %d: PASSED (%d pass configs)@." index
                  configs_checked
            | Imtp.Fuzz_oracle.Rejected m ->
                Format.printf "case %d: rejected by lowering (%s)@." index m
            | Imtp.Fuzz_oracle.Failed f ->
                let c = if no_shrink then c else Imtp.Fuzz_shrink.minimize c in
                let f =
                  match Imtp.Fuzz_oracle.check c with
                  | Imtp.Fuzz_oracle.Failed f -> f
                  | _ -> f
                in
                print_string (Imtp.Fuzz.report_failure index c f);
                exit 1))
    | None ->
        Format.printf "fuzzing: seed=%d cases=%d jobs=%d@." seed cases
          (Imtp.Pool.default_jobs ());
        let progress i =
          if (i + 1) mod 100 = 0 then
            Format.printf "  ... %d/%d cases@.%!" (i + 1) cases
        in
        let outcome =
          Imtp.Fuzz.run ~progress ~shrink:(not no_shrink) ~seed ~cases ()
        in
        print_string (Imtp.Fuzz.summary ~seed outcome);
        if outcome.Imtp.Fuzz.failures <> [] then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ fuzz_seed_arg $ cases_arg $ case_arg $ no_shrink_arg
      $ fuzz_graph_arg $ jobs_arg $ verbose_arg $ trace_arg)

(* --- report ---------------------------------------------------------- *)

let report_cmd =
  let doc =
    "Summarize an observability trace written with --trace: per-span latency \
     percentiles, counters, gauges, histogram quantiles, and the engine \
     cache hit rate.  With --folded, emit flamegraph-friendly folded stacks \
     instead."
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:"JSONL trace file written by 'run'/'tune'/'replay'/'fuzz' --trace.")
  in
  let folded_arg =
    Arg.(
      value & flag
      & info [ "folded" ]
          ~doc:
            "Emit folded stacks — one 'path;to;span <self-time-µs>' line per \
             call path — ready for flamegraph.pl or speedscope.")
  in
  let run file folded =
    match Imtp.Obs.load_jsonl file with
    | Error m ->
        Format.eprintf "error: %s@." m;
        exit 1
    | Ok events ->
        if folded then
          List.iter
            (fun (path, us) -> Format.printf "%s %d@." path us)
            (Imtp.Obs.folded events)
        else Format.printf "%a" Imtp.Obs.pp_events events
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ file_arg $ folded_arg)

(* --- baseline -------------------------------------------------------- *)

let baseline_cmd =
  let doc = "Measure the PrIM, PrIM(E), PrIM+search and SimplePIM baselines." in
  let run name sizes dpus =
    let op = build_op name sizes in
    let config = machine dpus in
    let show label = function
      | Ok s -> Format.printf "%-12s %a@." label Imtp.Stats.pp s
      | Error m -> Format.printf "%-12s unavailable (%s)@." label m
    in
    show "PrIM" (Imtp.Prim.measure config op (Imtp.Prim.default_for op));
    show "PrIM(E)" (Result.map snd (Imtp.Prim.prim_e config op));
    show "PrIM+search" (Result.map snd (Imtp.Prim.grid_search config op));
    show "SimplePIM" (Imtp.Simplepim.measure config op)
  in
  Cmd.v (Cmd.info "baseline" ~doc) Term.(const run $ op_arg $ sizes_arg $ dpus_arg)

(* --- serve ----------------------------------------------------------- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket path.  The daemon creates it mode 0600 and \
           removes it on clean shutdown; clients connect to it.")

let serve_cmd =
  let doc =
    "Run the tuning daemon: one shared engine (memo cache, compiled \
     executors, domain pool) serving run/tune/replay/stats requests over a \
     Unix-domain socket.  The wire format is specified in docs/PROTOCOL.md.  \
     Tune sessions checkpoint to --checkpoint-dir at every generation, so a \
     killed daemon resumes interrupted searches bit-identically."
  in
  let ckpt_dir_arg =
    Arg.(
      value
      & opt string "imtp-checkpoints"
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for tune-session checkpoints (created if missing).  \
             One $(b,<session>.ckpt) per active session; completed sessions \
             delete theirs, interrupted ones leave it for resumption.")
  in
  let max_sessions_arg =
    Arg.(
      value & opt int 2
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Concurrent tune sessions; further requests queue.")
  in
  let queue_limit_arg =
    Arg.(
      value & opt int 16
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Waiting tune requests before new ones are refused with the \
             $(b,busy) error (backpressure).")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ] ~docv:"G"
          ~doc:"Checkpoint period, in search generations.")
  in
  let run socket checkpoint_dir max_sessions queue_limit checkpoint_every dpus
      jobs verbose trace =
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info));
    apply_jobs jobs;
    with_trace trace @@ fun () ->
    let config = machine dpus in
    match
      Imtp.Serve.run ~machine:config
        {
          Imtp.Serve.socket;
          checkpoint_dir;
          max_sessions;
          queue_limit;
          checkpoint_every;
        }
    with
    | Ok () -> ()
    | Error m ->
        Format.eprintf "error: %s@." m;
        exit 1
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ ckpt_dir_arg $ max_sessions_arg
      $ queue_limit_arg $ checkpoint_every_arg $ dpus_arg $ jobs_arg
      $ verbose_arg $ trace_arg)

(* --- client ---------------------------------------------------------- *)

(* Each client subcommand prints the response body as one JSON line —
   the same object the wire carries (docs/PROTOCOL.md) — so scripts
   can pipe it without scraping human-formatted text. *)

let client_fail e =
  Format.eprintf "error: %s@." (Imtp.Serve_client.error_to_string e);
  exit 1

let with_client socket f =
  match Imtp.Serve_client.with_connection ~socket f with
  | Ok body -> print_endline (Imtp.Obs.Json.to_string body)
  | Error e -> client_fail e

let client_run_cmd =
  let doc = "Compile, execute and validate an op on the daemon's engine." in
  let run socket name sizes =
    with_client socket (fun c -> Imtp.Serve_client.run c ~op:name ~sizes)
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ socket_arg $ op_arg $ sizes_arg)

let session_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "session" ] ~docv:"NAME"
        ~doc:
          "Checkpoint session name ([A-Za-z0-9._-]+).  Re-sending a tune \
           with the name of an interrupted session resumes it from its \
           checkpoint.  Derived from op/sizes/seed/trials when omitted.")

let client_tune_cmd =
  let doc =
    "Run a checkpointed tune session on the daemon (queued under its \
     admission control) and print the outcome, including the history \
     digest."
  in
  let run socket name sizes trials seed islands measure_ratio no_cost_model
      session =
    let measure_ratio = if no_cost_model then None else Some measure_ratio in
    with_client socket (fun c ->
        Imtp.Serve_client.tune c
          {
            Imtp.Protocol.op = name;
            sizes;
            trials;
            seed;
            measure_ratio;
            islands;
            session;
          })
  in
  Cmd.v (Cmd.info "tune" ~doc)
    Term.(
      const run $ socket_arg $ op_arg $ sizes_arg $ trials_arg $ seed_arg
      $ islands_arg $ measure_ratio_arg $ no_cost_model_arg $ session_arg)

let client_replay_cmd =
  let doc =
    "Re-measure the best entry of a tuning log through the daemon's shared \
     engine.  The log path is read on the $(i,server's) filesystem."
  in
  let log_pos_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LOG" ~doc:"Server-local tuning log path.")
  in
  let szs =
    Arg.(
      non_empty & pos_right 0 int []
      & info [] ~docv:"SIZES" ~doc:"Dimension extents of the logged operation.")
  in
  let run socket log sizes =
    with_client socket (fun c -> Imtp.Serve_client.replay c ~log ~sizes)
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ socket_arg $ log_pos_arg $ szs)

let client_stats_cmd =
  let doc =
    "Print the daemon's engine/pool/session counters and metrics snapshot."
  in
  let run socket = with_client socket Imtp.Serve_client.stats in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ socket_arg)

let client_shutdown_cmd =
  let doc =
    "Ask the daemon to drain and exit: running searches checkpoint at their \
     next generation boundary and answer interrupted."
  in
  let run socket =
    match
      Imtp.Serve_client.with_connection ~socket (fun c ->
          Result.map (fun () -> Imtp.Obs.Json.Obj []) (Imtp.Serve_client.shutdown c))
    with
    | Ok _ -> print_endline "shutdown requested"
    | Error e -> client_fail e
  in
  Cmd.v (Cmd.info "shutdown" ~doc) Term.(const run $ socket_arg)

let client_cmd =
  let doc = "Talk to a running 'imtp serve' daemon (docs/PROTOCOL.md)." in
  Cmd.group
    (Cmd.info "client" ~doc)
    [
      client_run_cmd;
      client_tune_cmd;
      client_replay_cmd;
      client_stats_cmd;
      client_shutdown_cmd;
    ]

let () =
  let doc = "search-based code generation for in-memory tensor programs" in
  let info = Cmd.info "imtp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            info_cmd;
            lower_cmd;
            codegen_cmd;
            run_cmd;
            tune_cmd;
            graph_cmd;
            replay_cmd;
            baseline_cmd;
            fuzz_cmd;
            report_cmd;
            serve_cmd;
            client_cmd;
          ]))
