(* End-to-end lowering tests: schedules for each operator are lowered
   to TIR, interpreted on the simulated machine, and checked against
   the operator's reference semantics — including misaligned shapes
   (boundary checks) and hierarchical reduction (rfactor). *)

module S = Imtp_schedule.Sched
module Op = Imtp_workload.Op
module Ops = Imtp_workload.Ops
module L = Imtp_lower.Lowering
module T = Imtp_tensor
module P = Imtp_tir.Program

let ceil_div a b = (a + b - 1) / b

(* 1-D elementwise schedule: i -> [dpu][thread][chunk][inner]. *)
let sched_elementwise op ~dpus ~tasklets ~cache_elems =
  let s = S.create op in
  let i = List.hd (S.order s) in
  let n = i.S.extent in
  let chunk = max 1 (ceil_div n (dpus * tasklets * cache_elems)) in
  match S.split s i ~factors:[ tasklets; chunk; cache_elems ] with
  | [ i_dpu; i_th; i_chunk; _i_in ] ->
      S.bind s i_dpu S.Block_x;
      S.bind s i_th S.Thread_x;
      List.iter
        (fun (t, _) ->
          let c = S.cache_read s t in
          S.compute_at s c i_chunk)
        (S.op s).Op.inputs;
      let cw = S.cache_write s (fst (S.op s).Op.output) in
      S.reverse_compute_at s cw i_chunk;
      s
  | _ -> assert false

(* Reduction schedule (RED): i -> [dpu(rfactor)][thread][chunk][inner],
   tasklet-level partial reduction. *)
let sched_reduction op ~dpus ~tasklets ~cache_elems =
  let s = S.create op in
  let i = List.hd (S.order s) in
  let n = i.S.extent in
  let chunk = max 1 (ceil_div n (dpus * tasklets * cache_elems)) in
  match S.split s i ~factors:[ tasklets; chunk; cache_elems ] with
  | [ i_dpu; i_th; i_chunk; _i_in ] ->
      S.bind s i_dpu S.Block_x;
      S.rfactor s i_dpu;
      S.bind s i_th S.Thread_x;
      let ca = S.cache_read s "A" in
      S.compute_at s ca i_chunk;
      let cw = S.cache_write s "C" in
      S.reverse_compute_at s cw i_th;
      s
  | _ -> assert false

(* MTV/GEMV 1-D (PrIM-style): spatial rows over DPUs/tasklets, serial
   reduction with caching; optional 2-D tiling with rfactor. *)
let sched_mv op ~i_dpus ~j_dpus ~tasklets ~rows_per_tasklet ~j_cache
    ~host_threads =
  let s = S.create op in
  let i = List.nth (S.order s) 0 and j = List.nth (S.order s) 1 in
  let i_loops = S.split s i ~factors:[ tasklets; rows_per_tasklet ] in
  let j_loops =
    if j_dpus > 1 then
      let k = (Op.axis (S.op s) "j").Op.extent in
      S.split s j ~factors:[ ceil_div k (j_dpus * j_cache); j_cache ]
    else S.split s j ~factors:[ j_cache ]
  in
  (match i_loops with
  | [ i_dpu; i_th; i_r ] -> (
      S.bind s i_dpu S.Block_x;
      S.bind s i_th S.Thread_x;
      match j_loops with
      | [ j_blk; j_chunk; j_in ] when j_dpus > 1 ->
          ignore j_in;
          S.reorder s [ j_blk; i_th; i_r; j_chunk ];
          S.bind s j_blk S.Block_y;
          S.rfactor s j_blk;
          let ca = S.cache_read s "A" and cb = S.cache_read s "B" in
          S.compute_at s ca j_chunk;
          S.compute_at s cb j_chunk;
          let cw = S.cache_write s "C" in
          S.reverse_compute_at s cw i_r
      | [ j_chunk; j_in ] ->
          ignore j_in;
          let ca = S.cache_read s "A" and cb = S.cache_read s "B" in
          S.compute_at s ca j_chunk;
          S.compute_at s cb j_chunk;
          let cw = S.cache_write s "C" in
          S.reverse_compute_at s cw i_r
      | _ -> assert false)
  | _ -> assert false);
  ignore i_dpus;
  ignore host_threads;
  s

(* MMTV/TTV: batch over Block_x, rows over Block_y + tasklets, serial
   reduction with caching. *)
let sched_batched op ~tasklets ~rows_per_tasklet ~k_cache =
  let s = S.create op in
  let i = List.nth (S.order s) 0
  and j = List.nth (S.order s) 1
  and k = List.nth (S.order s) 2 in
  S.bind s i S.Block_x;
  let j_r =
    match S.split s j ~factors:[ tasklets; rows_per_tasklet ] with
    | [ j_dpu; j_th; j_r ] ->
        S.bind s j_dpu S.Block_y;
        S.bind s j_th S.Thread_x;
        j_r
    | _ -> assert false
  in
  (match S.split s k ~factors:[ k_cache ] with
  | [ k_chunk; _k_in ] ->
      List.iter
        (fun (t, _) ->
          let c = S.cache_read s t in
          S.compute_at s c k_chunk)
        (S.op s).Op.inputs;
      let cw = S.cache_write s (fst (S.op s).Op.output) in
      S.reverse_compute_at s cw j_r
  | _ -> assert false);
  s

let run_and_check ?options op sched =
  let prog = L.lower ?options sched in
  (match P.validate prog with Ok () -> () | Error m -> Alcotest.fail m);
  let inputs = Ops.random_inputs op in
  let outs = Imtp_tir.Eval.run prog ~inputs in
  let got = List.assoc (fst op.Op.output) outs in
  let want = Op.reference op inputs in
  let flat_want =
    (* reference returns shaped output; compare flat contents. *)
    T.Tensor.to_value_list want
  in
  let flat_got = T.Tensor.to_value_list got in
  Alcotest.(check int)
    "output length" (List.length flat_want) (List.length flat_got);
  List.iteri
    (fun idx (w, g) ->
      if not (T.Value.equal w g) then
        Alcotest.failf "%s: output[%d] = %s, expected %s" op.Op.opname idx
          (T.Value.to_string g) (T.Value.to_string w))
    (List.combine flat_want flat_got)

let test_va_aligned () =
  let op = Ops.va 1024 in
  run_and_check op (sched_elementwise op ~dpus:4 ~tasklets:4 ~cache_elems:8)

let test_va_misaligned () =
  let op = Ops.va 1000 in
  run_and_check op (sched_elementwise op ~dpus:4 ~tasklets:4 ~cache_elems:8)

let test_va_single_dpu () =
  let op = Ops.va 64 in
  run_and_check op (sched_elementwise op ~dpus:1 ~tasklets:2 ~cache_elems:4)

let test_geva () =
  let op = Ops.geva ~c:3 ~d:5 513 in
  run_and_check op (sched_elementwise op ~dpus:2 ~tasklets:3 ~cache_elems:16)

let test_red_aligned () =
  let op = Ops.red 1024 in
  run_and_check op (sched_reduction op ~dpus:4 ~tasklets:4 ~cache_elems:8)

let test_red_misaligned () =
  let op = Ops.red 999 in
  run_and_check op (sched_reduction op ~dpus:4 ~tasklets:4 ~cache_elems:8)

let test_mtv_1d () =
  let op = Ops.mtv 32 64 in
  run_and_check op
    (sched_mv op ~i_dpus:8 ~j_dpus:1 ~tasklets:4 ~rows_per_tasklet:1 ~j_cache:16
       ~host_threads:1)

let test_mtv_1d_misaligned () =
  let op = Ops.mtv 30 60 in
  run_and_check op
    (sched_mv op ~i_dpus:8 ~j_dpus:1 ~tasklets:4 ~rows_per_tasklet:1 ~j_cache:16
       ~host_threads:1)

let test_mtv_2d_rfactor () =
  let op = Ops.mtv 32 64 in
  run_and_check op
    (sched_mv op ~i_dpus:8 ~j_dpus:2 ~tasklets:4 ~rows_per_tasklet:1 ~j_cache:8
       ~host_threads:1)

let test_mtv_2d_rfactor_misaligned () =
  let op = Ops.mtv 31 61 in
  run_and_check op
    (sched_mv op ~i_dpus:8 ~j_dpus:2 ~tasklets:4 ~rows_per_tasklet:1 ~j_cache:8
       ~host_threads:1)

let test_gemv_2d () =
  let op = Ops.gemv ~c:7 33 65 in
  run_and_check op
    (sched_mv op ~i_dpus:8 ~j_dpus:2 ~tasklets:4 ~rows_per_tasklet:2 ~j_cache:8
       ~host_threads:2)

let test_ttv () =
  let op = Ops.ttv 4 16 32 in
  run_and_check op (sched_batched op ~tasklets:2 ~rows_per_tasklet:2 ~k_cache:8)

let test_mmtv () =
  let op = Ops.mmtv 4 16 32 in
  run_and_check op (sched_batched op ~tasklets:2 ~rows_per_tasklet:2 ~k_cache:8)

let test_mmtv_misaligned () =
  let op = Ops.mmtv 3 15 31 in
  run_and_check op (sched_batched op ~tasklets:2 ~rows_per_tasklet:2 ~k_cache:8)

let test_options_no_bulk () =
  let op = Ops.va 200 in
  run_and_check op
    ~options:{ L.default_options with L.bulk_transfer = false }
    (sched_elementwise op ~dpus:2 ~tasklets:2 ~cache_elems:8)

let test_options_serial_copy () =
  let op = Ops.va 200 in
  run_and_check op
    ~options:{ L.default_options with L.parallel_transfer = false }
    (sched_elementwise op ~dpus:2 ~tasklets:2 ~cache_elems:8)

let test_options_host_parallel_reduce () =
  let op = Ops.mtv 32 64 in
  run_and_check op
    ~options:{ L.default_options with L.host_reduce_threads = 8 }
    (sched_mv op ~i_dpus:8 ~j_dpus:2 ~tasklets:4 ~rows_per_tasklet:1 ~j_cache:8
       ~host_threads:8)

let test_rejects_missing_cache () =
  let op = Ops.va 64 in
  let s = S.create op in
  let i = List.hd (S.order s) in
  (match S.split s i ~factors:[ 4 ] with
  | [ o; _ ] -> S.bind s o S.Block_x
  | _ -> assert false);
  match L.lower s with
  | exception L.Lower_error _ -> ()
  | _ -> Alcotest.fail "missing caches accepted"

let test_rejects_reduction_block_without_rfactor () =
  let op = Ops.mtv 16 32 in
  let s = S.create op in
  let j = List.nth (S.order s) 1 in
  (match S.split s j ~factors:[ 8 ] with
  | [ j_dpu; _ ] -> S.bind s j_dpu S.Block_x
  | _ -> assert false);
  match L.lower s with
  | exception L.Lower_error _ -> ()
  | _ -> Alcotest.fail "reduction block without rfactor accepted"

let test_cost_of_lowered () =
  let op = Ops.mtv 64 128 in
  let s =
    sched_mv op ~i_dpus:8 ~j_dpus:2 ~tasklets:4 ~rows_per_tasklet:1 ~j_cache:8
      ~host_threads:1
  in
  let prog = L.lower s in
  let stats = Imtp_tir.Cost.measure Imtp_upmem.Config.default prog in
  Alcotest.(check bool) "positive total" true (Imtp_upmem.Stats.total_s stats > 0.);
  Alcotest.(check int) "grid" 32 stats.Imtp_upmem.Stats.dpus_used

let prop_va_any_shape =
  QCheck2.Test.make ~name:"lowered VA correct for any shape/tiling" ~count:40
    QCheck2.Gen.(
      quad (int_range 1 600) (int_range 1 4) (int_range 1 4) (int_range 1 16))
    (fun (n, dpus, tasklets, cache) ->
      let op = Imtp_workload.Ops.va n in
      let s = sched_elementwise op ~dpus ~tasklets ~cache_elems:cache in
      let prog = L.lower s in
      let inputs = Ops.random_inputs ~seed:n op in
      let outs = Imtp_tir.Eval.run prog ~inputs in
      let got = List.assoc "C" outs in
      let want = Op.reference op inputs in
      T.Tensor.to_value_list got = T.Tensor.to_value_list want)

let prop_mtv_any_shape =
  QCheck2.Test.make ~name:"lowered MTV (2-D rfactor) correct for any shape"
    ~count:25
    QCheck2.Gen.(
      quad (int_range 1 40) (int_range 1 40) (int_range 1 3) (int_range 1 3))
    (fun (n, k, jd, t) ->
      let op = Imtp_workload.Ops.mtv n k in
      let s =
        sched_mv op ~i_dpus:4 ~j_dpus:(1 + jd) ~tasklets:t ~rows_per_tasklet:1
          ~j_cache:4 ~host_threads:1
      in
      let prog = L.lower s in
      let inputs = Ops.random_inputs ~seed:(n + k) op in
      let outs = Imtp_tir.Eval.run prog ~inputs in
      List.assoc "C" outs |> T.Tensor.to_value_list
      = T.Tensor.to_value_list (Op.reference op inputs))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "lowering"
    [
      ( "elementwise",
        [
          Alcotest.test_case "va aligned" `Quick test_va_aligned;
          Alcotest.test_case "va misaligned" `Quick test_va_misaligned;
          Alcotest.test_case "va single dpu" `Quick test_va_single_dpu;
          Alcotest.test_case "geva" `Quick test_geva;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "red aligned" `Quick test_red_aligned;
          Alcotest.test_case "red misaligned" `Quick test_red_misaligned;
        ] );
      ( "matrix-vector",
        [
          Alcotest.test_case "mtv 1d" `Quick test_mtv_1d;
          Alcotest.test_case "mtv 1d misaligned" `Quick test_mtv_1d_misaligned;
          Alcotest.test_case "mtv 2d rfactor" `Quick test_mtv_2d_rfactor;
          Alcotest.test_case "mtv 2d misaligned" `Quick
            test_mtv_2d_rfactor_misaligned;
          Alcotest.test_case "gemv 2d" `Quick test_gemv_2d;
        ] );
      ( "batched",
        [
          Alcotest.test_case "ttv" `Quick test_ttv;
          Alcotest.test_case "mmtv" `Quick test_mmtv;
          Alcotest.test_case "mmtv misaligned" `Quick test_mmtv_misaligned;
        ] );
      ( "options",
        [
          Alcotest.test_case "no bulk" `Quick test_options_no_bulk;
          Alcotest.test_case "serial copy" `Quick test_options_serial_copy;
          Alcotest.test_case "parallel host reduce" `Quick
            test_options_host_parallel_reduce;
        ] );
      ( "rejection+cost",
        [
          Alcotest.test_case "missing cache" `Quick test_rejects_missing_cache;
          Alcotest.test_case "reduction block needs rfactor" `Quick
            test_rejects_reduction_block_without_rfactor;
          Alcotest.test_case "cost" `Quick test_cost_of_lowered;
        ] );
      ("properties", q [ prop_va_any_shape; prop_mtv_any_shape ]);
    ]
