(* Integration tests through the public Imtp facade: autotune →
   execute → validate, manual-schedule compile, and the qualitative
   performance relationships the paper's evaluation is built on. *)

let cfg = Imtp.default_config

let validate op program =
  let inputs = Imtp.Ops.random_inputs op in
  let outs = Imtp.execute ~inputs program op in
  let got = List.assoc (fst op.Imtp.Op.output) outs in
  let want = Imtp.Op.reference op inputs in
  Imtp.Tensor.to_value_list got = Imtp.Tensor.to_value_list want

let test_facade_autotune_va () =
  match Imtp.autotune ~trials:24 ~seed:5 (Imtp.Ops.va 50_000) with
  | Error m -> Alcotest.fail m
  | Ok r ->
      Alcotest.(check bool) "correct" true
        (validate (Imtp.Ops.va 50_000) r.Imtp.Tuner.program)

let test_facade_compile_manual_schedule () =
  let op = Imtp.Ops.mtv 48 96 in
  let p =
    { Imtp.Sketch.default_params with Imtp.Sketch.spatial_dpus = 8; tasklets = 4; cache_elems = 8 }
  in
  let sched = Imtp.Sketch.instantiate op p in
  let prog = Imtp.compile sched in
  Alcotest.(check bool) "correct" true (validate op prog);
  let stats = Imtp.estimate prog in
  Alcotest.(check bool) "timed" true (Imtp.Stats.total_s stats > 0.)

let test_tuned_beats_prim_on_mtv () =
  (* The headline qualitative result (§7.1): IMTP outperforms PrIM on
     matrix-vector workloads via 2-D tiling + hierarchical reduction. *)
  let op = Imtp.Ops.mtv 1024 2048 in
  let prim =
    match Imtp.Prim.measure cfg op Imtp.Prim.default with
    | Ok s -> s
    | Error m -> failwith m
  in
  match Imtp.autotune ~trials:64 ~seed:17 op with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let sp = Imtp.Stats.speedup ~baseline:prim r.Imtp.Tuner.stats in
      Alcotest.(check bool) (Printf.sprintf "speedup %.2fx > 1" sp) true (sp > 1.)

let test_tuned_at_least_matches_grid_search () =
  (* IMTP's joint space includes PrIM+search's space, so with enough
     trials it should not lose by much (paper: 1.67x average win). *)
  let op = Imtp.Ops.mtv 512 512 in
  let grid =
    match
      Imtp.Prim.grid_search ~dpu_choices:[ 256; 512 ] ~tasklet_choices:[ 8; 16 ]
        ~cache_choices:[ 64; 256; 1024 ] cfg op
    with
    | Ok (_, s) -> s
    | Error m -> failwith m
  in
  match Imtp.autotune ~trials:96 ~seed:23 op with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let ratio =
        Imtp.Stats.total_s r.Imtp.Tuner.stats /. Imtp.Stats.total_s grid
      in
      Alcotest.(check bool)
        (Printf.sprintf "tuned/grid = %.2f <= 1.1" ratio)
        true (ratio <= 1.1)

let test_boundary_checks_cost_fig3 () =
  (* Fig. 3: eliminating redundant boundary checks speeds up the GEMV
     kernel (paper: up to 23.7%). Compare kernel-only time of the
     unoptimized vs fully optimized misaligned GEMV. *)
  let op = Imtp.Ops.gemv ~c:3 1000 2000 in
  let p =
    { Imtp.Sketch.default_params with Imtp.Sketch.spatial_dpus = 125; tasklets = 8; cache_elems = 16 }
  in
  let sched () = Imtp.Sketch.instantiate op p in
  let raw = Imtp.Lowering.lower (sched ()) in
  let opt = Imtp.Passes.run cfg raw in
  let kc prog =
    Imtp.Cost.kernel_cycles cfg prog (List.hd prog.Imtp.Program.kernels)
  in
  let r = kc raw and o = kc opt in
  Alcotest.(check bool)
    (Printf.sprintf "optimized kernel faster (%.0f vs %.0f cycles)" o r)
    true (o < r)

let test_small_tensor_prefers_fewer_dpus () =
  (* Fig. 4(c): for small tensors, fewer DPUs than the maximum can be
     better. Check the cost ordering directly. *)
  let op = Imtp.Ops.mtv 256 256 in
  let at ndpus =
    match Imtp.Prim.measure cfg op { Imtp.Prim.default with Imtp.Prim.ndpus } with
    | Ok s -> Imtp.Stats.total_s s
    | Error m -> failwith m
  in
  let t256 = at 256 and t2048 = at 2048 in
  Alcotest.(check bool)
    (Printf.sprintf "256 dpus (%.3fms) <= 2048 dpus (%.3fms)" (t256 *. 1e3)
       (t2048 *. 1e3))
    true (t256 <= t2048 *. 1.2)

let test_gptj_layer_end_to_end () =
  (* A scaled-down attention-shaped MMTV runs correctly through the
     whole stack. *)
  let op = Imtp.Ops.mmtv 16 64 256 in
  match Imtp.autotune ~trials:24 ~seed:31 op with
  | Error m -> Alcotest.fail m
  | Ok r -> Alcotest.(check bool) "correct" true (validate op r.Imtp.Tuner.program)

let test_float32_workload () =
  let op = Imtp.Ops.mtv ~dtype:Imtp.Dtype.F32 32 64 in
  let p =
    { Imtp.Sketch.default_params with Imtp.Sketch.spatial_dpus = 8; tasklets = 4; cache_elems = 8 }
  in
  let prog = Imtp.compile (Imtp.Sketch.instantiate op p) in
  let inputs = Imtp.Ops.random_inputs op in
  let outs = Imtp.execute ~inputs prog op in
  let got = List.assoc "C" outs in
  let want = Imtp.Op.reference op inputs in
  (* float32 reduction order differs between reference and the tiled
     kernel; compare approximately. *)
  let close =
    Imtp.Tensor.max_abs_diff got
      (Imtp.Tensor.init (Imtp.Tensor.dtype got)
         (Imtp.Tensor.shape got)
         (fun i -> Imtp.Tensor.get want [| i.(0) |]))
    < 1e-2
  in
  Alcotest.(check bool) "approximately equal" true close;
  (* float kernels must cost more issue slots than int kernels *)
  let op_i = Imtp.Ops.mtv 32 64 in
  let prog_i = Imtp.compile (Imtp.Sketch.instantiate op_i p) in
  let kc pr = Imtp.Cost.kernel_cycles cfg pr (List.hd pr.Imtp.Program.kernels) in
  Alcotest.(check bool) "f32 slower than i32" true (kc prog > kc prog_i)

let () =
  Alcotest.run "integration"
    [
      ( "facade",
        [
          Alcotest.test_case "autotune va" `Quick test_facade_autotune_va;
          Alcotest.test_case "manual compile" `Quick
            test_facade_compile_manual_schedule;
          Alcotest.test_case "float32" `Quick test_float32_workload;
        ] );
      ( "paper relationships",
        [
          Alcotest.test_case "beats prim (mtv)" `Slow test_tuned_beats_prim_on_mtv;
          Alcotest.test_case "matches grid search" `Slow
            test_tuned_at_least_matches_grid_search;
          Alcotest.test_case "boundary checks cost (fig3)" `Quick
            test_boundary_checks_cost_fig3;
          Alcotest.test_case "small tensors fewer dpus (fig4c)" `Quick
            test_small_tensor_prefers_fewer_dpus;
          Alcotest.test_case "gptj mmtv" `Slow test_gptj_layer_end_to_end;
        ] );
    ]
