(* Unit and property tests for the tensor substrate. *)

module T = Imtp_tensor

let shape l = T.Shape.create l

let test_shape_basics () =
  let s = shape [ 3; 4; 5 ] in
  Alcotest.(check int) "rank" 3 (T.Shape.rank s);
  Alcotest.(check int) "size" 60 (T.Shape.size s);
  Alcotest.(check (list int)) "dims" [ 3; 4; 5 ] (T.Shape.dims s);
  Alcotest.(check string) "to_string" "3x4x5" (T.Shape.to_string s)

let test_shape_strides () =
  let s = shape [ 3; 4; 5 ] in
  Alcotest.(check (array int)) "strides" [| 20; 5; 1 |] (T.Shape.strides s)

let test_shape_linearize () =
  let s = shape [ 3; 4; 5 ] in
  Alcotest.(check int) "origin" 0 (T.Shape.linearize s [| 0; 0; 0 |]);
  Alcotest.(check int) "last" 59 (T.Shape.linearize s [| 2; 3; 4 |]);
  Alcotest.(check int) "mixed" 27 (T.Shape.linearize s [| 1; 1; 2 |])

let test_shape_delinearize_roundtrip () =
  let s = shape [ 3; 4; 5 ] in
  for off = 0 to 59 do
    let idx = T.Shape.delinearize s off in
    Alcotest.(check int) "roundtrip" off (T.Shape.linearize s idx)
  done

let test_shape_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Shape.of_array: empty shape")
    (fun () -> ignore (shape []));
  Alcotest.check_raises "nonpos"
    (Invalid_argument "Shape.of_array: non-positive dim") (fun () ->
      ignore (shape [ 3; 0 ]))

let test_shape_in_bounds () =
  let s = shape [ 2; 3 ] in
  Alcotest.(check bool) "ok" true (T.Shape.in_bounds s [| 1; 2 |]);
  Alcotest.(check bool) "over" false (T.Shape.in_bounds s [| 1; 3 |]);
  Alcotest.(check bool) "neg" false (T.Shape.in_bounds s [| -1; 0 |]);
  Alcotest.(check bool) "rank" false (T.Shape.in_bounds s [| 1 |])

let test_shape_iter_order () =
  let s = shape [ 2; 2 ] in
  let seen = ref [] in
  T.Shape.iter s (fun idx -> seen := Array.to_list idx :: !seen);
  Alcotest.(check (list (list int)))
    "row major" [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ] (List.rev !seen)

let test_dtype () =
  Alcotest.(check int) "i32 bytes" 4 (T.Dtype.size_in_bytes T.Dtype.I32);
  Alcotest.(check int) "wrap pos" 2147483647 (T.Dtype.wrap_i32 2147483647);
  Alcotest.(check int) "wrap over" (-2147483648) (T.Dtype.wrap_i32 2147483648);
  Alcotest.(check int) "wrap neg" (-1) (T.Dtype.wrap_i32 (-1));
  Alcotest.(check (float 0.))
    "f32 rounding" 0.100000001490116119
    (T.Dtype.round_f32 0.1)

let test_value_arith () =
  let open T.Value in
  Alcotest.(check bool) "add" true (equal (add (Int 2) (Int 3)) (Int 5));
  Alcotest.(check bool) "mul wrap" true
    (equal (mul (Int 65536) (Int 65536)) (Int 0));
  Alcotest.(check bool) "div trunc" true (equal (div (Int (-7)) (Int 2)) (Int (-3)));
  Alcotest.(check bool) "mixed promotes" true
    (match add (Int 1) (Float 0.5) with Float _ -> true | Int _ -> false);
  Alcotest.(check bool) "min" true (equal (min_v (Int 3) (Int (-1))) (Int (-1)));
  Alcotest.(check bool) "max" true (equal (max_v (Int 3) (Int (-1))) (Int 3));
  Alcotest.(check bool) "neg" true (equal (neg (Int 5)) (Int (-5)))

let test_value_div_by_zero () =
  Alcotest.check_raises "div0" Division_by_zero (fun () ->
      ignore (T.Value.div (T.Value.Int 1) (T.Value.Int 0)))

let test_tensor_get_set () =
  let t = T.Tensor.create T.Dtype.I32 (shape [ 2; 3 ]) in
  T.Tensor.set t [| 1; 2 |] (T.Value.Int 42);
  Alcotest.(check bool) "set/get" true
    (T.Value.equal (T.Tensor.get t [| 1; 2 |]) (T.Value.Int 42));
  Alcotest.(check bool) "other zero" true
    (T.Value.equal (T.Tensor.get t [| 0; 0 |]) (T.Value.Int 0))

let test_tensor_init_copy () =
  let t =
    T.Tensor.init T.Dtype.I32 (shape [ 4 ]) (fun i -> T.Value.Int (i.(0) * 10))
  in
  let u = T.Tensor.copy t in
  T.Tensor.set u [| 0 |] (T.Value.Int 99);
  Alcotest.(check bool) "copy is deep" true
    (T.Value.equal (T.Tensor.get t [| 0 |]) (T.Value.Int 0));
  Alcotest.(check bool) "copy holds" true
    (T.Value.equal (T.Tensor.get u [| 3 |]) (T.Value.Int 30))

let test_tensor_random_deterministic () =
  let a = T.Tensor.random ~seed:5 T.Dtype.I32 (shape [ 100 ]) in
  let b = T.Tensor.random ~seed:5 T.Dtype.I32 (shape [ 100 ]) in
  let c = T.Tensor.random ~seed:6 T.Dtype.I32 (shape [ 100 ]) in
  Alcotest.(check bool) "same seed equal" true (T.Tensor.equal a b);
  Alcotest.(check bool) "diff seed differs" false (T.Tensor.equal a c)

let test_tensor_close () =
  let a = T.Tensor.init T.Dtype.F32 (shape [ 3 ]) (fun _ -> T.Value.Float 1.0) in
  let b =
    T.Tensor.init T.Dtype.F32 (shape [ 3 ]) (fun _ -> T.Value.Float 1.00001)
  in
  Alcotest.(check bool) "close" true (T.Tensor.close a b);
  let c = T.Tensor.init T.Dtype.F32 (shape [ 3 ]) (fun _ -> T.Value.Float 2.0) in
  Alcotest.(check bool) "not close" false (T.Tensor.close a c)

let test_set_flat_conversion () =
  let t = T.Tensor.create T.Dtype.I32 (shape [ 1 ]) in
  T.Tensor.set_flat t 0 (T.Value.Float 3.7);
  Alcotest.(check bool) "float->int truncates" true
    (T.Value.equal (T.Tensor.get_flat t 0) (T.Value.Int 3))

(* Reference implementations against hand-computed examples. *)

let i32 l = T.Tensor.init T.Dtype.I32 (shape [ List.length l ]) (fun i -> T.Value.Int (List.nth l i.(0)))

let test_ref_va () =
  let c = T.Reference.va (i32 [ 1; 2; 3 ]) (i32 [ 10; 20; 30 ]) in
  Alcotest.(check (list string)) "va" [ "11"; "22"; "33" ]
    (List.map T.Value.to_string (T.Tensor.to_value_list c))

let test_ref_geva () =
  let c =
    T.Reference.geva (T.Value.Int 2) (T.Value.Int 3) (i32 [ 1; 2 ]) (i32 [ 10; 20 ])
  in
  Alcotest.(check (list string)) "geva" [ "32"; "64" ]
    (List.map T.Value.to_string (T.Tensor.to_value_list c))

let test_ref_red () =
  Alcotest.(check string) "red" "6"
    (T.Value.to_string (T.Reference.red (i32 [ 1; 2; 3 ])))

let test_ref_mtv () =
  let a =
    T.Tensor.init T.Dtype.I32 (shape [ 2; 3 ]) (fun i ->
        T.Value.Int ((i.(0) * 3) + i.(1) + 1))
  in
  (* A = [[1;2;3];[4;5;6]], B = [1;1;1] -> C = [6;15] *)
  let c = T.Reference.mtv a (i32 [ 1; 1; 1 ]) in
  Alcotest.(check (list string)) "mtv" [ "6"; "15" ]
    (List.map T.Value.to_string (T.Tensor.to_value_list c))

let test_ref_gemv_scale () =
  let a =
    T.Tensor.init T.Dtype.I32 (shape [ 2; 2 ]) (fun i ->
        T.Value.Int ((i.(0) * 2) + i.(1)))
  in
  let c = T.Reference.gemv (T.Value.Int 10) a (i32 [ 1; 2 ]) in
  (* rows [0;1],[2;3]; dot with [1;2] = 2, 8; x10 = 20, 80 *)
  Alcotest.(check (list string)) "gemv" [ "20"; "80" ]
    (List.map T.Value.to_string (T.Tensor.to_value_list c))

let test_ref_ttv () =
  let a =
    T.Tensor.init T.Dtype.I32 (shape [ 2; 2; 2 ]) (fun i ->
        T.Value.Int ((i.(0) * 4) + (i.(1) * 2) + i.(2)))
  in
  let c = T.Reference.ttv a (i32 [ 1; 1 ]) in
  Alcotest.(check (list string)) "ttv" [ "1"; "5"; "9"; "13" ]
    (List.map T.Value.to_string (T.Tensor.to_value_list c))

let test_ref_mmtv () =
  let a =
    T.Tensor.init T.Dtype.I32 (shape [ 2; 2; 2 ]) (fun i ->
        T.Value.Int ((i.(0) * 4) + (i.(1) * 2) + i.(2)))
  in
  let b =
    T.Tensor.init T.Dtype.I32 (shape [ 2; 2 ]) (fun i ->
        T.Value.Int (if i.(0) = 0 then 1 else 2))
  in
  (* batch 0 rows dot [1;1]: 1, 5; batch 1 rows dot [2;2]: 18, 26 *)
  let c = T.Reference.mmtv a b in
  Alcotest.(check (list string)) "mmtv" [ "1"; "5"; "18"; "26" ]
    (List.map T.Value.to_string (T.Tensor.to_value_list c))

(* Property tests. *)

let prop_linearize_bijective =
  QCheck2.Test.make ~name:"shape linearize bijective"
    QCheck2.Gen.(
      pair (list_size (int_range 1 3) (int_range 1 6)) (int_range 0 10_000))
    (fun (dims, seed) ->
      let s = shape dims in
      let off = seed mod T.Shape.size s in
      T.Shape.linearize s (T.Shape.delinearize s off) = off)

let prop_va_commutes =
  QCheck2.Test.make ~name:"va commutative"
    QCheck2.Gen.(int_range 1 64)
    (fun n ->
      let a = T.Tensor.random ~seed:n T.Dtype.I32 (shape [ n ]) in
      let b = T.Tensor.random ~seed:(n + 1) T.Dtype.I32 (shape [ n ]) in
      T.Tensor.equal (T.Reference.va a b) (T.Reference.va b a))

let prop_red_linear =
  QCheck2.Test.make ~name:"red of va = sum of reds"
    QCheck2.Gen.(int_range 1 64)
    (fun n ->
      let a = T.Tensor.random ~seed:n T.Dtype.I32 (shape [ n ]) in
      let b = T.Tensor.random ~seed:(n + 7) T.Dtype.I32 (shape [ n ]) in
      T.Value.equal
        (T.Reference.red (T.Reference.va a b))
        (T.Value.add (T.Reference.red a) (T.Reference.red b)))

let prop_mtv_linearity =
  QCheck2.Test.make ~name:"mtv distributes over vector addition"
    QCheck2.Gen.(pair (int_range 1 8) (int_range 1 8))
    (fun (n, k) ->
      let a = T.Tensor.random ~seed:3 T.Dtype.I32 (shape [ n; k ]) in
      let x = T.Tensor.random ~seed:4 T.Dtype.I32 (shape [ k ]) in
      let y = T.Tensor.random ~seed:5 T.Dtype.I32 (shape [ k ]) in
      T.Tensor.equal
        (T.Reference.mtv a (T.Reference.va x y))
        (T.Reference.va (T.Reference.mtv a x) (T.Reference.mtv a y)))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "tensor"
    [
      ( "shape",
        [
          Alcotest.test_case "basics" `Quick test_shape_basics;
          Alcotest.test_case "strides" `Quick test_shape_strides;
          Alcotest.test_case "linearize" `Quick test_shape_linearize;
          Alcotest.test_case "delinearize roundtrip" `Quick
            test_shape_delinearize_roundtrip;
          Alcotest.test_case "invalid" `Quick test_shape_invalid;
          Alcotest.test_case "in_bounds" `Quick test_shape_in_bounds;
          Alcotest.test_case "iter order" `Quick test_shape_iter_order;
        ] );
      ( "dtype+value",
        [
          Alcotest.test_case "dtype" `Quick test_dtype;
          Alcotest.test_case "value arith" `Quick test_value_arith;
          Alcotest.test_case "div by zero" `Quick test_value_div_by_zero;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "get/set" `Quick test_tensor_get_set;
          Alcotest.test_case "init/copy" `Quick test_tensor_init_copy;
          Alcotest.test_case "random deterministic" `Quick
            test_tensor_random_deterministic;
          Alcotest.test_case "close" `Quick test_tensor_close;
          Alcotest.test_case "flat conversion" `Quick test_set_flat_conversion;
        ] );
      ( "reference",
        [
          Alcotest.test_case "va" `Quick test_ref_va;
          Alcotest.test_case "geva" `Quick test_ref_geva;
          Alcotest.test_case "red" `Quick test_ref_red;
          Alcotest.test_case "mtv" `Quick test_ref_mtv;
          Alcotest.test_case "gemv" `Quick test_ref_gemv_scale;
          Alcotest.test_case "ttv" `Quick test_ref_ttv;
          Alcotest.test_case "mmtv" `Quick test_ref_mmtv;
        ] );
      ( "properties",
        q
          [
            prop_linearize_bijective;
            prop_va_commutes;
            prop_red_linear;
            prop_mtv_linearity;
          ] );
    ]
