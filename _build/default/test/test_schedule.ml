(* Tests for the schedule primitives: split arithmetic, reorder
   semantics, binding rules, caches, rfactor. *)

module S = Imtp_schedule.Sched
module Ops = Imtp_workload.Ops

let mk () = S.create (Ops.va 1024)
let hd s = List.hd (S.order s)

let extents s = List.map (fun (l : S.loop) -> l.S.extent) (S.order s)
let strides s = List.map (fun (l : S.loop) -> l.S.stride) (S.order s)

let test_create () =
  let s = mk () in
  Alcotest.(check (list int)) "one loop" [ 1024 ] (extents s);
  Alcotest.(check (list int)) "unit stride" [ 1 ] (strides s)

let test_split_exact () =
  let s = mk () in
  let _ = S.split s (hd s) ~factors:[ 16; 4 ] in
  Alcotest.(check (list int)) "extents" [ 16; 16; 4 ] (extents s);
  Alcotest.(check (list int)) "strides" [ 64; 4; 1 ] (strides s);
  Alcotest.(check int) "covered" 1024 (S.covered_extent s "i")

let test_split_misaligned () =
  let s = S.create (Ops.va 1000) in
  let _ = S.split s (hd s) ~factors:[ 16; 4 ] in
  (* outer = ceil(1000/64) = 16; covered 1024 > 1000 *)
  Alcotest.(check (list int)) "extents" [ 16; 16; 4 ] (extents s);
  Alcotest.(check int) "covered" 1024 (S.covered_extent s "i")

let test_split_nested () =
  let s = mk () in
  let news = S.split s (hd s) ~factors:[ 64 ] in
  let inner = List.nth news 1 in
  let _ = S.split s inner ~factors:[ 8 ] in
  Alcotest.(check (list int)) "extents" [ 16; 8; 8 ] (extents s);
  Alcotest.(check (list int)) "strides" [ 64; 8; 1 ] (strides s)

let test_split_invalid () =
  let s = mk () in
  (match S.split s (hd s) ~factors:[ 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero factor accepted");
  let stale = hd s in
  let _ = S.split s stale ~factors:[ 4 ] in
  match S.split s stale ~factors:[ 2 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stale loop accepted"

let test_reorder_subset () =
  let s = mk () in
  let news = S.split s (hd s) ~factors:[ 16; 4 ] in
  match news with
  | [ a; b; c ] ->
      S.reorder s [ c; b ];
      let names = List.map (fun (l : S.loop) -> l.S.lid) (S.order s) in
      Alcotest.(check (list int)) "order" [ a.S.lid; c.S.lid; b.S.lid ] names
  | _ -> Alcotest.fail "expected three loops"

let test_reorder_duplicate_rejected () =
  let s = mk () in
  let l = hd s in
  match S.reorder s [ l; l ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate accepted"

let test_bind_rules () =
  let s = mk () in
  let news = S.split s (hd s) ~factors:[ 16; 4 ] in
  let a = List.nth news 0 and b = List.nth news 1 in
  S.bind s a S.Block_x;
  (match S.bind s b S.Block_x with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate binding accepted");
  S.bind s b S.Thread_x;
  Alcotest.(check int) "grid" 16 (S.grid_dpus s);
  Alcotest.(check int) "tasklets" 16 (S.tasklets s);
  match S.unroll s a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "re-annotating a bound loop accepted"

let test_loops_of_axis_sorted () =
  let s = mk () in
  let news = S.split s (hd s) ~factors:[ 16; 4 ] in
  S.reorder s [ List.nth news 2; List.nth news 0 ];
  let segs = S.loops_of_axis s "i" in
  let strides = List.map (fun (l : S.loop) -> l.S.stride) segs in
  Alcotest.(check (list int)) "stride desc regardless of order" [ 64; 4; 1 ] strides

let test_caches () =
  let s = mk () in
  let news = S.split s (hd s) ~factors:[ 16; 4 ] in
  let mid = List.nth news 1 in
  let ca = S.cache_read s "A" in
  let cc = S.cache_write s "C" in
  S.compute_at s ca mid;
  S.reverse_compute_at s cc mid;
  Alcotest.(check int) "two caches" 2 (List.length (S.caches s));
  (match S.cache_read s "A" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate cache accepted");
  (match S.cache_read s "Z" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown tensor accepted");
  match S.compute_at s cc mid with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "compute_at on write cache accepted"

let test_rfactor_rules () =
  let s = S.create (Ops.mtv 64 128) in
  let j = List.nth (S.order s) 1 in
  let i = List.nth (S.order s) 0 in
  (match S.rfactor s i with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rfactor on spatial accepted");
  let news = S.split s j ~factors:[ 32 ] in
  let j_dpu = List.nth news 0 in
  S.rfactor s j_dpu;
  (match S.rfactor_loop s with
  | Some l -> Alcotest.(check int) "marked" j_dpu.S.lid l.S.lid
  | None -> Alcotest.fail "rfactor not recorded");
  match S.rfactor s j_dpu with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double rfactor accepted"

let test_parallel () =
  let s = mk () in
  let l = hd s in
  S.parallel s l ~threads:8;
  match (List.hd (S.order s)).S.annot with
  | S.Host_parallel 8 -> ()
  | _ -> Alcotest.fail "parallel annotation missing"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_describe () =
  let s = mk () in
  let news = S.split s (hd s) ~factors:[ 4 ] in
  S.bind s (List.hd news) S.Block_x;
  Alcotest.(check bool) "mentions blockIdx" true
    (contains (S.describe s) "blockIdx.x")

let test_trace_records_primitives () =
  let s = S.create (Ops.mtv 64 128) in
  let i = List.nth (S.order s) 0 and j = List.nth (S.order s) 1 in
  (match S.split s i ~factors:[ 4; 2 ] with
  | [ i_dpu; i_th; _ ] ->
      S.bind s i_dpu S.Block_x;
      S.bind s i_th S.Thread_x
  | _ -> assert false);
  (match S.split s j ~factors:[ 8 ] with
  | [ j_chunk; j_in ] ->
      let ca = S.cache_read s "A" in
      S.compute_at s ca j_chunk;
      S.unroll s j_in
  | _ -> assert false);
  let tr = S.trace s in
  Alcotest.(check int) "seven primitives" 7 (List.length tr);
  Alcotest.(check bool) "split recorded" true
    (contains (List.nth tr 0) "sch.split(i, factors=[4, 2])");
  Alcotest.(check bool) "bind recorded" true
    (contains (String.concat "\n" tr) "sch.bind(io, \"blockIdx.x\")");
  Alcotest.(check bool) "compute_at recorded" true
    (contains (String.concat "\n" tr) "sch.compute_at(cache_A, jo)");
  Alcotest.(check bool) "unroll recorded" true
    (contains (String.concat "\n" tr) "sch.unroll(j0)")

let prop_split_preserves_coverage =
  QCheck2.Test.make ~name:"split covers at least the axis"
    QCheck2.Gen.(triple (int_range 1 2000) (int_range 1 32) (int_range 1 32))
    (fun (n, f1, f2) ->
      let s = S.create (Imtp_workload.Ops.va n) in
      let _ = S.split s (List.hd (S.order s)) ~factors:[ f1; f2 ] in
      let covered = S.covered_extent s "i" in
      covered >= n && covered < n + (f1 * f2))

let prop_split_stride_product =
  QCheck2.Test.make ~name:"split strides consistent"
    QCheck2.Gen.(pair (int_range 1 2000) (int_range 1 64))
    (fun (n, f) ->
      let s = S.create (Imtp_workload.Ops.va n) in
      let news = S.split s (List.hd (S.order s)) ~factors:[ f ] in
      match news with
      | [ outer; inner ] -> outer.S.stride = f && inner.S.stride = 1
      | _ -> false)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "schedule"
    [
      ( "split",
        [
          Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "exact" `Quick test_split_exact;
          Alcotest.test_case "misaligned" `Quick test_split_misaligned;
          Alcotest.test_case "nested" `Quick test_split_nested;
          Alcotest.test_case "invalid" `Quick test_split_invalid;
        ] );
      ( "reorder+bind",
        [
          Alcotest.test_case "reorder subset" `Quick test_reorder_subset;
          Alcotest.test_case "reorder duplicate" `Quick
            test_reorder_duplicate_rejected;
          Alcotest.test_case "bind rules" `Quick test_bind_rules;
          Alcotest.test_case "axis segs sorted" `Quick test_loops_of_axis_sorted;
        ] );
      ( "caches+rfactor",
        [
          Alcotest.test_case "caches" `Quick test_caches;
          Alcotest.test_case "rfactor" `Quick test_rfactor_rules;
          Alcotest.test_case "parallel" `Quick test_parallel;
          Alcotest.test_case "describe" `Quick test_describe;
          Alcotest.test_case "trace" `Quick test_trace_records_primitives;
        ] );
      ("properties", q [ prop_split_preserves_coverage; prop_split_stride_product ]);
    ]
