(* Robustness and accounting tests: pass idempotence, transfer byte
   accounting, weight residency, failure injection, and cross-checks
   between the functional interpreter and the cost estimator. *)

module Sk = Imtp_autotune.Sketch
module L = Imtp_lower.Lowering
module Pl = Imtp_passes.Pipeline
module Ops = Imtp_workload.Ops
module Op = Imtp_workload.Op
module U = Imtp_upmem
module T = Imtp_tensor
module St = Imtp_tir.Stmt
module P = Imtp_tir.Program

let cfg = U.Config.default

let build ?(passes = Pl.all_on) op params =
  let raw =
    L.lower ~options:(Sk.lower_options params) (Sk.instantiate op params)
  in
  Pl.run ~config:passes cfg raw

let params ?(sd = 8) ?(rd = 1) ?(t = 4) ?(c = 8) () =
  {
    Sk.default_params with
    Sk.spatial_dpus = sd;
    reduction_dpus = rd;
    tasklets = t;
    cache_elems = c;
  }

(* --- pass idempotence --------------------------------------------------- *)

let kernel_string prog =
  Imtp_tir.Printer.stmt_to_string (List.hd prog.P.kernels).P.body

let test_passes_idempotent () =
  List.iter
    (fun (name, op, p) ->
      let once = build op p in
      let twice = Pl.run cfg once in
      Alcotest.(check string) (name ^ " idempotent") (kernel_string once)
        (kernel_string twice))
    [
      ("va", Ops.va 1000, params ());
      ("mtv", Ops.mtv 61 47, params ());
      ("mtv rf", Ops.mtv 61 47, params ~rd:2 ());
      ("red", Ops.red 999, params ~rd:4 ());
    ]

(* --- transfer byte accounting ------------------------------------------- *)

let test_h2d_bytes_va () =
  (* Aligned VA: exactly A and B move host->DPU, C moves back. *)
  let n = 1 lsl 14 in
  let op = Ops.va n in
  let prog = build op (params ~sd:8 ~t:4 ~c:16 ()) in
  let s = Imtp_tir.Cost.measure cfg prog in
  Alcotest.(check int) "h2d bytes = 2 tensors" (2 * n * 4) s.U.Stats.bytes_h2d;
  Alcotest.(check int) "d2h bytes = output" (n * 4) s.U.Stats.bytes_d2h

let test_h2d_bytes_mtv_broadcast () =
  (* 1-D MTV: A moves once; B is broadcast (counted once per DPU). *)
  let n = 64 and k = 32 in
  let op = Ops.mtv n k in
  let p = params ~sd:8 ~t:4 ~c:8 () in
  let prog = build op p in
  let s = Imtp_tir.Cost.measure cfg prog in
  let dpus = P.dpus_used prog in
  Alcotest.(check int) "h2d = A + B per dpu"
    ((n * k * 4) + (dpus * k * 4))
    s.U.Stats.bytes_h2d

let test_skip_weights_removes_h2d () =
  let op = Ops.mtv 256 512 in
  let p = params ~sd:16 ~t:4 ~c:16 () in
  let with_w =
    Imtp_autotune.Measure.measure cfg op p |> Result.get_ok
  in
  let without_w =
    Imtp_autotune.Measure.measure ~skip_inputs:[ "A" ] cfg op p |> Result.get_ok
  in
  let bw = with_w.Imtp_autotune.Measure.stats.U.Stats.bytes_h2d in
  let bw' = without_w.Imtp_autotune.Measure.stats.U.Stats.bytes_h2d in
  Alcotest.(check int) "A excluded" (bw - (256 * 512 * 4)) bw';
  Alcotest.(check bool) "latency drops" true
    (without_w.Imtp_autotune.Measure.latency_s < with_w.Imtp_autotune.Measure.latency_s)

let test_skip_weights_still_correct_when_preloaded () =
  (* A resident program must still compute correctly if A's MRAM tiles
     are preloaded by an explicit run of the full program first — here
     we simply check the resident program declares A's MRAM buffer. *)
  let op = Ops.mtv 64 32 in
  let p = params ~sd:8 ~t:4 ~c:8 () in
  let prog =
    Imtp_autotune.Measure.build ~skip_inputs:[ "A" ] cfg op p |> Result.get_ok
  in
  Alcotest.(check bool) "A_m still declared" true
    (Option.is_some (P.buffer_of prog "A_m"));
  (* and the host program contains no H2D transfer for A. *)
  let has_a_xfer = ref false in
  St.iter
    (function
      | St.Xfer { host = "A"; dir = St.To_dpu; _ } -> has_a_xfer := true
      | _ -> ())
    prog.P.host;
  Alcotest.(check bool) "no A transfer" false !has_a_xfer

(* --- failure injection --------------------------------------------------- *)

let test_poisoned_padding_is_caught () =
  (* Remove the compute boundary guard from a misaligned kernel: the
     interpreter's poisoned MRAM padding must corrupt the result,
     proving missing guards cannot pass silently. *)
  let op = Ops.red 1000 in
  let p = params ~rd:4 ~t:4 ~c:8 () in
  let raw = L.lower ~options:(Sk.lower_options p) (Sk.instantiate op p) in
  let strip_guards (k : P.kernel) =
    {
      k with
      P.body =
        St.rewrite_bottom_up
          (function
            | St.If { then_; else_ = None; _ } -> then_
            | s -> s)
          k.P.body;
    }
  in
  let sabotaged = { raw with P.kernels = List.map strip_guards raw.P.kernels } in
  let inputs = Ops.random_inputs op in
  let want = Op.reference op inputs in
  match Imtp_tir.Eval.run sabotaged ~inputs with
  | exception Imtp_tir.Eval.Error _ -> () (* out-of-bounds caught: fine *)
  | outs ->
      let got = List.assoc "C" outs in
      Alcotest.(check bool) "poison corrupts unguarded kernel" false
        (T.Tensor.to_value_list got = T.Tensor.to_value_list want)

let test_validate_rejects_cross_scope () =
  let op = Ops.va 64 in
  let prog = build op (params ~sd:2 ~t:2 ~c:4 ()) in
  let bad =
    {
      prog with
      P.host = St.seq [ prog.P.host; St.Barrier ];
    }
  in
  match P.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "barrier in host accepted"

let test_eval_rejects_wrong_input_size () =
  let op = Ops.va 64 in
  let prog = build op (params ~sd:2 ~t:2 ~c:4 ()) in
  let bad = T.Tensor.create T.Dtype.I32 (T.Shape.create [ 3 ]) in
  match Imtp_tir.Eval.run prog ~inputs:[ ("A", bad) ] with
  | exception Imtp_tir.Eval.Error _ -> ()
  | _ -> Alcotest.fail "wrong-size input accepted"

(* --- interpreter/cost cross-checks --------------------------------------- *)

let test_more_dpus_less_kernel_time () =
  let op = Ops.mtv 512 256 in
  let kc sd =
    let prog = build op (params ~sd ~t:4 ~c:16 ()) in
    Imtp_tir.Cost.kernel_cycles cfg prog (List.hd prog.P.kernels)
  in
  Alcotest.(check bool) "kernel time shrinks with DPUs" true (kc 64 < kc 8)

let test_unroll_reduces_kernel_time () =
  let op = Ops.mtv 128 256 in
  let t u =
    let p = { (params ~sd:16 ~t:4 ~c:16 ()) with Sk.unroll_inner = u } in
    let prog = build op p in
    Imtp_tir.Cost.kernel_cycles cfg prog (List.hd prog.P.kernels)
  in
  Alcotest.(check bool) "unroll helps" true (t true < t false)

let test_int8_correctness_all_paths () =
  (* int8 has exact modular semantics, so results are bit-exact under
     any schedule: wrap-on-store is associative for addition and
     multiplication. *)
  List.iter
    (fun (op, p) ->
      let prog = build op p in
      let inputs = Ops.random_inputs op in
      let outs = Imtp_tir.Eval.run prog ~inputs in
      let got = T.Tensor.to_value_list (List.assoc (fst op.Op.output) outs) in
      let want = T.Tensor.to_value_list (Op.reference op inputs) in
      Alcotest.(check bool) (op.Op.opname ^ " i8 correct") true (got = want))
    [
      (Ops.va ~dtype:T.Dtype.I8 1000, params ());
      (Ops.mtv ~dtype:T.Dtype.I8 31 61, params ());
      (Ops.mtv ~dtype:T.Dtype.I8 31 61, params ~rd:2 ());
      (Ops.red ~dtype:T.Dtype.I8 999, params ~rd:4 ());
    ]

let test_int8_moves_fewer_bytes () =
  let bytes dt =
    let op = Ops.va ~dtype:dt 4096 in
    let prog = build op (params ~sd:4 ~t:4 ~c:16 ()) in
    (Imtp_tir.Cost.measure cfg prog).U.Stats.bytes_h2d
  in
  Alcotest.(check int) "4x fewer bytes" (bytes T.Dtype.I32 / 4) (bytes T.Dtype.I8)

let test_int8_kernel_cheaper_than_int32 () =
  let kc dt =
    let op = Ops.mtv ~dtype:dt 64 128 in
    let prog = build op (params ~sd:8 ~t:4 ~c:8 ()) in
    Imtp_tir.Cost.kernel_cycles cfg prog (List.hd prog.P.kernels)
  in
  Alcotest.(check bool) "i8 <= i32" true (kc T.Dtype.I8 <= kc T.Dtype.I32)

let test_float_kernels_cost_more () =
  let t dt =
    let op = Ops.mtv ~dtype:dt 64 128 in
    let prog = build op (params ~sd:8 ~t:4 ~c:8 ()) in
    Imtp_tir.Cost.kernel_cycles cfg prog (List.hd prog.P.kernels)
  in
  Alcotest.(check bool) "f32 > i32" true (t T.Dtype.F32 > t T.Dtype.I32)

let test_host_threads_cut_reduction_time () =
  let op = Ops.mtv 2048 4096 in
  let t ht =
    let p = { (params ~sd:64 ~rd:16 ~t:8 ~c:32 ()) with Sk.host_threads = ht } in
    let prog = build op p in
    (Imtp_tir.Cost.measure cfg prog).U.Stats.host_s
  in
  Alcotest.(check bool) "16 threads beat 1" true (t 16 < t 1)

(* --- interpreter-vs-cost cross-validation -------------------------------- *)

let test_counters_match_cost_bytes () =
  (* Aligned VA: the cost model's transfer byte accounting must agree
     exactly with the elements the interpreter actually moved. *)
  let n = 1 lsl 12 in
  let op = Ops.va n in
  let prog = build op (params ~sd:4 ~t:4 ~c:16 ()) in
  let stats = Imtp_tir.Cost.measure cfg prog in
  let _, c = Imtp_tir.Eval.run_counted prog ~inputs:(Ops.random_inputs op) in
  Alcotest.(check int) "h2d bytes"
    stats.U.Stats.bytes_h2d
    (c.Imtp_tir.Eval.xfer_elems_h2d * 4);
  Alcotest.(check int) "d2h bytes"
    stats.U.Stats.bytes_d2h
    (c.Imtp_tir.Eval.xfer_elems_d2h * 4)

let test_counters_dma_work_matches_tensor () =
  (* Aligned VA moves each element through DMA exactly three times
     (load A, load B, store C). *)
  let n = 1 lsl 10 in
  let op = Ops.va n in
  let prog = build op (params ~sd:4 ~t:4 ~c:16 ()) in
  let _, c = Imtp_tir.Eval.run_counted prog ~inputs:(Ops.random_inputs op) in
  Alcotest.(check int) "dma elems = 3n" (3 * n) c.Imtp_tir.Eval.dma_elems;
  (* after vectorization, far fewer DMA instructions than elements *)
  Alcotest.(check bool) "dma vectorized" true
    (c.Imtp_tir.Eval.dma_ops * 8 <= c.Imtp_tir.Eval.dma_elems)

let test_counters_kernel_work_scales () =
  let count op p =
    let prog = build op p in
    let _, c = Imtp_tir.Eval.run_counted prog ~inputs:(Ops.random_inputs op) in
    c.Imtp_tir.Eval.kernel_stores
  in
  let small = count (Ops.mtv 16 32) (params ~sd:4 ~t:2 ~c:8 ()) in
  let large = count (Ops.mtv 32 64) (params ~sd:4 ~t:2 ~c:8 ()) in
  Alcotest.(check bool) "4x work, ~4x stores" true
    (large > 3 * small && large < 6 * small)

let prop_cost_deterministic =
  QCheck2.Test.make ~name:"cost measurement is deterministic" ~count:20
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let op = Ops.mtv 64 128 in
      let rng = Imtp_autotune.Rng.create ~seed in
      let p = Sk.random rng cfg op in
      match
        ( Imtp_autotune.Measure.measure cfg op p,
          Imtp_autotune.Measure.measure cfg op p )
      with
      | Ok a, Ok b ->
          Float.equal a.Imtp_autotune.Measure.latency_s
            b.Imtp_autotune.Measure.latency_s
      | Error a, Error b -> String.equal a b
      | _, _ -> false)

let prop_bytes_independent_of_intra_dpu_params =
  (* For tilings that divide the per-DPU slice exactly, transferred
     bytes depend only on the data distribution, never on tasklet or
     caching-tile choices.  (Misaligned tilings legitimately transfer
     padded rows at the boundary.) *)
  QCheck2.Test.make
    ~name:"h2d bytes depend on distribution, not tasklets/cache" ~count:15
    QCheck2.Gen.(pair (oneofl [ 1; 2; 4 ]) (int_range 3 6))
    (fun (t, c_log) ->
      let op = Ops.va 4096 in
      let base = build op (params ~sd:8 ~t:2 ~c:8 ()) in
      let other = build op (params ~sd:8 ~t ~c:(1 lsl c_log) ()) in
      let b1 = (Imtp_tir.Cost.measure cfg base).U.Stats.bytes_h2d in
      let b2 = (Imtp_tir.Cost.measure cfg other).U.Stats.bytes_h2d in
      b1 = b2)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "robustness"
    [
      ("idempotence", [ Alcotest.test_case "passes" `Quick test_passes_idempotent ]);
      ( "accounting",
        [
          Alcotest.test_case "va bytes" `Quick test_h2d_bytes_va;
          Alcotest.test_case "mtv broadcast bytes" `Quick
            test_h2d_bytes_mtv_broadcast;
          Alcotest.test_case "skip weights" `Quick test_skip_weights_removes_h2d;
          Alcotest.test_case "resident program shape" `Quick
            test_skip_weights_still_correct_when_preloaded;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "poisoned padding" `Quick
            test_poisoned_padding_is_caught;
          Alcotest.test_case "cross scope" `Quick test_validate_rejects_cross_scope;
          Alcotest.test_case "wrong input size" `Quick
            test_eval_rejects_wrong_input_size;
        ] );
      ( "cost cross-checks",
        [
          Alcotest.test_case "counters match cost bytes" `Quick
            test_counters_match_cost_bytes;
          Alcotest.test_case "dma work per element" `Quick
            test_counters_dma_work_matches_tensor;
          Alcotest.test_case "kernel work scales" `Quick
            test_counters_kernel_work_scales;
          Alcotest.test_case "dpus scale kernel" `Quick test_more_dpus_less_kernel_time;
          Alcotest.test_case "unroll" `Quick test_unroll_reduces_kernel_time;
          Alcotest.test_case "float cost" `Quick test_float_kernels_cost_more;
          Alcotest.test_case "int8 correctness" `Quick
            test_int8_correctness_all_paths;
          Alcotest.test_case "int8 bytes" `Quick test_int8_moves_fewer_bytes;
          Alcotest.test_case "int8 kernel cost" `Quick
            test_int8_kernel_cheaper_than_int32;
          Alcotest.test_case "host threads" `Quick
            test_host_threads_cut_reduction_time;
        ] );
      ("properties", q [ prop_cost_deterministic; prop_bytes_independent_of_intra_dpu_params ]);
    ]
