(* Baseline tests: PrIM / PrIM(E) / PrIM+search and SimplePIM produce
   correct results and show the paper's qualitative cost orderings. *)

module Pr = Imtp_baselines.Prim
module Sp = Imtp_baselines.Simplepim
module Ops = Imtp_workload.Ops
module Op = Imtp_workload.Op
module U = Imtp_upmem
module T = Imtp_tensor

let cfg = U.Config.default

let check_correct name prog op =
  let inputs = Ops.random_inputs op in
  let outs = Imtp_tir.Eval.run prog ~inputs in
  let got = T.Tensor.to_value_list (List.assoc (fst op.Op.output) outs) in
  let want = T.Tensor.to_value_list (Op.reference op inputs) in
  Alcotest.(check bool) (name ^ " correct") true (got = want)

let test_prim_va_correct () =
  let op = Ops.va 5000 in
  match Pr.build cfg op { Pr.default with Pr.ndpus = 16 } with
  | Ok prog -> check_correct "prim va" prog op
  | Error m -> Alcotest.fail m

let test_prim_red_correct () =
  let op = Ops.red 4999 in
  match Pr.build cfg op { Pr.default with Pr.ndpus = 8; tasklets = 4; cache_bytes = 64 } with
  | Ok prog -> check_correct "prim red" prog op
  | Error m -> Alcotest.fail m

let test_prim_mtv_correct () =
  let op = Ops.mtv 61 47 in
  match Pr.build cfg op { Pr.default with Pr.ndpus = 8; tasklets = 4; cache_bytes = 32 } with
  | Ok prog -> check_correct "prim mtv" prog op
  | Error m -> Alcotest.fail m

let test_prim_mmtv_correct () =
  let op = Ops.mmtv 3 17 23 in
  match Pr.build cfg op { Pr.default with Pr.ndpus = 12; tasklets = 2; cache_bytes = 32 } with
  | Ok prog -> check_correct "prim mmtv" prog op
  | Error m -> Alcotest.fail m

let test_prim_red_ships_all_tasklet_partials () =
  (* The PrIM RED program must transfer tasklets-many results per DPU
     (the inefficiency IMTP fixes, §7.1). *)
  let op = Ops.red 100_000 in
  let t = 16 in
  match Pr.build cfg op { Pr.default with Pr.ndpus = 32; tasklets = t } with
  | Error m -> Alcotest.fail m
  | Ok prog ->
      let stats = Imtp_tir.Cost.measure cfg prog in
      Alcotest.(check int) "d2h bytes = dpus * tasklets * 4"
        (stats.U.Stats.dpus_used * t * 4)
        stats.U.Stats.bytes_d2h

let test_prim_e_searches_dpus_only () =
  let op = Ops.mtv 2048 2048 in
  match Pr.prim_e cfg op with
  | Error m -> Alcotest.fail m
  | Ok (p, _) ->
      Alcotest.(check int) "tasklets fixed" Pr.default.Pr.tasklets p.Pr.tasklets;
      Alcotest.(check int) "cache fixed" Pr.default.Pr.cache_bytes p.Pr.cache_bytes

let test_grid_search_beats_default () =
  let op = Ops.mtv 2048 2048 in
  let d =
    match Pr.measure cfg op Pr.default with Ok s -> s | Error m -> failwith m
  in
  match Pr.grid_search ~dpu_choices:[ 256; 512; 1024; 2048 ]
          ~tasklet_choices:[ 8; 16 ] ~cache_choices:[ 64; 256; 1024 ] cfg op
  with
  | Error m -> Alcotest.fail m
  | Ok (_, s) ->
      Alcotest.(check bool) "search <= default" true
        (U.Stats.total_s s <= U.Stats.total_s d +. 1e-12)

let test_simplepim_va_correct () =
  let op = Ops.va 3000 in
  match Sp.build cfg op with
  | Ok prog -> check_correct "simplepim va" prog op
  | Error m -> Alcotest.fail m

let test_simplepim_red_correct () =
  let op = Ops.red 3001 in
  match Sp.build cfg op with
  | Ok prog -> check_correct "simplepim red" prog op
  | Error m -> Alcotest.fail m

let test_simplepim_rejects_mtv () =
  match Sp.build cfg (Ops.mtv 8 8) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mtv accepted"

let test_simplepim_va_slower_than_prim () =
  (* SimplePIM's extra host-side copy makes VA slower end-to-end
     (§7.1: 4-11x worse on the D2H side). *)
  let op = Ops.va (1 lsl 20) in
  let prim =
    match Pr.measure cfg op Pr.default with Ok s -> s | Error m -> failwith m
  in
  match Sp.measure cfg op with
  | Error m -> Alcotest.fail m
  | Ok sp ->
      Alcotest.(check bool)
        (Printf.sprintf "simplepim %.3fms > prim %.3fms"
           (U.Stats.total_s sp *. 1e3) (U.Stats.total_s prim *. 1e3))
        true
        (U.Stats.total_s sp > U.Stats.total_s prim)

let test_simplepim_red_beats_prim_on_d2h () =
  (* SimplePIM RED sends one partial per DPU, PrIM sends one per
     tasklet: SimplePIM's D2H bytes must be lower. *)
  let op = Ops.red (1 lsl 22) in
  let prim =
    match Pr.measure cfg op Pr.default with Ok s -> s | Error m -> failwith m
  in
  match Sp.measure cfg op with
  | Error m -> Alcotest.fail m
  | Ok sp ->
      Alcotest.(check bool) "fewer d2h bytes" true
        (sp.U.Stats.bytes_d2h < prim.U.Stats.bytes_d2h)

let prop_prim_correct_any_shape =
  QCheck2.Test.make ~name:"prim correct on random va shapes" ~count:20
    QCheck2.Gen.(pair (int_range 1 3000) (int_range 0 3))
    (fun (n, i) ->
      let op = Imtp_workload.Ops.va n in
      let p =
        { Pr.default with Pr.ndpus = 1 lsl (i + 2); tasklets = 4; cache_bytes = 64 }
      in
      match Pr.build cfg op p with
      | Error _ -> true
      | Ok prog ->
          let inputs = Ops.random_inputs ~seed:n op in
          let outs = Imtp_tir.Eval.run prog ~inputs in
          T.Tensor.to_value_list (List.assoc "C" outs)
          = T.Tensor.to_value_list (Op.reference op inputs))

let prop_prim_red_correct_any_shape =
  QCheck2.Test.make ~name:"prim red correct on random sizes" ~count:15
    QCheck2.Gen.(int_range 1 5000)
    (fun n ->
      let op = Imtp_workload.Ops.red n in
      match Pr.build cfg op { Pr.default with Pr.ndpus = 8; tasklets = 4; cache_bytes = 32 } with
      | Error _ -> true
      | Ok prog ->
          let inputs = Ops.random_inputs ~seed:n op in
          let outs = Imtp_tir.Eval.run prog ~inputs in
          T.Tensor.to_value_list (List.assoc "C" outs)
          = T.Tensor.to_value_list (Op.reference op inputs))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "baselines"
    [
      ( "prim",
        [
          Alcotest.test_case "va" `Quick test_prim_va_correct;
          Alcotest.test_case "red" `Quick test_prim_red_correct;
          Alcotest.test_case "mtv" `Quick test_prim_mtv_correct;
          Alcotest.test_case "mmtv" `Quick test_prim_mmtv_correct;
          Alcotest.test_case "red ships tasklet partials" `Quick
            test_prim_red_ships_all_tasklet_partials;
          Alcotest.test_case "prim(e)" `Slow test_prim_e_searches_dpus_only;
          Alcotest.test_case "grid search" `Slow test_grid_search_beats_default;
        ] );
      ( "simplepim",
        [
          Alcotest.test_case "va" `Quick test_simplepim_va_correct;
          Alcotest.test_case "red" `Quick test_simplepim_red_correct;
          Alcotest.test_case "rejects mtv" `Quick test_simplepim_rejects_mtv;
          Alcotest.test_case "va slower than prim" `Quick
            test_simplepim_va_slower_than_prim;
          Alcotest.test_case "red d2h beats prim" `Quick
            test_simplepim_red_beats_prim_on_d2h;
        ] );
      ("properties", q [ prop_prim_correct_any_shape; prop_prim_red_correct_any_shape ]);
    ]
