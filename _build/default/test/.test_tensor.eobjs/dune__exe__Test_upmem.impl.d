test/test_upmem.ml: Alcotest Float Imtp_tensor Imtp_upmem List Printf QCheck2 QCheck_alcotest
