test/test_tir.ml: Alcotest Array Imtp_tensor Imtp_tir Imtp_upmem List Printf QCheck2 QCheck_alcotest String
