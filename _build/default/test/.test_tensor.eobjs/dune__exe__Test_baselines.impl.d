test/test_baselines.ml: Alcotest Imtp_baselines Imtp_tensor Imtp_tir Imtp_upmem Imtp_workload List Printf QCheck2 QCheck_alcotest
