test/test_extensions.ml: Alcotest Format Imtp List QCheck2 QCheck_alcotest String
