test/test_autotune.ml: Alcotest Filename Float Imtp_autotune Imtp_lower Imtp_schedule Imtp_tensor Imtp_tir Imtp_upmem Imtp_workload List Printf QCheck2 QCheck_alcotest Result String Sys
