test/test_workload.ml: Alcotest Imtp_tensor Imtp_workload List QCheck2 QCheck_alcotest
