test/test_tensor.ml: Alcotest Array Imtp_tensor List QCheck2 QCheck_alcotest
