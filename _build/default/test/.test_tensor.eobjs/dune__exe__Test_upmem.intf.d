test/test_upmem.mli:
