test/test_integration.ml: Alcotest Array Imtp List Printf
