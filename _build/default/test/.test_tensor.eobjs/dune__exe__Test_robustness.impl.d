test/test_robustness.ml: Alcotest Float Imtp_autotune Imtp_lower Imtp_passes Imtp_tensor Imtp_tir Imtp_upmem Imtp_workload List Option QCheck2 QCheck_alcotest Result String
