test/test_lowering.ml: Alcotest Imtp_lower Imtp_schedule Imtp_tensor Imtp_tir Imtp_upmem Imtp_workload List QCheck2 QCheck_alcotest
