test/test_schedule.ml: Alcotest Imtp_schedule Imtp_workload List QCheck2 QCheck_alcotest String
