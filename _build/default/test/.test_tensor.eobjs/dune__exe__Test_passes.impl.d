test/test_passes.ml: Alcotest Imtp_autotune Imtp_lower Imtp_passes Imtp_tensor Imtp_tir Imtp_upmem Imtp_workload List Printf QCheck2 QCheck_alcotest
