(* Tests for the extension subsystems: the UPMEM C emitter, the
   graph-level frontend, and the HBM-PIM prototype backend. *)

let cfg = Imtp.default_config

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let compiled_gemv () =
  let op = Imtp.Ops.gemv ~c:3 100 99 in
  let p =
    { Imtp.Sketch.default_params with Imtp.Sketch.spatial_dpus = 8; tasklets = 4; cache_elems = 8 }
  in
  Imtp.compile (Imtp.Sketch.instantiate op p)

(* --- C emission -------------------------------------------------------- *)

let test_codegen_kernel_markers () =
  let prog = compiled_gemv () in
  let k = List.hd prog.Imtp.Program.kernels in
  let c = Imtp.Codegen_c.kernel_to_c prog k in
  List.iter
    (fun marker ->
      Alcotest.(check bool) ("kernel has " ^ marker) true (contains c marker))
    [
      "#include <mram.h>"; "me()"; "mram_read"; "mram_write"; "mem_alloc";
      "__mram_noinit"; "BARRIER_INIT"; "int main(void)";
    ]

let test_codegen_host_markers () =
  let prog = compiled_gemv () in
  let c = Imtp.Codegen_c.host_to_c prog in
  List.iter
    (fun marker ->
      Alcotest.(check bool) ("host has " ^ marker) true (contains c marker))
    [
      "#include <dpu.h>"; "dpu_alloc"; "dpu_launch"; "dpu_push_xfer";
      "dpu_prepare_xfer"; "DPU_XFER_TO_DPU"; "DPU_XFER_FROM_DPU"; "dpu_free";
    ]

let test_codegen_broadcast () =
  (* B of MTV has no DPU-bound axes in 1-D tiling: broadcast. *)
  let op = Imtp.Ops.mtv 64 32 in
  let p =
    { Imtp.Sketch.default_params with Imtp.Sketch.spatial_dpus = 8; tasklets = 4; cache_elems = 8 }
  in
  let prog = Imtp.compile (Imtp.Sketch.instantiate op p) in
  Alcotest.(check bool) "broadcast emitted" true
    (contains (Imtp.Codegen_c.host_to_c prog) "dpu_broadcast_to")

let test_codegen_shared_vs_private_allocs () =
  (* RED: the partials array is shared across tasklets, the caching
     buffers are per-tasklet. *)
  let op = Imtp.Ops.red 4096 in
  let p =
    {
      Imtp.Sketch.default_params with
      Imtp.Sketch.reduction_dpus = 4;
      tasklets = 4;
      cache_elems = 8;
    }
  in
  let prog = Imtp.compile (Imtp.Sketch.instantiate op p) in
  let k = List.hd prog.Imtp.Program.kernels in
  let c = Imtp.Codegen_c.kernel_to_c prog k in
  Alcotest.(check bool) "shared partials" true
    (contains c "// shared across tasklets");
  Alcotest.(check bool) "tasklet-0 guard" true (contains c "if (me() == 0)")

let test_codegen_deterministic () =
  let p1 = Imtp.Codegen_c.program_to_c (compiled_gemv ()) in
  Alcotest.(check bool) "non-trivial" true (String.length p1 > 500)

(* --- graph frontend ---------------------------------------------------- *)

module G = Imtp.Graph

let mlp () =
  let g = G.create "t" in
  let x = G.input g ~name:"x" ~shape:[ 32 ] in
  let w1 = G.input g ~name:"W1" ~shape:[ 64; 32 ] in
  let w2 = G.input g ~name:"W2" ~shape:[ 32; 64 ] in
  let h = G.add g (Imtp.Ops.mtv 64 32) ~args:[ ("A", w1); ("B", x) ] in
  let y = G.add g (Imtp.Ops.mtv 32 64) ~args:[ ("A", w2); ("B", h) ] in
  let _ = G.add g (Imtp.Ops.va 32) ~args:[ ("A", y); ("B", x) ] in
  g

let test_graph_structure () =
  let g = mlp () in
  Alcotest.(check int) "nodes" 3 (G.node_count g);
  let s = Format.asprintf "%a" G.pp g in
  Alcotest.(check bool) "prints nodes" true (contains s "node2 = va")

let test_graph_shape_checking () =
  let g = G.create "t" in
  let x = G.input g ~name:"x" ~shape:[ 32 ] in
  let w = G.input g ~name:"W" ~shape:[ 64; 16 ] in
  (match G.add g (Imtp.Ops.mtv 64 32) ~args:[ ("A", w); ("B", x) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shape mismatch accepted");
  match G.add g (Imtp.Ops.va 32) ~args:[ ("A", x) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing binding accepted"

let test_graph_duplicate_input_rejected () =
  let g = G.create "t" in
  let _ = G.input g ~name:"x" ~shape:[ 4 ] in
  match G.input g ~name:"x" ~shape:[ 4 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate input accepted"

let test_graph_end_to_end () =
  let g = mlp () in
  match G.Compiled.compile ~trials:24 ~seed:3 cfg g with
  | Error m -> Alcotest.fail m
  | Ok c ->
      let shape l = Imtp.Shape.create l in
      let x = Imtp.Tensor.random ~seed:1 ~bound:5 Imtp.Dtype.I32 (shape [ 32 ]) in
      let w1 = Imtp.Tensor.random ~seed:2 ~bound:5 Imtp.Dtype.I32 (shape [ 64; 32 ]) in
      let w2 = Imtp.Tensor.random ~seed:3 ~bound:5 Imtp.Dtype.I32 (shape [ 32; 64 ]) in
      let outs = G.Compiled.run c ~inputs:[ ("x", x); ("W1", w1); ("W2", w2) ] in
      let got = List.assoc "node2" outs in
      let want =
        Imtp.Reference.va (Imtp.Reference.mtv w2 (Imtp.Reference.mtv w1 x)) x
      in
      Alcotest.(check bool) "end-to-end correct" true
        (Imtp.Tensor.to_value_list got = Imtp.Tensor.to_value_list want);
      (* estimate = sum of node stats *)
      let total = Imtp.Stats.total_s (G.Compiled.estimate c) in
      let parts =
        List.fold_left
          (fun acc (_, s) -> acc +. Imtp.Stats.total_s s)
          0. (G.Compiled.node_stats c)
      in
      Alcotest.(check (float 1e-9)) "estimate is the sum" parts total

let test_graph_missing_input () =
  let g = mlp () in
  match G.Compiled.compile ~trials:16 ~seed:3 cfg g with
  | Error m -> Alcotest.fail m
  | Ok c -> (
      match G.Compiled.run c ~inputs:[] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "missing inputs accepted")

(* --- HBM-PIM prototype -------------------------------------------------- *)

module H = Imtp.Hbm_pim

let hcfg = H.default_config

let test_hbm_supported () =
  Alcotest.(check bool) "va" true (H.supported (Imtp.Ops.va 8));
  Alcotest.(check bool) "gemv" true (H.supported (Imtp.Ops.gemv ~c:1 4 4));
  Alcotest.(check bool) "mmtv not" false (H.supported (Imtp.Ops.mmtv 2 4 4));
  match H.compile hcfg (Imtp.Ops.mmtv 2 4 4) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mmtv accepted"

let check_hbm op =
  match H.compile hcfg op with
  | Error m -> Alcotest.fail m
  | Ok prog ->
      let inputs = Imtp.Ops.random_inputs op in
      let got = H.execute prog inputs in
      let want = Imtp.Op.reference op inputs in
      Alcotest.(check bool)
        (op.Imtp.Op.opname ^ " correct")
        true
        (Imtp.Tensor.to_value_list got = Imtp.Tensor.to_value_list want)

let test_hbm_correctness () =
  check_hbm (Imtp.Ops.va 1000);
  check_hbm (Imtp.Ops.geva ~c:3 ~d:2 513);
  check_hbm (Imtp.Ops.mtv 123 77);
  check_hbm (Imtp.Ops.gemv ~c:5 257 129);
  (* tiny shapes: fewer elements than lanes/units *)
  check_hbm (Imtp.Ops.va 3);
  check_hbm (Imtp.Ops.mtv 1 1)

let test_hbm_cost_monotone () =
  let t n =
    match H.compile hcfg (Imtp.Ops.gemv ~c:1 n n) with
    | Ok p -> H.estimate_seconds p
    | Error m -> failwith m
  in
  Alcotest.(check bool) "monotone" true (t 512 < t 2048 && t 2048 < t 8192)

let test_hbm_describe () =
  match H.compile hcfg (Imtp.Ops.va 100000) with
  | Error m -> Alcotest.fail m
  | Ok p ->
      Alcotest.(check bool) "describe mentions units" true
        (contains (H.describe p) "units");
      Alcotest.(check bool) "uses all units" true (H.units_used p = H.total_units hcfg)

let prop_hbm_va_matches =
  QCheck2.Test.make ~name:"hbm-pim va correct for any size" ~count:30
    QCheck2.Gen.(int_range 1 5000)
    (fun n ->
      let op = Imtp.Ops.va n in
      match H.compile hcfg op with
      | Error _ -> false
      | Ok p ->
          let inputs = Imtp.Ops.random_inputs ~seed:n op in
          Imtp.Tensor.to_value_list (H.execute p inputs)
          = Imtp.Tensor.to_value_list (Imtp.Op.reference op inputs))

let prop_hbm_mtv_matches =
  QCheck2.Test.make ~name:"hbm-pim mtv correct for any shape" ~count:20
    QCheck2.Gen.(pair (int_range 1 200) (int_range 1 100))
    (fun (n, k) ->
      let op = Imtp.Ops.mtv n k in
      match H.compile hcfg op with
      | Error _ -> false
      | Ok p ->
          let inputs = Imtp.Ops.random_inputs ~seed:(n * k) op in
          Imtp.Tensor.to_value_list (H.execute p inputs)
          = Imtp.Tensor.to_value_list (Imtp.Op.reference op inputs))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "extensions"
    [
      ( "codegen_c",
        [
          Alcotest.test_case "kernel markers" `Quick test_codegen_kernel_markers;
          Alcotest.test_case "host markers" `Quick test_codegen_host_markers;
          Alcotest.test_case "broadcast" `Quick test_codegen_broadcast;
          Alcotest.test_case "shared vs private allocs" `Quick
            test_codegen_shared_vs_private_allocs;
          Alcotest.test_case "deterministic" `Quick test_codegen_deterministic;
        ] );
      ( "graph",
        [
          Alcotest.test_case "structure" `Quick test_graph_structure;
          Alcotest.test_case "shape checking" `Quick test_graph_shape_checking;
          Alcotest.test_case "duplicate input" `Quick
            test_graph_duplicate_input_rejected;
          Alcotest.test_case "end to end" `Quick test_graph_end_to_end;
          Alcotest.test_case "missing input" `Quick test_graph_missing_input;
        ] );
      ( "hbm_pim",
        [
          Alcotest.test_case "supported" `Quick test_hbm_supported;
          Alcotest.test_case "correctness" `Quick test_hbm_correctness;
          Alcotest.test_case "cost monotone" `Quick test_hbm_cost_monotone;
          Alcotest.test_case "describe" `Quick test_hbm_describe;
        ] );
      ("properties", q [ prop_hbm_va_matches; prop_hbm_mtv_matches ]);
    ]
