(* Tests for the UPMEM machine model: configuration, timing formulas,
   the DPU pipeline/DMA event model, transfers and the host model. *)

module U = Imtp_upmem

let cfg = U.Config.default

let test_config_defaults () =
  Alcotest.(check int) "dpus" 2048 (U.Config.nr_dpus cfg);
  Alcotest.(check int) "tasklets" 24 cfg.U.Config.max_tasklets;
  Alcotest.(check int) "wram" 65536 cfg.U.Config.wram_bytes

let test_with_dpus () =
  let c = U.Config.with_dpus cfg 256 in
  Alcotest.(check int) "256 dpus" 256 (U.Config.nr_dpus c);
  let c = U.Config.with_dpus cfg 32 in
  Alcotest.(check int) "sub-rank" 32 (U.Config.nr_dpus c);
  let c = U.Config.with_dpus cfg 100_000 in
  Alcotest.(check int) "clamped" 2048 (U.Config.nr_dpus c)

let test_with_dpus_invalid () =
  Alcotest.check_raises "zero"
    (Invalid_argument "Config.with_dpus: non-positive DPU count") (fun () ->
      ignore (U.Config.with_dpus cfg 0))

let test_cycles_seconds_roundtrip () =
  let s = U.Config.seconds_of_cycles cfg 350e6 in
  Alcotest.(check (float 1e-9)) "1s" 1.0 s;
  Alcotest.(check (float 1e-3)) "roundtrip" 42.0
    (U.Config.cycles_of_seconds cfg (U.Config.seconds_of_cycles cfg 42.0))

let test_dma_cycles_monotone () =
  let c64 = U.Timing.dma_cycles cfg 64 and c512 = U.Timing.dma_cycles cfg 512 in
  Alcotest.(check bool) "monotone" true (c64 < c512);
  (* setup cost dominates tiny transfers *)
  let c8 = U.Timing.dma_cycles cfg 8 in
  Alcotest.(check bool) "setup floor" true (c8 >= cfg.U.Config.dma_setup_cycles)

let test_dma_legal () =
  Alcotest.(check bool) "8B ok" true (U.Timing.dma_legal cfg 8);
  Alcotest.(check bool) "2048 ok" true (U.Timing.dma_legal cfg 2048);
  Alcotest.(check bool) "4B too small" false (U.Timing.dma_legal cfg 4);
  Alcotest.(check bool) "unaligned" false (U.Timing.dma_legal cfg 12);
  Alcotest.(check bool) "too big" false (U.Timing.dma_legal cfg 4096)

let test_branch_slots_unsaturated_penalty () =
  let few = U.Timing.branch_slots cfg ~tasklets:2 in
  let many = U.Timing.branch_slots cfg ~tasklets:16 in
  Alcotest.(check bool) "penalty when unsaturated" true (few > many)

let test_int_mul_more_expensive () =
  let open U.Timing in
  let dt = Imtp_tensor.Dtype.I32 in
  Alcotest.(check bool) "mul > add" true (binop_slots dt Mul > binop_slots dt Add);
  let f = Imtp_tensor.Dtype.F32 in
  Alcotest.(check bool) "float > int" true (binop_slots f Add > binop_slots dt Add)

let profile ?(tasklets = 16) ?(chunks = 64) ?(dma = [ (256, 1.) ])
    ?(compute = 200.) () =
  {
    U.Dpu_model.tasklets;
    chunks;
    dma_bytes = dma;
    compute_slots = compute;
    prologue_slots = 0.;
    epilogue_slots = 0.;
  }

let test_pipeline_saturation () =
  (* With a fixed total amount of work, 11+ tasklets should not be
     slower than a few tasklets. *)
  let total_chunks = 240 in
  let t1 = U.Dpu_model.kernel_cycles cfg (profile ~tasklets:1 ~chunks:total_chunks ()) in
  let t8 = U.Dpu_model.kernel_cycles cfg (profile ~tasklets:8 ~chunks:total_chunks ()) in
  let t16 = U.Dpu_model.kernel_cycles cfg (profile ~tasklets:16 ~chunks:total_chunks ()) in
  Alcotest.(check bool) "8 tasklets beat 1" true (t8 < t1);
  Alcotest.(check bool) "16 not much worse than 8" true (t16 < t8 *. 1.5)

let test_revolver_saturation_point () =
  (* A compute-bound kernel's throughput saturates at the revolver
     period (11 tasklets): adding tasklets beyond that does not help. *)
  let at t = U.Dpu_model.kernel_cycles cfg (profile ~tasklets:t ~chunks:(24 * 20) ~dma:[] ~compute:500. ()) in
  Alcotest.(check bool) "2 -> 8 speeds up" true (at 8 < at 2 *. 0.5);
  let t11 = at 11 and t24 = at 24 in
  Alcotest.(check bool)
    (Printf.sprintf "11 vs 24 within 10%% (%.0f vs %.0f)" t11 t24)
    true
    (Float.abs (t24 -. t11) /. t11 < 0.10)

let test_dma_engine_serializes () =
  (* Doubling per-chunk DMA doubles the DMA-bound kernel time. *)
  let small = U.Dpu_model.kernel_cycles cfg (profile ~compute:1. ~dma:[ (2048, 1.) ] ()) in
  let big = U.Dpu_model.kernel_cycles cfg (profile ~compute:1. ~dma:[ (2048, 2.) ] ()) in
  Alcotest.(check bool) "dma bound scales" true
    (big > small *. 1.6 && big < small *. 2.4)

let test_extrapolation_linear () =
  (* Chunk counts beyond the simulation cap extrapolate ~linearly. *)
  let at n = U.Dpu_model.kernel_cycles cfg (profile ~chunks:n ()) in
  let t8k = at 8192 and t16k = at 16384 in
  let ratio = t16k /. t8k in
  Alcotest.(check bool) "doubling work ~doubles time" true
    (ratio > 1.8 && ratio < 2.2)

let test_zero_chunks () =
  let t = U.Dpu_model.kernel_cycles cfg (profile ~chunks:0 ()) in
  Alcotest.(check bool) "no work, no time" true (t >= 0. && t < 1e4)

let test_transfer_parallel_beats_serial () =
  let serial =
    U.Transfer.seconds cfg U.Transfer.H2d U.Transfer.Serial ~ndpus:2048
      ~bytes_per_dpu:4096
  in
  let par =
    U.Transfer.seconds cfg U.Transfer.H2d U.Transfer.Bank_parallel ~ndpus:2048
      ~bytes_per_dpu:4096
  in
  Alcotest.(check bool) "parallel wins at scale" true (par < serial /. 10.)

let test_transfer_d2h_slower () =
  let h2d =
    U.Transfer.seconds cfg U.Transfer.H2d U.Transfer.Bank_parallel ~ndpus:2048
      ~bytes_per_dpu:65536
  in
  let d2h =
    U.Transfer.seconds cfg U.Transfer.D2h U.Transfer.Bank_parallel ~ndpus:2048
      ~bytes_per_dpu:65536
  in
  Alcotest.(check bool) "d2h slower" true (d2h > h2d)

let test_transfer_zero_bytes () =
  Alcotest.(check (float 0.)) "zero" 0.
    (U.Transfer.seconds cfg U.Transfer.H2d U.Transfer.Serial ~ndpus:64
       ~bytes_per_dpu:0)

let test_transfer_rank_parallelism () =
  (* The same total bytes spread over more ranks transfer faster. *)
  let one_rank =
    U.Transfer.seconds cfg U.Transfer.H2d U.Transfer.Bank_parallel ~ndpus:64
      ~bytes_per_dpu:(1 lsl 20)
  in
  let many_ranks =
    U.Transfer.seconds cfg U.Transfer.H2d U.Transfer.Bank_parallel ~ndpus:2048
      ~bytes_per_dpu:(1 lsl 15)
  in
  Alcotest.(check bool) "rank parallel" true (many_ranks < one_rank)

let test_broadcast_cheaper_than_pushes () =
  let bytes = 1 lsl 16 in
  let bcast = U.Transfer.broadcast_seconds cfg ~ndpus:2048 ~bytes in
  let push =
    U.Transfer.seconds cfg U.Transfer.H2d U.Transfer.Bank_parallel ~ndpus:2048
      ~bytes_per_dpu:bytes
  in
  Alcotest.(check bool) "broadcast <= push" true (bcast <= push +. 1e-9)

let test_host_model_scaling () =
  let t1 =
    U.Host_model.loop_seconds cfg ~threads:1 ~elems:1_000_000 ~ops_per_elem:4.
      ~bytes_per_elem:4.
  in
  let t8 =
    U.Host_model.loop_seconds cfg ~threads:8 ~elems:1_000_000 ~ops_per_elem:4.
      ~bytes_per_elem:4.
  in
  Alcotest.(check bool) "threads help" true (t8 < t1);
  Alcotest.(check (float 0.)) "empty" 0.
    (U.Host_model.loop_seconds cfg ~threads:4 ~elems:0 ~ops_per_elem:1.
       ~bytes_per_elem:1.)

let test_stats_algebra () =
  let s =
    {
      U.Stats.zero with
      U.Stats.h2d_s = 1.;
      kernel_s = 2.;
      d2h_s = 3.;
      host_s = 4.;
      launch_s = 0.5;
    }
  in
  Alcotest.(check (float 1e-9)) "total" 10.5 (U.Stats.total_s s);
  let d = U.Stats.add s s in
  Alcotest.(check (float 1e-9)) "add" 21. (U.Stats.total_s d);
  Alcotest.(check (float 1e-9)) "scale" 5.25 (U.Stats.total_s (U.Stats.scale 0.5 s));
  Alcotest.(check (float 1e-9)) "speedup" 2. (U.Stats.speedup ~baseline:d s)

let prop_dma_cost_monotone =
  QCheck2.Test.make ~name:"dma cost monotone in bytes"
    QCheck2.Gen.(pair (int_range 8 2040) (int_range 1 8))
    (fun (b, d) ->
      U.Timing.dma_cycles cfg b <= U.Timing.dma_cycles cfg (b + d))

let prop_kernel_cycles_monotone_chunks =
  QCheck2.Test.make ~name:"kernel cycles monotone in chunks"
    QCheck2.Gen.(pair (int_range 1 500) (int_range 1 24))
    (fun (chunks, tasklets) ->
      let a = U.Dpu_model.kernel_cycles cfg (profile ~tasklets ~chunks ()) in
      let b =
        U.Dpu_model.kernel_cycles cfg (profile ~tasklets ~chunks:(chunks + 7) ())
      in
      a <= b +. 1e-6)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "upmem"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "with_dpus" `Quick test_with_dpus;
          Alcotest.test_case "with_dpus invalid" `Quick test_with_dpus_invalid;
          Alcotest.test_case "cycles/seconds" `Quick test_cycles_seconds_roundtrip;
        ] );
      ( "timing",
        [
          Alcotest.test_case "dma monotone" `Quick test_dma_cycles_monotone;
          Alcotest.test_case "dma legal" `Quick test_dma_legal;
          Alcotest.test_case "branch penalty" `Quick
            test_branch_slots_unsaturated_penalty;
          Alcotest.test_case "op costs" `Quick test_int_mul_more_expensive;
        ] );
      ( "dpu_model",
        [
          Alcotest.test_case "pipeline saturation" `Quick test_pipeline_saturation;
          Alcotest.test_case "revolver saturation point" `Quick
            test_revolver_saturation_point;
          Alcotest.test_case "dma engine serializes" `Quick
            test_dma_engine_serializes;
          Alcotest.test_case "extrapolation" `Quick test_extrapolation_linear;
          Alcotest.test_case "zero chunks" `Quick test_zero_chunks;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "parallel beats serial" `Quick
            test_transfer_parallel_beats_serial;
          Alcotest.test_case "d2h slower" `Quick test_transfer_d2h_slower;
          Alcotest.test_case "zero bytes" `Quick test_transfer_zero_bytes;
          Alcotest.test_case "rank parallelism" `Quick
            test_transfer_rank_parallelism;
          Alcotest.test_case "broadcast" `Quick test_broadcast_cheaper_than_pushes;
        ] );
      ( "host+stats",
        [
          Alcotest.test_case "host scaling" `Quick test_host_model_scaling;
          Alcotest.test_case "stats algebra" `Quick test_stats_algebra;
        ] );
      ("properties", q [ prop_dma_cost_monotone; prop_kernel_cycles_monotone_chunks ]);
    ]
