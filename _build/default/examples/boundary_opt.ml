(* A walkthrough of the paper's Fig. 8: the PIM-aware boundary-check
   optimizations applied step by step to a misaligned GEMV kernel.

   The running example is a 7x40 GEMV processed two rows at a time with
   16-element caching tiles (a 2x16 tiling pattern), single-tasklet —
   misaligned on both the row axis (7 vs 8 covered) and the column axis
   (40 vs 48 covered), so boundary conditions appear on both axes.

   For each optimization stage we print the kernel TIR and the Fig. 8
   instrumentation row: number of (dynamic) branches, DMA transfers and
   innermost-loop executions.

   Run with:  dune exec examples/boundary_opt.exe *)

let cfg = Imtp.default_config

let op = Imtp.Ops.gemv ~c:1 7 40

let params =
  {
    Imtp.Sketch.default_params with
    Imtp.Sketch.spatial_dpus = 4;  (* 4 DPUs x 1 tasklet x 2 rows = 8 >= 7 *)
    tasklets = 1;
    cache_elems = 16;
    reduction_dpus = 1;
    rows_per_tasklet = 2;
  }

let show stage prog =
  let k = List.hd prog.Imtp.Program.kernels in
  let m = Imtp.Pass_metrics.of_kernel k in
  Format.printf "=== %s ===@." stage;
  Format.printf "%s@." (Imtp.Printer.stmt_to_string k.Imtp.Program.body);
  Format.printf ">> %a@." Imtp.Pass_metrics.pp m;
  Format.printf ">> kernel cycles: %.0f@.@."
    (Imtp.Cost.kernel_cycles cfg prog k);
  m

let validate prog =
  let inputs = Imtp.Ops.random_inputs op in
  let outs = Imtp.execute ~inputs prog op in
  Imtp.Tensor.to_value_list (List.assoc "C" outs)
  = Imtp.Tensor.to_value_list (Imtp.Op.reference op inputs)

let () =
  Format.printf
    "Fig. 8 walkthrough: 7x40 GEMV, 2x16 tiles, one tasklet per DPU@.@.";
  let sched = Imtp.Sketch.instantiate op params in
  let raw = Imtp.Lowering.lower ~options:(Imtp.Sketch.lower_options params) sched in

  let m0 = show "(a) lowered kernel (per-element guarded DMA)" raw in
  let dma = Imtp.Dma_elim.run cfg raw in
  let m1 = show "(b) + DMA-aware boundary-check elimination" dma in
  let lt = Imtp.Loop_tighten.run dma in
  let m2 = show "(c) + loop-bound tightening" lt in
  let bh = Imtp.Branch_hoist.run lt in
  let m3 = show "(d) + invariant branch hoisting (with PDE)" bh in

  (* every stage stays semantically equal to the operator definition *)
  List.iter
    (fun (stage, prog) ->
      if not (validate prog) then begin
        Format.printf "MISMATCH at stage %s@." stage;
        exit 1
      end)
    [ ("a", raw); ("b", dma); ("c", lt); ("d", bh) ];
  Format.printf "all four stages validated bit-exact.@.@.";

  Format.printf "Fig. 8 instrumentation table:@.";
  Format.printf "%-42s %10s %8s %12s@." "stage" "branches" "DMAs" "inner iters";
  List.iter
    (fun (stage, (m : Imtp.Pass_metrics.t)) ->
      Format.printf "%-42s %10.0f %8.0f %12.0f@." stage m.Imtp.Pass_metrics.dynamic_branches
        m.Imtp.Pass_metrics.dynamic_dmas m.Imtp.Pass_metrics.innermost_iters)
    [
      ("(a) lowered", m0);
      ("(b) +dma elimination", m1);
      ("(c) +loop tightening", m2);
      ("(d) +branch hoisting", m3);
    ]
