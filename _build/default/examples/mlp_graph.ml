(* Graph-level compilation (a prototype of the paper's §8 "DL framework
   interfaces" direction): a residual two-layer MLP block expressed as
   a dataflow graph, each node autotuned independently, executed
   end-to-end on the simulator and validated against composing the
   reference semantics.

     h  = W1 · x        (mtv, 2048x512)
     y  = W2 · h        (mtv, 512x2048)
     r  = y + x         (va, 512)

   Intermediate tensors travel through the host between nodes, as on
   the real UPMEM system.

   Run with:  dune exec examples/mlp_graph.exe *)

module G = Imtp.Graph

let d_in = 512
let d_hidden = 2048

let () =
  let g = G.create "mlp_block" in
  let x = G.input g ~name:"x" ~shape:[ d_in ] in
  let w1 = G.input g ~name:"W1" ~shape:[ d_hidden; d_in ] in
  let w2 = G.input g ~name:"W2" ~shape:[ d_in; d_hidden ] in
  let mtv1 = Imtp.Ops.mtv d_hidden d_in in
  let mtv2 = Imtp.Ops.mtv d_in d_hidden in
  let h = G.add g mtv1 ~args:[ ("A", w1); ("B", x) ] in
  let y = G.add g mtv2 ~args:[ ("A", w2); ("B", h) ] in
  let r = G.add g (Imtp.Ops.va d_in) ~args:[ ("A", y); ("B", x) ] in
  ignore r;
  Format.printf "%a@." G.pp g;

  Format.printf "compiling (autotuning %d nodes)...@." (G.node_count g);
  let compiled =
    match G.Compiled.compile ~trials:96 Imtp.default_config g with
    | Ok c -> c
    | Error m -> failwith m
  in
  List.iter
    (fun (name, s) -> Format.printf "  %-14s %a@." name Imtp.Stats.pp s)
    (G.Compiled.node_stats compiled);
  Format.printf "end-to-end estimate: %a@.@." Imtp.Stats.pp
    (G.Compiled.estimate compiled);

  (* execute and validate against composing the reference semantics *)
  let shape l = Imtp.Shape.create l in
  let xs = Imtp.Tensor.random ~seed:1 ~bound:9 Imtp.Dtype.I32 (shape [ d_in ]) in
  let w1t = Imtp.Tensor.random ~seed:2 ~bound:9 Imtp.Dtype.I32 (shape [ d_hidden; d_in ]) in
  let w2t = Imtp.Tensor.random ~seed:3 ~bound:9 Imtp.Dtype.I32 (shape [ d_in; d_hidden ]) in
  let outs =
    G.Compiled.run compiled ~inputs:[ ("x", xs); ("W1", w1t); ("W2", w2t) ]
  in
  let got = List.assoc "node2" outs in
  let want =
    Imtp.Reference.va (Imtp.Reference.mtv w2t (Imtp.Reference.mtv w1t xs)) xs
  in
  if Imtp.Tensor.to_value_list got = Imtp.Tensor.to_value_list want then
    Format.printf "validation: OK (graph output bit-exact vs composed reference)@."
  else begin
    Format.printf "validation: MISMATCH@.";
    exit 1
  end
