(* GPT-J multi-head-attention layers on the simulated UPMEM server —
   the paper's §7.2 workload.  Autotunes the four FC (MTV) kernels with
   MRAM-resident weights (§5.4) and attention-score MMTV kernels,
   comparing each against the PrIM hand-tuned baseline, and validates a
   scaled-down MMTV bit-exactly on the functional simulator.

   Run with:  dune exec examples/gptj_layers.exe *)

let cfg = Imtp.default_config

let tune_vs_prim ?(skip_inputs = []) label op =
  let prim =
    match Imtp.Prim.measure ~skip_inputs cfg op (Imtp.Prim.default_for op) with
    | Ok s -> s
    | Error m -> failwith m
  in
  match Imtp.autotune ~trials:96 ~seed:11 ~skip_inputs op with
  | Error m -> failwith m
  | Ok tuned ->
      Format.printf "%-34s PrIM %8.3f ms   IMTP %8.3f ms   (%.2fx)@." label
        (Imtp.Stats.total_s prim *. 1e3)
        (Imtp.Stats.total_s tuned.Imtp.Tuner.stats *. 1e3)
        (Imtp.Stats.speedup ~baseline:prim tuned.Imtp.Tuner.stats)

let () =
  let model = Imtp.Gptj.Gptj_6b in
  Format.printf "GPT-J 6B attention layers (heads=%d, d_model=%d)@.@."
    (Imtp.Gptj.heads model) (Imtp.Gptj.d_model model);

  Format.printf "-- fully-connected (MTV) kernels, weights resident --@.";
  List.iter
    (fun kind ->
      let rows, cols = Imtp.Gptj.fc_shape model kind in
      tune_vs_prim ~skip_inputs:[ "A" ]
        (Printf.sprintf "%s (%dx%d)" (Imtp.Gptj.fc_kind_name kind) rows cols)
        (Imtp.Gptj.fc_op model kind))
    Imtp.Gptj.fc_kinds;

  Format.printf "@.-- attention-score (MMTV) kernels --@.";
  List.iter
    (fun tokens ->
      tune_vs_prim
        (Printf.sprintf "mmtv b=1 T=%d (%dx%dx256)" tokens
           (Imtp.Gptj.heads model) tokens)
        (Imtp.Gptj.mmtv_op model ~batch:1 ~tokens))
    [ 64; 256 ];

  (* Functional validation on a scaled-down attention shape: the same
     code path, sizes small enough to interpret. *)
  Format.printf "@.-- validation (scaled-down MMTV 4x32x64) --@.";
  let small = Imtp.Ops.mmtv 4 32 64 in
  match Imtp.autotune ~trials:32 ~seed:13 small with
  | Error m -> failwith m
  | Ok r ->
      let inputs = Imtp.Ops.random_inputs small in
      let outs = Imtp.execute ~inputs r.Imtp.Tuner.program small in
      let got = List.assoc "C" outs in
      let want = Imtp.Op.reference small inputs in
      if Imtp.Tensor.to_value_list got = Imtp.Tensor.to_value_list want then
        Format.printf "scaled-down MMTV: bit-exact against the reference@."
      else begin
        Format.printf "scaled-down MMTV: MISMATCH@.";
        exit 1
      end
