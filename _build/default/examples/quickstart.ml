(* Quickstart: define a tensor operation, autotune it for the simulated
   UPMEM server, validate the result against the reference semantics,
   and compare with the PrIM hand-tuned baseline.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let cfg = Imtp.default_config in
  Format.printf "machine: %a@." Imtp.Config.pp cfg;

  (* 1. Declare the computation: C(i) = A(i,j) . B(j), 512x2048. *)
  let op = Imtp.Ops.mtv 512 2048 in
  Format.printf "operation: %a@.@." Imtp.Op.pp op;

  (* 2. Autotune: explore the joint host+kernel schedule space. *)
  Format.printf "autotuning (96 trials)...@.";
  let tuned =
    match Imtp.autotune ~trials:96 ~seed:1 op with
    | Ok r -> r
    | Error m -> failwith m
  in
  Format.printf "best schedule: %s@." (Imtp.Sketch.describe tuned.Imtp.Tuner.params);
  Format.printf "breakdown:     %a@.@." Imtp.Stats.pp tuned.Imtp.Tuner.stats;

  (* 3. Validate: run the compiled program on the functional simulator
     and compare against the operator's reference semantics. *)
  let inputs = Imtp.Ops.random_inputs op in
  let outputs = Imtp.execute ~inputs tuned.Imtp.Tuner.program op in
  let got = List.assoc "C" outputs in
  let want = Imtp.Op.reference op inputs in
  assert (Imtp.Tensor.to_value_list got = Imtp.Tensor.to_value_list want);
  Format.printf "validation:    OK (%d outputs bit-exact)@.@." (Imtp.Tensor.size got);

  (* 4. Compare with the PrIM hand-tuned baseline. *)
  (match Imtp.Prim.measure cfg op Imtp.Prim.default with
  | Ok prim ->
      Format.printf "PrIM baseline: %a@." Imtp.Stats.pp prim;
      Format.printf "speedup over PrIM: %.2fx@."
        (Imtp.Stats.speedup ~baseline:prim tuned.Imtp.Tuner.stats)
  | Error m -> Format.printf "PrIM baseline unavailable: %s@." m);

  (* 5. Inspect the generated host+kernel TIR. *)
  Format.printf "@.--- generated program (TIR) ---@.%s@."
    (Imtp.Printer.program_to_string tuned.Imtp.Tuner.program)
