(* Defining a custom tensor operation and scheduling it by hand with
   the Table 2 primitives — the workflow of a user extending IMTP
   beyond the built-in operations.

   The operation is a batched row dot-product ("row-wise energy"):

     C(i) = sum_j A(i,j) * B(i,j)

   which is not one of the seven built-ins but fits the same
   declarative Op interface.  We (1) write the definition, (2) build a
   schedule manually — split, reorder, bind, rfactor, cache_read/write,
   compute_at — (3) compile with the PIM-aware passes, (4) validate on
   the interpreter, and (5) let the autotuner try to beat our manual
   schedule.

   Run with:  dune exec examples/custom_op.exe *)

module Op = Imtp.Op
module S = Imtp.Sched

let rows = 600
let cols = 900 (* deliberately misaligned against power-of-two tiles *)

let rowdot =
  Op.create ~name:"rowdot" ~dtype:Imtp.Dtype.I32
    ~axes:
      [
        { Op.aname = "i"; extent = rows; kind = Op.Spatial };
        { Op.aname = "j"; extent = cols; kind = Op.Reduction };
      ]
    ~inputs:[ ("A", [ "i"; "j" ]); ("B", [ "i"; "j" ]) ]
    ~output:("C", [ "i" ])
    ~body:(Op.Bin (Op.Mul, Op.Ref "A", Op.Ref "B"))

(* A manual schedule in the style of Table 2: 2-D tiling with
   hierarchical reduction across 64 x 4 DPUs, 4 tasklets, 32-element
   caching tiles. *)
let manual_schedule () =
  let s = S.create rowdot in
  let i = List.nth (S.order s) 0 and j = List.nth (S.order s) 1 in
  (* host-to-DPU data distribution *)
  let i_dpu, i_th, i_row =
    match S.split s i ~factors:[ 4; 3 ] with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let j_dpu, j_chunk, j_in =
    match S.split s j ~factors:[ 8; 32 ] with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  S.reorder s [ j_dpu; i_th; i_row; j_chunk ];
  S.bind s i_dpu S.Block_x;
  S.bind s j_dpu S.Block_y;
  (* reduction strategy: partial sums per DPU, final reduction on host *)
  S.rfactor s j_dpu;
  (* multi-level tiling: tasklet binding *)
  S.bind s i_th S.Thread_x;
  (* intra-DPU caching *)
  let ca = S.cache_read s "A" and cb = S.cache_read s "B" in
  S.compute_at s ca j_chunk;
  S.compute_at s cb j_chunk;
  let cc = S.cache_write s "C" in
  S.reverse_compute_at s cc i_row;
  S.unroll s j_in;
  s

let () =
  Format.printf "custom operation: %a@.@." Op.pp rowdot;

  let sched = manual_schedule () in
  Format.printf "manual schedule (applied primitives, Table 2 style):@.";
  List.iter (fun line -> Format.printf "  %s@." line) (S.trace sched);
  Format.printf "@.";

  let prog = Imtp.compile sched in
  Format.printf "generated TIR:@.%s@." (Imtp.Printer.program_to_string prog);

  (* validate against the declarative semantics *)
  let inputs = Imtp.Ops.random_inputs rowdot in
  let outs = Imtp.execute ~inputs prog rowdot in
  let got = List.assoc "C" outs in
  let want = Op.reference rowdot inputs in
  assert (Imtp.Tensor.to_value_list got = Imtp.Tensor.to_value_list want);
  Format.printf "validation: OK (%d outputs bit-exact)@.@." (Imtp.Tensor.size got);

  let manual_stats = Imtp.estimate prog in
  Format.printf "manual schedule timing:    %a@." Imtp.Stats.pp manual_stats;

  (* can the autotuner beat a hand schedule? *)
  match Imtp.autotune ~trials:96 ~seed:3 rowdot with
  | Error m -> failwith m
  | Ok tuned ->
      Format.printf "autotuned schedule timing: %a@." Imtp.Stats.pp
        tuned.Imtp.Tuner.stats;
      Format.printf "autotuned vs manual: %.2fx (%s)@."
        (Imtp.Stats.speedup ~baseline:manual_stats tuned.Imtp.Tuner.stats)
        (Imtp.Sketch.describe tuned.Imtp.Tuner.params)
