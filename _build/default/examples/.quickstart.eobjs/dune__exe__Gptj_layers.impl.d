examples/gptj_layers.ml: Format Imtp List Printf
