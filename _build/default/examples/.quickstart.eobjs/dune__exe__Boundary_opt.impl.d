examples/boundary_opt.ml: Format Imtp List
