examples/custom_op.ml: Format Imtp List
