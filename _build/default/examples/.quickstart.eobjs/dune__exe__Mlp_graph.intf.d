examples/mlp_graph.mli:
