examples/gptj_layers.mli:
