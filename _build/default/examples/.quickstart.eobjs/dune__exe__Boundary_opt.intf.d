examples/boundary_opt.mli:
