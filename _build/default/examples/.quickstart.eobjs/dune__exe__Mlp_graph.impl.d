examples/mlp_graph.ml: Format Imtp List
