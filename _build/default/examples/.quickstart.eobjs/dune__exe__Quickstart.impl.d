examples/quickstart.ml: Format Imtp List
