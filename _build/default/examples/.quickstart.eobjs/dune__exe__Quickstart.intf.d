examples/quickstart.mli:
