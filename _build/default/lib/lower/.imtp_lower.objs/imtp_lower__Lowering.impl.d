lib/lower/lowering.ml: Array Hashtbl Imtp_schedule Imtp_tensor Imtp_tir Imtp_workload Int List Printf String
