lib/lower/lowering.mli: Imtp_schedule Imtp_tir
