type t = Int of int | Float of float

let zero = function Dtype.I8 | Dtype.I32 -> Int 0 | Dtype.F32 -> Float 0.
let one = function Dtype.I8 | Dtype.I32 -> Int 1 | Dtype.F32 -> Float 1.

let of_int dt n =
  match dt with
  | Dtype.I8 -> Int (Dtype.wrap_i8 n)
  | Dtype.I32 -> Int (Dtype.wrap_i32 n)
  | Dtype.F32 -> Float (Dtype.round_f32 (float_of_int n))

let dtype = function Int _ -> Dtype.I32 | Float _ -> Dtype.F32
let to_float = function Int n -> float_of_int n | Float f -> f

let to_int = function
  | Int n -> n
  | Float f ->
      if Float.is_integer f then int_of_float f
      else invalid_arg "Value.to_int: non-integral float"

(* Mixed-dtype arithmetic promotes to float32, mirroring the C semantics
   of the generated kernels. *)
let lift fi ff a b =
  match (a, b) with
  | Int x, Int y -> Int (Dtype.wrap_i32 (fi x y))
  | Float x, Float y -> Float (Dtype.round_f32 (ff x y))
  | Int x, Float y -> Float (Dtype.round_f32 (ff (float_of_int x) y))
  | Float x, Int y -> Float (Dtype.round_f32 (ff x (float_of_int y)))

let add = lift ( + ) ( +. )
let sub = lift ( - ) ( -. )
let mul = lift ( * ) ( *. )

let div a b =
  match b with
  | Int 0 -> raise Division_by_zero
  | Int _ | Float _ ->
      lift
        (fun x y ->
          (* C-style truncation toward zero. *)
          let q = abs x / abs y in
          if x >= 0 = (y >= 0) then q else -q)
        ( /. ) a b

let rem a b =
  match b with
  | Int 0 -> raise Division_by_zero
  | Int _ | Float _ -> lift (fun x y -> x - (to_int (div (Int x) (Int y)) * y)) Float.rem a b

let min_v a b = if to_float a <= to_float b then a else b
let max_v a b = if to_float a >= to_float b then a else b

let neg = function
  | Int n -> Int (Dtype.wrap_i32 (-n))
  | Float f -> Float (-.f)

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | (Int _ | Float _), _ -> false

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | _, _ -> Float.compare (to_float a) (to_float b)

let to_string = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f

let pp ppf t = Format.pp_print_string ppf (to_string t)
