let check_rank name t r =
  if Shape.rank (Tensor.shape t) <> r then
    invalid_arg (Printf.sprintf "Reference.%s: expected rank-%d input" name r)

let check_dim name t axis extent =
  if Shape.dim (Tensor.shape t) axis <> extent then
    invalid_arg (Printf.sprintf "Reference.%s: dimension mismatch" name)

let geva c d a b =
  check_rank "geva" a 1;
  check_rank "geva" b 1;
  check_dim "geva" b 0 (Shape.dim (Tensor.shape a) 0);
  Tensor.init (Tensor.dtype a) (Tensor.shape a) (fun idx ->
      Value.add (Value.mul c (Tensor.get a idx)) (Value.mul d (Tensor.get b idx)))

let va a b =
  let one = Value.one (Tensor.dtype a) in
  geva one one a b

let red a =
  let acc = ref (Value.zero (Tensor.dtype a)) in
  for off = 0 to Tensor.size a - 1 do
    acc := Value.add !acc (Tensor.get_flat a off)
  done;
  !acc

let gemv c a b =
  check_rank "gemv" a 2;
  check_rank "gemv" b 1;
  let n = Shape.dim (Tensor.shape a) 0 and k = Shape.dim (Tensor.shape a) 1 in
  check_dim "gemv" b 0 k;
  Tensor.init (Tensor.dtype a)
    (Shape.create [ n ])
    (fun idx ->
      let i = idx.(0) in
      let acc = ref (Value.zero (Tensor.dtype a)) in
      for j = 0 to k - 1 do
        acc := Value.add !acc (Value.mul (Tensor.get a [| i; j |]) (Tensor.get b [| j |]))
      done;
      Value.mul c !acc)

let mtv a b = gemv (Value.one (Tensor.dtype a)) a b

let ttv a b =
  check_rank "ttv" a 3;
  check_rank "ttv" b 1;
  let s = Tensor.shape a in
  let n = Shape.dim s 0 and m = Shape.dim s 1 and k = Shape.dim s 2 in
  check_dim "ttv" b 0 k;
  Tensor.init (Tensor.dtype a)
    (Shape.create [ n; m ])
    (fun idx ->
      let i = idx.(0) and j = idx.(1) in
      let acc = ref (Value.zero (Tensor.dtype a)) in
      for kk = 0 to k - 1 do
        acc :=
          Value.add !acc
            (Value.mul (Tensor.get a [| i; j; kk |]) (Tensor.get b [| kk |]))
      done;
      !acc)

let mmtv a b =
  check_rank "mmtv" a 3;
  check_rank "mmtv" b 2;
  let s = Tensor.shape a in
  let n = Shape.dim s 0 and m = Shape.dim s 1 and k = Shape.dim s 2 in
  check_dim "mmtv" b 0 n;
  check_dim "mmtv" b 1 k;
  Tensor.init (Tensor.dtype a)
    (Shape.create [ n; m ])
    (fun idx ->
      let i = idx.(0) and j = idx.(1) in
      let acc = ref (Value.zero (Tensor.dtype a)) in
      for kk = 0 to k - 1 do
        acc :=
          Value.add !acc
            (Value.mul (Tensor.get a [| i; j; kk |]) (Tensor.get b [| i; kk |]))
      done;
      !acc)
