(** Golden (host-only, trivially correct) implementations of the seven
    tensor-algebra operations evaluated in the paper (§6).  Every
    compiled/simulated kernel is validated against these. *)

val va : Tensor.t -> Tensor.t -> Tensor.t
(** Vector addition: [C(i) = A(i) + B(i)]. *)

val geva : Value.t -> Value.t -> Tensor.t -> Tensor.t -> Tensor.t
(** General vector addition: [C(i) = c*A(i) + d*B(i)]. *)

val red : Tensor.t -> Value.t
(** Reduction: [b = sum_i A(i)]. *)

val mtv : Tensor.t -> Tensor.t -> Tensor.t
(** Matrix times vector: [C(i) = sum_j A(i,j) * B(j)]. *)

val gemv : Value.t -> Tensor.t -> Tensor.t -> Tensor.t
(** General matrix-vector multiplication: [C(i) = c * sum_j A(i,j)*B(j)]. *)

val ttv : Tensor.t -> Tensor.t -> Tensor.t
(** Tensor times vector: [C(i,j) = sum_k A(i,j,k) * B(k)]. *)

val mmtv : Tensor.t -> Tensor.t -> Tensor.t
(** Batched matrix-vector: [C(i,j) = sum_k A(i,j,k) * B(i,k)]. *)
