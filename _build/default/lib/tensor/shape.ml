type t = int array

let of_array a =
  if Array.length a = 0 then invalid_arg "Shape.of_array: empty shape";
  Array.iter
    (fun d -> if d <= 0 then invalid_arg "Shape.of_array: non-positive dim")
    a;
  Array.copy a

let create dims = of_array (Array.of_list dims)
let dims t = Array.to_list t
let rank = Array.length

let dim t i =
  if i < 0 || i >= Array.length t then invalid_arg "Shape.dim: axis";
  t.(i)

let size t = Array.fold_left ( * ) 1 t

let strides t =
  let n = Array.length t in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * t.(i + 1)
  done;
  s

let in_bounds t idx =
  Array.length idx = Array.length t
  && (let ok = ref true in
      Array.iteri (fun i v -> if v < 0 || v >= t.(i) then ok := false) idx;
      !ok)

let linearize t idx =
  if not (in_bounds t idx) then invalid_arg "Shape.linearize: out of bounds";
  let s = strides t in
  let off = ref 0 in
  Array.iteri (fun i v -> off := !off + (v * s.(i))) idx;
  !off

let delinearize t off =
  if off < 0 || off >= size t then invalid_arg "Shape.delinearize: offset";
  let s = strides t in
  Array.mapi (fun i _ -> off / s.(i) mod t.(i)) t

let equal a b = a = b

let iter t f =
  let total = size t in
  for off = 0 to total - 1 do
    f (delinearize t off)
  done

let to_string t =
  String.concat "x" (List.map string_of_int (Array.to_list t))

let pp ppf t = Format.pp_print_string ppf (to_string t)
