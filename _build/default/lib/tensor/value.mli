(** Scalar values flowing through the reference implementations and the
    TIR interpreter, with dtype-faithful arithmetic (32-bit wrap-around
    for integers, float32 rounding for floats). *)

type t =
  | Int of int    (** an [I32] value, always within 32-bit signed range *)
  | Float of float  (** an [F32] value, always float32-rounded *)

val zero : Dtype.t -> t
val one : Dtype.t -> t
val of_int : Dtype.t -> int -> t
(** Injects an integer literal as a value of the given dtype. *)

val dtype : t -> Dtype.t
val to_float : t -> float
val to_int : t -> int
(** @raise Invalid_argument on a [Float] that is not integral. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Integer division truncates toward zero.  @raise Division_by_zero. *)

val rem : t -> t -> t
val min_v : t -> t -> t
val max_v : t -> t -> t
val neg : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
