(** Tensor shapes and row-major index algebra. *)

type t = private int array
(** A shape is a non-empty array of positive dimension extents. *)

val create : int list -> t
(** [create dims] builds a shape.  @raise Invalid_argument on an empty
    list or a non-positive extent. *)

val of_array : int array -> t
val dims : t -> int list
val rank : t -> int
val dim : t -> int -> int
val size : t -> int
(** Total number of elements. *)

val strides : t -> int array
(** Row-major strides, in elements. *)

val linearize : t -> int array -> int
(** [linearize shape idx] maps a multi-index to its flat offset.
    @raise Invalid_argument if [idx] is out of bounds or wrong rank. *)

val delinearize : t -> int -> int array
(** Inverse of {!linearize}. *)

val in_bounds : t -> int array -> bool
val equal : t -> t -> bool
val iter : t -> (int array -> unit) -> unit
(** Row-major iteration over all multi-indices.  The callback receives a
    fresh array each call. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
