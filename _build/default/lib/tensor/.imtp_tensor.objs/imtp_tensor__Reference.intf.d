lib/tensor/reference.mli: Tensor Value
