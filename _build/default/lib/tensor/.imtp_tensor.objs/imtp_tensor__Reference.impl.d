lib/tensor/reference.ml: Array Printf Shape Tensor Value
