lib/tensor/value.ml: Dtype Float Format Int Printf
