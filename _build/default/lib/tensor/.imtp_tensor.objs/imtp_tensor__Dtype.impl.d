lib/tensor/dtype.ml: Format Int32
