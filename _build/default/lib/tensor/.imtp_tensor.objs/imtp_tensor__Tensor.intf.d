lib/tensor/tensor.mli: Dtype Format Shape Value
