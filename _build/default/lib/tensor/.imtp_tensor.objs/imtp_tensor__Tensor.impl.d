lib/tensor/tensor.ml: Array Dtype Float Format List Random Shape String Value
