lib/tensor/value.mli: Dtype Format
