(** Static kernel metrics, mirroring the instrumentation table of
    Fig. 8 (number of branches, DMA transfers, innermost-loop
    executions after each optimization step). *)

type t = {
  static_branches : int;  (** [If] nodes in the kernel. *)
  static_dmas : int;  (** [Dma] nodes. *)
  dynamic_branches : float;
      (** exact execution count over the whole grid (loops are
          enumerated, so boundary-tile savings are visible). *)
  dynamic_dmas : float;
  innermost_iters : float;  (** innermost-loop body executions. *)
}

val of_kernel : Imtp_tir.Program.kernel -> t
val pp : Format.formatter -> t -> unit
