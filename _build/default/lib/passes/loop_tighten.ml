module E = Imtp_tir.Expr
module St = Imtp_tir.Stmt
module An = Imtp_tir.Analysis
module Simp = Imtp_tir.Simplify

let rewrite stmt =
  St.rewrite_bottom_up
    (function
      | St.For
          {
            var;
            extent;
            kind = (St.Serial | St.Unrolled) as kind;
            body = St.If { cond; then_; else_ = None };
          } as orig -> (
          let atoms = An.conjuncts cond in
          let bounds, rest =
            List.partition_map
              (fun atom ->
                match An.upper_bound_from_cond var atom with
                | Some b -> Left b
                | None -> Right atom)
              atoms
          in
          match bounds with
          | [] -> orig
          | bs ->
              let extent' =
                Simp.expr (List.fold_left (fun acc b -> E.min_e acc b) extent bs)
              in
              let body' =
                match rest with
                | [] -> then_
                | cs -> St.if_ (An.conjoin cs) then_
              in
              St.For { var; extent = extent'; kind; body = body' })
      | s -> s)
    stmt

let run (p : Imtp_tir.Program.t) =
  {
    p with
    kernels =
      List.map
        (fun (k : Imtp_tir.Program.kernel) ->
          { k with Imtp_tir.Program.body = rewrite k.body })
        p.kernels;
  }
