lib/passes/metrics.ml: Format Imtp_tir List Option
