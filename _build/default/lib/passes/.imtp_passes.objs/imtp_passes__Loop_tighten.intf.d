lib/passes/loop_tighten.mli: Imtp_tir
