lib/passes/dma_elim.ml: Hashtbl Imtp_tensor Imtp_tir Imtp_upmem List Option
