lib/passes/metrics.mli: Format Imtp_tir
