lib/passes/pipeline.mli: Imtp_tir Imtp_upmem
