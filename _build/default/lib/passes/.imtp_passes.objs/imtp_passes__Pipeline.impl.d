lib/passes/pipeline.ml: Branch_hoist Dma_elim Imtp_tir List Loop_tighten
