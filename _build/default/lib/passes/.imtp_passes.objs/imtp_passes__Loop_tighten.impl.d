lib/passes/loop_tighten.ml: Imtp_tir List
