lib/passes/branch_hoist.ml: Imtp_tir List
