lib/passes/branch_hoist.mli: Imtp_tir
