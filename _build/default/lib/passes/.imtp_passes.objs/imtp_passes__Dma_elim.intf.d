lib/passes/dma_elim.mli: Imtp_tir Imtp_upmem
