module E = Imtp_tir.Expr
module St = Imtp_tir.Stmt
module An = Imtp_tir.Analysis
module Simp = Imtp_tir.Simplify
module Sub = Imtp_tir.Subst

(* Largest divisor d of [n] with d <= cap. *)
let largest_divisor n cap =
  let best = ref 1 in
  let d = ref 1 in
  while !d * !d <= n do
    if n mod !d = 0 then begin
      if !d <= cap && !d > !best then best := !d;
      let q = n / !d in
      if q <= cap && q > !best then best := q
    end;
    incr d
  done;
  !best

let rewrite ~max_dma_bytes ~elem_size stmt =
  let strip (s : St.t) : St.t =
    match s with
    (* Drop a boundary check whose body is pure data movement. *)
    | If { cond = _; then_ = Dma _ as d; else_ = None } -> d
    (* Vectorize: a loop whose body is one DMA with unit-progression
       offsets becomes a single (or strip-mined) static-size DMA. *)
    | For { var; extent; kind = Serial | Unrolled; body = Dma r } -> (
        match (Simp.const_int extent, Simp.const_int r.elems) with
        | Some ext, Some e when ext > 1 -> (
            match (An.stride_in var r.wram_off, An.stride_in var r.mram_off) with
            | Some sw, Some sm when sw = e && sm = e ->
                let esize = elem_size r.wram in
                let total = ext * e in
                let at0 off = Simp.expr (Sub.expr var (E.int 0) off) in
                if total * esize <= max_dma_bytes then
                  St.Dma
                    {
                      r with
                      wram_off = at0 r.wram_off;
                      mram_off = at0 r.mram_off;
                      elems = E.int total;
                    }
                else begin
                  (* strip-vectorize to the largest legal chunk. *)
                  let cap = max 1 (max_dma_bytes / (esize * e)) in
                  let d = largest_divisor ext cap in
                  if d <= 1 then s
                  else begin
                    let v' = Imtp_tir.Var.fresh (Imtp_tir.Var.name var ^ "v") in
                    let shift off =
                      Simp.expr
                        (Sub.expr var (E.Binop (E.Mul, E.var v', E.int d)) off)
                    in
                    St.For
                      {
                        var = v';
                        extent = E.int (ext / d);
                        kind = St.Serial;
                        body =
                          St.Dma
                            {
                              r with
                              wram_off = shift r.wram_off;
                              mram_off = shift r.mram_off;
                              elems = E.int (d * e);
                            };
                      }
                  end
                end
            | _, _ -> s)
        | _, _ -> s)
    | s -> s
  in
  (* Iterate to a fixpoint: vectorizing the innermost loop exposes the
     next level for coalescing. *)
  let rec fix n s =
    let s' = St.rewrite_bottom_up strip s in
    if n = 0 || s' = s then s' else fix (n - 1) s'
  in
  fix 8 stmt

let run (cfg : Imtp_upmem.Config.t) (p : Imtp_tir.Program.t) =
  let sizes = Hashtbl.create 16 in
  List.iter
    (fun (k : Imtp_tir.Program.kernel) ->
      St.iter
        (function
          | St.Alloc { buffer; _ } ->
              Hashtbl.replace sizes buffer.Imtp_tir.Buffer.name
                (Imtp_tensor.Dtype.size_in_bytes buffer.Imtp_tir.Buffer.dtype)
          | St.Seq _ | St.For _ | St.If _ | St.Store _ | St.Dma _ | St.Xfer _
          | St.Launch _ | St.Barrier | St.Nop ->
              ())
        k.body)
    p.kernels;
  let elem_size name = Option.value (Hashtbl.find_opt sizes name) ~default:4 in
  let kernels =
    List.map
      (fun (k : Imtp_tir.Program.kernel) ->
        {
          k with
          Imtp_tir.Program.body =
            rewrite ~max_dma_bytes:cfg.Imtp_upmem.Config.dma_max_bytes
              ~elem_size k.body;
        })
      p.kernels
  in
  { p with kernels }
