module St = Imtp_tir.Stmt
module An = Imtp_tir.Analysis

let is_dma = function St.Dma _ -> true | _ -> false

let step (s : St.t) : St.t =
  match s with
  (* R1 — unswitching: hoist a loop-invariant check out of the loop. *)
  | For
      {
        var;
        extent;
        kind = (St.Serial | St.Unrolled) as kind;
        body = If { cond; then_; else_ = None };
      }
    when An.is_free_of var cond && not (An.contains_load cond) ->
      St.if_ cond (St.For { var; extent; kind; body = then_ })
  (* R2 — PDE: sink sibling DMA transfers under the single boundary
     check consuming their data. *)
  | Seq stmts
    when List.exists
           (function St.If { else_ = None; _ } -> true | _ -> false)
           stmts ->
      let ifs, others =
        List.partition
          (function St.If { else_ = None; _ } -> true | _ -> false)
          stmts
      in
      (match (ifs, List.for_all is_dma others) with
      | [ If { cond; then_; else_ = None } ], true
        when not (An.contains_load cond) ->
          (* preserve original ordering: DMAs before the check stay
             before the computation, those after stay after. *)
          let rec split before = function
            | [] -> (List.rev before, [])
            | (St.If _ as _i) :: rest -> (List.rev before, rest)
            | x :: rest -> split (x :: before) rest
          in
          let before, after = split [] stmts in
          St.if_ cond (St.seq (before @ [ then_ ] @ after))
      | _, _ -> s)
  (* R3 — allocations do not bind condition variables: hoist above. *)
  | Alloc { buffer; body = If { cond; then_; else_ = None } }
    when not (An.contains_load cond) ->
      St.if_ cond (St.Alloc { buffer; body = then_ })
  | s -> s

let rewrite stmt =
  let rec fix n s =
    let s' = St.rewrite_bottom_up step s in
    if n = 0 || s' = s then s' else fix (n - 1) s'
  in
  fix 12 stmt

let run (p : Imtp_tir.Program.t) =
  {
    p with
    kernels =
      List.map
        (fun (k : Imtp_tir.Program.kernel) ->
          { k with Imtp_tir.Program.body = rewrite k.body })
        p.kernels;
  }
