module St = Imtp_tir.Stmt
module Simp = Imtp_tir.Simplify
module V = Imtp_tir.Var

type t = {
  static_branches : int;
  static_dmas : int;
  dynamic_branches : float;
  dynamic_dmas : float;
  innermost_iters : float;
}

exception Too_large

(* Exact dynamic counting by enumerating loop iterations (loop extents
   only depend on loop variables, so this is well-defined).  Kernels
   passed here are small Fig. 8-style examples; a node budget guards
   against accidental blow-ups. *)
let of_kernel (k : Imtp_tir.Program.kernel) =
  let static_branches = ref 0 and static_dmas = ref 0 in
  St.iter
    (function
      | St.If _ -> incr static_branches
      | St.Dma _ -> incr static_dmas
      | St.Seq _ | St.For _ | St.Store _ | St.Alloc _ | St.Xfer _
      | St.Launch _ | St.Barrier | St.Nop ->
          ())
    k.body;
  let dyn_branches = ref 0. and dyn_dmas = ref 0. and inner = ref 0. in
  let budget = ref 20_000_000 in
  let spend () =
    decr budget;
    if !budget <= 0 then raise Too_large
  in
  let rec walk env (s : St.t) =
    spend ();
    match s with
    | St.Seq ss -> List.iter (walk env) ss
    | St.For { var; extent; kind = _; body } ->
        let n =
          match Simp.eval_int env extent with Some n -> max 0 n | None -> 0
        in
        let is_leaf =
          not (St.exists (function St.For _ -> true | _ -> false) body)
        in
        if is_leaf then inner := !inner +. float_of_int n;
        for i = 0 to n - 1 do
          walk (V.Map.add var i env) body
        done
    | St.If { cond; then_; else_ } -> (
        dyn_branches := !dyn_branches +. 1.;
        (* guards are affine in loop variables, so they evaluate under
           the enumeration and skipped work is counted accurately. *)
        match Simp.eval_int env cond with
        | Some 0 -> Option.iter (walk env) else_
        | Some _ -> walk env then_
        | None ->
            walk env then_;
            Option.iter (walk env) else_)
    | St.Dma _ -> dyn_dmas := !dyn_dmas +. 1.
    | St.Alloc { body; _ } -> walk env body
    | St.Store _ | St.Xfer _ | St.Launch _ | St.Barrier | St.Nop -> ()
  in
  (try walk V.Map.empty k.body with Too_large -> ());
  {
    static_branches = !static_branches;
    static_dmas = !static_dmas;
    dynamic_branches = !dyn_branches;
    dynamic_dmas = !dyn_dmas;
    innermost_iters = !inner;
  }

let pp ppf t =
  Format.fprintf ppf
    "branches(static)=%d dmas(static)=%d branches(dyn)=%.0f dmas(dyn)=%.0f \
     inner_iters=%.0f"
    t.static_branches t.static_dmas t.dynamic_branches t.dynamic_dmas
    t.innermost_iters
