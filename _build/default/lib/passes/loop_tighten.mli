(** Loop-bound tightening (§5.3.2).

    When a loop's body is exactly one boundary check (a conjunction of
    linear inequalities) guarding the computation, each conjunct that
    is an upper bound on the loop variable is intersected with the
    loop's extent — the loop becomes
    [for v in range(min(extent, bound))] — and removed from the check,
    eliminating the "dead" iterations that were known to fail it.
    Conjuncts over outer variables are left for
    {!Branch_hoist.rewrite}. *)

val rewrite : Imtp_tir.Stmt.t -> Imtp_tir.Stmt.t
val run : Imtp_tir.Program.t -> Imtp_tir.Program.t
