(** Prototype HBM-PIM backend (§8 "Extension to other DRAM-PIM
    architectures").

    The paper reports a prototype extension of IMTP targeting
    Samsung's HBM-PIM (Aquabolt-XL / FIMDRAM): instead of a
    general-purpose core per bank, a SIMD multiply-accumulate unit sits
    between each pair of banks and executes a small command program
    (MAC/ADD/MOV over 16-lane vectors) fired by column commands, with a
    grf register file and no control flow.  This module reproduces
    that prototype: a code generator mapping the elementwise and
    matrix-vector operator families onto per-unit command streams, a
    functional executor validating results against the operator
    reference, and a command-level timing model.

    The mapping follows the vendor library's GEMV kernel: weight rows
    are interleaved across banks so that all PIM units of a channel
    compute in lock-step on one column command; partial sums are
    accumulated in the unit's accumulator registers and read out once
    per output block. *)

type config = {
  channels : int;  (** HBM pseudo-channels with PIM units (16). *)
  units_per_channel : int;  (** PIM units (one per bank pair, 8). *)
  simd_lanes : int;  (** 16-bit lanes per unit (16). *)
  freq_hz : float;  (** command clock (1.2 GHz). *)
  cycles_per_command : float;  (** column-command interval (tCCD ≈ 2). *)
  row_activate_cycles : float;  (** row switch penalty (tRCD+tRP). *)
  cols_per_row : int;  (** SIMD accesses per DRAM row (32). *)
  host_bw : float;  (** host<->HBM bandwidth for I/O staging (B/s). *)
  mode_switch_s : float;  (** SB->PIM mode transition overhead. *)
}

val default_config : config
val total_units : config -> int

(** A compiled command program for one operation. *)
type program

val supported : Imtp_workload.Op.t -> bool
(** Elementwise (VA/GEVA) and matrix-vector (MTV/GEMV) families only —
    the operations the vendor PIMLibrary provides. *)

val compile : config -> Imtp_workload.Op.t -> (program, string) Result.t
val describe : program -> string
(** Command-stream summary (units used, commands per unit, row
    activations). *)

val execute :
  program ->
  (string * Imtp_tensor.Tensor.t) list ->
  Imtp_tensor.Tensor.t
(** Functional execution of the command streams (bit-exact in int32;
    the real device computes in fp16 — see DESIGN.md). *)

val estimate_seconds : program -> float
(** Command-level latency estimate including mode switch and host I/O
    staging. *)

val commands_per_unit : program -> int
val units_used : program -> int
