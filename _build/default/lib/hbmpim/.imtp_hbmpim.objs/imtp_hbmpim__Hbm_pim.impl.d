lib/hbmpim/hbm_pim.ml: Array Imtp_tensor Imtp_workload List Printf
