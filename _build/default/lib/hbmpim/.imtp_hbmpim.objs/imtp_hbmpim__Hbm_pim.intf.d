lib/hbmpim/hbm_pim.mli: Imtp_tensor Imtp_workload Result
