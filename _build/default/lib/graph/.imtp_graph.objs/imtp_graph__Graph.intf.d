lib/graph/graph.mli: Format Imtp_tensor Imtp_upmem Imtp_workload Result
