lib/graph/graph.ml: Format Hashtbl Imtp_autotune Imtp_tensor Imtp_tir Imtp_upmem Imtp_workload List Printf String
