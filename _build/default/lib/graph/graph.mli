(** A minimal graph-level frontend (a prototype of §8's "DL framework
    interfaces" direction): tensor programs composed into a dataflow
    graph, each node autotuned independently, executed end-to-end on
    the simulator.

    Faithful to the UPMEM system model, intermediate tensors travel
    through the host between nodes (§2.1: "even when data transfer
    between DPUs is required, it is routed via the host CPU"), so the
    end-to-end estimate is the sum of per-node latencies. *)

type t
type tid
(** A symbolic tensor in the graph. *)

val create : string -> t
val input : t -> name:string -> shape:int list -> tid
(** Declare an external input.  @raise Invalid_argument on duplicate
    names. *)

val add : t -> Imtp_workload.Op.t -> args:(string * tid) list -> tid
(** [add g op ~args] appends a node applying [op]; [args] binds each of
    the op's named inputs to a graph tensor.  Shapes are checked.
    Returns the node's output tensor.  @raise Invalid_argument on
    missing bindings or shape mismatches. *)

val shape_of : t -> tid -> int list
val node_count : t -> int
val pp : Format.formatter -> t -> unit

(** Compiled graphs. *)
module Compiled : sig
  type graph = t
  type t

  val compile :
    ?trials:int ->
    ?seed:int ->
    Imtp_upmem.Config.t ->
    graph ->
    (t, string) Result.t
  (** Autotune every node (nodes sharing an identical operation reuse
      one tuned program). *)

  val run :
    t ->
    inputs:(string * Imtp_tensor.Tensor.t) list ->
    (string * Imtp_tensor.Tensor.t) list
  (** Execute end-to-end on the functional simulator; returns each
      node's output keyed by ["node<i>"], plus the graph inputs.
      @raise Invalid_argument when an input is missing or mis-shaped. *)

  val estimate : t -> Imtp_upmem.Stats.t
  (** Sum of the per-node latency estimates. *)

  val node_stats : t -> (string * Imtp_upmem.Stats.t) list
end
