(** Persistent tuning records, in the spirit of TVM's tuning logs: the
    search history is written to a plain-text file (one record per
    measured trial) that can be reloaded to recover the best schedule
    without re-running the search. *)

type entry = {
  trial : int;
  params : Sketch.params;
  latency_s : float;
}

val params_to_string : Sketch.params -> string
(** Compact one-line form, [k=v] pairs. *)

val params_of_string : string -> (Sketch.params, string) Result.t
(** Inverse of {!params_to_string}; unknown keys are errors. *)

val entry_to_string : entry -> string
val entry_of_string : string -> (entry, string) Result.t

val save : string -> op_name:string -> Search.outcome -> unit
(** Write a log file: a header naming the operation, then one line per
    measured trial. *)

val load : string -> (string * entry list, string) Result.t
(** Returns the header op name and the entries, preserving order.
    @raise nothing — I/O or parse failures are [Error]. *)

val best : entry list -> entry option
(** Lowest-latency entry. *)
