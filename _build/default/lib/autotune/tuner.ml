type result = {
  params : Sketch.params;
  program : Imtp_tir.Program.t;
  stats : Imtp_upmem.Stats.t;
  search : Search.outcome;
}

let tune ?strategy ?seed ?(trials = 128) ?passes ?skip_inputs cfg op =
  let search = Search.run ?strategy ?seed ?passes ?skip_inputs cfg op ~trials in
  match search.Search.best with
  | None -> Error "autotuning found no valid candidate"
  | Some best -> (
      let params = best.Measure.params in
      match Measure.build ?passes ?skip_inputs cfg op params with
      | Error m -> Error m
      | Ok program -> (
          match Measure.measure ?passes ?skip_inputs cfg op params with
          | Error m -> Error m
          | Ok final -> Ok { params; program; stats = final.Measure.stats; search }))

let describe r =
  Printf.sprintf "%s | total %.3f ms" (Sketch.describe r.params)
    (Imtp_upmem.Stats.total_s r.stats *. 1e3)
