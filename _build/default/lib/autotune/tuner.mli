(** Top-level autotuning entry point: run the balanced evolutionary
    search, then deterministically re-measure the winner (without
    measurement noise) and return the optimized program alongside its
    latency breakdown. *)

type result = {
  params : Sketch.params;
  program : Imtp_tir.Program.t;
  stats : Imtp_upmem.Stats.t;
  search : Search.outcome;
}

val tune :
  ?strategy:Search.strategy ->
  ?seed:int ->
  ?trials:int ->
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  Imtp_upmem.Config.t ->
  Imtp_workload.Op.t ->
  (result, string) Result.t
(** Defaults: IMTP strategy, 128 trials.  [Error] only when no valid
    candidate was found at all. *)

val describe : result -> string
(** One line summarizing the winning configuration (Table 3 format:
    DPUs per dimension type, tasklets, caching tile size). *)
