lib/autotune/tuning_log.mli: Result Search Sketch
