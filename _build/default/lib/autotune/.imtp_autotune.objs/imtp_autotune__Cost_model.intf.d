lib/autotune/cost_model.mli: Imtp_workload Sketch
