lib/autotune/measure.mli: Imtp_passes Imtp_tir Imtp_upmem Imtp_workload Result Rng Sketch
