lib/autotune/tuning_log.ml: Fun List Option Printf Result Search Sketch String
