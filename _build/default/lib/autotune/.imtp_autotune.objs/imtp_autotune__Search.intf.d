lib/autotune/search.mli: Imtp_passes Imtp_upmem Imtp_workload Measure Sketch
