lib/autotune/rng.mli:
