lib/autotune/search.ml: Cost_model Float Hashtbl List Logs Measure Option Rng Sketch
