lib/autotune/verifier.mli: Imtp_schedule Imtp_tir Imtp_upmem
