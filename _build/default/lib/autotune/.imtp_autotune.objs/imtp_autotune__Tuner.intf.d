lib/autotune/tuner.mli: Imtp_passes Imtp_tir Imtp_upmem Imtp_workload Result Search Sketch
