lib/autotune/cost_model.ml: Array Float Imtp_workload Sketch
