lib/autotune/sketch.ml: Imtp_lower Imtp_schedule Imtp_upmem Imtp_workload List Printf Rng
