lib/autotune/verifier.ml: Hashtbl Imtp_schedule Imtp_tensor Imtp_tir Imtp_upmem List Option Printf Result
