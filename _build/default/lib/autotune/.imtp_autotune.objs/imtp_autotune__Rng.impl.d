lib/autotune/rng.ml: List Random
