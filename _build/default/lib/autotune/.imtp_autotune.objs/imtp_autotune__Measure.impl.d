lib/autotune/measure.ml: Imtp_lower Imtp_passes Imtp_tir Imtp_upmem Rng Sketch Verifier
