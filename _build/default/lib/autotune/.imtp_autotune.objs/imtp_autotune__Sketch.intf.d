lib/autotune/sketch.mli: Imtp_lower Imtp_schedule Imtp_upmem Imtp_workload Rng
