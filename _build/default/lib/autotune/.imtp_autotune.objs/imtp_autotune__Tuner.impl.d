lib/autotune/tuner.ml: Imtp_tir Imtp_upmem Measure Printf Search Sketch
