type result = {
  params : Sketch.params;
  stats : Imtp_upmem.Stats.t;
  latency_s : float;
}

let noise_amplitude = 0.02

let build ?(passes = Imtp_passes.Pipeline.all_on) ?(skip_inputs = []) cfg op params =
  match Sketch.instantiate op params with
  | exception Invalid_argument m -> Error ("sketch: " ^ m)
  | sched -> (
      match Verifier.check_sched cfg sched with
      | Error r -> Error ("verifier: " ^ r.Verifier.reason)
      | Ok () -> (
          let options =
            {
              (Sketch.lower_options params) with
              Imtp_lower.Lowering.skip_input_transfer = skip_inputs;
            }
          in
          match Imtp_lower.Lowering.lower ~options sched with
          | exception Imtp_lower.Lowering.Lower_error m -> Error ("lower: " ^ m)
          | prog -> (
              let prog = Imtp_passes.Pipeline.run ~config:passes cfg prog in
              match Verifier.check cfg prog with
              | Error r -> Error ("verifier: " ^ r.Verifier.reason)
              | Ok () -> Ok prog)))

let measure ?rng ?passes ?skip_inputs cfg op params =
  match build ?passes ?skip_inputs cfg op params with
  | Error m -> Error m
  | Ok prog -> (
      match Imtp_tir.Cost.measure cfg prog with
      | exception Imtp_tir.Cost.Error m -> Error ("cost: " ^ m)
      | stats ->
          let base = Imtp_upmem.Stats.total_s stats in
          let latency_s =
            match rng with
            | None -> base
            | Some r ->
                base *. (1. +. (noise_amplitude *. ((2. *. Rng.float r 1.) -. 1.)))
          in
          Ok { params; stats; latency_s })
