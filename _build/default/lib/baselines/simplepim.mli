(** SimplePIM baseline (Chen et al., PACT'23), for the VA and RED
    comparisons of §7.1.

    SimplePIM is a map/reduce framework over 1-D arrays.  Its published
    inefficiencies, reproduced here as explicit code in the generated
    programs:

    - gather ([simplepim_gather]) copies the {e entire} array once more
      inside the host after the D2H transfer ("the entire tensor is
      unnecessarily copied inside the host"), making D2H-side cost
      4–11× worse than PrIM/IMTP on VA;
    - DPU-side partial reduction synchronizes all tasklets with global
      barriers at every combining step instead of PrIM's two-thread
      handshake;
    - the host final reduction goes through generic handler functions,
      costing several calls per element. *)

val supported : Imtp_workload.Op.t -> bool
(** VA/GEVA and RED only, as in the paper. *)

val build :
  Imtp_upmem.Config.t -> Imtp_workload.Op.t ->
  (Imtp_tir.Program.t, string) Result.t

val measure :
  Imtp_upmem.Config.t -> Imtp_workload.Op.t ->
  (Imtp_upmem.Stats.t, string) Result.t
