(** PrIM-style baselines (§6 "Experimental setup").

    PrIM kernels are hand-written, hand-optimized UPMEM C: 1-D spatial
    tiling only (DPUs along the outermost spatial dimension), DMA block
    transfers, a fixed caching-tile size recommended by the UPMEM
    programming guide (1,024 B), and — for RED — every tasklet's
    partial result transferred to the host.  We reproduce those
    decisions through the same lowering used by IMTP, restricted to
    the PrIM structure (no reduction-dimension tiling, no loop
    tightening/branch hoisting), plus a dedicated RED program builder
    mirroring PrIM's per-tasklet readout.

    The parameterization covers all three configurations of §6:
    [default] is PrIM; grid-searching [ndpus] gives PrIM(E);
    grid-searching [ndpus], [tasklets] and [cache_bytes] gives
    PrIM+search. *)

type params = {
  ndpus : int;
  tasklets : int;
  cache_bytes : int;
  host_threads : int;
}

val default : params
(** PrIM paper defaults: 16 tasklets, 1,024-byte caching tiles. *)

val default_for : Imtp_workload.Op.t -> params
(** Per-workload default DPU counts, mirroring the "PrIM/PrIM(E) #
    DPUs" row of Table 3 (the PrIM suite ships NR_DPUS defaults per
    benchmark: VA/GEVA use the whole machine, RED/MTV/GEMV default to
    a few hundred DPUs, TTV/MMTV to the flattened outer dimension). *)

val build :
  ?skip_inputs:string list ->
  Imtp_upmem.Config.t -> Imtp_workload.Op.t -> params ->
  (Imtp_tir.Program.t, string) Result.t
(** [skip_inputs] marks MRAM-resident weights (§5.4); ignored by the
    dedicated RED builder, which has no reusable inputs. *)

val measure :
  ?skip_inputs:string list ->
  Imtp_upmem.Config.t -> Imtp_workload.Op.t -> params ->
  (Imtp_upmem.Stats.t, string) Result.t

val grid_search :
  ?dpu_choices:int list ->
  ?tasklet_choices:int list ->
  ?cache_choices:int list ->
  Imtp_upmem.Config.t -> Imtp_workload.Op.t ->
  (params * Imtp_upmem.Stats.t, string) Result.t
(** Exhaustive search over the given value sets (defaults reproduce the
    paper's PrIM+search grid), returning the fastest configuration. *)

val prim_e :
  Imtp_upmem.Config.t -> Imtp_workload.Op.t ->
  (params * Imtp_upmem.Stats.t, string) Result.t
(** PrIM(E): only the number of DPUs is searched (2^5..2^11 for MMTV,
    2^8..2^11 otherwise, as in §6). *)
