module Op = Imtp_workload.Op
module Sk = Imtp_autotune.Sketch
module E = Imtp_tir.Expr
module St = Imtp_tir.Stmt
module B = Imtp_tir.Buffer
module V = Imtp_tir.Var
module P = Imtp_tir.Program
module U = Imtp_upmem

let supported (op : Op.t) =
  match op.Op.opname with "va" | "geva" | "red" -> true | _ -> false

let ceil_div a b = (a + b - 1) / b
let ei = E.int

let spim_passes =
  { Imtp_passes.Pipeline.all_off with Imtp_passes.Pipeline.dma_elim = true }

(* VA/GEVA: the kernel is comparable to PrIM's; the published
   inefficiency is the gather, which copies the whole output array once
   more inside the host. *)
let build_va cfg (op : Op.t) =
  let n = (List.hd op.Op.axes).Op.extent in
  let params =
    {
      Sk.default_params with
      Sk.spatial_dpus = U.Config.nr_dpus cfg;
      tasklets = 16;
      cache_elems = 64;
    }
  in
  match Imtp_autotune.Measure.build ~passes:spim_passes cfg op params with
  | Error m -> Error m
  | Ok prog ->
      (* SimplePIM arrays are framework handles: creating one from user
         data copies the array into the framework buffer (scatter), and
         gathering copies the whole output array once more inside the
         host. *)
      let staging (t, _) =
        let buf = B.create ("spim_stage_" ^ t) op.Op.dtype ~elems:n B.Host in
        let v = V.fresh ("s" ^ t) in
        ( buf,
          St.For
            {
              var = v;
              extent = ei n;
              kind = St.Serial;
              body = St.store buf.B.name (E.var v) (E.load t (E.var v));
            } )
      in
      let stages = List.map staging op.Op.inputs in
      let gather = B.create "spim_gather" op.Op.dtype ~elems:n B.Host in
      let v = V.fresh "g" in
      let copy =
        St.For
          {
            var = v;
            extent = ei n;
            kind = St.Serial;
            body = St.store "spim_gather" (E.var v) (E.load "C" (E.var v));
          }
      in
      Ok
        {
          prog with
          P.name = "simplepim_" ^ op.Op.opname;
          host_buffers = prog.P.host_buffers @ List.map fst stages @ [ gather ];
          host = St.seq (List.map snd stages @ [ prog.P.host; copy ]);
        }

(* RED: per-DPU partial results (no redundant copies), but the generic
   map/reduce handlers cost extra WRAM traffic per element, tasklets
   combine through global barriers, and the host final reduction goes
   through framework functions. *)
let build_red (op : Op.t) ndpus =
  let n = (List.hd op.Op.axes).Op.extent in
  let t = 16 and cache = 64 in
  let ndpus = max 1 (min ndpus n) in
  let q = ceil_div n ndpus in
  let chunks = max 1 (ceil_div q (t * cache)) in
  let slice = chunks * t * cache in
  let a = B.create "A" op.Op.dtype ~elems:n B.Host in
  let c = B.create "C" op.Op.dtype ~elems:1 B.Host in
  let part = B.create "P_partial" op.Op.dtype ~elems:ndpus B.Host in
  let am = B.create "A_m" op.Op.dtype ~elems:slice B.Mram in
  let cm = B.create "C_m" op.Op.dtype ~elems:1 B.Mram in
  let partials = B.create "spim_partials" op.Op.dtype ~elems:t B.Wram in
  let tmp = B.create "spim_tmp" op.Op.dtype ~elems:1 B.Wram in
  let aw = B.create "A_w" op.Op.dtype ~elems:cache B.Wram in
  let blk = V.fresh "blk"
  and thr = V.fresh "thr"
  and ch = V.fresh "ch"
  and e1 = V.fresh "e"
  and e2 = V.fresh "e2" in
  let local ev = E.((E.Binop (E.Mul, E.Binop (E.Add, E.Binop (E.Mul, var thr, int chunks), var ch), int cache)) + var ev) in
  let global ev = E.(E.Binop (E.Mul, var blk, int q) + local ev) in
  let valid ev =
    E.and_ (E.Cmp (E.Lt, local ev, ei q)) (E.Cmp (E.Lt, global ev, ei n))
  in
  let log2t =
    let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
    go 0 t
  in
  let per_tasklet =
    St.seq
      [
        St.store "spim_partials" (E.var thr) (ei 0);
        St.For
          {
            var = ch;
            extent = ei chunks;
            kind = St.Serial;
            body =
              St.Alloc
                {
                  buffer = aw;
                  body =
                    St.seq
                      [
                        St.for_ e1 (ei cache)
                          (St.if_ (valid e1)
                             (St.Dma
                                {
                                  dir = St.Mram_to_wram;
                                  wram = "A_w";
                                  wram_off = E.var e1;
                                  mram = "A_m";
                                  mram_off = local e1;
                                  elems = ei 1;
                                }));
                        (* generic handler: element staged through a
                           temporary before accumulation. *)
                        St.for_ e2 (ei cache)
                          (St.if_ (valid e2)
                             (St.seq
                                [
                                  St.store "spim_tmp" (ei 0)
                                    (E.load "A_w" (E.var e2));
                                  St.store "spim_partials" (E.var thr)
                                    E.(
                                      load "spim_partials" (var thr)
                                      + load "spim_tmp" (int 0));
                                ]));
                      ];
                };
          };
      ]
  in
  let combine =
    (* tree combine, statically unrolled, with a global barrier per
       step (vs. PrIM's cheap two-thread handshake). *)
    let steps =
      List.init log2t (fun s ->
          let stride = t lsr (s + 1) in
          let cv = V.fresh "cw" in
          St.seq
            [
              St.Barrier;
              St.For
                {
                  var = cv;
                  extent = ei stride;
                  kind = St.Serial;
                  body =
                    St.store "spim_partials" (E.var cv)
                      (E.Binop
                         ( E.Add,
                           E.load "spim_partials" (E.var cv),
                           E.load "spim_partials"
                             (E.Binop (E.Add, E.var cv, E.int stride)) ));
                };
            ])
    in
    St.seq steps
  in
  let kernel_body =
    St.For
      {
        var = blk;
        extent = ei ndpus;
        kind = St.Bound St.Block_x;
        body =
          St.Alloc
            {
              buffer = partials;
              body =
                St.Alloc
                  {
                    buffer = tmp;
                    body =
                      St.seq
                        [
                          St.For
                            {
                              var = thr;
                              extent = ei t;
                              kind = St.Bound St.Thread_x;
                              body = per_tasklet;
                            };
                          combine;
                          St.Dma
                            {
                              dir = St.Wram_to_mram;
                              wram = "spim_partials";
                              wram_off = ei 0;
                              mram = "C_m";
                              mram_off = ei 0;
                              elems = ei 1;
                            };
                        ];
                  };
            };
      }
  in
  let d = V.fresh "d" and d2 = V.fresh "d2" and fr = V.fresh "fr" and fh = V.fresh "fh" in
  let host =
    St.seq
      [
        St.For
          {
            var = d;
            extent = ei ndpus;
            kind = St.Serial;
            body =
              St.if_
                E.(var d * int q < int n)
                (St.Xfer
                   {
                     dir = St.To_dpu;
                     mode = St.Push;
                     host = "A";
                     host_off = E.(var d * int q);
                     dpu = E.var d;
                     mram = "A_m";
                     mram_off = ei 0;
                     elems = E.min_e (ei q) E.(int n - (var d * int q));
                     group_dpus = ndpus;
                   });
          };
        St.Launch "spim_red";
        St.For
          {
            var = d2;
            extent = ei ndpus;
            kind = St.Serial;
            body =
              St.Xfer
                {
                  dir = St.From_dpu;
                  mode = St.Push;
                  host = "P_partial";
                  host_off = E.var d2;
                  dpu = E.var d2;
                  mram = "C_m";
                  mram_off = ei 0;
                  elems = ei 1;
                  group_dpus = ndpus;
                };
          };
        St.store "C" (ei 0) (ei 0);
        (* host final reduction through framework handler functions:
           several bookkeeping operations per combined element. *)
        St.For
          {
            var = fr;
            extent = ei ndpus;
            kind = St.Serial;
            body =
              St.seq
                [
                  St.store "C" (ei 0)
                    E.(load "C" (int 0) + load "P_partial" (var fr));
                  St.For
                    {
                      var = fh;
                      extent = ei 6;
                      kind = St.Serial;
                      body = St.store "C" (ei 0) E.(load "C" (int 0) + int 0);
                    };
                ];
          };
      ]
  in
  {
    P.name = "simplepim_red";
    host_buffers = [ a; c; part ];
    mram_buffers = [ am; cm ];
    kernels = [ { P.kname = "spim_red"; body = kernel_body } ];
    host;
  }

let build cfg (op : Op.t) =
  if not (supported op) then Error "SimplePIM supports only VA/GEVA/RED"
  else
    match op.Op.opname with
    | "red" -> (
        let prog = build_red op (U.Config.nr_dpus cfg) in
        let prog = Imtp_passes.Pipeline.run ~config:spim_passes cfg prog in
        match Imtp_autotune.Verifier.check cfg prog with
        | Error r -> Error ("verifier: " ^ r.Imtp_autotune.Verifier.reason)
        | Ok () -> Ok prog)
    | _ -> build_va cfg op

let measure cfg op =
  match build cfg op with
  | Error m -> Error m
  | Ok prog -> (
      match Imtp_tir.Cost.measure cfg prog with
      | exception Imtp_tir.Cost.Error m -> Error m
      | stats -> Ok stats)
