lib/baselines/prim.mli: Imtp_tir Imtp_upmem Imtp_workload Result
