lib/baselines/simplepim.mli: Imtp_tir Imtp_upmem Imtp_workload Result
