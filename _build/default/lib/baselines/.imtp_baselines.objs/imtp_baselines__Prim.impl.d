lib/baselines/prim.ml: Imtp_autotune Imtp_passes Imtp_tir Imtp_upmem Imtp_workload List Option
