(** Capture-free substitution of variables by expressions. *)

val expr : Var.t -> Expr.t -> Expr.t -> Expr.t
(** [expr v e target] replaces every free occurrence of [v] in [target]
    by [e]. *)

val expr_many : Expr.t Var.Map.t -> Expr.t -> Expr.t
val stmt : Var.t -> Expr.t -> Stmt.t -> Stmt.t
(** Loop variables are unique ({!Var.fresh}), so no shadowing can occur
    and substitution descends through binders unconditionally. *)

val stmt_many : Expr.t Var.Map.t -> Stmt.t -> Stmt.t
