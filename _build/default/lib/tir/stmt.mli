(** TIR statements — the loop-based IR that schedule primitives lower
    to (§2.2, §5.2.2).  One statement language serves host and kernel
    programs; kernel-only nodes ([Dma], [Barrier], bound loops) never
    appear in host code and vice versa ([Xfer], [Launch], host-parallel
    loops). *)

type binding =
  | Block_x
  | Block_y
  | Block_z  (** inter-DPU parallelism: loop iterations mapped to DPUs. *)
  | Thread_x  (** intra-DPU parallelism: iterations mapped to tasklets. *)

type loop_kind =
  | Serial
  | Unrolled  (** fully unrolled at codegen; costs no loop overhead but
                  occupies IRAM proportionally to its extent. *)
  | Host_parallel of int  (** host-side OpenMP-style loop on N threads. *)
  | Bound of binding

type dma_dir = Mram_to_wram | Wram_to_mram
type xfer_dir = To_dpu | From_dpu

type xfer_mode =
  | Copy  (** one [dpu_copy_to/from] runtime call per DPU. *)
  | Push  (** bank-parallel [dpu_prepare_xfer]+[dpu_push_xfer]. *)
  | Broadcast_x  (** [dpu_broadcast_to]: same bytes to every DPU. *)

type t =
  | Seq of t list
  | For of { var : Var.t; extent : Expr.t; kind : loop_kind; body : t }
  | If of { cond : Expr.t; then_ : t; else_ : t option }
  | Store of { buf : string; index : Expr.t; value : Expr.t }
  | Alloc of { buffer : Buffer.t; body : t }
      (** scoped WRAM (kernel) or scratch (host) allocation. *)
  | Dma of {
      dir : dma_dir;
      wram : string;
      wram_off : Expr.t;
      mram : string;
      mram_off : Expr.t;
      elems : Expr.t;  (** transfer length; a constant enables the
                           cheap static-size DMA initiation. *)
    }
  | Xfer of {
      dir : xfer_dir;
      mode : xfer_mode;
      host : string;
      host_off : Expr.t;
      dpu : Expr.t;  (** target DPU id (ignored for [Broadcast_x]). *)
      mram : string;
      mram_off : Expr.t;
      elems : Expr.t;
      group_dpus : int;
    }
  | Launch of string  (** kernel launch by name. *)
  | Barrier  (** tasklet barrier inside a kernel. *)
  | Nop

val seq : t list -> t
(** Flattens nested [Seq]s and drops [Nop]s. *)

val for_ : Var.t -> Expr.t -> ?kind:loop_kind -> t -> t
val if_ : Expr.t -> t -> t
val store : string -> Expr.t -> Expr.t -> t

val rewrite_bottom_up : (t -> t) -> t -> t
(** Rebuild the tree, applying [f] to every node after its children
    have been rewritten. *)

val map_exprs : (Expr.t -> Expr.t) -> t -> t
(** Apply [f] to every expression embedded in the statement tree
    (conditions, extents, indices, values, transfer fields). *)

val iter : (t -> unit) -> t -> unit
val exists : (t -> bool) -> t -> bool
val free_vars : t -> Var.Set.t
(** Variables read anywhere in the tree minus those bound by loops. *)

val binding_to_string : binding -> string
val loop_extents : t -> (Var.t * Expr.t * loop_kind) list
(** Pre-order list of all loops. *)
