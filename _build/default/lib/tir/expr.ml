type binop = Add | Sub | Mul | Div | Mod | Min | Max
type cmp = Lt | Le | Gt | Ge | Eq | Ne

type t =
  | Int_const of int
  | Float_const of float
  | Var of Var.t
  | Binop of binop * t * t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Select of t * t * t
  | Load of string * t
  | Cast of Imtp_tensor.Dtype.t * t

let int n = Int_const n
let float f = Float_const f
let var v = Var v
let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( % ) a b = Binop (Mod, a, b)
let min_e a b = Binop (Min, a, b)
let max_e a b = Binop (Max, a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let ( = ) a b = Cmp (Eq, a, b)
let ( <> ) a b = Cmp (Ne, a, b)
let and_ a b = And (a, b)
let or_ a b = Or (a, b)
let not_ a = Not a
let load buf idx = Load (buf, idx)

let rec equal a b =
  match (a, b) with
  | Int_const x, Int_const y -> Int.equal x y
  | Float_const x, Float_const y -> Float.equal x y
  | Var x, Var y -> Var.equal x y
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
      Stdlib.( = ) o1 o2 && equal a1 a2 && equal b1 b2
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) ->
      Stdlib.( = ) o1 o2 && equal a1 a2 && equal b1 b2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
      equal a1 a2 && equal b1 b2
  | Not a1, Not a2 -> equal a1 a2
  | Select (c1, t1, e1), Select (c2, t2, e2) ->
      equal c1 c2 && equal t1 t2 && equal e1 e2
  | Load (n1, i1), Load (n2, i2) -> String.equal n1 n2 && equal i1 i2
  | Cast (d1, e1), Cast (d2, e2) -> Imtp_tensor.Dtype.equal d1 d2 && equal e1 e2
  | ( ( Int_const _ | Float_const _ | Var _ | Binop _ | Cmp _ | And _ | Or _
      | Not _ | Select _ | Load _ | Cast _ ),
      _ ) ->
      false

let rec free_vars = function
  | Int_const _ | Float_const _ -> Var.Set.empty
  | Var v -> Var.Set.singleton v
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      Var.Set.union (free_vars a) (free_vars b)
  | Not a | Cast (_, a) -> free_vars a
  | Select (c, t, e) ->
      Var.Set.union (free_vars c) (Var.Set.union (free_vars t) (free_vars e))
  | Load (_, i) -> free_vars i

let is_const = function Int_const _ | Float_const _ -> true | _ -> false

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "//"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"

let cmp_str = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let rec pp ppf = function
  | Int_const n -> Format.pp_print_int ppf n
  | Float_const f -> Format.fprintf ppf "%g" f
  | Var v -> Var.pp ppf v
  | Binop (((Min | Max) as op), a, b) ->
      Format.fprintf ppf "%s(%a, %a)" (binop_str op) pp a pp b
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp a (binop_str op) pp b
  | Cmp (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (cmp_str op) pp b
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(not %a)" pp a
  | Select (c, t, e) ->
      Format.fprintf ppf "(%a if %a else %a)" pp t pp c pp e
  | Load (buf, idx) -> Format.fprintf ppf "%s[%a]" buf pp idx
  | Cast (dt, e) -> Format.fprintf ppf "%a(%a)" Imtp_tensor.Dtype.pp dt pp e

let to_string t = Format.asprintf "%a" pp t
