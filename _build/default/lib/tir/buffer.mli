(** Buffer descriptors.

    A buffer lives in one of three scopes mirroring the UPMEM memory
    hierarchy.  [Mram] buffers are per-DPU (each DPU holds its own copy
    of the declared extent); [Wram] buffers are per-tasklet locals
    allocated by [Stmt.Alloc]; [Host] buffers are global host arrays. *)

type scope = Host | Mram | Wram

type t = {
  name : string;  (** unique within a program. *)
  dtype : Imtp_tensor.Dtype.t;
  elems : int;  (** flat extent, in elements. *)
  scope : scope;
}

val create : string -> Imtp_tensor.Dtype.t -> elems:int -> scope -> t
val bytes : t -> int
val scope_to_string : scope -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
