type t = { name : string; id : int }

let counter = ref 0

let fresh name =
  incr counter;
  { name; id = !counter }

let name t = t.name
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let pp ppf t =
  if t.name = "" then Format.fprintf ppf "v#%d" t.id
  else Format.pp_print_string ppf t.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
