let rec expr_many map e =
  let go = expr_many map in
  match (e : Expr.t) with
  | Var v -> ( match Var.Map.find_opt v map with Some r -> r | None -> e)
  | Int_const _ | Float_const _ -> e
  | Binop (op, a, b) -> Binop (op, go a, go b)
  | Cmp (op, a, b) -> Cmp (op, go a, go b)
  | And (a, b) -> And (go a, go b)
  | Or (a, b) -> Or (go a, go b)
  | Not a -> Not (go a)
  | Select (c, t, f) -> Select (go c, go t, go f)
  | Load (buf, i) -> Load (buf, go i)
  | Cast (dt, a) -> Cast (dt, go a)

let expr v e target = expr_many (Var.Map.singleton v e) target
let stmt_many map s = Stmt.map_exprs (expr_many map) s
let stmt v e s = stmt_many (Var.Map.singleton v e) s
