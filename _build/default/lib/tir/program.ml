type kernel = { kname : string; body : Stmt.t }

type t = {
  name : string;
  host_buffers : Buffer.t list;
  mram_buffers : Buffer.t list;
  kernels : kernel list;
  host : Stmt.t;
}

let buffer_of t name =
  let find = List.find_opt (fun (b : Buffer.t) -> String.equal b.name name) in
  match find t.host_buffers with
  | Some b -> Some b
  | None -> find t.mram_buffers

let kernel_of t name =
  List.find_opt (fun k -> String.equal k.kname name) t.kernels

let grid k =
  let dpus = ref 1 and tasklets = ref 1 in
  Stmt.iter
    (function
      | Stmt.For { extent; kind = Stmt.Bound b; _ } -> (
          let e =
            match Simplify.const_int extent with
            | Some n -> n
            | None -> invalid_arg "Program.grid: non-constant bound extent"
          in
          match b with
          | Stmt.Block_x | Stmt.Block_y | Stmt.Block_z -> dpus := !dpus * e
          | Stmt.Thread_x -> tasklets := !tasklets * e)
      | Stmt.Seq _ | Stmt.For _ | Stmt.If _ | Stmt.Store _ | Stmt.Alloc _
      | Stmt.Dma _ | Stmt.Xfer _ | Stmt.Launch _ | Stmt.Barrier | Stmt.Nop ->
          ())
    k.body;
  (!dpus, !tasklets)

let dpus_used t =
  List.fold_left (fun acc k -> max acc (fst (grid k))) 1 t.kernels

let tasklets_used t =
  List.fold_left (fun acc k -> max acc (snd (grid k))) 1 t.kernels

(* Static code-size estimate in instructions. *)
let rec static_instrs (s : Stmt.t) : float =
  match s with
  | Seq ss -> List.fold_left (fun a s -> a +. static_instrs s) 0. ss
  | For { kind = Unrolled; extent; body; _ } ->
      let n = Option.value (Simplify.const_int extent) ~default:8 in
      float_of_int n *. static_instrs body
  | For { body; _ } -> 4. +. static_instrs body
  | If { then_; else_; _ } ->
      3. +. static_instrs then_
      +. (match else_ with None -> 0. | Some e -> static_instrs e)
  | Store _ -> 3.
  | Alloc { body; _ } -> 2. +. static_instrs body
  | Dma _ -> 4.
  | Xfer _ -> 6.
  | Launch _ -> 4.
  | Barrier -> 2.
  | Nop -> 0.

let iram_footprint_bytes k =
  Imtp_upmem.Timing.estimate_iram_bytes ~instructions:(64. +. static_instrs k.body)

let validate t =
  let ( let* ) = Result.bind in
  let names = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc (b : Buffer.t) ->
        let* () = acc in
        if Hashtbl.mem names b.name then
          Error (Printf.sprintf "duplicate buffer name %s" b.name)
        else begin
          Hashtbl.add names b.name ();
          Ok ()
        end)
      (Ok ())
      (t.host_buffers @ t.mram_buffers)
  in
  let* () =
    (* Host statement restrictions. *)
    let bad = ref None in
    Stmt.iter
      (function
        | Stmt.Dma _ -> bad := Some "Dma in host code"
        | Stmt.Barrier -> bad := Some "Barrier in host code"
        | Stmt.For { kind = Stmt.Bound _; _ } -> bad := Some "bound loop in host code"
        | Stmt.Launch l ->
            if kernel_of t l = None then
              bad := Some (Printf.sprintf "launch of unknown kernel %s" l)
        | Stmt.Seq _ | Stmt.For _ | Stmt.If _ | Stmt.Store _ | Stmt.Alloc _
        | Stmt.Xfer _ | Stmt.Nop ->
            ())
      t.host;
    match !bad with None -> Ok () | Some m -> Error m
  in
  List.fold_left
    (fun acc k ->
      let* () = acc in
      let bad = ref None in
      Stmt.iter
        (function
          | Stmt.Xfer _ -> bad := Some "Xfer in kernel code"
          | Stmt.Launch _ -> bad := Some "Launch in kernel code"
          | Stmt.For { kind = Stmt.Host_parallel _; _ } ->
              bad := Some "host-parallel loop in kernel code"
          | Stmt.Seq _ | Stmt.For _ | Stmt.If _ | Stmt.Store _ | Stmt.Alloc _
          | Stmt.Dma _ | Stmt.Barrier | Stmt.Nop ->
              ())
        k.body;
      match !bad with
      | None -> Ok ()
      | Some m -> Error (Printf.sprintf "kernel %s: %s" k.kname m))
    (Ok ()) t.kernels
