(** Affine analysis over index expressions.

    The lowering produces affine indices and linear boundary conditions
    (§5.3: "loop-based TIR kernel codes with affine access patterns and
    static tensor shapes"); these utilities recover that structure for
    the bulk-transfer coalescer, the loop-bound-tightening pass and the
    DMA legality checks. *)

val is_free_of : Var.t -> Expr.t -> bool

val linear_in : Var.t -> Expr.t -> (int * Expr.t) option
(** [linear_in v e = Some (c, r)] when [e = c*v + r] with [r] free of
    [v] and [c] a static constant.  [None] when [e] is not linear in
    [v] (e.g. [v] occurs under division). *)

val stride_in : Var.t -> Expr.t -> int option
(** Just the coefficient of {!linear_in}. *)

val upper_bound_from_cond : Var.t -> Expr.t -> Expr.t option
(** [upper_bound_from_cond v cond] rewrites a linear inequality as an
    exclusive upper bound on [v]: returns [Some b] with
    [cond ⟺ v < b] (for the iteration ranges at hand).  Handles
    [c*v + r OP e] for OP ∈ {<, <=, >, >=} with the variable on either
    side and positive or negative [c]; returns [None] for conditions
    that are lower bounds on [v] or not linear. *)

val conjuncts : Expr.t -> Expr.t list
(** Flatten a conjunction into its atoms. *)

val conjoin : Expr.t list -> Expr.t
(** Inverse of {!conjuncts}; the empty list yields literal true. *)

val contains_load : Expr.t -> bool
