(** A lowered UPMEM program: one host statement plus the DPU kernels it
    launches, with the buffers they operate on (§5.2.2, "A loop-based
    TIR program is further lowered to separate TIR programs for host
    and DPU kernels"). *)

type kernel = { kname : string; body : Stmt.t }

type t = {
  name : string;
  host_buffers : Buffer.t list;  (** inputs/outputs + host scratch. *)
  mram_buffers : Buffer.t list;  (** per-DPU MRAM regions. *)
  kernels : kernel list;
  host : Stmt.t;
}

val buffer_of : t -> string -> Buffer.t option
(** Looks up host and MRAM buffers; WRAM buffers are found on their
    [Alloc] nodes, not here. *)

val kernel_of : t -> string -> kernel option

val grid : kernel -> int * int
(** [(dpus, tasklets)]: products of the kernel's DPU-bound and
    tasklet-bound loop extents (1 if absent).
    @raise Invalid_argument on a non-constant bound-loop extent. *)

val dpus_used : t -> int
(** Maximum grid width over all kernels. *)

val tasklets_used : t -> int

val validate : t -> (unit, string) result
(** Structural well-formedness: unique buffer names, launches resolve,
    kernels contain no host-only nodes and the host no kernel-only
    nodes, bound loops only in kernels. *)

val iram_footprint_bytes : kernel -> int
(** Static-instruction estimate for the IRAM capacity check. *)
