(** TVM-script-style pretty printing of TIR statements and programs,
    used by the examples, the CLI's [lower] command and test
    diagnostics. *)

val pp_stmt : Format.formatter -> Stmt.t -> unit
val stmt_to_string : Stmt.t -> string
val pp_program : Format.formatter -> Program.t -> unit
val program_to_string : Program.t -> string
