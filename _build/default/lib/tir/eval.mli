(** Functional interpreter for lowered programs.

    Executes the host statement, the data transfers and every (DPU,
    tasklet) instance of the kernels sequentially over simulated
    memories, producing bit-exact results for validation against
    {!Imtp_tensor.Reference}.  Used by tests and small-shape example
    runs; timing is the job of {!Cost}. *)

exception Error of string

(** Dynamic execution counters, for cross-validating the analytic cost
    model against actually-executed work. *)
type counters = {
  mutable kernel_stores : int;  (** Store executions inside kernels. *)
  mutable kernel_loads : int;  (** Load evaluations inside kernels. *)
  mutable dma_elems : int;  (** elements moved by MRAM<->WRAM DMA. *)
  mutable dma_ops : int;  (** DMA instructions executed. *)
  mutable xfer_elems_h2d : int;  (** elements moved host->DPU. *)
  mutable xfer_elems_d2h : int;  (** elements moved DPU->host. *)
}

val run :
  Program.t ->
  inputs:(string * Imtp_tensor.Tensor.t) list ->
  (string * Imtp_tensor.Tensor.t) list
(** [run p ~inputs] executes [p].  [inputs] must provide a tensor for
    every host buffer that is read before being written; host buffers
    not supplied start zeroed.  Returns all host buffers (inputs
    unchanged, outputs filled).

    @raise Error on scope violations (e.g. a kernel touching a host
    buffer), unknown buffers, or out-of-bounds accesses. *)

val run_counted :
  Program.t ->
  inputs:(string * Imtp_tensor.Tensor.t) list ->
  (string * Imtp_tensor.Tensor.t) list * counters
(** Like {!run}, additionally returning dynamic execution counters. *)
