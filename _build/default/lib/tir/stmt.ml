type binding = Block_x | Block_y | Block_z | Thread_x

type loop_kind = Serial | Unrolled | Host_parallel of int | Bound of binding
type dma_dir = Mram_to_wram | Wram_to_mram
type xfer_dir = To_dpu | From_dpu
type xfer_mode = Copy | Push | Broadcast_x

type t =
  | Seq of t list
  | For of { var : Var.t; extent : Expr.t; kind : loop_kind; body : t }
  | If of { cond : Expr.t; then_ : t; else_ : t option }
  | Store of { buf : string; index : Expr.t; value : Expr.t }
  | Alloc of { buffer : Buffer.t; body : t }
  | Dma of {
      dir : dma_dir;
      wram : string;
      wram_off : Expr.t;
      mram : string;
      mram_off : Expr.t;
      elems : Expr.t;
    }
  | Xfer of {
      dir : xfer_dir;
      mode : xfer_mode;
      host : string;
      host_off : Expr.t;
      dpu : Expr.t;
      mram : string;
      mram_off : Expr.t;
      elems : Expr.t;
      group_dpus : int;
    }
  | Launch of string
  | Barrier
  | Nop

let seq stmts =
  let rec flat acc = function
    | [] -> acc
    | Nop :: rest -> flat acc rest
    | Seq inner :: rest -> flat (flat acc inner) rest
    | s :: rest -> flat (s :: acc) rest
  in
  match List.rev (flat [] stmts) with
  | [] -> Nop
  | [ s ] -> s
  | ss -> Seq ss

let for_ var extent ?(kind = Serial) body = For { var; extent; kind; body }
let if_ cond then_ = If { cond; then_; else_ = None }
let store buf index value = Store { buf; index; value }

let rec rewrite_bottom_up f t =
  let t' =
    match t with
    | Seq ss -> seq (List.map (rewrite_bottom_up f) ss)
    | For r -> For { r with body = rewrite_bottom_up f r.body }
    | If r ->
        If
          {
            r with
            then_ = rewrite_bottom_up f r.then_;
            else_ = Option.map (rewrite_bottom_up f) r.else_;
          }
    | Alloc r -> Alloc { r with body = rewrite_bottom_up f r.body }
    | (Store _ | Dma _ | Xfer _ | Launch _ | Barrier | Nop) as leaf -> leaf
  in
  f t'

let map_exprs f t =
  rewrite_bottom_up
    (function
      | For r -> For { r with extent = f r.extent }
      | If r -> If { r with cond = f r.cond }
      | Store r -> Store { r with index = f r.index; value = f r.value }
      | Dma r ->
          Dma
            {
              r with
              wram_off = f r.wram_off;
              mram_off = f r.mram_off;
              elems = f r.elems;
            }
      | Xfer r ->
          Xfer
            {
              r with
              host_off = f r.host_off;
              dpu = f r.dpu;
              mram_off = f r.mram_off;
              elems = f r.elems;
            }
      | (Seq _ | Alloc _ | Launch _ | Barrier | Nop) as s -> s)
    t

let rec iter f t =
  f t;
  match t with
  | Seq ss -> List.iter (iter f) ss
  | For r -> iter f r.body
  | If r ->
      iter f r.then_;
      Option.iter (iter f) r.else_
  | Alloc r -> iter f r.body
  | Store _ | Dma _ | Xfer _ | Launch _ | Barrier | Nop -> ()

let exists p t =
  let found = ref false in
  iter (fun s -> if p s then found := true) t;
  !found

let rec free_vars = function
  | Seq ss ->
      List.fold_left (fun acc s -> Var.Set.union acc (free_vars s)) Var.Set.empty ss
  | For r ->
      Var.Set.union (Expr.free_vars r.extent)
        (Var.Set.remove r.var (free_vars r.body))
  | If r ->
      let e = match r.else_ with None -> Var.Set.empty | Some s -> free_vars s in
      Var.Set.union (Expr.free_vars r.cond) (Var.Set.union (free_vars r.then_) e)
  | Store r -> Var.Set.union (Expr.free_vars r.index) (Expr.free_vars r.value)
  | Alloc r -> free_vars r.body
  | Dma r ->
      Var.Set.union (Expr.free_vars r.wram_off)
        (Var.Set.union (Expr.free_vars r.mram_off) (Expr.free_vars r.elems))
  | Xfer r ->
      List.fold_left
        (fun acc e -> Var.Set.union acc (Expr.free_vars e))
        Var.Set.empty
        [ r.host_off; r.dpu; r.mram_off; r.elems ]
  | Launch _ | Barrier | Nop -> Var.Set.empty

let binding_to_string = function
  | Block_x -> "blockIdx.x"
  | Block_y -> "blockIdx.y"
  | Block_z -> "blockIdx.z"
  | Thread_x -> "threadIdx.x"

let loop_extents t =
  let acc = ref [] in
  iter
    (function
      | For r -> acc := (r.var, r.extent, r.kind) :: !acc
      | Seq _ | If _ | Store _ | Alloc _ | Dma _ | Xfer _ | Launch _ | Barrier
      | Nop ->
          ())
    t;
  List.rev !acc
