lib/tir/program.mli: Buffer Stmt
