lib/tir/var.mli: Format Map Set
