lib/tir/subst.mli: Expr Stmt Var
