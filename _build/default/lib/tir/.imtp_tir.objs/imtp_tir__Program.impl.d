lib/tir/program.ml: Buffer Hashtbl Imtp_upmem List Option Printf Result Simplify Stmt String
