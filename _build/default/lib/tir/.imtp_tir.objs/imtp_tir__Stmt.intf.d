lib/tir/stmt.mli: Buffer Expr Var
