lib/tir/analysis.mli: Expr Var
