lib/tir/simplify.ml: Expr Imtp_tensor Option Stmt Subst Var
