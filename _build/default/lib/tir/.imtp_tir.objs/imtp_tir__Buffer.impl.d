lib/tir/buffer.ml: Format Imtp_tensor String
