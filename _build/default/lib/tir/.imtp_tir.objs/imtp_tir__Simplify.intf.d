lib/tir/simplify.mli: Expr Stmt Var
