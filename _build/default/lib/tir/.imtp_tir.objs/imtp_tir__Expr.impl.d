lib/tir/expr.ml: Float Format Imtp_tensor Int Stdlib String Var
