lib/tir/codegen_c.mli: Program
