lib/tir/eval.ml: Array Buffer Expr Hashtbl Imtp_tensor List Option Printf Program Simplify Stmt Var
