lib/tir/subst.ml: Expr Stmt Var
