lib/tir/analysis.ml: Expr List Option Simplify Stdlib Var
