lib/tir/printer.ml: Buffer Expr Format Imtp_tensor List Printf Program Stmt String Var
