lib/tir/stmt.ml: Buffer Expr List Option Var
