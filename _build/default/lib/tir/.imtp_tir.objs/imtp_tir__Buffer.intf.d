lib/tir/buffer.mli: Format Imtp_tensor
