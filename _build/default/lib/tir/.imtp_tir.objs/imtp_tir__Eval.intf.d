lib/tir/eval.mli: Imtp_tensor Program
