lib/tir/printer.mli: Format Program Stmt
