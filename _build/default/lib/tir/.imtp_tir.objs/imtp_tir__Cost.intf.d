lib/tir/cost.mli: Imtp_upmem Program
