lib/tir/expr.mli: Format Imtp_tensor Var
