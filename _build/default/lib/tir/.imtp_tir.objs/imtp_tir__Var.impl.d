lib/tir/var.ml: Format Int Map Set
