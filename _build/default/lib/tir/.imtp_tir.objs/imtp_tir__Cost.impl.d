lib/tir/cost.ml: Buffer Expr Float Hashtbl Imtp_tensor Imtp_upmem List Printf Program Simplify Stdlib Stmt Var
