lib/tir/codegen_c.ml: Buffer Expr Imtp_tensor List Option Printf Program Stdlib Stmt String Var
