(** UPMEM-SDK-style C emission (§5.4 "UPMEM Backend").

    The simulator executes TIR directly, but the backend that a real
    deployment would use emits UPMEM C: tasklet kernel code built on
    [me()], [mram_read]/[mram_write] and the tasklet barrier, and host
    code built on the Host/DPU Runtime Library
    ([dpu_alloc]/[dpu_prepare_xfer]/[dpu_push_xfer]/[dpu_launch]).
    The output compiles conceptually against the UPMEM SDK headers; in
    this repository it is used for inspection, golden tests and
    documentation of what the lowering produced. *)

val kernel_to_c : Program.t -> Program.kernel -> string
(** The DPU-side C translation unit for one kernel. *)

val host_to_c : Program.t -> string
(** The host-side C translation unit (allocation, transfers, launch,
    post-processing). *)

val program_to_c : Program.t -> string
(** Both units, concatenated with separators. *)
