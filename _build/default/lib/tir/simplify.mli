(** Algebraic simplification and static evaluation of TIR expressions.

    The simplifier performs constant folding and the standard identity
    rewrites (x+0, x*1, x*0, min/max folding, boolean short-circuits);
    it is used both as a cleanup after substitution-heavy lowering and
    as the engine behind the loop-bound-tightening pass. *)

val fold_binop : Expr.binop -> int -> int -> int
(** Constant folding of one integer operation (floor semantics for
    division and modulo).  @raise Division_by_zero. *)

val expr : Expr.t -> Expr.t
(** Bottom-up simplification.  Sound for the non-negative index ranges
    the lowering generates (division/modulo identities assume
    non-negative operands, as in TVM's index simplifier). *)

val stmt : Stmt.t -> Stmt.t
(** Simplify every embedded expression, prune [If]s with constant
    conditions and loops with zero/one-extent bodies. *)

val eval_int : int Var.Map.t -> Expr.t -> int option
(** Evaluate an integer/boolean expression under a partial environment.
    Booleans evaluate to 0/1.  [None] if a free variable, load, or
    float subexpression is encountered. *)

val const_int : Expr.t -> int option
(** [eval_int empty]. *)
