type scope = Host | Mram | Wram

type t = {
  name : string;
  dtype : Imtp_tensor.Dtype.t;
  elems : int;
  scope : scope;
}

let create name dtype ~elems scope =
  if elems <= 0 then invalid_arg "Buffer.create: non-positive extent";
  { name; dtype; elems; scope }

let bytes t = t.elems * Imtp_tensor.Dtype.size_in_bytes t.dtype

let scope_to_string = function
  | Host -> "host"
  | Mram -> "mram"
  | Wram -> "wram"

let equal a b = String.equal a.name b.name

let pp ppf t =
  Format.fprintf ppf "%s: %a[%d] @%s" t.name Imtp_tensor.Dtype.pp t.dtype
    t.elems
    (scope_to_string t.scope)
