(** Loop/index variables with globally unique identities.

    Names are for printing only; identity is the numeric id, so two
    variables named ["i"] created separately never alias. *)

type t = private { name : string; id : int }

val fresh : string -> t
(** A new variable, distinct from all previously created ones. *)

val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints [name] when unambiguous contextually; includes the id as
    [name#id] only when [name] is empty. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
