open Format

let kind_suffix = function
  | Stmt.Serial -> ""
  | Stmt.Unrolled -> "  # unroll"
  | Stmt.Host_parallel n -> Printf.sprintf "  # parallel(%d threads)" n
  | Stmt.Bound b -> Printf.sprintf "  # bind(%s)" (Stmt.binding_to_string b)

let dma_dir_str = function
  | Stmt.Mram_to_wram -> "mram_to_wram"
  | Stmt.Wram_to_mram -> "wram_to_mram"

let xfer_str dir mode =
  let d = match dir with Stmt.To_dpu -> "h2d" | Stmt.From_dpu -> "d2h" in
  let m =
    match mode with
    | Stmt.Copy -> "copy"
    | Stmt.Push -> "push"
    | Stmt.Broadcast_x -> "broadcast"
  in
  d ^ "_" ^ m

let rec pp_stmt_ind ppf ind (s : Stmt.t) =
  let pad () = pp_print_string ppf (String.make ind ' ') in
  match s with
  | Seq ss ->
      List.iteri
        (fun i x ->
          if i > 0 then pp_print_newline ppf ();
          pp_stmt_ind ppf ind x)
        ss
  | For { var; extent; kind; body } ->
      pad ();
      fprintf ppf "for %a in range(%a):%s@." Var.pp var Expr.pp extent
        (kind_suffix kind);
      pp_stmt_ind ppf (ind + 2) body
  | If { cond; then_; else_ } -> (
      pad ();
      fprintf ppf "if %a:@." Expr.pp cond;
      pp_stmt_ind ppf (ind + 2) then_;
      match else_ with
      | None -> ()
      | Some e ->
          pp_print_newline ppf ();
          pad ();
          fprintf ppf "else:@.";
          pp_stmt_ind ppf (ind + 2) e)
  | Store { buf; index; value } ->
      pad ();
      fprintf ppf "%s[%a] = %a" buf Expr.pp index Expr.pp value
  | Alloc { buffer; body } ->
      pad ();
      fprintf ppf "%s = alloc_%s(%d, %a)@." buffer.Buffer.name
        (Buffer.scope_to_string buffer.Buffer.scope)
        buffer.Buffer.elems Imtp_tensor.Dtype.pp buffer.Buffer.dtype;
      pp_stmt_ind ppf ind body
  | Dma { dir; wram; wram_off; mram; mram_off; elems } ->
      pad ();
      fprintf ppf "dma_%s(%s[%a], %s[%a], elems=%a)" (dma_dir_str dir) wram
        Expr.pp wram_off mram Expr.pp mram_off Expr.pp elems
  | Xfer { dir; mode; host; host_off; dpu; mram; mram_off; elems; group_dpus = _ } ->
      pad ();
      fprintf ppf "%s(host=%s[%a], dpu=%a, mram=%s[%a], elems=%a)"
        (xfer_str dir mode) host Expr.pp host_off Expr.pp dpu mram Expr.pp
        mram_off Expr.pp elems
  | Launch k ->
      pad ();
      fprintf ppf "launch(%s)" k
  | Barrier ->
      pad ();
      fprintf ppf "barrier()"
  | Nop ->
      pad ();
      fprintf ppf "pass"

let pp_stmt ppf s = pp_stmt_ind ppf 0 s
let stmt_to_string s = asprintf "%a" pp_stmt s

let pp_program ppf (p : Program.t) =
  fprintf ppf "# program %s@." p.name;
  List.iter (fun b -> fprintf ppf "# host   %a@." Buffer.pp b) p.host_buffers;
  List.iter (fun b -> fprintf ppf "# mram   %a@." Buffer.pp b) p.mram_buffers;
  List.iter
    (fun (k : Program.kernel) ->
      fprintf ppf "@.def kernel_%s():@." k.kname;
      pp_stmt_ind ppf 2 k.body;
      pp_print_newline ppf ())
    p.kernels;
  fprintf ppf "@.def host():@.";
  pp_stmt_ind ppf 2 p.host;
  pp_print_newline ppf ()

let program_to_string p = asprintf "%a" pp_program p
