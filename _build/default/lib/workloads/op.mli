(** Operator definitions — the "abstract computational task" side of
    the TensorIR separation (§2.2): an iteration domain over named axes
    and an element expression, with no implementation choices.
    Schedules (how to tile, bind, cache) are applied separately by
    {!Imtp_schedule.Sched}. *)

type axis_kind = Spatial | Reduction

type axis = { aname : string; extent : int; kind : axis_kind }

(** Element expression over the current iteration point.  [Ref t] reads
    input tensor [t] at the point's coordinates (projected onto [t]'s
    axes).  For reduction ops the output accumulates the expression
    with [+] over the reduction axes. *)
type elem =
  | Ref of string
  | Const of Imtp_tensor.Value.t
  | Bin of bin * elem * elem

and bin = Add | Sub | Mul

type t = {
  opname : string;
  dtype : Imtp_tensor.Dtype.t;
  axes : axis list;  (** canonical loop order, spatial and reduction. *)
  inputs : (string * string list) list;
      (** tensor name and its axes, outermost first. *)
  output : string * string list;  (** name and spatial axes. *)
  body : elem;
}

val create :
  name:string ->
  dtype:Imtp_tensor.Dtype.t ->
  axes:axis list ->
  inputs:(string * string list) list ->
  output:string * string list ->
  body:elem ->
  t
(** @raise Invalid_argument if an input/output references an unknown
    axis, the output references a reduction axis, a [Ref] names an
    unknown input, or axis names collide. *)

val axis : t -> string -> axis
val spatial_axes : t -> axis list
val reduction_axes : t -> axis list
val has_reduction : t -> bool
val input_shape : t -> string -> int list
val output_shape : t -> int list
(** Empty list means a scalar output (stored as one element). *)

val output_elems : t -> int
val total_flops : t -> float
(** Multiply-add count of the whole operation (for reporting). *)

val reference : t -> (string * Imtp_tensor.Tensor.t) list -> Imtp_tensor.Tensor.t
(** Direct-loop evaluation of the definition; the golden semantics every
    schedule must preserve. *)

val pp : Format.formatter -> t -> unit
