lib/workloads/op.ml: Array Format Hashtbl Imtp_tensor List Printf String
