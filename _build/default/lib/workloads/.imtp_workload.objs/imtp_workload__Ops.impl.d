lib/workloads/ops.ml: Imtp_tensor List Op Printf
