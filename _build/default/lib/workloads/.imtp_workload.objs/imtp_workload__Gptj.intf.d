lib/workloads/gptj.mli: Op
