lib/workloads/gptj.ml: Ops
