lib/workloads/ops.mli: Imtp_tensor Op
