lib/workloads/op.mli: Format Imtp_tensor
