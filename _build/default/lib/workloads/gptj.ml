type model = Gptj_6b | Gptj_30b

let model_name = function Gptj_6b -> "GPT-J-6B" | Gptj_30b -> "GPT-J-30B"
let heads = function Gptj_6b -> 16 | Gptj_30b -> 28
let d_model = function Gptj_6b -> 4096 | Gptj_30b -> 7168

type fc_kind = Qkv_gen | Qkv_proj | Fc | Fc_proj

let fc_kinds = [ Qkv_gen; Qkv_proj; Fc; Fc_proj ]

let fc_kind_name = function
  | Qkv_gen -> "qkv_gen"
  | Qkv_proj -> "qkv_proj"
  | Fc -> "fc"
  | Fc_proj -> "fc_proj"

let fc_shape model kind =
  let d = d_model model in
  match kind with
  | Qkv_gen -> (3 * d, d)
  | Qkv_proj -> (d, d)
  | Fc -> (4 * d, d)
  | Fc_proj -> (d, 4 * d)

let fc_op model kind =
  let rows, cols = fc_shape model kind in
  Ops.mtv rows cols

let head_dim = 256

let mmtv_op model ~batch ~tokens =
  Ops.mmtv (batch * heads model) tokens head_dim

let batches = [ 1; 4 ]
let token_sizes = [ 64; 128; 256; 512 ]
