module T = Imtp_tensor

type axis_kind = Spatial | Reduction
type axis = { aname : string; extent : int; kind : axis_kind }
type elem = Ref of string | Const of T.Value.t | Bin of bin * elem * elem
and bin = Add | Sub | Mul

type t = {
  opname : string;
  dtype : T.Dtype.t;
  axes : axis list;
  inputs : (string * string list) list;
  output : string * string list;
  body : elem;
}

let axis t name =
  match List.find_opt (fun a -> String.equal a.aname name) t.axes with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Op.axis: unknown axis %s" name)

let rec elem_refs = function
  | Ref n -> [ n ]
  | Const _ -> []
  | Bin (_, a, b) -> elem_refs a @ elem_refs b

let create ~name ~dtype ~axes ~inputs ~output ~body =
  let t = { opname = name; dtype; axes; inputs; output; body } in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if a.extent <= 0 then invalid_arg "Op.create: non-positive axis extent";
      if Hashtbl.mem seen a.aname then invalid_arg "Op.create: duplicate axis";
      Hashtbl.add seen a.aname ())
    axes;
  List.iter
    (fun (tn, dims) ->
      if dims = [] then
        invalid_arg (Printf.sprintf "Op.create: input %s has no axes" tn);
      List.iter (fun d -> ignore (axis t d)) dims)
    inputs;
  let _, out_dims = output in
  List.iter
    (fun d ->
      let a = axis t d in
      if a.kind = Reduction then
        invalid_arg "Op.create: output indexed by a reduction axis")
    out_dims;
  List.iter
    (fun r ->
      if not (List.mem_assoc r inputs) then
        invalid_arg (Printf.sprintf "Op.create: body references unknown input %s" r))
    (elem_refs body);
  t

let spatial_axes t = List.filter (fun a -> a.kind = Spatial) t.axes
let reduction_axes t = List.filter (fun a -> a.kind = Reduction) t.axes
let has_reduction t = reduction_axes t <> []

let input_shape t name =
  match List.assoc_opt name t.inputs with
  | Some dims -> List.map (fun d -> (axis t d).extent) dims
  | None -> invalid_arg (Printf.sprintf "Op.input_shape: unknown input %s" name)

let output_shape t = List.map (fun d -> (axis t d).extent) (snd t.output)
let output_elems t = List.fold_left ( * ) 1 (output_shape t)

let total_flops t =
  List.fold_left (fun acc a -> acc *. float_of_int a.extent) 1. t.axes

let reference t inputs =
  let find name =
    match List.assoc_opt name inputs with
    | Some x -> x
    | None -> invalid_arg (Printf.sprintf "Op.reference: missing input %s" name)
  in
  let out_shape =
    match output_shape t with [] -> T.Shape.create [ 1 ] | dims -> T.Shape.create dims
  in
  let out = T.Tensor.create t.dtype out_shape in
  let point = Hashtbl.create 8 in
  let rec eval_elem = function
    | Const v -> v
    | Ref name ->
        let dims = List.assoc name t.inputs in
        let idx = Array.of_list (List.map (Hashtbl.find point) dims) in
        T.Tensor.get (find name) idx
    | Bin (op, a, b) -> (
        let x = eval_elem a and y = eval_elem b in
        match op with
        | Add -> T.Value.add x y
        | Sub -> T.Value.sub x y
        | Mul -> T.Value.mul x y)
  in
  let out_index () =
    match snd t.output with
    | [] -> [| 0 |]
    | dims -> Array.of_list (List.map (Hashtbl.find point) dims)
  in
  let rec loop = function
    | [] ->
        let idx = out_index () in
        let v = eval_elem t.body in
        if has_reduction t then T.Tensor.set out idx (T.Value.add (T.Tensor.get out idx) v)
        else T.Tensor.set out idx v
    | a :: rest ->
        for i = 0 to a.extent - 1 do
          Hashtbl.replace point a.aname i;
          loop rest
        done
  in
  loop t.axes;
  out

let rec pp_elem ppf = function
  | Ref n -> Format.pp_print_string ppf n
  | Const v -> T.Value.pp ppf v
  | Bin (op, a, b) ->
      let s = match op with Add -> "+" | Sub -> "-" | Mul -> "*" in
      Format.fprintf ppf "(%a %s %a)" pp_elem a s pp_elem b

let pp ppf t =
  let axis_str a =
    Format.sprintf "%s%s:%d" a.aname
      (match a.kind with Spatial -> "" | Reduction -> "(red)")
      a.extent
  in
  Format.fprintf ppf "%s[%s] %s%s = %a" t.opname
    (String.concat ", " (List.map axis_str t.axes))
    (fst t.output)
    (match snd t.output with
    | [] -> ""
    | dims -> "(" ^ String.concat "," dims ^ ")")
    pp_elem t.body
