(** GPT-J multi-head-attention workload shapes (§6): the four
    fully-connected MTV kernels and the batched MMTV kernels the paper
    evaluates on GPT-J 6B and 30B. *)

type model = Gptj_6b | Gptj_30b

val model_name : model -> string
val heads : model -> int
(** 16 for 6B, 28 for 30B. *)

val d_model : model -> int
(** Hidden size: 4096 for 6B, 7168 for 30B. *)

type fc_kind = Qkv_gen | Qkv_proj | Fc | Fc_proj

val fc_kinds : fc_kind list
val fc_kind_name : fc_kind -> string

val fc_shape : model -> fc_kind -> int * int
(** (rows, cols) of the FC weight matrix, as listed in Fig. 10(a). *)

val fc_op : model -> fc_kind -> Op.t
(** The MTV operation of that FC layer. *)

val mmtv_op : model -> batch:int -> tokens:int -> Op.t
(** Attention-score MMTV of shape (batch×heads, tokens, 256)
    (Fig. 10(b)). *)

val batches : int list
(** Batch sizes evaluated in the paper: 1 and 4. *)

val token_sizes : int list
(** Token counts evaluated in the paper: 64, 128, 256, 512. *)
