lib/schedule/sched.mli: Imtp_workload
