lib/schedule/sched.ml: Imtp_workload Int List Printf String
