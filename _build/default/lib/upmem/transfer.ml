type direction = H2d | D2h
type mode = Serial | Bank_parallel

let rank_bw (cfg : Config.t) = function
  | H2d -> cfg.h2d_bw_per_rank
  | D2h -> cfg.d2h_bw_per_rank

let seconds (cfg : Config.t) dir mode ~ndpus ~bytes_per_dpu =
  if bytes_per_dpu <= 0 || ndpus <= 0 then 0.
  else
    match mode with
    | Serial ->
        let per_dpu =
          cfg.serial_copy_overhead_s
          +. (float_of_int bytes_per_dpu /. cfg.serial_copy_bw)
        in
        float_of_int ndpus *. per_dpu
    | Bank_parallel ->
        (* Ranks proceed in parallel; the busiest rank holds
           min(ndpus, dpus_per_rank) DPUs. *)
        let dpus_busiest_rank = min ndpus cfg.dpus_per_rank in
        let bytes_busiest_rank = dpus_busiest_rank * bytes_per_dpu in
        cfg.parallel_xfer_overhead_s
        +. (float_of_int ndpus *. cfg.xfer_prepare_per_dpu_s)
        +. (float_of_int bytes_busiest_rank /. rank_bw cfg dir)

let broadcast_seconds (cfg : Config.t) ~ndpus ~bytes =
  if bytes <= 0 || ndpus <= 0 then 0.
  else
    (* dpu_broadcast_to: the same buffer is pushed once per rank, ranks
       in parallel; replication inside a rank is pipelined so the cost
       is that of one rank-wide push of [bytes] per DPU. *)
    let dpus_busiest_rank = min ndpus cfg.dpus_per_rank in
    cfg.parallel_xfer_overhead_s
    +. (float_of_int (dpus_busiest_rank * bytes) /. rank_bw cfg H2d)
