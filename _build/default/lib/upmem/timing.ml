type binop = Add | Sub | Mul | Div | Min | Max

let binop_slots dt op =
  match (dt, op) with
  | (Imtp_tensor.Dtype.I8 | Imtp_tensor.Dtype.I32), (Add | Sub) -> 1.
  | (Imtp_tensor.Dtype.I8 | Imtp_tensor.Dtype.I32), (Min | Max) -> 2.
  (* the 8x8 multiplier handles int8 natively; int32 needs a stepper. *)
  | Imtp_tensor.Dtype.I8, Mul -> 2.
  | Imtp_tensor.Dtype.I32, Mul -> 6.
  | Imtp_tensor.Dtype.I8, Div -> 12.
  | Imtp_tensor.Dtype.I32, Div -> 24.
  | Imtp_tensor.Dtype.F32, (Add | Sub) -> 8.
  | Imtp_tensor.Dtype.F32, (Min | Max) -> 6.
  | Imtp_tensor.Dtype.F32, Mul -> 12.
  | Imtp_tensor.Dtype.F32, Div -> 48.

let wram_access_slots = 1.
let mram_scalar_access_slots = 40.
let loop_overhead_slots = 3.

let branch_slots (cfg : Config.t) ~tasklets =
  let base = 2. in
  if tasklets < cfg.revolver_period then
    base +. float_of_int cfg.branch_stall_cycles
  else base

let address_calc_slots ~terms = if terms <= 1 then 1. else float_of_int terms *. 2.

let dma_cycles (cfg : Config.t) bytes =
  let b = max cfg.dma_min_bytes (min bytes cfg.dma_max_bytes) in
  cfg.dma_setup_cycles +. (cfg.dma_cycles_per_byte *. float_of_int b)

let dma_legal (cfg : Config.t) bytes =
  bytes >= cfg.dma_min_bytes && bytes <= cfg.dma_max_bytes && bytes mod 8 = 0

let estimate_iram_bytes ~instructions = int_of_float (instructions *. 8.)
