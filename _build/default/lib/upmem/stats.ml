type t = {
  h2d_s : float;
  kernel_s : float;
  d2h_s : float;
  host_s : float;
  launch_s : float;
  bytes_h2d : int;
  bytes_d2h : int;
  dpus_used : int;
  tasklets_used : int;
}

let zero =
  {
    h2d_s = 0.;
    kernel_s = 0.;
    d2h_s = 0.;
    host_s = 0.;
    launch_s = 0.;
    bytes_h2d = 0;
    bytes_d2h = 0;
    dpus_used = 0;
    tasklets_used = 0;
  }

let total_s t = t.h2d_s +. t.kernel_s +. t.d2h_s +. t.host_s +. t.launch_s

let add a b =
  {
    h2d_s = a.h2d_s +. b.h2d_s;
    kernel_s = a.kernel_s +. b.kernel_s;
    d2h_s = a.d2h_s +. b.d2h_s;
    host_s = a.host_s +. b.host_s;
    launch_s = a.launch_s +. b.launch_s;
    bytes_h2d = a.bytes_h2d + b.bytes_h2d;
    bytes_d2h = a.bytes_d2h + b.bytes_d2h;
    dpus_used = max a.dpus_used b.dpus_used;
    tasklets_used = max a.tasklets_used b.tasklets_used;
  }

let scale k t =
  {
    t with
    h2d_s = k *. t.h2d_s;
    kernel_s = k *. t.kernel_s;
    d2h_s = k *. t.d2h_s;
    host_s = k *. t.host_s;
    launch_s = k *. t.launch_s;
  }

let speedup ~baseline t = total_s baseline /. total_s t

let pp ppf t =
  Format.fprintf ppf
    "total=%.3fms (h2d=%.3f kernel=%.3f d2h=%.3f host=%.3f launch=%.3f) \
     dpus=%d tasklets=%d"
    (total_s t *. 1e3) (t.h2d_s *. 1e3) (t.kernel_s *. 1e3) (t.d2h_s *. 1e3)
    (t.host_s *. 1e3) (t.launch_s *. 1e3) t.dpus_used t.tasklets_used

let pp_row ppf t =
  Format.fprintf ppf "%10.4f %10.4f %10.4f %10.4f %10.4f" (total_s t *. 1e3)
    (t.h2d_s *. 1e3) (t.kernel_s *. 1e3) (t.d2h_s *. 1e3)
    ((t.host_s +. t.launch_s) *. 1e3)
