(** Configuration of the simulated UPMEM system.

    The defaults model the server used in the paper (§6): 32 ranks of
    PIM-enabled DIMMs totalling 2,048 DPUs, each DPU a 350 MHz in-order
    multithreaded core with 24 hardware threads (tasklets), 64 KB WRAM,
    24 KB IRAM and a 64 MB MRAM bank.  Timing constants follow the PrIM
    characterization study (Gómez-Luna et al., IEEE Access 2022) and
    UPMEM's documentation; see DESIGN.md for the substitution rationale. *)

type t = {
  nr_ranks : int;  (** number of PIM ranks (32). *)
  dpus_per_rank : int;  (** DPUs per rank (64). *)
  max_tasklets : int;  (** hardware threads per DPU (24). *)
  wram_bytes : int;  (** working RAM per DPU (65,536). *)
  mram_bytes : int;  (** MRAM bank per DPU (64 MiB). *)
  iram_bytes : int;  (** instruction RAM per DPU (24,576). *)
  dpu_freq_hz : float;  (** DPU clock (350 MHz). *)
  revolver_period : int;
      (** minimum cycles between two issues of the same tasklet; the
          14-stage "revolver" pipeline saturates at 11 tasklets. *)
  branch_stall_cycles : int;
      (** extra front-end bubble charged per conditional branch when the
          pipeline is not saturated (no branch predictor on DPUs). *)
  dma_setup_cycles : float;  (** fixed cost of one MRAM<->WRAM DMA. *)
  dma_cycles_per_byte : float;  (** marginal DMA cost (≈0.5 cy/B). *)
  dma_min_bytes : int;  (** minimum DMA transfer size (8). *)
  dma_max_bytes : int;  (** maximum DMA transfer size (2,048). *)
  h2d_bw_per_rank : float;  (** bank-parallel host→DPU B/s per rank. *)
  d2h_bw_per_rank : float;  (** bank-parallel DPU→host B/s per rank. *)
  serial_copy_bw : float;  (** B/s of a single-DPU (serial) copy. *)
  serial_copy_overhead_s : float;  (** per-DPU fixed cost, serial copy. *)
  parallel_xfer_overhead_s : float;  (** per push_xfer launch cost. *)
  xfer_prepare_per_dpu_s : float;
      (** host-side [dpu_prepare_xfer] bookkeeping per participating
          DPU in a bank-parallel transfer. *)
  kernel_launch_overhead_s : float;  (** per dpu_launch cost. *)
  host_threads : int;  (** usable host CPU threads. *)
  host_ops_per_s : float;  (** per-thread host scalar op throughput. *)
  host_mem_bw : float;  (** host memory bandwidth (B/s), all threads. *)
}

val default : t
(** The 2,048-DPU paper configuration. *)

val nr_dpus : t -> int
(** Total DPUs in the system. *)

val seconds_of_cycles : t -> float -> float
val cycles_of_seconds : t -> float -> float
val with_dpus : t -> int -> t
(** [with_dpus cfg n] scales the system down to [n] DPUs (whole ranks
    first); used for experiments that vary the machine size. *)

val pp : Format.formatter -> t -> unit
