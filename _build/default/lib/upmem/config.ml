type t = {
  nr_ranks : int;
  dpus_per_rank : int;
  max_tasklets : int;
  wram_bytes : int;
  mram_bytes : int;
  iram_bytes : int;
  dpu_freq_hz : float;
  revolver_period : int;
  branch_stall_cycles : int;
  dma_setup_cycles : float;
  dma_cycles_per_byte : float;
  dma_min_bytes : int;
  dma_max_bytes : int;
  h2d_bw_per_rank : float;
  d2h_bw_per_rank : float;
  serial_copy_bw : float;
  serial_copy_overhead_s : float;
  parallel_xfer_overhead_s : float;
  xfer_prepare_per_dpu_s : float;
  kernel_launch_overhead_s : float;
  host_threads : int;
  host_ops_per_s : float;
  host_mem_bw : float;
}

let default =
  {
    nr_ranks = 32;
    dpus_per_rank = 64;
    max_tasklets = 24;
    wram_bytes = 64 * 1024;
    mram_bytes = 64 * 1024 * 1024;
    iram_bytes = 24 * 1024;
    dpu_freq_hz = 350e6;
    revolver_period = 11;
    branch_stall_cycles = 3;
    dma_setup_cycles = 24.;
    dma_cycles_per_byte = 0.5;
    dma_min_bytes = 8;
    dma_max_bytes = 2048;
    (* 32 ranks in parallel give ~6.9 GB/s H2D and ~4.4 GB/s D2H at the
       system level, matching the PrIM measurements on a comparable
       server. *)
    h2d_bw_per_rank = 215e6;
    d2h_bw_per_rank = 137e6;
    serial_copy_bw = 300e6;
    serial_copy_overhead_s = 2e-6;
    parallel_xfer_overhead_s = 22e-6;
    xfer_prepare_per_dpu_s = 0.15e-6;
    kernel_launch_overhead_s = 55e-6;
    host_threads = 32;
    host_ops_per_s = 1.2e9;
    host_mem_bw = 20e9;
  }

let nr_dpus t = t.nr_ranks * t.dpus_per_rank
let seconds_of_cycles t cy = cy /. t.dpu_freq_hz
let cycles_of_seconds t s = s *. t.dpu_freq_hz

let with_dpus t n =
  if n <= 0 then invalid_arg "Config.with_dpus: non-positive DPU count";
  if n >= nr_dpus t then t
  else if n >= t.dpus_per_rank then
    { t with nr_ranks = (n + t.dpus_per_rank - 1) / t.dpus_per_rank }
  else { t with nr_ranks = 1; dpus_per_rank = n }

let pp ppf t =
  Format.fprintf ppf
    "upmem{%d ranks x %d dpus, %d tasklets, wram=%dKB, %.0fMHz}" t.nr_ranks
    t.dpus_per_rank t.max_tasklets (t.wram_bytes / 1024)
    (t.dpu_freq_hz /. 1e6)
