type profile = {
  tasklets : int;
  chunks : int;
  dma_bytes : (int * float) list;
  compute_slots : float;
  prologue_slots : float;
  epilogue_slots : float;
}

let issue_period (cfg : Config.t) ~tasklets =
  float_of_int (max cfg.revolver_period tasklets)

(* Simulate [chunks] chunks distributed block-wise over [t] tasklets and
   return the finish time of the last tasklet.  Linear scan for the next
   runnable tasklet is fine for t <= 24. *)
let simulate cfg p chunks =
  let t = max 1 p.tasklets in
  let period = issue_period cfg ~tasklets:t in
  let compute_time = p.compute_slots *. period in
  let dma_times =
    List.map (fun (b, n) -> n *. Timing.dma_cycles cfg b) p.dma_bytes
  in
  let remaining = Array.make t 0 in
  for i = 0 to chunks - 1 do
    remaining.(i mod t) <- remaining.(i mod t) + 1
  done;
  let ready = Array.make t (p.prologue_slots *. period) in
  let engine_free = ref 0. in
  let pick () =
    let best = ref (-1) in
    for i = 0 to t - 1 do
      if remaining.(i) > 0 && (!best < 0 || ready.(i) < ready.(!best)) then
        best := i
    done;
    !best
  in
  let continue = ref true in
  while !continue do
    let i = pick () in
    if i < 0 then continue := false
    else begin
      let now = ref ready.(i) in
      List.iter
        (fun d ->
          let start = Float.max !now !engine_free in
          engine_free := start +. d;
          now := start +. d)
        dma_times;
      now := !now +. compute_time;
      ready.(i) <- !now;
      remaining.(i) <- remaining.(i) - 1
    end
  done;
  let finish = ref 0. in
  for i = 0 to t - 1 do
    let f = ready.(i) +. (p.epilogue_slots *. period) in
    if f > !finish then finish := f
  done;
  !finish

let cap_chunks = 4096

let kernel_cycles cfg p =
  if p.chunks < 0 then invalid_arg "Dpu_model.kernel_cycles: negative chunks";
  if p.chunks <= cap_chunks then simulate cfg p p.chunks
  else begin
    (* Steady-state extrapolation: measure the marginal per-chunk rate
       between two large chunk counts and extend linearly. *)
    let half = cap_chunks / 2 in
    let t_half = simulate cfg p half and t_full = simulate cfg p cap_chunks in
    let rate = (t_full -. t_half) /. float_of_int (cap_chunks - half) in
    t_full +. (rate *. float_of_int (p.chunks - cap_chunks))
  end
