lib/upmem/dpu_model.mli: Config
