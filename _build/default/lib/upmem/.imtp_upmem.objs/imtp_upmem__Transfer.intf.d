lib/upmem/transfer.mli: Config
