lib/upmem/host_model.mli: Config
