lib/upmem/stats.ml: Format
