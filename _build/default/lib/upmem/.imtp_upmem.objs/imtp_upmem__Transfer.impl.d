lib/upmem/transfer.ml: Config
