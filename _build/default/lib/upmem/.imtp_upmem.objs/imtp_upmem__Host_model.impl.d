lib/upmem/host_model.ml: Config Float
