lib/upmem/config.mli: Format
