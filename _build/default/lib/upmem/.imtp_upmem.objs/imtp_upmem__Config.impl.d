lib/upmem/config.ml: Format
