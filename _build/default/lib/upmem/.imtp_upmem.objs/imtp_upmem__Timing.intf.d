lib/upmem/timing.mli: Config Imtp_tensor
