lib/upmem/dpu_model.ml: Array Config Float List Timing
