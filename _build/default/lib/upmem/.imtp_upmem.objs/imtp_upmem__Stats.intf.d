lib/upmem/stats.mli: Format
