lib/upmem/timing.ml: Config Imtp_tensor
