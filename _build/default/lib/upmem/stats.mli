(** Latency breakdown of one offloaded operation, in seconds, following
    the paper's reporting categories (H2D transfer, kernel execution,
    D2H transfer, host post-processing). *)

type t = {
  h2d_s : float;
  kernel_s : float;
  d2h_s : float;
  host_s : float;
  launch_s : float;  (** kernel-launch overheads. *)
  bytes_h2d : int;
  bytes_d2h : int;
  dpus_used : int;
  tasklets_used : int;
}

val zero : t
val total_s : t -> float
val add : t -> t -> t
(** Componentwise sum (sequential composition of phases). *)

val scale : float -> t -> t
val speedup : baseline:t -> t -> float
(** [speedup ~baseline s] = baseline total / s total. *)

val pp : Format.formatter -> t -> unit
val pp_row : Format.formatter -> t -> unit
(** One-line fixed-width breakdown, for benchmark tables. *)
