(** Host-CPU cost model for post-processing loops (final reductions and
    result aggregation, §5.2.2 "Reduction code generation"). *)

val loop_seconds :
  Config.t -> threads:int -> elems:int -> ops_per_elem:float ->
  bytes_per_elem:float -> float
(** Time for a host loop over [elems] items doing [ops_per_elem] scalar
    operations and touching [bytes_per_elem] of memory each, run on
    [threads] threads (clamped to the configured host thread count).
    The loop is limited by either compute throughput or memory
    bandwidth, plus a per-thread spawn overhead when [threads] > 1. *)

val thread_spawn_overhead_s : float
