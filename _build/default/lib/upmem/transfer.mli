(** Host↔DPU data-transfer timing.

    All host↔DPU movement goes through the host CPU over the memory
    channels (§2.1).  Two mechanisms are modeled, matching the UPMEM
    SDK and the paper's data-transfer codegen (§5.2.2):

    - serial per-DPU copies ([dpu_copy_to]/[dpu_copy_from]): a fixed
      per-call overhead plus bytes over the single-copy bandwidth,
      summed over DPUs;
    - bank-parallel transfers ([dpu_prepare_xfer] + [dpu_push_xfer]):
      one launch overhead, all DPUs of a rank served in parallel at the
      rank bandwidth, ranks in parallel with each other. *)

type direction = H2d | D2h

type mode =
  | Serial  (** one runtime call per DPU. *)
  | Bank_parallel  (** prepare/push xfer across DPUs of each rank. *)

val seconds :
  Config.t -> direction -> mode -> ndpus:int -> bytes_per_dpu:int -> float
(** Time to move [bytes_per_dpu] to/from each of [ndpus] DPUs.  A zero
    byte count costs nothing. *)

val broadcast_seconds : Config.t -> ndpus:int -> bytes:int -> float
(** Broadcast of identical data to all DPUs (e.g. the shared input
    vector of MTV): a single rank-parallel push of [bytes]. *)
