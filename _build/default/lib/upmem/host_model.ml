let thread_spawn_overhead_s = 8e-6

let loop_seconds (cfg : Config.t) ~threads ~elems ~ops_per_elem
    ~bytes_per_elem =
  if elems <= 0 then 0.
  else begin
    let threads = max 1 (min threads cfg.host_threads) in
    let ops = float_of_int elems *. ops_per_elem in
    let bytes = float_of_int elems *. bytes_per_elem in
    let compute_s = ops /. (cfg.host_ops_per_s *. float_of_int threads) in
    let mem_s = bytes /. cfg.host_mem_bw in
    let spawn = if threads > 1 then thread_spawn_overhead_s else 0. in
    spawn +. Float.max compute_s mem_s
  end
