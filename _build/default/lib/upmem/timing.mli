(** Per-instruction issue-slot costs and DMA latency formulas for the
    simulated DPU.

    The DPU is an in-order core: performance is dominated by how many
    issue slots a kernel's dynamic instruction stream occupies (§3 of
    the paper: "simple in-order DPU cores ... make the system strongly
    compute-bound").  Costs are expressed in issue slots; the pipeline
    model in {!Dpu_model} converts slots to cycles given the number of
    active tasklets. *)

type binop = Add | Sub | Mul | Div | Min | Max

val binop_slots : Imtp_tensor.Dtype.t -> binop -> float
(** Issue slots for an ALU operation.  32-bit integer multiplication is
    a multi-instruction sequence on DPUs (8×8 multiplier stepper);
    floating point is software-emulated. *)

val wram_access_slots : float
(** One WRAM load or store. *)

val mram_scalar_access_slots : float
(** A direct (non-DMA) scalar access to MRAM — much slower; generated
    code should always cache via WRAM, but the interpreter supports it. *)

val loop_overhead_slots : float
(** Per-iteration induction increment + compare + back-edge branch. *)

val branch_slots : Config.t -> tasklets:int -> float
(** Cost of one conditional branch (compare + jump), including the
    front-end bubble when the revolver pipeline is unsaturated
    ([tasklets] < revolver period). *)

val address_calc_slots : terms:int -> float
(** Cost of computing a multi-term affine address (multiply-add per
    term beyond the first). *)

val dma_cycles : Config.t -> int -> float
(** [dma_cycles cfg bytes] — latency of one MRAM↔WRAM DMA transfer of
    [bytes] (clamped to the legal size range; callers are expected to
    have validated alignment). *)

val dma_legal : Config.t -> int -> bool
(** Whether a DMA of this size is legal (8-byte aligned, within
    [dma_min_bytes, dma_max_bytes]). *)

val estimate_iram_bytes : instructions:float -> int
(** Rough static code footprint (used by the verifier to reject
    over-unrolled kernels): DPU instructions are 8 bytes each. *)
