(** Event-level timing model of one DPU executing a tiled kernel.

    A kernel is abstracted as a stream of "chunks" — one iteration of
    the WRAM caching loop — distributed over the active tasklets.  Each
    chunk issues a fixed set of MRAM↔WRAM DMA transfers (serialized on
    the DPU's single DMA engine, blocking the issuing tasklet) followed
    by a burst of compute occupying issue slots in the shared in-order
    pipeline.  This captures the two first-order effects the paper's
    optimizations exploit: tasklet-level latency hiding (why small
    caching tiles win on small per-DPU slices) and issue-slot pressure
    (why boundary-check branches hurt). *)

type profile = {
  tasklets : int;  (** active tasklets, 1..24. *)
  chunks : int;  (** total caching-loop iterations on this DPU. *)
  dma_bytes : (int * float) list;
      (** DMA transfers issued per chunk as (bytes, count) pairs; a
          fractional count amortizes transfers that happen at a coarser
          loop level than the chunk loop. *)
  compute_slots : float;  (** non-DMA issue slots per chunk. *)
  prologue_slots : float;  (** per-tasklet setup before the loop. *)
  epilogue_slots : float;  (** per-tasklet work after the loop
                               (e.g. partial-result handshake). *)
}

val kernel_cycles : Config.t -> profile -> float
(** Simulated cycles until the last tasklet finishes.  Chunk counts
    beyond an internal cap are handled by steady-state extrapolation,
    so cost evaluation stays O(1) in tensor size. *)

val issue_period : Config.t -> tasklets:int -> float
(** Cycles between two issue opportunities of one tasklet: the revolver
    period when the pipeline is unsaturated, else the round-robin share. *)
