(* Table formatting and small statistics helpers for the benchmark
   harness. *)

let heading title =
  let line = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title line

let subheading title = Printf.printf "\n--- %s ---\n" title

let row_format widths =
  (* left-align first column, right-align the rest *)
  fun cells ->
    List.iteri
      (fun i cell ->
        let w = try List.nth widths i with _ -> 12 in
        if i = 0 then Printf.printf "%-*s" w cell
        else Printf.printf "%*s" w cell)
      cells;
    print_newline ()

let ms s = Printf.sprintf "%.3f" (s *. 1e3)
let x f = Printf.sprintf "%.2fx" f
let pct f = Printf.sprintf "%+.1f%%" (f *. 100.)

let geomean = function
  | [] -> nan
  | xs ->
      exp (List.fold_left (fun acc v -> acc +. log v) 0. xs
           /. float_of_int (List.length xs))

let total = Imtp.Stats.total_s

(* Shorthand measurement helpers shared by experiments. *)

let cfg = Imtp.default_config

let prim op = Result.get_ok (Imtp.Prim.measure cfg op (Imtp.Prim.default_for op))

let prim_e op =
  let p, s = Result.get_ok (Imtp.Prim.prim_e cfg op) in
  (p, s)

let prim_search op =
  let p, s = Result.get_ok (Imtp.Prim.grid_search cfg op) in
  (p, s)

let simplepim op = Imtp.Simplepim.measure cfg op

let tune ?(trials = 160) ?(seed = 2025) op =
  (* two independent searches, keep the better result — cheap insurance
     against an unlucky evolutionary run. *)
  let run seed =
    match Imtp.autotune ~trials ~seed op with
    | Ok r -> r
    | Error m -> failwith (Printf.sprintf "autotune %s: %s" op.Imtp.Op.opname m)
  in
  let a = run seed and b = run (seed + 7919) in
  if
    Imtp.Stats.total_s a.Imtp.Tuner.stats
    <= Imtp.Stats.total_s b.Imtp.Tuner.stats
  then a
  else b

let kernel_cycles prog =
  Imtp.Cost.kernel_cycles cfg prog (List.hd prog.Imtp.Program.kernels)

let kernel_ms prog = Imtp.Config.seconds_of_cycles cfg (kernel_cycles prog) *. 1e3
