bench/util.ml: Imtp List Printf Result String
