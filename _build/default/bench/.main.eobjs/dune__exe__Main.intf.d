bench/main.mli:
