bench/experiments.ml: Float Imtp List Printf Result Unix Util
