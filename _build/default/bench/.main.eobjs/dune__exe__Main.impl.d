bench/main.ml: Analyze Array Bechamel Benchmark Experiments Hashtbl Imtp List Measure Printf Staged String Sys Test Time Toolkit Util
