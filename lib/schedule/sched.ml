module Op = Imtp_workload.Op

type binding = Block_x | Block_y | Block_z | Thread_x
type loop_annot = Serial | Unrolled | Host_parallel of int | Bound of binding

type loop = {
  lid : int;
  lname : string;
  axis : string;
  extent : int;
  stride : int;
  mutable annot : loop_annot;
}

type rw = Read | Write
type cache = { tensor : string; rw : rw; mutable at : loop option }

type t = {
  sop : Op.t;
  mutable sorder : loop list;
  mutable scaches : cache list;
  mutable srfactor : loop option;
  mutable fresh : int;
  mutable strace : string list;  (* reverse order *)
}

let op t = t.sop
let order t = t.sorder
let caches t = t.scaches
let rfactor_loop t = t.srfactor

let new_loop t ~name ~axis ~extent ~stride ~annot =
  t.fresh <- t.fresh + 1;
  { lid = t.fresh; lname = name; axis; extent; stride; annot }

let record t fmt = Printf.ksprintf (fun s -> t.strace <- s :: t.strace) fmt

let create sop =
  let t =
    { sop; sorder = []; scaches = []; srfactor = None; fresh = 0; strace = [] }
  in
  t.sorder <-
    List.map
      (fun (a : Op.axis) ->
        new_loop t ~name:a.aname ~axis:a.aname ~extent:a.extent ~stride:1
          ~annot:Serial)
      sop.Op.axes;
  t

let loops_of_axis t axis =
  List.sort
    (fun a b -> Int.compare b.stride a.stride)
    (List.filter (fun l -> String.equal l.axis axis) t.sorder)

let covered_extent t axis =
  List.fold_left (fun acc l -> acc * l.extent) 1 (loops_of_axis t axis)

let find_loop t name =
  match List.find_opt (fun l -> String.equal l.lname name) t.sorder with
  | Some l -> l
  | None -> raise Not_found

let loop_index t l =
  let rec go i = function
    | [] -> raise Not_found
    | x :: _ when x.lid = l.lid -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.sorder

let mem t l = List.exists (fun x -> x.lid = l.lid) t.sorder

let ceil_div a b = (a + b - 1) / b

let split t l ~factors =
  if not (mem t l) then invalid_arg "Sched.split: stale loop";
  if factors = [] then invalid_arg "Sched.split: empty factor list";
  List.iter
    (fun f -> if f <= 0 then invalid_arg "Sched.split: non-positive factor")
    factors;
  (match l.annot with
  | Serial -> ()
  | Unrolled | Host_parallel _ | Bound _ ->
      invalid_arg "Sched.split: cannot split an annotated loop");
  let inner_prod = List.fold_left ( * ) 1 factors in
  let outer_extent = ceil_div l.extent inner_prod in
  let outer =
    new_loop t ~name:(l.lname ^ "o") ~axis:l.axis ~extent:outer_extent
      ~stride:(l.stride * inner_prod) ~annot:Serial
  in
  let inners =
    let rec build stride_acc = function
      | [] -> []
      | f :: rest ->
          (* extents to the right of f multiply into its stride. *)
          let inner_stride = stride_acc / f in
          let lp =
            new_loop t
              ~name:(Printf.sprintf "%s%d" l.lname (List.length rest))
              ~axis:l.axis ~extent:f ~stride:(l.stride * inner_stride)
              ~annot:Serial
          in
          lp :: build inner_stride rest
    in
    build inner_prod factors
  in
  let news = outer :: inners in
  t.sorder <-
    List.concat_map
      (fun x -> if x.lid = l.lid then news else [ x ])
      t.sorder;
  record t "sch.split(%s, factors=[%s])  # -> %s" l.lname
    (String.concat ", " (List.map string_of_int factors))
    (String.concat ", " (List.map (fun (n : loop) -> n.lname) news));
  news

let reorder t loops =
  List.iter
    (fun l -> if not (mem t l) then invalid_arg "Sched.reorder: stale loop")
    loops;
  let ids = List.map (fun l -> l.lid) loops in
  let uniq = List.sort_uniq Int.compare ids in
  if List.length uniq <> List.length ids then
    invalid_arg "Sched.reorder: duplicate loop";
  let remaining = ref loops in
  t.sorder <-
    List.map
      (fun x ->
        if List.exists (fun l -> l.lid = x.lid) loops then begin
          match !remaining with
          | next :: rest ->
              remaining := rest;
              next
          | [] -> assert false
        end
        else x)
      t.sorder;
  record t "sch.reorder(%s)" (String.concat ", " (List.map (fun l -> l.lname) loops))

let bind t l b =
  if not (mem t l) then invalid_arg "Sched.bind: stale loop";
  (match l.annot with
  | Serial -> ()
  | Unrolled | Host_parallel _ | Bound _ ->
      invalid_arg "Sched.bind: loop already annotated");
  let clash =
    List.exists
      (fun x -> match x.annot with Bound b' -> b' = b | Serial | Unrolled | Host_parallel _ -> false)
      t.sorder
  in
  if clash then invalid_arg "Sched.bind: binding already in use";
  l.annot <- Bound b;
  record t "sch.bind(%s, \"%s\")" l.lname
    (match b with
    | Block_x -> "blockIdx.x"
    | Block_y -> "blockIdx.y"
    | Block_z -> "blockIdx.z"
    | Thread_x -> "threadIdx.x")

let unroll t l =
  if not (mem t l) then invalid_arg "Sched.unroll: stale loop";
  (match l.annot with
  | Serial -> ()
  | Unrolled | Host_parallel _ | Bound _ ->
      invalid_arg "Sched.unroll: loop already annotated");
  l.annot <- Unrolled;
  record t "sch.unroll(%s)" l.lname

let parallel t l ~threads =
  if not (mem t l) then invalid_arg "Sched.parallel: stale loop";
  if threads <= 0 then invalid_arg "Sched.parallel: non-positive threads";
  (match l.annot with
  | Serial -> ()
  | Unrolled | Host_parallel _ | Bound _ ->
      invalid_arg "Sched.parallel: loop already annotated");
  l.annot <- Host_parallel threads;
  record t "sch.parallel(%s, threads=%d)" l.lname threads

let rfactor t l =
  if not (mem t l) then invalid_arg "Sched.rfactor: stale loop";
  (match (Op.axis t.sop l.axis).Op.kind with
  | Op.Reduction -> ()
  | Op.Spatial -> invalid_arg "Sched.rfactor: loop is not a reduction segment");
  if t.srfactor <> None then invalid_arg "Sched.rfactor: already applied";
  t.srfactor <- Some l;
  record t "sch.rfactor(%s)" l.lname

let cache_decl t tensor rw =
  let known =
    match rw with
    | Read -> List.mem_assoc tensor t.sop.Op.inputs
    | Write -> String.equal tensor (fst t.sop.Op.output)
  in
  if not known then
    invalid_arg (Printf.sprintf "Sched.cache: unknown tensor %s" tensor);
  if
    List.exists
      (fun c -> String.equal c.tensor tensor && c.rw = rw)
      t.scaches
  then invalid_arg (Printf.sprintf "Sched.cache: duplicate cache for %s" tensor);
  let c = { tensor; rw; at = None } in
  t.scaches <- t.scaches @ [ c ];
  record t "cache_%s = sch.cache_%s(%s, \"local\")"
    tensor
    (match rw with Read -> "read" | Write -> "write")
    tensor;
  c

let cache_read t tensor = cache_decl t tensor Read
let cache_write t tensor = cache_decl t tensor Write

let compute_at t c l =
  if not (mem t l) then invalid_arg "Sched.compute_at: stale loop";
  if c.rw <> Read then invalid_arg "Sched.compute_at: use reverse_compute_at for write caches";
  c.at <- Some l;
  record t "sch.compute_at(cache_%s, %s)" c.tensor l.lname

let reverse_compute_at t c l =
  if not (mem t l) then invalid_arg "Sched.reverse_compute_at: stale loop";
  if c.rw <> Write then invalid_arg "Sched.reverse_compute_at: use compute_at for read caches";
  c.at <- Some l;
  record t "sch.reverse_compute_at(cache_%s, %s)" c.tensor l.lname

let is_block l =
  match l.annot with
  | Bound (Block_x | Block_y | Block_z) -> true
  | Bound Thread_x | Serial | Unrolled | Host_parallel _ -> false

let block_loops t = List.filter is_block t.sorder

let thread_loop t =
  List.find_opt
    (fun l -> match l.annot with Bound Thread_x -> true | Bound _ | Serial | Unrolled | Host_parallel _ -> false)
    t.sorder

let grid_dpus t = List.fold_left (fun acc l -> acc * l.extent) 1 (block_loops t)

let tasklets t =
  match thread_loop t with Some l -> l.extent | None -> 1

let serial_loops t =
  List.filter
    (fun l ->
      match l.annot with
      | Serial -> true
      | Unrolled | Host_parallel _ | Bound _ -> false)
    t.sorder

let unused_bindings t =
  let used b =
    List.exists
      (fun l ->
        match l.annot with
        | Bound b' -> b' = b
        | Serial | Unrolled | Host_parallel _ -> false)
      t.sorder
  in
  List.filter (fun b -> not (used b)) [ Block_x; Block_y; Block_z; Thread_x ]

let binding_name = function
  | Block_x -> "blockIdx.x"
  | Block_y -> "blockIdx.y"
  | Block_z -> "blockIdx.z"
  | Thread_x -> "threadIdx.x"

let annot_name = function
  | Serial -> ""
  | Unrolled -> " unroll"
  | Host_parallel n -> Printf.sprintf " parallel(%d)" n
  | Bound b -> " @" ^ binding_name b

let describe t =
  let loop_str l =
    Printf.sprintf "%s[%s:%d*%d]%s" l.lname l.axis l.extent l.stride
      (annot_name l.annot)
  in
  let cache_str c =
    Printf.sprintf "cache_%s(%s)%s"
      (match c.rw with Read -> "read" | Write -> "write")
      c.tensor
      (match c.at with None -> "" | Some l -> "@" ^ l.lname)
  in
  let rf =
    match t.srfactor with None -> "" | Some l -> Printf.sprintf " rfactor(%s)" l.lname
  in
  Printf.sprintf "%s: [%s] {%s}%s" t.sop.Op.opname
    (String.concat " " (List.map loop_str t.sorder))
    (String.concat ", " (List.map cache_str t.scaches))
    rf

let trace t = List.rev t.strace
