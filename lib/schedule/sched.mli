(** Schedules: the implementation side of the TensorIR separation.

    A schedule starts as one loop per operator axis and is transformed
    by the primitives of Table 2 — [split], [reorder], [bind],
    [rfactor], [cache_read]/[cache_write] with
    [compute_at]/[reverse_compute_at], [parallel], and [unroll].  IMTP
    repurposes these kernel-oriented primitives for UPMEM (§5.2.1):
    binding loops to [Block_*] expresses host→DPU data distribution,
    [Thread_x] expresses tasklet parallelism, [rfactor] on a DPU-bound
    reduction segment selects hierarchical reduction, and [parallel]
    on post-processing loops multi-threads the host aggregation.

    The schedule records structure only; {!Imtp_lower.Lowering} turns
    it into loop-based TIR. *)

type binding = Block_x | Block_y | Block_z | Thread_x

type loop_annot =
  | Serial
  | Unrolled
  | Host_parallel of int  (** host post-processing loop on N threads. *)
  | Bound of binding

type loop = private {
  lid : int;
  lname : string;
  axis : string;  (** originating operator axis. *)
  extent : int;
  stride : int;  (** multiplier of this segment in the axis index. *)
  mutable annot : loop_annot;
}

type rw = Read | Write

type cache = private {
  tensor : string;
  rw : rw;
  mutable at : loop option;  (** caching location; [None] until placed. *)
}

type t

val create : Imtp_workload.Op.t -> t
(** The root schedule: one [Serial] loop per operator axis, in the
    operator's canonical order. *)

val op : t -> Imtp_workload.Op.t
val order : t -> loop list
(** Current loop order, outermost first. *)

val caches : t -> cache list
val rfactor_loop : t -> loop option
val loops_of_axis : t -> string -> loop list
(** Segments of one axis, outermost (largest stride) first. *)

val covered_extent : t -> string -> int
(** Product of segment extents; ≥ the axis extent, with strict
    inequality meaning the axis is misaligned and needs boundary
    checks. *)

val find_loop : t -> string -> loop
(** Look up a loop by name.  @raise Not_found. *)

(* --- primitives ----------------------------------------------------- *)

val split : t -> loop -> factors:int list -> loop list
(** [split t l ~factors:[f1; ...; fk]] splits [l] into [k+1] loops
    [o; i1; ...; ik] where [ij] has extent [fj] and [o] covers the
    rest (ceiling division, so the split may over-cover a misaligned
    extent).  Returns the new loops, outermost first.
    @raise Invalid_argument on non-positive factors or a stale loop. *)

val reorder : t -> loop list -> unit
(** Rearrange the given loops, which may be any subset of the current
    order, into the listed order at the positions they jointly occupy
    (TVM semantics). *)

val bind : t -> loop -> binding -> unit
(** @raise Invalid_argument if the binding is already used or the loop
    already annotated. *)

val unroll : t -> loop -> unit
val parallel : t -> loop -> threads:int -> unit

val rfactor : t -> loop -> unit
(** Mark a reduction-axis segment for hierarchical reduction: each DPU
    produces a partial result and the host runs the final reduction
    (§5.2.2 "Reduction code generation").  The loop must derive from a
    reduction axis.  @raise Invalid_argument otherwise. *)

val cache_read : t -> string -> cache
(** Declare a WRAM cache for an input tensor.
    @raise Invalid_argument for unknown tensors or duplicates. *)

val cache_write : t -> string -> cache
(** Declare a WRAM cache for the output tensor. *)

val compute_at : t -> cache -> loop -> unit
(** Place a read cache: its DMA loads happen at the top of each
    iteration of [loop]. *)

val reverse_compute_at : t -> cache -> loop -> unit
(** Place a write cache: its write-back happens at the bottom of each
    iteration of [loop]. *)

(* --- queries used by lowering and the verifier ---------------------- *)

val block_loops : t -> loop list
(** DPU-bound loops in order. *)

val thread_loop : t -> loop option
val grid_dpus : t -> int
val tasklets : t -> int
val is_block : loop -> bool
val loop_index : t -> loop -> int
(** Position in the current order.  @raise Not_found on stale loops. *)

val serial_loops : t -> loop list
(** Loops still carrying the [Serial] annotation, i.e. the candidates
    for [split]/[bind]/[unroll]/[parallel] (used by random schedule
    generation). *)

val unused_bindings : t -> binding list
(** The bindings not yet claimed by any loop, in declaration order. *)

val describe : t -> string
(** Human-readable schedule summary (used for Table 3). *)

val trace : t -> string list
(** The applied primitives in order, printed TVM-script style
    (e.g. [sch.split(i, factors=[16, 4])], [sch.bind(io, "blockIdx.x")],
    [sch.compute_at(cache_A, j1)]) — the artifact Table 2 shows.  The
    trace records exactly the calls made, so replaying it on a fresh
    schedule of the same operator reproduces the schedule. *)
