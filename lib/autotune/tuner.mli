(** Top-level autotuning entry point: run the balanced evolutionary
    search, then return the winner's engine artifact — the optimized
    program and its deterministic (noise-free) latency breakdown —
    without rebuilding it, since the search already compiled it into
    the engine cache. *)

type result = {
  params : Sketch.params;
  program : Imtp_tir.Program.t;
  stats : Imtp_upmem.Stats.t;
  search : Search.outcome;
  cache : Imtp_engine.Engine.counters;
      (** engine cache/stage telemetry at the end of the tuning run. *)
}

val tune :
  ?strategy:Search.strategy ->
  ?seed:int ->
  ?jobs:int ->
  ?islands:int ->
  ?migrate_every:int ->
  ?trials:int ->
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  ?measure_ratio:float ->
  ?engine:Imtp_engine.Engine.t ->
  ?resume:Search.checkpoint ->
  ?on_checkpoint:(Search.checkpoint -> unit) ->
  ?checkpoint_every:int ->
  ?stop:(unit -> bool) ->
  Imtp_upmem.Config.t ->
  Imtp_workload.Op.t ->
  (result, string) Result.t
(** Defaults: IMTP strategy, 128 trials, a fresh engine, and
    [Imtp_engine.Pool.default_jobs] worker domains per generation batch
    ([jobs] — results are identical at any value for a fixed
    [islands]).  [islands] and [migrate_every] shard the search
    island-model style across the pool (see {!Search.run}; [islands]
    defaults to the effective job count).  [measure_ratio]
    (default off) enables {!Search.run}'s learned-model measurement
    gate at the given simulator fraction.  [resume], [on_checkpoint],
    [checkpoint_every] and [stop] thread straight through to
    {!Search.run} — the serving daemon's checkpointed sessions use
    them; an interrupted run that already holds a best candidate still
    returns [Ok] (check [result.search.interrupted]).  [Error] only
    when no valid candidate was found at all.  A cache summary (hit
    rate, per-stage build times) is logged on the [imtp.engine] source
    when tuning finishes; pass a shared [engine] to reuse builds across
    repeated tunes of the same op. *)

val describe : result -> string
(** One line summarizing the winning configuration (Table 3 format:
    DPUs per dimension type, tasklets, caching tile size). *)
