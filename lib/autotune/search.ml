let log_src = Logs.Src.create "imtp.search" ~doc:"IMTP evolutionary search"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Engine = Imtp_engine.Engine
module Obs = Imtp_obs.Obs

type strategy = { balanced_sampling : bool; adaptive_epsilon : bool }

let tvm_default = { balanced_sampling = false; adaptive_epsilon = false }
let imtp_default = { balanced_sampling = true; adaptive_epsilon = true }

type record = {
  trial : int;
  params : Sketch.params;
  latency_s : float;
  best_so_far : float;
}

type outcome = {
  best : Measure.result option;
  history : record list;
  invalid_candidates : int;
  measured : int;
  cache_hits : int;
  elapsed_s : float;
}

let population_size = 16
let top_k = 8
let mutations_per_pick = 4
let exploration_fraction = 0.4

let epsilon strategy ~trial ~trials =
  if strategy.adaptive_epsilon then begin
    let cutoff = exploration_fraction *. float_of_int trials in
    if float_of_int trial >= cutoff then 0.05
    else 0.5 -. (0.45 *. float_of_int trial /. cutoff)
  end
  else 0.05

let by_latency = fun (_, a) (_, b) -> Float.compare a b
let take n l = List.filteri (fun i _ -> i < n) l

(* The generational population: with balanced sampling active, half the
   slots are reserved for each design space (rfactor / non-rfactor)
   while candidates of both exist, so neither family is prematurely
   dropped (§5.2.3); otherwise it is a plain truncation by fitness —
   and a family that falls out of the population can only re-enter
   through ε-random sampling, which is how the unbalanced search gets
   stuck. *)
let truncate_population strategy ~early pool =
  let sorted = List.sort by_latency pool in
  if strategy.balanced_sampling && early then begin
    let rf, no_rf = List.partition (fun (p, _) -> Sketch.uses_rfactor p) sorted in
    let half = population_size / 2 in
    let a = take half rf and b = take half no_rf in
    let rest =
      List.filter
        (fun c -> not (List.memq c a || List.memq c b))
        sorted
    in
    take population_size (List.sort by_latency (a @ b) @ rest)
  end
  else take population_size sorted

let parent_pool strategy ~early population =
  let sorted = List.sort by_latency population in
  if strategy.balanced_sampling && early then begin
    let rf, no_rf = List.partition (fun (p, _) -> Sketch.uses_rfactor p) sorted in
    let half = max 1 (top_k / 2) in
    match take half rf @ take half no_rf with
    | [] -> take top_k sorted
    | pool -> pool
  end
  else take top_k sorted

let run ?(strategy = imtp_default) ?(seed = 2024) ?jobs ?passes ?skip_inputs
    ?(use_cost_model = true) ?engine cfg op ~trials =
  let jobs =
    match jobs with Some j -> j | None -> Imtp_engine.Pool.default_jobs ()
  in
  Obs.span ~name:"search.run"
    ~attrs:
      [
        ("op", Obs.Str op.Imtp_workload.Op.opname);
        ("trials", Obs.Int trials);
        ("seed", Obs.Int seed);
        ("jobs", Obs.Int jobs);
      ]
  @@ fun () ->
  let t0 = Obs.now_s () in
  let engine =
    match engine with Some e -> e | None -> Engine.create cfg
  in
  let hits0 = (Engine.counters engine).Engine.hits in
  let rng = Rng.create ~seed in
  let model = Cost_model.create () in
  (* Params measured this run; duplicate proposals are deduplicated here
     (one history entry per candidate) while the engine cache spares
     them the re-build. *)
  let seen = Hashtbl.create 64 in
  let history = ref [] in
  let best = ref None in
  let invalid = ref 0 in
  let measured = ref 0 in
  let trial = ref 0 in
  let population = ref [] in
  let record ~trial params (m : Engine.measurement) =
    incr measured;
    Hashtbl.replace seen params ();
    let latency_s = m.Engine.latency_s in
    Cost_model.observe model (Cost_model.features op params) latency_s;
    let r =
      { Measure.params; stats = m.Engine.artifact.Engine.stats; latency_s }
    in
    (match !best with
    | Some b when b.Measure.latency_s <= latency_s -> ()
    | Some _ | None ->
        best := Some r;
        Obs.set_gauge "search.best_latency_s" latency_s);
    let best_so_far =
      match !best with Some b -> b.Measure.latency_s | None -> infinity
    in
    Obs.observe "search.trial_latency_s" latency_s;
    history := { trial; params; latency_s; best_so_far } :: !history
  in
  (* One proposal consumes one trial; invalid candidates (typed engine
     errors, cached after first rejection) and duplicate proposals burn
     the trial without contributing offspring. *)
  let consume ~trial (params, result) =
    match result with
    | Error _ ->
        incr invalid;
        None
    | Ok m ->
        if Hashtbl.mem seen params then None
        else begin
          record ~trial params m;
          Some (params, m.Engine.latency_s)
        end
  in
  let random_valid () =
    let rec go attempts =
      if attempts = 0 then None
      else begin
        let params = Sketch.random rng cfg op in
        let result = Engine.measure engine ~rng ?passes ?skip_inputs op params in
        match consume ~trial:!trial (params, result) with
        | Some c -> Some c
        | None -> go (attempts - 1)
      end
    in
    go 16
  in
  (* Initial population: random sampling (uniform across design
     spaces, hence unaffected by the balanced sampler). *)
  Obs.span ~name:"search.init" (fun () ->
      while !trial < min trials population_size do
        (match random_valid () with
        | Some c -> population := c :: !population
        | None -> ());
        incr trial
      done);
  (* Generations: propose a whole generation against the fixed parent
     pool, then measure it in one engine batch. *)
  while !trial < trials do
    Obs.span ~name:"search.generation"
      ~attrs:[ ("trial", Obs.Int !trial) ]
    @@ fun () ->
    let early =
      float_of_int !trial < exploration_fraction *. float_of_int trials
    in
    let parents = parent_pool strategy ~early !population in
    let gen_size = min population_size (trials - !trial) in
    let propose i =
      let eps = epsilon strategy ~trial:(!trial + i) ~trials in
      if Rng.float rng 1. < eps || parents = [] then Sketch.random rng cfg op
      else begin
        let parent, _ = Rng.pick rng parents in
        let muts =
          (* mostly single-field mutations, occasionally two fields
             at once to escape coordinate-wise local optima. *)
          List.init mutations_per_pick (fun _ ->
              let m = Sketch.mutate rng cfg op parent in
              if Rng.float rng 1. < 0.3 then Sketch.mutate rng cfg op m
              else m)
        in
        if use_cost_model && Cost_model.trained model then
          List.fold_left
            (fun acc c ->
              let s = Cost_model.predict model (Cost_model.features op c) in
              match acc with
              | Some (_, s') when s' <= s -> acc
              | _ -> Some (c, s))
            None muts
          |> Option.map fst
          |> Option.value ~default:(List.hd muts)
        else List.hd muts
      end
    in
    let candidates = List.init gen_size propose in
    let results =
      Engine.batch engine ~jobs ~rng ?passes ?skip_inputs op candidates
    in
    let offspring =
      List.mapi (fun i r -> consume ~trial:(!trial + i) r) results
      |> List.filter_map Fun.id
    in
    trial := !trial + gen_size;
    population :=
      truncate_population strategy ~early (!population @ offspring);
    Obs.add_attr "size" (Obs.Int gen_size);
    Obs.add_attr "accepted" (Obs.Int (List.length offspring));
    Obs.add_attr "population" (Obs.Int (List.length !population));
    (match !best with
    | Some b -> Obs.add_attr "best_s" (Obs.Float b.Measure.latency_s)
    | None -> ());
    Log.debug (fun m ->
        m "trial %d/%d: population %d, best %.6f ms, %d invalid so far" !trial
          trials
          (List.length !population)
          (match !best with
          | Some b -> b.Measure.latency_s *. 1e3
          | None -> Float.nan)
          !invalid)
  done;
  let elapsed_s = Obs.now_s () -. t0 in
  Obs.incr ~by:!trial "search.trials";
  Obs.incr ~by:!measured "search.measured";
  Obs.incr ~by:!invalid "search.invalid";
  let cache_hits = (Engine.counters engine).Engine.hits - hits0 in
  Obs.incr ~by:cache_hits "search.cache_hits";
  if elapsed_s > 0. then
    Obs.set_gauge "search.trials_per_s" (float_of_int !trial /. elapsed_s);
  {
    best = !best;
    history = List.rev !history;
    invalid_candidates = !invalid;
    measured = !measured;
    cache_hits;
    elapsed_s;
  }
