let log_src = Logs.Src.create "imtp.search" ~doc:"IMTP evolutionary search"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Engine = Imtp_engine.Engine
module Pool = Imtp_engine.Pool
module Obs = Imtp_obs.Obs

type strategy = { balanced_sampling : bool; adaptive_epsilon : bool }

let tvm_default = { balanced_sampling = false; adaptive_epsilon = false }
let imtp_default = { balanced_sampling = true; adaptive_epsilon = true }

type record = {
  trial : int;
  island : int;
  params : Sketch.params;
  latency_s : float;
  best_so_far : float;
  measured : bool;
  predicted_s : float option;
}

type island_stats = {
  island : int;
  island_trials : int;
  island_generations : int;
  island_measured : int;
  island_skipped : int;
  island_invalid : int;
  island_migrations : int;
  island_best_s : float option;
}

type outcome = {
  best : Measure.result option;
  history : record list;
  invalid_candidates : int;
  rejections : (string * int) list;
  measured : int;
  measured_trials : int;
  skipped : int;
  cache_hits : int;
  elapsed_s : float;
  interrupted : bool;
  resumed_from : int option;
  islands : int;
  per_island : island_stats list;
}

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

(* Everything one island's loop mutates, snapshotted at a generation
   (single-island) or migration (multi-island) boundary.  All fields
   are plain data (no closures), so a checkpoint marshals to disk
   as-is ({!Checkpoint}); [Rng.t] serializes its exact draw position,
   which is what makes resumption bit-identical.  The engine's memo
   tables are deliberately NOT part of the state: cached artifacts are
   a pure function of their candidate, so a resumed run on a cold
   cache rebuilds the same values — only the cache-ledger fields of
   the outcome ([cache_hits], [measured_trials]) reflect the
   executions this process actually paid for. *)
type island_state = {
  il_island : int;
  il_trials : int;  (* this island's trial budget *)
  il_rng : Rng.t;
  il_model : Cost_model.t;
  il_seen : (Sketch.params, unit) Hashtbl.t;
  il_skipped_seen : (Sketch.params, unit) Hashtbl.t;
  il_history : record list;  (* newest first, as the loop keeps it *)
  il_best : Measure.result option;
  il_invalid : int;
  il_rejections : (string, int) Hashtbl.t;
  il_measured : int;
  il_skipped : int;
  il_trial : int;
  il_population : (Sketch.params * float) list;
  il_generations : int;
  il_migrations : int;
  il_done : bool;  (* trial budget exhausted *)
  il_migrated : bool;
      (* whether the migration of the snapshot's boundary has already
         been applied to [il_population]; a resumed island replays the
         migration when this is false. *)
}

type checkpoint = {
  ck_format : int;
  ck_op_key : string;  (* Engine.op_key, pins the operator identity *)
  ck_op_name : string;
  ck_seed : int;
  ck_trials : int;
  ck_strategy : strategy;
  ck_use_cost_model : bool;
  ck_measure_ratio : float option;
  ck_islands : int;
  ck_migrate_every : int;
  ck_boundary : int;  (* generations (k=1) or migration boundary (k>1) *)
  ck_tir_model : Cost_learn.t;
      (* k=1: the island's working model; k>1: the shared model merged
         from every island's observations through [ck_boundary]. *)
  ck_states : island_state array;  (* length ck_islands, island order *)
  ck_measured_trials : int;  (* cumulative simulator ledger *)
  ck_cache_hits : int;  (* cumulative engine-cache hits *)
  ck_elapsed_s : float;  (* wall clock consumed before the snapshot *)
}

(* Bump whenever the checkpoint layout (or anything it transitively
   contains) changes incompatibly; {!run} rejects other formats.
   Format 2: island-aware checkpoints (PR 9). *)
let checkpoint_format = 2

let checkpoint_trial ck =
  Array.fold_left (fun a s -> a + s.il_trial) 0 ck.ck_states

let checkpoint_trials ck = ck.ck_trials
let checkpoint_op_name ck = ck.ck_op_name
let checkpoint_seed ck = ck.ck_seed
let checkpoint_measure_ratio ck = ck.ck_measure_ratio
let checkpoint_islands ck = ck.ck_islands

(* Bucket an engine error for the rejection tally: verifier rejections
   keep their constraint name (dpus/tasklets/mram/wram/iram/dma), other
   stages tally under the stage that failed. *)
let rejection_bucket : Engine.error -> string = function
  | Engine.Verifier_rejected r -> r.Imtp_engine.Verifier.constraint_name
  | Engine.Sketch_invalid _ -> "sketch"
  | Engine.Lower_failed _ -> "lower"
  | Engine.Cost_failed _ -> "cost"

let population_size = 16
let top_k = 8
let mutations_per_pick = 4
let exploration_fraction = 0.4
let migration_elites = 2
let max_islands = 64

let epsilon strategy ~trial ~trials =
  if strategy.adaptive_epsilon then begin
    let cutoff = exploration_fraction *. float_of_int trials in
    if float_of_int trial >= cutoff then 0.05
    else 0.5 -. (0.45 *. float_of_int trial /. cutoff)
  end
  else 0.05

let by_latency = fun (_, a) (_, b) -> Float.compare a b
let take n l = List.filteri (fun i _ -> i < n) l

(* The generational population: with balanced sampling active, half the
   slots are reserved for each design space (rfactor / non-rfactor)
   while candidates of both exist, so neither family is prematurely
   dropped (§5.2.3); otherwise it is a plain truncation by fitness —
   and a family that falls out of the population can only re-enter
   through ε-random sampling, which is how the unbalanced search gets
   stuck. *)
let truncate_population strategy ~early pool =
  let sorted = List.sort by_latency pool in
  if strategy.balanced_sampling && early then begin
    let rf, no_rf = List.partition (fun (p, _) -> Sketch.uses_rfactor p) sorted in
    let half = population_size / 2 in
    let a = take half rf and b = take half no_rf in
    let rest =
      List.filter
        (fun c -> not (List.memq c a || List.memq c b))
        sorted
    in
    take population_size (List.sort by_latency (a @ b) @ rest)
  end
  else take population_size sorted

let parent_pool strategy ~early population =
  let sorted = List.sort by_latency population in
  if strategy.balanced_sampling && early then begin
    let rf, no_rf = List.partition (fun (p, _) -> Sketch.uses_rfactor p) sorted in
    let half = max 1 (top_k / 2) in
    match take half rf @ take half no_rf with
    | [] -> take top_k sorted
    | pool -> pool
  end
  else take top_k sorted

let elites population = take migration_elites (List.sort by_latency population)

(* ------------------------------------------------------------------ *)
(* Islands                                                             *)
(* ------------------------------------------------------------------ *)

let clamp_islands k = max 1 (min max_islands k)

let env_islands () =
  match Sys.getenv_opt "IMTP_ISLANDS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> Some (clamp_islands k)
      | Some _ | None -> None)

(* The mutable working state of one island — the multi-island run keeps
   [k] of these, the single-island run exactly one. *)
type island_ctx = {
  ix : int;
  ix_trials : int;
  rng : Rng.t;
  model : Cost_model.t;
  mutable tir : Cost_learn.t;  (* working copy of the learned model *)
  seen : (Sketch.params, unit) Hashtbl.t;
  skipped_seen : (Sketch.params, unit) Hashtbl.t;
  mutable history : record list;  (* newest first *)
  mutable best : Measure.result option;
  mutable invalid : int;
  rejections : (string, int) Hashtbl.t;
  mutable measured : int;
  mutable skipped : int;
  mutable trial : int;
  mutable population : (Sketch.params * float) list;
  mutable generations : int;
  mutable migrations : int;
  mutable epoch_obs : (float array * float) list;
      (* newest first: (features, latency) observed since the last
         model merge — published at the next boundary (k>1, gated). *)
  mutable done_ : bool;
}

(* Pre-migration snapshot one island publishes at a boundary, plus its
   epoch's model observations in chronological order. *)
type publication = {
  pub_state : island_state;
  pub_obs : (float array * float) list;
}

(* Rendezvous state shared by all islands of one run.  [shared_tir] is
   the one mutex-guarded learned cost model: at every boundary the
   first island past the rendezvous folds all islands' epoch
   observations into it in (boundary, island) order — a deterministic
   merge — and every island then continues from a copy. *)
type island_shared = {
  sm : Mutex.t;
  scv : Condition.t;
  pubs : (int * int, publication) Hashtbl.t;  (* (island, boundary) *)
  final : island_state option array;  (* post-migration state once done *)
  done_at : int option array;
  shared_tir : Cost_learn.t;
  mutable merged_boundary : int;
  mutable stop_boundary : int option;
  mutable failed : exn option;
}

exception Island_aborted

let run ?(strategy = imtp_default) ?(seed = 2024) ?jobs ?islands
    ?(migrate_every = 2) ?passes ?skip_inputs ?(use_cost_model = true)
    ?measure_ratio ?engine ?resume ?on_checkpoint ?(checkpoint_every = 1)
    ?stop cfg op ~trials =
  let jobs =
    match jobs with Some j -> j | None -> Imtp_engine.Pool.default_jobs ()
  in
  if checkpoint_every < 1 then
    invalid_arg "Search.run: checkpoint_every must be >= 1";
  if migrate_every < 1 then
    invalid_arg "Search.run: migrate_every must be >= 1";
  let op_key = Engine.op_key op in
  (* A resumed run replays the killed run's own configuration — the
     caller's seed/strategy/gating/island arguments are overridden by
     the checkpoint, because mixing a serialized rng stream with
     different search dynamics could not be bit-identical to
     anything. *)
  let strategy, seed, use_cost_model, measure_ratio, trials, islands,
      migrate_every =
    match resume with
    | None ->
        let k =
          match islands with
          | Some k -> clamp_islands k
          | None -> (
              match env_islands () with Some k -> k | None -> jobs)
        in
        (* Every island needs at least an initial population's worth of
           budget to evolve anything, so tiny runs shed islands. *)
        let k = min k (max 1 (trials / population_size)) in
        (strategy, seed, use_cost_model, measure_ratio, trials, k,
         migrate_every)
    | Some ck ->
        if ck.ck_format <> checkpoint_format then
          invalid_arg
            (Printf.sprintf
               "Search.run: checkpoint format %d, this build speaks %d"
               ck.ck_format checkpoint_format);
        if ck.ck_op_key <> op_key then
          invalid_arg
            (Printf.sprintf
               "Search.run: checkpoint was recorded for op %s, not %s"
               ck.ck_op_name op.Imtp_workload.Op.opname);
        ( ck.ck_strategy,
          ck.ck_seed,
          ck.ck_use_cost_model,
          ck.ck_measure_ratio,
          ck.ck_trials,
          ck.ck_islands,
          ck.ck_migrate_every )
  in
  (match measure_ratio with
  | Some r when not (r > 0. && r <= 1.) ->
      invalid_arg "Search.run: measure_ratio must be in (0, 1]"
  | Some _ | None -> ());
  let k = islands in
  Obs.span ~name:"search.run"
    ~attrs:
      [
        ("op", Obs.Str op.Imtp_workload.Op.opname);
        ("trials", Obs.Int trials);
        ("seed", Obs.Int seed);
        ("jobs", Obs.Int jobs);
        ("islands", Obs.Int k);
        ( "measure_ratio",
          Obs.Float (Option.value measure_ratio ~default:1.) );
        ( "resumed_from",
          Obs.Int
            (match resume with Some ck -> checkpoint_trial ck | None -> -1) );
      ]
  @@ fun () ->
  let t0 = Obs.now_s () in
  let engine =
    match engine with Some e -> e | None -> Engine.create cfg
  in
  let hits0 = (Engine.counters engine).Engine.hits in
  let costed0 = (Engine.counters engine).Engine.costed in
  (* Cumulative ledgers carried over from the killed run, so a resumed
     outcome still reports every simulator execution it (transitively)
     paid for. *)
  let base_measured_trials, base_cache_hits, base_elapsed_s =
    match resume with
    | None -> (0, 0, 0.)
    | Some ck -> (ck.ck_measured_trials, ck.ck_cache_hits, ck.ck_elapsed_s)
  in
  let gated = measure_ratio <> None in
  (* Epoch observations are only tracked when there is a shared model
     to merge them into. *)
  let track_obs = k > 1 && gated in
  (* Per-island trial budgets: the total splits as evenly as possible,
     earlier islands taking the remainder. *)
  let budget i = (trials / k) + if i < trials mod k then 1 else 0 in
  let fresh_ctx i =
    {
      ix = i;
      ix_trials = budget i;
      (* The single-island rng derivation is the historical one so
         [~islands:1] reproduces every pre-island trace byte-for-byte;
         multi-island runs give each island its own substream. *)
      rng = (if k = 1 then Rng.create ~seed else Rng.stream ~base:seed ~index:i);
      model = Cost_model.create ();
      tir = Cost_learn.create ();
      seen = Hashtbl.create 64;
      skipped_seen = Hashtbl.create 64;
      history = [];
      best = None;
      invalid = 0;
      rejections = Hashtbl.create 8;
      measured = 0;
      skipped = 0;
      trial = 0;
      population = [];
      generations = 0;
      migrations = 0;
      epoch_obs = [];
      done_ = false;
    }
  in
  (* Deep-copy every piece of resumed state: the caller may resume the
     same in-memory checkpoint several times (tests do), and a run must
     never mutate the snapshot it started from. *)
  let ctx_of_state ~tir (st : island_state) =
    {
      ix = st.il_island;
      ix_trials = st.il_trials;
      rng = Rng.copy st.il_rng;
      model = Cost_model.copy st.il_model;
      tir;
      seen = Hashtbl.copy st.il_seen;
      skipped_seen = Hashtbl.copy st.il_skipped_seen;
      history = st.il_history;
      best = st.il_best;
      invalid = st.il_invalid;
      rejections = Hashtbl.copy st.il_rejections;
      measured = st.il_measured;
      skipped = st.il_skipped;
      trial = st.il_trial;
      population = st.il_population;
      generations = st.il_generations;
      migrations = st.il_migrations;
      epoch_obs = [];
      done_ = st.il_done;
    }
  in
  let state_of_ctx ?(migrated = false) cx =
    {
      il_island = cx.ix;
      il_trials = cx.ix_trials;
      il_rng = Rng.copy cx.rng;
      il_model = Cost_model.copy cx.model;
      il_seen = Hashtbl.copy cx.seen;
      il_skipped_seen = Hashtbl.copy cx.skipped_seen;
      il_history = cx.history;
      il_best = cx.best;
      il_invalid = cx.invalid;
      il_rejections = Hashtbl.copy cx.rejections;
      il_measured = cx.measured;
      il_skipped = cx.skipped;
      il_trial = cx.trial;
      il_population = cx.population;
      il_generations = cx.generations;
      il_migrations = cx.migrations;
      il_done = cx.done_;
      il_migrated = migrated;
    }
  in
  let ledger_counters () =
    let c = Engine.counters engine in
    ( base_measured_trials + c.Engine.costed - costed0,
      base_cache_hits + c.Engine.hits - hits0,
      base_elapsed_s +. (Obs.now_s () -. t0) )
  in
  let make_checkpoint ~boundary ~tir states =
    let measured_trials, cache_hits, elapsed_s = ledger_counters () in
    {
      ck_format = checkpoint_format;
      ck_op_key = op_key;
      ck_op_name = op.Imtp_workload.Op.opname;
      ck_seed = seed;
      ck_trials = trials;
      ck_strategy = strategy;
      ck_use_cost_model = use_cost_model;
      ck_measure_ratio = measure_ratio;
      ck_islands = k;
      ck_migrate_every = migrate_every;
      ck_boundary = boundary;
      ck_tir_model = Cost_learn.copy tir;
      ck_states = states;
      ck_measured_trials = measured_trials;
      ck_cache_hits = cache_hits;
      ck_elapsed_s = elapsed_s;
    }
  in
  let tally cx e =
    cx.invalid <- cx.invalid + 1;
    let b = rejection_bucket e in
    Hashtbl.replace cx.rejections b
      (1 + Option.value (Hashtbl.find_opt cx.rejections b) ~default:0)
  in
  let best_so_far cx =
    match cx.best with Some b -> b.Measure.latency_s | None -> infinity
  in
  let record cx ?predicted_s ~trial params (m : Engine.measurement) =
    cx.measured <- cx.measured + 1;
    Hashtbl.replace cx.seen params ();
    Hashtbl.remove cx.skipped_seen params;
    let latency_s = m.Engine.latency_s in
    Cost_model.observe cx.model (Cost_model.features op params) latency_s;
    if gated then begin
      let x = Cost_learn.features m.Engine.artifact.Engine.program in
      Cost_learn.observe cx.tir x latency_s;
      if track_obs then cx.epoch_obs <- (x, latency_s) :: cx.epoch_obs
    end;
    let r =
      { Measure.params; stats = m.Engine.artifact.Engine.stats; latency_s }
    in
    (match cx.best with
    | Some b when b.Measure.latency_s <= latency_s -> ()
    | Some _ | None ->
        cx.best <- Some r;
        Obs.set_gauge "search.best_latency_s" latency_s);
    Obs.observe "search.trial_latency_s" latency_s;
    cx.history <-
      {
        trial;
        island = cx.ix;
        params;
        latency_s;
        best_so_far = best_so_far cx;
        measured = true;
        predicted_s;
      }
      :: cx.history
  in
  let record_skipped cx ~trial params ~predicted_s =
    cx.skipped <- cx.skipped + 1;
    Hashtbl.replace cx.skipped_seen params ();
    cx.history <-
      {
        trial;
        island = cx.ix;
        params;
        latency_s = predicted_s;
        best_so_far = best_so_far cx;
        measured = false;
        predicted_s = Some predicted_s;
      }
      :: cx.history
  in
  (* One proposal consumes one trial; invalid candidates (typed engine
     errors, cached after first rejection) and duplicate proposals burn
     the trial without contributing offspring. *)
  let consume cx ~trial (params, result) =
    match result with
    | Error e ->
        tally cx e;
        None
    | Ok m ->
        if Hashtbl.mem cx.seen params then None
        else begin
          record cx ~trial params m;
          Some (params, m.Engine.latency_s)
        end
  in
  let random_valid cx =
    let rec go attempts =
      if attempts = 0 then None
      else begin
        let params = Sketch.random cx.rng cfg op in
        let result =
          Engine.measure engine ~rng:cx.rng ?passes ?skip_inputs op params
        in
        match consume cx ~trial:cx.trial (params, result) with
        | Some c -> Some c
        | None -> go (attempts - 1)
      end
    in
    go 16
  in
  (* Initial population under gating: measure until the TIR model has
     its ground truth, then admit the rest of the population on
     predicted fitness alone. *)
  let random_valid_gated cx =
    let rec go attempts =
      if attempts = 0 then None
      else begin
        let params = Sketch.random cx.rng cfg op in
        if Hashtbl.mem cx.seen params || Hashtbl.mem cx.skipped_seen params
        then go (attempts - 1)
        else begin
          match Engine.prepare engine ?passes ?skip_inputs op params with
          | Error e ->
              tally cx e;
              go (attempts - 1)
          | Ok prep ->
              let x = Cost_learn.features prep.Engine.pprogram in
              if not (Cost_learn.trained cx.tir) then begin
                match Engine.simulate engine ~rng:cx.rng prep with
                | Error e ->
                    tally cx e;
                    go (attempts - 1)
                | Ok m ->
                    record cx ~trial:cx.trial params m;
                    Some (params, m.Engine.latency_s)
              end
              else begin
                let predicted_s = Cost_learn.predict cx.tir x in
                record_skipped cx ~trial:cx.trial params ~predicted_s;
                Some (params, predicted_s)
              end
        end
      end
    in
    go 16
  in
  (* Initial population: random sampling (uniform across design
     spaces, hence unaffected by the balanced sampler).  A resumed run
     skips it — the restored state is already past it. *)
  let init_island cx =
    Obs.span ~name:"search.init" ~attrs:[ ("island", Obs.Int cx.ix) ]
      (fun () ->
        let sample = if gated then random_valid_gated else random_valid in
        while cx.trial < min cx.ix_trials population_size do
          (match sample cx with
          | Some c -> cx.population <- c :: cx.population
          | None -> ());
          cx.trial <- cx.trial + 1
        done)
  in
  (* One generation: propose against the fixed parent pool, then
     measure — as one engine batch when ungated, or prepared / ranked /
     gate-measured when gated.  Gated simulations go through the pool
     too: per-slot noise streams make the values independent of how
     many workers (or islands) run concurrently. *)
  let step_generation cx =
    Obs.span ~name:"search.generation"
      ~attrs:[ ("trial", Obs.Int cx.trial); ("island", Obs.Int cx.ix) ]
    @@ fun () ->
    let early =
      float_of_int cx.trial
      < exploration_fraction *. float_of_int cx.ix_trials
    in
    let parents = parent_pool strategy ~early cx.population in
    let gen_size = min population_size (cx.ix_trials - cx.trial) in
    let propose i =
      let eps =
        epsilon strategy ~trial:(cx.trial + i) ~trials:cx.ix_trials
      in
      if Rng.float cx.rng 1. < eps || parents = [] then
        Sketch.random cx.rng cfg op
      else begin
        let parent, _ = Rng.pick cx.rng parents in
        let muts =
          (* mostly single-field mutations, occasionally two fields
             at once to escape coordinate-wise local optima. *)
          List.init mutations_per_pick (fun _ ->
              let m = Sketch.mutate cx.rng cfg op parent in
              if Rng.float cx.rng 1. < 0.3 then Sketch.mutate cx.rng cfg op m
              else m)
        in
        if use_cost_model && Cost_model.trained cx.model then
          List.fold_left
            (fun acc c ->
              let s = Cost_model.predict cx.model (Cost_model.features op c) in
              match acc with
              | Some (_, s') when s' <= s -> acc
              | _ -> Some (c, s))
            None muts
          |> Option.map fst
          |> Option.value ~default:(List.hd muts)
        else List.hd muts
      end
    in
    let candidates = List.init gen_size propose in
    let offspring =
      match measure_ratio with
      | None ->
          let results =
            Engine.batch engine ~jobs ~rng:cx.rng ?passes ?skip_inputs op
              candidates
          in
          List.mapi (fun i r -> consume cx ~trial:(cx.trial + i) r) results
          |> List.filter_map Fun.id
      | Some ratio ->
          (* Prepare the whole generation (no simulator, no rng), rank
             it with the learned model, and forward only the top
             fraction to the simulator.  Selection is a pure function
             of the trial history and the seed: preparation is
             jobs-independent, ranking is stable, and the one [bits]
             draw plus per-candidate noise streams mirror the
             [Engine.batch] contract. *)
          let prepped =
            Engine.prepare_batch engine ~jobs ?passes ?skip_inputs op
              candidates
          in
          Obs.span ~name:"search.rank"
            ~attrs:[ ("size", Obs.Int gen_size) ]
          @@ fun () ->
          let fresh =
            List.mapi (fun i (params, r) -> (i, params, r)) prepped
            |> List.filter_map (fun (i, params, r) ->
                   match r with
                   | Ok prep when not (Hashtbl.mem cx.seen params) ->
                       Some (i, params, prep)
                   | Ok _ | Error _ -> None)
          in
          List.iter
            (fun (_, r) ->
              match r with Error e -> tally cx e | Ok _ -> ())
            prepped;
          let feats =
            List.map
              (fun (_, _, prep) -> Cost_learn.features prep.Engine.pprogram)
              fresh
          in
          let order = Cost_learn.rank cx.tir feats in
          (* Snapshot predictions at ranking time — the model refits as
             measurements are observed below, and the recorded
             [predicted_s] must be the values the selection was made
             from (the re-rank invariant tests hold the log to this). *)
          let trained_at_rank = Cost_learn.trained cx.tir in
          let pred_arr =
            Array.of_list (List.map (Cost_learn.predict cx.tir) feats)
          in
          let n_sel =
            if trained_at_rank then
              Cost_learn.select_count ~ratio (List.length fresh)
            else List.length fresh
          in
          let selected_ranks = take n_sel order in
          let fresh_arr = Array.of_list fresh in
          let selected =
            List.sort compare selected_ranks
            (* measure in proposal order so the noise-stream indices
               below are independent of the ranking. *)
          in
          let base = Rng.bits cx.rng in
          (* Duplicate proposals of one candidate keep only their first
             slot (exactly the set the sequential loop used to measure);
             the simulations then run through the pool, each drawing
             noise from its own slot-indexed stream. *)
          let sel_fresh =
            let dup = Hashtbl.create 16 in
            List.filter
              (fun idx ->
                let _, params, _ = fresh_arr.(idx) in
                if Hashtbl.mem dup params || Hashtbl.mem cx.seen params then
                  false
                else begin
                  Hashtbl.replace dup params ();
                  true
                end)
              selected
          in
          let sel_arr = Array.of_list sel_fresh in
          let sim_results =
            Pool.map ~jobs
              (fun si ->
                let i, _, prep = fresh_arr.(sel_arr.(si)) in
                let noise = Rng.stream ~base ~index:i in
                Engine.simulate engine ~rng:noise prep)
              (Array.length sel_arr)
          in
          let measured_now = Hashtbl.create 16 in
          Array.iteri
            (fun si result ->
              let idx = sel_arr.(si) in
              let i, params, _ = fresh_arr.(idx) in
              let predicted_s =
                if trained_at_rank then Some pred_arr.(idx) else None
              in
              match result with
              | Error e -> tally cx e
              | Ok m ->
                  record cx ?predicted_s ~trial:(cx.trial + i) params m;
                  Hashtbl.replace measured_now idx (params, m.Engine.latency_s))
            sim_results;
          Obs.add_attr "selected" (Obs.Int (List.length selected));
          Obs.incr ~by:(List.length selected) "search.gate.measured";
          let offspring = ref [] in
          List.iteri
            (fun idx (i, params, _prep) ->
              match Hashtbl.find_opt measured_now idx with
              | Some c -> offspring := c :: !offspring
              | None ->
                  (* a duplicate slot of a candidate measured just above
                     (or skip-recorded before) burns its trial silently *)
                  if
                    (not (Hashtbl.mem cx.skipped_seen params))
                    && not (Hashtbl.mem cx.seen params)
                  then begin
                    let predicted_s = pred_arr.(idx) in
                    if Float.is_finite predicted_s then begin
                      record_skipped cx ~trial:(cx.trial + i) params
                        ~predicted_s;
                      offspring := (params, predicted_s) :: !offspring
                    end
                  end)
            fresh;
          Obs.incr
            ~by:(List.length fresh - List.length selected)
            "search.gate.skipped";
          List.rev !offspring
    in
    cx.trial <- cx.trial + gen_size;
    cx.population <-
      truncate_population strategy ~early (cx.population @ offspring);
    Obs.add_attr "size" (Obs.Int gen_size);
    Obs.add_attr "accepted" (Obs.Int (List.length offspring));
    Obs.add_attr "population" (Obs.Int (List.length cx.population));
    (match cx.best with
    | Some b -> Obs.add_attr "best_s" (Obs.Float b.Measure.latency_s)
    | None -> ());
    Log.debug (fun m ->
        m "island %d trial %d/%d: population %d, best %.6f ms, %d invalid so far"
          cx.ix cx.trial cx.ix_trials
          (List.length cx.population)
          (match cx.best with
          | Some b -> b.Measure.latency_s *. 1e3
          | None -> Float.nan)
          cx.invalid);
    cx.generations <- cx.generations + 1
  in
  (* Confirmation pass (gated only): the final population may hold
     predicted-only candidates the model ranks better than anything
     measured — simulate the most promising few before declaring a
     winner, so a model that found the optimum late still cashes it
     in.  Bounded by a small budget so the simulator ledger stays
     ~ratio-proportional. *)
  let confirm cx =
    match measure_ratio with
    | None -> ()
    | Some ratio ->
        Obs.span ~name:"search.confirm"
          ~attrs:[ ("island", Obs.Int cx.ix) ]
        @@ fun () ->
        let budget = max 3 (Cost_learn.select_count ~ratio population_size) in
        let promising =
          List.filter
            (fun (p, l) ->
              (not (Hashtbl.mem cx.seen p)) && l < best_so_far cx)
            cx.population
          |> List.stable_sort by_latency |> take budget
        in
        Obs.add_attr "candidates" (Obs.Int (List.length promising));
        List.iter
          (fun (params, predicted_s) ->
            match Engine.prepare engine ?passes ?skip_inputs op params with
            | Error e -> tally cx e
            | Ok prep -> (
                match Engine.simulate engine ~rng:cx.rng prep with
                | Error e -> tally cx e
                | Ok m ->
                    record cx ~predicted_s ~trial:cx.trial params m;
                    cx.trial <- cx.trial + 1))
          promising
  in
  let should_stop () = match stop with Some f -> f () | None -> false in
  let apply_migration cx migrants =
    let fresh =
      List.filter
        (fun (p, _) ->
          not (List.exists (fun (q, _) -> q = p) cx.population))
        migrants
    in
    if fresh <> [] then begin
      cx.migrations <- cx.migrations + List.length fresh;
      Obs.incr ~by:(List.length fresh) "search.migrations";
      let early =
        float_of_int cx.trial
        < exploration_fraction *. float_of_int cx.ix_trials
      in
      cx.population <-
        truncate_population strategy ~early (cx.population @ fresh)
    end
  in
  (* ---------------- single island: the historical loop -------------- *)
  let interrupted = ref false in
  let ctxs =
    if k = 1 then begin
      let cx =
        match resume with
        | None -> fresh_ctx 0
        | Some ck ->
            ctx_of_state ~tir:(Cost_learn.copy ck.ck_tir_model)
              ck.ck_states.(0)
      in
      let emit_checkpoint () =
        match on_checkpoint with
        | None -> ()
        | Some f ->
            Obs.incr "search.checkpoints";
            f
              (make_checkpoint ~boundary:cx.generations ~tir:cx.tir
                 [| state_of_ctx ~migrated:true cx |])
      in
      if resume = None then begin
        init_island cx;
        emit_checkpoint ()
      end;
      (* [stop] is polled at generation boundaries only — between
         checkpoints the state is mid-flight and not snapshot-safe. *)
      let since = ref 0 in
      while cx.trial < cx.ix_trials && not !interrupted do
        if should_stop () then interrupted := true
        else begin
          step_generation cx;
          incr since;
          if !since mod checkpoint_every = 0 then emit_checkpoint ()
        end
      done;
      (* An interrupted run leaves a checkpoint behind whatever
         [checkpoint_every] said — the whole point of stopping
         gracefully is that nothing since the last boundary is lost. *)
      if !interrupted then emit_checkpoint ()
      else if !since mod checkpoint_every <> 0 then emit_checkpoint ();
      if not !interrupted then confirm cx;
      cx.done_ <- cx.trial >= cx.ix_trials;
      [ cx ]
    end
    else begin
      (* ---------------- the island model ---------------------------- *)
      let sh =
        {
          sm = Mutex.create ();
          scv = Condition.create ();
          pubs = Hashtbl.create 64;
          final = Array.make k None;
          done_at = Array.make k None;
          shared_tir =
            (match resume with
            | None -> Cost_learn.create ()
            | Some ck -> Cost_learn.copy ck.ck_tir_model);
          merged_boundary =
            (match resume with None -> -1 | Some ck -> ck.ck_boundary);
          stop_boundary = None;
          failed = None;
        }
      in
      let ctxs =
        match resume with
        | None -> List.init k fresh_ctx
        | Some ck ->
            (* Seed the rendezvous as if every island had just
               published the checkpoint's boundary: the states stand in
               for the publications, the shared model is already merged
               through it, and each island replays whatever tail of the
               boundary (model adoption, migration) its snapshot
               predates. *)
            Array.iteri
              (fun i st ->
                Hashtbl.replace sh.pubs (i, ck.ck_boundary)
                  { pub_state = st; pub_obs = [] };
                if st.il_done && st.il_migrated then begin
                  sh.done_at.(i) <- Some ck.ck_boundary;
                  sh.final.(i) <- Some st
                end)
              ck.ck_states;
            Array.to_list
              (Array.map
                 (fun st ->
                   ctx_of_state ~tir:(Cost_learn.copy ck.ck_tir_model) st)
                 ck.ck_states)
      in
      let all_ready b =
        sh.failed <> None
        || (let ready = ref true in
            for j = 0 to k - 1 do
              let ok =
                Hashtbl.mem sh.pubs (j, b)
                || (match sh.done_at.(j) with
                   | Some d -> d < b && sh.final.(j) <> None
                   | None -> false)
              in
              if not ok then ready := false
            done;
            !ready)
      in
      (* Under [sh.sm].  Assembles the boundary's checkpoint from the
         published (pre-migration) snapshots; islands done at an
         earlier boundary contribute their final post-migration
         state. *)
      let emit_island_checkpoint b =
        match on_checkpoint with
        | None -> ()
        | Some f ->
            let states =
              Array.init k (fun j ->
                  match Hashtbl.find_opt sh.pubs (j, b) with
                  | Some p -> p.pub_state
                  | None -> (
                      match sh.final.(j) with
                      | Some st -> st
                      | None -> assert false))
            in
            Obs.incr "search.checkpoints";
            f (make_checkpoint ~boundary:b ~tir:sh.shared_tir states)
      in
      (* The boundary rendezvous: publish, wait for the ring, merge the
         shared model once (deterministic (boundary, island) fold),
         checkpoint, then migrate from the ring predecessor.  Returns
         true when the run is stopping. *)
      let island_boundary cx b =
        let pub =
          { pub_state = state_of_ctx cx; pub_obs = List.rev cx.epoch_obs }
        in
        cx.epoch_obs <- [];
        Mutex.lock sh.sm;
        Hashtbl.replace sh.pubs (cx.ix, b) pub;
        if cx.done_ then sh.done_at.(cx.ix) <- Some b;
        Condition.broadcast sh.scv;
        while not (all_ready b) do
          Condition.wait sh.scv sh.sm
        done;
        if sh.failed <> None then begin
          Mutex.unlock sh.sm;
          raise Island_aborted
        end;
        if sh.merged_boundary < b then begin
          for bb = max 0 (sh.merged_boundary + 1) to b do
            for j = 0 to k - 1 do
              match Hashtbl.find_opt sh.pubs (j, bb) with
              | Some p ->
                  List.iter
                    (fun (x, y) -> Cost_learn.observe sh.shared_tir x y)
                    p.pub_obs
              | None -> ()
            done
          done;
          sh.merged_boundary <- b;
          (* One stop poll per boundary, made by the merge leader so
             every island agrees on where the run ends. *)
          if should_stop () then sh.stop_boundary <- Some b;
          if sh.stop_boundary = Some b || b = 0 || b mod checkpoint_every = 0
          then emit_island_checkpoint b
        end;
        let stopping = sh.stop_boundary <> None in
        if gated then cx.tir <- Cost_learn.copy sh.shared_tir;
        let migrants =
          if b = 0 || stopping then []
          else begin
            let p = (cx.ix + k - 1) mod k in
            let src =
              match Hashtbl.find_opt sh.pubs (p, b) with
              | Some pb -> Some pb.pub_state
              | None -> sh.final.(p)
            in
            match src with
            | None -> []
            | Some st -> elites st.il_population
          end
        in
        Mutex.unlock sh.sm;
        if migrants <> [] then apply_migration cx migrants;
        if cx.done_ && not stopping then begin
          (* Export the post-migration state: later boundaries take
             this island's elites (and checkpoints its state) from
             here. *)
          Mutex.lock sh.sm;
          sh.final.(cx.ix) <- Some (state_of_ctx ~migrated:true cx);
          Condition.broadcast sh.scv;
          Mutex.unlock sh.sm
        end;
        stopping
      in
      let island_main cx =
        Obs.span ~name:"search.island"
          ~attrs:
            [ ("island", Obs.Int cx.ix); ("trials", Obs.Int cx.ix_trials) ]
        @@ fun () ->
        let b = ref 0 in
        let stopping = ref false in
        (match resume with
        | Some ck ->
            b := ck.ck_boundary;
            (* Replay the tail of the checkpointed boundary for a
               snapshot taken before its migration. *)
            let st = ck.ck_states.(cx.ix) in
            if not st.il_migrated then begin
              let migrants =
                if !b = 0 then []
                else
                  elites ck.ck_states.((cx.ix + k - 1) mod k).il_population
              in
              if migrants <> [] then apply_migration cx migrants;
              if cx.done_ then begin
                Mutex.lock sh.sm;
                sh.done_at.(cx.ix) <- Some !b;
                sh.final.(cx.ix) <- Some (state_of_ctx ~migrated:true cx);
                Condition.broadcast sh.scv;
                Mutex.unlock sh.sm
              end
            end
        | None ->
            init_island cx;
            if cx.trial >= cx.ix_trials then cx.done_ <- true;
            stopping := island_boundary cx 0);
        while (not cx.done_) && not !stopping do
          let g = ref 0 in
          while !g < migrate_every && cx.trial < cx.ix_trials do
            step_generation cx;
            incr g
          done;
          if cx.trial >= cx.ix_trials then cx.done_ <- true;
          incr b;
          stopping := island_boundary cx !b
        done;
        if not !stopping then confirm cx
      in
      let guarded cx () =
        try island_main cx with
        | Island_aborted -> ()
        | e ->
            Mutex.lock sh.sm;
            if sh.failed = None then sh.failed <- Some e;
            Condition.broadcast sh.scv;
            Mutex.unlock sh.sm
      in
      let rest =
        List.filter (fun cx -> cx.ix > 0) ctxs
        |> List.map (fun cx -> Thread.create (guarded cx) ())
      in
      guarded (List.hd ctxs) ();
      List.iter Thread.join rest;
      (match sh.failed with Some e -> raise e | None -> ());
      interrupted := sh.stop_boundary <> None;
      ctxs
    end
  in
  (* ---------------- outcome --------------------------------------- *)
  let elapsed_s = Obs.now_s () -. t0 in
  let total f = List.fold_left (fun a cx -> a + f cx) 0 ctxs in
  let trials_used = total (fun cx -> cx.trial) in
  let measured = total (fun cx -> cx.measured) in
  let skipped = total (fun cx -> cx.skipped) in
  let invalid = total (fun cx -> cx.invalid) in
  Obs.incr ~by:trials_used "search.trials";
  Obs.incr ~by:measured "search.measured";
  Obs.incr ~by:skipped "search.skipped";
  Obs.incr ~by:invalid "search.invalid";
  let measured_trials, cache_hits, _ = ledger_counters () in
  Obs.incr ~by:cache_hits "search.cache_hits";
  Obs.incr ~by:measured_trials "search.measured_trials";
  (match Cost_learn.mean_abs_log_err (List.hd ctxs).tir with
  | Some e -> Obs.set_gauge "search.model_abs_log_err" e
  | None -> ());
  if elapsed_s > 0. then
    Obs.set_gauge "search.trials_per_s"
      (float_of_int trials_used /. elapsed_s);
  let rejections =
    let merged = Hashtbl.create 8 in
    List.iter
      (fun cx ->
        Hashtbl.iter
          (fun key n ->
            Hashtbl.replace merged key
              (n + Option.value (Hashtbl.find_opt merged key) ~default:0))
          cx.rejections)
      ctxs;
    Hashtbl.fold (fun key n acc -> (key, n) :: acc) merged []
    |> List.sort (fun (ka, na) (kb, nb) ->
           match Int.compare nb na with
           | 0 -> String.compare ka kb
           | c -> c)
  in
  let best =
    List.fold_left
      (fun acc cx ->
        match (acc, cx.best) with
        | None, b -> b
        | Some a, Some b when b.Measure.latency_s < a.Measure.latency_s ->
            Some b
        | acc, _ -> acc)
      None ctxs
  in
  let per_island =
    List.map
      (fun cx ->
        {
          island = cx.ix;
          island_trials = cx.trial;
          island_generations = cx.generations;
          island_measured = cx.measured;
          island_skipped = cx.skipped;
          island_invalid = cx.invalid;
          island_migrations = cx.migrations;
          island_best_s =
            Option.map (fun b -> b.Measure.latency_s) cx.best;
        })
      ctxs
  in
  {
    best;
    history = List.concat_map (fun cx -> List.rev cx.history) ctxs;
    invalid_candidates = invalid;
    rejections;
    measured;
    measured_trials;
    skipped;
    cache_hits;
    elapsed_s = base_elapsed_s +. elapsed_s;
    interrupted = !interrupted;
    resumed_from =
      (match resume with Some ck -> Some (checkpoint_trial ck) | None -> None);
    islands = k;
    per_island;
  }
