let log_src = Logs.Src.create "imtp.search" ~doc:"IMTP evolutionary search"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Engine = Imtp_engine.Engine
module Obs = Imtp_obs.Obs

type strategy = { balanced_sampling : bool; adaptive_epsilon : bool }

let tvm_default = { balanced_sampling = false; adaptive_epsilon = false }
let imtp_default = { balanced_sampling = true; adaptive_epsilon = true }

type record = {
  trial : int;
  params : Sketch.params;
  latency_s : float;
  best_so_far : float;
  measured : bool;
  predicted_s : float option;
}

type outcome = {
  best : Measure.result option;
  history : record list;
  invalid_candidates : int;
  rejections : (string * int) list;
  measured : int;
  measured_trials : int;
  skipped : int;
  cache_hits : int;
  elapsed_s : float;
  interrupted : bool;
  resumed_from : int option;
}

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

(* Everything the search loop mutates, snapshotted at a generation
   boundary.  All fields are plain data (no closures), so a checkpoint
   marshals to disk as-is ({!Checkpoint}); [Rng.t] serializes its exact
   draw position, which is what makes resumption bit-identical.  The
   engine's memo tables are deliberately NOT part of the state: cached
   artifacts are a pure function of their candidate, so a resumed run
   on a cold cache rebuilds the same values — only the cache-ledger
   fields of the outcome ([cache_hits], [measured_trials]) reflect the
   executions this process actually paid for. *)
type checkpoint = {
  ck_format : int;
  ck_op_key : string;  (* Engine.op_key, pins the operator identity *)
  ck_op_name : string;
  ck_seed : int;
  ck_trials : int;
  ck_strategy : strategy;
  ck_use_cost_model : bool;
  ck_measure_ratio : float option;
  ck_rng : Rng.t;
  ck_model : Cost_model.t;
  ck_tir_model : Cost_learn.t;
  ck_seen : (Sketch.params, unit) Hashtbl.t;
  ck_skipped_seen : (Sketch.params, unit) Hashtbl.t;
  ck_history : record list;  (* newest first, as the loop keeps it *)
  ck_best : Measure.result option;
  ck_invalid : int;
  ck_rejections : (string, int) Hashtbl.t;
  ck_measured : int;
  ck_skipped : int;
  ck_trial : int;
  ck_population : (Sketch.params * float) list;
  ck_measured_trials : int;  (* cumulative simulator ledger *)
  ck_cache_hits : int;  (* cumulative engine-cache hits *)
  ck_elapsed_s : float;  (* wall clock consumed before the snapshot *)
}

(* Bump whenever the checkpoint layout (or anything it transitively
   contains) changes incompatibly; {!run} rejects other formats. *)
let checkpoint_format = 1

let checkpoint_trial ck = ck.ck_trial
let checkpoint_trials ck = ck.ck_trials
let checkpoint_op_name ck = ck.ck_op_name
let checkpoint_seed ck = ck.ck_seed
let checkpoint_measure_ratio ck = ck.ck_measure_ratio

(* Bucket an engine error for the rejection tally: verifier rejections
   keep their constraint name (dpus/tasklets/mram/wram/iram/dma), other
   stages tally under the stage that failed. *)
let rejection_bucket : Engine.error -> string = function
  | Engine.Verifier_rejected r -> r.Imtp_engine.Verifier.constraint_name
  | Engine.Sketch_invalid _ -> "sketch"
  | Engine.Lower_failed _ -> "lower"
  | Engine.Cost_failed _ -> "cost"

let population_size = 16
let top_k = 8
let mutations_per_pick = 4
let exploration_fraction = 0.4

let epsilon strategy ~trial ~trials =
  if strategy.adaptive_epsilon then begin
    let cutoff = exploration_fraction *. float_of_int trials in
    if float_of_int trial >= cutoff then 0.05
    else 0.5 -. (0.45 *. float_of_int trial /. cutoff)
  end
  else 0.05

let by_latency = fun (_, a) (_, b) -> Float.compare a b
let take n l = List.filteri (fun i _ -> i < n) l

(* The generational population: with balanced sampling active, half the
   slots are reserved for each design space (rfactor / non-rfactor)
   while candidates of both exist, so neither family is prematurely
   dropped (§5.2.3); otherwise it is a plain truncation by fitness —
   and a family that falls out of the population can only re-enter
   through ε-random sampling, which is how the unbalanced search gets
   stuck. *)
let truncate_population strategy ~early pool =
  let sorted = List.sort by_latency pool in
  if strategy.balanced_sampling && early then begin
    let rf, no_rf = List.partition (fun (p, _) -> Sketch.uses_rfactor p) sorted in
    let half = population_size / 2 in
    let a = take half rf and b = take half no_rf in
    let rest =
      List.filter
        (fun c -> not (List.memq c a || List.memq c b))
        sorted
    in
    take population_size (List.sort by_latency (a @ b) @ rest)
  end
  else take population_size sorted

let parent_pool strategy ~early population =
  let sorted = List.sort by_latency population in
  if strategy.balanced_sampling && early then begin
    let rf, no_rf = List.partition (fun (p, _) -> Sketch.uses_rfactor p) sorted in
    let half = max 1 (top_k / 2) in
    match take half rf @ take half no_rf with
    | [] -> take top_k sorted
    | pool -> pool
  end
  else take top_k sorted

let run ?(strategy = imtp_default) ?(seed = 2024) ?jobs ?passes ?skip_inputs
    ?(use_cost_model = true) ?measure_ratio ?engine ?resume ?on_checkpoint
    ?(checkpoint_every = 1) ?stop cfg op ~trials =
  let jobs =
    match jobs with Some j -> j | None -> Imtp_engine.Pool.default_jobs ()
  in
  if checkpoint_every < 1 then
    invalid_arg "Search.run: checkpoint_every must be >= 1";
  let op_key = Engine.op_key op in
  (* A resumed run replays the killed run's own configuration — the
     caller's seed/strategy/gating arguments are overridden by the
     checkpoint, because mixing a serialized rng stream with different
     search dynamics could not be bit-identical to anything. *)
  let strategy, seed, use_cost_model, measure_ratio, trials =
    match resume with
    | None -> (strategy, seed, use_cost_model, measure_ratio, trials)
    | Some ck ->
        if ck.ck_format <> checkpoint_format then
          invalid_arg
            (Printf.sprintf
               "Search.run: checkpoint format %d, this build speaks %d"
               ck.ck_format checkpoint_format);
        if ck.ck_op_key <> op_key then
          invalid_arg
            (Printf.sprintf
               "Search.run: checkpoint was recorded for op %s, not %s"
               ck.ck_op_name op.Imtp_workload.Op.opname);
        ( ck.ck_strategy,
          ck.ck_seed,
          ck.ck_use_cost_model,
          ck.ck_measure_ratio,
          ck.ck_trials )
  in
  (match measure_ratio with
  | Some r when not (r > 0. && r <= 1.) ->
      invalid_arg "Search.run: measure_ratio must be in (0, 1]"
  | Some _ | None -> ());
  Obs.span ~name:"search.run"
    ~attrs:
      [
        ("op", Obs.Str op.Imtp_workload.Op.opname);
        ("trials", Obs.Int trials);
        ("seed", Obs.Int seed);
        ("jobs", Obs.Int jobs);
        ( "measure_ratio",
          Obs.Float (Option.value measure_ratio ~default:1.) );
        ( "resumed_from",
          Obs.Int (match resume with Some ck -> ck.ck_trial | None -> -1) );
      ]
  @@ fun () ->
  let t0 = Obs.now_s () in
  let engine =
    match engine with Some e -> e | None -> Engine.create cfg
  in
  let hits0 = (Engine.counters engine).Engine.hits in
  let costed0 = (Engine.counters engine).Engine.costed in
  (* Cumulative ledgers carried over from the killed run, so a resumed
     outcome still reports every simulator execution it (transitively)
     paid for. *)
  let base_measured_trials, base_cache_hits, base_elapsed_s =
    match resume with
    | None -> (0, 0, 0.)
    | Some ck -> (ck.ck_measured_trials, ck.ck_cache_hits, ck.ck_elapsed_s)
  in
  (* Deep-copy every piece of resumed state: the caller may resume the
     same in-memory checkpoint several times (tests do), and a run must
     never mutate the snapshot it started from. *)
  let rng =
    match resume with
    | None -> Rng.create ~seed
    | Some ck -> Rng.copy ck.ck_rng
  in
  let model =
    match resume with
    | None -> Cost_model.create ()
    | Some ck -> Cost_model.copy ck.ck_model
  in
  let tir_model =
    match resume with
    | None -> Cost_learn.create ()
    | Some ck -> Cost_learn.copy ck.ck_tir_model
  in
  (* Params measured this run; duplicate proposals are deduplicated here
     (one history entry per candidate) while the engine cache spares
     them the re-build.  Under gating, [skipped_seen] additionally
     remembers candidates that already carry a predicted (unmeasured)
     history entry — a re-proposal may still be measured later, but
     never produces a second predicted entry. *)
  let seen =
    match resume with
    | None -> Hashtbl.create 64
    | Some ck -> Hashtbl.copy ck.ck_seen
  in
  let skipped_seen =
    match resume with
    | None -> Hashtbl.create 64
    | Some ck -> Hashtbl.copy ck.ck_skipped_seen
  in
  let history = ref (match resume with None -> [] | Some ck -> ck.ck_history) in
  let best = ref (match resume with None -> None | Some ck -> ck.ck_best) in
  let invalid = ref (match resume with None -> 0 | Some ck -> ck.ck_invalid) in
  let rejections =
    match resume with
    | None -> Hashtbl.create 8
    | Some ck -> Hashtbl.copy ck.ck_rejections
  in
  let tally e =
    incr invalid;
    let k = rejection_bucket e in
    Hashtbl.replace rejections k
      (1 + Option.value (Hashtbl.find_opt rejections k) ~default:0)
  in
  let measured =
    ref (match resume with None -> 0 | Some ck -> ck.ck_measured)
  in
  let skipped =
    ref (match resume with None -> 0 | Some ck -> ck.ck_skipped)
  in
  let trial = ref (match resume with None -> 0 | Some ck -> ck.ck_trial) in
  let population =
    ref (match resume with None -> [] | Some ck -> ck.ck_population)
  in
  let snapshot () =
    let c = Engine.counters engine in
    {
      ck_format = checkpoint_format;
      ck_op_key = op_key;
      ck_op_name = op.Imtp_workload.Op.opname;
      ck_seed = seed;
      ck_trials = trials;
      ck_strategy = strategy;
      ck_use_cost_model = use_cost_model;
      ck_measure_ratio = measure_ratio;
      ck_rng = Rng.copy rng;
      ck_model = Cost_model.copy model;
      ck_tir_model = Cost_learn.copy tir_model;
      ck_seen = Hashtbl.copy seen;
      ck_skipped_seen = Hashtbl.copy skipped_seen;
      ck_history = !history;
      ck_best = !best;
      ck_invalid = !invalid;
      ck_rejections = Hashtbl.copy rejections;
      ck_measured = !measured;
      ck_skipped = !skipped;
      ck_trial = !trial;
      ck_population = !population;
      ck_measured_trials =
        base_measured_trials + c.Engine.costed - costed0;
      ck_cache_hits = base_cache_hits + c.Engine.hits - hits0;
      ck_elapsed_s = base_elapsed_s +. (Obs.now_s () -. t0);
    }
  in
  let emit_checkpoint () =
    match on_checkpoint with
    | None -> ()
    | Some f ->
        Obs.incr "search.checkpoints";
        f (snapshot ())
  in
  let best_so_far () =
    match !best with Some b -> b.Measure.latency_s | None -> infinity
  in
  let record ?predicted_s ~trial params (m : Engine.measurement) =
    incr measured;
    Hashtbl.replace seen params ();
    Hashtbl.remove skipped_seen params;
    let latency_s = m.Engine.latency_s in
    Cost_model.observe model (Cost_model.features op params) latency_s;
    if measure_ratio <> None then
      Cost_learn.observe tir_model
        (Cost_learn.features m.Engine.artifact.Engine.program)
        latency_s;
    let r =
      { Measure.params; stats = m.Engine.artifact.Engine.stats; latency_s }
    in
    (match !best with
    | Some b when b.Measure.latency_s <= latency_s -> ()
    | Some _ | None ->
        best := Some r;
        Obs.set_gauge "search.best_latency_s" latency_s);
    Obs.observe "search.trial_latency_s" latency_s;
    history :=
      {
        trial;
        params;
        latency_s;
        best_so_far = best_so_far ();
        measured = true;
        predicted_s;
      }
      :: !history
  in
  let record_skipped ~trial params ~predicted_s =
    incr skipped;
    Hashtbl.replace skipped_seen params ();
    history :=
      {
        trial;
        params;
        latency_s = predicted_s;
        best_so_far = best_so_far ();
        measured = false;
        predicted_s = Some predicted_s;
      }
      :: !history
  in
  (* One proposal consumes one trial; invalid candidates (typed engine
     errors, cached after first rejection) and duplicate proposals burn
     the trial without contributing offspring. *)
  let consume ~trial (params, result) =
    match result with
    | Error e ->
        tally e;
        None
    | Ok m ->
        if Hashtbl.mem seen params then None
        else begin
          record ~trial params m;
          Some (params, m.Engine.latency_s)
        end
  in
  let random_valid () =
    let rec go attempts =
      if attempts = 0 then None
      else begin
        let params = Sketch.random rng cfg op in
        let result = Engine.measure engine ~rng ?passes ?skip_inputs op params in
        match consume ~trial:!trial (params, result) with
        | Some c -> Some c
        | None -> go (attempts - 1)
      end
    in
    go 16
  in
  (* Initial population under gating: measure until the TIR model has
     its ground truth, then admit the rest of the population on
     predicted fitness alone. *)
  let random_valid_gated () =
    let rec go attempts =
      if attempts = 0 then None
      else begin
        let params = Sketch.random rng cfg op in
        if Hashtbl.mem seen params || Hashtbl.mem skipped_seen params then
          go (attempts - 1)
        else begin
          match Engine.prepare engine ?passes ?skip_inputs op params with
          | Error e ->
              tally e;
              go (attempts - 1)
          | Ok prep ->
              let x = Cost_learn.features prep.Engine.pprogram in
              if not (Cost_learn.trained tir_model) then begin
                match Engine.simulate engine ~rng prep with
                | Error e ->
                    tally e;
                    go (attempts - 1)
                | Ok m ->
                    record ~trial:!trial params m;
                    Some (params, m.Engine.latency_s)
              end
              else begin
                let predicted_s = Cost_learn.predict tir_model x in
                record_skipped ~trial:!trial params ~predicted_s;
                Some (params, predicted_s)
              end
        end
      end
    in
    go 16
  in
  (* Initial population: random sampling (uniform across design
     spaces, hence unaffected by the balanced sampler).  A resumed run
     skips it — the restored state is already past it. *)
  if resume = None then begin
    Obs.span ~name:"search.init" (fun () ->
        let sample =
          if measure_ratio = None then random_valid else random_valid_gated
        in
        while !trial < min trials population_size do
          (match sample () with
          | Some c -> population := c :: !population
          | None -> ());
          incr trial
        done);
    emit_checkpoint ()
  end;
  (* Generations: propose a whole generation against the fixed parent
     pool, then measure it in one engine batch.  [stop] is polled at
     generation boundaries only — between checkpoints the state is
     mid-flight and not snapshot-safe. *)
  let interrupted = ref false in
  let generations = ref 0 in
  let should_stop () = match stop with Some f -> f () | None -> false in
  while !trial < trials && not !interrupted do
    if should_stop () then interrupted := true
    else begin
    Obs.span ~name:"search.generation"
      ~attrs:[ ("trial", Obs.Int !trial) ]
    @@ fun () ->
    let early =
      float_of_int !trial < exploration_fraction *. float_of_int trials
    in
    let parents = parent_pool strategy ~early !population in
    let gen_size = min population_size (trials - !trial) in
    let propose i =
      let eps = epsilon strategy ~trial:(!trial + i) ~trials in
      if Rng.float rng 1. < eps || parents = [] then Sketch.random rng cfg op
      else begin
        let parent, _ = Rng.pick rng parents in
        let muts =
          (* mostly single-field mutations, occasionally two fields
             at once to escape coordinate-wise local optima. *)
          List.init mutations_per_pick (fun _ ->
              let m = Sketch.mutate rng cfg op parent in
              if Rng.float rng 1. < 0.3 then Sketch.mutate rng cfg op m
              else m)
        in
        if use_cost_model && Cost_model.trained model then
          List.fold_left
            (fun acc c ->
              let s = Cost_model.predict model (Cost_model.features op c) in
              match acc with
              | Some (_, s') when s' <= s -> acc
              | _ -> Some (c, s))
            None muts
          |> Option.map fst
          |> Option.value ~default:(List.hd muts)
        else List.hd muts
      end
    in
    let candidates = List.init gen_size propose in
    let offspring =
      match measure_ratio with
      | None ->
          let results =
            Engine.batch engine ~jobs ~rng ?passes ?skip_inputs op candidates
          in
          List.mapi (fun i r -> consume ~trial:(!trial + i) r) results
          |> List.filter_map Fun.id
      | Some ratio ->
          (* Prepare the whole generation (no simulator, no rng), rank
             it with the learned model, and forward only the top
             fraction to the simulator.  Selection is a pure function
             of the trial history and the seed: preparation is
             jobs-independent, ranking is stable, and the one [bits]
             draw plus per-candidate noise streams mirror the
             [Engine.batch] contract. *)
          let prepped =
            Engine.prepare_batch engine ~jobs ?passes ?skip_inputs op candidates
          in
          Obs.span ~name:"search.rank"
            ~attrs:[ ("size", Obs.Int gen_size) ]
          @@ fun () ->
          let fresh =
            List.mapi (fun i (params, r) -> (i, params, r)) prepped
            |> List.filter_map (fun (i, params, r) ->
                   match r with
                   | Ok prep when not (Hashtbl.mem seen params) ->
                       Some (i, params, prep)
                   | Ok _ | Error _ -> None)
          in
          List.iter
            (fun (_, r) ->
              match r with Error e -> tally e | Ok _ -> ())
            prepped;
          let feats =
            List.map
              (fun (_, _, prep) -> Cost_learn.features prep.Engine.pprogram)
              fresh
          in
          let order = Cost_learn.rank tir_model feats in
          (* Snapshot predictions at ranking time — the model refits as
             measurements are observed below, and the recorded
             [predicted_s] must be the values the selection was made
             from (the re-rank invariant tests hold the log to this). *)
          let trained_at_rank = Cost_learn.trained tir_model in
          let pred_arr =
            Array.of_list (List.map (Cost_learn.predict tir_model) feats)
          in
          let n_sel =
            if trained_at_rank then
              Cost_learn.select_count ~ratio (List.length fresh)
            else List.length fresh
          in
          let selected_ranks = take n_sel order in
          let fresh_arr = Array.of_list fresh in
          let selected =
            List.sort compare selected_ranks
            (* measure in proposal order so the noise-stream indices
               below are independent of the ranking. *)
          in
          let base = Rng.bits rng in
          let measured_now = Hashtbl.create 16 in
          List.iter
            (fun k ->
              let i, params, prep = fresh_arr.(k) in
              if Hashtbl.mem seen params then ()
              else begin
              let predicted_s =
                if trained_at_rank then Some pred_arr.(k) else None
              in
              let noise = Rng.stream ~base ~index:i in
              match Engine.simulate engine ~rng:noise prep with
              | Error e -> tally e
              | Ok m ->
                  record ?predicted_s ~trial:(!trial + i) params m;
                  Hashtbl.replace measured_now k (params, m.Engine.latency_s)
              end)
            selected;
          Obs.add_attr "selected" (Obs.Int (List.length selected));
          Obs.incr ~by:(List.length selected) "search.gate.measured";
          let offspring = ref [] in
          List.iteri
            (fun k (i, params, _prep) ->
              match Hashtbl.find_opt measured_now k with
              | Some c -> offspring := c :: !offspring
              | None ->
                  (* a duplicate slot of a candidate measured just above
                     (or skip-recorded before) burns its trial silently *)
                  if
                    (not (Hashtbl.mem skipped_seen params))
                    && not (Hashtbl.mem seen params)
                  then begin
                    let predicted_s = pred_arr.(k) in
                    if Float.is_finite predicted_s then begin
                      record_skipped ~trial:(!trial + i) params ~predicted_s;
                      offspring := (params, predicted_s) :: !offspring
                    end
                  end)
            fresh;
          Obs.incr
            ~by:(List.length fresh - List.length selected)
            "search.gate.skipped";
          List.rev !offspring
    in
    trial := !trial + gen_size;
    population :=
      truncate_population strategy ~early (!population @ offspring);
    Obs.add_attr "size" (Obs.Int gen_size);
    Obs.add_attr "accepted" (Obs.Int (List.length offspring));
    Obs.add_attr "population" (Obs.Int (List.length !population));
    (match !best with
    | Some b -> Obs.add_attr "best_s" (Obs.Float b.Measure.latency_s)
    | None -> ());
    Log.debug (fun m ->
        m "trial %d/%d: population %d, best %.6f ms, %d invalid so far" !trial
          trials
          (List.length !population)
          (match !best with
          | Some b -> b.Measure.latency_s *. 1e3
          | None -> Float.nan)
          !invalid);
    incr generations;
    if !generations mod checkpoint_every = 0 then emit_checkpoint ()
    end
  done;
  (* An interrupted run leaves a checkpoint behind whatever
     [checkpoint_every] said — the whole point of stopping gracefully
     is that nothing since the last generation boundary is lost. *)
  if !interrupted then emit_checkpoint ()
  else if !generations mod checkpoint_every <> 0 then emit_checkpoint ();
  (* Confirmation pass (gated only): the final population may hold
     predicted-only candidates the model ranks better than anything
     measured — simulate the most promising few before declaring a
     winner, so a model that found the optimum late still cashes it
     in.  Bounded by a small budget so the simulator ledger stays
     ~ratio-proportional.  Skipped on interruption: the resumed run
     performs it when the trial budget is actually exhausted. *)
  (match measure_ratio with
  | _ when !interrupted -> ()
  | None -> ()
  | Some ratio ->
      Obs.span ~name:"search.confirm" @@ fun () ->
      let budget = max 3 (Cost_learn.select_count ~ratio population_size) in
      let promising =
        List.filter
          (fun (p, l) -> (not (Hashtbl.mem seen p)) && l < best_so_far ())
          !population
        |> List.stable_sort by_latency |> take budget
      in
      Obs.add_attr "candidates" (Obs.Int (List.length promising));
      List.iter
        (fun (params, predicted_s) ->
          match Engine.prepare engine ?passes ?skip_inputs op params with
          | Error e -> tally e
          | Ok prep -> (
              match Engine.simulate engine ~rng prep with
              | Error e -> tally e
              | Ok m ->
                  record ~predicted_s ~trial:!trial params m;
                  incr trial))
        promising);
  let elapsed_s = Obs.now_s () -. t0 in
  Obs.incr ~by:!trial "search.trials";
  Obs.incr ~by:!measured "search.measured";
  Obs.incr ~by:!skipped "search.skipped";
  Obs.incr ~by:!invalid "search.invalid";
  let cache_hits =
    base_cache_hits + (Engine.counters engine).Engine.hits - hits0
  in
  let measured_trials =
    base_measured_trials + (Engine.counters engine).Engine.costed - costed0
  in
  Obs.incr ~by:cache_hits "search.cache_hits";
  Obs.incr ~by:measured_trials "search.measured_trials";
  (match Cost_learn.mean_abs_log_err tir_model with
  | Some e -> Obs.set_gauge "search.model_abs_log_err" e
  | None -> ());
  if elapsed_s > 0. then
    Obs.set_gauge "search.trials_per_s" (float_of_int !trial /. elapsed_s);
  let rejections =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) rejections []
    |> List.sort (fun (ka, na) (kb, nb) ->
           match Int.compare nb na with
           | 0 -> String.compare ka kb
           | c -> c)
  in
  {
    best = !best;
    history = List.rev !history;
    invalid_candidates = !invalid;
    rejections;
    measured = !measured;
    measured_trials;
    skipped = !skipped;
    cache_hits;
    elapsed_s = base_elapsed_s +. elapsed_s;
    interrupted = !interrupted;
    resumed_from =
      (match resume with Some ck -> Some ck.ck_trial | None -> None);
  }
