let log_src = Logs.Src.create "imtp.search" ~doc:"IMTP evolutionary search"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Engine = Imtp_engine.Engine
module Obs = Imtp_obs.Obs

type strategy = { balanced_sampling : bool; adaptive_epsilon : bool }

let tvm_default = { balanced_sampling = false; adaptive_epsilon = false }
let imtp_default = { balanced_sampling = true; adaptive_epsilon = true }

type record = {
  trial : int;
  params : Sketch.params;
  latency_s : float;
  best_so_far : float;
  measured : bool;
  predicted_s : float option;
}

type outcome = {
  best : Measure.result option;
  history : record list;
  invalid_candidates : int;
  rejections : (string * int) list;
  measured : int;
  measured_trials : int;
  skipped : int;
  cache_hits : int;
  elapsed_s : float;
}

(* Bucket an engine error for the rejection tally: verifier rejections
   keep their constraint name (dpus/tasklets/mram/wram/iram/dma), other
   stages tally under the stage that failed. *)
let rejection_bucket : Engine.error -> string = function
  | Engine.Verifier_rejected r -> r.Imtp_engine.Verifier.constraint_name
  | Engine.Sketch_invalid _ -> "sketch"
  | Engine.Lower_failed _ -> "lower"
  | Engine.Cost_failed _ -> "cost"

let population_size = 16
let top_k = 8
let mutations_per_pick = 4
let exploration_fraction = 0.4

let epsilon strategy ~trial ~trials =
  if strategy.adaptive_epsilon then begin
    let cutoff = exploration_fraction *. float_of_int trials in
    if float_of_int trial >= cutoff then 0.05
    else 0.5 -. (0.45 *. float_of_int trial /. cutoff)
  end
  else 0.05

let by_latency = fun (_, a) (_, b) -> Float.compare a b
let take n l = List.filteri (fun i _ -> i < n) l

(* The generational population: with balanced sampling active, half the
   slots are reserved for each design space (rfactor / non-rfactor)
   while candidates of both exist, so neither family is prematurely
   dropped (§5.2.3); otherwise it is a plain truncation by fitness —
   and a family that falls out of the population can only re-enter
   through ε-random sampling, which is how the unbalanced search gets
   stuck. *)
let truncate_population strategy ~early pool =
  let sorted = List.sort by_latency pool in
  if strategy.balanced_sampling && early then begin
    let rf, no_rf = List.partition (fun (p, _) -> Sketch.uses_rfactor p) sorted in
    let half = population_size / 2 in
    let a = take half rf and b = take half no_rf in
    let rest =
      List.filter
        (fun c -> not (List.memq c a || List.memq c b))
        sorted
    in
    take population_size (List.sort by_latency (a @ b) @ rest)
  end
  else take population_size sorted

let parent_pool strategy ~early population =
  let sorted = List.sort by_latency population in
  if strategy.balanced_sampling && early then begin
    let rf, no_rf = List.partition (fun (p, _) -> Sketch.uses_rfactor p) sorted in
    let half = max 1 (top_k / 2) in
    match take half rf @ take half no_rf with
    | [] -> take top_k sorted
    | pool -> pool
  end
  else take top_k sorted

let run ?(strategy = imtp_default) ?(seed = 2024) ?jobs ?passes ?skip_inputs
    ?(use_cost_model = true) ?measure_ratio ?engine cfg op ~trials =
  let jobs =
    match jobs with Some j -> j | None -> Imtp_engine.Pool.default_jobs ()
  in
  (match measure_ratio with
  | Some r when not (r > 0. && r <= 1.) ->
      invalid_arg "Search.run: measure_ratio must be in (0, 1]"
  | Some _ | None -> ());
  Obs.span ~name:"search.run"
    ~attrs:
      [
        ("op", Obs.Str op.Imtp_workload.Op.opname);
        ("trials", Obs.Int trials);
        ("seed", Obs.Int seed);
        ("jobs", Obs.Int jobs);
        ( "measure_ratio",
          Obs.Float (Option.value measure_ratio ~default:1.) );
      ]
  @@ fun () ->
  let t0 = Obs.now_s () in
  let engine =
    match engine with Some e -> e | None -> Engine.create cfg
  in
  let hits0 = (Engine.counters engine).Engine.hits in
  let costed0 = (Engine.counters engine).Engine.costed in
  let rng = Rng.create ~seed in
  let model = Cost_model.create () in
  let tir_model = Cost_learn.create () in
  (* Params measured this run; duplicate proposals are deduplicated here
     (one history entry per candidate) while the engine cache spares
     them the re-build.  Under gating, [skipped_seen] additionally
     remembers candidates that already carry a predicted (unmeasured)
     history entry — a re-proposal may still be measured later, but
     never produces a second predicted entry. *)
  let seen = Hashtbl.create 64 in
  let skipped_seen = Hashtbl.create 64 in
  let history = ref [] in
  let best = ref None in
  let invalid = ref 0 in
  let rejections = Hashtbl.create 8 in
  let tally e =
    incr invalid;
    let k = rejection_bucket e in
    Hashtbl.replace rejections k
      (1 + Option.value (Hashtbl.find_opt rejections k) ~default:0)
  in
  let measured = ref 0 in
  let skipped = ref 0 in
  let trial = ref 0 in
  let population = ref [] in
  let best_so_far () =
    match !best with Some b -> b.Measure.latency_s | None -> infinity
  in
  let record ?predicted_s ~trial params (m : Engine.measurement) =
    incr measured;
    Hashtbl.replace seen params ();
    Hashtbl.remove skipped_seen params;
    let latency_s = m.Engine.latency_s in
    Cost_model.observe model (Cost_model.features op params) latency_s;
    if measure_ratio <> None then
      Cost_learn.observe tir_model
        (Cost_learn.features m.Engine.artifact.Engine.program)
        latency_s;
    let r =
      { Measure.params; stats = m.Engine.artifact.Engine.stats; latency_s }
    in
    (match !best with
    | Some b when b.Measure.latency_s <= latency_s -> ()
    | Some _ | None ->
        best := Some r;
        Obs.set_gauge "search.best_latency_s" latency_s);
    Obs.observe "search.trial_latency_s" latency_s;
    history :=
      {
        trial;
        params;
        latency_s;
        best_so_far = best_so_far ();
        measured = true;
        predicted_s;
      }
      :: !history
  in
  let record_skipped ~trial params ~predicted_s =
    incr skipped;
    Hashtbl.replace skipped_seen params ();
    history :=
      {
        trial;
        params;
        latency_s = predicted_s;
        best_so_far = best_so_far ();
        measured = false;
        predicted_s = Some predicted_s;
      }
      :: !history
  in
  (* One proposal consumes one trial; invalid candidates (typed engine
     errors, cached after first rejection) and duplicate proposals burn
     the trial without contributing offspring. *)
  let consume ~trial (params, result) =
    match result with
    | Error e ->
        tally e;
        None
    | Ok m ->
        if Hashtbl.mem seen params then None
        else begin
          record ~trial params m;
          Some (params, m.Engine.latency_s)
        end
  in
  let random_valid () =
    let rec go attempts =
      if attempts = 0 then None
      else begin
        let params = Sketch.random rng cfg op in
        let result = Engine.measure engine ~rng ?passes ?skip_inputs op params in
        match consume ~trial:!trial (params, result) with
        | Some c -> Some c
        | None -> go (attempts - 1)
      end
    in
    go 16
  in
  (* Initial population under gating: measure until the TIR model has
     its ground truth, then admit the rest of the population on
     predicted fitness alone. *)
  let random_valid_gated () =
    let rec go attempts =
      if attempts = 0 then None
      else begin
        let params = Sketch.random rng cfg op in
        if Hashtbl.mem seen params || Hashtbl.mem skipped_seen params then
          go (attempts - 1)
        else begin
          match Engine.prepare engine ?passes ?skip_inputs op params with
          | Error e ->
              tally e;
              go (attempts - 1)
          | Ok prep ->
              let x = Cost_learn.features prep.Engine.pprogram in
              if not (Cost_learn.trained tir_model) then begin
                match Engine.simulate engine ~rng prep with
                | Error e ->
                    tally e;
                    go (attempts - 1)
                | Ok m ->
                    record ~trial:!trial params m;
                    Some (params, m.Engine.latency_s)
              end
              else begin
                let predicted_s = Cost_learn.predict tir_model x in
                record_skipped ~trial:!trial params ~predicted_s;
                Some (params, predicted_s)
              end
        end
      end
    in
    go 16
  in
  (* Initial population: random sampling (uniform across design
     spaces, hence unaffected by the balanced sampler). *)
  Obs.span ~name:"search.init" (fun () ->
      let sample =
        if measure_ratio = None then random_valid else random_valid_gated
      in
      while !trial < min trials population_size do
        (match sample () with
        | Some c -> population := c :: !population
        | None -> ());
        incr trial
      done);
  (* Generations: propose a whole generation against the fixed parent
     pool, then measure it in one engine batch. *)
  while !trial < trials do
    Obs.span ~name:"search.generation"
      ~attrs:[ ("trial", Obs.Int !trial) ]
    @@ fun () ->
    let early =
      float_of_int !trial < exploration_fraction *. float_of_int trials
    in
    let parents = parent_pool strategy ~early !population in
    let gen_size = min population_size (trials - !trial) in
    let propose i =
      let eps = epsilon strategy ~trial:(!trial + i) ~trials in
      if Rng.float rng 1. < eps || parents = [] then Sketch.random rng cfg op
      else begin
        let parent, _ = Rng.pick rng parents in
        let muts =
          (* mostly single-field mutations, occasionally two fields
             at once to escape coordinate-wise local optima. *)
          List.init mutations_per_pick (fun _ ->
              let m = Sketch.mutate rng cfg op parent in
              if Rng.float rng 1. < 0.3 then Sketch.mutate rng cfg op m
              else m)
        in
        if use_cost_model && Cost_model.trained model then
          List.fold_left
            (fun acc c ->
              let s = Cost_model.predict model (Cost_model.features op c) in
              match acc with
              | Some (_, s') when s' <= s -> acc
              | _ -> Some (c, s))
            None muts
          |> Option.map fst
          |> Option.value ~default:(List.hd muts)
        else List.hd muts
      end
    in
    let candidates = List.init gen_size propose in
    let offspring =
      match measure_ratio with
      | None ->
          let results =
            Engine.batch engine ~jobs ~rng ?passes ?skip_inputs op candidates
          in
          List.mapi (fun i r -> consume ~trial:(!trial + i) r) results
          |> List.filter_map Fun.id
      | Some ratio ->
          (* Prepare the whole generation (no simulator, no rng), rank
             it with the learned model, and forward only the top
             fraction to the simulator.  Selection is a pure function
             of the trial history and the seed: preparation is
             jobs-independent, ranking is stable, and the one [bits]
             draw plus per-candidate noise streams mirror the
             [Engine.batch] contract. *)
          let prepped =
            Engine.prepare_batch engine ~jobs ?passes ?skip_inputs op candidates
          in
          Obs.span ~name:"search.rank"
            ~attrs:[ ("size", Obs.Int gen_size) ]
          @@ fun () ->
          let fresh =
            List.mapi (fun i (params, r) -> (i, params, r)) prepped
            |> List.filter_map (fun (i, params, r) ->
                   match r with
                   | Ok prep when not (Hashtbl.mem seen params) ->
                       Some (i, params, prep)
                   | Ok _ | Error _ -> None)
          in
          List.iter
            (fun (_, r) ->
              match r with Error e -> tally e | Ok _ -> ())
            prepped;
          let feats =
            List.map
              (fun (_, _, prep) -> Cost_learn.features prep.Engine.pprogram)
              fresh
          in
          let order = Cost_learn.rank tir_model feats in
          (* Snapshot predictions at ranking time — the model refits as
             measurements are observed below, and the recorded
             [predicted_s] must be the values the selection was made
             from (the re-rank invariant tests hold the log to this). *)
          let trained_at_rank = Cost_learn.trained tir_model in
          let pred_arr =
            Array.of_list (List.map (Cost_learn.predict tir_model) feats)
          in
          let n_sel =
            if trained_at_rank then
              Cost_learn.select_count ~ratio (List.length fresh)
            else List.length fresh
          in
          let selected_ranks = take n_sel order in
          let fresh_arr = Array.of_list fresh in
          let selected =
            List.sort compare selected_ranks
            (* measure in proposal order so the noise-stream indices
               below are independent of the ranking. *)
          in
          let base = Rng.bits rng in
          let measured_now = Hashtbl.create 16 in
          List.iter
            (fun k ->
              let i, params, prep = fresh_arr.(k) in
              if Hashtbl.mem seen params then ()
              else begin
              let predicted_s =
                if trained_at_rank then Some pred_arr.(k) else None
              in
              let noise = Rng.stream ~base ~index:i in
              match Engine.simulate engine ~rng:noise prep with
              | Error e -> tally e
              | Ok m ->
                  record ?predicted_s ~trial:(!trial + i) params m;
                  Hashtbl.replace measured_now k (params, m.Engine.latency_s)
              end)
            selected;
          Obs.add_attr "selected" (Obs.Int (List.length selected));
          Obs.incr ~by:(List.length selected) "search.gate.measured";
          let offspring = ref [] in
          List.iteri
            (fun k (i, params, _prep) ->
              match Hashtbl.find_opt measured_now k with
              | Some c -> offspring := c :: !offspring
              | None ->
                  (* a duplicate slot of a candidate measured just above
                     (or skip-recorded before) burns its trial silently *)
                  if
                    (not (Hashtbl.mem skipped_seen params))
                    && not (Hashtbl.mem seen params)
                  then begin
                    let predicted_s = pred_arr.(k) in
                    if Float.is_finite predicted_s then begin
                      record_skipped ~trial:(!trial + i) params ~predicted_s;
                      offspring := (params, predicted_s) :: !offspring
                    end
                  end)
            fresh;
          Obs.incr
            ~by:(List.length fresh - List.length selected)
            "search.gate.skipped";
          List.rev !offspring
    in
    trial := !trial + gen_size;
    population :=
      truncate_population strategy ~early (!population @ offspring);
    Obs.add_attr "size" (Obs.Int gen_size);
    Obs.add_attr "accepted" (Obs.Int (List.length offspring));
    Obs.add_attr "population" (Obs.Int (List.length !population));
    (match !best with
    | Some b -> Obs.add_attr "best_s" (Obs.Float b.Measure.latency_s)
    | None -> ());
    Log.debug (fun m ->
        m "trial %d/%d: population %d, best %.6f ms, %d invalid so far" !trial
          trials
          (List.length !population)
          (match !best with
          | Some b -> b.Measure.latency_s *. 1e3
          | None -> Float.nan)
          !invalid)
  done;
  (* Confirmation pass (gated only): the final population may hold
     predicted-only candidates the model ranks better than anything
     measured — simulate the most promising few before declaring a
     winner, so a model that found the optimum late still cashes it
     in.  Bounded by a small budget so the simulator ledger stays
     ~ratio-proportional. *)
  (match measure_ratio with
  | None -> ()
  | Some ratio ->
      Obs.span ~name:"search.confirm" @@ fun () ->
      let budget = max 3 (Cost_learn.select_count ~ratio population_size) in
      let promising =
        List.filter
          (fun (p, l) -> (not (Hashtbl.mem seen p)) && l < best_so_far ())
          !population
        |> List.stable_sort by_latency |> take budget
      in
      Obs.add_attr "candidates" (Obs.Int (List.length promising));
      List.iter
        (fun (params, predicted_s) ->
          match Engine.prepare engine ?passes ?skip_inputs op params with
          | Error e -> tally e
          | Ok prep -> (
              match Engine.simulate engine ~rng prep with
              | Error e -> tally e
              | Ok m ->
                  record ~predicted_s ~trial:!trial params m;
                  incr trial))
        promising);
  let elapsed_s = Obs.now_s () -. t0 in
  Obs.incr ~by:!trial "search.trials";
  Obs.incr ~by:!measured "search.measured";
  Obs.incr ~by:!skipped "search.skipped";
  Obs.incr ~by:!invalid "search.invalid";
  let cache_hits = (Engine.counters engine).Engine.hits - hits0 in
  let measured_trials = (Engine.counters engine).Engine.costed - costed0 in
  Obs.incr ~by:cache_hits "search.cache_hits";
  Obs.incr ~by:measured_trials "search.measured_trials";
  (match Cost_learn.mean_abs_log_err tir_model with
  | Some e -> Obs.set_gauge "search.model_abs_log_err" e
  | None -> ());
  if elapsed_s > 0. then
    Obs.set_gauge "search.trials_per_s" (float_of_int !trial /. elapsed_s);
  let rejections =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) rejections []
    |> List.sort (fun (ka, na) (kb, nb) ->
           match Int.compare nb na with
           | 0 -> String.compare ka kb
           | c -> c)
  in
  {
    best = !best;
    history = List.rev !history;
    invalid_candidates = !invalid;
    rejections;
    measured = !measured;
    measured_trials;
    skipped = !skipped;
    cache_hits;
    elapsed_s;
  }
