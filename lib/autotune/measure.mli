(** Candidate measurement, kept as a thin compatibility veneer over
    {!Imtp_engine.Engine}: sketch instantiation → lowering → PIM-aware
    passes → verifier → simulated hardware timing, with optional
    deterministic measurement noise modelling run-to-run variation on
    the real machine.

    Calls share one interned engine per machine configuration, so
    repeated builds of the same candidate (grid searches, benchmark
    sweeps) are served from the engine's content-addressed cache.
    Callers that need artifacts, typed errors, batching or cache
    telemetry should use {!Imtp_engine.Engine} directly. *)

type result = {
  params : Sketch.params;
  stats : Imtp_upmem.Stats.t;
  latency_s : float;  (** noisy total latency — the tuning objective. *)
}

val noise_amplitude : float
(** Relative measurement noise (±2 %). *)

val build :
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  Imtp_upmem.Config.t ->
  Imtp_workload.Op.t ->
  Sketch.params ->
  (Imtp_tir.Program.t, string) Result.t
(** Lower and optimize a candidate; [Error] carries the rendered
    {!Imtp_engine.Engine.error} (lowering or verifier rejection). *)

val measure :
  ?rng:Rng.t ->
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  Imtp_upmem.Config.t ->
  Imtp_workload.Op.t ->
  Sketch.params ->
  (result, string) Result.t
(** [rng] adds ±2 % multiplicative noise to the latency; omit it for
    deterministic measurements (benchmarks, tests).  [skip_inputs]
    marks weight tensors resident in MRAM across launches (§5.4), so
    their H2D transfer is excluded. *)
