(** Durable search checkpoints: the on-disk form of
    {!Search.checkpoint}.

    A checkpoint file is a fixed magic line (carrying the file-format
    version) followed by the marshalled snapshot.  Files are written
    atomically — temp file in the destination directory, then a rename
    — so a process killed mid-write (the serving daemon's whole
    threat model) leaves either the previous checkpoint or the new
    one, never a torn file.

    Checkpoints use [Marshal] and are therefore {e host-local}: they
    are not portable across OCaml versions or architectures, and they
    must only be loaded from trusted directories (the daemon's
    [--checkpoint-dir]).  {!load} validates the magic line and rejects
    truncated or corrupt payloads with [Error], and {!Search.run}
    additionally rejects snapshots whose embedded
    {!Search.checkpoint_format} or operator hash do not match. *)

val save : string -> Search.checkpoint -> unit
(** [save path ck] writes [ck] to [path] atomically (temp file +
    rename in [dirname path]).
    @raise Sys_error when the directory is missing or unwritable. *)

val load : string -> (Search.checkpoint, string) result
(** Read a checkpoint written by {!save}.  Missing files, wrong magic,
    truncation and corrupt payloads are all [Error] with a
    path-prefixed message; this function never raises. *)
