(* Re-export: the UPMEM code verifier moved into the engine library,
   where it is a stage of the cached build pipeline; this alias keeps
   [Imtp_autotune.Verifier] working. *)
include Imtp_engine.Verifier
