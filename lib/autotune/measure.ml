module Engine = Imtp_engine.Engine

type result = {
  params : Sketch.params;
  stats : Imtp_upmem.Stats.t;
  latency_s : float;
}

let noise_amplitude = Engine.noise_amplitude

(* One engine per machine configuration, interned so independent
   Measure calls (benchmarks, grid searches) share builds.  Config.t is
   a plain record, so structural hashing is well-defined.  The intern
   table gets its own mutex: Measure may be called from pool worker
   domains, and the engines themselves are already domain-safe. *)
let engines : (Imtp_upmem.Config.t, Engine.t) Hashtbl.t = Hashtbl.create 4
let engines_lock = Mutex.create ()

let engine_for cfg =
  Mutex.protect engines_lock @@ fun () ->
  match Hashtbl.find_opt engines cfg with
  | Some e -> e
  | None ->
      let e = Engine.create cfg in
      Hashtbl.add engines cfg e;
      e

let build ?passes ?skip_inputs cfg op params =
  match Engine.build (engine_for cfg) ?passes ?skip_inputs op params with
  | Ok a -> Ok a.Engine.program
  | Error e -> Error (Engine.error_to_string e)

let measure ?rng ?passes ?skip_inputs cfg op params =
  match Engine.measure (engine_for cfg) ?rng ?passes ?skip_inputs op params with
  | Ok m ->
      Ok { params; stats = m.Engine.artifact.Engine.stats; latency_s = m.Engine.latency_s }
  | Error e -> Error (Engine.error_to_string e)
