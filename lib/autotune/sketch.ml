(* Re-export: sketch generation moved into the engine library so the
   cached build pipeline (params -> sched -> program -> stats) lives in
   one place; this alias keeps [Imtp_autotune.Sketch] working. *)
include Imtp_engine.Sketch
