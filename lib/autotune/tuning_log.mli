(** Persistent tuning records, in the spirit of TVM's tuning logs: the
    search history is written to a plain-text file (one record per
    measured trial) that can be reloaded to recover the best schedule
    without re-running the search. *)

type entry = {
  trial : int;  (** trial index within the run (island-local). *)
  island : int;
      (** island that proposed the trial ([island=] key; 0 — and not
          serialized — for single-island and pre-island logs). *)
  params : Sketch.params;  (** the candidate. *)
  latency_s : float;
      (** measured (noisy) latency, seconds — or the model's predicted
          latency when [measured = false]. *)
  measured : bool;
      (** whether the simulator ran for this trial; [true] for every
          line of a pre-gating log (the [measured=] key defaults on). *)
  predicted_s : float option;
      (** the learned model's prediction at ranking time
          ([predicted_cost=] key), when one was made. *)
}
(** One recorded trial, as serialized to a log line. *)

type header = {
  op_name : string;  (** operation the log was recorded for. *)
  duration_s : float option;
      (** wall-clock duration of the tuning run, when the log was
          written by a version that records it — lets reports derive
          trials/sec for replayed logs. *)
  islands : int;
      (** island count of the run ([islands=] header key; 1 — and not
          serialized — for single-island and pre-island logs). *)
}
(** Parsed log header (the leading [# imtp-tuning-log ...] line). *)

val params_to_string : Sketch.params -> string
(** Compact one-line form, [k=v] pairs. *)

val params_of_string : string -> (Sketch.params, string) Result.t
(** Inverse of {!params_to_string}; unknown keys are errors. *)

val entry_to_string : entry -> string
(** One log line: [trial=N latency=L] followed by the parameters, then
    the gating fields ([measured=0|1] and, when present,
    [predicted_cost=P]) and, for sharded runs, [island=I] — all
    trailing so older readers still parse. *)

val entry_of_string : string -> (entry, string) Result.t
(** Inverse of {!entry_to_string}; malformed lines are [Error]. *)

val save : string -> op_name:string -> Search.outcome -> unit
(** Write a log file: a header naming the operation and recording the
    run's wall-clock duration ({!Search.outcome.elapsed_s}), then one
    line per measured trial. *)

val load : string -> (header * entry list, string) Result.t
(** Returns the parsed header and the entries, preserving order.  I/O
    or parse failures are [Error]; this function never raises.  Logs
    written before [duration_s] existed load with
    [header.duration_s = None]. *)

val best : entry list -> entry option
(** Lowest-latency {e measured} entry — predicted-cost lines in a gated
    log never win ([None] if nothing was measured). *)
