module Stmt = Imtp_tir.Stmt
module Program = Imtp_tir.Program
module Simplify = Imtp_tir.Simplify
module Var = Imtp_tir.Var
module Cost = Imtp_tir.Cost
module Obs = Imtp_obs.Obs

(* ------------------------------------------------------------------ *)
(* Feature extraction: one cheap analytic walk over lowered TIR.       *)
(* ------------------------------------------------------------------ *)

let feature_names =
  [|
    "bias";
    "log_dpus";
    "log_tasklets";
    "loop_depth";
    "log_loops";
    "log_kernel_iters";
    "log_host_iters";
    "log_dma_ops";
    "log_dma_elems";
    "log_wram_bytes";
    "xfer_copy";
    "xfer_push";
    "xfer_broadcast";
    "log_h2d_elems";
    "log_d2h_elems";
    "rfactor_depth";
  |]

let dim = Array.length feature_names

let log2p x = log (1. +. Float.max 0. x) /. log 2.

(* Static walk accumulators.  Extents are resolved with every enclosing
   loop variable at 0; unresolvable extents count as 1 so the walk
   never raises and every feature stays finite. *)
type acc = {
  mutable loops : int;
  mutable depth : int;
  mutable copy : int;
  mutable push : int;
  mutable broadcast : int;
  mutable h2d_elems : float;
  mutable d2h_elems : float;
}

let features (p : Program.t) =
  let acc =
    {
      loops = 0;
      depth = 0;
      copy = 0;
      push = 0;
      broadcast = 0;
      h2d_elems = 0.;
      d2h_elems = 0.;
    }
  in
  let eval env e =
    match Simplify.eval_int env e with
    | Some n -> float_of_int (max 0 n)
    | None -> 1.
  in
  (* [mult]: product of enclosing loop extents; [d]: nesting depth.
     Returns the iteration count of the subtree (for the work terms). *)
  let rec walk mult d env (s : Stmt.t) : float =
    acc.depth <- max acc.depth d;
    match s with
    | Stmt.Nop | Stmt.Barrier | Stmt.Store _ | Stmt.Dma _ | Stmt.Launch _ ->
        mult
    | Stmt.Seq ss -> List.fold_left (fun m s -> Float.max m (walk mult d env s)) mult ss
    | Stmt.Alloc { body; _ } -> walk mult d env body
    | Stmt.For { var; extent; kind = _; body } ->
        let n = eval env extent in
        walk (mult *. n) (d + 1) (Var.Map.add var 0 env) body
    | Stmt.If { cond = _; then_; else_ } ->
        let a = walk mult d env then_ in
        let b =
          match else_ with None -> mult | Some s -> walk mult d env s
        in
        Float.max a b
    | Stmt.Xfer { dir; mode; elems; _ } ->
        (match mode with
        | Stmt.Copy -> acc.copy <- acc.copy + 1
        | Stmt.Push -> acc.push <- acc.push + 1
        | Stmt.Broadcast_x -> acc.broadcast <- acc.broadcast + 1);
        let moved = mult *. eval env elems in
        (match dir with
        | Stmt.To_dpu -> acc.h2d_elems <- acc.h2d_elems +. moved
        | Stmt.From_dpu -> acc.d2h_elems <- acc.d2h_elems +. moved);
        mult
  in
  let count_loops s =
    Stmt.iter (function Stmt.For _ -> acc.loops <- acc.loops + 1 | _ -> ()) s
  in
  let host_iters = walk 1. 0 Var.Map.empty p.Program.host in
  count_loops p.Program.host;
  let kernel_iters =
    List.fold_left
      (fun m (k : Program.kernel) ->
        count_loops k.Program.body;
        Float.max m (walk 1. 0 Var.Map.empty k.Program.body))
      0. p.Program.kernels
  in
  let wram_bytes =
    List.fold_left
      (fun m k -> max m (Imtp_engine.Verifier.kernel_wram_bytes k))
      0 p.Program.kernels
  in
  let contains_sub ~sub s =
    let n = String.length sub and l = String.length s in
    let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let rfactor_depth =
    List.length
      (List.filter
         (fun (b : Imtp_tir.Buffer.t) ->
           contains_sub ~sub:"partial" b.Imtp_tir.Buffer.name)
         (p.Program.host_buffers @ p.Program.mram_buffers))
  in
  let dma = Cost.dma_estimate p in
  let dpus = try Program.dpus_used p with Invalid_argument _ -> 1 in
  let tasklets = try Program.tasklets_used p with Invalid_argument _ -> 1 in
  [|
    1.;
    log2p (float_of_int dpus);
    log2p (float_of_int tasklets);
    float_of_int acc.depth;
    log2p (float_of_int acc.loops);
    log2p kernel_iters;
    log2p host_iters;
    log2p (float_of_int dma.Cost.dma_ops);
    log2p (float_of_int dma.Cost.dma_elems);
    log2p (float_of_int wram_bytes);
    log2p (float_of_int acc.copy);
    log2p (float_of_int acc.push);
    log2p (float_of_int acc.broadcast);
    log2p acc.h2d_elems;
    log2p acc.d2h_elems;
    float_of_int rfactor_depth;
  |]

(* ------------------------------------------------------------------ *)
(* Online ridge regression on log-latency.                             *)
(* ------------------------------------------------------------------ *)

type t = {
  lambda : float;
  min_samples : int;
  xtx : float array array;
  xty : float array;
  mutable n : int;
  mutable weights : float array option;  (* cache, invalidated on observe *)
  mutable err_sum : float;  (* |log pred - log actual| over trained preds *)
  mutable err_n : int;
}

let create ?(lambda = 1e-2) ?(min_samples = 8) () =
  {
    lambda;
    min_samples;
    xtx = Array.make_matrix dim dim 0.;
    xty = Array.make dim 0.;
    n = 0;
    weights = None;
    err_sum = 0.;
    err_n = 0;
  }

let copy t =
  {
    lambda = t.lambda;
    min_samples = t.min_samples;
    xtx = Array.map Array.copy t.xtx;
    xty = Array.copy t.xty;
    n = t.n;
    weights = Option.map Array.copy t.weights;
    err_sum = t.err_sum;
    err_n = t.err_n;
  }

let trained t = t.n >= t.min_samples
let sample_count t = t.n

(* (XtX + λI) w = Xty by Gaussian elimination with partial pivoting. *)
let solve t =
  let a = Array.init dim (fun i -> Array.copy t.xtx.(i)) in
  let b = Array.copy t.xty in
  for i = 0 to dim - 1 do
    a.(i).(i) <- a.(i).(i) +. t.lambda
  done;
  for col = 0 to dim - 1 do
    let pivot = ref col in
    for r = col + 1 to dim - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!pivot).(col) then pivot := r
    done;
    let tmp = a.(col) in
    a.(col) <- a.(!pivot);
    a.(!pivot) <- tmp;
    let tb = b.(col) in
    b.(col) <- b.(!pivot);
    b.(!pivot) <- tb;
    let d = a.(col).(col) in
    if Float.abs d > 1e-12 then
      for r = 0 to dim - 1 do
        if r <> col then begin
          let f = a.(r).(col) /. d in
          for c = 0 to dim - 1 do
            a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
          done;
          b.(r) <- b.(r) -. (f *. b.(col))
        end
      done
  done;
  Array.init dim (fun i ->
      if Float.abs a.(i).(i) > 1e-12 then b.(i) /. a.(i).(i) else 0.)

let weights t =
  match t.weights with
  | Some w -> w
  | None ->
      let w = solve t in
      t.weights <- Some w;
      w

let predict_log t x =
  if not (trained t) then infinity
  else begin
    let w = weights t in
    let acc = ref 0. in
    for i = 0 to dim - 1 do
      acc := !acc +. (w.(i) *. x.(i))
    done;
    !acc
  end

let predict t x = exp (predict_log t x)

let observe t x y =
  let ly = log (Float.max 1e-12 y) in
  (* Ground-truth the running prediction error before the sample joins
     the training set (a pure holdout residual). *)
  if trained t then begin
    let err = Float.abs (predict_log t x -. ly) in
    t.err_sum <- t.err_sum +. err;
    t.err_n <- t.err_n + 1;
    Obs.set_gauge "cost_learn.mean_abs_log_err" (t.err_sum /. float_of_int t.err_n)
  end;
  for i = 0 to dim - 1 do
    for j = 0 to dim - 1 do
      t.xtx.(i).(j) <- t.xtx.(i).(j) +. (x.(i) *. x.(j))
    done;
    t.xty.(i) <- t.xty.(i) +. (x.(i) *. ly)
  done;
  t.n <- t.n + 1;
  t.weights <- None

let mean_abs_log_err t =
  if t.err_n = 0 then None else Some (t.err_sum /. float_of_int t.err_n)

(* ------------------------------------------------------------------ *)
(* The measurement gate.                                               *)
(* ------------------------------------------------------------------ *)

let select_count ~ratio n =
  if n <= 0 then 0
  else max 1 (int_of_float (ceil (ratio *. float_of_int n)))

let rank t xs =
  let scored =
    List.mapi (fun i x -> (i, predict_log t x)) xs
  in
  (* Stable ascending order: ties (and the untrained model's uniform
     +inf) keep proposal order, so gating is a pure function of the
     trial history and the seed. *)
  List.stable_sort
    (fun (_, a) (_, b) -> Float.compare a b)
    scored
  |> List.map fst
