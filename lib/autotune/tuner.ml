module Engine = Imtp_engine.Engine
module Obs = Imtp_obs.Obs

type result = {
  params : Sketch.params;
  program : Imtp_tir.Program.t;
  stats : Imtp_upmem.Stats.t;
  search : Search.outcome;
  cache : Engine.counters;
}

let tune ?strategy ?seed ?jobs ?islands ?migrate_every ?(trials = 128) ?passes
    ?skip_inputs ?measure_ratio ?engine ?resume ?on_checkpoint
    ?checkpoint_every ?stop cfg op =
  Obs.span ~name:"tuner.tune"
    ~attrs:
      [
        ("op", Obs.Str op.Imtp_workload.Op.opname);
        ("trials", Obs.Int trials);
      ]
  @@ fun () ->
  Obs.incr "tuner.tunes";
  let engine = match engine with Some e -> e | None -> Engine.create cfg in
  let search =
    Search.run ?strategy ?seed ?jobs ?islands ?migrate_every ?passes
      ?skip_inputs ?measure_ratio ?resume ?on_checkpoint ?checkpoint_every
      ?stop ~engine cfg op ~trials
  in
  match search.Search.best with
  | None -> Error "autotuning found no valid candidate"
  | Some best -> (
      let params = best.Measure.params in
      (* The winner was built during the search, so this deterministic
         re-measurement is a cache hit: one artifact serves both the
         program and the noise-free stats (no re-lowering). *)
      match Engine.measure engine ?passes ?skip_inputs op params with
      | Error e -> Error (Engine.error_to_string e)
      | Ok m ->
          Engine.log_summary engine;
          Ok
            {
              params;
              program = m.Engine.artifact.Engine.program;
              stats = m.Engine.artifact.Engine.stats;
              search;
              cache = Engine.counters engine;
            })

let describe r =
  Printf.sprintf "%s | total %.3f ms" (Sketch.describe r.params)
    (Imtp_upmem.Stats.total_s r.stats *. 1e3)
