module Op = Imtp_workload.Op

let dim = 11

type t = {
  xtx : float array array;  (* dim x dim *)
  xty : float array;
  mutable n : int;
  mutable weights : float array option;  (* cache, invalidated on observe *)
}

let create () =
  {
    xtx = Array.make_matrix dim dim 0.;
    xty = Array.make dim 0.;
    n = 0;
    weights = None;
  }

let copy t =
  {
    xtx = Array.map Array.copy t.xtx;
    xty = Array.copy t.xty;
    n = t.n;
    weights = Option.map Array.copy t.weights;
  }

let log2 x = log (float_of_int (max 1 x)) /. log 2.

let features op (p : Sketch.params) =
  let work = Op.total_flops op in
  let dpus = p.Sketch.spatial_dpus * p.Sketch.reduction_dpus in
  [|
    1.;
    log2 p.Sketch.spatial_dpus;
    log2 p.Sketch.reduction_dpus;
    log2 p.Sketch.tasklets;
    log2 p.Sketch.cache_elems;
    log2 p.Sketch.rows_per_tasklet;
    (if p.Sketch.unroll_inner then 1. else 0.);
    log2 p.Sketch.host_threads;
    (if Sketch.uses_rfactor p then 1. else 0.);
    log (1. +. (work /. float_of_int (max 1 dpus))) /. log 2.;
    log2 (p.Sketch.tasklets * p.Sketch.cache_elems);
  |]

let observe t x y =
  let y = log (max 1e-9 y) in
  for i = 0 to dim - 1 do
    for j = 0 to dim - 1 do
      t.xtx.(i).(j) <- t.xtx.(i).(j) +. (x.(i) *. x.(j))
    done;
    t.xty.(i) <- t.xty.(i) +. (x.(i) *. y)
  done;
  t.n <- t.n + 1;
  t.weights <- None

let solve t =
  (* (XtX + λI) w = Xty by Gaussian elimination with partial pivoting. *)
  let lambda = 1e-2 in
  let a = Array.init dim (fun i -> Array.copy t.xtx.(i)) in
  let b = Array.copy t.xty in
  for i = 0 to dim - 1 do
    a.(i).(i) <- a.(i).(i) +. lambda
  done;
  for col = 0 to dim - 1 do
    let pivot = ref col in
    for r = col + 1 to dim - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!pivot).(col) then pivot := r
    done;
    let tmp = a.(col) in
    a.(col) <- a.(!pivot);
    a.(!pivot) <- tmp;
    let tb = b.(col) in
    b.(col) <- b.(!pivot);
    b.(!pivot) <- tb;
    let d = a.(col).(col) in
    if Float.abs d > 1e-12 then
      for r = 0 to dim - 1 do
        if r <> col then begin
          let f = a.(r).(col) /. d in
          for c = 0 to dim - 1 do
            a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
          done;
          b.(r) <- b.(r) -. (f *. b.(col))
        end
      done
  done;
  Array.init dim (fun i ->
      if Float.abs a.(i).(i) > 1e-12 then b.(i) /. a.(i).(i) else 0.)

let trained t = t.n >= 8
let sample_count t = t.n

let predict t x =
  if not (trained t) then 0.
  else begin
    let w =
      match t.weights with
      | Some w -> w
      | None ->
          let w = solve t in
          t.weights <- Some w;
          w
    in
    let acc = ref 0. in
    for i = 0 to dim - 1 do
      acc := !acc +. (w.(i) *. x.(i))
    done;
    !acc
  end
