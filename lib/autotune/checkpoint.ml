(* Durable on-disk form of a search checkpoint: a fixed magic line
   (which carries the file-format version) followed by the marshalled
   Search.checkpoint.  Writes go through a temp file in the target
   directory plus a rename, so a reader — or a daemon killed mid-write
   — never sees a half-written checkpoint: the previous one survives
   until the rename commits. *)

(* v2: island-aware checkpoints.  The magic must move in lockstep with
   Search.checkpoint_format — Marshal is not layout-tagged, so reading
   a v1 payload as the v2 type would be memory-unsafe, and the magic
   check is what turns that into a clean error. *)
let magic = "imtp-checkpoint-v2\n"

let save path (ck : Search.checkpoint) =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".ckpt" ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     Marshal.to_channel oc ck [];
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load path : (Search.checkpoint, string) result =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            let got = really_input_string ic (String.length magic) in
            if got <> magic then
              Error
                (Printf.sprintf
                   "%s: not an imtp checkpoint (expected magic %S)" path
                   (String.trim magic))
            else begin
              let ck : Search.checkpoint = Marshal.from_channel ic in
              (* Forces the format/op sanity checks that Search.run
                 would perform to fail here, with a path in the
                 message, rather than deep inside a resumed search. *)
              ignore (Search.checkpoint_trial ck);
              Ok ck
            end
          with
          | End_of_file -> Error (path ^ ": truncated checkpoint")
          | Failure m ->
              Error (Printf.sprintf "%s: corrupt checkpoint (%s)" path m)
          | Sys_error m -> Error m)
