(* Re-export: the seeded random source moved into the engine library
   (the compile->verify->cost layer) with the sketch generator; this
   alias keeps the historical [Imtp_autotune.Rng] path working. *)
include Imtp_engine.Rng
