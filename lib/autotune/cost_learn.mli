(** Learned cost model over lowered TIR, gating which candidates reach
    the simulator (§4's "evolutionary search guided by a cost model",
    in the style of Adams et al. 2019: cheap static features plus an
    online-trained regressor ranking populations before measurement).

    Unlike {!Cost_model}, whose features are the sketch parameters
    themselves, this model walks the {e lowered, pass-optimized} TIR of
    an {!Imtp_engine.Engine.prepared} candidate — loop extents and
    nesting depth, DPU/tasklet grid, analytic DMA traffic
    ({!Imtp_tir.Cost.dma_estimate}), WRAM footprint, transfer-mode mix,
    rfactor structure — so it sees exactly the program the simulator
    would time, including everything the PIM-aware passes changed.

    Determinism contract: feature extraction is a pure function of the
    program (bit-identical for cache-hit and fresh-built candidates),
    training is a pure fold over the measured-trial history, and
    {!rank} breaks ties by proposal order — so a model-gated search
    remains a pure function of (trial history, seed), preserving
    [batch ~jobs:n] equivalence and replayability. *)

val dim : int
(** Fixed feature-vector width. *)

val feature_names : string array
(** Stable names, index-aligned with {!features} ([Array.length] =
    {!dim}). *)

val features : Imtp_tir.Program.t -> float array
(** Extract the feature vector from a lowered program in one analytic
    walk (evaluation cost independent of tensor sizes).  Every
    component is finite for any program: unresolvable loop extents
    count as 1 and all magnitudes pass through [log2 (1 + x)]. *)

type t
(** Online ridge regression predicting log-latency, refit lazily from
    the accumulated normal equations — an [observe] invalidates the
    cached weights and the next [predict] refits, so refitting once per
    search generation costs one small solve. *)

val create : ?lambda:float -> ?min_samples:int -> unit -> t
(** [lambda] (default 1e-2) is the ridge regularizer; [min_samples]
    (default 8) is how many measured trials must be observed before the
    model claims to be {!trained}. *)

val copy : t -> t
(** A deep snapshot: later {!observe} calls on either model leave the
    other untouched.  Search checkpoints capture the model this way. *)

val observe : t -> float array -> float -> unit
(** [observe m x latency_s] adds a training sample.  When the model is
    already trained, the sample's holdout residual (absolute
    log-latency error under the pre-update weights) feeds the running
    error mean ({!mean_abs_log_err}) and the
    [cost_learn.mean_abs_log_err] observability gauge. *)

val trained : t -> bool
val sample_count : t -> int

val predict_log : t -> float array -> float
(** Predicted log-latency; [infinity] until trained. *)

val predict : t -> float array -> float
(** Predicted latency in seconds ([exp] of {!predict_log}). *)

val mean_abs_log_err : t -> float option
(** Running mean absolute log-latency prediction error over all
    holdout residuals seen so far ([None] before the first one). *)

val select_count : ratio:float -> int -> int
(** How many of [n] ranked candidates a gate at [ratio] forwards to the
    simulator: [max 1 (ceil (ratio * n))], 0 only when [n = 0]. *)

val rank : t -> float array list -> int list
(** Indices of the given feature vectors in ascending predicted-cost
    order; stable under ties (and under an untrained model, which
    predicts uniformly), so ranking is deterministic given the trial
    history. *)
