type entry = {
  trial : int;
  island : int;
  params : Sketch.params;
  latency_s : float;
  measured : bool;
  predicted_s : float option;
}
type header = { op_name : string; duration_s : float option; islands : int }

let params_to_string (p : Sketch.params) =
  Printf.sprintf "sd=%d rd=%d t=%d c=%d rows=%d unroll=%d ht=%d"
    p.Sketch.spatial_dpus p.Sketch.reduction_dpus p.Sketch.tasklets
    p.Sketch.cache_elems p.Sketch.rows_per_tasklet
    (if p.Sketch.unroll_inner then 1 else 0)
    p.Sketch.host_threads

let params_of_string s =
  let kvs =
    List.filter_map
      (fun tok ->
        match String.split_on_char '=' tok with
        | [ k; v ] -> Some (k, v)
        | _ -> None)
      (String.split_on_char ' ' (String.trim s))
  in
  let int_of k =
    match List.assoc_opt k kvs with
    | None -> Error (Printf.sprintf "missing key %s" k)
    | Some v -> (
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "bad value for %s: %s" k v))
  in
  let ( let* ) = Result.bind in
  let* sd = int_of "sd" in
  let* rd = int_of "rd" in
  let* t = int_of "t" in
  let* c = int_of "c" in
  let* rows = int_of "rows" in
  let* unroll = int_of "unroll" in
  let* ht = int_of "ht" in
  Ok
    {
      Sketch.spatial_dpus = sd;
      reduction_dpus = rd;
      tasklets = t;
      cache_elems = c;
      rows_per_tasklet = rows;
      unroll_inner = unroll <> 0;
      host_threads = ht;
    }

(* [measured]/[predicted_cost]/[island] ride at the end of the line so
   parsers that only know the required keys (and [params_of_string],
   which ignores unknown keys) still read gated and island logs.
   [island] is only emitted when non-zero, so single-island logs stay
   byte-identical to their pre-island form — the golden-trace and
   replay fixtures depend on that. *)
let entry_to_string e =
  Printf.sprintf "trial=%d latency=%.9e %s measured=%d%s%s" e.trial
    e.latency_s
    (params_to_string e.params)
    (if e.measured then 1 else 0)
    (match e.predicted_s with
    | Some p -> Printf.sprintf " predicted_cost=%.9e" p
    | None -> "")
    (if e.island > 0 then Printf.sprintf " island=%d" e.island else "")

let entry_of_string line =
  let ( let* ) = Result.bind in
  match String.split_on_char ' ' (String.trim line) with
  | trial_tok :: lat_tok :: rest ->
      let get prefix tok =
        match String.split_on_char '=' tok with
        | [ k; v ] when String.equal k prefix -> Ok v
        | _ -> Error (Printf.sprintf "expected %s=..., got %s" prefix tok)
      in
      let* trial_s = get "trial" trial_tok in
      let* lat_s = get "latency" lat_tok in
      let* trial =
        Option.to_result ~none:"bad trial" (int_of_string_opt trial_s)
      in
      let* latency_s =
        Option.to_result ~none:"bad latency" (float_of_string_opt lat_s)
      in
      let* params = params_of_string (String.concat " " rest) in
      (* Pre-gating logs have neither key: default to a measured trial. *)
      let kvs =
        List.filter_map
          (fun tok ->
            match String.split_on_char '=' tok with
            | [ k; v ] -> Some (k, v)
            | _ -> None)
          rest
      in
      let measured =
        match List.assoc_opt "measured" kvs with
        | Some "0" -> false
        | Some _ | None -> true
      in
      let predicted_s =
        Option.bind (List.assoc_opt "predicted_cost" kvs) float_of_string_opt
      in
      (* Pre-island logs carry no island key: everything came from the
         one population. *)
      let island =
        match Option.bind (List.assoc_opt "island" kvs) int_of_string_opt with
        | Some i when i >= 0 -> i
        | Some _ | None -> 0
      in
      Ok { trial; island; params; latency_s; measured; predicted_s }
  | _ -> Error "malformed log line"

let save path ~op_name (o : Search.outcome) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (* The islands key is only written for sharded runs, keeping
         single-island headers byte-identical to pre-island ones. *)
      Printf.fprintf oc "# imtp-tuning-log op=%s duration_s=%.6f%s\n" op_name
        o.Search.elapsed_s
        (if o.Search.islands > 1 then
           Printf.sprintf " islands=%d" o.Search.islands
         else "");
      List.iter
        (fun (r : Search.record) ->
          output_string oc
            (entry_to_string
               {
                 trial = r.Search.trial;
                 island = r.Search.island;
                 params = r.Search.params;
                 latency_s = r.Search.latency_s;
                 measured = r.Search.measured;
                 predicted_s = r.Search.predicted_s;
               });
          output_char oc '\n')
        o.Search.history)

let load path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let header_line = try input_line ic with End_of_file -> "" in
          (* Header tokens after the "# imtp-tuning-log" tag are k=v
             pairs; [duration_s] is optional so logs written before it
             existed still load. *)
          let kvs =
            List.filter_map
              (fun tok ->
                match String.split_on_char '=' tok with
                | [ k; v ] -> Some (k, v)
                | _ -> None)
              (String.split_on_char ' ' (String.trim header_line))
          in
          let op_name =
            Option.value ~default:"" (List.assoc_opt "op" kvs)
          in
          let duration_s =
            Option.bind (List.assoc_opt "duration_s" kvs) float_of_string_opt
          in
          let islands =
            match
              Option.bind (List.assoc_opt "islands" kvs) int_of_string_opt
            with
            | Some k when k >= 1 -> k
            | Some _ | None -> 1
          in
          if op_name = "" then Error "missing or malformed header"
          else begin
            let entries = ref [] and err = ref None in
            (try
               while true do
                 let line = input_line ic in
                 if String.trim line <> "" then
                   match entry_of_string line with
                   | Ok e -> entries := e :: !entries
                   | Error m -> if !err = None then err := Some m
               done
             with End_of_file -> ());
            match !err with
            | Some m -> Error m
            | None -> Ok ({ op_name; duration_s; islands }, List.rev !entries)
          end)

(* Only simulator-backed entries can win: a gated log's predicted-cost
   lines are the model's opinion, not a measurement. *)
let best entries =
  List.fold_left
    (fun acc e ->
      if not e.measured then acc
      else
        match acc with
        | Some b when b.latency_s <= e.latency_s -> acc
        | _ -> Some e)
    None entries
