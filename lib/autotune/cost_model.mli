(** Online cost model guiding the evolutionary search (§4: "an
    evolutionary search guided by a cost model").

    A ridge regression over schedule-parameter features predicting
    log-latency, refit incrementally from every hardware (simulator)
    measurement — a deliberately small stand-in for TVM's gradient
    boosted trees that preserves the search dynamics: the model ranks
    unmeasured mutations so only promising candidates reach the
    (expensive) measurement step. *)

type t
(** A mutable model, refit on every {!observe}. *)

val create : unit -> t
(** An untrained model ({!predict} returns 0 until trained). *)

val copy : t -> t
(** A deep snapshot: later {!observe} calls on either model leave the
    other untouched.  Search checkpoints capture the model this way. *)

val features : Imtp_workload.Op.t -> Sketch.params -> float array
(** The feature vector for one candidate: log-scaled schedule
    parameters and workload shape terms. *)

val observe : t -> float array -> float -> unit
(** [observe m x latency_s] adds a training sample. *)

val predict : t -> float array -> float
(** Predicted log-latency; 0 until at least 8 samples are seen. *)

val trained : t -> bool
(** Whether enough samples were seen for {!predict} to be informative. *)

val sample_count : t -> int
(** Number of training samples observed so far. *)
