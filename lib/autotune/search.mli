(** Balanced evolutionary search (§5.2.3), optionally measurement-gated
    by a learned cost model over lowered TIR ({!Cost_learn}).

    The joint host+kernel space contains two design-space families —
    with and without [rfactor] — whose early measurements differ
    systematically (inter-DPU parallelism dominates), biasing a plain
    evolutionary search toward the rfactor family and prematurely
    dropping the other.  Two countermeasures, individually toggleable
    for the Fig. 13 ablation:

    - {b balanced sampling}: during the first 40 % of trials the
      parent pool takes equal proportions of top candidates from both
      families;
    - {b adaptive ε-greedy}: the exploration rate starts at 0.5 and
      decays linearly to 0.05 over the first 40 % of trials (a plain
      search uses 0.05 throughout).

    Candidates are built and costed through {!Imtp_engine.Engine}: each
    generation is measured as one engine batch, and duplicate proposals
    (common under mutation) are served from the engine's
    content-addressed cache instead of being re-lowered.

    {2 Measurement gating}

    With [measure_ratio = Some r], each proposed generation is only
    {e prepared} (built up to the optimized program, no simulator),
    ranked by the online {!Cost_learn} model, and only the top
    [ceil (r * n)] candidates are forwarded to the simulator; the rest
    join the population and the history carrying their predicted cost.
    The model refits from the accumulated measured trials once per
    generation.  Gating is a pure function of the trial history and the
    seed — preparation draws no randomness, ranking is stable with ties
    broken by proposal order, and measured-noise streams are indexed by
    proposal slot exactly as in {!Imtp_engine.Engine.batch} — so
    [~jobs:n] equivalence and log replay are preserved.  With
    [measure_ratio = None] (the default) the search takes the exact
    ungated code path and is bit-identical to its pre-gating
    behaviour. *)

type strategy = { balanced_sampling : bool; adaptive_epsilon : bool }

val tvm_default : strategy
(** Neither technique (baseline evolutionary search). *)

val imtp_default : strategy
(** Both techniques. *)

type record = {
  trial : int;  (** 0-based trial index the candidate was proposed at. *)
  params : Sketch.params;  (** the candidate. *)
  latency_s : float;
      (** its (noisy) measured latency — or, for a gated-out candidate
          ([measured = false]), the model's predicted latency. *)
  best_so_far : float;  (** running best {e measured} latency, inclusive. *)
  measured : bool;
      (** whether the simulator actually ran for this record (always
          [true] in an ungated search). *)
  predicted_s : float option;
      (** the model's predicted latency at ranking time, when a trained
          model scored this candidate (for measured trials this is the
          prediction {e before} measurement — the gate's audit trail). *)
}
(** One trial, as recorded in the search history (and in
    {!Tuning_log} files). *)

type outcome = {
  best : Measure.result option;  (** best measured candidate, if any. *)
  history : record list;  (** chronological, one per recorded trial. *)
  invalid_candidates : int;  (** candidates rejected by the verifier. *)
  rejections : (string * int) list;
      (** rejection tally grouped by verifier constraint name
          ([dpus]/[tasklets]/[mram]/[wram]/[iram]/[dma]) or failing
          engine stage ([sketch]/[lower]/[cost]), sorted by count
          descending; sums to [invalid_candidates]. *)
  measured : int;  (** distinct candidates actually measured. *)
  measured_trials : int;
      (** simulator executions this run actually paid for (the engine's
          [costed] delta): cache hits, duplicates and gated-out
          candidates all cost zero.  The measurement gate's acceptance
          metric — a gated run must reach the same best with far fewer
          of these. *)
  skipped : int;
      (** distinct candidates the gate recorded with a predicted cost
          instead of measuring (0 in an ungated search). *)
  cache_hits : int;
      (** engine-cache hits during the run — trials whose build was
          deduplicated instead of recompiled (duplicate proposals, and
          warm entries when a shared engine is passed in). *)
  elapsed_s : float;
      (** wall-clock duration of the whole run — recorded in tuning-log
          headers so replayed logs can report trials/sec. *)
}
(** Everything a search run produces.  The run also emits telemetry
    through {!Imtp_obs.Obs}: a [search.run] span enclosing [search.init]
    and per-generation [search.generation] spans (with population /
    acceptance attributes), a per-generation [search.rank] span under
    gating (with size/selected attributes), the [search.*] counters
    (including [search.measured_trials] and [search.skipped]), and the
    [search.best_latency_s] / [search.model_abs_log_err] /
    [search.trials_per_s] gauges — see DESIGN.md's "Observability"
    section for the full taxonomy. *)

val run :
  ?strategy:strategy ->
  ?seed:int ->
  ?jobs:int ->
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  ?use_cost_model:bool ->
  ?measure_ratio:float ->
  ?engine:Imtp_engine.Engine.t ->
  Imtp_upmem.Config.t ->
  Imtp_workload.Op.t ->
  trials:int ->
  outcome
(** Run [trials] measurements.  Deterministic for a given seed at any
    [jobs] value: generation batches go through {!Imtp_engine.Engine.batch}
    (or {!Imtp_engine.Engine.prepare_batch} under gating), whose results
    are independent of how many domains build them.
    [jobs] (default {!Imtp_engine.Pool.default_jobs}) bounds the worker
    domains per generation batch.  [use_cost_model] (default true) lets
    the parameter-space {!Cost_model} rank candidate mutations before
    proposal; disabling it falls back to unguided mutation (an ablation
    of Fig. 5's "evolutionary search guided by a cost model").
    [measure_ratio] (default [None]: measure everything, pre-gating
    behaviour preserved bit-for-bit) turns on TIR-level measurement
    gating at the given simulator fraction; must be in (0, 1].
    [engine] (default: a fresh engine for [cfg]) carries the build
    cache; pass a shared engine to reuse builds across runs — the
    search still measures (and records) each distinct candidate once
    per run.

    @raise Invalid_argument if [measure_ratio] is outside (0, 1]. *)
