(** Balanced evolutionary search (§5.2.3), optionally measurement-gated
    by a learned cost model over lowered TIR ({!Cost_learn}), sharded
    island-model style across the domain pool.

    The joint host+kernel space contains two design-space families —
    with and without [rfactor] — whose early measurements differ
    systematically (inter-DPU parallelism dominates), biasing a plain
    evolutionary search toward the rfactor family and prematurely
    dropping the other.  Two countermeasures, individually toggleable
    for the Fig. 13 ablation:

    - {b balanced sampling}: during the first 40 % of trials the
      parent pool takes equal proportions of top candidates from both
      families;
    - {b adaptive ε-greedy}: the exploration rate starts at 0.5 and
      decays linearly to 0.05 over the first 40 % of trials (a plain
      search uses 0.05 throughout).

    Candidates are built and costed through {!Imtp_engine.Engine}: each
    generation is measured as one engine batch, and duplicate proposals
    (common under mutation) are served from the engine's
    content-addressed cache instead of being re-lowered.

    {2 Islands}

    With [islands = k > 1] the trial budget splits across [k]
    sub-populations ("islands"), each evolving independently on its own
    thread with its own deterministic rng substream
    ([Rng.stream ~base:seed ~index:island]).  Islands step generations
    {e asynchronously} — there is no global per-generation barrier —
    and rendezvous only every [migrate_every] generations at a
    {e migration boundary}, where each island:

    - publishes a snapshot of its state,
    - merges its epoch's model observations into the one shared
      {!Cost_learn} model (folded in deterministic (boundary, island)
      order by whichever island reaches the boundary first) and adopts
      a copy of the merged model,
    - imports the top {e elites} of its ring predecessor
      (island [(i+k-1) mod k]) into its population.

    Determinism contract: for a fixed [islands] value the outcome is a
    pure function of the seed — [~islands:k ~jobs:n] is bit-identical
    to [~islands:k ~jobs:1], because every island's evolution depends
    only on its own substream and on snapshots exchanged at fixed
    boundaries.  [~islands:1] takes the historical single-population
    code path and reproduces pre-island traces byte-for-byte.  Note
    that {e different} island counts are different searches: since
    [islands] defaults to [jobs], pin [~islands] explicitly wherever
    cross-machine reproducibility matters.

    {2 Measurement gating}

    With [measure_ratio = Some r], each proposed generation is only
    {e prepared} (built up to the optimized program, no simulator),
    ranked by the online {!Cost_learn} model, and only the top
    [ceil (r * n)] candidates are forwarded to the simulator; the rest
    join the population and the history carrying their predicted cost.
    The model refits from the accumulated measured trials once per
    generation.  Gating is a pure function of the trial history and the
    seed — preparation draws no randomness, ranking is stable with ties
    broken by proposal order, and measured-noise streams are indexed by
    proposal slot exactly as in {!Imtp_engine.Engine.batch} — so
    [~jobs:n] equivalence and log replay are preserved.  With
    [measure_ratio = None] (the default) the search takes the exact
    ungated code path and is bit-identical to its pre-gating
    behaviour. *)

type strategy = { balanced_sampling : bool; adaptive_epsilon : bool }

val tvm_default : strategy
(** Neither technique (baseline evolutionary search). *)

val imtp_default : strategy
(** Both techniques. *)

type record = {
  trial : int;
      (** 0-based trial index the candidate was proposed at, local to
          its island. *)
  island : int;  (** which island proposed it (0 when [islands = 1]). *)
  params : Sketch.params;  (** the candidate. *)
  latency_s : float;
      (** its (noisy) measured latency — or, for a gated-out candidate
          ([measured = false]), the model's predicted latency. *)
  best_so_far : float;
      (** running best {e measured} latency on the proposing island,
          inclusive. *)
  measured : bool;
      (** whether the simulator actually ran for this record (always
          [true] in an ungated search). *)
  predicted_s : float option;
      (** the model's predicted latency at ranking time, when a trained
          model scored this candidate (for measured trials this is the
          prediction {e before} measurement — the gate's audit trail). *)
}
(** One trial, as recorded in the search history (and in
    {!Tuning_log} files). *)

type island_stats = {
  island : int;
  island_trials : int;  (** trials this island consumed. *)
  island_generations : int;
  island_measured : int;
  island_skipped : int;
  island_invalid : int;
  island_migrations : int;  (** elites imported from the ring. *)
  island_best_s : float option;  (** island-local best measured latency. *)
}
(** Per-island tallies, reported in {!outcome.per_island}. *)

type outcome = {
  best : Measure.result option;  (** best measured candidate, if any. *)
  history : record list;
      (** chronological within each island, islands concatenated in
          index order (with [islands = 1]: plain chronological). *)
  invalid_candidates : int;  (** candidates rejected by the verifier. *)
  rejections : (string * int) list;
      (** rejection tally grouped by verifier constraint name
          ([dpus]/[tasklets]/[mram]/[wram]/[iram]/[dma]) or failing
          engine stage ([sketch]/[lower]/[cost]), sorted by count
          descending; sums to [invalid_candidates]. *)
  measured : int;  (** distinct candidates actually measured. *)
  measured_trials : int;
      (** simulator executions this run actually paid for (the engine's
          [costed] delta): cache hits, duplicates and gated-out
          candidates all cost zero.  The measurement gate's acceptance
          metric — a gated run must reach the same best with far fewer
          of these. *)
  skipped : int;
      (** distinct candidates the gate recorded with a predicted cost
          instead of measuring (0 in an ungated search). *)
  cache_hits : int;
      (** engine-cache hits during the run — trials whose build was
          deduplicated instead of recompiled (duplicate proposals, and
          warm entries when a shared engine is passed in). *)
  elapsed_s : float;
      (** wall-clock duration of the whole run — recorded in tuning-log
          headers so replayed logs can report trials/sec.  For a
          resumed run this includes the killed run's recorded time. *)
  interrupted : bool;
      (** the run was stopped by its [stop] callback before exhausting
          the trial budget; a final checkpoint was emitted, and the
          confirmation pass (if gated) was deferred to the resumption. *)
  resumed_from : int option;
      (** the trial count of the checkpoint this run resumed from
          ([None] for a from-scratch run). *)
  islands : int;  (** the effective island count the run used. *)
  per_island : island_stats list;  (** one entry per island, in order. *)
}
(** Everything a search run produces.  The run also emits telemetry
    through {!Imtp_obs.Obs}: a [search.run] span enclosing [search.init]
    and per-generation [search.generation] spans (with population /
    acceptance / island attributes), per-island [search.island] spans
    when [islands > 1], a per-generation [search.rank] span under
    gating (with size/selected attributes), the [search.*] counters
    (including [search.measured_trials], [search.skipped] and
    [search.migrations]), and the [search.best_latency_s] /
    [search.model_abs_log_err] / [search.trials_per_s] gauges — see
    DESIGN.md's "Observability" section for the full taxonomy. *)

(** {2 Checkpoints}

    A checkpoint is a complete snapshot of the search's state at a
    boundary — a generation boundary when [islands = 1], a migration
    boundary when [islands > 1]: every island's rng draw position, cost
    model, population, deduplication tables, history and tallies, plus
    the shared learned model as merged through that boundary.  Resuming
    from it replays the killed run's remaining trials {e bit-identically}
    — same history records (and therefore the same tuning-log lines),
    same best, same measured/skipped/invalid counts — because
    everything the search does downstream is a pure function of that
    state.  Only the engine-cache ledger differs: a resumed run starts
    against whatever engine it is given (typically a cold one), so
    [cache_hits] counts real hits in each process while
    [measured_trials] still accumulates across the kill (simulator
    executions actually paid for, before plus after).

    Checkpoints are plain marshalable data; {!Checkpoint} gives them a
    durable on-disk form. *)

type checkpoint
(** Serialized search state at a boundary. *)

val checkpoint_format : int
(** Layout version embedded in every checkpoint; {!run} rejects
    checkpoints written by an incompatible build. *)

val checkpoint_trial : checkpoint -> int
(** How many trials the snapshot had consumed (summed over islands). *)

val checkpoint_trials : checkpoint -> int
(** The run's total trial budget. *)

val checkpoint_op_name : checkpoint -> string
(** Name of the operator the search was tuning. *)

val checkpoint_seed : checkpoint -> int
(** The run's seed. *)

val checkpoint_measure_ratio : checkpoint -> float option
(** The run's measurement-gate ratio, if gated. *)

val checkpoint_islands : checkpoint -> int
(** The run's effective island count. *)

val run :
  ?strategy:strategy ->
  ?seed:int ->
  ?jobs:int ->
  ?islands:int ->
  ?migrate_every:int ->
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  ?use_cost_model:bool ->
  ?measure_ratio:float ->
  ?engine:Imtp_engine.Engine.t ->
  ?resume:checkpoint ->
  ?on_checkpoint:(checkpoint -> unit) ->
  ?checkpoint_every:int ->
  ?stop:(unit -> bool) ->
  Imtp_upmem.Config.t ->
  Imtp_workload.Op.t ->
  trials:int ->
  outcome
(** Run [trials] measurements.  Deterministic for a given seed and
    island count at any [jobs] value: generation batches go through
    {!Imtp_engine.Engine.batch} (or {!Imtp_engine.Engine.prepare_batch}
    plus pooled {!Imtp_engine.Engine.simulate} under gating), whose
    results are independent of how many domains build them, and islands
    exchange state only at fixed migration boundaries.

    [jobs] (default {!Imtp_engine.Pool.default_jobs}) bounds the worker
    domains per engine batch.  [islands] (default: [IMTP_ISLANDS] from
    the environment, else [jobs]; clamped to [1, 64] and to at most
    [trials / 16] so every island can seed an initial population)
    shards the search island-model style; [migrate_every] (default 2,
    generations) sets the migration cadence.  [use_cost_model] (default
    true) lets the parameter-space {!Cost_model} rank candidate
    mutations before proposal; disabling it falls back to unguided
    mutation (an ablation of Fig. 5's "evolutionary search guided by a
    cost model").  [measure_ratio] (default [None]: measure everything,
    pre-gating behaviour preserved bit-for-bit) turns on TIR-level
    measurement gating at the given simulator fraction; must be in
    (0, 1].  [engine] (default: a fresh engine for [cfg]) carries the
    build cache; pass a shared engine to reuse builds across runs — the
    search still measures (and records) each distinct candidate once
    per run.  The engine must be domain-safe when [islands > 1] (the
    default engine is).

    [on_checkpoint] (with [checkpoint_every], default 1, in generations
    for [islands = 1] and migration boundaries otherwise) receives a
    deep snapshot after the initial population and at boundaries; the
    callback runs holding the islands' rendezvous lock, so keep it
    cheap (write the file, return).  [resume] restarts from such a
    snapshot: the initial-sampling phase is skipped and the
    checkpoint's own seed, strategy, gating, island count, migration
    cadence and trial budget override the caller's (anything else could
    not be bit-identical) — only [op], which must hash to the
    checkpoint's recorded operator, and the execution knobs ([jobs],
    [engine], [passes], checkpointing) are taken from the call.  [stop]
    is polled at boundaries; when it returns [true] the run emits a
    final checkpoint and returns early with
    [outcome.interrupted = true].

    @raise Invalid_argument if [measure_ratio] is outside (0, 1], if
    [checkpoint_every < 1] or [migrate_every < 1], or if [resume]
    belongs to a different operator or checkpoint format. *)
