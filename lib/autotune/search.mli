(** Balanced evolutionary search (§5.2.3).

    The joint host+kernel space contains two design-space families —
    with and without [rfactor] — whose early measurements differ
    systematically (inter-DPU parallelism dominates), biasing a plain
    evolutionary search toward the rfactor family and prematurely
    dropping the other.  Two countermeasures, individually toggleable
    for the Fig. 13 ablation:

    - {b balanced sampling}: during the first 40 % of trials the
      parent pool takes equal proportions of top candidates from both
      families;
    - {b adaptive ε-greedy}: the exploration rate starts at 0.5 and
      decays linearly to 0.05 over the first 40 % of trials (a plain
      search uses 0.05 throughout).

    Candidates are built and costed through {!Imtp_engine.Engine}: each
    generation is measured as one engine batch, and duplicate proposals
    (common under mutation) are served from the engine's
    content-addressed cache instead of being re-lowered. *)

type strategy = { balanced_sampling : bool; adaptive_epsilon : bool }

val tvm_default : strategy
(** Neither technique (baseline evolutionary search). *)

val imtp_default : strategy
(** Both techniques. *)

type record = {
  trial : int;  (** 0-based trial index the measurement was taken at. *)
  params : Sketch.params;  (** the measured candidate. *)
  latency_s : float;  (** its (noisy) measured latency. *)
  best_so_far : float;  (** running best at this trial, inclusive. *)
}
(** One measured trial, as recorded in the search history (and in
    {!Tuning_log} files). *)

type outcome = {
  best : Measure.result option;  (** best measured candidate, if any. *)
  history : record list;  (** chronological, one per measured trial. *)
  invalid_candidates : int;  (** candidates rejected by the verifier. *)
  measured : int;  (** distinct candidates actually measured. *)
  cache_hits : int;
      (** engine-cache hits during the run — trials whose build was
          deduplicated instead of recompiled (duplicate proposals, and
          warm entries when a shared engine is passed in). *)
  elapsed_s : float;
      (** wall-clock duration of the whole run — recorded in tuning-log
          headers so replayed logs can report trials/sec. *)
}
(** Everything a search run produces.  The run also emits telemetry
    through {!Imtp_obs.Obs}: a [search.run] span enclosing [search.init]
    and per-generation [search.generation] spans (with population /
    acceptance attributes), the [search.*] counters, and the
    [search.best_latency_s] / [search.trials_per_s] gauges — see
    DESIGN.md's "Observability" section for the full taxonomy. *)

val run :
  ?strategy:strategy ->
  ?seed:int ->
  ?jobs:int ->
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  ?use_cost_model:bool ->
  ?engine:Imtp_engine.Engine.t ->
  Imtp_upmem.Config.t ->
  Imtp_workload.Op.t ->
  trials:int ->
  outcome
(** Run [trials] measurements.  Deterministic for a given seed at any
    [jobs] value: generation batches go through {!Imtp_engine.Engine.batch},
    whose results are independent of how many domains measure them.
    [jobs] (default {!Imtp_engine.Pool.default_jobs}) bounds the worker
    domains per generation batch.  [use_cost_model] (default true) lets
    the learned cost model rank candidate mutations before measurement;
    disabling it falls back to unguided mutation (an ablation of
    Fig. 5's "evolutionary search guided by a cost model").  [engine]
    (default: a fresh engine for [cfg]) carries the build cache; pass a
    shared engine to reuse builds across runs — the search still
    measures (and records) each distinct candidate once per run. *)
