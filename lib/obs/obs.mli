(** Lightweight observability: tracing spans, a metrics registry, and a
    reporting surface.

    The compilation pipeline ([params → sched → lowered → optimized →
    stats]), the evolutionary search, the tuner, the differential
    fuzzer and the benchmark harness all emit telemetry through this
    module, so "where does the time go?" has one answer for every
    consumer:

    - {b spans} — hierarchical wall-clock timings with attributes,
      kept in a bounded in-memory ring buffer and optionally streamed
      to a JSONL trace file ({!set_sink});
    - {b metrics} — named counters, gauges and fixed log-scale-bucket
      histograms, interned in a process-global registry;
    - {b reporting} — {!snapshot} / {!to_jsonl} for programmatic
      access, {!load_jsonl} + {!pp_events} for the [imtp report]
      subcommand, and {!folded} for flamegraph-friendly folded stacks.

    The span and metric {e names} emitted by this repository are a
    stable contract documented in DESIGN.md ("Observability"); tooling
    may rely on them across versions.

    Everything here is deliberately simple: no external dependencies
    beyond [unix], and instrumentation never changes the instrumented
    computation — building an artifact under an active trace yields
    the same key, schedule, programs (up to the run-unique variable
    identifiers) and stats as building it with observability reset
    (property-tested in [test/test_obs.ml]).

    {b Thread safety.}  The module is safe to use from multiple
    domains concurrently: span identifiers are allocated atomically,
    each domain tracks its own stack of open spans (so {!span} nesting
    and {!add_attr} are race-free per domain), and the finished-span
    ring, the trace sink and the metrics registry are guarded by one
    internal mutex.  Spans opened on a worker domain are parented to
    the domain's innermost open span, or — when the worker runs a task
    on behalf of a span open elsewhere (see {!with_ambient_parent}) —
    to that ambient span, so traces from parallel batches remain
    well-nested.  Metric updates ({!incr}, {!observe}, {!set_gauge})
    are atomic with respect to each other and to {!snapshot}. *)

(** {1 Attribute values} *)

(** Attribute values attached to spans (structured replacements for
    ad-hoc log formatting). *)
type value = Bool of bool | Int of int | Float of float | Str of string

(** {1 JSON}

    A minimal JSON implementation — just enough to write and re-read
    the JSONL trace format without an external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float  (** all JSON numbers, integers included. *)
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact single-line rendering; floats print with enough digits
      ([%.17g]) to round-trip bit-exactly. *)

  val of_string : string -> (t, string) result
  (** Parse one JSON value; [Error] carries a position-annotated
      message.  Accepts exactly what {!to_string} emits (plus
      insignificant whitespace). *)

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] on missing fields or non-objects. *)
end

(** {1 Spans} *)

type span = {
  id : int;  (** unique per process run, in start order. *)
  parent : int option;  (** enclosing span at start time, if any. *)
  name : string;  (** taxonomy name, e.g. ["engine.lower"]. *)
  start_s : float;  (** seconds since the process' first observation. *)
  dur_s : float;  (** wall-clock duration, seconds. *)
  attrs : (string * value) list;  (** key/value attributes, in order. *)
}
(** A finished span.  Spans are recorded when they {e finish}, so in
    {!snapshot} a child precedes its parent. *)

val span : ?attrs:(string * value) list -> name:string -> (unit -> 'a) -> 'a
(** [span ~name f] times [f ()] as a span named [name], parented to
    the innermost span currently open on the calling domain (falling
    back to the domain's ambient parent, see {!with_ambient_parent}).
    The span is recorded — ring buffer, and sink if one is set —
    whether [f] returns or raises. *)

val add_attr : string -> value -> unit
(** Attach an attribute to the calling domain's innermost open span
    (no-op outside any span) — for values only known mid-flight, e.g.
    a cache-hit flag. *)

val current_span_id : unit -> int option
(** The id of the calling domain's innermost open span (or its ambient
    parent when none is open) — capture this before dispatching work to
    another domain and re-establish it there with
    {!with_ambient_parent}. *)

val with_ambient_parent : int option -> (unit -> 'a) -> 'a
(** [with_ambient_parent parent f] runs [f] with the calling domain's
    ambient parent set to [parent]: spans opened by [f] outside any
    other open span are parented to it instead of being roots.  This is
    how a worker-pool task keeps its spans nested under the span that
    dispatched the batch.  The previous ambient parent is restored when
    [f] returns or raises. *)

val now_s : unit -> float
(** Seconds since the process' first observation (wall clock) — the
    timescale of {!span.start_s}. *)

(** {1 Metrics registry}

    Metrics are interned by name on first use; using the same name at
    two call sites addresses the same metric.  Kinds live in separate
    namespaces, but the emitted taxonomy never reuses a name across
    kinds. *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to a counter (monotonically increasing). *)

val counter_value : string -> int
(** Current counter value; 0 for a counter never incremented. *)

val set_gauge : string -> float -> unit
(** Set a gauge (last-value-wins, e.g. best-latency-so-far). *)

val gauge_value : string -> float option

val observe : string -> float -> unit
(** Record one observation into a histogram. *)

(** {2 Histogram buckets}

    All histograms share one fixed log-scale bucket layout: 5 buckets
    per decade from 1e-9 to 1e3 (60 finite buckets) plus one overflow
    bucket, so latencies from nanoseconds to tens of minutes resolve
    to ±58 % without per-metric configuration. *)

val bucket_count : int
(** Total buckets including the overflow bucket (61). *)

val bucket_upper_bound : int -> float
(** Inclusive upper bound of bucket [i]; [infinity] for the overflow
    bucket.  Bucket [i] holds observations [v] with
    [bucket_upper_bound (i-1) < v <= bucket_upper_bound i]
    (bucket 0 additionally holds everything [<= bucket_upper_bound 0],
    including non-positive values). *)

val bucket_index : float -> int
(** The bucket an observation falls into (total order consistent with
    {!bucket_upper_bound}; NaN counts as bucket 0). *)

type hist = {
  count : int;
  sum : float;
  vmin : float;  (** smallest observation ([infinity] when empty). *)
  vmax : float;  (** largest observation ([neg_infinity] when empty). *)
  buckets : (float * int) list;
      (** non-empty buckets only, as [(upper_bound, count)], ascending. *)
}
(** Immutable histogram snapshot. *)

val hist_quantile : hist -> float -> float
(** [hist_quantile h q] estimates the [q]-quantile (0..1) from the
    bucket counts: the upper bound of the first bucket reaching the
    target rank, clamped to [vmax].  [nan] when the histogram is
    empty. *)

(** {1 Snapshots and the JSONL trace format} *)

(** One telemetry event — a finished span or a metric reading. *)
type event =
  | Span of span
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * hist

val snapshot : unit -> event list
(** The ring buffer's spans (oldest first) followed by every
    registered metric (each kind sorted by name).  Pure read — the
    registry and ring are unchanged. *)

val metrics : unit -> event list
(** Just the metric readings of {!snapshot} — no spans.  This is what
    long-running consumers (the serving daemon's [stats] endpoint)
    poll: counters, gauges and histograms, each kind sorted by name,
    without dragging the span ring over the wire. *)

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result
(** Inverse of {!event_to_json}.  Integral attribute values come back
    as [Int] (JSON does not distinguish [2] from [2.0]); everything
    else round-trips exactly. *)

val to_jsonl : event list -> string
(** One JSON object per line — the trace-file format. *)

val load_jsonl : string -> (event list, string) result
(** Read a trace file written by {!to_jsonl} or a {!set_sink} run;
    blank lines are skipped, the first malformed line is an [Error]. *)

(** {1 The trace sink} *)

val set_sink : string -> unit
(** Start streaming: truncate/create the file and append every span as
    it finishes.  Replaces any previously active sink (closing it
    properly, metrics included). *)

val close_sink : unit -> unit
(** Append a final metrics snapshot (counters, gauges, histograms) and
    close the file.  No-op when no sink is active. *)

val with_sink : string option -> (unit -> 'a) -> 'a
(** [with_sink (Some path) f] brackets [f] with {!set_sink} /
    {!close_sink} (closing on exceptions too); [with_sink None f] is
    just [f ()].  This is what the CLI's [--trace FILE] flag calls. *)

(** {1 Reporting} *)

val pp_events : Format.formatter -> event list -> unit
(** Human-readable report: per-span-name latency table (count, total,
    mean, p50 / p90 / p99 computed from the exact durations), then
    counters, gauges and histogram quantiles, then derived rates
    (engine cache hit rate when the [engine.cache.*] counters are
    present).  This is [imtp report FILE]. *)

val folded : event list -> (string * int) list
(** Flamegraph-friendly folded stacks: for every span, the
    [;]-separated path of names from its outermost ancestor, mapped to
    the span's {e self} time (duration minus child durations) in
    integer microseconds, summed over occurrences and sorted by path.
    Feed the [.folded] output to [flamegraph.pl] or speedscope. *)

(** {1 Lifecycle} *)

val set_ring_capacity : int -> unit
(** Resize (and clear) the span ring buffer (default 8192 spans). *)

val reset : unit -> unit
(** Clear spans, open-span state and all metrics — for tests.  The
    sink and the process epoch are left untouched. *)
