type value = Bool of bool | Int of int | Float of float | Str of string

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let num_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let to_string v =
    let buf = Buffer.create 256 in
    let rec go = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Num f ->
          if Float.is_nan f then Buffer.add_string buf "null"
          else Buffer.add_string buf (num_to_string f)
      | Str s ->
          Buffer.add_char buf '"';
          escape buf s;
          Buffer.add_char buf '"'
      | List xs ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_char buf ',';
              go x)
            xs;
          Buffer.add_char buf ']'
      | Obj kvs ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, x) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_char buf '"';
              escape buf k;
              Buffer.add_string buf "\":";
              go x)
            kvs;
          Buffer.add_char buf '}'
    in
    go v;
    Buffer.contents buf

  exception Parse of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | None -> fail "unterminated escape"
            | Some c ->
                advance ();
                (match c with
                | '"' -> Buffer.add_char buf '"'
                | '\\' -> Buffer.add_char buf '\\'
                | '/' -> Buffer.add_char buf '/'
                | 'n' -> Buffer.add_char buf '\n'
                | 't' -> Buffer.add_char buf '\t'
                | 'r' -> Buffer.add_char buf '\r'
                | 'b' -> Buffer.add_char buf '\b'
                | 'f' -> Buffer.add_char buf '\012'
                | 'u' ->
                    if !pos + 4 > n then fail "truncated \\u escape";
                    let hex = String.sub s !pos 4 in
                    pos := !pos + 4;
                    let cp =
                      match int_of_string_opt ("0x" ^ hex) with
                      | Some cp -> cp
                      | None -> fail "bad \\u escape"
                    in
                    (* encode the code point as UTF-8. *)
                    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
                    else if cp < 0x800 then begin
                      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                    end
                    else begin
                      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                      Buffer.add_char buf
                        (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                    end
                | _ -> fail "bad escape");
                go ())
        | Some c ->
            advance ();
            Buffer.add_char buf c;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let items = ref [ parse_value () ] in
            skip_ws ();
            while peek () = Some ',' do
              advance ();
              items := parse_value () :: !items;
              skip_ws ()
            done;
            expect ']';
            List (List.rev !items)
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let field () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              (k, v)
            in
            let items = ref [ field () ] in
            skip_ws ();
            while peek () = Some ',' do
              advance ();
              items := field () :: !items;
              skip_ws ()
            done;
            expect '}';
            Obj (List.rev !items)
          end
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse m -> Error m

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(* [float option] rather than a NaN sentinel: compare-and-set on [None]
   (an immediate) is well-defined, whereas physical equality of boxed
   floats is not. *)
let epoch : float option Atomic.t = Atomic.make None

let now_s () =
  let t = Unix.gettimeofday () in
  if Atomic.get epoch = None then
    ignore (Atomic.compare_and_set epoch None (Some t));
  match Atomic.get epoch with Some e -> t -. e | None -> 0.

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span = {
  id : int;
  parent : int option;
  name : string;
  start_s : float;
  dur_s : float;
  attrs : (string * value) list;
}

type open_span = {
  o_id : int;
  o_name : string;
  o_parent : int option;
  o_start : float;
  mutable o_attrs : (string * value) list;  (* reversed *)
}

let next_id = Atomic.make 0

(* Every domain has its own stack of open spans (domain-local storage),
   so span nesting is tracked per domain without synchronization.  A
   worker domain running a task on behalf of an enclosing span (e.g. an
   engine batch dispatching builds across a pool) inherits that span as
   its "ambient parent": the task's outermost spans are parented to it,
   keeping traces from parallel batches well-nested. *)
let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let ambient_key : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let stack () = Domain.DLS.get stack_key
let ambient () = Domain.DLS.get ambient_key

(* One lock guards everything cross-domain: the span ring, the trace
   sink, and the metrics registry.  Sections under the lock are short
   (no user code, no I/O beyond one sink line), so contention stays
   negligible next to the instrumented work. *)
let state_lock = Mutex.create ()
let locked f = Mutex.protect state_lock f

let current_span_id () =
  match !(stack ()) with o :: _ -> Some o.o_id | [] -> !(ambient ())

let with_ambient_parent parent f =
  let r = ambient () in
  let saved = !r in
  r := parent;
  Fun.protect ~finally:(fun () -> r := saved) f

(* Bounded ring of finished spans (under [state_lock]). *)
let ring_capacity = ref 8192
let ring : span option array ref = ref (Array.make !ring_capacity None)
let ring_next = ref 0
let ring_count = ref 0

let set_ring_capacity c =
  locked (fun () ->
      let c = max 1 c in
      ring_capacity := c;
      ring := Array.make c None;
      ring_next := 0;
      ring_count := 0)

let ring_push s =
  !ring.(!ring_next) <- Some s;
  ring_next := (!ring_next + 1) mod !ring_capacity;
  if !ring_count < !ring_capacity then incr ring_count

let ring_spans_locked () =
  let cap = !ring_capacity in
  let first = (!ring_next - !ring_count + cap) mod cap in
  List.init !ring_count (fun i ->
      match !ring.((first + i) mod cap) with
      | Some s -> s
      | None -> assert false)

(* Sink plumbing is defined below but spans need to write to it; a
   forward reference keeps the file in reading order.  Written and
   called under [state_lock]. *)
let sink_write : (span -> unit) ref = ref (fun _ -> ())

let finish_span o =
  let dur = now_s () -. o.o_start in
  let stack = stack () in
  (match !stack with
  | top :: rest when top == o -> stack := rest
  | _ ->
      (* a span escaped its dynamic extent (e.g. an exception skipped
         an inner finish); drop down to — and including — [o]. *)
      let rec pop = function
        | top :: rest -> if top == o then rest else pop rest
        | [] -> []
      in
      stack := pop !stack);
  let s =
    {
      id = o.o_id;
      parent = o.o_parent;
      name = o.o_name;
      start_s = o.o_start;
      dur_s = dur;
      attrs = List.rev o.o_attrs;
    }
  in
  locked (fun () ->
      ring_push s;
      !sink_write s)

let span ?(attrs = []) ~name f =
  let id = Atomic.fetch_and_add next_id 1 in
  let stack = stack () in
  let parent =
    match !stack with o :: _ -> Some o.o_id | [] -> !(ambient ())
  in
  let o =
    {
      o_id = id;
      o_name = name;
      o_parent = parent;
      o_start = now_s ();
      o_attrs = List.rev attrs;
    }
  in
  stack := o :: !stack;
  match f () with
  | v ->
      finish_span o;
      v
  | exception e ->
      finish_span o;
      raise e

let add_attr k v =
  match !(stack ()) with
  | [] -> ()
  | o :: _ -> o.o_attrs <- (k, v) :: o.o_attrs

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 16

(* Fixed log-scale buckets: 5 per decade, 1e-9 .. 1e3, plus overflow. *)
let buckets_per_decade = 5
let min_exp = -9.
let finite_buckets = 60
let bucket_count = finite_buckets + 1

let bucket_upper_bound i =
  if i >= finite_buckets then infinity
  else 10. ** (min_exp +. (float_of_int (i + 1) /. float_of_int buckets_per_decade))

let bucket_index v =
  if Float.is_nan v || v <= bucket_upper_bound 0 then 0
  else if v > bucket_upper_bound (finite_buckets - 1) then finite_buckets
  else begin
    let guess =
      int_of_float
        (Float.ceil ((Float.log10 v -. min_exp) *. float_of_int buckets_per_decade))
      - 1
    in
    let i = ref (max 0 (min (finite_buckets - 1) guess)) in
    (* fix up floating-point error at bucket boundaries. *)
    while !i > 0 && v <= bucket_upper_bound (!i - 1) do
      decr i
    done;
    while v > bucket_upper_bound !i do
      incr i
    done;
    !i
  end

type hist_state = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

let histograms : (string, hist_state) Hashtbl.t = Hashtbl.create 16

let incr_counter ?(by = 1) name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add counters name (ref by))

let incr = incr_counter

let counter_value name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with Some r -> !r | None -> 0)

let set_gauge name v =
  locked (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some r -> r := v
      | None -> Hashtbl.add gauges name (ref v))

let gauge_value name =
  locked (fun () ->
      Option.map (fun r -> !r) (Hashtbl.find_opt gauges name))

let observe name v =
  locked (fun () ->
      let h =
        match Hashtbl.find_opt histograms name with
        | Some h -> h
        | None ->
            let h =
              {
                h_count = 0;
                h_sum = 0.;
                h_min = infinity;
                h_max = neg_infinity;
                h_buckets = Array.make bucket_count 0;
              }
            in
            Hashtbl.add histograms name h;
            h
      in
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let i = bucket_index v in
      h.h_buckets.(i) <- h.h_buckets.(i) + 1)

type hist = {
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
  buckets : (float * int) list;
}

let hist_of_state (h : hist_state) =
  let buckets = ref [] in
  for i = bucket_count - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      buckets := (bucket_upper_bound i, h.h_buckets.(i)) :: !buckets
  done;
  {
    count = h.h_count;
    sum = h.h_sum;
    vmin = h.h_min;
    vmax = h.h_max;
    buckets = !buckets;
  }

let hist_quantile h q =
  if h.count = 0 then Float.nan
  else begin
    let target =
      max 1 (int_of_float (Float.ceil (q *. float_of_int h.count)))
    in
    let rec go cum = function
      | [] -> h.vmax
      | (ub, c) :: rest ->
          if cum + c >= target then Float.min ub h.vmax else go (cum + c) rest
    in
    go 0 h.buckets
  end

(* ------------------------------------------------------------------ *)
(* Events and the JSONL format                                         *)
(* ------------------------------------------------------------------ *)

type event =
  | Span of span
  | Counter of string * int
  | Gauge of string * float
  | Histogram of string * hist

let value_to_json : value -> Json.t = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Str s -> Json.Str s

let value_of_json : Json.t -> (value, string) result = function
  | Json.Bool b -> Ok (Bool b)
  | Json.Num f ->
      if Float.is_integer f && Float.abs f < 9.007199254740992e15 then
        Ok (Int (int_of_float f))
      else Ok (Float f)
  | Json.Str s -> Ok (Str s)
  | _ -> Error "bad attribute value"

let span_to_json s =
  Json.Obj
    [
      ("type", Json.Str "span");
      ("id", Json.Num (float_of_int s.id));
      ( "parent",
        match s.parent with
        | None -> Json.Null
        | Some p -> Json.Num (float_of_int p) );
      ("name", Json.Str s.name);
      ("start_s", Json.Num s.start_s);
      ("dur_s", Json.Num s.dur_s);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) s.attrs));
    ]

let event_to_json = function
  | Span s -> span_to_json s
  | Counter (name, v) ->
      Json.Obj
        [
          ("type", Json.Str "counter");
          ("name", Json.Str name);
          ("value", Json.Num (float_of_int v));
        ]
  | Gauge (name, v) ->
      Json.Obj
        [ ("type", Json.Str "gauge"); ("name", Json.Str name); ("value", Json.Num v) ]
  | Histogram (name, h) ->
      Json.Obj
        [
          ("type", Json.Str "histogram");
          ("name", Json.Str name);
          ("count", Json.Num (float_of_int h.count));
          ("sum", Json.Num h.sum);
          ("min", Json.Num h.vmin);
          ("max", Json.Num h.vmax);
          ( "buckets",
            Json.List
              (List.map
                 (fun (ub, c) ->
                   Json.List [ Json.Num ub; Json.Num (float_of_int c) ])
                 h.buckets) );
        ]

let ( let* ) = Result.bind

let field name j conv =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %s" name)
  | Some v -> conv v

let as_num = function
  | Json.Num f -> Ok f
  | _ -> Error "expected a number"

let as_str = function
  | Json.Str s -> Ok s
  | _ -> Error "expected a string"

let as_int j = Result.map int_of_float (as_num j)

let event_of_json j =
  let* typ = field "type" j as_str in
  match typ with
  | "span" ->
      let* id = field "id" j as_int in
      let* parent =
        match Json.member "parent" j with
        | None | Some Json.Null -> Ok None
        | Some v -> Result.map (fun i -> Some i) (as_int v)
      in
      let* name = field "name" j as_str in
      let* start_s = field "start_s" j as_num in
      let* dur_s = field "dur_s" j as_num in
      let* attrs =
        match Json.member "attrs" j with
        | None | Some (Json.Obj []) -> Ok []
        | Some (Json.Obj kvs) ->
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                let* v = value_of_json v in
                Ok ((k, v) :: acc))
              (Ok []) kvs
            |> Result.map List.rev
        | Some _ -> Error "bad attrs"
      in
      Ok (Span { id; parent; name; start_s; dur_s; attrs })
  | "counter" ->
      let* name = field "name" j as_str in
      let* v = field "value" j as_int in
      Ok (Counter (name, v))
  | "gauge" ->
      let* name = field "name" j as_str in
      let* v = field "value" j as_num in
      Ok (Gauge (name, v))
  | "histogram" ->
      let* name = field "name" j as_str in
      let* count = field "count" j as_int in
      let* sum = field "sum" j as_num in
      let* vmin = field "min" j as_num in
      let* vmax = field "max" j as_num in
      let* buckets =
        match Json.member "buckets" j with
        | Some (Json.List items) ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match item with
                | Json.List [ ub; c ] ->
                    let* ub = as_num ub in
                    let* c = as_int c in
                    Ok ((ub, c) :: acc)
                | _ -> Error "bad bucket")
              (Ok []) items
            |> Result.map List.rev
        | _ -> Error "missing buckets"
      in
      Ok (Histogram (name, { count; sum; vmin; vmax; buckets }))
  | t -> Error (Printf.sprintf "unknown event type %s" t)

(* Assumes [state_lock] is held (callers: [snapshot], [close_sink]). *)
let metric_events_locked () =
  let sorted tbl mk =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map mk
  in
  sorted counters (fun (name, r) -> Counter (name, !r))
  @ sorted gauges (fun (name, r) -> Gauge (name, !r))
  @ sorted histograms (fun (name, h) -> Histogram (name, hist_of_state h))

let snapshot () =
  locked (fun () ->
      List.map (fun s -> Span s) (ring_spans_locked ()) @ metric_events_locked ())

let metrics () = locked metric_events_locked

let to_jsonl events =
  String.concat ""
    (List.map (fun e -> Json.to_string (event_to_json e) ^ "\n") events)

let load_jsonl path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let events = ref [] and err = ref None and lineno = ref 0 in
          (try
             while true do
               let line = input_line ic in
               lineno := !lineno + 1;
               if String.trim line <> "" && !err = None then
                 match Json.of_string line with
                 | Error m ->
                     err := Some (Printf.sprintf "line %d: %s" !lineno m)
                 | Ok j -> (
                     match event_of_json j with
                     | Error m ->
                         err := Some (Printf.sprintf "line %d: %s" !lineno m)
                     | Ok e -> events := e :: !events)
             done
           with End_of_file -> ());
          match !err with
          | Some m -> Error m
          | None -> Ok (List.rev !events))

(* ------------------------------------------------------------------ *)
(* The sink                                                            *)
(* ------------------------------------------------------------------ *)

let sink : out_channel option ref = ref None

let close_sink () =
  locked (fun () ->
      match !sink with
      | None -> ()
      | Some oc ->
          sink := None;
          sink_write := (fun _ -> ());
          List.iter
            (fun e -> output_string oc (Json.to_string (event_to_json e) ^ "\n"))
            (metric_events_locked ());
          close_out oc)

let set_sink path =
  close_sink ();
  locked (fun () ->
      let oc = open_out path in
      sink := Some oc;
      sink_write :=
        fun s -> output_string oc (Json.to_string (event_to_json (Span s)) ^ "\n"))

let with_sink path f =
  match path with
  | None -> f ()
  | Some p ->
      set_sink p;
      Fun.protect ~finally:close_sink f

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let exact_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else
    let i = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

let pp_events fmt events =
  let spans =
    List.filter_map (function Span s -> Some s | _ -> None) events
  in
  (* per-name latency table. *)
  let by_name : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt by_name s.name with
      | Some r -> r := s.dur_s :: !r
      | None -> Hashtbl.add by_name s.name (ref [ s.dur_s ]))
    spans;
  let rows =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) by_name []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  if rows <> [] then begin
    Format.fprintf fmt "spans (%d recorded):@." (List.length spans);
    Format.fprintf fmt "  %-28s %8s %12s %10s %10s %10s %10s@." "name" "count"
      "total ms" "mean ms" "p50 ms" "p90 ms" "p99 ms";
    List.iter
      (fun (name, durs) ->
        let sorted = Array.of_list durs in
        Array.sort Float.compare sorted;
        let count = Array.length sorted in
        let total = Array.fold_left ( +. ) 0. sorted in
        let ms v = v *. 1e3 in
        Format.fprintf fmt "  %-28s %8d %12.3f %10.4f %10.4f %10.4f %10.4f@."
          name count (ms total)
          (ms (total /. float_of_int count))
          (ms (exact_quantile sorted 0.50))
          (ms (exact_quantile sorted 0.90))
          (ms (exact_quantile sorted 0.99)))
      rows
  end;
  let cs = List.filter_map (function Counter (n, v) -> Some (n, v) | _ -> None) events in
  if cs <> [] then begin
    Format.fprintf fmt "counters:@.";
    List.iter (fun (n, v) -> Format.fprintf fmt "  %-34s %12d@." n v) cs
  end;
  let gs = List.filter_map (function Gauge (n, v) -> Some (n, v) | _ -> None) events in
  if gs <> [] then begin
    Format.fprintf fmt "gauges:@.";
    List.iter (fun (n, v) -> Format.fprintf fmt "  %-34s %12g@." n v) gs
  end;
  let hs =
    List.filter_map (function Histogram (n, h) -> Some (n, h) | _ -> None) events
  in
  if hs <> [] then begin
    Format.fprintf fmt "histograms:@.";
    Format.fprintf fmt "  %-28s %8s %12s %10s %10s %10s@." "name" "count"
      "sum" "p50" "p90" "p99";
    List.iter
      (fun (n, h) ->
        Format.fprintf fmt "  %-28s %8d %12.6g %10.4g %10.4g %10.4g@." n
          h.count h.sum (hist_quantile h 0.50) (hist_quantile h 0.90)
          (hist_quantile h 0.99))
      hs
  end;
  (* derived rates. *)
  let counter n = List.assoc_opt n cs in
  (match (counter "engine.cache.hits", counter "engine.cache.lookups") with
  | Some hits, Some lookups when lookups > 0 ->
      Format.fprintf fmt "engine cache hit rate: %d/%d (%.1f%%)@." hits lookups
        (100. *. float_of_int hits /. float_of_int lookups)
  | _ -> ())

let folded events =
  let spans =
    List.filter_map (function Span s -> Some s | _ -> None) events
  in
  let by_id = Hashtbl.create (List.length spans) in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) spans;
  (* child time per parent id, to compute self time. *)
  let child_time = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match s.parent with
      | Some p when Hashtbl.mem by_id p ->
          let cur =
            Option.value ~default:0. (Hashtbl.find_opt child_time p)
          in
          Hashtbl.replace child_time p (cur +. s.dur_s)
      | _ -> ())
    spans;
  let rec path s =
    match s.parent with
    | Some p when Hashtbl.mem by_id p -> path (Hashtbl.find by_id p) ^ ";" ^ s.name
    | _ -> s.name
  in
  let acc = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let self =
        s.dur_s -. Option.value ~default:0. (Hashtbl.find_opt child_time s.id)
      in
      let us = int_of_float (Float.max 0. self *. 1e6) in
      let p = path s in
      let cur = Option.value ~default:0 (Hashtbl.find_opt acc p) in
      Hashtbl.replace acc p (cur + us))
    spans;
  Hashtbl.fold (fun p v l -> (p, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let reset () =
  stack () := [];
  ambient () := None;
  locked (fun () ->
      ring := Array.make !ring_capacity None;
      ring_next := 0;
      ring_count := 0;
      Hashtbl.reset counters;
      Hashtbl.reset gauges;
      Hashtbl.reset histograms)
