(** Operator definitions — the "abstract computational task" side of
    the TensorIR separation (§2.2): an iteration domain over named axes
    and an element expression, with no implementation choices.
    Schedules (how to tile, bind, cache) are applied separately by
    {!Imtp_schedule.Sched}. *)

type axis_kind = Spatial | Reduction

type axis = { aname : string; extent : int; kind : axis_kind }

(** Element expression over the current iteration point.  [Ref t] reads
    input tensor [t] at the point's coordinates (projected onto [t]'s
    axes).  For reduction ops the output accumulates the expression
    with [+] over the reduction axes.  [Acc] is only valid inside an
    {!t.epilogue} and denotes the fully accumulated output value at the
    current output point. *)
type elem =
  | Ref of string
  | Const of Imtp_tensor.Value.t
  | Acc
  | Bin of bin * elem * elem

and bin = Add | Sub | Mul | Div | Min | Max
(** [Div] is floor division on integers (the TIR evaluator's
    [Binop Div] semantics), exact division on floats. *)

type t = {
  opname : string;
  dtype : Imtp_tensor.Dtype.t;
  axes : axis list;  (** canonical loop order, spatial and reduction. *)
  inputs : (string * string list) list;
      (** tensor name and its axes, outermost first. *)
  output : string * string list;  (** name and spatial axes. *)
  body : elem;
  epilogue : elem option;
      (** optional elementwise post-processing applied once per output
          point after the body (and any reduction) completes: the graph
          fusion target for bias add / ReLU / scaling.  May reference
          [Acc] and inputs indexed only by output axes. *)
}

val create :
  name:string ->
  dtype:Imtp_tensor.Dtype.t ->
  axes:axis list ->
  inputs:(string * string list) list ->
  output:string * string list ->
  body:elem ->
  t
(** Creates an op with no epilogue.
    @raise Invalid_argument if an input/output references an unknown
    axis, the output references a reduction axis, a [Ref] names an
    unknown input, axis names collide, or [Acc] appears in the body. *)

val with_epilogue : t -> elem -> t
(** Attach (or replace) an elementwise epilogue.
    @raise Invalid_argument if the epilogue references an unknown input
    or an input indexed by a non-output axis. *)

val axis : t -> string -> axis
val spatial_axes : t -> axis list
val reduction_axes : t -> axis list
val has_reduction : t -> bool
val input_shape : t -> string -> int list
val output_shape : t -> int list
(** Empty list means a scalar output (stored as one element). *)

val output_elems : t -> int
val total_flops : t -> float
(** Multiply-add count of the whole operation (for reporting). *)

val elem_refs : elem -> string list
(** Input names referenced, in reference order, with duplicates. *)

val elem_has_acc : elem -> bool

val body_refs : t -> string list
(** Distinct input names referenced by the body, in first-use order. *)

val epilogue_refs : t -> string list
(** Distinct input names referenced by the epilogue ([[]] if none). *)

val value_bin : bin -> Imtp_tensor.Value.t -> Imtp_tensor.Value.t -> Imtp_tensor.Value.t

val reference : t -> (string * Imtp_tensor.Tensor.t) list -> Imtp_tensor.Tensor.t
(** Direct-loop evaluation of the definition; the golden semantics every
    schedule must preserve. *)

val pp : Format.formatter -> t -> unit
val pp_elem : Format.formatter -> elem -> unit
