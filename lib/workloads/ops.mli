(** The seven tensor-algebra operations of the paper's evaluation (§6),
    as {!Op.t} definitions.  All default to int32, matching the PrIM
    benchmark suite. *)

val va : ?dtype:Imtp_tensor.Dtype.t -> int -> Op.t
(** [va n]: C(i) = A(i) + B(i), i < n. *)

val geva : ?dtype:Imtp_tensor.Dtype.t -> c:int -> d:int -> int -> Op.t
(** [geva ~c ~d n]: C(i) = c*A(i) + d*B(i). *)

val red : ?dtype:Imtp_tensor.Dtype.t -> int -> Op.t
(** [red n]: b = Σ_i A(i). *)

val mtv : ?dtype:Imtp_tensor.Dtype.t -> int -> int -> Op.t
(** [mtv n k]: C(i) = Σ_j A(i,j)·B(j). *)

val gemv : ?dtype:Imtp_tensor.Dtype.t -> c:int -> int -> int -> Op.t
(** [gemv ~c n k]: C(i) = c·Σ_j A(i,j)·B(j). *)

val ttv : ?dtype:Imtp_tensor.Dtype.t -> int -> int -> int -> Op.t
(** [ttv n m k]: C(i,j) = Σ_k A(i,j,k)·B(k). *)

val mmtv : ?dtype:Imtp_tensor.Dtype.t -> int -> int -> int -> Op.t
(** [mmtv b n k]: C(i,j) = Σ_k A(i,j,k)·B(i,k). *)

val gemm : ?dtype:Imtp_tensor.Dtype.t -> int -> int -> int -> Op.t
(** [gemm n m k]: C(i,j) = Σ_k A(i,k)·B(k,j) — an extension beyond the
    paper's seven operations (general matrix multiplication, as
    supported by CINM in Table 1). *)

val relu : ?dtype:Imtp_tensor.Dtype.t -> int -> Op.t
(** [relu n]: C(i) = max(A(i), 0). *)

val scale : ?dtype:Imtp_tensor.Dtype.t -> c:int -> int -> Op.t
(** [scale ~c n]: C(i) = c·A(i). *)

val rowsum : ?dtype:Imtp_tensor.Dtype.t -> int -> int -> Op.t
(** [rowsum b n]: C(i) = Σ_j A(i,j) — per-row reduction (softmax
    normalizer). *)

val rowdiv : ?dtype:Imtp_tensor.Dtype.t -> int -> int -> Op.t
(** [rowdiv b n]: C(i,j) = A(i,j) // (R(i) + 1) — per-row floor-divide
    normalization against row sums R (integer softmax surrogate; the +1
    keeps the denominator positive for non-negative sums). *)

val all_names : string list
val by_name : string -> sizes:int list -> Op.t
(** Build an op by name with the given dimension sizes (for the CLI).
    @raise Invalid_argument on unknown names or wrong arity. *)

val random_inputs : ?seed:int -> Op.t -> (string * Imtp_tensor.Tensor.t) list
(** Deterministic random inputs with small magnitudes (int32-safe for
    the reduction depths used in tests and benches). *)
