module T = Imtp_tensor

let sp name extent = { Op.aname = name; extent; kind = Op.Spatial }
let rd name extent = { Op.aname = name; extent; kind = Op.Reduction }
let cst n = Op.Const (T.Value.Int n)

let va ?(dtype = T.Dtype.I32) n =
  Op.create ~name:"va" ~dtype
    ~axes:[ sp "i" n ]
    ~inputs:[ ("A", [ "i" ]); ("B", [ "i" ]) ]
    ~output:("C", [ "i" ])
    ~body:(Op.Bin (Op.Add, Op.Ref "A", Op.Ref "B"))

let geva ?(dtype = T.Dtype.I32) ~c ~d n =
  Op.create ~name:"geva" ~dtype
    ~axes:[ sp "i" n ]
    ~inputs:[ ("A", [ "i" ]); ("B", [ "i" ]) ]
    ~output:("C", [ "i" ])
    ~body:
      (Op.Bin
         ( Op.Add,
           Op.Bin (Op.Mul, cst c, Op.Ref "A"),
           Op.Bin (Op.Mul, cst d, Op.Ref "B") ))

let red ?(dtype = T.Dtype.I32) n =
  Op.create ~name:"red" ~dtype
    ~axes:[ rd "i" n ]
    ~inputs:[ ("A", [ "i" ]) ]
    ~output:("C", [])
    ~body:(Op.Ref "A")

let mtv ?(dtype = T.Dtype.I32) n k =
  Op.create ~name:"mtv" ~dtype
    ~axes:[ sp "i" n; rd "j" k ]
    ~inputs:[ ("A", [ "i"; "j" ]); ("B", [ "j" ]) ]
    ~output:("C", [ "i" ])
    ~body:(Op.Bin (Op.Mul, Op.Ref "A", Op.Ref "B"))

let gemv ?(dtype = T.Dtype.I32) ~c n k =
  Op.create ~name:"gemv" ~dtype
    ~axes:[ sp "i" n; rd "j" k ]
    ~inputs:[ ("A", [ "i"; "j" ]); ("B", [ "j" ]) ]
    ~output:("C", [ "i" ])
    ~body:(Op.Bin (Op.Mul, cst c, Op.Bin (Op.Mul, Op.Ref "A", Op.Ref "B")))

let ttv ?(dtype = T.Dtype.I32) n m k =
  Op.create ~name:"ttv" ~dtype
    ~axes:[ sp "i" n; sp "j" m; rd "k" k ]
    ~inputs:[ ("A", [ "i"; "j"; "k" ]); ("B", [ "k" ]) ]
    ~output:("C", [ "i"; "j" ])
    ~body:(Op.Bin (Op.Mul, Op.Ref "A", Op.Ref "B"))

let mmtv ?(dtype = T.Dtype.I32) b n k =
  Op.create ~name:"mmtv" ~dtype
    ~axes:[ sp "i" b; sp "j" n; rd "k" k ]
    ~inputs:[ ("A", [ "i"; "j"; "k" ]); ("B", [ "i"; "k" ]) ]
    ~output:("C", [ "i"; "j" ])
    ~body:(Op.Bin (Op.Mul, Op.Ref "A", Op.Ref "B"))

let gemm ?(dtype = T.Dtype.I32) n m k =
  Op.create ~name:"gemm" ~dtype
    ~axes:[ sp "i" n; sp "j" m; rd "k" k ]
    ~inputs:[ ("A", [ "i"; "k" ]); ("B", [ "k"; "j" ]) ]
    ~output:("C", [ "i"; "j" ])
    ~body:(Op.Bin (Op.Mul, Op.Ref "A", Op.Ref "B"))

let relu ?(dtype = T.Dtype.I32) n =
  Op.create ~name:"relu" ~dtype
    ~axes:[ sp "i" n ]
    ~inputs:[ ("A", [ "i" ]) ]
    ~output:("C", [ "i" ])
    ~body:(Op.Bin (Op.Max, Op.Ref "A", cst 0))

let scale ?(dtype = T.Dtype.I32) ~c n =
  Op.create ~name:"scale" ~dtype
    ~axes:[ sp "i" n ]
    ~inputs:[ ("A", [ "i" ]) ]
    ~output:("C", [ "i" ])
    ~body:(Op.Bin (Op.Mul, cst c, Op.Ref "A"))

let rowsum ?(dtype = T.Dtype.I32) b n =
  Op.create ~name:"rowsum" ~dtype
    ~axes:[ sp "i" b; rd "j" n ]
    ~inputs:[ ("A", [ "i"; "j" ]) ]
    ~output:("C", [ "i" ])
    ~body:(Op.Ref "A")

let rowdiv ?(dtype = T.Dtype.I32) b n =
  (* C(i,j) = A(i,j) // (R(i) + 1): the +1 keeps the denominator
     positive for non-negative row sums (integer softmax surrogate). *)
  Op.create ~name:"rowdiv" ~dtype
    ~axes:[ sp "i" b; sp "j" n ]
    ~inputs:[ ("A", [ "i"; "j" ]); ("R", [ "i" ]) ]
    ~output:("C", [ "i"; "j" ])
    ~body:(Op.Bin (Op.Div, Op.Ref "A", Op.Bin (Op.Add, Op.Ref "R", cst 1)))

let all_names =
  [
    "va"; "geva"; "red"; "mtv"; "gemv"; "ttv"; "mmtv"; "gemm"; "relu"; "scale";
    "rowsum"; "rowdiv";
  ]

let by_name name ~sizes =
  match (name, sizes) with
  | "va", [ n ] -> va n
  | "geva", [ n ] -> geva ~c:3 ~d:2 n
  | "red", [ n ] -> red n
  | "mtv", [ n; k ] -> mtv n k
  | "gemv", [ n; k ] -> gemv ~c:3 n k
  | "ttv", [ n; m; k ] -> ttv n m k
  | "mmtv", [ b; n; k ] -> mmtv b n k
  | "gemm", [ n; m; k ] -> gemm n m k
  | "relu", [ n ] -> relu n
  | "scale", [ n ] -> scale ~c:3 n
  | "rowsum", [ b; n ] -> rowsum b n
  | "rowdiv", [ b; n ] -> rowdiv b n
  | _, _ ->
      invalid_arg
        (Printf.sprintf "Ops.by_name: unknown op %s or wrong arity (%d sizes)"
           name (List.length sizes))

let random_inputs ?(seed = 7) (op : Op.t) =
  List.mapi
    (fun i (name, _) ->
      let shape = T.Shape.create (Op.input_shape op name) in
      (name, T.Tensor.random ~seed:(seed + (17 * i)) ~bound:9 op.Op.dtype shape))
    op.Op.inputs
