module T = Imtp_tensor

type node = { id : string; op : Op.t; args : (string * string) list }

type t = {
  sname : string;
  inputs : (string * int list) list;
  nodes : node list;
}

let sp name extent = { Op.aname = name; extent; kind = Op.Spatial }

(* 2-D scaling C(i,j) = c·A(i,j): the attention score scaling that
   rides on the batched QK^T output (Ops.scale is the 1-D variant). *)
let scale2d ?(dtype = T.Dtype.I32) ~c b n =
  Op.create ~name:"scale2d" ~dtype
    ~axes:[ sp "i" b; sp "j" n ]
    ~inputs:[ ("A", [ "i"; "j" ]) ]
    ~output:("C", [ "i"; "j" ])
    ~body:(Op.Bin (Op.Mul, Op.Const (T.Value.Int c), Op.Ref "A"))

let mlp ?(d_in = 256) ?(d_hidden = 256) ?(d_out = 128) () =
  {
    sname = Printf.sprintf "mlp_%dx%dx%d" d_in d_hidden d_out;
    inputs =
      [
        ("x", [ d_in ]);
        ("W1", [ d_hidden; d_in ]);
        ("b1", [ d_hidden ]);
        ("W2", [ d_out; d_hidden ]);
        ("b2", [ d_out ]);
      ];
    nodes =
      [
        { id = "h1"; op = Ops.mtv d_hidden d_in; args = [ ("A", "W1"); ("B", "x") ] };
        { id = "h1b"; op = Ops.va d_hidden; args = [ ("A", "h1"); ("B", "b1") ] };
        { id = "a1"; op = Ops.relu d_hidden; args = [ ("A", "h1b") ] };
        { id = "h2"; op = Ops.mtv d_out d_hidden; args = [ ("A", "W2"); ("B", "a1") ] };
        { id = "out"; op = Ops.va d_out; args = [ ("A", "h2"); ("B", "b2") ] };
      ];
  }

(* Decode-style attention block over [heads] heads of [dim] channels
   against [tokens] cached keys/values (GPT-J layout, §6): per head
   s = K·q scaled, normalized with an integer softmax surrogate
   (rowsum + rowdiv), then out = V^T·p.  Every op keeps the head axis
   outermost, so the whole chain admits a head-partitioned resident
   configuration. *)
let attention ?(heads = 16) ?(tokens = 64) ?(dim = 32) () =
  {
    sname = Printf.sprintf "attention_h%d_t%d_d%d" heads tokens dim;
    inputs =
      [
        ("K", [ heads; tokens; dim ]);
        ("q", [ heads; dim ]);
        ("Vt", [ heads; dim; tokens ]);
      ];
    nodes =
      [
        { id = "s"; op = Ops.mmtv heads tokens dim; args = [ ("A", "K"); ("B", "q") ] };
        { id = "ss"; op = scale2d ~c:2 heads tokens; args = [ ("A", "s") ] };
        { id = "r"; op = Ops.rowsum heads tokens; args = [ ("A", "ss") ] };
        { id = "p"; op = Ops.rowdiv heads tokens; args = [ ("A", "ss"); ("R", "r") ] };
        { id = "out"; op = Ops.mmtv heads dim tokens; args = [ ("A", "Vt"); ("B", "p") ] };
      ];
  }

let by_name ?sizes name =
  match (name, sizes) with
  | "mlp", None -> mlp ()
  | "mlp", Some [ i; h; o ] -> mlp ~d_in:i ~d_hidden:h ~d_out:o ()
  | "attention", None -> attention ()
  | "attention", Some [ h; t; d ] -> attention ~heads:h ~tokens:t ~dim:d ()
  | _ ->
      invalid_arg
        (Printf.sprintf "Nets.by_name: unknown net %s or wrong arity" name)

let all_names = [ "mlp"; "attention" ]

let random_inputs ?(seed = 7) t =
  List.mapi
    (fun i (name, shape) ->
      (* Non-negative values keep rowdiv's denominator positive and
         integer reductions overflow-free at these sizes. *)
      let tensor =
        T.Tensor.init T.Dtype.I32 (T.Shape.create shape) (fun idx ->
            let h = ref (seed + (31 * i)) in
            Array.iter (fun d -> h := (!h * 131) + d) idx;
            T.Value.Int (abs !h mod 9))
      in
      (name, tensor))
    t.inputs

(* Golden chain evaluation: run every node's {!Op.reference} in order,
   feeding node outputs forward by id. *)
let reference t ~inputs =
  let env = Hashtbl.create 16 in
  List.iter (fun (n, x) -> Hashtbl.replace env n x) inputs;
  List.map
    (fun nd ->
      let args =
        List.map
          (fun (formal, actual) ->
            match Hashtbl.find_opt env actual with
            | Some x -> (formal, x)
            | None ->
                invalid_arg
                  (Printf.sprintf "Nets.reference: %s: unbound ref %s" nd.id
                     actual))
          nd.args
      in
      let out = Op.reference nd.op args in
      Hashtbl.replace env nd.id out;
      (nd.id, out))
    t.nodes
