module T = Imtp_tensor

type axis_kind = Spatial | Reduction
type axis = { aname : string; extent : int; kind : axis_kind }

type elem = Ref of string | Const of T.Value.t | Acc | Bin of bin * elem * elem
and bin = Add | Sub | Mul | Div | Min | Max

type t = {
  opname : string;
  dtype : T.Dtype.t;
  axes : axis list;
  inputs : (string * string list) list;
  output : string * string list;
  body : elem;
  epilogue : elem option;
}

let axis t name =
  match List.find_opt (fun a -> String.equal a.aname name) t.axes with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Op.axis: unknown axis %s" name)

let rec elem_refs = function
  | Ref n -> [ n ]
  | Const _ | Acc -> []
  | Bin (_, a, b) -> elem_refs a @ elem_refs b

let rec elem_has_acc = function
  | Acc -> true
  | Ref _ | Const _ -> false
  | Bin (_, a, b) -> elem_has_acc a || elem_has_acc b

let dedup names =
  List.rev
    (List.fold_left (fun acc n -> if List.mem n acc then acc else n :: acc) [] names)

let body_refs t = dedup (elem_refs t.body)

let epilogue_refs t =
  match t.epilogue with None -> [] | Some e -> dedup (elem_refs e)

let create ~name ~dtype ~axes ~inputs ~output ~body =
  let t = { opname = name; dtype; axes; inputs; output; body; epilogue = None } in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if a.extent <= 0 then invalid_arg "Op.create: non-positive axis extent";
      if Hashtbl.mem seen a.aname then invalid_arg "Op.create: duplicate axis";
      Hashtbl.add seen a.aname ())
    axes;
  List.iter
    (fun (tn, dims) ->
      if dims = [] then
        invalid_arg (Printf.sprintf "Op.create: input %s has no axes" tn);
      List.iter (fun d -> ignore (axis t d)) dims)
    inputs;
  let _, out_dims = output in
  List.iter
    (fun d ->
      let a = axis t d in
      if a.kind = Reduction then
        invalid_arg "Op.create: output indexed by a reduction axis")
    out_dims;
  if elem_has_acc t.body then
    invalid_arg "Op.create: Acc is only meaningful inside an epilogue";
  List.iter
    (fun r ->
      if not (List.mem_assoc r inputs) then
        invalid_arg (Printf.sprintf "Op.create: body references unknown input %s" r))
    (elem_refs body);
  t

let with_epilogue t e =
  let out_dims = snd t.output in
  List.iter
    (fun r ->
      match List.assoc_opt r t.inputs with
      | None ->
          invalid_arg
            (Printf.sprintf "Op.with_epilogue: epilogue references unknown input %s" r)
      | Some dims ->
          List.iter
            (fun d ->
              if not (List.mem d out_dims) then
                invalid_arg
                  (Printf.sprintf
                     "Op.with_epilogue: epilogue input %s indexed by non-output axis %s"
                     r d))
            dims)
    (elem_refs e);
  { t with epilogue = Some e }

let spatial_axes t = List.filter (fun a -> a.kind = Spatial) t.axes
let reduction_axes t = List.filter (fun a -> a.kind = Reduction) t.axes
let has_reduction t = reduction_axes t <> []

let input_shape t name =
  match List.assoc_opt name t.inputs with
  | Some dims -> List.map (fun d -> (axis t d).extent) dims
  | None -> invalid_arg (Printf.sprintf "Op.input_shape: unknown input %s" name)

let output_shape t = List.map (fun d -> (axis t d).extent) (snd t.output)
let output_elems t = List.fold_left ( * ) 1 (output_shape t)

let total_flops t =
  List.fold_left (fun acc a -> acc *. float_of_int a.extent) 1. t.axes

(* Match the TIR evaluator's [Binop Div]/[Min]/[Max] semantics so the
   golden reference and lowered kernels agree bit-for-bit: integer
   division is floor division (Simplify.fold_binop), floats divide
   exactly. *)
let value_bin op x y =
  match op with
  | Add -> T.Value.add x y
  | Sub -> T.Value.sub x y
  | Mul -> T.Value.mul x y
  | Min -> T.Value.min_v x y
  | Max -> T.Value.max_v x y
  | Div -> (
      match (x, y) with
      | T.Value.Int a, T.Value.Int b when b <> 0 ->
          let q = a / b and r = a mod b in
          T.Value.Int (if r <> 0 && r < 0 <> (b < 0) then q - 1 else q)
      | _ -> T.Value.div x y)

let reference t inputs =
  let find name =
    match List.assoc_opt name inputs with
    | Some x -> x
    | None -> invalid_arg (Printf.sprintf "Op.reference: missing input %s" name)
  in
  let out_shape =
    match output_shape t with [] -> T.Shape.create [ 1 ] | dims -> T.Shape.create dims
  in
  let out = T.Tensor.create t.dtype out_shape in
  let point = Hashtbl.create 8 in
  let rec eval_elem acc = function
    | Const v -> v
    | Acc -> (
        match acc with
        | Some v -> v
        | None -> invalid_arg "Op.reference: Acc outside an epilogue")
    | Ref name ->
        let dims = List.assoc name t.inputs in
        let idx = Array.of_list (List.map (Hashtbl.find point) dims) in
        T.Tensor.get (find name) idx
    | Bin (op, a, b) ->
        value_bin op (eval_elem acc a) (eval_elem acc b)
  in
  let out_index () =
    match snd t.output with
    | [] -> [| 0 |]
    | dims -> Array.of_list (List.map (Hashtbl.find point) dims)
  in
  let rec loop = function
    | [] ->
        let idx = out_index () in
        let v = eval_elem None t.body in
        if has_reduction t then T.Tensor.set out idx (T.Value.add (T.Tensor.get out idx) v)
        else T.Tensor.set out idx v
    | a :: rest ->
        for i = 0 to a.extent - 1 do
          Hashtbl.replace point a.aname i;
          loop rest
        done
  in
  loop t.axes;
  (match t.epilogue with
  | None -> ()
  | Some e ->
      let rec eloop = function
        | [] ->
            let idx = out_index () in
            let v = eval_elem (Some (T.Tensor.get out idx)) e in
            T.Tensor.set out idx v
        | d :: rest ->
            let a = axis t d in
            for i = 0 to a.extent - 1 do
              Hashtbl.replace point a.aname i;
              eloop rest
            done
      in
      eloop (snd t.output));
  out

let rec pp_elem ppf = function
  | Ref n -> Format.pp_print_string ppf n
  | Const v -> T.Value.pp ppf v
  | Acc -> Format.pp_print_string ppf "@acc"
  | Bin (((Min | Max) as op), a, b) ->
      Format.fprintf ppf "%s(%a, %a)"
        (match op with Min -> "min" | _ -> "max")
        pp_elem a pp_elem b
  | Bin (op, a, b) ->
      let s =
        match op with
        | Add -> "+"
        | Sub -> "-"
        | Mul -> "*"
        | Div -> "//"
        | Min | Max -> assert false
      in
      Format.fprintf ppf "(%a %s %a)" pp_elem a s pp_elem b

let pp ppf t =
  let axis_str a =
    Format.sprintf "%s%s:%d" a.aname
      (match a.kind with Spatial -> "" | Reduction -> "(red)")
      a.extent
  in
  Format.fprintf ppf "%s[%s] %s%s = %a%a" t.opname
    (String.concat ", " (List.map axis_str t.axes))
    (fst t.output)
    (match snd t.output with
    | [] -> ""
    | dims -> "(" ^ String.concat "," dims ^ ")")
    pp_elem t.body
    (fun ppf -> function
      | None -> ()
      | Some e -> Format.fprintf ppf "; epilogue %a" pp_elem e)
    t.epilogue
