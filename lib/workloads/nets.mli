(** Whole-model workload specs: named DAGs of {!Op.t} nodes used by the
    graph compiler's end-to-end scenarios (MLP forward pass, transformer
    attention block).  A spec is pure data — node ids, op definitions
    and argument wiring — so it can be turned into an
    [Imtp_graph.Graph.t] or evaluated directly against the golden
    references. *)

type node = {
  id : string;  (** unique node id; also the name of its output. *)
  op : Op.t;
  args : (string * string) list;
      (** op-input name → graph-input name or earlier node id. *)
}

type t = {
  sname : string;
  inputs : (string * int list) list;  (** graph inputs and shapes. *)
  nodes : node list;  (** topological order. *)
}

val scale2d : ?dtype:Imtp_tensor.Dtype.t -> c:int -> int -> int -> Op.t
(** [scale2d ~c b n]: C(i,j) = c·A(i,j). *)

val mlp : ?d_in:int -> ?d_hidden:int -> ?d_out:int -> unit -> t
(** Two-layer MLP forward pass: x → W1·x + b1 → relu → W2·(..) + b2.
    The bias adds and the ReLU are elementwise consumers of reduction
    producers — the graph compiler's epilogue-fusion targets. *)

val attention : ?heads:int -> ?tokens:int -> ?dim:int -> unit -> t
(** Decode-style attention block: s = K·q (scaled), integer softmax
    surrogate p = s // (rowsum(s)+1), out = V^T·p.  Every op keeps the
    head axis outermost, so the chain admits a fully MRAM-resident
    head-partitioned configuration. *)

val by_name : ?sizes:int list -> string -> t
(** ["mlp"] (sizes [d_in; d_hidden; d_out]) or ["attention"] (sizes
    [heads; tokens; dim]).  @raise Invalid_argument otherwise. *)

val all_names : string list

val random_inputs :
  ?seed:int -> t -> (string * Imtp_tensor.Tensor.t) list
(** Deterministic small non-negative inputs (rowdiv-safe). *)

val reference :
  t ->
  inputs:(string * Imtp_tensor.Tensor.t) list ->
  (string * Imtp_tensor.Tensor.t) list
(** Golden chain evaluation: every node's {!Op.reference} run in spec
    order, returning each node's output by id. *)
