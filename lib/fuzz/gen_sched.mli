(** Random valid-by-construction schedule generation.

    A schedule candidate is a replayable list of {!step}s — one per
    {!Imtp_schedule.Sched} primitive application.  Steps name loops by
    their (deterministic) schedule names, so re-applying the list on a
    fresh schedule of the same operator reproduces the schedule
    exactly; a step whose preconditions no longer hold (e.g. after the
    shrinker dropped the split that created its loop) is rejected and
    skipped, keeping replay total and deterministic.

    {!random} biases generation toward the lowerable structure
    ({!Imtp_lower.Lowering}'s constraints): DPU bindings go to each
    axis's outermost segment, the tasklet binding to a small spatial
    segment (reduction segment only for pure reductions), the reorder
    keeps bound loops as an outermost prefix, and cache placements are
    searched among locations whose covered segments telescope.  Unlucky
    draws can still produce unlowerable schedules; callers treat
    [Lower_error] as a rejection and redraw. *)

module S := Imtp_schedule.Sched

type step =
  | Split of string * int list  (** loop name, factors. *)
  | Reorder of string list  (** full loop order, outermost first. *)
  | Bind of string * S.binding
  | Rfactor of string
  | Unroll of string
  | Parallel of string * int  (** host post-processing threads. *)
  | Cache_read of string * string  (** tensor, [compute_at] loop. *)
  | Cache_write of string * string  (** tensor, [reverse_compute_at] loop. *)

val step_to_string : step -> string

val apply : S.t -> step -> bool
(** Apply one step; [false] (and no schedule change) when the step is
    ill-formed for the current schedule state. *)

val replay : Imtp_workload.Op.t -> step list -> S.t * step list
(** Fresh schedule, all steps applied in order; returns the schedule
    and the steps that survived. *)

val random : Imtp_autotune.Rng.t -> Imtp_workload.Op.t -> step list
(** A random candidate sequence covering (across draws) every
    primitive: split, reorder, bind (blocks and tasklets), rfactor,
    cache_read/compute_at, cache_write/reverse_compute_at, unroll and
    parallel. *)
