module Op = Imtp_workload.Op
module S = Imtp_schedule.Sched
module Rng = Imtp_autotune.Rng

type step =
  | Split of string * int list
  | Reorder of string list
  | Bind of string * S.binding
  | Rfactor of string
  | Unroll of string
  | Parallel of string * int
  | Cache_read of string * string
  | Cache_write of string * string

let binding_name = function
  | S.Block_x -> "blockIdx.x"
  | S.Block_y -> "blockIdx.y"
  | S.Block_z -> "blockIdx.z"
  | S.Thread_x -> "threadIdx.x"

let step_to_string = function
  | Split (l, fs) ->
      Printf.sprintf "split(%s, [%s])" l
        (String.concat "; " (List.map string_of_int fs))
  | Reorder ls -> Printf.sprintf "reorder(%s)" (String.concat ", " ls)
  | Bind (l, b) -> Printf.sprintf "bind(%s, %s)" l (binding_name b)
  | Rfactor l -> Printf.sprintf "rfactor(%s)" l
  | Unroll l -> Printf.sprintf "unroll(%s)" l
  | Parallel (l, n) -> Printf.sprintf "parallel(%s, threads=%d)" l n
  | Cache_read (t, l) -> Printf.sprintf "cache_read(%s) @ %s" t l
  | Cache_write (t, l) -> Printf.sprintf "cache_write(%s) @ %s" t l

let apply s step =
  try
    (match step with
    | Split (l, fs) -> ignore (S.split s (S.find_loop s l) ~factors:fs)
    | Reorder names -> S.reorder s (List.map (S.find_loop s) names)
    | Bind (l, b) -> S.bind s (S.find_loop s l) b
    | Rfactor l -> S.rfactor s (S.find_loop s l)
    | Unroll l -> S.unroll s (S.find_loop s l)
    | Parallel (l, n) -> S.parallel s (S.find_loop s l) ~threads:n
    | Cache_read (t, l) ->
        let loc = S.find_loop s l in
        let c = S.cache_read s t in
        S.compute_at s c loc
    | Cache_write (t, l) ->
        let loc = S.find_loop s l in
        let c = S.cache_write s t in
        S.reverse_compute_at s c loc);
    true
  with Invalid_argument _ | Not_found -> false

let replay op steps =
  let s = S.create op in
  let applied = List.filter (apply s) steps in
  (s, applied)

(* --- random generation ------------------------------------------------ *)

(* Mirror of the lowering's telescoping test: the given segments must
   jointly cover a contiguous [0, n) range with unit granularity. *)
let spans_unit segs =
  let live =
    List.sort
      (fun (a : S.loop) (b : S.loop) -> Int.compare a.S.stride b.S.stride)
      (List.filter (fun (l : S.loop) -> l.S.extent > 1) segs)
  in
  let rec go base = function
    | [] -> true
    | (l : S.loop) :: rest -> l.S.stride = base && go (base * l.S.extent) rest
  in
  go 1 live

let shuffle rng l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

let is_reduction op (l : S.loop) =
  (Op.axis op l.S.axis).Op.kind = Op.Reduction

let is_thread (l : S.loop) =
  match l.S.annot with
  | S.Bound S.Thread_x -> true
  | S.Bound _ | S.Serial | S.Unrolled | S.Host_parallel _ -> false

let is_serial (l : S.loop) =
  match l.S.annot with
  | S.Serial -> true
  | S.Bound _ | S.Unrolled | S.Host_parallel _ -> false

let tensor_dims op t =
  if String.equal t (fst op.Op.output) then snd op.Op.output
  else List.assoc t op.Op.inputs

(* Valid cache locations for tensor [t] in the loop order [order]: a
   non-block loop (tasklet loop only for tasklet-level reductions)
   whose deeper segments, per axis of [t], are that axis's innermost
   telescoping segments — and, for the write cache of a reduction op,
   one that encloses every non-block reduction segment. *)
let cache_locs op order ~thread_red ~for_write t =
  let dims = tensor_dims op t in
  let positions = Hashtbl.create 16 in
  List.iteri (fun i (l : S.loop) -> Hashtbl.replace positions l.S.lid i) order;
  let pos (l : S.loop) = Hashtbl.find positions l.S.lid in
  let deeper loc axis =
    List.filter
      (fun (l : S.loop) -> String.equal l.S.axis axis && pos l > pos loc)
      order
  in
  let red_ok loc =
    (not for_write)
    || thread_red
    || List.for_all
         (fun (l : S.loop) ->
           (not (is_reduction op l)) || S.is_block l || pos l > pos loc)
         order
  in
  List.filter
    (fun (loc : S.loop) ->
      (not (S.is_block loc))
      && ((not (is_thread loc)) || thread_red)
      && (not (thread_red && for_write) || is_thread loc)
      && red_ok loc
      && List.for_all (fun a -> spans_unit (deeper loc a)) dims)
    order

let random rng op =
  let s = S.create op in
  let steps = ref [] in
  let push st = if apply s st then (steps := st :: !steps; true) else false in
  let pure_red = Op.spatial_axes op = [] in
  (* 1. splits: one per axis most of the time, occasionally a second
     level; factors include non-divisors so boundary guards appear.
     Shape-derived ragged factors (ceil-half and extent-1) are mixed in
     deliberately: they maximize partial-tile coverage, the shapes the
     affine clamping paths must prove containment for. *)
  let ragged_factor extent =
    if extent > 3 && Rng.bool rng then (extent + 1) / 2 else extent - 1
  in
  List.iter
    (fun (a : Op.axis) ->
      let always = pure_red && a.Op.kind = Op.Reduction in
      if always || Rng.int rng 10 < 8 then begin
        let nf = if always || Rng.bool rng then 2 else 1 in
        let factors =
          List.init nf (fun _ ->
              if a.Op.extent > 2 && Rng.int rng 5 = 0 then
                max 2 (ragged_factor a.Op.extent)
              else 2 + Rng.int rng 7)
        in
        ignore (push (Split (a.Op.aname, factors)))
      end)
    op.Op.axes;
  (if Rng.int rng 4 = 0 then
     match shuffle rng (S.serial_loops s) with
     | l :: _ when l.S.extent > 3 ->
         ignore (push (Split (l.S.lname, [ 2 + Rng.int rng 3 ])))
     | _ -> ());
  (* 2. DPU bindings: outermost segment of randomly chosen axes, grid
     capped; a bound reduction segment is immediately rfactor'd. *)
  let grid = ref 1 in
  let block_budget = ref (Rng.pick rng [ 0; 1; 1; 2; 2; 3 ]) in
  List.iter
    (fun (a : Op.axis) ->
      match S.loops_of_axis s a.Op.aname with
      | outer :: _
        when !block_budget > 0 && is_serial outer
             && !grid * outer.S.extent <= 64 ->
          let choices =
            List.filter
              (fun b -> b <> S.Thread_x)
              (S.unused_bindings s)
          in
          if choices <> [] then begin
            let b = Rng.pick rng choices in
            if push (Bind (outer.S.lname, b)) then begin
              decr block_budget;
              grid := !grid * outer.S.extent;
              if a.Op.kind = Op.Reduction then
                ignore (push (Rfactor outer.S.lname))
            end
          end
      | _ -> ())
    (shuffle rng op.Op.axes);
  (* 3. tasklet binding: a small spatial segment — or, for pure
     reductions, a reduction segment (tasklet-level reduction), which
     the lowering requires there. *)
  let thread_ok (l : S.loop) =
    is_serial l && l.S.extent <= 16
    && if pure_red then is_reduction op l else not (is_reduction op l)
  in
  (if pure_red || Rng.int rng 10 < 7 then
     match shuffle rng (List.filter thread_ok (S.order s)) with
     | l :: _ -> ignore (push (Bind (l.S.lname, S.Thread_x)))
     | [] -> ());
  let thread_red =
    match S.thread_loop s with Some l -> is_reduction op l | None -> false
  in
  (* 4. reorder into blocks-prefix structure, then search a shuffle of
     the remaining loops under which every tensor has a legal cache
     location. *)
  let blocks = shuffle rng (S.block_loops s) in
  let thread = Option.to_list (S.thread_loop s) in
  let rest =
    List.filter
      (fun (l : S.loop) -> not (S.is_block l || is_thread l))
      (S.order s)
  in
  (* canonical fallback: spatial segments (axis declaration order,
     outermost first), then reduction segments — always placeable. *)
  let canonical =
    List.concat_map
      (fun (a : Op.axis) ->
        List.filter (fun (l : S.loop) -> not (is_reduction op l)) rest
        |> List.filter (fun (l : S.loop) -> String.equal l.S.axis a.Op.aname))
      op.Op.axes
    @ List.filter (fun (l : S.loop) -> is_reduction op l) rest
  in
  let tensors =
    List.map fst op.Op.inputs @ [ fst op.Op.output ]
  in
  let placements order =
    let place t =
      let for_write = String.equal t (fst op.Op.output) in
      match cache_locs op order ~thread_red ~for_write t with
      | [] -> None
      | locs -> Some (t, Rng.pick rng locs)
    in
    let rec all = function
      | [] -> Some []
      | t :: ts -> (
          match place t with
          | None -> None
          | Some p -> Option.map (fun ps -> p :: ps) (all ts))
    in
    all tensors
  in
  let try_orders =
    List.init 6 (fun _ -> blocks @ thread @ shuffle rng rest)
    @ [ blocks @ thread @ canonical ]
  in
  let committed =
    List.find_map
      (fun order ->
        match placements order with
        | Some ps -> Some (order, ps)
        | None -> None)
      try_orders
  in
  (match committed with
  | None -> ()  (* no placement found: candidate will be rejected at lowering *)
  | Some (order, ps) ->
      ignore (push (Reorder (List.map (fun (l : S.loop) -> l.S.lname) order)));
      List.iter
        (fun (t, (loc : S.loop)) ->
          let st =
            if String.equal t (fst op.Op.output) then
              Cache_write (t, loc.S.lname)
            else Cache_read (t, loc.S.lname)
          in
          ignore (push st))
        (shuffle rng ps));
  (* 5. trailing annotations. *)
  (if Rng.int rng 10 < 4 then
     match List.rev (S.serial_loops s) with
     | l :: _ when l.S.extent <= 32 -> ignore (push (Unroll l.S.lname))
     | _ -> ());
  (if Rng.int rng 10 < 3 then
     match shuffle rng (S.serial_loops s) with
     | l :: _ -> ignore (push (Parallel (l.S.lname, Rng.pick rng [ 2; 4 ])))
     | [] -> ());
  List.rev !steps
