(* Graph mode for the differential fuzzer: random small dataflow
   graphs through the graph compiler, checked against the per-op
   reference chain and across executors.  See graph_fuzz.mli. *)

module Nets = Imtp_workload.Nets
module Ops = Imtp_workload.Ops
module Graph = Imtp_graph.Graph
module Rng = Imtp_autotune.Rng
module T = Imtp_tensor.Tensor

type outcome = {
  cases : int;
  rejected : int;
  fused_total : int;
  resident_total : int;
  failures : (int * string) list;
}

(* Random chain of 1-D elementwise ops with occasional matrix-vector
   transitions, odd non-power-of-two extents, and deliberate fan-out
   (an intermediate bound twice, which must block fusion).  The spec is
   a plain Nets.t so the reference chain and the graph build share one
   description. *)
let random_spec rng ~seed ~index =
  let inputs = ref [] and nodes = ref [] in
  let n_inputs = ref 0 and n_nodes = ref 0 in
  let fresh_input shape =
    let name = Printf.sprintf "i%d" !n_inputs in
    incr n_inputs;
    inputs := (name, shape) :: !inputs;
    name
  in
  let push op args =
    let id = Printf.sprintf "n%d" !n_nodes in
    incr n_nodes;
    nodes := { Nets.id; op; args } :: !nodes;
    id
  in
  let extent () = Rng.pick rng [ 5; 7; 9; 12; 13; 17 ] in
  let n0 = extent () in
  let cur = ref (fresh_input [ n0 ]) and len = ref n0 in
  (* an earlier tensor retained for a diamond-shaped reuse at the end *)
  let saved = ref None in
  let steps = 3 + Rng.int rng 4 in
  for _ = 1 to steps do
    if Rng.int rng 4 = 0 && !saved = None then saved := Some (!cur, !len);
    match Rng.int rng 6 with
    | 0 -> cur := push (Ops.relu !len) [ ("A", !cur) ]
    | 1 ->
        let c = 2 + Rng.int rng 4 in
        cur := push (Ops.scale ~c !len) [ ("A", !cur) ]
    | 2 -> cur := push (Ops.va !len) [ ("A", !cur); ("B", fresh_input [ !len ]) ]
    | 3 ->
        (* both operands bound to the same tensor: a double use that
           must keep its producer unfused *)
        cur := push (Ops.va !len) [ ("A", !cur); ("B", !cur) ]
    | 4 ->
        let c = 1 + Rng.int rng 3 and d = 1 + Rng.int rng 3 in
        cur :=
          push (Ops.geva ~c ~d !len) [ ("A", !cur); ("B", fresh_input [ !len ]) ]
    | _ ->
        let r = extent () in
        let m = fresh_input [ r; !len ] in
        cur := push (Ops.mtv r !len) [ ("A", m); ("B", !cur) ];
        len := r
  done;
  (match !saved with
  | Some (old_id, old_len) when old_len = !len && old_id <> !cur ->
      ignore (push (Ops.va !len) [ ("A", !cur); ("B", old_id) ])
  | _ -> ());
  {
    Nets.sname = Printf.sprintf "fuzzgraph_s%d_c%d" seed index;
    inputs = List.rev !inputs;
    nodes = List.rev !nodes;
  }

let spec_of_seed ~seed ~index =
  let rng = Rng.stream ~base:seed ~index in
  random_spec rng ~seed ~index

let tensors_equal a b = T.to_value_list a = T.to_value_list b

(* One case: compile the graph fused+resident and unfused, run both,
   and demand
   - every unfused node output is bit-identical to the reference chain,
   - every materialized fused output is bit-identical to the reference,
   - the interpreter and the compiled executor agree buffer-by-buffer
     on the fused combined program. *)
let check ?(trials = 12) ~engine cfg ~seed ~index () =
  let spec = spec_of_seed ~seed ~index in
  let g, ids = Graph.of_spec spec in
  let fail fmt = Printf.ksprintf (fun m -> Error (spec, m)) fmt in
  let compile ~fuse ~resident =
    Graph.Compiled.compile ~trials ~seed:(seed + index) ~islands:1 ~fuse
      ~resident ~engine cfg g
  in
  match (compile ~fuse:true ~resident:true, compile ~fuse:false ~resident:false)
  with
  | Error m, _ | _, Error m -> Ok (`Rejected m)
  | Ok fused, Ok unfused -> (
      let inputs = Nets.random_inputs ~seed:(seed lxor index) spec in
      let refs = Nets.reference spec ~inputs in
      let uouts = Graph.Compiled.run unfused ~inputs in
      let fouts = Graph.Compiled.run fused ~inputs in
      let diverging variant outs ~require_all =
        List.find_map
          (fun (id, want) ->
            let gname = Graph.tid_name (List.assoc id ids) in
            match List.assoc_opt gname outs with
            | Some got when tensors_equal got want -> None
            | Some _ -> Some (variant, id, gname, "diverges from reference")
            | None when require_all ->
                Some (variant, id, gname, "not materialized")
            | None -> None)
          refs
      in
      match
        ( diverging "unfused" uouts ~require_all:true,
          diverging "fused" fouts ~require_all:false )
      with
      | Some (v, id, gname, what), _ | _, Some (v, id, gname, what) ->
          fail "%s %s (%s) %s" v id gname what
      | None, None -> (
          let prog = Graph.Compiled.program fused in
          let eouts, ecounters = Imtp_tir.Eval.run_counted prog ~inputs in
          let compiled = Imtp_tir.Exec.compile prog in
          let couts, ccounters = Imtp_tir.Exec.run_compiled compiled ~inputs in
          if ecounters <> ccounters then
            fail "executor counters diverge on the combined program"
          else
            match
              List.find_opt
                (fun (name, ev) ->
                  match List.assoc_opt name couts with
                  | Some cv -> not (tensors_equal ev cv)
                  | None -> true)
                eouts
            with
            | Some (name, _) ->
                fail "executors diverge on combined-program buffer %s" name
            | None ->
                Ok
                  (`Checked
                    ( Graph.Compiled.fused_count fused,
                      Graph.Compiled.resident_count fused ))))

let describe_spec (spec : Nets.t) =
  String.concat "; "
    (List.map
       (fun (n : Nets.node) ->
         Printf.sprintf "%s=%s(%s)" n.Nets.id (fst n.Nets.op.Imtp_workload.Op.output)
           (String.concat ","
              (List.map (fun (k, v) -> k ^ ":" ^ v) n.Nets.args)))
       spec.Nets.nodes)

let run ?(trials = 12) ?progress ~seed ~cases () =
  let cfg = Imtp_upmem.Config.default in
  let engine = Imtp_engine.Engine.create cfg in
  let rejected = ref 0 and fused_total = ref 0 and resident_total = ref 0 in
  let failures = ref [] in
  for index = 0 to cases - 1 do
    (match check ~trials ~engine cfg ~seed ~index () with
    | Ok (`Rejected _) -> incr rejected
    | Ok (`Checked (f, r)) ->
        fused_total := !fused_total + f;
        resident_total := !resident_total + r
    | Error (spec, m) ->
        failures :=
          (index, Printf.sprintf "%s\n    graph: %s" m (describe_spec spec))
          :: !failures);
    Option.iter (fun f -> f index) progress
  done;
  {
    cases;
    rejected = !rejected;
    fused_total = !fused_total;
    resident_total = !resident_total;
    failures = List.rev !failures;
  }

let summary ~seed o =
  let b = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string b)
    "graph fuzz: %d cases (seed %d), %d rejected, %d nodes fused away, %d \
     resident edges, %d failures\n"
    o.cases seed o.rejected o.fused_total o.resident_total
    (List.length o.failures);
  List.iter
    (fun (index, m) ->
      Printf.ksprintf (Buffer.add_string b)
        "  case %d (reproduce: fuzz --graph --seed %d --cases %d): %s\n" index
        seed (index + 1) m)
    o.failures;
  Buffer.contents b
