(** Greedy minimization of failing cases.

    Shrinking is deterministic: it only ever removes schedule steps or
    shrinks workload dimensions, re-running the oracle after each
    candidate edit and keeping edits under which the case still fails.
    Because steps are replayed through {!Gen_sched.replay}, dropping a
    step whose later steps referenced its loops simply makes those
    later steps no-ops — the replayed schedule stays well-formed. *)

val minimize_with :
  still_fails:(Oracle.case -> bool) -> Oracle.case -> Oracle.case
(** [minimize_with ~still_fails case] greedily minimizes [case],
    assuming [still_fails case] holds on entry.  The predicate is
    called at most a few hundred times. *)

val minimize : Oracle.case -> Oracle.case
(** {!minimize_with} with the real oracle: a case "still fails" when
    {!Oracle.check} returns [Failed _]. *)
