(** The differential-testing oracle.

    A {!case} packages everything needed to deterministically rebuild
    one experiment: a workload, a replayable schedule-step list,
    lowering options, an optional pass configuration beyond the four
    standard ablations, and the input seed.

    {!check} lowers the schedule and, for every pass configuration,
    runs the program on the functional interpreter and compares

    - the output tensor bit-exactly against the operator's reference
      semantics ({!Imtp_workload.Op.reference}), and
    - the interpreter's dynamic DMA counters exactly against the
      analytic enumeration {!Imtp_tir.Cost.dma_counts}.

    When the compiled executor backend is active (the default — see
    {!Imtp_tir.Exec}), every case additionally runs through both the
    compiled executor and the interpreter and demands bit-identical
    outputs, counters and errors, reporting any divergence as
    {!Executor_mismatch}.

    Schedules the lowering rejects are reported as {!Rejected} — they
    are discarded draws, not failures. *)

type case = {
  workload : Gen_workload.t;
  steps : Gen_sched.step list;
  options : Imtp_lower.Lowering.options;
  extra_config : (string * Imtp_passes.Pipeline.config) option;
  input_seed : int;
}

type failure =
  | Output_mismatch of {
      config : string;
      index : int;  (** first diverging flat element. *)
      got : string;
      want : string;
    }
  | Counter_mismatch of {
      config : string;
      field : string;  (** ["dma_ops"] or ["dma_elems"]. *)
      executed : int;
      analytic : int;
    }
  | Crash of { config : string; message : string }
  | Executor_mismatch of { config : string; detail : string }
      (** The compiled executor ({!Imtp_tir.Exec}) diverged from the
          interpreter on outputs, counters or raised errors.  Checked
          on every case whenever the compiled backend is active. *)

type verdict =
  | Passed of { configs_checked : int }
  | Rejected of string
  | Failed of failure

val engine : Imtp_engine.Engine.t
(** The oracle's build engine: raw lowerings are memoized under
    {!case_key}, and every pass-pipeline application goes through it,
    so the fuzzer shares the compile path (and its cache telemetry)
    with the autotuner. *)

val case_key : case -> string
(** Content hash of everything that determines the raw lowering: the
    operator, the schedule steps and the lowering options. *)

val configs : case -> (string * Imtp_passes.Pipeline.config) list
(** The four ablations plus the case's extra configuration, if any. *)

val lower : case -> (Imtp_tir.Program.t, string) result
(** The unoptimized lowering of the case's schedule, served from the
    engine cache when the case was lowered before (a campaign checks
    each draw it previously probed, and the shrinker re-checks
    sub-candidates repeatedly). *)

val check : case -> verdict

val failure_to_string : failure -> string
