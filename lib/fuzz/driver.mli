(** Seeded differential-testing campaigns.

    A campaign derives one sub-seed per case from the campaign seed, so
    any single case can be rebuilt (and re-failed) from [seed] and its
    index alone.  Rejected draws — schedules the lowering refuses — are
    redrawn a bounded number of times and counted, never treated as
    failures. *)

type coverage = {
  split : int;
  reorder : int;
  bind : int;
  rfactor : int;
  unroll : int;
  parallel : int;
  cache_read : int;
  cache_write : int;
}
(** How many checked cases exercised each schedule primitive.
    [cache_read] counts [cache_read]+[compute_at] pairs and
    [cache_write] counts [cache_write]+[reverse_compute_at] pairs,
    since the generator always emits them together. *)

type outcome = {
  cases : int;  (** cases actually checked (excludes rejected draws). *)
  rejected : int;  (** draws discarded because lowering refused them. *)
  configs_checked : int;  (** total (case, pass-config) pairs compared. *)
  coverage : coverage;
  failures : (int * Oracle.case * Oracle.failure) list;
      (** (case index, minimized case, failure), oldest first. *)
  cache_hits : int;
      (** lowerings served from {!Oracle.engine}'s cache this campaign. *)
  cache_lookups : int;  (** cache probes this campaign. *)
}

val case_of_seed : seed:int -> index:int -> Oracle.case option
(** Draw the case a campaign with [seed] would check at [index]:
    redraws on rejection like {!run} does, [None] if every redraw was
    rejected. *)

val run :
  ?jobs:int ->
  ?progress:(int -> unit) ->
  ?shrink:bool ->
  seed:int ->
  cases:int ->
  unit ->
  outcome
(** Run a campaign of [cases] checked cases, distributed over up to
    [jobs] worker domains (default {!Imtp_engine.Pool.default_jobs});
    every case is fully determined by [(seed, index)], so failures,
    coverage and counts are identical at any job count — only
    [cache_hits]/[cache_lookups], which report the shared oracle
    engine's counter deltas, can in principle vary if concurrent cases
    race on one key.  [progress] is called with each finished case
    index (serialized, but not necessarily in index order when
    [jobs > 1]).  Failing cases are minimized with {!Shrink.minimize}
    unless [shrink] is [false]. *)

val report_failure : int -> Oracle.case -> Oracle.failure -> string
(** A self-contained reproducer: case seed and index, workload,
    surviving schedule steps, the replayed schedule trace, the failure,
    and the unoptimized lowered program. *)

val summary : seed:int -> outcome -> string
(** One-paragraph campaign summary followed by reproducers for every
    failure. *)
