(* Greedy shrinking: drop schedule steps, then shrink dimensions,
   repeating until a fixpoint (or until the attempt budget runs out).
   Every candidate is validated by re-running the caller's failure
   predicate, so the minimized case provably still fails. *)

let budget = 400

let drop_nth steps n = List.filteri (fun i _ -> i <> n) steps

(* Candidate replacements for a dimension, largest first so the
   greedy pass takes big steps when it can. *)
let dim_candidates d =
  List.sort_uniq compare
    (List.filter (fun c -> c >= 1 && c < d) [ 1; 2; 3; d / 2; d - 1 ])

let minimize_with ~still_fails (case : Oracle.case) =
  Imtp_obs.Obs.span ~name:"fuzz.shrink" @@ fun () ->
  let tries = ref 0 in
  let fails c =
    incr tries;
    Imtp_obs.Obs.incr "fuzz.shrink_steps";
    !tries <= budget && still_fails c
  in
  (* One pass of step-dropping: try removing each step in turn,
     front to back, restarting the scan after every success so the
     indices stay meaningful. *)
  let rec drop_steps (c : Oracle.case) =
    let n = List.length c.steps in
    let rec scan i =
      if i >= n then c
      else
        let c' = { c with steps = drop_nth c.steps i } in
        if fails c' then drop_steps c' else scan (i + 1)
    in
    scan 0
  in
  let rec shrink_dims (c : Oracle.case) =
    let dims = Gen_workload.dims c.workload in
    let rec scan i =
      if i >= List.length dims then c
      else
        let d = List.nth dims i in
        let rec try_cands = function
          | [] -> scan (i + 1)
          | cand :: rest -> (
              let dims' = List.mapi (fun j x -> if j = i then cand else x) dims in
              match Gen_workload.with_dims c.workload dims' with
              | exception Invalid_argument _ -> try_cands rest
              | w ->
                  let c' = { c with workload = w } in
                  if fails c' then shrink_dims c' else try_cands rest)
        in
        try_cands (dim_candidates d)
    in
    scan 0
  in
  let rec fix c =
    let c' = shrink_dims (drop_steps c) in
    if !tries > budget || c' = c then c' else fix c'
  in
  fix case

let minimize case =
  minimize_with
    ~still_fails:(fun c ->
      match Oracle.check c with
      | Oracle.Failed _ -> true
      | Oracle.Passed _ | Oracle.Rejected _ -> false)
    case
