(** Random workload generation for the differential-testing subsystem.

    Draws operators across every supported iteration-domain family
    (elementwise — including randomized element expressions — pure
    reduction, matrix-vector, batched, and GEMM) with deliberately odd,
    non-power-of-two extents, the shapes that stress boundary-check
    generation and the PIM-aware passes that remove those checks.

    A workload is a value, not an [Op.t]: it records the family and the
    dimension list so the shrinker can rebuild smaller instances of the
    same computation ({!with_dims}). *)

type kind =
  | Va
  | Geva of int * int  (** scalar coefficients c, d. *)
  | Elemwise of Imtp_workload.Op.elem  (** randomized body over A, B. *)
  | Red
  | Mtv
  | Gemv of int  (** scalar coefficient c. *)
  | Ttv
  | Mmtv
  | Gemm

type t = { kind : kind; dims : int list }

val random : Imtp_autotune.Rng.t -> t
(** Dimension extents are biased toward odd and non-power-of-two
    values, and the total iteration-domain size is capped so a fuzz
    case evaluates in milliseconds on the functional simulator. *)

val op : t -> Imtp_workload.Op.t
val dims : t -> int list

val with_dims : t -> int list -> t
(** Same computation over different extents (used by shrinking).
    @raise Invalid_argument on an arity mismatch. *)

val describe : t -> string
