module Rng = Imtp_autotune.Rng
module S = Imtp_schedule.Sched
module Printer = Imtp_tir.Printer
module Obs = Imtp_obs.Obs

type coverage = {
  split : int;
  reorder : int;
  bind : int;
  rfactor : int;
  unroll : int;
  parallel : int;
  cache_read : int;
  cache_write : int;
}

type outcome = {
  cases : int;
  rejected : int;
  configs_checked : int;
  coverage : coverage;
  failures : (int * Oracle.case * Oracle.failure) list;
  cache_hits : int;
  cache_lookups : int;
}

let no_coverage =
  {
    split = 0;
    reorder = 0;
    bind = 0;
    rfactor = 0;
    unroll = 0;
    parallel = 0;
    cache_read = 0;
    cache_write = 0;
  }

(* A case "exercises" a primitive if at least one surviving step uses
   it; count each primitive at most once per case. *)
let add_coverage cov steps =
  let has p = if List.exists p steps then 1 else 0 in
  {
    split = cov.split + has (function Gen_sched.Split _ -> true | _ -> false);
    reorder = cov.reorder + has (function Gen_sched.Reorder _ -> true | _ -> false);
    bind = cov.bind + has (function Gen_sched.Bind _ -> true | _ -> false);
    rfactor = cov.rfactor + has (function Gen_sched.Rfactor _ -> true | _ -> false);
    unroll = cov.unroll + has (function Gen_sched.Unroll _ -> true | _ -> false);
    parallel =
      cov.parallel + has (function Gen_sched.Parallel _ -> true | _ -> false);
    cache_read =
      cov.cache_read + has (function Gen_sched.Cache_read _ -> true | _ -> false);
    cache_write =
      cov.cache_write
      + has (function Gen_sched.Cache_write _ -> true | _ -> false);
  }

(* Deterministic per-(index, attempt) sub-seed.  The multipliers are
   arbitrary odd primes; all that matters is that distinct (seed,
   index, attempt) triples land on distinct streams. *)
let case_seed ~seed ~index ~attempt =
  (seed * 1_000_003) + (index * 8_191) + (attempt * 131) + 17

let max_redraws = 20

let draw ~seed ~index ~attempt =
  let cs = case_seed ~seed ~index ~attempt in
  let rng = Rng.create ~seed:cs in
  let workload = Gen_workload.random rng in
  let op = Gen_workload.op workload in
  let steps = Gen_sched.random rng op in
  let options = Gen_passes.random_options rng in
  let extra_config = Some (Gen_passes.random rng) in
  { Oracle.workload; steps; options; extra_config; input_seed = cs }

(* Redraw until the lowering accepts the schedule, like [run] does. *)
let case_of_seed ~seed ~index =
  let rec go attempt =
    if attempt >= max_redraws then None
    else
      let case = draw ~seed ~index ~attempt in
      match Oracle.lower case with
      | Ok _ -> Some case
      | Error _ -> go (attempt + 1)
  in
  go 0

let run ?jobs ?(progress = fun _ -> ()) ?(shrink = true) ~seed ~cases () =
  let module Engine = Imtp_engine.Engine in
  let module Pool = Imtp_engine.Pool in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  Obs.span ~name:"fuzz.campaign"
    ~attrs:
      [
        ("seed", Obs.Int seed);
        ("cases", Obs.Int cases);
        ("jobs", Obs.Int jobs);
      ]
  @@ fun () ->
  let t0 = Obs.now_s () in
  let c0 = Engine.counters Oracle.engine in
  let cases = max 0 cases in
  let parent = Obs.current_span_id () in
  let progress_lock = Mutex.create () in
  (* Each case is fully determined by (seed, index) — redraws included —
     so cases check independently on worker domains and the fold below
     reassembles them in index order.  Redraw on rejection; if every
     redraw is rejected the last draw still counts as one (rejected)
     checked case so campaigns always finish.  Shrinking a failure runs
     entirely on the domain that found it. *)
  let check_case index =
    Obs.with_ambient_parent parent @@ fun () ->
    Obs.span ~name:"fuzz.case" ~attrs:[ ("index", Obs.Int index) ]
    @@ fun () ->
    let rec attempt_loop attempt rejects =
      let case = draw ~seed ~index ~attempt in
      match Oracle.check case with
      | Oracle.Rejected _ when attempt + 1 < max_redraws ->
          Obs.incr "fuzz.rejected_draws";
          attempt_loop (attempt + 1) (rejects + 1)
      | Oracle.Rejected _ ->
          Obs.incr "fuzz.rejected_draws";
          (rejects + 1, `Gave_up)
      | Oracle.Passed { configs_checked = n } ->
          Obs.incr ~by:n "fuzz.configs_checked";
          let op = Gen_workload.op case.Oracle.workload in
          let _, surviving = Gen_sched.replay op case.Oracle.steps in
          (rejects, `Passed (n, surviving))
      | Oracle.Failed _ ->
          Obs.incr "fuzz.failures";
          let min_case = if shrink then Shrink.minimize case else case in
          let failure =
            match Oracle.check min_case with
            | Oracle.Failed f -> f
            | Oracle.Passed _ | Oracle.Rejected _ -> (
                (* the shrinker guarantees this can't happen, but fall
                   back to the original failure rather than crash. *)
                match Oracle.check case with
                | Oracle.Failed f -> f
                | _ -> assert false)
          in
          (rejects, `Failed (min_case, failure))
    in
    let r = attempt_loop 0 0 in
    Obs.incr "fuzz.cases";
    Mutex.protect progress_lock (fun () -> progress index);
    r
  in
  let results = Pool.map ~jobs check_case cases in
  let rejected = ref 0 in
  let configs_checked = ref 0 in
  let coverage = ref no_coverage in
  let failures = ref [] in
  Array.iteri
    (fun index (rejects, out) ->
      rejected := !rejected + rejects;
      match out with
      | `Gave_up -> ()
      | `Passed (n, surviving) ->
          configs_checked := !configs_checked + n;
          coverage := add_coverage !coverage surviving
      | `Failed (min_case, failure) ->
          failures := (index, min_case, failure) :: !failures)
    results;
  let elapsed_s = Obs.now_s () -. t0 in
  if elapsed_s > 0. then
    Obs.set_gauge "fuzz.cases_per_s" (float_of_int cases /. elapsed_s);
  let c1 = Engine.counters Oracle.engine in
  Engine.log_summary Oracle.engine;
  {
    cases;
    rejected = !rejected;
    configs_checked = !configs_checked;
    coverage = !coverage;
    failures = List.rev !failures;
    cache_hits = c1.Engine.hits - c0.Engine.hits;
    cache_lookups = c1.Engine.lookups - c0.Engine.lookups;
  }

let report_failure index (case : Oracle.case) failure =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "=== fuzz failure (case %d) ===\n" index;
  pf "workload:     %s\n" (Gen_workload.describe case.workload);
  pf "input seed:   %d\n" case.input_seed;
  pf "lowering:     %s\n" (Gen_passes.options_to_string case.options);
  (match case.extra_config with
  | Some (name, _) -> pf "extra config: %s\n" name
  | None -> ());
  pf "steps:\n";
  List.iter (fun st -> pf "  %s\n" (Gen_sched.step_to_string st)) case.steps;
  let op = Gen_workload.op case.workload in
  let sched, surviving = Gen_sched.replay op case.steps in
  if List.length surviving <> List.length case.steps then
    pf "(%d of %d steps survive replay)\n" (List.length surviving)
      (List.length case.steps);
  pf "schedule trace:\n";
  List.iter (fun line -> pf "  %s\n" line) (S.trace sched);
  pf "failure:      %s\n" (Oracle.failure_to_string failure);
  (match Oracle.lower case with
  | Ok prog -> pf "lowered program (before passes):\n%s" (Printer.program_to_string prog)
  | Error m -> pf "lowering now fails: %s\n" m);
  Buffer.contents buf

let coverage_to_string c =
  Printf.sprintf
    "split=%d reorder=%d bind=%d rfactor=%d unroll=%d parallel=%d \
     cache_read=%d cache_write=%d"
    c.split c.reorder c.bind c.rfactor c.unroll c.parallel c.cache_read
    c.cache_write

let summary ~seed outcome =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "fuzz campaign: seed=%d cases=%d rejected_draws=%d pass_configs_checked=%d\n"
    seed outcome.cases outcome.rejected outcome.configs_checked;
  pf "engine cache: %d/%d lowering lookups served from cache\n"
    outcome.cache_hits outcome.cache_lookups;
  pf "coverage: %s\n" (coverage_to_string outcome.coverage);
  (match outcome.failures with
  | [] -> pf "no failures.\n"
  | fs ->
      pf "%d FAILURE(S):\n" (List.length fs);
      List.iter
        (fun (index, case, failure) ->
          Buffer.add_string buf (report_failure index case failure))
        fs);
  Buffer.contents buf
