(** Graph mode for the differential fuzzer.

    Each case draws a small random dataflow graph — chains of
    elementwise ops with matrix-vector transitions, odd extents, and
    deliberate fan-out that must block fusion — compiles it through
    the graph compiler twice (fused + MRAM-resident, and per-op), and
    demands

    - every node of the unfused variant bit-identical to the per-op
      reference chain ({!Imtp_workload.Nets.reference}),
    - every materialized output of the fused variant bit-identical to
      the same reference, and
    - the interpreter and the compiled executor in agreement
      buffer-by-buffer (outputs and counters) on the fused combined
      program.

    Cases are fully determined by [(seed, index)] — a failure
    reproduces from the campaign seed alone.  Graphs the compiler
    refuses at the tiny per-case trial budget are counted as rejected,
    never as failures. *)

type outcome = {
  cases : int;
  rejected : int;  (** cases the compiler refused (no valid candidate). *)
  fused_total : int;  (** nodes fused away, summed over the campaign. *)
  resident_total : int;  (** resident edges, summed over the campaign. *)
  failures : (int * string) list;  (** (case index, diagnosis). *)
}

val spec_of_seed : seed:int -> index:int -> Imtp_workload.Nets.t
(** The spec a campaign with [seed] checks at [index]. *)

val run :
  ?trials:int ->
  ?progress:(int -> unit) ->
  seed:int ->
  cases:int ->
  unit ->
  outcome
(** Run a campaign of [cases] graph cases ([trials] defaults to 12 per
    case, split across each graph's distinct ops; island count is
    pinned to 1 so outcomes do not depend on the host's core count). *)

val summary : seed:int -> outcome -> string
(** One-line campaign summary plus a reproducer line per failure. *)
