(** Random pass-configuration and lowering-option sampling.

    The oracle always checks the four Fig. 12 ablations; {!random}
    additionally draws from the full 8-point toggle lattice of
    {!Imtp_passes.Pipeline.all_configs} so pass interactions outside
    the paper's ablation path (e.g. branch hoisting without loop
    tightening) are exercised too. *)

val ablations : (string * Imtp_passes.Pipeline.config) list
(** {!Imtp_passes.Pipeline.ablations}, re-exported for the oracle. *)

val random : Imtp_autotune.Rng.t -> string * Imtp_passes.Pipeline.config
(** Uniform over all eight toggle combinations. *)

val random_options : Imtp_autotune.Rng.t -> Imtp_lower.Lowering.options
(** Random transfer coalescing / bank parallelism / host post-processing
    threads.  [skip_input_transfer] stays empty: skipping a transfer is
    only sound across launches, which a single-program oracle cannot
    model. *)

val options_to_string : Imtp_lower.Lowering.options -> string
