module Op = Imtp_workload.Op
module Ops = Imtp_workload.Ops
module Rng = Imtp_autotune.Rng

type kind =
  | Va
  | Geva of int * int
  | Elemwise of Op.elem
  | Red
  | Mtv
  | Gemv of int
  | Ttv
  | Mmtv
  | Gemm

type t = { kind : kind; dims : int list }

(* Odd / non-power-of-two biased extents: boundary checks only appear
   when tile factors fail to divide the axis, so round sizes are the
   uninteresting case here. *)
let dim_pool_1d =
  [ 1; 3; 5; 7; 9; 11; 13; 17; 19; 23; 29; 31; 33; 37; 41; 45; 61; 63; 65; 95; 100; 127; 129; 255; 500; 999 ]

let dim_pool_nd = [ 1; 2; 3; 5; 6; 7; 9; 11; 13; 15; 17; 19; 21; 23; 27; 31; 33; 37; 41; 45; 61; 63 ]

(* Keep the whole iteration domain small enough that enumerating it —
   the interpreter, the reference, and the exact DMA count all do —
   stays fast across a few hundred cases. *)
let max_work = 8_000

let rec draw_dims rng n =
  let ds = List.init n (fun _ -> Rng.pick rng dim_pool_nd) in
  if List.fold_left ( * ) 1 ds <= max_work then ds else draw_dims rng n

(* Random elementwise body over inputs A and B: a small expression tree
   of [+], [-], [*] with integer constants, guaranteed to reference at
   least one input. *)
let rec random_elem rng depth =
  if depth = 0 || Rng.int rng 3 = 0 then
    match Rng.int rng 4 with
    | 0 -> Op.Ref "A"
    | 1 -> Op.Ref "B"
    | _ -> Op.Const (Imtp_tensor.Value.Int (Rng.int rng 9 - 4))
  else
    let o = Rng.pick rng [ Op.Add; Op.Sub; Op.Mul ] in
    Op.Bin (o, random_elem rng (depth - 1), random_elem rng (depth - 1))

let rec refs_input = function
  | Op.Ref _ -> true
  | Op.Const _ | Op.Acc -> false
  | Op.Bin (_, a, b) -> refs_input a || refs_input b

let random_body rng =
  let rec go tries =
    let e = random_elem rng 2 in
    if refs_input e || tries > 4 then e else go (tries + 1)
  in
  go 0

let random rng =
  match Rng.int rng 9 with
  | 0 -> { kind = Va; dims = [ Rng.pick rng dim_pool_1d ] }
  | 1 ->
      {
        kind = Geva (1 + Rng.int rng 5, 1 + Rng.int rng 5);
        dims = [ Rng.pick rng dim_pool_1d ];
      }
  | 2 -> { kind = Elemwise (random_body rng); dims = [ Rng.pick rng dim_pool_1d ] }
  | 3 -> { kind = Red; dims = [ Rng.pick rng dim_pool_1d ] }
  | 4 -> { kind = Mtv; dims = draw_dims rng 2 }
  | 5 -> { kind = Gemv (1 + Rng.int rng 5); dims = draw_dims rng 2 }
  | 6 -> { kind = Ttv; dims = draw_dims rng 3 }
  | 7 -> { kind = Mmtv; dims = draw_dims rng 3 }
  | _ -> { kind = Gemm; dims = draw_dims rng 3 }

let dims t = t.dims

let arity t =
  match t.kind with
  | Va | Geva _ | Elemwise _ | Red -> 1
  | Mtv | Gemv _ -> 2
  | Ttv | Mmtv | Gemm -> 3

let with_dims t dims =
  if List.length dims <> arity t then
    invalid_arg "Gen_workload.with_dims: arity mismatch";
  if List.exists (fun d -> d < 1) dims then
    invalid_arg "Gen_workload.with_dims: non-positive extent";
  { t with dims }

let sp name extent = { Op.aname = name; extent; kind = Op.Spatial }

let op t =
  match (t.kind, t.dims) with
  | Va, [ n ] -> Ops.va n
  | Geva (c, d), [ n ] -> Ops.geva ~c ~d n
  | Elemwise body, [ n ] ->
      Op.create ~name:"elemwise" ~dtype:Imtp_tensor.Dtype.I32
        ~axes:[ sp "i" n ]
        ~inputs:[ ("A", [ "i" ]); ("B", [ "i" ]) ]
        ~output:("C", [ "i" ]) ~body
  | Red, [ n ] -> Ops.red n
  | Mtv, [ n; k ] -> Ops.mtv n k
  | Gemv c, [ n; k ] -> Ops.gemv ~c n k
  | Ttv, [ n; m; k ] -> Ops.ttv n m k
  | Mmtv, [ b; n; k ] -> Ops.mmtv b n k
  | Gemm, [ n; m; k ] -> Ops.gemm n m k
  | _, _ -> invalid_arg "Gen_workload.op: malformed dims"

let kind_name = function
  | Va -> "va"
  | Geva _ -> "geva"
  | Elemwise _ -> "elemwise"
  | Red -> "red"
  | Mtv -> "mtv"
  | Gemv _ -> "gemv"
  | Ttv -> "ttv"
  | Mmtv -> "mmtv"
  | Gemm -> "gemm"

let rec elem_str = function
  | Op.Ref t -> t
  | Op.Const v -> Imtp_tensor.Value.to_string v
  | Op.Acc -> "@acc"
  | Op.Bin (o, a, b) ->
      let os =
        match o with
        | Op.Add -> "+"
        | Op.Sub -> "-"
        | Op.Mul -> "*"
        | Op.Div -> "//"
        | Op.Min -> "min"
        | Op.Max -> "max"
      in
      Printf.sprintf "(%s %s %s)" (elem_str a) os (elem_str b)

let describe t =
  let base =
    Printf.sprintf "%s %s" (kind_name t.kind)
      (String.concat "x" (List.map string_of_int t.dims))
  in
  match t.kind with
  | Elemwise body -> Printf.sprintf "%s body=%s" base (elem_str body)
  | Geva (c, d) -> Printf.sprintf "%s c=%d d=%d" base c d
  | Gemv c -> Printf.sprintf "%s c=%d" base c
  | _ -> base
