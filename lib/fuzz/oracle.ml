module Op = Imtp_workload.Op
module Ops = Imtp_workload.Ops
module L = Imtp_lower.Lowering
module Pl = Imtp_passes.Pipeline
module T = Imtp_tensor
module Eval = Imtp_tir.Eval
module Exec = Imtp_tir.Exec
module Cost = Imtp_tir.Cost
module Engine = Imtp_engine.Engine

type case = {
  workload : Gen_workload.t;
  steps : Gen_sched.step list;
  options : L.options;
  extra_config : (string * Pl.config) option;
  input_seed : int;
}

type failure =
  | Output_mismatch of { config : string; index : int; got : string; want : string }
  | Counter_mismatch of {
      config : string;
      field : string;
      executed : int;
      analytic : int;
    }
  | Crash of { config : string; message : string }
  | Executor_mismatch of { config : string; detail : string }

type verdict =
  | Passed of { configs_checked : int }
  | Rejected of string
  | Failed of failure

let machine = Imtp_upmem.Config.default

(* The oracle's engine: raw lowerings are cached under a key derived
   from the case content, so a campaign's draw-then-check pattern (and
   the shrinker's repeated re-checks) lowers each candidate once. *)
let engine = Engine.create ~max_entries:8192 machine

let configs case =
  Pl.ablations
  @
  match case.extra_config with
  | Some (name, c) when not (List.mem_assoc name Pl.ablations) -> [ (name, c) ]
  | Some _ | None -> []

let case_key case =
  let op = Gen_workload.op case.workload in
  Engine.digest_parts
    (Engine.op_key op
     :: Engine.options_key case.options
     :: List.map Gen_sched.step_to_string case.steps)

let lower case =
  let result =
    Engine.lower_keyed engine ~key:(case_key case) (fun () ->
        let op = Gen_workload.op case.workload in
        let sched, _ = Gen_sched.replay op case.steps in
        match L.lower ~options:case.options sched with
        | prog -> Ok prog
        | exception L.Lower_error m -> Error (Engine.Lower_failed m))
  in
  match result with
  | Ok prog -> Ok prog
  | Error e -> Error (Engine.error_to_string e)

(* First index where two value lists diverge. *)
let first_diff got want =
  let rec go i g w =
    match (g, w) with
    | [], [] -> None
    | x :: g', y :: w' ->
        if T.Value.compare x y = 0 then go (i + 1) g' w' else Some (i, x, y)
    | x :: _, [] -> Some (i, x, T.Value.Int 0)
    | [], y :: _ -> Some (i, T.Value.Int 0, y)
  in
  go 0 got want

(* One run through an executor, with Eval.Error reified so the two
   executors' outcomes can be compared. *)
let outcome runner prog ~inputs =
  match runner prog ~inputs with
  | r -> Ok r
  | exception Eval.Error m -> Error m

let counter_fields (c : Eval.counters) =
  [
    ("kernel_stores", c.Eval.kernel_stores);
    ("kernel_loads", c.Eval.kernel_loads);
    ("dma_elems", c.Eval.dma_elems);
    ("dma_ops", c.Eval.dma_ops);
    ("xfer_elems_h2d", c.Eval.xfer_elems_h2d);
    ("xfer_elems_d2h", c.Eval.xfer_elems_d2h);
  ]

(* First divergence between a compiled and an interpreted run: every
   host buffer (not just the workload output), all six counters, and
   error-message parity. *)
let diff_outcomes compiled interpreted =
  match (compiled, interpreted) with
  | Error m1, Error m2 ->
      if String.equal m1 m2 then None
      else
        Some
          (Printf.sprintf "compiled raised %S, interpreter raised %S" m1 m2)
  | Ok _, Error m ->
      Some (Printf.sprintf "compiled succeeded, interpreter raised %S" m)
  | Error m, Ok _ ->
      Some (Printf.sprintf "compiled raised %S, interpreter succeeded" m)
  | Ok (o1, c1), Ok (o2, c2) -> (
      let rec outs a b =
        match (a, b) with
        | [], [] -> None
        | (n1, t1) :: a', (n2, t2) :: b' ->
            if not (String.equal n1 n2) then
              Some (Printf.sprintf "buffer order: %s vs %s" n1 n2)
            else if not (T.Tensor.equal t1 t2) then
              let d =
                first_diff
                  (T.Tensor.to_value_list t1)
                  (T.Tensor.to_value_list t2)
              in
              Some
                (match d with
                | Some (i, g, w) ->
                    Printf.sprintf "buffer %s[%d]: compiled %s, interpreter %s"
                      n1 i (T.Value.to_string g) (T.Value.to_string w)
                | None -> Printf.sprintf "buffer %s differs in shape/dtype" n1)
            else outs a' b'
        | _ -> Some "host buffer count differs"
      in
      match outs o1 o2 with
      | Some d -> Some d
      | None ->
          List.fold_left2
            (fun acc (f, x) (_, y) ->
              match acc with
              | Some _ -> acc
              | None ->
                  if x <> y then
                    Some
                      (Printf.sprintf "counter %s: compiled %d, interpreter %d"
                         f x y)
                  else None)
            None (counter_fields c1) (counter_fields c2))

(* Run [prog] through the selected executor.  Under the compiled
   backend this is a second differential axis: the staged executor must
   be bit-compatible with the interpreter on outputs, counters and
   raised errors, for every program the fuzzer can construct. *)
let executed_outcome prog ~inputs =
  match Exec.backend () with
  | Exec.Interp -> `Run (outcome Eval.run_counted prog ~inputs)
  | Exec.Compiled -> (
      let compiled = outcome Exec.run_counted prog ~inputs in
      let interpreted = outcome Eval.run_counted prog ~inputs in
      match diff_outcomes compiled interpreted with
      | Some detail -> `Mismatch detail
      | None -> `Run compiled)

let check_config op inputs want raw (name, config) =
  match
    let prog = Engine.optimize engine ~passes:config raw in
    match executed_outcome prog ~inputs with
    | `Mismatch detail -> `Mismatch (name, detail)
    | `Run (Error m) -> raise (Eval.Error m)
    | `Run (Ok (outs, counters)) ->
        let got =
          T.Tensor.to_value_list (List.assoc (fst op.Op.output) outs)
        in
        `Checked (prog, counters, got)
  with
  | exception Eval.Error m -> Some (Crash { config = name; message = m })
  | exception Cost.Error m -> Some (Crash { config = name; message = m })
  | `Mismatch (config, detail) -> Some (Executor_mismatch { config; detail })
  | `Checked (prog, counters, got) -> (
      match first_diff got want with
      | Some (index, g, w) ->
          Some
            (Output_mismatch
               {
                 config = name;
                 index;
                 got = T.Value.to_string g;
                 want = T.Value.to_string w;
               })
      | None -> (
          match Cost.dma_counts prog with
          | exception Cost.Error m -> Some (Crash { config = name; message = m })
          | analytic ->
              if analytic.Cost.dma_ops <> counters.Eval.dma_ops then
                Some
                  (Counter_mismatch
                     {
                       config = name;
                       field = "dma_ops";
                       executed = counters.Eval.dma_ops;
                       analytic = analytic.Cost.dma_ops;
                     })
              else if analytic.Cost.dma_elems <> counters.Eval.dma_elems then
                Some
                  (Counter_mismatch
                     {
                       config = name;
                       field = "dma_elems";
                       executed = counters.Eval.dma_elems;
                       analytic = analytic.Cost.dma_elems;
                     })
              else None))

let check case =
  match lower case with
  | Error m -> Rejected m
  | Ok raw -> (
      let op = Gen_workload.op case.workload in
      let inputs = Ops.random_inputs ~seed:case.input_seed op in
      let want = T.Tensor.to_value_list (Op.reference op inputs) in
      let cfgs = configs case in
      let rec go checked = function
        | [] -> Passed { configs_checked = checked }
        | c :: rest -> (
            match check_config op inputs want raw c with
            | Some f -> Failed f
            | None -> go (checked + 1) rest)
      in
      go 0 cfgs)

let failure_to_string = function
  | Output_mismatch { config; index; got; want } ->
      Printf.sprintf
        "output mismatch under pass config '%s': C[%d] = %s, reference says %s"
        config index got want
  | Counter_mismatch { config; field; executed; analytic } ->
      Printf.sprintf
        "counter divergence under pass config '%s': interpreter executed %s=%d, \
         analytic model says %d"
        config field executed analytic
  | Crash { config; message } ->
      Printf.sprintf "crash under pass config '%s': %s" config message
  | Executor_mismatch { config; detail } ->
      Printf.sprintf
        "compiled executor diverges from interpreter under pass config '%s': %s"
        config detail
