module Pl = Imtp_passes.Pipeline
module L = Imtp_lower.Lowering
module Rng = Imtp_autotune.Rng

let ablations = Pl.ablations

let random rng = Rng.pick rng Pl.all_configs

let random_options rng =
  {
    L.bulk_transfer = Rng.bool rng;
    parallel_transfer = Rng.bool rng;
    host_reduce_threads = Rng.pick rng [ 1; 1; 2; 4 ];
    skip_input_transfer = [];
    skip_output_transfer = false;
    affine_guards = Rng.bool rng;
  }

let options_to_string (o : L.options) =
  Printf.sprintf
    "bulk_transfer=%b parallel_transfer=%b host_reduce_threads=%d \
     affine_guards=%b"
    o.L.bulk_transfer o.L.parallel_transfer o.L.host_reduce_threads
    o.L.affine_guards
