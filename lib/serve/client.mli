(** Client side of the serving protocol ([imtp client ...]).

    A {!t} is one connection with the hello exchange already done;
    requests and responses then alternate strictly, so a {!t} must not
    be shared across threads without external serialization.  Server
    failures arrive as typed {!Protocol.error_code}s; transport
    failures (socket gone, truncated response) are the [Transport]
    case. *)

module Json = Imtp_obs.Obs.Json

type t
(** A connected client. *)

type error =
  | Transport of string  (** connection-level failure. *)
  | Server of Protocol.error_code * string  (** typed server refusal. *)

val error_to_string : error -> string

val connect : socket:string -> (t, error) result
(** Connect to a daemon and negotiate the protocol version.  A version
    mismatch surfaces as [Server (Bad_version, _)].  Sets the process'
    SIGPIPE disposition to ignore, so a vanished daemon is a
    [Transport] error rather than a fatal signal. *)

val close : t -> unit
(** Close the connection; idempotent. *)

val request : t -> Protocol.request -> (Json.t, error) result
(** Send one request, wait for its response, return the [ok] body. *)

val run : t -> op:string -> sizes:int list -> (Json.t, error) result
val tune : t -> Protocol.tune_spec -> (Json.t, error) result
(** Blocks until the session finishes — possibly queued behind other
    clients first (the daemon's admission control), refused with
    [Server (Busy, _)] when the queue is full. *)

val replay : t -> log:string -> sizes:int list -> (Json.t, error) result
(** [log] is a path {e on the server's} filesystem. *)

val stats : t -> (Json.t, error) result
val shutdown : t -> (unit, error) result

val with_connection : socket:string -> (t -> ('a, error) result) -> ('a, error) result
(** Connect, run [f], always close (also on exceptions). *)
