(* The imtp serving protocol: length-prefixed JSON frames over a
   Unix-domain socket.  docs/PROTOCOL.md is the normative spec; this
   module is its executable form — framing, the request/response
   vocabulary, and the error-code table live here and nowhere else. *)

module Json = Imtp_obs.Obs.Json

let version = 1
let max_frame = 4 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Error codes                                                         *)
(* ------------------------------------------------------------------ *)

type error_code =
  | Bad_frame
  | Bad_version
  | Bad_request
  | Unknown_op
  | Engine_error
  | Busy
  | Shutting_down
  | Not_found
  | Too_large
  | Internal

let error_code_to_string = function
  | Bad_frame -> "bad_frame"
  | Bad_version -> "bad_version"
  | Bad_request -> "bad_request"
  | Unknown_op -> "unknown_op"
  | Engine_error -> "engine_error"
  | Busy -> "busy"
  | Shutting_down -> "shutting_down"
  | Not_found -> "not_found"
  | Too_large -> "too_large"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad_frame" -> Some Bad_frame
  | "bad_version" -> Some Bad_version
  | "bad_request" -> Some Bad_request
  | "unknown_op" -> Some Unknown_op
  | "engine_error" -> Some Engine_error
  | "busy" -> Some Busy
  | "shutting_down" -> Some Shutting_down
  | "not_found" -> Some Not_found
  | "too_large" -> Some Too_large
  | "internal" -> Some Internal
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

(* [read_exactly] restarts on EINTR; a connection reset mid-frame is
   indistinguishable from truncation for the reader's purposes, so
   both surface as [`Short]. *)
let read_exactly fd buf off len =
  let rec go off len got =
    if len = 0 then if got = 0 then `Empty else `Ok
    else
      match Unix.read fd buf off len with
      | 0 -> if got = 0 then `Empty else `Short
      | n -> go (off + n) (len - n) (got + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len got
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          if got = 0 then `Empty else `Short
  in
  go off len 0

let read_frame_unsafe fd =
  let hdr = Bytes.create 4 in
  match read_exactly fd hdr 0 4 with
  | `Empty -> Ok None
  | `Short -> Error (Bad_frame, "truncated length prefix")
  | `Ok ->
      let b i = Char.code (Bytes.get hdr i) in
      let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if len > max_frame then
        Error
          ( Too_large,
            Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len
              max_frame )
      else if len = 0 then Error (Bad_frame, "empty frame")
      else
        let payload = Bytes.create len in
        (match read_exactly fd payload 0 len with
        | `Ok -> Ok (Some (Bytes.unsafe_to_string payload))
        | `Empty | `Short ->
            Error
              ( Bad_frame,
                Printf.sprintf "truncated payload (expected %d bytes)" len ))

let read_frame fd =
  try read_frame_unsafe fd
  with Unix.Unix_error (e, _, _) -> Error (Bad_frame, Unix.error_message e)

let write_frame fd payload =
  let n = String.length payload in
  if n = 0 || n > max_frame then
    invalid_arg
      (Printf.sprintf "Protocol.write_frame: payload of %d bytes" n);
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  let rec go off len =
    if len > 0 then begin
      let w =
        try Unix.write fd b off len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + w) (len - w)
    end
  in
  go 0 (4 + n)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type tune_spec = {
  op : string;
  sizes : int list;
  trials : int;
  seed : int;
  measure_ratio : float option;
  islands : int option;
  session : string option;
}

type request =
  | Hello of int
  | Run of { op : string; sizes : int list }
  | Tune of tune_spec
  | Replay of { log : string; sizes : int list }
  | Stats
  | Shutdown

let request_to_json = function
  | Hello v ->
      Json.Obj [ ("type", Json.Str "hello"); ("version", Json.Num (float_of_int v)) ]
  | Run { op; sizes } ->
      Json.Obj
        [
          ("type", Json.Str "run");
          ("op", Json.Str op);
          ("sizes", Json.List (List.map (fun s -> Json.Num (float_of_int s)) sizes));
        ]
  | Tune { op; sizes; trials; seed; measure_ratio; islands; session } ->
      Json.Obj
        ([
           ("type", Json.Str "tune");
           ("op", Json.Str op);
           ( "sizes",
             Json.List (List.map (fun s -> Json.Num (float_of_int s)) sizes) );
           ("trials", Json.Num (float_of_int trials));
           ("seed", Json.Num (float_of_int seed));
         ]
        @ (match measure_ratio with
          | None -> []
          | Some r -> [ ("measure_ratio", Json.Num r) ])
        @ (match islands with
          | None -> []
          | Some k -> [ ("islands", Json.Num (float_of_int k)) ])
        @ match session with
          | None -> []
          | Some s -> [ ("session", Json.Str s) ])
  | Replay { log; sizes } ->
      Json.Obj
        [
          ("type", Json.Str "replay");
          ("log", Json.Str log);
          ("sizes", Json.List (List.map (fun s -> Json.Num (float_of_int s)) sizes));
        ]
  | Stats -> Json.Obj [ ("type", Json.Str "stats") ]
  | Shutdown -> Json.Obj [ ("type", Json.Str "shutdown") ]

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun m -> Error (Bad_request, m)) fmt

let as_int name = function
  | Json.Num f when Float.is_integer f && Float.abs f <= 1e15 ->
      Ok (int_of_float f)
  | _ -> err "field %S must be an integer" name

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> err "missing field %S" name

let str_field name j =
  let* v = field name j in
  match v with Json.Str s -> Ok s | _ -> err "field %S must be a string" name

let int_field name j =
  let* v = field name j in
  as_int name v

let sizes_field j =
  let* v = field "sizes" j in
  match v with
  | Json.List items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* n = as_int "sizes" item in
          if n < 1 then err "sizes must be positive" else Ok (n :: acc))
        (Ok []) items
      |> Result.map List.rev
  | _ -> err "field \"sizes\" must be a list of integers"

let request_of_json j =
  let* ty = str_field "type" j in
  match ty with
  | "hello" ->
      let* v = int_field "version" j in
      Ok (Hello v)
  | "run" ->
      let* op = str_field "op" j in
      let* sizes = sizes_field j in
      Ok (Run { op; sizes })
  | "tune" ->
      let* op = str_field "op" j in
      let* sizes = sizes_field j in
      let* trials = int_field "trials" j in
      let* seed = int_field "seed" j in
      let* measure_ratio =
        match Json.member "measure_ratio" j with
        | None | Some Json.Null -> Ok None
        | Some (Json.Num r) -> Ok (Some r)
        | Some _ -> err "field \"measure_ratio\" must be a number"
      in
      let* islands =
        match Json.member "islands" j with
        | None | Some Json.Null -> Ok None
        | Some v ->
            let* k = as_int "islands" v in
            if k < 1 then err "islands must be >= 1" else Ok (Some k)
      in
      let* session =
        match Json.member "session" j with
        | None | Some Json.Null -> Ok None
        | Some (Json.Str s) -> Ok (Some s)
        | Some _ -> err "field \"session\" must be a string"
      in
      if trials < 1 then err "trials must be >= 1"
      else Ok (Tune { op; sizes; trials; seed; measure_ratio; islands; session })
  | "replay" ->
      let* log = str_field "log" j in
      let* sizes = sizes_field j in
      Ok (Replay { log; sizes })
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | other -> err "unknown request type %S" other

let request_of_string s =
  match Json.of_string s with
  | Error m -> Error (Bad_request, "malformed JSON: " ^ m)
  | Ok j -> request_of_json j

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type response =
  | Resp_ok of Json.t
  | Resp_error of { code : error_code; message : string }

let response_to_json = function
  | Resp_ok body -> Json.Obj [ ("type", Json.Str "ok"); ("body", body) ]
  | Resp_error { code; message } ->
      Json.Obj
        [
          ("type", Json.Str "error");
          ("code", Json.Str (error_code_to_string code));
          ("message", Json.Str message);
        ]

let response_of_json j =
  let* ty = str_field "type" j in
  match ty with
  | "ok" ->
      let* body = field "body" j in
      Ok (Resp_ok body)
  | "error" ->
      let* code_s = str_field "code" j in
      let* message = str_field "message" j in
      (match error_code_of_string code_s with
      | Some code -> Ok (Resp_error { code; message })
      | None -> err "unknown error code %S" code_s)
  | other -> err "unknown response type %S" other

let response_of_string s =
  match Json.of_string s with
  | Error m -> Error (Bad_request, "malformed JSON: " ^ m)
  | Ok j -> response_of_json j

let send_request fd req =
  write_frame fd (Json.to_string (request_to_json req))

let send_response fd resp =
  write_frame fd (Json.to_string (response_to_json resp))

(* ------------------------------------------------------------------ *)
(* History digests                                                     *)
(* ------------------------------------------------------------------ *)

let history_digest (o : Imtp_autotune.Search.outcome) =
  let line (r : Imtp_autotune.Search.record) =
    Imtp_autotune.Tuning_log.entry_to_string
      {
        Imtp_autotune.Tuning_log.trial = r.Imtp_autotune.Search.trial;
        island = r.Imtp_autotune.Search.island;
        params = r.Imtp_autotune.Search.params;
        latency_s = r.Imtp_autotune.Search.latency_s;
        measured = r.Imtp_autotune.Search.measured;
        predicted_s = r.Imtp_autotune.Search.predicted_s;
      }
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          (List.map line o.Imtp_autotune.Search.history)))
