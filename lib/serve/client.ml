(* Client side of the serving protocol: connect, do the hello
   exchange, then strict request/response alternation.  Thin by
   design — all encoding lives in Protocol, so tests and the CLI can
   also drive a connection by hand (including malformed frames the
   typed API cannot produce). *)

module Json = Imtp_obs.Obs.Json
module P = Protocol

type t = { fd : Unix.file_descr; mutable closed : bool }

type error =
  | Transport of string
  | Server of P.error_code * string

let error_to_string = function
  | Transport m -> "transport: " ^ m
  | Server (code, m) -> P.error_code_to_string code ^ ": " ^ m

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let roundtrip fd req =
  match P.send_request fd req with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Transport (Unix.error_message e))
  | () -> (
      match P.read_frame fd with
      | Ok None -> Error (Transport "server closed the connection")
      | Error (_, m) -> Error (Transport m)
      | Ok (Some payload) -> (
          match P.response_of_string payload with
          | Error (_, m) -> Error (Transport ("bad response: " ^ m))
          | Ok (P.Resp_ok body) -> Ok body
          | Ok (P.Resp_error { code; message }) ->
              Error (Server (code, message))))

let connect ~socket =
  (* As in the daemon: a vanished server must be an EPIPE turned into
     [Transport], not a process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Transport (socket ^ ": " ^ Unix.error_message e))
  | () -> (
      match roundtrip fd (P.Hello P.version) with
      | Ok _ -> Ok { fd; closed = false }
      | Error e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error e)

let request t req =
  if t.closed then Error (Transport "connection is closed")
  else roundtrip t.fd req

let run t ~op ~sizes = request t (P.Run { op; sizes })
let tune t spec = request t (P.Tune spec)
let replay t ~log ~sizes = request t (P.Replay { log; sizes })
let stats t = request t P.Stats

let shutdown t =
  match request t P.Shutdown with Ok _ -> Ok () | Error e -> Error e

let with_connection ~socket f =
  match connect ~socket with
  | Error e -> Error e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
