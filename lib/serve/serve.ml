(* Tuning-as-a-service daemon.  One process owns one Engine (memo
   cache + compiled-executor cache + domain pool) and serves any
   number of clients over a Unix-domain socket speaking Protocol
   frames.  Connections get a systhread each; tune sessions pass
   through an admission scheduler (bounded queue, per-client
   round-robin) before they may run, and every session checkpoints to
   disk at generation boundaries so a killed daemon resumes
   bit-identically. *)

module Obs = Imtp_obs.Obs
module Json = Obs.Json
module Engine = Imtp_engine.Engine
module Pool = Imtp_engine.Pool
module Search = Imtp_autotune.Search
module Checkpoint = Imtp_autotune.Checkpoint
module Tuning_log = Imtp_autotune.Tuning_log
module Sketch = Imtp_autotune.Sketch
module Measure = Imtp_autotune.Measure
module Ops = Imtp_workload.Ops
module Op = Imtp_workload.Op
module Stats = Imtp_upmem.Stats
module P = Protocol

let src = Logs.Src.create "imtp.serve" ~doc:"imtp serving daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  socket : string;
  checkpoint_dir : string;
  max_sessions : int;
  queue_limit : int;
  checkpoint_every : int;
}

let default_config ~socket =
  {
    socket;
    checkpoint_dir = "imtp-checkpoints";
    max_sessions = 2;
    queue_limit = 16;
    checkpoint_every = 1;
  }

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type ledger = {
  mutable started : int;
  mutable completed : int;
  mutable interrupted : int;
  mutable resumed : int;
  mutable rejected_busy : int;
}

type state = {
  cfg : config;
  machine : Imtp_upmem.Config.t;
  engine : Engine.t;
  m : Mutex.t;
  cv : Condition.t;
  mutable stopping : bool;
  (* Admission scheduler: [queues] maps a client id to its waiting
     tickets in arrival order; [order] cycles the clients that have at
     least one waiting ticket; [granted] holds tickets whose waiters
     may proceed.  A client appears in [order] at most once, and goes
     to the back after each grant — per-client round-robin. *)
  mutable running : int;
  mutable queued : int;
  queues : (int, int Queue.t) Hashtbl.t;
  order : int Queue.t;
  granted : (int, unit) Hashtbl.t;
  mutable next_ticket : int;
  active_sessions : (string, unit) Hashtbl.t;
  ledger : ledger;
}

let make_state ?(machine = Imtp_upmem.Config.default) cfg =
  {
    cfg;
    machine;
    engine = Engine.create machine;
    m = Mutex.create ();
    cv = Condition.create ();
    stopping = false;
    running = 0;
    queued = 0;
    queues = Hashtbl.create 16;
    order = Queue.create ();
    granted = Hashtbl.create 16;
    next_ticket = 0;
    active_sessions = Hashtbl.create 16;
    ledger =
      {
        started = 0;
        completed = 0;
        interrupted = 0;
        resumed = 0;
        rejected_busy = 0;
      };
  }

(* ------------------------------------------------------------------ *)
(* Admission scheduling (all under [state.m])                          *)
(* ------------------------------------------------------------------ *)

let rec pump state =
  if state.running < state.cfg.max_sessions && not (Queue.is_empty state.order)
  then begin
    let c = Queue.pop state.order in
    (match Hashtbl.find_opt state.queues c with
    | None -> ()
    | Some q ->
        let ticket = Queue.pop q in
        if Queue.is_empty q then Hashtbl.remove state.queues c
        else Queue.push c state.order;
        Hashtbl.replace state.granted ticket ();
        state.running <- state.running + 1;
        state.queued <- state.queued - 1);
    Condition.broadcast state.cv;
    pump state
  end

let withdraw state client ticket =
  match Hashtbl.find_opt state.queues client with
  | None -> ()
  | Some q ->
      let keep = Queue.create () in
      Queue.iter
        (fun t -> if t <> ticket then Queue.push t keep else state.queued <- state.queued - 1)
        q;
      if Queue.is_empty keep then Hashtbl.remove state.queues client
      else Hashtbl.replace state.queues client keep

let acquire state client =
  Mutex.lock state.m;
  let r =
    if state.stopping then Error (P.Shutting_down, "daemon is shutting down")
    else if state.queued >= state.cfg.queue_limit then begin
      state.ledger.rejected_busy <- state.ledger.rejected_busy + 1;
      Error
        ( P.Busy,
          Printf.sprintf "tune queue is full (%d waiting, limit %d)"
            state.queued state.cfg.queue_limit )
    end
    else begin
      let ticket = state.next_ticket in
      state.next_ticket <- ticket + 1;
      (match Hashtbl.find_opt state.queues client with
      | Some q -> Queue.push ticket q
      | None ->
          let q = Queue.create () in
          Queue.push ticket q;
          Hashtbl.replace state.queues client q;
          Queue.push client state.order);
      state.queued <- state.queued + 1;
      pump state;
      while not (Hashtbl.mem state.granted ticket) && not state.stopping do
        Condition.wait state.cv state.m
      done;
      if Hashtbl.mem state.granted ticket then begin
        Hashtbl.remove state.granted ticket;
        Ok ()
      end
      else begin
        withdraw state client ticket;
        Error (P.Shutting_down, "daemon is shutting down")
      end
    end
  in
  Mutex.unlock state.m;
  r

let release state =
  Mutex.lock state.m;
  state.running <- state.running - 1;
  pump state;
  Condition.broadcast state.cv;
  Mutex.unlock state.m

(* ------------------------------------------------------------------ *)
(* Request handlers                                                    *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind
let jint n = Json.Num (float_of_int n)
let jfloat f = Json.Num f
let jstr s = Json.Str s
let jbool b = Json.Bool b

let build_op name sizes =
  if not (List.mem name Ops.all_names) then
    Error
      ( P.Unknown_op,
        Printf.sprintf "unknown op %S (expected one of: %s)" name
          (String.concat ", " Ops.all_names) )
  else
    match Ops.by_name name ~sizes with
    | op -> Ok op
    | exception (Invalid_argument m | Failure m) -> Error (P.Bad_request, m)

(* Mirrors the CLI's default schedule for `run`: a reasonable non-tuned
   configuration, not the search winner. *)
let default_params config op =
  let dpus = min 256 (Imtp_upmem.Config.nr_dpus config) in
  let p =
    {
      Sketch.default_params with
      Sketch.spatial_dpus = dpus;
      tasklets = 8;
      cache_elems = 32;
    }
  in
  match Sketch.family_of op with
  | Sketch.Tasklet_reduce -> { p with Sketch.reduction_dpus = dpus }
  | _ -> p

let handle_run state ~op ~sizes =
  let* op_t = build_op op sizes in
  match Engine.build state.engine op_t (default_params state.machine op_t) with
  | Error e -> Error (P.Engine_error, Engine.error_to_string e)
  | Ok art ->
      let inputs = Ops.random_inputs op_t in
      let outs, _ = Engine.execute art.Engine.program ~inputs in
      let got = List.assoc (fst op_t.Op.output) outs in
      let want = Op.reference op_t inputs in
      let valid =
        Imtp_tensor.Tensor.to_value_list got
        = Imtp_tensor.Tensor.to_value_list want
      in
      let s = art.Engine.stats in
      Ok
        (Json.Obj
           [
             ("op", jstr op);
             ("valid", jbool valid);
             ("total_s", jfloat (Stats.total_s s));
             ("h2d_s", jfloat s.Stats.h2d_s);
             ("kernel_s", jfloat s.Stats.kernel_s);
             ("d2h_s", jfloat s.Stats.d2h_s);
             ("host_s", jfloat s.Stats.host_s);
             ("dpus_used", jint s.Stats.dpus_used);
             ("tasklets_used", jint s.Stats.tasklets_used);
           ])

let valid_session_name s =
  s <> "" && s.[0] <> '.'
  && String.length s <= 128
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       s

let derived_session (t : P.tune_spec) =
  Printf.sprintf "%s-%s-s%d-t%d%s%s" t.op
    (String.concat "x" (List.map string_of_int t.sizes))
    t.seed t.trials
    (match t.measure_ratio with
    | None -> ""
    | Some r -> Printf.sprintf "-r%.0f" (100. *. r))
    (match t.islands with
    | None -> ""
    | Some k -> Printf.sprintf "-k%d" k)

let handle_tune state ~client (t : P.tune_spec) =
  let* op_t = build_op t.op t.sizes in
  let* session =
    match t.session with
    | Some s when not (valid_session_name s) ->
        Error
          ( P.Bad_request,
            Printf.sprintf
              "invalid session name %S (want [A-Za-z0-9._-]+, no leading dot)"
              s )
    | Some s -> Ok s
    | None -> Ok (derived_session t)
  in
  let claimed =
    Mutex.protect state.m (fun () ->
        if Hashtbl.mem state.active_sessions session then begin
          state.ledger.rejected_busy <- state.ledger.rejected_busy + 1;
          false
        end
        else begin
          Hashtbl.replace state.active_sessions session ();
          true
        end)
  in
  if not claimed then
    Error (P.Busy, Printf.sprintf "session %S is already running" session)
  else
    Fun.protect
      ~finally:(fun () ->
        Mutex.protect state.m (fun () ->
            Hashtbl.remove state.active_sessions session))
    @@ fun () ->
    let ckpt_path =
      Filename.concat state.cfg.checkpoint_dir (session ^ ".ckpt")
    in
    let* resume =
      if Sys.file_exists ckpt_path then
        match Checkpoint.load ckpt_path with
        | Ok ck -> Ok (Some ck)
        | Error m -> Error (P.Internal, m)
      else Ok None
    in
    let* () = acquire state client in
    Fun.protect ~finally:(fun () -> release state)
    @@ fun () ->
    Mutex.protect state.m (fun () ->
        state.ledger.started <- state.ledger.started + 1;
        if resume <> None then state.ledger.resumed <- state.ledger.resumed + 1);
    Obs.incr "serve.sessions.started";
    if resume <> None then Obs.incr "serve.sessions.resumed";
    Log.info (fun m ->
        m "session %s: op=%s trials=%d seed=%d%s%s" session t.op t.trials
          t.seed
          (match t.islands with
          | None -> ""
          | Some k -> Printf.sprintf " islands=%d" k)
          (if resume = None then "" else " (resumed)"));
    match
      Search.run ~seed:t.seed ?measure_ratio:t.measure_ratio
        ?islands:t.islands ~engine:state.engine ?resume
        ~on_checkpoint:(fun ck -> Checkpoint.save ckpt_path ck)
        ~checkpoint_every:state.cfg.checkpoint_every
        ~stop:(fun () -> state.stopping)
        state.machine op_t ~trials:t.trials
    with
    | exception Invalid_argument m -> Error (P.Bad_request, m)
    | outcome ->
        Mutex.protect state.m (fun () ->
            if outcome.Search.interrupted then
              state.ledger.interrupted <- state.ledger.interrupted + 1
            else state.ledger.completed <- state.ledger.completed + 1);
        Obs.incr
          (if outcome.Search.interrupted then "serve.sessions.interrupted"
           else "serve.sessions.completed");
        if not outcome.Search.interrupted then (
          try Sys.remove ckpt_path with Sys_error _ -> ());
        let best =
          match outcome.Search.best with
          | None -> Json.Null
          | Some b ->
              Json.Obj
                [
                  ( "params",
                    jstr (Tuning_log.params_to_string b.Measure.params) );
                  ("describe", jstr (Sketch.describe b.Measure.params));
                  ("latency_s", jfloat b.Measure.latency_s);
                ]
        in
        Ok
          (Json.Obj
             [
               ("session", jstr session);
               ("op", jstr t.op);
               ("trials", jint t.trials);
               ("history_len", jint (List.length outcome.Search.history));
               ("history_digest", jstr (P.history_digest outcome));
               ("best", best);
               ("interrupted", jbool outcome.Search.interrupted);
               ( "resumed_from",
                 match outcome.Search.resumed_from with
                 | None -> Json.Null
                 | Some k -> jint k );
               ("islands", jint outcome.Search.islands);
               ("measured_trials", jint outcome.Search.measured_trials);
               ("cache_hits", jint outcome.Search.cache_hits);
               ("elapsed_s", jfloat outcome.Search.elapsed_s);
             ])

let handle_replay state ~log ~sizes =
  if not (Sys.file_exists log) then Error (P.Not_found, log ^ ": no such file")
  else
    match Tuning_log.load log with
    | Error m -> Error (P.Bad_request, m)
    | Ok (hdr, entries) -> (
        let op_name = hdr.Tuning_log.op_name in
        let* op_t = build_op op_name sizes in
        match Tuning_log.best entries with
        | None -> Error (P.Engine_error, log ^ ": no measured entries")
        | Some e -> (
            match Engine.measure state.engine op_t e.Tuning_log.params with
            | Error err -> Error (P.Engine_error, Engine.error_to_string err)
            | Ok m ->
                Ok
                  (Json.Obj
                     [
                       ("op", jstr op_name);
                       ("entries", jint (List.length entries));
                       ("logged_latency_s", jfloat e.Tuning_log.latency_s);
                       ("remeasured_latency_s", jfloat m.Engine.latency_s);
                       ( "params",
                         jstr (Tuning_log.params_to_string e.Tuning_log.params)
                       );
                     ])))

let stats_body state =
  let active, queued, l =
    Mutex.protect state.m (fun () ->
        ( state.running,
          state.queued,
          {
            started = state.ledger.started;
            completed = state.ledger.completed;
            interrupted = state.ledger.interrupted;
            resumed = state.ledger.resumed;
            rejected_busy = state.ledger.rejected_busy;
          } ))
  in
  let c = Engine.counters state.engine in
  let p = Pool.stats () in
  let metrics =
    List.filter_map
      (function
        | Obs.Counter (name, v) -> Some (name, jint v)
        | Obs.Gauge (name, v) -> Some (name, jfloat v)
        | Obs.Histogram _ | Obs.Span _ -> None)
      (Obs.metrics ())
  in
  Json.Obj
    [
      ( "engine",
        Json.Obj
          [
            ("lookups", jint c.Engine.lookups);
            ("hits", jint c.Engine.hits);
            ("misses", jint c.Engine.misses);
            ("evictions", jint c.Engine.evictions);
            ("built", jint c.Engine.built);
            ("failed", jint c.Engine.failed);
            ("costed", jint c.Engine.costed);
            ("hit_rate", jfloat (Engine.hit_rate c));
          ] );
      ( "pool",
        Json.Obj
          [
            ("maps", jint p.Pool.maps);
            ("tasks", jint p.Pool.tasks);
            ("busy_s", jfloat p.Pool.busy_s);
            ("domains_spawned", jint p.Pool.domains_spawned);
            ("peak_busy", jint p.Pool.peak_busy);
            ("default_jobs", jint (Pool.default_jobs ()));
          ] );
      ( "sessions",
        Json.Obj
          [
            ("started", jint l.started);
            ("completed", jint l.completed);
            ("interrupted", jint l.interrupted);
            ("resumed", jint l.resumed);
            ("rejected_busy", jint l.rejected_busy);
            ("active", jint active);
            ("queued", jint queued);
          ] );
      ("metrics", Json.Obj metrics);
    ]

let dispatch state ~client req =
  Obs.incr "serve.requests";
  let result =
    match req with
    | P.Hello _ ->
        Error (P.Bad_request, "unexpected hello (version already negotiated)")
    | P.Run { op; sizes } ->
        Obs.incr "serve.requests.run";
        handle_run state ~op ~sizes
    | P.Tune t ->
        Obs.incr "serve.requests.tune";
        handle_tune state ~client t
    | P.Replay { log; sizes } ->
        Obs.incr "serve.requests.replay";
        handle_replay state ~log ~sizes
    | P.Stats ->
        Obs.incr "serve.requests.stats";
        Ok (stats_body state)
    | P.Shutdown ->
        Obs.incr "serve.requests.shutdown";
        Ok (Json.Obj [ ("stopping", jbool true) ])
  in
  match result with
  | Ok body -> P.Resp_ok body
  | Error (code, message) -> P.Resp_error { code; message }

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let initiate_shutdown state =
  Mutex.lock state.m;
  state.stopping <- true;
  Condition.broadcast state.cv;
  Mutex.unlock state.m

let stopping state =
  Mutex.lock state.m;
  let s = state.stopping in
  Mutex.unlock state.m;
  s

let hello_exchange state fd =
  match P.read_frame fd with
  | Ok None -> false
  | Error (code, message) ->
      (try P.send_response fd (P.Resp_error { code; message }) with _ -> ());
      false
  | Ok (Some payload) -> (
      match P.request_of_string payload with
      | Ok (P.Hello v) when v = P.version ->
          P.send_response fd
            (P.Resp_ok
               (Json.Obj
                  [
                    ("version", jint P.version);
                    ("server", jstr "imtp");
                    ("max_frame", jint P.max_frame);
                    ("stopping", jbool (stopping state));
                  ]));
          true
      | Ok (P.Hello v) ->
          P.send_response fd
            (P.Resp_error
               {
                 code = P.Bad_version;
                 message =
                   Printf.sprintf "server speaks protocol version %d, not %d"
                     P.version v;
               });
          false
      | Ok _ ->
          P.send_response fd
            (P.Resp_error
               {
                 code = P.Bad_request;
                 message = "first frame on a connection must be hello";
               });
          false
      | Error (code, message) ->
          (try P.send_response fd (P.Resp_error { code; message })
           with _ -> ());
          false)

(* Between requests the handler polls [select] so a draining daemon
   can close idle connections; a request in flight always gets its
   response first. *)
let handle_conn state fd client =
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  try
    if hello_exchange state fd then begin
      let rec loop () =
        match Unix.select [ fd ] [] [] 0.5 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | [], _, _ -> if not (stopping state) then loop ()
        | _ -> (
            match P.read_frame fd with
            | Ok None -> ()
            | Error (code, message) ->
                (try P.send_response fd (P.Resp_error { code; message })
                 with _ -> ())
            | Ok (Some payload) -> (
                match P.request_of_string payload with
                | Error (code, message) ->
                    P.send_response fd (P.Resp_error { code; message });
                    loop ()
                | Ok req ->
                    let resp =
                      try dispatch state ~client req
                      with e ->
                        P.Resp_error
                          {
                            code = P.Internal;
                            message = Printexc.to_string e;
                          }
                    in
                    P.send_response fd resp;
                    (match req with
                    | P.Shutdown -> initiate_shutdown state
                    | _ -> loop ())))
      in
      loop ()
    end
  with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* The daemon                                                          *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      Error (Printf.sprintf "%s: a daemon is already listening" path)
    else begin
      (* Stale socket from a killed daemon: reclaim it. *)
      (try Sys.remove path with Sys_error _ -> ());
      Ok ()
    end
  end
  else Ok ()

(* A peer that disappears mid-write must surface as EPIPE (handled at
   each send site), not as a process-killing SIGPIPE. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let run ?machine cfg =
  ignore_sigpipe ();
  if cfg.max_sessions < 1 then invalid_arg "Serve.run: max_sessions < 1";
  if cfg.queue_limit < 1 then invalid_arg "Serve.run: queue_limit < 1";
  if cfg.checkpoint_every < 1 then invalid_arg "Serve.run: checkpoint_every < 1";
  mkdir_p cfg.checkpoint_dir;
  match claim_socket cfg.socket with
  | Error m -> Error m
  | Ok () ->
      let state = make_state ?machine cfg in
      let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match Unix.bind lfd (Unix.ADDR_UNIX cfg.socket) with
      | () -> ()
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close lfd with Unix.Unix_error _ -> ());
          failwith (cfg.socket ^ ": " ^ Unix.error_message e));
      (* Sockets answer to whoever can connect — keep it owner-only. *)
      Unix.chmod cfg.socket 0o600;
      Unix.listen lfd 16;
      Log.info (fun m ->
          m "listening on %s (max_sessions=%d queue_limit=%d checkpoints in %s)"
            cfg.socket cfg.max_sessions cfg.queue_limit cfg.checkpoint_dir);
      let conns = ref [] in
      let next_client = ref 0 in
      let rec accept_loop () =
        if not (stopping state) then begin
          (match Unix.select [ lfd ] [] [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | [], _, _ -> ()
          | _ -> (
              match Unix.accept lfd with
              | fd, _ ->
                  let client = !next_client in
                  incr next_client;
                  Log.debug (fun m -> m "client %d connected" client);
                  conns :=
                    Thread.create (fun () -> handle_conn state fd client) ()
                    :: !conns
              | exception Unix.Unix_error _ -> ()));
          accept_loop ()
        end
      in
      accept_loop ();
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      List.iter Thread.join !conns;
      (try Sys.remove cfg.socket with Sys_error _ -> ());
      Log.info (fun m -> m "shut down cleanly");
      Ok ()
