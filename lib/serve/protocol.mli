(** The imtp serving protocol — the executable form of
    [docs/PROTOCOL.md] (the normative spec): length-prefixed JSON
    frames over a Unix-domain socket, a small request/response
    vocabulary, and a closed table of typed error codes.

    A frame is a 4-byte big-endian unsigned payload length followed by
    exactly that many bytes of UTF-8 JSON.  Every connection opens with
    a [hello] exchange that pins the protocol {!version}; after that,
    requests and responses alternate strictly — one response frame per
    request frame, in order. *)

module Json = Imtp_obs.Obs.Json

val version : int
(** Protocol version this build speaks (1).  A server rejects a
    [hello] carrying any other version with {!Bad_version}. *)

val max_frame : int
(** Largest accepted payload, bytes (4 MiB).  Larger length prefixes
    are answered with {!Too_large} and close the connection. *)

(** {1 Error codes}

    The closed set of machine-readable failure categories — the
    compatibility contract is that codes are only ever {e added}. *)

type error_code =
  | Bad_frame  (** unparsable framing: truncation, empty frame, I/O error. *)
  | Bad_version  (** [hello] version mismatch. *)
  | Bad_request  (** well-framed but malformed or ill-typed request. *)
  | Unknown_op  (** operation name outside the op registry. *)
  | Engine_error  (** build/measure/search failed; message has details. *)
  | Busy  (** admission queue full — retry later. *)
  | Shutting_down  (** daemon is draining; no new work accepted. *)
  | Not_found  (** referenced file (tuning log) does not exist. *)
  | Too_large  (** frame exceeds {!max_frame}. *)
  | Internal  (** unexpected server-side exception. *)

val error_code_to_string : error_code -> string
(** The wire name, e.g. [Bad_frame] ↦ ["bad_frame"]. *)

val error_code_of_string : string -> error_code option
(** Inverse of {!error_code_to_string}; [None] for unknown codes. *)

(** {1 Framing} *)

val read_frame : Unix.file_descr -> (string option, error_code * string) result
(** Read one frame.  [Ok None] is a clean close (EOF between frames);
    [Ok (Some payload)] is a complete frame; [Error] is truncation, an
    oversized length prefix, or an I/O failure — the connection cannot
    be resynchronized after one.  Never raises; restarts on [EINTR]. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame (length prefix + payload).
    @raise Invalid_argument on an empty or oversized payload.
    @raise Unix.Unix_error when the peer is gone. *)

(** {1 Requests} *)

type tune_spec = {
  op : string;  (** operation name, e.g. ["gemv"]. *)
  sizes : int list;  (** dimension extents, all positive. *)
  trials : int;  (** trial budget, >= 1. *)
  seed : int;  (** search seed. *)
  measure_ratio : float option;  (** measurement-gate ratio, if gated. *)
  islands : int option;
      (** island count for the search, >= 1; defaults to the daemon's
          worker count when omitted.  Pin it (along with the seed) when
          the history digest must reproduce across daemons. *)
  session : string option;
      (** checkpoint session name; derived from the other fields when
          omitted.  Restricted to [A-Za-z0-9._-]. *)
}

type request =
  | Hello of int  (** protocol version — must open every connection. *)
  | Run of { op : string; sizes : int list }
      (** compile + execute + validate with a default schedule. *)
  | Tune of tune_spec  (** checkpointed autotuning session. *)
  | Replay of { log : string; sizes : int list }
      (** re-measure the best entry of a server-local tuning log. *)
  | Stats  (** engine / pool / session / metrics snapshot. *)
  | Shutdown  (** acknowledge, then drain and exit. *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, error_code * string) result

val request_of_string : string -> (request, error_code * string) result
(** Parse a frame payload: JSON decode then {!request_of_json}. *)

(** {1 Responses} *)

type response =
  | Resp_ok of Json.t  (** request-specific body, see docs/PROTOCOL.md. *)
  | Resp_error of { code : error_code; message : string }

val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, error_code * string) result
val response_of_string : string -> (response, error_code * string) result

val send_request : Unix.file_descr -> request -> unit
(** Encode and {!write_frame} in one step. *)

val send_response : Unix.file_descr -> response -> unit

(** {1 History digests} *)

val history_digest : Imtp_autotune.Search.outcome -> string
(** Hex MD5 over the outcome's history rendered as tuning-log lines
    ({!Imtp_autotune.Tuning_log.entry_to_string}, newline-joined) —
    the wire-level witness that a resumed search reproduced the
    uninterrupted run's trajectory bit-for-bit. *)
