(** Tuning-as-a-service: the [imtp serve] daemon.

    One process owns one {!Imtp_engine.Engine} — memo cache, compiled
    executors and the domain pool — and serves any number of clients
    over a Unix-domain socket speaking {!Protocol} frames.  Because
    every session goes through the shared engine, a candidate built
    for one client is a cache hit for every other client tuning the
    same operator: the whole point of serving over re-spawning.

    {b Concurrency.}  Each accepted connection gets a systhread.
    [run]/[replay]/[stats] execute inline on the connection thread;
    [tune] first passes an admission scheduler that caps concurrent
    sessions at [max_sessions], bounds the waiting line at
    [queue_limit] (excess requests are refused with
    {!Protocol.Busy} — backpressure, not unbounded buffering), and
    grants freed slots to waiting {e clients} round-robin, so a client
    that queued fifty tunes cannot starve one that queued one.

    {b Checkpoints.}  Every tune session checkpoints its search state
    to [checkpoint_dir/<session>.ckpt] at generation boundaries
    (atomic rename, see {!Imtp_autotune.Checkpoint}), deletes the file
    on normal completion, and leaves it behind on interruption — a
    kill −9 included.  A later tune naming the same session resumes
    from the file and replays the remaining trials bit-identically
    ({!Imtp_autotune.Search.checkpoint} has the contract).

    {b Shutdown.}  A [shutdown] request is acknowledged, then the
    daemon stops accepting, asks running searches to stop at their
    next generation boundary (each emits a final checkpoint and
    answers its client with [interrupted = true]), closes drained
    connections, removes the socket and returns. *)

type config = {
  socket : string;  (** Unix-domain socket path to listen on. *)
  checkpoint_dir : string;
      (** directory for session checkpoints; created if missing. *)
  max_sessions : int;  (** concurrent tune sessions (>= 1). *)
  queue_limit : int;
      (** waiting tune requests before refusing with [busy] (>= 1). *)
  checkpoint_every : int;
      (** checkpoint period in search generations (>= 1). *)
}

val default_config : socket:string -> config
(** [checkpoint_dir = "imtp-checkpoints"], [max_sessions = 2],
    [queue_limit = 16], [checkpoint_every = 1]. *)

val run : ?machine:Imtp_upmem.Config.t -> config -> (unit, string) result
(** Run the daemon until a [shutdown] request; blocks the calling
    thread.  [machine] (default {!Imtp_upmem.Config.default}) is the
    simulated machine every session tunes for.  The socket file is
    created mode 0600 (it answers to whoever can connect); a stale
    socket left by a killed daemon is reclaimed, but a {e live} one is
    an [Error] without touching it.
    @raise Invalid_argument on non-positive [config] knobs. *)
