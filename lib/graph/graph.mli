(** Graph-level compilation: tensor programs composed into a dataflow
    graph, fused across nodes, tuned jointly, and linked into ONE
    combined multi-kernel program with MRAM-resident intermediates.

    The per-op path pays a full host round-trip between nodes (§2.1:
    "even when data transfer between DPUs is required, it is routed via
    the host CPU").  The graph compiler removes it twice over:

    - {b epilogue fusion}: an elementwise consumer whose single input
      covers its producer's output folds into the producer — as a body
      composition when the producer is itself elementwise, or as a
      TIR-lowered epilogue on the producer's write-back when the
      producer reduces — so the intermediate never exists at all;
    - {b MRAM residency}: when producer and consumer schedules
      partition the intermediate identically (same ordered DPU block
      signature, same per-axis MRAM tile extents), the producer skips
      its device-to-host gather and the consumer reads the producer's
      tile in place, its own host-to-device transfer skipped.

    Intermediates consumed exactly once may be fused away or kept
    device-resident; nodes nobody consumes are graph outputs and always
    materialize on the host. *)

type t

type tid
(** A symbolic tensor in the graph. *)

val create : string -> t

val input : t -> name:string -> shape:int list -> tid
(** Declare an external input.  @raise Invalid_argument on duplicate
    names and on reserved names ([node<digit>...] — the node-output
    namespace; an input named ["node0"] used to shadow node 0's
    output). *)

val add : t -> Imtp_workload.Op.t -> args:(string * tid) list -> tid
(** [add g op ~args] appends a node applying [op]; [args] binds each of
    the op's named inputs to a graph tensor.  Shapes are checked.
    Returns the node's output tensor.  Construction is O(1) amortized
    per node (array-backed).  @raise Invalid_argument on missing
    bindings or shape mismatches. *)

val shape_of : t -> tid -> int list
val node_count : t -> int
val tid_name : tid -> string
(** The graph-tensor name: the input's name, or ["node<i>"]. *)

val inputs : t -> (string * int list) list
val pp : Format.formatter -> t -> unit

val of_spec : Imtp_workload.Nets.t -> t * (string * tid) list
(** Build a graph from a whole-model spec; also returns the
    spec-node-id -> graph-tensor map. *)

(** Compiled graphs. *)
module Compiled : sig
  type graph = t
  type t

  val compile :
    ?trials:int ->
    ?seed:int ->
    ?jobs:int ->
    ?islands:int ->
    ?measure_ratio:float ->
    ?fuse:bool ->
    ?resident:bool ->
    ?engine:Imtp_engine.Engine.t ->
    Imtp_upmem.Config.t ->
    graph ->
    (t, string) Result.t
  (** Fuse ([fuse], default on), tune every distinct fused op once
      under one shared engine — nodes with the same canonical
      structural key ({!Imtp_engine.Engine.op_key}) share one search —
      splitting [trials] (default 96) across the unique ops, plan MRAM
      residency ([resident], default on; consumers may be re-selected
      from the residency-compatible sub-space, and an edge only commits
      when it wins the modeled cost), and link everything into one
      combined program.  [jobs]/[islands]/[measure_ratio] thread to the
      per-op searches.  Pass [engine] to share builds across compiles. *)

  val run :
    t ->
    inputs:(string * Imtp_tensor.Tensor.t) list ->
    (string * Imtp_tensor.Tensor.t) list
  (** Execute the combined program end-to-end (compiled executor by
      default, the interpreter under [IMTP_EXEC=interp]); returns the
      graph inputs plus every materialized node output keyed
      ["node<i>"] ([i] the node's original index; fused-away and
      MRAM-resident intermediates have no host value).
      @raise Invalid_argument when an input is missing or mis-shaped. *)

  val run_counted :
    t ->
    inputs:(string * Imtp_tensor.Tensor.t) list ->
    (string * Imtp_tensor.Tensor.t) list * Imtp_tir.Eval.counters
  (** {!run} plus the executor's transfer/DMA counters — the oracle and
      the benches read host-transfer volumes from here. *)

  val program : t -> Imtp_tir.Program.t
  (** The combined multi-kernel program (for differential testing). *)

  val estimate : t -> Imtp_upmem.Stats.t
  (** Modeled latency of the combined program (one cost-model pass over
      the whole linked program, not a per-node sum). *)

  val node_stats : t -> (string * Imtp_upmem.Stats.t) list
  (** Per-node estimates under the final lowering options, keyed
      ["node<i>:<op+op+...>"]. *)

  val fused_count : t -> int
  (** Original nodes folded into their producers. *)

  val resident_count : t -> int
  (** Producer->consumer edges kept in MRAM. *)

  val describe : t -> string list
  (** Human-readable plan: per node the fused chain, winning schedule
      parameters and residency role. *)
end
