module Op = Imtp_workload.Op
module T = Imtp_tensor

type tid = Input of string | Node of int

type node = {
  op : Op.t;
  bindings : (string * tid) list;  (* op input name -> graph tensor *)
}

type t = {
  gname : string;
  mutable inputs : (string * int list) list;  (* name, shape *)
  mutable nodes : node list;  (* reverse order *)
}

let create gname = { gname; inputs = []; nodes = [] }

let input g ~name ~shape =
  if List.mem_assoc name g.inputs then
    invalid_arg (Printf.sprintf "Graph.input: duplicate input %s" name);
  g.inputs <- g.inputs @ [ (name, shape) ];
  Input name

let node_count g = List.length g.nodes
let node g i = List.nth (List.rev g.nodes) i

let shape_of g = function
  | Input name -> (
      match List.assoc_opt name g.inputs with
      | Some s -> s
      | None -> invalid_arg "Graph.shape_of: unknown input")
  | Node i ->
      let n = node g i in
      (match Op.output_shape n.op with [] -> [ 1 ] | s -> s)

let add g op ~args =
  List.iter
    (fun (iname, _) ->
      if not (List.mem_assoc iname args) then
        invalid_arg
          (Printf.sprintf "Graph.add: missing binding for input %s of %s" iname
             op.Op.opname))
    op.Op.inputs;
  List.iter
    (fun (iname, tid) ->
      if not (List.mem_assoc iname op.Op.inputs) then
        invalid_arg (Printf.sprintf "Graph.add: %s is not an input of %s" iname op.Op.opname);
      let want = Op.input_shape op iname and got = shape_of g tid in
      if want <> got then
        invalid_arg
          (Printf.sprintf "Graph.add: input %s of %s expects shape %s, got %s"
             iname op.Op.opname
             (String.concat "x" (List.map string_of_int want))
             (String.concat "x" (List.map string_of_int got))))
    args;
  g.nodes <- { op; bindings = args } :: g.nodes;
  Node (List.length g.nodes - 1)

let tid_name = function
  | Input n -> n
  | Node i -> Printf.sprintf "node%d" i

let pp ppf g =
  Format.fprintf ppf "graph %s@." g.gname;
  List.iter
    (fun (n, s) ->
      Format.fprintf ppf "  input %s: %s@." n
        (String.concat "x" (List.map string_of_int s)))
    g.inputs;
  List.iteri
    (fun i (n : node) ->
      Format.fprintf ppf "  node%d = %s(%s)@." i n.op.Op.opname
        (String.concat ", "
           (List.map (fun (k, v) -> k ^ "=" ^ tid_name v) n.bindings)))
    (List.rev g.nodes)

module Compiled = struct
  type graph = t

  type compiled_node = {
    cn : node;
    program : Imtp_tir.Program.t;
    stats : Imtp_upmem.Stats.t;
  }

  type t = { cg : graph; cnodes : compiled_node list }

  (* Two nodes share a tuned program when their ops are identical. *)
  let op_key (op : Op.t) = Format.asprintf "%a" Op.pp op

  let compile ?(trials = 96) ?(seed = 17) cfg (g : graph) =
    let cache = Hashtbl.create 8 in
    let rec go acc = function
      | [] -> Ok { cg = g; cnodes = List.rev acc }
      | (n : node) :: rest -> (
          let key = op_key n.op in
          match Hashtbl.find_opt cache key with
          | Some (program, stats) -> go ({ cn = n; program; stats } :: acc) rest
          | None -> (
              match Imtp_autotune.Tuner.tune ~trials ~seed cfg n.op with
              | Error m ->
                  Error (Printf.sprintf "node %s: %s" n.op.Op.opname m)
              | Ok r ->
                  let program = r.Imtp_autotune.Tuner.program
                  and stats = r.Imtp_autotune.Tuner.stats in
                  Hashtbl.replace cache key (program, stats);
                  go ({ cn = n; program; stats } :: acc) rest))
    in
    go [] (List.rev g.nodes)

  let run (c : t) ~inputs =
    List.iter
      (fun (name, shape) ->
        match List.assoc_opt name inputs with
        | None -> invalid_arg (Printf.sprintf "Graph.run: missing input %s" name)
        | Some t ->
            let got = T.Shape.dims (T.Tensor.shape t) in
            if got <> shape then
              invalid_arg (Printf.sprintf "Graph.run: input %s has wrong shape" name))
      c.cg.inputs;
    let env = Hashtbl.create 8 in
    List.iter (fun (n, t) -> Hashtbl.replace env n t) inputs;
    List.iteri
      (fun i (cn : compiled_node) ->
        let node_inputs =
          List.map
            (fun (iname, tid) ->
              let src = tid_name tid in
              match Hashtbl.find_opt env src with
              | Some t -> (iname, t)
              | None ->
                  invalid_arg
                    (Printf.sprintf "Graph.run: tensor %s not yet computed" src))
            cn.cn.bindings
        in
        let outs = Imtp_tir.Exec.run cn.program ~inputs:node_inputs in
        let raw = List.assoc (fst cn.cn.op.Op.output) outs in
        (* reshape the flat output buffer to the op's logical shape. *)
        let shape =
          match Op.output_shape cn.cn.op with
          | [] -> T.Shape.create [ 1 ]
          | s -> T.Shape.create s
        in
        let shaped =
          T.Tensor.init (T.Tensor.dtype raw) shape (fun idx ->
              T.Tensor.get_flat raw (T.Shape.linearize shape idx))
        in
        Hashtbl.replace env (Printf.sprintf "node%d" i) shaped)
      c.cnodes;
    inputs
    @ List.mapi
        (fun i _ ->
          let name = Printf.sprintf "node%d" i in
          (name, Hashtbl.find env name))
        c.cnodes

  let node_stats (c : t) =
    List.mapi
      (fun i (cn : compiled_node) ->
        (Printf.sprintf "node%d:%s" i cn.cn.op.Op.opname, cn.stats))
      c.cnodes

  let estimate (c : t) =
    List.fold_left
      (fun acc (cn : compiled_node) -> Imtp_upmem.Stats.add acc cn.stats)
      Imtp_upmem.Stats.zero c.cnodes
end
