(* Graph-level compilation (§8 "DL framework interfaces" direction,
   grown into a real inter-op compiler): a dataflow graph of tensor
   programs is fused (elementwise consumers folded into their producers
   as epilogues or body compositions), tuned jointly under one shared
   engine and one trial budget, planned for MRAM residency (compatible
   producer/consumer tiles stay on the DPUs between launches), and
   linked into ONE combined multi-kernel program whose MRAM state
   persists across launches — so resident intermediates never take the
   host round-trip that the per-op path pays (§2.1). *)

module Op = Imtp_workload.Op
module T = Imtp_tensor
module U = Imtp_upmem
module S = Imtp_schedule.Sched
module Sk = Imtp_engine.Sketch
module Engine = Imtp_engine.Engine
module Verifier = Imtp_engine.Verifier
module L = Imtp_lower.Lowering
module P = Imtp_tir.Program
module St = Imtp_tir.Stmt
module E = Imtp_tir.Expr
module B = Imtp_tir.Buffer

type tid = Input of string | Node of int

type gnode = {
  op : Op.t;
  bindings : (string * tid) list;  (* op input name -> graph tensor *)
}

type t = {
  gname : string;
  mutable inputs_rev : (string * int list) list;
  input_shapes : (string, int list) Hashtbl.t;
  mutable node_arr : gnode array;  (* first [n] slots are live *)
  mutable n : int;
}

let create gname =
  {
    gname;
    inputs_rev = [];
    input_shapes = Hashtbl.create 16;
    node_arr = [||];
    n = 0;
  }

(* Node outputs and internal buffers live in the ["node<i>..."]
   namespace; graph inputs may not shadow it (the historical bug where
   an input named "node0" collided with node 0's output). *)
let reserved name =
  String.length name > 4
  && String.sub name 0 4 = "node"
  && (match name.[4] with '0' .. '9' -> true | _ -> false)

let input g ~name ~shape =
  if name = "" then invalid_arg "Graph.input: empty name";
  if reserved name then
    invalid_arg
      (Printf.sprintf
         "Graph.input: %s is reserved (node<i>... names belong to node \
          outputs)"
         name);
  if Hashtbl.mem g.input_shapes name then
    invalid_arg (Printf.sprintf "Graph.input: duplicate input %s" name);
  Hashtbl.replace g.input_shapes name shape;
  g.inputs_rev <- (name, shape) :: g.inputs_rev;
  Input name

let inputs g = List.rev g.inputs_rev
let node_count g = g.n

let node g i =
  if i < 0 || i >= g.n then invalid_arg "Graph.node: index out of range";
  g.node_arr.(i)

let shape_of g = function
  | Input name -> (
      match Hashtbl.find_opt g.input_shapes name with
      | Some s -> s
      | None -> invalid_arg "Graph.shape_of: unknown input")
  | Node i -> (
      match Op.output_shape (node g i).op with [] -> [ 1 ] | s -> s)

let push g nd =
  let cap = Array.length g.node_arr in
  if g.n = cap then begin
    let grown = Array.make (max 8 (2 * cap)) nd in
    Array.blit g.node_arr 0 grown 0 g.n;
    g.node_arr <- grown
  end;
  g.node_arr.(g.n) <- nd;
  g.n <- g.n + 1

let add g op ~args =
  List.iter
    (fun (iname, _) ->
      if not (List.mem_assoc iname args) then
        invalid_arg
          (Printf.sprintf "Graph.add: missing binding for input %s of %s" iname
             op.Op.opname))
    op.Op.inputs;
  List.iter
    (fun (iname, tid) ->
      if not (List.mem_assoc iname op.Op.inputs) then
        invalid_arg
          (Printf.sprintf "Graph.add: %s is not an input of %s" iname
             op.Op.opname);
      let want = Op.input_shape op iname and got = shape_of g tid in
      if want <> got then
        invalid_arg
          (Printf.sprintf "Graph.add: input %s of %s expects shape %s, got %s"
             iname op.Op.opname
             (String.concat "x" (List.map string_of_int want))
             (String.concat "x" (List.map string_of_int got))))
    args;
  push g { op; bindings = args };
  Node (g.n - 1)

let tid_name = function
  | Input n -> n
  | Node i -> Printf.sprintf "node%d" i

let pp ppf g =
  Format.fprintf ppf "graph %s@." g.gname;
  List.iter
    (fun (n, s) ->
      Format.fprintf ppf "  input %s: %s@." n
        (String.concat "x" (List.map string_of_int s)))
    (inputs g);
  for i = 0 to g.n - 1 do
    let nd = g.node_arr.(i) in
    Format.fprintf ppf "  node%d = %s(%s)@." i nd.op.Op.opname
      (String.concat ", "
         (List.map (fun (k, v) -> k ^ "=" ^ tid_name v) nd.bindings))
  done

(* Build a graph from a whole-model spec; returns the graph and the
   spec-id -> graph-tensor mapping (node outputs change name under
   fusion, so callers address them through this map). *)
let of_spec (s : Imtp_workload.Nets.t) =
  let module N = Imtp_workload.Nets in
  let g = create s.N.sname in
  let env = Hashtbl.create 16 in
  List.iter
    (fun (name, shape) -> Hashtbl.replace env name (input g ~name ~shape))
    s.N.inputs;
  let ids =
    List.map
      (fun (nd : N.node) ->
        let args =
          List.map
            (fun (formal, actual) ->
              match Hashtbl.find_opt env actual with
              | Some tid -> (formal, tid)
              | None ->
                  invalid_arg
                    (Printf.sprintf "Graph.of_spec: %s: unbound ref %s" nd.N.id
                       actual))
            nd.N.args
        in
        let tid = add g nd.N.op ~args in
        Hashtbl.replace env nd.N.id tid;
        (nd.N.id, tid))
      s.N.nodes
  in
  (g, ids)

module Compiled = struct
  type graph = t

  (* ---- fusion planning ------------------------------------------------ *)

  (* A plan node accumulates a chain of fused original nodes; [pid] is
     the original id of the LAST node in the chain (whose output the
     plan node produces). *)
  type pnode = {
    mutable pid : int;
    mutable pop : Op.t;
    mutable pargs : (string * tid) list;
    mutable chain : string list;  (* op names folded in, for reporting *)
  }

  exception Skip

  let fresh_name taken base =
    if not (List.mem base taken) then base
    else
      let rec go k =
        let c = Printf.sprintf "%s_%d" base k in
        if List.mem c taken then go (k + 1) else c
      in
      go 2

  let rec subst_elem ~target ~repl ~ren = function
    | Op.Ref y when y = target -> repl
    | Op.Ref y -> Op.Ref (try List.assoc y ren with Not_found -> y)
    | Op.Const _ as c -> c
    | Op.Acc -> Op.Acc
    | Op.Bin (b, a, c) ->
        Op.Bin
          (b, subst_elem ~target ~repl ~ren a, subst_elem ~target ~repl ~ren c)

  (* Fold consumer [cop] (reading producer [p]'s output at input [x])
     into [p].  Legality: the consumer is all-spatial with a full-rank
     output in axis order, [x] covers all consumer axes in order, and
     dtypes match.  An elementwise producer composes bodies; a
     reduction (or already-fused) producer composes epilogues, with the
     consumer's other inputs re-dimensioned onto the producer's output
     axes through the positional map. *)
  let try_fuse (p : pnode) (cop : Op.t) (cargs : (string * tid) list) x =
    try
      let cdims = List.map (fun a -> a.Op.aname) cop.Op.axes in
      if cop.Op.epilogue <> None then raise Skip;
      if Op.has_reduction cop then raise Skip;
      if snd cop.Op.output <> cdims then raise Skip;
      if List.assoc x cop.Op.inputs <> cdims then raise Skip;
      if cop.Op.dtype <> p.pop.Op.dtype then raise Skip;
      let pod = snd p.pop.Op.output in
      if List.length pod <> List.length cdims then raise Skip;
      let dim_map = List.combine cdims pod in
      let taken = ref (List.map fst p.pop.Op.inputs) in
      let ren, extra_inputs, extra_args =
        List.fold_left
          (fun (ren, eis, eas) (iname, idims) ->
            if iname = x then (ren, eis, eas)
            else begin
              let f = fresh_name !taken iname in
              taken := f :: !taken;
              ( (iname, f) :: ren,
                (f, List.map (fun d -> List.assoc d dim_map) idims) :: eis,
                (f, List.assoc iname cargs) :: eas )
            end)
          ([], [], []) cop.Op.inputs
      in
      let ren = List.rev ren
      and extra_inputs = List.rev extra_inputs
      and extra_args = List.rev extra_args in
      let name = p.pop.Op.opname ^ "+" ^ cop.Op.opname in
      let inputs = p.pop.Op.inputs @ extra_inputs in
      let fused_op =
        if Op.has_reduction p.pop || p.pop.Op.epilogue <> None then begin
          (* epilogue composition on a reduction producer *)
          let base =
            match p.pop.Op.epilogue with Some e -> e | None -> Op.Acc
          in
          let epi = subst_elem ~target:x ~repl:base ~ren cop.Op.body in
          let core =
            Op.create ~name ~dtype:p.pop.Op.dtype ~axes:p.pop.Op.axes ~inputs
              ~output:p.pop.Op.output ~body:p.pop.Op.body
          in
          Op.with_epilogue core epi
        end
        else begin
          (* body composition on an elementwise producer *)
          if List.map (fun a -> a.Op.aname) p.pop.Op.axes <> pod then
            raise Skip;
          let body = subst_elem ~target:x ~repl:p.pop.Op.body ~ren cop.Op.body in
          Op.create ~name ~dtype:p.pop.Op.dtype ~axes:p.pop.Op.axes ~inputs
            ~output:p.pop.Op.output ~body
        end
      in
      Some (fused_op, p.pargs @ extra_args)
    with Skip | Invalid_argument _ -> None

  (* One pass over the nodes in topological order.  A node folds into
     its producer when the producer's output has exactly one use in the
     whole graph (nothing else needs the intermediate) and the
     composition is legal. *)
  let plan_of ~fuse (g : graph) =
    let rc = Array.make (max 1 g.n) 0 in
    for i = 0 to g.n - 1 do
      List.iter
        (fun (_, tid) ->
          match tid with Node j -> rc.(j) <- rc.(j) + 1 | Input _ -> ())
        g.node_arr.(i).bindings
    done;
    let owner = Hashtbl.create (max 16 g.n) in
    let plan = ref [] in
    for j = 0 to g.n - 1 do
      let nd = g.node_arr.(j) in
      let fused =
        if not fuse then None
        else
          List.fold_left
            (fun acc (x, tid) ->
              match (acc, tid) with
              | Some _, _ -> acc
              | None, Node i when rc.(i) = 1 -> (
                  let p = Hashtbl.find owner i in
                  match try_fuse p nd.op nd.bindings x with
                  | Some (fop, fargs) -> Some (p, fop, fargs)
                  | None -> None)
              | None, _ -> None)
            None nd.bindings
      in
      match fused with
      | Some (p, fop, fargs) ->
          p.pop <- fop;
          p.pargs <- fargs;
          p.pid <- j;
          p.chain <- p.chain @ [ nd.op.Op.opname ];
          Hashtbl.replace owner j p
      | None ->
          let p =
            {
              pid = j;
              pop = nd.op;
              pargs = nd.bindings;
              chain = [ nd.op.Op.opname ];
            }
          in
          plan := p :: !plan;
          Hashtbl.replace owner j p
    done;
    (* resolve arg tids to plan-level ids: Node i -> Node (owner i).pid *)
    let resolve (x, tid) =
      match tid with
      | Input _ -> (x, tid)
      | Node i -> (x, Node (Hashtbl.find owner i).pid)
    in
    List.rev_map
      (fun p -> { p with pargs = List.map resolve p.pargs })
      !plan

  (* ---- residency planning --------------------------------------------- *)

  (* MRAM tile extent of [axis]: product of its non-DPU-bound segment
     extents — the per-DPU tile footprint the lowering allocates. *)
  let mram_ext sched axis =
    List.fold_left
      (fun acc (l : S.loop) -> if S.is_block l then acc else acc * l.S.extent)
      1
      (S.loops_of_axis sched axis)

  exception Incompat

  (* Ordered (axis position, extent) signature of the schedule's
     DPU-bound loops over [dims], dropping extent-1 segments (they do
     not move the DPU linearization).  A block on an axis outside
     [dims] with extent > 1 partitions or replicates data the other
     side cannot mirror — incompatible. *)
  let block_sig sched dims =
    List.filter_map
      (fun (l : S.loop) ->
        if l.S.extent = 1 then None
        else
          let rec idx k = function
            | [] -> raise Incompat
            | d :: _ when d = l.S.axis -> k
            | _ :: tl -> idx (k + 1) tl
          in
          Some (idx 0 dims, l.S.extent))
      (S.block_loops sched)

  (* Producer tile at DPU d and consumer tile of input [x] at DPU d
     coincide iff the two schedules partition the tensor identically:
     same ordered block signature over the positionally-mapped axes and
     the same per-axis MRAM tile extent (same padded layout).  The
     producer must not rfactor (its partials must reach the host), and
     [x] must be a body input: epilogue-referenced inputs are read on
     the HOST whenever the lowering applies the epilogue after the
     combine (hierarchical and tasklet-level reductions), where a
     resident producer's host buffer was never filled. *)
  let residency_compatible ~prod:(pop, sp) ~cons:(cop, sc) ~input:x =
    try
      S.rfactor_loop sp = None
      && (not (List.mem x (Op.epilogue_refs cop)))
      && pop.Op.dtype = cop.Op.dtype
      &&
      let pod = snd pop.Op.output in
      let xdims = List.assoc x cop.Op.inputs in
      List.length pod = List.length xdims
      && block_sig sp pod = block_sig sc xdims
      && List.for_all2 (fun pd xd -> mram_ext sp pd = mram_ext sc xd) pod xdims
    with Incompat | Not_found -> false

  (* ---- compiled representation ---------------------------------------- *)

  type cnode = {
    nid : int;  (* original node id of the produced output *)
    cop : Op.t;  (* op after fusion *)
    cargs : (string * tid) list;  (* plan-level bindings *)
    chain : string list;
    params : Sk.params;
    resident_in : string list;  (* op inputs read from MRAM in place *)
    resident_out : bool;  (* output stays in MRAM (no d2h gather) *)
    nstats : U.Stats.t;  (* per-node estimate under final options *)
  }

  type t = {
    cg : graph;
    cnodes : cnode list;
    program : P.t;
    total : U.Stats.t;
    fused_away : int;
    resident_edges : int;
  }

  let node_options params ~skips ~skip_out =
    {
      (Sk.lower_options params) with
      L.skip_input_transfer = skips;
      skip_output_transfer = skip_out;
    }

  let node_program cfg op params ~skips ~skip_out =
    let sched = Sk.instantiate op params in
    let options = node_options params ~skips ~skip_out in
    match Engine.compile_sched ~options cfg sched with
    | Ok prog -> Ok (sched, prog)
    | Error e -> Error (Engine.error_to_string e)

  let node_latency cfg op params ~skips ~skip_out =
    match node_program cfg op params ~skips ~skip_out with
    | Error _ -> infinity
    | Ok (_, prog) -> (
        match Engine.estimate cfg prog with
        | Ok s -> U.Stats.total_s s
        | Error _ -> infinity)

  (* ---- linking: one combined multi-kernel program ---------------------- *)

  let out_host_name nid = Printf.sprintf "node%d" nid
  let mram_buf_name nid t = Printf.sprintf "node%d__%s_m" nid t
  let kernel_name_of nid = Printf.sprintf "k%d" nid

  let rename_expr rb =
    let rec re (e : E.t) =
      match e with
      | E.Int_const _ | E.Float_const _ | E.Var _ -> e
      | E.Binop (o, a, b) -> E.Binop (o, re a, re b)
      | E.Cmp (c, a, b) -> E.Cmp (c, re a, re b)
      | E.And (a, b) -> E.And (re a, re b)
      | E.Or (a, b) -> E.Or (re a, re b)
      | E.Not a -> E.Not (re a)
      | E.Select (c, a, b) -> E.Select (re c, re a, re b)
      | E.Load (b, i) -> E.Load (rb b, re i)
      | E.Cast (d, a) -> E.Cast (d, re a)
    in
    re

  let rename_stmt sigma kname st =
    let rb n = match Hashtbl.find_opt sigma n with Some m -> m | None -> n in
    let st = St.map_exprs (rename_expr rb) st in
    St.rewrite_bottom_up
      (fun s ->
        match s with
        | St.Store r -> St.Store { r with buf = rb r.buf }
        | St.Dma r -> St.Dma { r with wram = rb r.wram; mram = rb r.mram }
        | St.Xfer r -> St.Xfer { r with host = rb r.host; mram = rb r.mram }
        | St.Launch _ -> St.Launch kname
        | St.Alloc r ->
            St.Alloc
              { r with buffer = { r.buffer with B.name = rb r.buffer.B.name } }
        | s -> s)
      st

  let dedup_buffers kind bufs =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun (b : B.t) ->
        match Hashtbl.find_opt seen b.B.name with
        | None ->
            Hashtbl.replace seen b.B.name b;
            true
        | Some (prev : B.t) ->
            if prev.B.elems <> b.B.elems || prev.B.dtype <> b.B.dtype then
              invalid_arg
                (Printf.sprintf
                   "Graph.link: %s buffer %s redeclared with a different layout"
                   kind b.B.name);
            false)
      bufs

  (* ---- compilation ----------------------------------------------------- *)

  exception Compile_failed of string

  let compile ?(trials = 96) ?(seed = 17) ?jobs ?islands ?measure_ratio
      ?(fuse = true) ?(resident = true) ?engine cfg (g : graph) =
    if g.n = 0 then Error "Graph.compile: empty graph"
    else begin
      let plan = Array.of_list (plan_of ~fuse g) in
      let np = Array.length plan in
      let engine =
        match engine with Some e -> e | None -> Engine.create cfg
      in
      (* one budget across the graph: split the trials over the unique
         structural keys, tune each once, share every build through the
         engine cache. *)
      let keys = Array.map (fun p -> Engine.op_key p.pop) plan in
      let uniq = Hashtbl.create 8 in
      Array.iter
        (fun k -> if not (Hashtbl.mem uniq k) then Hashtbl.replace uniq k None)
        keys;
      let per = max 16 (trials / max 1 (Hashtbl.length uniq)) in
      try
        let tuned =
          Array.mapi
            (fun i p ->
              match Hashtbl.find uniq keys.(i) with
              | Some params -> params
              | None -> (
                  match
                    Imtp_autotune.Tuner.tune ?jobs ?islands ?measure_ratio
                      ~seed ~trials:per ~engine cfg p.pop
                  with
                  | Error m ->
                      raise
                        (Compile_failed
                           (Printf.sprintf "node%d (%s): %s" p.pid
                              p.pop.Op.opname m))
                  | Ok r ->
                      Hashtbl.replace uniq keys.(i)
                        (Some r.Imtp_autotune.Tuner.params);
                      r.Imtp_autotune.Tuner.params))
            plan
        in
        (* residency planning over the tuned winners *)
        let pid2idx = Hashtbl.create 16 in
        Array.iteri (fun i p -> Hashtbl.replace pid2idx p.pid i) plan;
        let consumers = Array.make np [] in
        Array.iter
          (fun (p : pnode) ->
            let c = Hashtbl.find pid2idx p.pid in
            List.iter
              (fun (x, tid) ->
                match tid with
                | Node pid ->
                    let pi = Hashtbl.find pid2idx pid in
                    consumers.(pi) <- (c, x) :: consumers.(pi)
                | Input _ -> ())
              p.pargs)
          plan;
        Array.iteri (fun i l -> consumers.(i) <- List.rev l) consumers;
        let fparams = Array.copy tuned in
        let skip_in = Array.make np [] in
        let skip_out = Array.make np false in
        let pinned = Array.make np false in
        let resident_edges = ref 0 in
        let best_of results =
          List.fold_left
            (fun acc (prm, r) ->
              match r with
              | Ok (m : Engine.measurement) -> (
                  match acc with
                  | Some (_, l) when l <= m.Engine.latency_s -> acc
                  | _ -> Some (prm, m.Engine.latency_s))
              | Error _ -> acc)
            None results
        in
        if resident then
          for pi = 0 to np - 1 do
            let cs = consumers.(pi) in
            if cs <> [] then begin
              let pop = plan.(pi).pop in
              (* group edges by consumer: a consumer keeps ONE set of
                 params across all its resident inputs. *)
              let grouped =
                let tbl = Hashtbl.create 4 and order = ref [] in
                List.iter
                  (fun (c, x) ->
                    (if not (Hashtbl.mem tbl c) then order := c :: !order);
                    Hashtbl.replace tbl c
                      (x
                      ::
                      (match Hashtbl.find_opt tbl c with
                      | Some l -> l
                      | None -> [])))
                  cs;
                List.rev_map (fun c -> (c, List.rev (Hashtbl.find tbl c))) !order
              in
              (* producer candidates: the tuned winner first, then (when
                 the producer is free to move) its non-rfactor
                 alternatives best-first by noise-free measurement — the
                 winner's partitioning may be one no consumer can
                 mirror. *)
              let prod_cands =
                let winner = fparams.(pi) in
                if pinned.(pi) then [ winner ]
                else begin
                  let alts =
                    List.filter
                      (fun prm ->
                        prm <> winner
                        &&
                        try S.rfactor_loop (Sk.instantiate pop prm) = None
                        with Invalid_argument _ | Failure _ -> false)
                      (Sk.space cfg pop)
                  in
                  let alts = List.filteri (fun i _ -> i < 32) alts in
                  let measured =
                    Engine.batch engine ?jobs ~skip_inputs:skip_in.(pi) pop
                      alts
                  in
                  let ranked =
                    List.filter_map
                      (fun (prm, r) ->
                        match r with
                        | Ok (m : Engine.measurement) ->
                            Some (prm, m.Engine.latency_s)
                        | Error _ -> None)
                      measured
                  in
                  let ranked =
                    List.stable_sort
                      (fun (_, a) (_, b) -> compare a b)
                      ranked
                  in
                  winner
                  :: List.filteri (fun i _ -> i < 8) (List.map fst ranked)
                end
              in
              let try_producer pprm =
                let sp = Sk.instantiate pop pprm in
                if S.rfactor_loop sp <> None then None
                else begin
                  let ok_all (c, xs) =
                    let check prm =
                      let sc = Sk.instantiate plan.(c).pop prm in
                      List.for_all
                        (fun x ->
                          residency_compatible ~prod:(pop, sp)
                            ~cons:(plan.(c).pop, sc) ~input:x)
                        xs
                    in
                    if check fparams.(c) then Some (c, xs, fparams.(c))
                    else if pinned.(c) then None
                    else begin
                      (* constrained re-selection: restrict the
                         consumer's space to residency-compatible
                         candidates and pick the fastest. *)
                      let cands =
                        List.filter
                          (fun prm ->
                            try check prm with
                            | Invalid_argument _ | Failure _ -> false)
                          (Sk.space cfg plan.(c).pop)
                      in
                      let cands = List.filteri (fun i _ -> i < 48) cands in
                      if cands = [] then None
                      else begin
                        let skips = xs @ skip_in.(c) in
                        let results =
                          Engine.batch engine ?jobs ~skip_inputs:skips
                            plan.(c).pop cands
                        in
                        match best_of results with
                        | Some (prm, _) -> Some (c, xs, prm)
                        | None -> None
                      end
                    end
                  in
                  let resolved = List.map ok_all grouped in
                  if List.for_all (fun r -> r <> None) resolved then
                    Some (pprm, List.filter_map (fun r -> r) resolved)
                  else None
                end
              in
              let feasible =
                List.fold_left
                  (fun acc pprm ->
                    match acc with Some _ -> acc | None -> try_producer pprm)
                  None prod_cands
              in
              match feasible with
              | None -> ()
              | Some (pprm, resolved) ->
                  (* commit only when residency wins the modeled cost *)
                  let base =
                    node_latency cfg pop fparams.(pi) ~skips:skip_in.(pi)
                      ~skip_out:false
                    +. List.fold_left
                         (fun acc (c, _, _) ->
                           acc
                           +. node_latency cfg plan.(c).pop fparams.(c)
                                ~skips:skip_in.(c) ~skip_out:false)
                         0. resolved
                  in
                  let res =
                    node_latency cfg pop pprm ~skips:skip_in.(pi)
                      ~skip_out:true
                    +. List.fold_left
                         (fun acc (c, xs, prm) ->
                           acc
                           +. node_latency cfg plan.(c).pop prm
                                ~skips:(xs @ skip_in.(c)) ~skip_out:false)
                         0. resolved
                  in
                  if res < base then begin
                    fparams.(pi) <- pprm;
                    skip_out.(pi) <- true;
                    pinned.(pi) <- true;
                    List.iter
                      (fun (c, xs, prm) ->
                        fparams.(c) <- prm;
                        skip_in.(c) <- xs @ skip_in.(c);
                        pinned.(c) <- true;
                        resident_edges := !resident_edges + List.length xs)
                      resolved
                  end
            end
          done;
        (* link: lower every plan node under its final options, rename
           its buffers and kernel into the graph namespace, and
           concatenate into one combined program. *)
        let parts =
          Array.to_list
            (Array.mapi
               (fun i p ->
                 match
                   node_program cfg p.pop fparams.(i) ~skips:skip_in.(i)
                     ~skip_out:skip_out.(i)
                 with
                 | Error m ->
                     raise
                       (Compile_failed
                          (Printf.sprintf "node%d (%s): lowering failed: %s"
                             p.pid p.pop.Op.opname m))
                 | Ok (_, prog) -> (
                     match Engine.estimate cfg prog with
                     | Ok nstats -> (i, p, prog, nstats)
                     | Error e ->
                         raise
                           (Compile_failed
                              (Printf.sprintf "node%d (%s): %s" p.pid
                                 p.pop.Op.opname (Engine.error_to_string e)))))
               plan)
        in
        let producer_of i x =
          match List.assoc x plan.(i).pargs with
          | Node pid -> Hashtbl.find pid2idx pid
          | Input _ ->
              invalid_arg "Graph.link: resident input bound to a graph input"
        in
        let renamed =
          List.map
            (fun (i, (p : pnode), (prog : P.t), nstats) ->
              let sigma = Hashtbl.create 16 in
              List.iter
                (fun (iname, tid) -> Hashtbl.replace sigma iname (tid_name tid))
                p.pargs;
              let out = fst p.pop.Op.output in
              Hashtbl.replace sigma out (out_host_name p.pid);
              Hashtbl.replace sigma L.partial_buffer_name
                (Printf.sprintf "node%d__partial" p.pid);
              List.iter
                (fun (iname, _) ->
                  let target =
                    if List.mem iname skip_in.(i) then
                      (* a resident input aliases its producer's output
                         tile: rename to the producer's MRAM buffer (the
                         duplicate declaration dedups away below). *)
                      let pi = producer_of i iname in
                      mram_buf_name plan.(pi).pid (fst plan.(pi).pop.Op.output)
                    else mram_buf_name p.pid iname
                  in
                  Hashtbl.replace sigma (iname ^ "_m") target)
                p.pop.Op.inputs;
              Hashtbl.replace sigma (out ^ "_m") (mram_buf_name p.pid out);
              let kname = kernel_name_of p.pid in
              let rb n =
                match Hashtbl.find_opt sigma n with Some m -> m | None -> n
              in
              let host_buffers =
                List.map
                  (fun (b : B.t) -> { b with B.name = rb b.B.name })
                  prog.P.host_buffers
              in
              let mram_buffers =
                List.map
                  (fun (b : B.t) -> { b with B.name = rb b.B.name })
                  prog.P.mram_buffers
              in
              let kernels =
                List.map
                  (fun (k : P.kernel) ->
                    { P.kname; body = rename_stmt sigma kname k.P.body })
                  prog.P.kernels
              in
              let host = rename_stmt sigma kname prog.P.host in
              ( i,
                p,
                { prog with P.host_buffers; mram_buffers; kernels; host },
                nstats ))
            parts
        in
        let program =
          {
            P.name = g.gname;
            host_buffers =
              dedup_buffers "host"
                (List.concat_map
                   (fun (_, _, pr, _) -> pr.P.host_buffers)
                   renamed);
            mram_buffers =
              dedup_buffers "mram"
                (List.concat_map
                   (fun (_, _, pr, _) -> pr.P.mram_buffers)
                   renamed);
            kernels =
              List.concat_map (fun (_, _, pr, _) -> pr.P.kernels) renamed;
            host = St.seq (List.map (fun (_, _, pr, _) -> pr.P.host) renamed);
          }
        in
        (match P.validate program with
        | Ok () -> ()
        | Error m ->
            raise
              (Compile_failed
                 (Printf.sprintf "combined program invalid: %s" m)));
        (match Verifier.check cfg program with
        | Ok () -> ()
        | Error r ->
            raise
              (Compile_failed
                 (Printf.sprintf "combined program rejected (%s): %s"
                    r.Verifier.constraint_name r.Verifier.reason)));
        let total =
          try Imtp_tir.Cost.measure cfg program
          with Imtp_tir.Cost.Error m ->
            raise (Compile_failed ("combined program cost: " ^ m))
        in
        let cnodes =
          List.map
            (fun (i, (p : pnode), _, nstats) ->
              {
                nid = p.pid;
                cop = p.pop;
                cargs = p.pargs;
                chain = p.chain;
                params = fparams.(i);
                resident_in = skip_in.(i);
                resident_out = skip_out.(i);
                nstats;
              })
            renamed
        in
        Ok
          {
            cg = g;
            cnodes;
            program;
            total;
            fused_away = g.n - np;
            resident_edges = !resident_edges;
          }
      with Compile_failed m -> Error m
    end

  (* ---- execution -------------------------------------------------------- *)

  let program c = c.program

  let check_inputs (c : t) inputs =
    List.iter
      (fun (name, shape) ->
        match List.assoc_opt name inputs with
        | None ->
            invalid_arg (Printf.sprintf "Graph.run: missing input %s" name)
        | Some t ->
            let got = T.Shape.dims (T.Tensor.shape t) in
            if got <> shape then
              invalid_arg
                (Printf.sprintf "Graph.run: input %s has wrong shape" name))
      (List.rev c.cg.inputs_rev)

  let reshape_out (cn : cnode) raw =
    let shape =
      match Op.output_shape cn.cop with
      | [] -> T.Shape.create [ 1 ]
      | s -> T.Shape.create s
    in
    T.Tensor.init (T.Tensor.dtype raw) shape (fun idx ->
        T.Tensor.get_flat raw (T.Shape.linearize shape idx))

  let collect_outputs c ~inputs outs =
    inputs
    @ List.filter_map
        (fun cn ->
          if cn.resident_out then None
          else
            let name = out_host_name cn.nid in
            match List.assoc_opt name outs with
            | Some raw -> Some (name, reshape_out cn raw)
            | None -> None)
        c.cnodes

  let run_counted (c : t) ~inputs =
    check_inputs c inputs;
    let outs, counters = Imtp_tir.Exec.run_counted c.program ~inputs in
    (collect_outputs c ~inputs outs, counters)

  let run c ~inputs = fst (run_counted c ~inputs)
  let estimate c = c.total

  let node_stats (c : t) =
    List.map
      (fun cn ->
        ( Printf.sprintf "node%d:%s" cn.nid (String.concat "+" cn.chain),
          cn.nstats ))
      c.cnodes

  let fused_count c = c.fused_away
  let resident_count c = c.resident_edges

  let describe (c : t) =
    let header =
      Printf.sprintf "%s: %d node(s) (%d fused away), %d resident edge(s)"
        c.cg.gname (List.length c.cnodes) c.fused_away c.resident_edges
    in
    header
    :: List.map
         (fun cn ->
           Printf.sprintf "  node%d %s  %s%s%s" cn.nid
             (String.concat "+" cn.chain)
             (Sk.describe cn.params)
             (match cn.resident_in with
             | [] -> ""
             | l -> "  resident-in:" ^ String.concat "," l)
             (if cn.resident_out then "  resident-out" else ""))
         c.cnodes
end
