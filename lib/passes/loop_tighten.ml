module E = Imtp_tir.Expr
module St = Imtp_tir.Stmt
module An = Imtp_tir.Analysis
module Simp = Imtp_tir.Simplify

let rewrite stmt =
  St.rewrite_bottom_up
    (function
      | St.For
          {
            var;
            extent;
            kind = (St.Serial | St.Unrolled) as kind;
            body = St.If { cond; then_; else_ = None };
          } as orig -> (
          let atoms = An.conjuncts cond in
          let bounds, rest =
            List.partition_map
              (fun atom ->
                match An.upper_bound_from_cond var atom with
                | Some b -> Left b
                | None -> Right atom)
              atoms
          in
          match bounds with
          | [] -> orig
          | bs ->
              let extent' =
                Simp.expr (List.fold_left (fun acc b -> E.min_e acc b) extent bs)
              in
              let body' =
                match rest with
                | [] -> then_
                | cs -> St.if_ (An.conjoin cs) then_
              in
              St.For { var; extent = extent'; kind; body = body' })
      | s -> s)
    stmt

let run (p : Imtp_tir.Program.t) =
  {
    p with
    kernels =
      List.map
        (fun (k : Imtp_tir.Program.kernel) ->
          { k with Imtp_tir.Program.body = rewrite k.body })
        p.kernels;
  }

(* --- affine variant --------------------------------------------------- *)

module Aff = Imtp_tir.Affine

(* Thin driver over [Affine]: the walk threads a constraint context
   (one [assume_loop] per enclosing loop, plus surviving guards), so
   it can both drop conjuncts the context already entails — multi-
   conjunct bounds, guards under rfactor — and extract bounds through
   negative coefficients, floor-divisions and min/max terms that the
   syntactic matcher above does not recognize.  [Eq] conjuncts yield
   an inexact bound: the extent is tightened but the check is kept. *)
let rec rewrite_affine ctx (s : St.t) : St.t =
  match s with
  | St.Seq ss -> St.seq (List.map (rewrite_affine ctx) ss)
  | St.Alloc { buffer; body } ->
      St.Alloc { buffer; body = rewrite_affine ctx body }
  | St.If { cond; then_; else_ } -> (
      match Aff.implies ctx cond with
      | Aff.True -> rewrite_affine ctx then_
      | Aff.False -> (
          match else_ with
          | Some e -> rewrite_affine ctx e
          | None -> St.Nop)
      | Aff.Unknown -> (
          (* prune the conjuncts the context entails individually. *)
          let atoms =
            List.filter
              (fun a -> not (Aff.prove ctx a))
              (An.conjuncts cond)
          in
          match atoms with
          | [] -> rewrite_affine ctx then_
          | atoms ->
              let cond' = An.conjoin atoms in
              let then_ = rewrite_affine (Aff.assume ctx cond') then_ in
              St.If
                { cond = cond'; then_; else_ = Option.map (rewrite_affine ctx) else_ }))
  | St.For { var; extent; kind; body } -> (
      let body = rewrite_affine (Aff.assume_loop ctx var extent) body in
      match (kind, body) with
      | ( (St.Serial | St.Unrolled),
          St.If { cond; then_; else_ = None } ) -> (
          let bounds = ref [] and rest = ref [] in
          List.iter
            (fun atom ->
              match Aff.cond_upper_bound var atom with
              | Some (b, exact) ->
                  bounds := b :: !bounds;
                  if not exact then rest := atom :: !rest
              | None -> rest := atom :: !rest)
            (An.conjuncts cond);
          match !bounds with
          | [] -> St.For { var; extent; kind; body }
          | bs ->
              let extent' =
                Simp.expr
                  (List.fold_left (fun acc b -> E.min_e acc b) extent bs)
              in
              let body' =
                match List.rev !rest with
                | [] -> then_
                | cs -> St.if_ (An.conjoin cs) then_
              in
              St.For { var; extent = extent'; kind; body = body' })
      | _ -> St.For { var; extent; kind; body })
  | St.Store _ | St.Dma _ | St.Xfer _ | St.Launch _ | St.Barrier | St.Nop -> s

let run_affine (p : Imtp_tir.Program.t) =
  {
    p with
    kernels =
      List.map
        (fun (k : Imtp_tir.Program.kernel) ->
          { k with Imtp_tir.Program.body = rewrite_affine Aff.empty k.body })
        p.kernels;
  }
