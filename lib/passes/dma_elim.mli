(** DMA-aware boundary-check elimination (§5.3.1).

    Removes boundary checks that guard pure WRAM↔MRAM data movement —
    safe because MRAM tiles are locally padded (allocated in multiples
    of tile sizes) and the checks guarding the computation itself and
    the host readout are kept — and then vectorizes the resulting
    unconditional per-element copy loops into single DMA instructions
    with static sizes (subject to the 2 KB DMA limit; oversized loops
    are strip-vectorized to the largest legal chunk). *)

val rewrite :
  max_dma_bytes:int -> elem_size:(string -> int) -> Imtp_tir.Stmt.t ->
  Imtp_tir.Stmt.t
(** [elem_size] maps a WRAM buffer name to its element size in bytes
    (used for the DMA size cap). *)

val run : Imtp_upmem.Config.t -> Imtp_tir.Program.t -> Imtp_tir.Program.t
(** Apply to every kernel of the program. *)

val rewrite_affine :
  max_dma_bytes:int -> elem_size:(string -> int) -> Imtp_tir.Stmt.t ->
  Imtp_tir.Stmt.t
(** Affine driver: the legacy rules plus vectorization of copy loops
    with non-constant (clamped) extents into variable-size DMAs, legal
    when {!Imtp_tir.Affine.upper_bound} bounds the transfer under the
    enclosing loop ranges. *)

val run_affine : Imtp_upmem.Config.t -> Imtp_tir.Program.t -> Imtp_tir.Program.t
