(** PIM-aware pass pipeline with per-pass toggles (the Fig. 12
    ablation: DMA / DMA+LT / DMA+LT+BH). *)

type config = {
  dma_elim : bool;  (** DMA-aware boundary-check elimination. *)
  loop_tighten : bool;  (** loop-bound tightening. *)
  branch_hoist : bool;  (** invariant branch hoisting + PDE. *)
  affine : bool;
      (** Drive the enabled passes through the {!Imtp_tir.Affine}
          bound-analysis layer (context-proved guard pruning,
          multi-conjunct bounds, variable-extent DMA vectorization)
          instead of the pre-affine syntactic matchers. *)
}

val all_on : config
(** The three §5.3 passes with the pre-affine drivers — the default
    everywhere, bit-identical to the stack before the affine layer
    existed. *)

val all_off : config

val legacy : config
(** Alias of {!all_on}: the pre-affine pass stack, named for ablation
    call sites. *)

val affine_on : config
(** {!all_on} driven through the affine bound-analysis layer. *)

val ablations : (string * config) list
(** The four configurations of Fig. 12, in order:
    none, DMA, DMA+LT, DMA+LT+BH. *)

val all_configs : (string * config) list
(** Every toggle combination (16 entries), named by {!config_name}; the
    sampling space of the fuzz subsystem's pass-config generator. *)

val config_name : config -> string
(** Canonical name, e.g. ["none"], ["dma+bh"], ["dma+lt+bh"]. *)

val run : ?config:config -> Imtp_upmem.Config.t -> Imtp_tir.Program.t -> Imtp_tir.Program.t
(** Apply the enabled passes (in the order DMA-elimination →
    loop-bound tightening → branch hoisting, each followed by
    simplification) to every kernel.  Defaults to {!all_on}. *)
