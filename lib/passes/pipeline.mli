(** PIM-aware pass pipeline with per-pass toggles (the Fig. 12
    ablation: DMA / DMA+LT / DMA+LT+BH). *)

type config = {
  dma_elim : bool;  (** DMA-aware boundary-check elimination. *)
  loop_tighten : bool;  (** loop-bound tightening. *)
  branch_hoist : bool;  (** invariant branch hoisting + PDE. *)
}

val all_on : config
val all_off : config
val ablations : (string * config) list
(** The four configurations of Fig. 12, in order:
    none, DMA, DMA+LT, DMA+LT+BH. *)

val all_configs : (string * config) list
(** Every toggle combination (8 entries), named by {!config_name}; the
    sampling space of the fuzz subsystem's pass-config generator. *)

val config_name : config -> string
(** Canonical name, e.g. ["none"], ["dma+bh"], ["dma+lt+bh"]. *)

val run : ?config:config -> Imtp_upmem.Config.t -> Imtp_tir.Program.t -> Imtp_tir.Program.t
(** Apply the enabled passes (in the order DMA-elimination →
    loop-bound tightening → branch hoisting, each followed by
    simplification) to every kernel.  Defaults to {!all_on}. *)
