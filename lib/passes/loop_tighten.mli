(** Loop-bound tightening (§5.3.2).

    When a loop's body is exactly one boundary check (a conjunction of
    linear inequalities) guarding the computation, each conjunct that
    is an upper bound on the loop variable is intersected with the
    loop's extent — the loop becomes
    [for v in range(min(extent, bound))] — and removed from the check,
    eliminating the "dead" iterations that were known to fail it.
    Conjuncts over outer variables are left for
    {!Branch_hoist.rewrite}. *)

val rewrite : Imtp_tir.Stmt.t -> Imtp_tir.Stmt.t
val run : Imtp_tir.Program.t -> Imtp_tir.Program.t

val rewrite_affine : Imtp_tir.Affine.ctx -> Imtp_tir.Stmt.t -> Imtp_tir.Stmt.t
(** Affine driver: threads a constraint context (one range fact per
    enclosing loop, plus surviving guards) through the nest, drops
    conjuncts the context entails, and tightens loop extents via
    {!Imtp_tir.Affine.cond_upper_bound} — covering negative
    coefficients, floor-divisions, min/max residues and [Eq]
    conjuncts (inexact: extent tightened, check kept) that the
    syntactic {!rewrite} misses. *)

val run_affine : Imtp_tir.Program.t -> Imtp_tir.Program.t
