(** Invariant branch hoisting (§5.3.3).

    Integrates loop unswitching with partial dead-code elimination:

    - a boundary check invariant in the enclosing loop variable is
      hoisted out of the loop (unswitching);
    - DMA transfers whose data is only consumed under a sibling
      boundary check are sunk beneath it (PDE — sound because the TIR
      lowering guarantees all consumers of the loop live under the
      loop's boundary constraint), which unlocks hoisting the check
      past further loop levels and WRAM allocations.

    The combination reduces the dynamic instances of the check and of
    the DMA/compute operations it guards (Fig. 8(d)). *)

val rewrite : Imtp_tir.Stmt.t -> Imtp_tir.Stmt.t
val run : Imtp_tir.Program.t -> Imtp_tir.Program.t

val rewrite_affine : Imtp_tir.Stmt.t -> Imtp_tir.Stmt.t
(** Affine driver: conjunct-level unswitching (the invariant part of a
    conjunction hoists even when other conjuncts depend on the loop
    variable), followed by a context prune that deletes hoisted checks
    the enclosing loop ranges prove or refute. *)

val run_affine : Imtp_tir.Program.t -> Imtp_tir.Program.t
