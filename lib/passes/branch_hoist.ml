module St = Imtp_tir.Stmt
module An = Imtp_tir.Analysis

let is_dma = function St.Dma _ -> true | _ -> false

let step (s : St.t) : St.t =
  match s with
  (* R1 — unswitching: hoist a loop-invariant check out of the loop. *)
  | For
      {
        var;
        extent;
        kind = (St.Serial | St.Unrolled) as kind;
        body = If { cond; then_; else_ = None };
      }
    when An.is_free_of var cond && not (An.contains_load cond) ->
      St.if_ cond (St.For { var; extent; kind; body = then_ })
  (* R2 — PDE: sink sibling DMA transfers under the single boundary
     check consuming their data. *)
  | Seq stmts
    when List.exists
           (function St.If { else_ = None; _ } -> true | _ -> false)
           stmts ->
      let ifs, others =
        List.partition
          (function St.If { else_ = None; _ } -> true | _ -> false)
          stmts
      in
      (match (ifs, List.for_all is_dma others) with
      | [ If { cond; then_; else_ = None } ], true
        when not (An.contains_load cond) ->
          (* preserve original ordering: DMAs before the check stay
             before the computation, those after stay after. *)
          let rec split before = function
            | [] -> (List.rev before, [])
            | (St.If _ as _i) :: rest -> (List.rev before, rest)
            | x :: rest -> split (x :: before) rest
          in
          let before, after = split [] stmts in
          St.if_ cond (St.seq (before @ [ then_ ] @ after))
      | _, _ -> s)
  (* R3 — allocations do not bind condition variables: hoist above. *)
  | Alloc { buffer; body = If { cond; then_; else_ = None } }
    when not (An.contains_load cond) ->
      St.if_ cond (St.Alloc { buffer; body = then_ })
  | s -> s

let rewrite stmt =
  let rec fix n s =
    let s' = St.rewrite_bottom_up step s in
    if n = 0 || s' = s then s' else fix (n - 1) s'
  in
  fix 12 stmt

let run (p : Imtp_tir.Program.t) =
  {
    p with
    kernels =
      List.map
        (fun (k : Imtp_tir.Program.kernel) ->
          { k with Imtp_tir.Program.body = rewrite k.body })
        p.kernels;
  }

(* --- affine variant --------------------------------------------------- *)

module Aff = Imtp_tir.Affine

(* Conjunct-level unswitching: where the legacy R1 only fires when the
   whole condition is loop-invariant, the affine variant splits the
   conjunction and hoists the invariant part, leaving the var-dependent
   conjuncts inside.  Guards a later prune pass can prove from the
   loop context disappear entirely. *)
let step_affine (s : St.t) : St.t =
  match s with
  | For
      {
        var;
        extent;
        kind = (St.Serial | St.Unrolled) as kind;
        body = If { cond; then_; else_ = None };
      }
    when not (An.contains_load cond) -> (
      match List.partition (An.is_free_of var) (An.conjuncts cond) with
      | [], _ -> step s
      | inv, dep ->
          let body =
            match dep with [] -> then_ | cs -> St.if_ (An.conjoin cs) then_
          in
          St.if_ (An.conjoin inv) (St.For { var; extent; kind; body }))
  | s -> step s

(* Drop guards the loop context entails (or refutes) outright; hoisting
   above may have floated a check out to a level where the enclosing
   extents prove it. *)
let rec prune ctx (s : St.t) : St.t =
  match s with
  | St.Seq ss -> St.seq (List.map (prune ctx) ss)
  | St.Alloc { buffer; body } -> St.Alloc { buffer; body = prune ctx body }
  | St.For { var; extent; kind; body } ->
      St.For
        { var; extent; kind; body = prune (Aff.assume_loop ctx var extent) body }
  | St.If { cond; then_; else_ } -> (
      match Aff.implies ctx cond with
      | Aff.True -> prune ctx then_
      | Aff.False -> (
          match else_ with Some e -> prune ctx e | None -> St.Nop)
      | Aff.Unknown ->
          St.If
            {
              cond;
              then_ = prune (Aff.assume ctx cond) then_;
              else_ = Option.map (prune ctx) else_;
            })
  | St.Store _ | St.Dma _ | St.Xfer _ | St.Launch _ | St.Barrier | St.Nop -> s

let rewrite_affine stmt =
  let rec fix n s =
    let s' = St.rewrite_bottom_up step_affine s in
    if n = 0 || s' = s then s' else fix (n - 1) s'
  in
  prune Aff.empty (fix 12 stmt)

let run_affine (p : Imtp_tir.Program.t) =
  {
    p with
    kernels =
      List.map
        (fun (k : Imtp_tir.Program.kernel) ->
          { k with Imtp_tir.Program.body = rewrite_affine k.body })
        p.kernels;
  }
