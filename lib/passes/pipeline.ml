type config = {
  dma_elim : bool;
  loop_tighten : bool;
  branch_hoist : bool;
  affine : bool;
}

let all_on =
  { dma_elim = true; loop_tighten = true; branch_hoist = true; affine = false }

let all_off =
  {
    dma_elim = false;
    loop_tighten = false;
    branch_hoist = false;
    affine = false;
  }

(* The pre-affine pass stack, kept reachable (and bit-identical) for
   ablation against the affine drivers. *)
let legacy = all_on
let affine_on = { all_on with affine = true }

let ablations =
  [
    ("none", all_off);
    ("dma", { all_off with dma_elim = true });
    ("dma+lt", { all_off with dma_elim = true; loop_tighten = true });
    ("dma+lt+bh", all_on);
  ]

let config_name c =
  let parts =
    (if c.dma_elim then [ "dma" ] else [])
    @ (if c.loop_tighten then [ "lt" ] else [])
    @ (if c.branch_hoist then [ "bh" ] else [])
    @ if c.affine then [ "af" ] else []
  in
  match parts with [] -> "none" | ps -> String.concat "+" ps

let all_configs =
  List.concat_map
    (fun dma_elim ->
      List.concat_map
        (fun loop_tighten ->
          List.concat_map
            (fun branch_hoist ->
              List.map
                (fun affine ->
                  let c = { dma_elim; loop_tighten; branch_hoist; affine } in
                  (config_name c, c))
                [ false; true ])
            [ false; true ])
        [ false; true ])
    [ false; true ]

let simplify_kernels (p : Imtp_tir.Program.t) =
  {
    p with
    kernels =
      List.map
        (fun (k : Imtp_tir.Program.kernel) ->
          { k with Imtp_tir.Program.body = Imtp_tir.Simplify.stmt k.body })
        p.kernels;
  }

let run ?(config = all_on) cfg p =
  let dma = if config.affine then Dma_elim.run_affine else Dma_elim.run in
  let lt = if config.affine then Loop_tighten.run_affine else Loop_tighten.run in
  let bh =
    if config.affine then Branch_hoist.run_affine else Branch_hoist.run
  in
  let p = if config.dma_elim then dma cfg p else p in
  let p = if config.loop_tighten then lt p else p in
  let p = if config.branch_hoist then bh p else p in
  simplify_kernels p
