module E = Imtp_tir.Expr
module St = Imtp_tir.Stmt
module An = Imtp_tir.Analysis
module Simp = Imtp_tir.Simplify
module Sub = Imtp_tir.Subst

(* Largest divisor d of [n] with d <= cap. *)
let largest_divisor n cap =
  let best = ref 1 in
  let d = ref 1 in
  while !d * !d <= n do
    if n mod !d = 0 then begin
      if !d <= cap && !d > !best then best := !d;
      let q = n / !d in
      if q <= cap && q > !best then best := q
    end;
    incr d
  done;
  !best

let rewrite ~max_dma_bytes ~elem_size stmt =
  let strip (s : St.t) : St.t =
    match s with
    (* Drop a boundary check whose body is pure data movement. *)
    | If { cond = _; then_ = Dma _ as d; else_ = None } -> d
    (* Vectorize: a loop whose body is one DMA with unit-progression
       offsets becomes a single (or strip-mined) static-size DMA. *)
    | For { var; extent; kind = Serial | Unrolled; body = Dma r } -> (
        match (Simp.const_int extent, Simp.const_int r.elems) with
        | Some ext, Some e when ext > 1 -> (
            match (An.stride_in var r.wram_off, An.stride_in var r.mram_off) with
            | Some sw, Some sm when sw = e && sm = e ->
                let esize = elem_size r.wram in
                let total = ext * e in
                let at0 off = Simp.expr (Sub.expr var (E.int 0) off) in
                if total * esize <= max_dma_bytes then
                  St.Dma
                    {
                      r with
                      wram_off = at0 r.wram_off;
                      mram_off = at0 r.mram_off;
                      elems = E.int total;
                    }
                else begin
                  (* strip-vectorize to the largest legal chunk. *)
                  let cap = max 1 (max_dma_bytes / (esize * e)) in
                  let d = largest_divisor ext cap in
                  if d <= 1 then s
                  else begin
                    let v' = Imtp_tir.Var.fresh (Imtp_tir.Var.name var ^ "v") in
                    let shift off =
                      Simp.expr
                        (Sub.expr var (E.Binop (E.Mul, E.var v', E.int d)) off)
                    in
                    St.For
                      {
                        var = v';
                        extent = E.int (ext / d);
                        kind = St.Serial;
                        body =
                          St.Dma
                            {
                              r with
                              wram_off = shift r.wram_off;
                              mram_off = shift r.mram_off;
                              elems = E.int (d * e);
                            };
                      }
                  end
                end
            | _, _ -> s)
        | _, _ -> s)
    | s -> s
  in
  (* Iterate to a fixpoint: vectorizing the innermost loop exposes the
     next level for coalescing. *)
  let rec fix n s =
    let s' = St.rewrite_bottom_up strip s in
    if n = 0 || s' = s then s' else fix (n - 1) s'
  in
  fix 8 stmt

(* --- affine variant --------------------------------------------------- *)

module Aff = Imtp_tir.Affine

(* The affine walk threads a loop-range context so it can also
   vectorize copy loops whose extent is a clamped expression like
   [min(c, n - base)] — the shape the affine lowering emits on
   partial tiles.  Legality needs an upper bound on the transfer
   size, which [Affine.upper_bound] derives from the enclosing loop
   ranges; the variable-size DMA moves exactly the elements the loop
   did (and none when the clamp is empty). *)
let rewrite_affine ~max_dma_bytes ~elem_size stmt =
  let strip ctx (s : St.t) : St.t =
    match s with
    | If { cond = _; then_ = Dma _ as d; else_ = None } -> d
    | For { var; extent; kind = Serial | Unrolled; body = Dma r } -> (
        match (Simp.const_int extent, Simp.const_int r.elems) with
        | Some _, _ | _, None -> s (* constant extents: legacy rule below *)
        | None, Some e -> (
            match (An.stride_in var r.wram_off, An.stride_in var r.mram_off) with
            | Some sw, Some sm when sw = e && sm = e && e > 0 -> (
                match Aff.upper_bound ctx extent with
                | Some ub
                  when ub > 1 && ub * e * elem_size r.wram <= max_dma_bytes ->
                    let at0 off = Simp.expr (Sub.expr var (E.int 0) off) in
                    St.Dma
                      {
                        r with
                        wram_off = at0 r.wram_off;
                        mram_off = at0 r.mram_off;
                        elems = Simp.expr (E.Binop (E.Mul, extent, E.int e));
                      }
                | Some _ | None -> s)
            | _, _ -> s))
    | s -> s
  in
  (* Context-carrying bottom-up walk: children first (under the
     extended context), then the node itself. *)
  let rec go ctx (s : St.t) : St.t =
    let s =
      match s with
      | St.Seq ss -> St.seq (List.map (go ctx) ss)
      | St.Alloc { buffer; body } -> St.Alloc { buffer; body = go ctx body }
      | St.If { cond; then_; else_ } ->
          St.If
            {
              cond;
              then_ = go (Aff.assume ctx cond) then_;
              else_ = Option.map (go ctx) else_;
            }
      | St.For { var; extent; kind; body } ->
          St.For
            { var; extent; kind; body = go (Aff.assume_loop ctx var extent) body }
      | St.Store _ | St.Dma _ | St.Xfer _ | St.Launch _ | St.Barrier | St.Nop
        ->
          s
    in
    strip ctx s
  in
  let rec fix n s =
    (* constant-extent vectorization, strip-mining and guard stripping
       first (the legacy fixpoint), then the affine pass over what
       remains; alternate until neither makes progress. *)
    let s' = go Aff.empty (rewrite ~max_dma_bytes ~elem_size s) in
    if n = 0 || s' = s then s' else fix (n - 1) s'
  in
  fix 4 stmt

let run_with rw (cfg : Imtp_upmem.Config.t) (p : Imtp_tir.Program.t) =
  let sizes = Hashtbl.create 16 in
  List.iter
    (fun (k : Imtp_tir.Program.kernel) ->
      St.iter
        (function
          | St.Alloc { buffer; _ } ->
              Hashtbl.replace sizes buffer.Imtp_tir.Buffer.name
                (Imtp_tensor.Dtype.size_in_bytes buffer.Imtp_tir.Buffer.dtype)
          | St.Seq _ | St.For _ | St.If _ | St.Store _ | St.Dma _ | St.Xfer _
          | St.Launch _ | St.Barrier | St.Nop ->
              ())
        k.body)
    p.kernels;
  let elem_size name = Option.value (Hashtbl.find_opt sizes name) ~default:4 in
  let kernels =
    List.map
      (fun (k : Imtp_tir.Program.kernel) ->
        {
          k with
          Imtp_tir.Program.body =
            rw ~max_dma_bytes:cfg.Imtp_upmem.Config.dma_max_bytes ~elem_size
              k.body;
        })
      p.kernels
  in
  { p with kernels }

let run cfg p = run_with rewrite cfg p
let run_affine cfg p = run_with rewrite_affine cfg p
