(** The build/measure engine: one cached, batched code path from a
    schedule candidate to its latency statistics.

    Every consumer of the compilation pipeline — the measurement
    harness, the evolutionary search, the tuner, the differential
    fuzzer and the CLI — goes through this module, so the staged
    pipeline

    {v params -> sched -> lowered program -> pass-optimized program -> stats v}

    exists exactly once.  Results are memoized in a content-addressed
    table keyed by a canonical structural hash over the operator, the
    sketch parameters, the pass configuration and the lowering options,
    so repeated candidates (common under mutation-based evolutionary
    search) are served from cache instead of being re-lowered and
    re-costed.  Failures are typed (and cached too, so a re-proposed
    invalid candidate is rejected without recompilation).

    {2 Thread safety and parallel batches}

    An engine is domain-safe: one mutex guards the memo tables and the
    counters, and all stage work runs outside it, so {!batch} can
    dispatch candidates across a {!Pool} of worker domains
    ([?jobs], default {!Pool.default_jobs}).  Parallelism never changes
    answers: a batch classifies every slot up front (cache hit,
    first build of a key, or duplicate of an earlier slot), draws one
    value from the caller's [rng] and gives candidate [i] the
    derived stream [Rng.stream ~base ~index:i], so results, order,
    latencies, [from_cache] flags and the integer counters are
    identical at any job count — [~jobs:1] runs the same classified
    path inline on the calling domain with no domains spun up.  The
    only caveat: a duplicate slot reads its builder's result directly,
    so if an eviction fires {e mid-batch} (a batch of distinct new keys
    larger than the remaining [max_entries] headroom) the sequential
    walk could in principle rebuild where the parallel one reuses —
    same values either way, it is only the [from_cache]/counter ledger
    that is defined by the classified contract rather than the table's
    transient state. *)

(** Why a candidate failed to build, stage by stage. *)
type error =
  | Sketch_invalid of string
      (** {!Sketch.instantiate} rejected the parameters. *)
  | Verifier_rejected of Verifier.rejection
      (** the UPMEM code verifier rejected the schedule or program. *)
  | Lower_failed of string  (** lowering refused the schedule. *)
  | Cost_failed of string  (** the timing model could not evaluate. *)

val error_to_string : error -> string
(** Stable one-line rendering, prefixed by the failing stage
    (["sketch: ..."], ["verifier: ..."], ["lower: ..."], ["cost: ..."]). *)

type artifact = {
  key : string;  (** content hash this artifact is cached under. *)
  sched : Imtp_schedule.Sched.t;  (** instantiated schedule. *)
  lowered : Imtp_tir.Program.t;  (** raw lowering, before passes. *)
  program : Imtp_tir.Program.t;  (** after the PIM-aware passes. *)
  stats : Imtp_upmem.Stats.t;  (** deterministic latency breakdown. *)
}
(** Everything the staged pipeline produces for one candidate. *)

type measurement = {
  artifact : artifact;
  latency_s : float;
      (** the tuning objective: [Stats.total_s artifact.stats], with
          multiplicative measurement noise when an [rng] was given. *)
  from_cache : bool;  (** whether the artifact was served from cache. *)
}

type prepared = {
  pkey : string;  (** the same content hash an {!artifact} would use. *)
  psched : Imtp_schedule.Sched.t;
  plowered : Imtp_tir.Program.t;
  pprogram : Imtp_tir.Program.t;
}
(** Everything the pipeline produces {e before} the cost stage — the
    cheap prefix (sketch, verify, lower, passes) whose lowered TIR the
    learned cost model's feature extraction walks.  {!simulate} turns a
    prepared candidate into a full {!measurement} on demand; candidates
    a ranking model skips never pay for the simulator. *)

type counters = {
  lookups : int;  (** cache probes (build/measure/keyed lookups). *)
  hits : int;
  misses : int;
  evictions : int;  (** table resets after exceeding [max_entries]. *)
  built : int;  (** artifacts (or prepared prefixes) constructed. *)
  failed : int;  (** typed errors constructed (and cached). *)
  costed : int;
      (** simulator executions: runs of the cost stage.  Measurement
          gating is judged against this ledger — a gated search must
          show the same best latency with far fewer [costed]. *)
  sketch_s : float;  (** cumulative per-stage build time, seconds. *)
  lower_s : float;
  passes_s : float;
  verify_s : float;
  cost_s : float;
}

type t
(** An engine instance: one machine configuration plus its memo table
    and counters.  Create a fresh engine per independent search run for
    run-local deduplication, or share one across runs to reuse builds. *)

val create : ?max_entries:int -> Imtp_upmem.Config.t -> t
(** [max_entries] (default 4096) bounds the memo table; when exceeded
    the table is reset (counted in [evictions]) rather than grown. *)

val config : t -> Imtp_upmem.Config.t

val counters : t -> counters
(** A consistent snapshot, taken under the engine lock — safe to diff
    against a later snapshot even while worker domains are updating. *)

val hit_rate : counters -> float
(** [hits / lookups], 0 when no lookups. *)

val log_summary : t -> unit
(** Emit the cache hit rate and per-stage build times on the
    [imtp.engine] {!Logs} source (info level). *)

val noise_amplitude : float
(** Relative measurement noise (±2 %) applied when an [rng] is given. *)

(** {2 Canonical structural hashing} *)

val op_key : Imtp_workload.Op.t -> string
(** Canonical serialization of an operator definition (name, dtype,
    axes, tensor bindings, element expression). *)

val options_key : Imtp_lower.Lowering.options -> string
(** Canonical serialization of lowering options; the resident-input
    list is sorted so its order never splits the cache. *)

val digest_parts : string list -> string
(** Hex digest of the concatenated parts — the content address used by
    the memo table.  Exposed so callers with non-sketch entry points
    (the fuzz oracle) can derive compatible keys. *)

val fingerprint :
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  ?verify:bool ->
  Imtp_workload.Op.t ->
  Sketch.params ->
  string
(** The cache key of a sketch candidate: a digest over the operator,
    the parameters, the pass configuration, the lowering options
    derived from the parameters, and the verify toggle.  Stable across
    engine instances and process runs. *)

(** {2 The staged pipeline} *)

val compile_sched :
  ?options:Imtp_lower.Lowering.options ->
  ?passes:Imtp_passes.Pipeline.config ->
  Imtp_upmem.Config.t ->
  Imtp_schedule.Sched.t ->
  (Imtp_tir.Program.t, error) result
(** Uncached schedule-level entry: lower, then run the passes.  No
    verification — this is the facade ([Imtp.compile]) path. *)

val estimate :
  Imtp_upmem.Config.t -> Imtp_tir.Program.t -> (Imtp_upmem.Stats.t, error) result
(** Uncached cost-model entry ([Cost_failed] instead of an exception). *)

val optimize :
  t -> ?passes:Imtp_passes.Pipeline.config -> Imtp_tir.Program.t -> Imtp_tir.Program.t
(** Run the pass pipeline under this engine (counted in [passes_s]). *)

val build :
  t ->
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  ?verify:bool ->
  Imtp_workload.Op.t ->
  Sketch.params ->
  (artifact, error) result
(** Instantiate, (pre-)verify, lower, optimize, (post-)verify and cost
    one candidate — or return the cached outcome.  [verify] (default
    [true]) may be disabled for experiments that deliberately sweep
    beyond hardware limits. *)

val find :
  t ->
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  ?verify:bool ->
  Imtp_workload.Op.t ->
  Sketch.params ->
  (artifact, error) result option
(** Pure cache inspection: no build, no counter updates. *)

val measure :
  t ->
  ?rng:Rng.t ->
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  ?verify:bool ->
  Imtp_workload.Op.t ->
  Sketch.params ->
  (measurement, error) result
(** {!build} plus the measurement objective.  [rng] draws fresh ±2 %
    multiplicative noise per call — also on cache hits, modelling
    run-to-run variation of a real re-measurement — while the cached
    [stats] stay bit-identical. *)

val execute :
  Imtp_tir.Program.t ->
  inputs:(string * Imtp_tensor.Tensor.t) list ->
  (string * Imtp_tensor.Tensor.t) list * Imtp_tir.Eval.counters
(** Run a built program on its functional executor ({!Imtp_tir.Exec},
    compiled by default, the interpreter under [IMTP_EXEC=interp]),
    inside an [engine.execute] span whose [executor] attribute records
    which backend served the run. *)

val batch :
  t ->
  ?jobs:int ->
  ?rng:Rng.t ->
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  ?verify:bool ->
  Imtp_workload.Op.t ->
  Sketch.params list ->
  (Sketch.params * (measurement, error) result) list
(** Measure a whole generation, dispatching uncached builds across up
    to [jobs] domains (default {!Pool.default_jobs}; [~jobs:1] stays on
    the calling domain), then report the batch's cache hits/misses and
    per-stage build times through {!Logs} (debug level on the
    [imtp.engine] source).  Results keep candidate order and are
    bit-identical at any job count; with an [rng], exactly one value is
    drawn from it per call and candidate [i]'s ±2 % noise comes from
    [Rng.stream ~base ~index:i] (see the determinism contract above).
    The [engine.batch] span records [jobs], [domains_used] and a
    per-domain [utilization] breakdown. *)

(** {2 The prepared (cost-free) prefix}

    The measurement-gated search builds every candidate only up to the
    optimized program ({!prepare}/{!prepare_batch}), extracts model
    features from that TIR, and pays for the cost stage ({!simulate})
    only on the fraction the model ranks worth measuring. *)

val prepare :
  t ->
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  ?verify:bool ->
  Imtp_workload.Op.t ->
  Sketch.params ->
  (prepared, error) result
(** {!build} without the cost stage, cached under the same fingerprint
    in a separate prepared table.  A full artifact already in the cache
    serves a prepare lookup as a hit (its program is identical), so
    cache-hit and fresh-built candidates yield bit-identical features. *)

val prepare_batch :
  t ->
  ?jobs:int ->
  ?passes:Imtp_passes.Pipeline.config ->
  ?skip_inputs:string list ->
  ?verify:bool ->
  Imtp_workload.Op.t ->
  Sketch.params list ->
  (Sketch.params * (prepared, error) result) list
(** Prepare a whole generation across up to [jobs] domains, under the
    same ahead-of-time classification contract as {!batch}: results,
    order and the hit/miss ledger are bit-identical at any job count.
    Draws nothing from any rng — ranking a population must leave the
    caller's noise stream untouched. *)

val simulate :
  t -> ?rng:Rng.t -> prepared -> (measurement, error) result
(** Run the cost stage on a prepared candidate (or serve the finished
    artifact from cache) and apply the measurement objective, with the
    same ±2 % noise semantics as {!measure}.  Each uncached call is one
    simulator execution, counted in [counters.costed]. *)

val lower_keyed :
  t ->
  key:string ->
  (unit -> (Imtp_tir.Program.t, error) result) ->
  (Imtp_tir.Program.t, error) result
(** Cached raw lowering under a caller-provided content key (see
    {!digest_parts}) — the entry point for consumers whose schedules do
    not come from sketch parameters, e.g. the fuzz oracle's replayed
    step lists.  The thunk runs only on a miss; its outcome (success or
    typed error) is cached either way. *)
