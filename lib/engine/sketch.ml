module Op = Imtp_workload.Op
module S = Imtp_schedule.Sched
module L = Imtp_lower.Lowering

type params = {
  spatial_dpus : int;
  reduction_dpus : int;
  tasklets : int;
  cache_elems : int;
  rows_per_tasklet : int;
  unroll_inner : bool;
  host_threads : int;
}

let default_params =
  {
    spatial_dpus = 256;
    reduction_dpus = 1;
    tasklets = 16;
    cache_elems = 64;
    rows_per_tasklet = 1;
    unroll_inner = false;
    host_threads = 1;
  }

type family = Elementwise | Tasklet_reduce | Mat_vec | Batched | Mat_mat | Grid_map

let family_of (op : Op.t) =
  match
    (List.length (Op.spatial_axes op), List.length (Op.reduction_axes op))
  with
  | 1, 0 -> Elementwise
  | 0, 1 -> Tasklet_reduce
  | 1, 1 -> Mat_vec
  | 2, 0 -> Grid_map
  | 2, 1 ->
      if
        List.exists
          (fun (t, _) -> List.length (Op.input_shape op t) >= 3)
          op.Op.inputs
      then Batched
      else Mat_mat
  | s, r ->
      invalid_arg
        (Printf.sprintf
           "Sketch.family_of: unsupported iteration domain (%d spatial, %d \
            reduction axes)"
           s r)

let uses_rfactor p = p.reduction_dpus > 1
let ceil_div a b = (a + b - 1) / b

let maybe_unroll s p loop = if p.unroll_inner then S.unroll s loop

(* Only body-referenced inputs get read caches: epilogue-only inputs
   are staged by the lowering at the write-cache site instead. *)
let cache_all_inputs s at =
  List.iter
    (fun t ->
      let c = S.cache_read s t in
      S.compute_at s c at)
    (Op.body_refs (S.op s))

let cache_output s at =
  let c = S.cache_write s (fst (S.op s).Op.output) in
  S.reverse_compute_at s c at

(* Derive the per-DPU tiling for a 1-D axis of [n] elements spread over
   [dpus] DPUs: the requested DPU count takes priority, the caching
   tile shrinks to the per-DPU slice if needed, and tasklets beyond the
   available caching blocks stay idle (exactly how PrIM's fixed 1,024 B
   recommendation under-fills tasklets on small per-DPU slices, §7.1). *)
let derive_1d ~n ~dpus ~tasklets ~cache_elems =
  let per_dpu = max 1 (ceil_div n dpus) in
  let cache_eff = max 1 (min cache_elems per_dpu) in
  let t_eff = max 1 (min tasklets (ceil_div per_dpu cache_eff)) in
  let chunk = max 1 (ceil_div per_dpu (t_eff * cache_eff)) in
  (t_eff, chunk, cache_eff)

(* i -> [dpu][thread][chunk][inner] *)
let elementwise op p =
  let s = S.create op in
  let i = List.hd (S.order s) in
  let n = i.S.extent in
  let t_eff, chunk, cache_eff =
    derive_1d ~n ~dpus:p.spatial_dpus ~tasklets:p.tasklets
      ~cache_elems:p.cache_elems
  in
  match S.split s i ~factors:[ t_eff; chunk; cache_eff ] with
  | [ i_dpu; i_th; i_chunk; i_in ] ->
      S.bind s i_dpu S.Block_x;
      S.bind s i_th S.Thread_x;
      cache_all_inputs s i_chunk;
      cache_output s i_chunk;
      maybe_unroll s p i_in;
      s
  | _ -> assert false

(* i(red) -> [dpu rfactor][thread][chunk][inner], tasklet partials *)
let tasklet_reduce op p =
  let s = S.create op in
  let i = List.hd (S.order s) in
  let n = i.S.extent in
  let dpus = max 1 p.reduction_dpus in
  let t_eff, chunk, cache_eff =
    derive_1d ~n ~dpus ~tasklets:p.tasklets ~cache_elems:p.cache_elems
  in
  match S.split s i ~factors:[ t_eff; chunk; cache_eff ] with
  | [ i_dpu; i_th; i_chunk; i_in ] ->
      S.bind s i_dpu S.Block_x;
      S.rfactor s i_dpu;
      S.bind s i_th S.Thread_x;
      cache_all_inputs s i_chunk;
      (let c = S.cache_write s (fst (S.op s).Op.output) in
       S.reverse_compute_at s c i_th);
      maybe_unroll s p i_in;
      s
  | _ -> assert false

(* i -> [dpu][thread][rows]; j -> ([dpu_r])[chunk][inner] *)
let mat_vec op p =
  let s = S.create op in
  let i = List.nth (S.order s) 0 and j = List.nth (S.order s) 1 in
  let n = i.S.extent and k = j.S.extent in
  (* Honor the requested DPU count even when rows are scarce: cap the
     tasklet count at the rows available per DPU (idle tasklets on the
     real machine contribute nothing). *)
  let rows_per_dpu = max 1 (ceil_div n p.spatial_dpus) in
  let t_eff = max 1 (min p.tasklets rows_per_dpu) in
  let rpt = max 1 (ceil_div rows_per_dpu t_eff) in
  let i_loops = S.split s i ~factors:[ t_eff; rpt ] in
  match i_loops with
  | [ i_dpu; i_th; i_r ] -> (
      S.bind s i_dpu S.Block_x;
      S.bind s i_th S.Thread_x;
      if p.reduction_dpus > 1 then begin
        let chunkj = max 1 (ceil_div k (p.reduction_dpus * p.cache_elems)) in
        match S.split s j ~factors:[ chunkj; p.cache_elems ] with
        | [ j_blk; j_chunk; j_in ] ->
            S.reorder s [ j_blk; i_th; i_r; j_chunk ];
            S.bind s j_blk S.Block_y;
            S.rfactor s j_blk;
            cache_all_inputs s j_chunk;
            cache_output s i_r;
            maybe_unroll s p j_in;
            s
        | _ -> assert false
      end
      else begin
        match S.split s j ~factors:[ p.cache_elems ] with
        | [ j_chunk; j_in ] ->
            cache_all_inputs s j_chunk;
            cache_output s i_r;
            maybe_unroll s p j_in;
            s
        | _ -> assert false
      end)
  | _ -> assert false

(* i -> Block_x; j -> [dpu][thread][rows]; k -> ([dpu_r])[chunk][inner] *)
let batched op p =
  let s = S.create op in
  let i = List.nth (S.order s) 0
  and j = List.nth (S.order s) 1
  and k = List.nth (S.order s) 2 in
  let kext = k.S.extent in
  S.bind s i S.Block_x;
  let t_eff =
    max 1 (min p.tasklets (ceil_div j.S.extent p.rows_per_tasklet))
  in
  let j_th, j_r =
    match S.split s j ~factors:[ t_eff; p.rows_per_tasklet ] with
    | [ j_dpu; j_th; j_r ] ->
        S.bind s j_dpu S.Block_y;
        S.bind s j_th S.Thread_x;
        (j_th, j_r)
    | _ -> assert false
  in
  if p.reduction_dpus > 1 then begin
    let chunkk = max 1 (ceil_div kext (p.reduction_dpus * p.cache_elems)) in
    match S.split s k ~factors:[ chunkk; p.cache_elems ] with
    | [ k_blk; k_chunk; k_in ] ->
        S.reorder s [ k_blk; j_th; j_r; k_chunk ];
        S.bind s k_blk S.Block_z;
        S.rfactor s k_blk;
        cache_all_inputs s k_chunk;
        cache_output s j_r;
        maybe_unroll s p k_in;
        s
    | _ -> assert false
  end
  else begin
    match S.split s k ~factors:[ p.cache_elems ] with
    | [ k_chunk; k_in ] ->
        cache_all_inputs s k_chunk;
        cache_output s j_r;
        maybe_unroll s p k_in;
        s
    | _ -> assert false
  end

(* GEMM: i -> [dpu][thread][rows]; j -> [dpu][tile]; k -> [chunk][inner].
   A tiles cache at the k-chunk level (contiguous k rows); B tiles cache
   per i-row iteration (a k-tile x j-tile block, contiguous along j);
   the scalar C accumulator caches at the j-tile loop. *)
let mat_mat op p =
  let s = S.create op in
  let i = List.nth (S.order s) 0
  and j = List.nth (S.order s) 1
  and k = List.nth (S.order s) 2 in
  let n = i.S.extent and m = j.S.extent and kext = k.S.extent in
  (* split the spatial DPU budget between i and j. *)
  let j_blocks = max 1 (min m (min 32 (p.spatial_dpus / 16))) in
  let i_dpus = max 1 (p.spatial_dpus / j_blocks) in
  let rows_per_dpu = max 1 (ceil_div n i_dpus) in
  let t_eff = max 1 (min p.tasklets rows_per_dpu) in
  let rpt = max 1 (ceil_div rows_per_dpu t_eff) in
  let i_th, i_r =
    match S.split s i ~factors:[ t_eff; rpt ] with
    | [ i_dpu; i_th; i_r ] ->
        S.bind s i_dpu S.Block_x;
        S.bind s i_th S.Thread_x;
        (i_th, i_r)
    | _ -> assert false
  in
  let j_dpu, j_t =
    match S.split s j ~factors:[ max 1 (ceil_div m j_blocks) ] with
    | [ j_dpu; j_t ] ->
        S.bind s j_dpu S.Block_y;
        (j_dpu, j_t)
    | _ -> assert false
  in
  if p.reduction_dpus > 1 then begin
    let chunkk = max 1 (ceil_div kext (p.reduction_dpus * p.cache_elems)) in
    match S.split s k ~factors:[ chunkk; p.cache_elems ] with
    | [ k_blk; k_chunk; k_in ] ->
        S.reorder s [ j_dpu; k_blk; i_th; i_r; j_t; k_chunk ];
        S.bind s k_blk S.Block_z;
        S.rfactor s k_blk;
        (let ca = S.cache_read s "A" in
         S.compute_at s ca k_chunk);
        (let cb = S.cache_read s "B" in
         S.compute_at s cb i_r);
        cache_output s j_t;
        maybe_unroll s p k_in;
        s
    | _ -> assert false
  end
  else begin
    match S.split s k ~factors:[ p.cache_elems ] with
    | [ k_chunk; k_in ] ->
        S.reorder s [ j_dpu; i_th; i_r; j_t; k_chunk ];
        (let ca = S.cache_read s "A" in
         S.compute_at s ca k_chunk);
        (let cb = S.cache_read s "B" in
         S.compute_at s cb i_r);
        cache_output s j_t;
        maybe_unroll s p k_in;
        s
    | _ -> assert false
  end

(* i -> Block_x; j -> [dpu][thread][chunk][inner]: two spatial axes, no
   reduction (rowdiv, 2-D scaling) — the outer axis maps whole to the
   X grid dimension, the inner axis tiles like the elementwise family. *)
let grid_map op p =
  let s = S.create op in
  let i = List.nth (S.order s) 0 and j = List.nth (S.order s) 1 in
  S.bind s i S.Block_x;
  let j_dpus = max 1 (p.spatial_dpus / max 1 i.S.extent) in
  let t_eff, chunk, cache_eff =
    derive_1d ~n:j.S.extent ~dpus:j_dpus ~tasklets:p.tasklets
      ~cache_elems:p.cache_elems
  in
  match S.split s j ~factors:[ t_eff; chunk; cache_eff ] with
  | [ j_dpu; j_th; j_chunk; j_in ] ->
      S.bind s j_dpu S.Block_y;
      S.bind s j_th S.Thread_x;
      cache_all_inputs s j_chunk;
      cache_output s j_chunk;
      maybe_unroll s p j_in;
      s
  | _ -> assert false

let instantiate op p =
  match family_of op with
  | Elementwise -> elementwise op p
  | Grid_map -> grid_map op p
  | Tasklet_reduce -> tasklet_reduce op p
  | Mat_vec -> mat_vec op p
  | Batched -> batched op p
  | Mat_mat -> mat_mat op p

let lower_options p = { L.default_options with L.host_reduce_threads = p.host_threads }

let describe p =
  Printf.sprintf
    "dpus=(%d,%d) tasklets=%d cache=%d rows=%d unroll=%b host_threads=%d"
    p.spatial_dpus p.reduction_dpus p.tasklets p.cache_elems p.rows_per_tasklet
    p.unroll_inner p.host_threads

(* --- parameter value sets --------------------------------------------- *)

let pow2s lo hi =
  let rec go v = if v > hi then [] else v :: go (2 * v) in
  go lo

let spatial_dpu_choices cfg =
  let maxd = Imtp_upmem.Config.nr_dpus cfg in
  List.filter (fun d -> d <= maxd) (pow2s 16 maxd)

let reduction_dpu_choices cfg (op : Op.t) =
  match Op.reduction_axes op with
  | [] -> [ 1 ]
  | a :: _ ->
      (* Pure reductions use the whole machine along the reduction
         dimension; ops with spatial axes multiply grids, so cap it. *)
      let cap =
        if Op.spatial_axes op = [] then Imtp_upmem.Config.nr_dpus cfg else 128
      in
      List.filter (fun d -> d <= a.Op.extent) (pow2s 1 cap)

let tasklet_choices = [ 1; 2; 4; 8; 12; 16; 20; 24 ]

let cache_choices (op : Op.t) =
  (* elements; 8 B .. 2 KB at 4 B/elem. *)
  let innermost = List.nth op.Op.axes (List.length op.Op.axes - 1) in
  let pow2 =
    List.filter (fun c -> c <= max 2 (2 * innermost.Op.extent)) (pow2s 2 512)
  in
  (* Shape-derived tiles: the ceil-halving chain of the innermost
     extent opens non-divisible split factors on ragged axes
     (500 → 500, 250, 125, 63, …) whose partial tiles the affine
     lowering clamps and the verifier bounds.  On power-of-two extents
     the chain is a subset of [pow2] and dedups away, so existing
     search trajectories are unchanged. *)
  let rec chain v = if v < 2 then [] else v :: chain ((v + 1) / 2) in
  List.sort_uniq Int.compare (pow2 @ chain (min innermost.Op.extent 512))

let rows_choices = [ 1; 2; 4; 8; 16 ]
let host_thread_choices = [ 1; 4; 16 ]

let space cfg op =
  let fam = family_of op in
  let sd = spatial_dpu_choices cfg in
  let rd = reduction_dpu_choices cfg op in
  let base =
    List.concat_map
      (fun spatial_dpus ->
        List.concat_map
          (fun reduction_dpus ->
            List.concat_map
              (fun tasklets ->
                List.map
                  (fun cache_elems ->
                    {
                      default_params with
                      spatial_dpus;
                      reduction_dpus;
                      tasklets;
                      cache_elems;
                    })
                  (cache_choices op))
              tasklet_choices)
          rd)
      sd
  in
  match fam with
  | Elementwise | Grid_map ->
      List.filter (fun p -> p.reduction_dpus = 1) base
  | Tasklet_reduce ->
      (* the rfactor'd reduction split is the only DPU dimension. *)
      List.filter (fun p -> p.spatial_dpus = 16) base
      |> List.map (fun p -> { p with spatial_dpus = 1; reduction_dpus = max 2 p.reduction_dpus })
  | Mat_vec | Mat_mat -> base
  | Batched ->
      List.concat_map
        (fun rows -> List.map (fun p -> { p with rows_per_tasklet = rows }) base)
        rows_choices

let random rng cfg op =
  let fam = family_of op in
  let p =
    {
      spatial_dpus = Rng.pick rng (spatial_dpu_choices cfg);
      reduction_dpus = Rng.pick rng (reduction_dpu_choices cfg op);
      tasklets = Rng.pick rng tasklet_choices;
      cache_elems = Rng.pick rng (cache_choices op);
      rows_per_tasklet = Rng.pick rng rows_choices;
      unroll_inner = Rng.bool rng;
      host_threads = Rng.pick rng host_thread_choices;
    }
  in
  match fam with
  | Elementwise | Grid_map -> { p with reduction_dpus = 1; rows_per_tasklet = 1 }
  | Tasklet_reduce ->
      {
        p with
        spatial_dpus = 1;
        reduction_dpus = max 2 p.reduction_dpus;
        rows_per_tasklet = 1;
      }
  | Mat_vec | Mat_mat -> { p with rows_per_tasklet = 1 }
  | Batched -> p

let mutate rng cfg op p =
  let fam = family_of op in
  (* Mutation stays within the parent's design space: whether the
     schedule rfactors is a structural (sketch-level) choice, not a
     tunable parameter — evolution cannot cross it, only fresh
     sampling can (§5.2.3).  [`Rd] therefore re-draws the reduction
     DPU count within the same family. *)
  let fields =
    match fam with
    | Elementwise | Grid_map -> [ `Sd; `T; `C; `U; `H ]
    | Tasklet_reduce -> [ `Sd; `Rd; `T; `C; `U ]
    | Mat_vec | Mat_mat ->
        if uses_rfactor p then [ `Sd; `Rd; `T; `C; `U; `H ]
        else [ `Sd; `T; `C; `U; `H ]
    | Batched ->
        if uses_rfactor p then [ `Rd; `T; `C; `R; `U; `H ]
        else [ `T; `C; `R; `U; `H ]
  in
  match Rng.pick rng fields with
  | `Sd -> { p with spatial_dpus = Rng.pick rng (spatial_dpu_choices cfg) }
  | `Rd ->
      let choices =
        List.filter (fun v -> v > 1) (reduction_dpu_choices cfg op)
      in
      let v = if choices = [] then p.reduction_dpus else Rng.pick rng choices in
      { p with reduction_dpus = v }
  | `T -> { p with tasklets = Rng.pick rng tasklet_choices }
  | `C -> { p with cache_elems = Rng.pick rng (cache_choices op) }
  | `R -> { p with rows_per_tasklet = Rng.pick rng rows_choices }
  | `U -> { p with unroll_inner = not p.unroll_inner }
  | `H -> { p with host_threads = Rng.pick rng host_thread_choices }
