type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x494d5450 |]
let int t bound = Random.State.int t bound

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let float t bound = Random.State.float t bound
let bool t = Random.State.bool t
let split t = Random.State.make [| Random.State.bits t |]
let copy = Random.State.copy
let bits t = Random.State.bits t
let stream ~base ~index = Random.State.make [| base; index; 0x494d5450 |]
