(* A persistent domain pool for embarrassingly-parallel candidate
   work.  One process-global pool is grown lazily to the largest job
   count ever requested; each [map] gates how many workers may
   participate, so [~jobs:2] uses exactly two domains even when the
   pool holds more.  Tasks are claimed from an atomic counter (work
   stealing at task granularity), the submitting domain participates
   as the first worker, and idle workers block on a condition variable
   — no spinning. *)

module Obs = Imtp_obs.Obs

(* ------------------------------------------------------------------ *)
(* Job sizing                                                          *)
(* ------------------------------------------------------------------ *)

let max_jobs = 64
let clamp n = max 1 (min max_jobs n)
let recommended () = clamp (Domain.recommended_domain_count ())

let env_jobs () =
  match Sys.getenv_opt "IMTP_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (clamp n)
      | Some _ | None -> None)

let override : int option Atomic.t = Atomic.make None
let set_default_jobs n = Atomic.set override (Some (clamp n))

let default_jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> ( match env_jobs () with Some n -> n | None -> recommended ())

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

type job = {
  gen : int;  (** generation number; a worker runs each job once. *)
  run : int -> unit;  (** task body; must not raise. *)
  total : int;
  next : int Atomic.t;  (** next unclaimed task index. *)
  tickets : int Atomic.t;  (** worker participation slots left. *)
  mutable completed : int;  (** tasks finished (under the pool mutex). *)
  mutable stats : (int * float) list;
      (** per-participant (tasks, busy seconds), newest first. *)
}

type pool = {
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable gen : int;
  mutable domains : unit Domain.t list;
  mutable shutting_down : bool;
}

(* Pulled tasks until the queue is dry, then report the participant's
   tally; the last participant to report completes the job. *)
let participate pool j =
  let t0 = Obs.now_s () in
  let count = ref 0 in
  let rec loop () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.total then begin
      j.run i;
      incr count;
      loop ()
    end
  in
  loop ();
  let busy = Obs.now_s () -. t0 in
  Mutex.lock pool.m;
  if !count > 0 then j.stats <- (!count, busy) :: j.stats;
  j.completed <- j.completed + !count;
  if j.completed >= j.total then Condition.broadcast pool.work_done;
  Mutex.unlock pool.m

let rec worker pool last_gen =
  Mutex.lock pool.m;
  let rec await () =
    if pool.shutting_down then None
    else
      match pool.job with
      | Some j when j.gen <> last_gen -> Some j
      | Some _ | None ->
          Condition.wait pool.work_ready pool.m;
          await ()
  in
  let j = await () in
  Mutex.unlock pool.m;
  match j with
  | None -> ()
  | Some j ->
      if Atomic.fetch_and_add j.tickets (-1) > 0 then participate pool j;
      worker pool j.gen

let the_pool =
  lazy
    (let pool =
       {
         m = Mutex.create ();
         work_ready = Condition.create ();
         work_done = Condition.create ();
         job = None;
         gen = 0;
         domains = [];
         shutting_down = false;
       }
     in
     at_exit (fun () ->
         Mutex.lock pool.m;
         pool.shutting_down <- true;
         Condition.broadcast pool.work_ready;
         Mutex.unlock pool.m;
         List.iter Domain.join pool.domains);
     pool)

(* ------------------------------------------------------------------ *)
(* Cumulative ledger                                                   *)
(* ------------------------------------------------------------------ *)

type stats = {
  maps : int;
  tasks : int;
  busy_s : float;
  domains_spawned : int;
}

(* Guarded by its own mutex, not [submit_m]: [submit_m] is held for a
   job's whole duration, and [stats] must stay readable mid-job (the
   serving daemon polls it while tunes are running). *)
let ledger_m = Mutex.create ()
let ledger = ref { maps = 0; tasks = 0; busy_s = 0.; domains_spawned = 0 }

let record_map per_worker =
  let tasks = Array.fold_left (fun a (n, _) -> a + n) 0 per_worker in
  let busy = Array.fold_left (fun a (_, b) -> a +. b) 0. per_worker in
  Mutex.protect ledger_m @@ fun () ->
  let l = !ledger in
  ledger :=
    { l with maps = l.maps + 1; tasks = l.tasks + tasks; busy_s = l.busy_s +. busy }

let stats () = Mutex.protect ledger_m (fun () -> !ledger)

(* Serializes submissions: one job in flight at a time.  Held while
   spawning workers too, so [domains] needs no separate guard. *)
let submit_m = Mutex.create ()

let ensure_workers pool n =
  while List.length pool.domains < n do
    pool.domains <- Domain.spawn (fun () -> worker pool 0) :: pool.domains;
    Mutex.protect ledger_m (fun () ->
        ledger := { !ledger with domains_spawned = !ledger.domains_spawned + 1 })
  done

(* A task that itself maps (nested parallelism) falls back to inline
   execution: the pool's workers are already busy with the outer job,
   and a second in-flight job would deadlock the submission path. *)
let in_task : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let with_in_task f =
  let r = Domain.DLS.get in_task in
  let saved = !r in
  r := true;
  Fun.protect ~finally:(fun () -> r := saved) f

let unwrap = function Some v -> v | None -> assert false

let inline_map f n =
  let results = Array.make n None in
  let t0 = Obs.now_s () in
  for i = 0 to n - 1 do
    results.(i) <- Some (f i)
  done;
  (Array.map unwrap results, [| (n, Obs.now_s () -. t0) |])

let map_stats_raw ~jobs f n =
  if n = 0 then ([||], [||])
  else
    let jobs = clamp (min jobs n) in
    if jobs = 1 || !(Domain.DLS.get in_task) then inline_map f n
    else
      Mutex.protect submit_m @@ fun () ->
      let pool = Lazy.force the_pool in
      ensure_workers pool (jobs - 1);
      let results = Array.make n None in
      let first_error = ref None in
      let body i =
        match f i with
        | v -> results.(i) <- Some v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock pool.m;
            (match !first_error with
            | Some (i0, _, _) when i0 < i -> ()
            | Some _ | None -> first_error := Some (i, e, bt));
            Mutex.unlock pool.m
      in
      let run i = with_in_task (fun () -> body i) in
      Mutex.lock pool.m;
      pool.gen <- pool.gen + 1;
      let j =
        {
          gen = pool.gen;
          run;
          total = n;
          next = Atomic.make 0;
          tickets = Atomic.make (jobs - 1);
          completed = 0;
          stats = [];
        }
      in
      pool.job <- Some j;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.m;
      participate pool j;
      Mutex.lock pool.m;
      while j.completed < j.total do
        Condition.wait pool.work_done pool.m
      done;
      pool.job <- None;
      let stats = List.rev j.stats in
      Mutex.unlock pool.m;
      (match !first_error with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      (Array.map unwrap results, Array.of_list stats)

let map_stats ~jobs f n =
  let ((_, per_worker) as r) = map_stats_raw ~jobs f n in
  if n > 0 then record_map per_worker;
  r

let map ~jobs f n = fst (map_stats ~jobs f n)
