(* A persistent domain pool for embarrassingly-parallel candidate
   work.  One process-global pool is grown lazily to the largest job
   count ever requested; each [map] gates how many workers may
   participate, so [~jobs:2] uses exactly two domains even when the
   pool holds more.  Tasks are claimed from an atomic counter (work
   stealing at task granularity), the submitting thread participates
   as the first worker, and idle workers block on a condition variable
   — no spinning.

   Multiple jobs may be in flight at once: submissions append to a
   queue and idle workers claim tasks from whichever queued job still
   has both work and participation tickets left.  This is what lets
   independent island searches overlap their generation batches — one
   island blocked in the simulator never parks the whole pool.  A task
   that itself calls [map] simply submits a nested job; the nested
   submitter participates in its own job, so nested maps always make
   progress and cannot deadlock the queue. *)

module Obs = Imtp_obs.Obs

(* ------------------------------------------------------------------ *)
(* Job sizing                                                          *)
(* ------------------------------------------------------------------ *)

let max_jobs = 64
let clamp n = max 1 (min max_jobs n)
let recommended () = clamp (Domain.recommended_domain_count ())

let env_jobs () =
  match Sys.getenv_opt "IMTP_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (clamp n)
      | Some _ | None -> None)

let override : int option Atomic.t = Atomic.make None
let set_default_jobs n = Atomic.set override (Some (clamp n))

let default_jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> ( match env_jobs () with Some n -> n | None -> recommended ())

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

type job = {
  run : int -> unit;  (** task body; must not raise. *)
  total : int;
  next : int Atomic.t;  (** next unclaimed task index. *)
  tickets : int Atomic.t;  (** worker participation slots left. *)
  mutable completed : int;  (** tasks finished (under the pool mutex). *)
  mutable stats : (int * float) list;
      (** per-participant (tasks, busy seconds), newest first. *)
}

type pool = {
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable jobs : job list;  (** in-flight jobs, submission order. *)
  mutable domains : unit Domain.t list;
  mutable shutting_down : bool;
}

(* ------------------------------------------------------------------ *)
(* Cumulative ledger                                                   *)
(* ------------------------------------------------------------------ *)

type stats = {
  maps : int;
  tasks : int;
  busy_s : float;
  domains_spawned : int;
  peak_busy : int;
}

let ledger_m = Mutex.create ()

let ledger =
  ref { maps = 0; tasks = 0; busy_s = 0.; domains_spawned = 0; peak_busy = 0 }

(* Participants currently inside a map (inline runs included), tracked
   so [peak_busy] reports real concurrency rather than the cumulative
   task ledger. *)
let busy_now = ref 0

let enter_busy () =
  Mutex.protect ledger_m @@ fun () ->
  incr busy_now;
  if !busy_now > !ledger.peak_busy then
    ledger := { !ledger with peak_busy = !busy_now }

let exit_busy () = Mutex.protect ledger_m (fun () -> decr busy_now)

let record_map per_worker =
  let tasks = Array.fold_left (fun a (n, _) -> a + n) 0 per_worker in
  let busy = Array.fold_left (fun a (_, b) -> a +. b) 0. per_worker in
  Mutex.protect ledger_m @@ fun () ->
  let l = !ledger in
  ledger :=
    { l with maps = l.maps + 1; tasks = l.tasks + tasks; busy_s = l.busy_s +. busy }

let stats () = Mutex.protect ledger_m (fun () -> !ledger)

(* Pulls tasks until the queue is dry, then reports the participant's
   tally; the last participant to report completes the job. *)
let participate pool j =
  enter_busy ();
  let t0 = Obs.now_s () in
  let count = ref 0 in
  let rec loop () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.total then begin
      j.run i;
      incr count;
      loop ()
    end
  in
  loop ();
  let busy = Obs.now_s () -. t0 in
  exit_busy ();
  Mutex.lock pool.m;
  if !count > 0 then j.stats <- (!count, busy) :: j.stats;
  j.completed <- j.completed + !count;
  if j.completed >= j.total then Condition.broadcast pool.work_done;
  Mutex.unlock pool.m

(* A job is worth joining while it still has unclaimed tasks and a
   participation ticket; jobs whose tickets are spoken for stay queued
   until their submitter finishes them. *)
let claimable jobs =
  List.find_opt
    (fun j -> Atomic.get j.tickets > 0 && Atomic.get j.next < j.total)
    jobs

let rec worker pool =
  Mutex.lock pool.m;
  let rec await () =
    if pool.shutting_down then None
    else
      match claimable pool.jobs with
      | Some j -> Some j
      | None ->
          Condition.wait pool.work_ready pool.m;
          await ()
  in
  let j = await () in
  Mutex.unlock pool.m;
  match j with
  | None -> ()
  | Some j ->
      (* The ticket check is a race against other workers; losing it
         just sends this worker back to the queue. *)
      if Atomic.fetch_and_add j.tickets (-1) > 0 then participate pool j;
      worker pool

let the_pool =
  lazy
    (let pool =
       {
         m = Mutex.create ();
         work_ready = Condition.create ();
         work_done = Condition.create ();
         jobs = [];
         domains = [];
         shutting_down = false;
       }
     in
     at_exit (fun () ->
         Mutex.lock pool.m;
         pool.shutting_down <- true;
         Condition.broadcast pool.work_ready;
         Mutex.unlock pool.m;
         List.iter Domain.join pool.domains);
     pool)

(* Called under [pool.m]. *)
let ensure_workers pool n =
  while List.length pool.domains < n do
    pool.domains <- Domain.spawn (fun () -> worker pool) :: pool.domains;
    Mutex.protect ledger_m (fun () ->
        ledger := { !ledger with domains_spawned = !ledger.domains_spawned + 1 })
  done

let unwrap = function Some v -> v | None -> assert false

let inline_map f n =
  enter_busy ();
  let finally () = exit_busy () in
  Fun.protect ~finally @@ fun () ->
  let results = Array.make n None in
  let t0 = Obs.now_s () in
  for i = 0 to n - 1 do
    results.(i) <- Some (f i)
  done;
  (Array.map unwrap results, [| (n, Obs.now_s () -. t0) |])

let map_stats_raw ~jobs f n =
  if n = 0 then ([||], [||])
  else
    let jobs = clamp (min jobs n) in
    if jobs = 1 then inline_map f n
    else begin
      let pool = Lazy.force the_pool in
      let results = Array.make n None in
      let first_error = ref None in
      let error_m = Mutex.create () in
      let run i =
        match f i with
        | v -> results.(i) <- Some v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock error_m;
            (match !first_error with
            | Some (i0, _, _) when i0 < i -> ()
            | Some _ | None -> first_error := Some (i, e, bt));
            Mutex.unlock error_m
      in
      let j =
        {
          run;
          total = n;
          next = Atomic.make 0;
          tickets = Atomic.make (jobs - 1);
          completed = 0;
          stats = [];
        }
      in
      Mutex.lock pool.m;
      ensure_workers pool (jobs - 1);
      pool.jobs <- pool.jobs @ [ j ];
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.m;
      participate pool j;
      Mutex.lock pool.m;
      while j.completed < j.total do
        Condition.wait pool.work_done pool.m
      done;
      pool.jobs <- List.filter (fun j' -> j' != j) pool.jobs;
      let stats = List.rev j.stats in
      Mutex.unlock pool.m;
      (match !first_error with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      (Array.map unwrap results, Array.of_list stats)
    end

let map_stats ~jobs f n =
  let t0 = Obs.now_s () in
  let ((_, per_worker) as r) = map_stats_raw ~jobs f n in
  if n > 0 then begin
    record_map per_worker;
    let wall = Obs.now_s () -. t0 in
    let busy = Array.fold_left (fun a (_, b) -> a +. b) 0. per_worker in
    let denom = wall *. float_of_int (clamp (min jobs n)) in
    if denom > 0. then Obs.set_gauge "pool.utilization" (min 1. (busy /. denom))
  end;
  r

let map ~jobs f n = fst (map_stats ~jobs f n)
