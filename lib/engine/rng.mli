(** Seeded pseudo-random source for the autotuner.  A thin wrapper over
    [Random.State] so every search run is reproducible from its seed. *)

type t

val create : seed:int -> t
val int : t -> int -> int
(** Uniform in [0, bound). *)

val pick : t -> 'a list -> 'a
(** Uniform choice.  @raise Invalid_argument on the empty list. *)

val float : t -> float -> float
val bool : t -> bool
val split : t -> t
(** Derive an independent child source. *)
