(** Seeded pseudo-random source for the autotuner.  A thin wrapper over
    [Random.State] so every search run is reproducible from its seed. *)

type t
(** A mutable random source; draws advance its state. *)

val create : seed:int -> t
(** A fresh source — equal seeds give equal draw sequences. *)

val int : t -> int -> int
(** Uniform in [0, bound). *)

val pick : t -> 'a list -> 'a
(** Uniform choice.  @raise Invalid_argument on the empty list. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool
(** Fair coin flip. *)

val split : t -> t
(** Derive an independent child source. *)
