(** Seeded pseudo-random source for the autotuner.  A thin wrapper over
    [Random.State] so every search run is reproducible from its seed. *)

type t
(** A mutable random source; draws advance its state. *)

val create : seed:int -> t
(** A fresh source — equal seeds give equal draw sequences. *)

val int : t -> int -> int
(** Uniform in [0, bound). *)

val pick : t -> 'a list -> 'a
(** Uniform choice.  @raise Invalid_argument on the empty list. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool
(** Fair coin flip. *)

val split : t -> t
(** Derive an independent child source. *)

val copy : t -> t
(** A snapshot of the source's exact state: the copy and the original
    produce the same draw sequence from this point on, independently.
    This is what makes search checkpoints bit-identical on resume —
    the serialized state replays the very draws the killed run would
    have made. *)

val bits : t -> int
(** Draw 30 uniformly random bits, advancing the state — the seed
    material for {!stream}. *)

val stream : base:int -> index:int -> t
(** The [index]-th substream of a base seed: a deterministic function
    of [(base, index)] alone, independent of how many other streams
    were derived.  {!Engine.batch} draws one {!bits} value per batch
    and gives candidate [i] the stream [~base ~index:i], so
    per-candidate measurement noise is identical whether the batch runs
    on one domain or many. *)
