module U = Imtp_upmem
module P = Imtp_tir.Program
module St = Imtp_tir.Stmt
module B = Imtp_tir.Buffer
module S = Imtp_schedule.Sched

type rejection = { reason : string; constraint_name : string }

let reject constraint_name fmt =
  Printf.ksprintf (fun reason -> Error { reason; constraint_name }) fmt

let check_sched (cfg : U.Config.t) sched =
  let dpus = S.grid_dpus sched and tasklets = S.tasklets sched in
  if dpus > U.Config.nr_dpus cfg then
    reject "dpus" "grid needs %d DPUs, system has %d" dpus (U.Config.nr_dpus cfg)
  else if tasklets > cfg.U.Config.max_tasklets then
    reject "tasklets" "%d tasklets exceed the %d hardware threads" tasklets
      cfg.U.Config.max_tasklets
  else if tasklets < 1 then reject "tasklets" "at least one tasklet required"
  else Ok ()

let kernel_wram_bytes (k : P.kernel) =
  (* Allocations nested under the tasklet loop are per-tasklet; count
     each allocation once per enclosing-tasklet instance. *)
  let total = ref 0 in
  let rec walk in_thread (s : St.t) =
    match s with
    | St.Seq ss -> List.iter (walk in_thread) ss
    | St.For { kind = St.Bound St.Thread_x; extent; body; _ } ->
        let t =
          Option.value (Imtp_tir.Simplify.const_int extent) ~default:1
        in
        let saved = !total in
        total := 0;
        walk in_thread body;
        total := saved + (t * !total);
        ignore in_thread
    | St.For { body; _ } -> walk in_thread body
    | St.If { then_; else_; _ } ->
        walk in_thread then_;
        Option.iter (walk in_thread) else_
    | St.Alloc { buffer; body } ->
        total := !total + B.bytes buffer;
        walk in_thread body
    | St.Store _ | St.Dma _ | St.Xfer _ | St.Launch _ | St.Barrier | St.Nop ->
        ()
  in
  walk false k.body;
  !total

let check (cfg : U.Config.t) (p : P.t) =
  let ( let* ) = Result.bind in
  let* () =
    let dpus = P.dpus_used p in
    if dpus > U.Config.nr_dpus cfg then
      reject "dpus" "grid needs %d DPUs, system has %d" dpus
        (U.Config.nr_dpus cfg)
    else Ok ()
  in
  let* () =
    let t = P.tasklets_used p in
    if t > cfg.U.Config.max_tasklets then
      reject "tasklets" "%d tasklets exceed the %d hardware threads" t
        cfg.U.Config.max_tasklets
    else Ok ()
  in
  let* () =
    let mram_bytes =
      List.fold_left (fun acc b -> acc + B.bytes b) 0 p.P.mram_buffers
    in
    if mram_bytes > cfg.U.Config.mram_bytes then
      reject "mram" "per-DPU tiles need %d bytes of MRAM, bank holds %d"
        mram_bytes cfg.U.Config.mram_bytes
    else Ok ()
  in
  List.fold_left
    (fun acc (k : P.kernel) ->
      let* () = acc in
      let* () =
        let w = kernel_wram_bytes k in
        if w > cfg.U.Config.wram_bytes then
          reject "wram" "kernel %s needs %d bytes of WRAM, DPU has %d" k.kname
            w cfg.U.Config.wram_bytes
        else Ok ()
      in
      let* () =
        let i = P.iram_footprint_bytes k in
        if i > cfg.U.Config.iram_bytes then
          reject "iram" "kernel %s needs ~%d bytes of IRAM, DPU has %d"
            k.kname i cfg.U.Config.iram_bytes
        else Ok ()
      in
      (* Static DMA sizes must be legal after vectorization. *)
      let esizes = Hashtbl.create 8 in
      St.iter
        (function
          | St.Alloc { buffer; _ } ->
              Hashtbl.replace esizes buffer.B.name
                (Imtp_tensor.Dtype.size_in_bytes buffer.B.dtype)
          | St.Seq _ | St.For _ | St.If _ | St.Store _ | St.Dma _ | St.Xfer _
          | St.Launch _ | St.Barrier | St.Nop ->
              ())
        k.body;
      let bad = ref None in
      let module Aff = Imtp_tir.Affine in
      (* Variable-size DMAs (the affine layer emits clamped extents
         like [min (c, n - base)]) are bounded through the enclosing
         loop ranges; an unboundable size is left to the runtime, as
         the pre-affine verifier did for every non-constant size. *)
      let rec scan ctx (s : St.t) =
        match s with
        | St.Seq ss -> List.iter (scan ctx) ss
        | St.Alloc { body; _ } -> scan ctx body
        | St.For { var; extent; body; _ } ->
            scan (Aff.assume_loop ctx var extent) body
        | St.If { cond; then_; else_ } ->
            scan (Aff.assume ctx cond) then_;
            Option.iter (scan ctx) else_
        | St.Dma { wram; elems; _ } ->
            let esize =
              Option.value (Hashtbl.find_opt esizes wram) ~default:4
            in
            let bound =
              match Imtp_tir.Simplify.const_int elems with
              | Some n -> Some n
              | None -> Aff.upper_bound ctx elems
            in
            Option.iter
              (fun n ->
                let bytes = n * esize in
                if bytes > cfg.U.Config.dma_max_bytes then bad := Some bytes)
              bound
        | St.Store _ | St.Xfer _ | St.Launch _ | St.Barrier | St.Nop -> ()
      in
      scan Aff.empty k.body;
      match !bad with
      | Some bytes ->
          reject "dma" "kernel %s issues a %d-byte DMA (max %d)" k.kname bytes
            cfg.U.Config.dma_max_bytes
      | None -> Ok ())
    (Ok ()) p.P.kernels
