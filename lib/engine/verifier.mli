(** Code verifier for UPMEM (§5.2.4): rejects schedule candidates that
    violate hardware constraints before they reach measurement, which
    both avoids wasted trials and models the real system's inability
    to run them (2,560-DPU / 24-tasklet / 64 KB-WRAM / 24 KB-IRAM /
    64 MB-MRAM limits, plus DMA size legality). *)

type rejection = {
  reason : string;
  constraint_name : string;
      (** one of "dpus", "tasklets", "wram", "iram", "mram", "dma". *)
}

val check :
  Imtp_upmem.Config.t -> Imtp_tir.Program.t -> (unit, rejection) result
(** Full post-lowering verification of a program against the machine
    configuration's resource limits; the first violated constraint is
    returned as the {!rejection}. *)

val kernel_wram_bytes : Imtp_tir.Program.kernel -> int
(** Total WRAM footprint of one kernel: per-tasklet allocations are
    multiplied by the tasklet count; allocations outside the tasklet
    region (shared buffers) count once. *)

val check_sched :
  Imtp_upmem.Config.t -> Imtp_schedule.Sched.t -> (unit, rejection) result
(** Cheap pre-lowering checks (grid size, tasklet count) so hopeless
    candidates are dropped before lowering. *)
