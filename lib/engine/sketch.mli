(** Sketch generation (§5.2.1): parameterized schedule templates that
    repurpose the TVM schedule primitives for UPMEM.

    A sketch fixes the code structure (which axes are split and bound
    to DPUs/tasklets, where caches live, whether reduction is
    hierarchical); the {!params} fill in the tunable values.  Together
    they populate the joint host+kernel search space:

    - host-to-DPU data distribution: spatial/reduction DPU counts,
      i.e. the [split]/[reorder]/[bind] tiling of Table 2;
    - reduction strategy: [reduction_dpus > 1] selects [rfactor]
      (hierarchical reduction);
    - multi-level tiling and intra-DPU caching: [tasklets],
      [cache_elems], [rows_per_tasklet], [unroll_inner];
    - post-processing: [host_threads]. *)

type params = {
  spatial_dpus : int;  (** DPUs along the (outer) spatial dimension. *)
  reduction_dpus : int;  (** DPUs along the reduction dimension;
                             > 1 enables rfactor. *)
  tasklets : int;
  cache_elems : int;  (** innermost caching-tile length, in elements. *)
  rows_per_tasklet : int;  (** spatial rows handled per tasklet
                               iteration (matrix/batched ops). *)
  unroll_inner : bool;
  host_threads : int;  (** host post-processing parallelism. *)
}

val default_params : params

type family =
  | Elementwise  (** one spatial axis, no reduction (VA, GEVA). *)
  | Tasklet_reduce  (** pure reduction (RED). *)
  | Mat_vec  (** one spatial + one reduction axis (MTV, GEMV). *)
  | Batched  (** two spatial + one reduction axis with a rank-3 input
                 (TTV, MMTV). *)
  | Mat_mat  (** two spatial + one reduction axis over rank-2 inputs
                 (GEMM) — an extension family beyond the paper's
                 evaluation. *)
  | Grid_map  (** two spatial axes, no reduction (rowdiv, 2-D scaling):
                  outer axis on the X grid dimension, inner axis tiled
                  like {!Elementwise} along Y. *)

val family_of : Imtp_workload.Op.t -> family
(** @raise Invalid_argument for iteration domains outside the
    supported families. *)

val instantiate : Imtp_workload.Op.t -> params -> Imtp_schedule.Sched.t
(** Build the schedule for the op's family with the given parameters.
    The resulting DPU grid may be smaller than requested when the
    tensor has fewer tiles than DPUs. *)

val lower_options : params -> Imtp_lower.Lowering.options
val describe : params -> string

val space : Imtp_upmem.Config.t -> Imtp_workload.Op.t -> params list
(** The full (pruned) discrete parameter space used for exhaustive
    searches in tests; the evolutionary search samples from the same
    value sets. *)

val random : Rng.t -> Imtp_upmem.Config.t -> Imtp_workload.Op.t -> params
val mutate : Rng.t -> Imtp_upmem.Config.t -> Imtp_workload.Op.t -> params -> params
(** Randomly re-draw one tunable field. *)

val uses_rfactor : params -> bool
