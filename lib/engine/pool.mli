(** A persistent [Domain]-based worker pool for parallel candidate
    evaluation.

    One process-global pool is created lazily on the first parallel
    {!map} and grown to the largest job count ever requested; worker
    domains park on a condition variable between jobs, and an [at_exit]
    hook shuts them down so the process never hangs on live domains.
    Each call gates participation to [jobs] domains (the submitting
    thread counts as one), so [~jobs:2] uses exactly two even when the
    pool holds more.

    Multiple jobs may be in flight at once: submissions append to a
    queue, and idle workers claim tasks from whichever queued job still
    has unclaimed work and participation tickets.  Concurrent
    submitters (the island searches, the serving daemon's sessions)
    therefore overlap their batches instead of serializing them.  A
    task that itself calls {!map} submits a nested job; since every
    submitter participates in its own job, nested maps always progress
    and cannot deadlock the queue. *)

val default_jobs : unit -> int
(** The effective job count when a caller doesn't pass one explicitly:
    the {!set_default_jobs} override if set, else a positive integer
    [IMTP_JOBS] from the environment, else
    [Domain.recommended_domain_count ()]; always clamped to [1, 64]. *)

val set_default_jobs : int -> unit
(** Override {!default_jobs} for the rest of the process (the CLI's
    [-j]/[--jobs] flag).  Clamped to [1, 64]. *)

val map : jobs:int -> (int -> 'a) -> int -> 'a array
(** [map ~jobs f n] computes [[| f 0; ...; f (n-1) |]] with up to
    [jobs] participants claiming task indices from a shared atomic
    counter.  [~jobs:1] runs the plain sequential loop on the calling
    thread — no domains are spun up.  If any [f i] raises, the
    exception from the smallest such index is re-raised after all
    claimed tasks finish; [f] must be domain-safe when [jobs > 1]. *)

val map_stats : jobs:int -> (int -> 'a) -> int -> 'a array * (int * float) array
(** Like {!map}, also returning one [(tasks_run, busy_seconds)] entry
    per participant that ran at least one task — the raw material for
    utilization telemetry.  Every non-empty call also publishes the
    [pool.utilization] gauge: summed participant busy time over
    [wall_clock * jobs], i.e. how much of the requested parallelism the
    map actually used. *)

(** {2 Cumulative ledger} *)

type stats = {
  maps : int;  (** non-empty {!map}/{!map_stats} calls so far. *)
  tasks : int;  (** tasks run across all of them. *)
  busy_s : float;  (** summed per-worker busy seconds. *)
  domains_spawned : int;  (** worker domains ever spawned (≤ 63). *)
  peak_busy : int;
      (** highest number of map participants (worker domains plus
          submitting threads, inline runs included) ever busy at the
          same instant — the pool's observed peak concurrency. *)
}
(** Process-lifetime pool activity.  Monotonic — never reset. *)

val stats : unit -> stats
(** A consistent snapshot of the ledger.  Safe to call from any thread
    at any time, including while a job is in flight (in-flight work is
    counted when its map returns) — the serving daemon's [stats]
    endpoint reads this. *)
