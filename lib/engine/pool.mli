(** A persistent [Domain]-based worker pool for parallel candidate
    evaluation.

    One process-global pool is created lazily on the first parallel
    {!map} and grown to the largest job count ever requested; worker
    domains park on a condition variable between jobs, and an [at_exit]
    hook shuts them down so the process never hangs on live domains.
    Each call gates participation to [jobs] domains (the submitting
    domain counts as one), so [~jobs:2] uses exactly two even when the
    pool holds more.  Submissions are serialized — one job in flight at
    a time — and a task that itself calls {!map} runs the nested map
    inline on its own domain rather than deadlocking the pool. *)

val default_jobs : unit -> int
(** The effective job count when a caller doesn't pass one explicitly:
    the {!set_default_jobs} override if set, else a positive integer
    [IMTP_JOBS] from the environment, else
    [Domain.recommended_domain_count ()]; always clamped to [1, 64]. *)

val set_default_jobs : int -> unit
(** Override {!default_jobs} for the rest of the process (the CLI's
    [-j]/[--jobs] flag).  Clamped to [1, 64]. *)

val map : jobs:int -> (int -> 'a) -> int -> 'a array
(** [map ~jobs f n] computes [[| f 0; ...; f (n-1) |]] with up to
    [jobs] domains claiming task indices from a shared atomic counter.
    [~jobs:1] (or a nested call from inside a pool task) runs the plain
    sequential loop on the calling domain — no domains are spun up.
    If any [f i] raises, the exception from the smallest such index is
    re-raised after all claimed tasks finish; [f] must be domain-safe
    when [jobs > 1]. *)

val map_stats : jobs:int -> (int -> 'a) -> int -> 'a array * (int * float) array
(** Like {!map}, also returning one [(tasks_run, busy_seconds)] entry
    per domain that ran at least one task — the raw material for
    utilization telemetry. *)

(** {2 Cumulative ledger} *)

type stats = {
  maps : int;  (** non-empty {!map}/{!map_stats} calls so far. *)
  tasks : int;  (** tasks run across all of them. *)
  busy_s : float;  (** summed per-worker busy seconds. *)
  domains_spawned : int;  (** worker domains ever spawned (≤ 63). *)
}
(** Process-lifetime pool activity.  Monotonic — never reset. *)

val stats : unit -> stats
(** A consistent snapshot of the ledger.  Safe to call from any thread
    at any time, including while a job is in flight (in-flight work is
    counted when its map returns) — the serving daemon's [stats]
    endpoint reads this. *)
